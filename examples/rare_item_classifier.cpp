// Rare-item scheme comparison on a synthetic trace (paper Section 6.3).
//
// Generates a Gnutella-like trace, runs every localized rare-item scheme,
// and reports each one's precision/recall against the Perfect baseline at
// a fixed publishing budget, plus the resulting hybrid query recall.
//
//   ./build/examples/rare_item_classifier
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main() {
  workload::WorkloadConfig wc;
  wc.num_nodes = 10000;
  wc.num_distinct_files = 15000;
  wc.num_queries = 700;
  wc.seed = 2004;
  std::printf("generating trace: %zu nodes, %zu distinct files...\n",
              wc.num_nodes, wc.num_distinct_files);
  auto trace = workload::GenerateTrace(wc);
  std::printf("  %llu copies, %zu queries, %.1f%% of copies have 1 replica\n",
              (unsigned long long)trace.total_copies, trace.queries.size(),
              100 * trace.CopiesFractionAtOrBelow(1));

  const double kBudget = 0.4;  // publish 40% of copies
  hybrid::EvalConfig eval;
  eval.horizon_fraction = 0.05;
  eval.trials_per_query = 3;

  // Ground truth: what Perfect publishes at this budget.
  auto perfect_scores = hybrid::PerfectScheme().Scores(trace);
  auto perfect_pub = hybrid::SelectByBudget(trace, perfect_scores, kBudget);

  std::vector<std::unique_ptr<hybrid::RareItemScheme>> schemes;
  schemes.push_back(std::make_unique<hybrid::PerfectScheme>());
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.15, 1));
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.05, 2));
  schemes.push_back(std::make_unique<hybrid::TermPairFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::TermFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::QrsScheme>());
  schemes.push_back(std::make_unique<hybrid::RandomScheme>(3));

  TablePrinter table({"scheme", "published copies", "precision vs Perfect",
                      "recall vs Perfect", "avg QR", "avg QDR"});
  for (auto& scheme : schemes) {
    auto scores = scheme->Scores(trace);
    auto pub = hybrid::SelectByBudget(trace, scores, kBudget);
    size_t tp = 0, fp = 0, fn = 0;
    for (size_t i = 0; i < pub.size(); ++i) {
      if (pub[i] && perfect_pub[i]) ++tp;
      if (pub[i] && !perfect_pub[i]) ++fp;
      if (!pub[i] && perfect_pub[i]) ++fn;
    }
    double precision = tp + fp ? static_cast<double>(tp) / (tp + fp) : 0;
    double recall = tp + fn ? static_cast<double>(tp) / (tp + fn) : 0;
    auto r = hybrid::EvaluateHybrid(trace, pub, eval);
    table.AddRow({scheme->name(),
                  FormatPct(r.published_copies_fraction),
                  FormatPct(precision), FormatPct(recall),
                  FormatPct(r.avg_query_recall),
                  FormatPct(r.avg_query_distinct_recall)});
  }
  std::printf("\npublishing budget = %.0f%% of copies, horizon = %.0f%%\n\n",
              kBudget * 100, eval.horizon_fraction * 100);
  table.Print();
  std::printf(
      "\nReading guide: SAM tracks Perfect closely even at small sample\n"
      "rates; TF/TPF sit between SAM and Random (paper Figures 13-15).\n");
  return 0;
}
