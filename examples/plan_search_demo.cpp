// Declarative query-plan demo: build, print, serialize, rewrite and run
// QueryPlans over a live simulated DHT deployment.
//
//   ./build/plan_search_demo
//
// Shows (1) the two search strategies as compiled plans, (2) the
// posting-size rewrite pass choosing the cheap chain order, and (3) a plan
// shape the old hardwired API could not express: a filter-pushdown keyword
// join ending in TopK over a fetched Item column.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dht/builder.h"
#include "pier/node.h"
#include "pier/plan.h"
#include "piersearch/publisher.h"
#include "piersearch/schemas.h"
#include "piersearch/search_engine.h"

using namespace pierstack;

int main() {
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           10 * sim::kMillisecond),
                       7);
  dht::DhtDeployment dht(&network, 16, dht::DhtOptions{}, 11);
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  for (size_t i = 0; i < dht.size(); ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &metrics));
  }

  // A small library: 40 files, some "live" takes, with varied sizes.
  piersearch::Publisher publisher(piers[0].get());
  piersearch::PublishOptions popts;
  popts.inverted = true;
  popts.inverted_cache = true;
  std::vector<piersearch::FileToPublish> files;
  for (uint64_t i = 0; i < 40; ++i) {
    files.push_back(piersearch::FileToPublish{
        "madonna concert take" + std::to_string(i) +
            (i % 3 == 0 ? " live.mp3" : " studio.mp3"),
        (1 + i) * 1024, static_cast<uint32_t>(i % 16), 6346});
  }
  publisher.PublishFiles(files, popts);
  piers[0]->FlushPublishQueues();
  simulator.Run();

  // 1. The search strategies ARE plans now: print what Search compiles.
  piersearch::SearchOptions options;
  options.fetch_items = false;
  pier::QueryPlan dj = piersearch::BuildDistributedJoinPlan(
      {"madonna", "concert"}, options);
  std::printf("== kDistributedJoin compiles to ==\n%s\n",
              dj.ToString().c_str());
  pier::QueryPlan ic = piersearch::BuildInvertedCachePlan(
      {"madonna", "live"}, options);
  std::printf("== kInvertedCache compiles to ==\n%s\n",
              ic.ToString().c_str());

  // 2. Plans are wire objects: serialize, ship, decode, run.
  std::vector<uint8_t> image = ic.Serialize();
  auto decoded = pier::QueryPlan::Deserialize(image);
  if (!decoded.ok()) {
    std::printf("plan decode failed: %s\n",
                decoded.status().ToString().c_str());
    return 1;
  }
  std::printf("IC plan round-trips through %zu wire bytes\n\n", image.size());

  size_t ic_hits = 0;
  piers[3]->ExecutePlan(decoded.value(),
                        [&](Status s, std::vector<pier::Tuple> rows) {
                          if (s.ok()) ic_hits = rows.size();
                        });
  simulator.Run();
  std::printf("decoded IC plan found %zu \"madonna live\" files\n\n",
              ic_hits);

  // 3. The new expressiveness: push the "live" filter into the cache
  // owner, join with "concert", fetch Item tuples, keep the 5 largest.
  pier::QueryPlan topk =
      pier::PlanBuilder()
          .IndexScan(piersearch::InvertedCacheSchema().table_name(),
                     pier::Value(std::string("madonna")),
                     piersearch::kIcKeyword, piersearch::kIcFileId)
          .Filter(pier::Expr::Contains(
              pier::Expr::Column(piersearch::kIcFulltext), "live"))
          .RehashJoin(piersearch::InvertedSchema().table_name(),
                      pier::Value(std::string("concert")),
                      piersearch::kInvKeyword, piersearch::kInvFileId)
          .FetchJoin(piersearch::ItemSchema().table_name(),
                     piersearch::kItemFileId)
          .TopK(piersearch::kItemFilesize, 5)
          .Build();
  std::printf("== filter-pushdown + TopK plan ==\n%s\n",
              topk.ToString().c_str());
  std::vector<pier::Tuple> top;
  piers[5]->ExecutePlan(topk, [&](Status s, std::vector<pier::Tuple> rows) {
    if (s.ok()) top = std::move(rows);
  });
  simulator.Run();
  std::printf("5 largest live takes:\n");
  for (const pier::Tuple& t : top) {
    std::printf("  %-36s %8llu bytes\n",
                std::string(t.at(piersearch::kItemFilename).AsString())
                    .c_str(),
                static_cast<unsigned long long>(
                    t.at(piersearch::kItemFilesize).AsUint64()));
  }

  // 4. The optimizer as a rewrite pass, fed by a local size oracle.
  pier::QueryPlan chain = pier::PlanBuilder()
                              .IndexScan("inverted", pier::Value(
                                                         std::string("madonna")))
                              .RehashJoin("inverted",
                                          pier::Value(std::string("live")))
                              .Build();
  bool changed = pier::ReorderByPostingSize(
      &chain, [](const std::string&, const pier::Value& key) {
        return key.AsString() == "live" ? size_t{14} : size_t{40};
      });
  std::printf("\nposting-size rewrite reordered the chain: %s\n%s",
              changed ? "yes" : "no", chain.ToString().c_str());

  bool demo_ok = ic_hits == 14 && top.size() == 5 && changed;
  std::printf("\nplan_search_demo %s\n", demo_ok ? "PASSED" : "FAILED");
  return demo_ok ? 0 : 1;
}
