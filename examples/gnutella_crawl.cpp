// Gnutella topology crawl (paper Section 4.1 in miniature).
//
// Builds a 2,000-ultrapeer / 8,000-leaf network, crawls it from 30
// parallel vantage points like the paper's PlanetLab crawler, and prints
// the topology statistics plus the Figure 8-style flood-cost analysis.
//
//   ./build/examples/gnutella_crawl
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "gnutella/crawler.h"
#include "gnutella/topology.h"

using namespace pierstack;

int main() {
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::UniformLatency>(
                           10 * sim::kMillisecond, 120 * sim::kMillisecond),
                       3);

  gnutella::TopologyConfig config;
  config.num_ultrapeers = 2000;
  config.num_leaves = 8000;
  config.protocol.ultrapeer_degree = 16;
  config.seed = 2004;
  gnutella::GnutellaNetwork net(&network, config);
  simulator.Run();

  // Crawl from 30 seeds with bounded parallelism.
  gnutella::Crawler crawler(&network, /*parallelism=*/30);
  std::vector<sim::HostId> seeds;
  for (size_t i = 0; i < 30; ++i) seeds.push_back(net.ultrapeer(i)->host());
  sim::SimTime started = simulator.now();
  gnutella::CrawlGraph graph;
  crawler.Start(seeds, [&](const gnutella::CrawlGraph& g) { graph = g; });
  simulator.Run();

  std::printf("crawl finished in %.1f sim-seconds, %llu request messages\n",
              (simulator.now() - started) / 1e6,
              (unsigned long long)graph.crawl_messages);
  std::printf("ultrapeers found : %zu\n", graph.num_ultrapeers());
  std::printf("estimated network: %llu nodes (ultrapeers + leaf slots)\n",
              (unsigned long long)graph.EstimatedNetworkSize());

  Summary degrees;
  for (const auto& [h, neighbors] : graph.adjacency) {
    degrees.Add(static_cast<double>(neighbors.size()));
  }
  std::printf("ultrapeer degree : mean %.1f  median %.0f  max %.0f\n\n",
              degrees.mean(), degrees.Median(), degrees.max());

  // Figure 8 analysis: flood reach vs message cost.
  std::vector<sim::HostId> sources(seeds.begin(), seeds.begin() + 10);
  auto steps = gnutella::FloodExpansionAveraged(graph, sources, 8);
  TablePrinter table({"TTL", "ultrapeers reached", "messages",
                      "msgs per new ultrapeer"});
  uint64_t prev_reached = 1, prev_msgs = 0;
  for (const auto& s : steps) {
    double per_new =
        s.ultrapeers_reached > prev_reached
            ? static_cast<double>(s.messages - prev_msgs) /
                  static_cast<double>(s.ultrapeers_reached - prev_reached)
            : 0.0;
    table.AddRow({FormatI(s.ttl), FormatI((long long)s.ultrapeers_reached),
                  FormatI((long long)s.messages), FormatF(per_new, 1)});
    prev_reached = s.ultrapeers_reached;
    prev_msgs = s.messages;
  }
  table.Print();
  std::printf(
      "\nNote the diminishing returns: each extra TTL pays more messages\n"
      "per newly reached ultrapeer (Section 4.3 of the paper).\n");
  return 0;
}
