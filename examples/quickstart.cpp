// Quickstart: bring up a 64-node DHT, publish a few files through
// PIERSearch, and run keyword searches with both query plans.
//
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "dht/builder.h"
#include "piersearch/publisher.h"
#include "piersearch/search_engine.h"

using namespace pierstack;

int main() {
  // 1. A simulated wide-area network and a 64-node Chord overlay.
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::CoordinateLatency>(
                           sim::CoordinateLatency::Options{}, /*seed=*/7),
                       /*seed=*/7);
  dht::DhtOptions dht_options;
  dht::DhtDeployment dht(&network, 64, dht_options, /*seed=*/42);

  // 2. Attach PIER to every DHT node.
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  for (size_t i = 0; i < dht.size(); ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &metrics));
  }

  // 3. Publish a small library from node 0 (both index layouts).
  piersearch::Publisher publisher(piers[0].get());
  piersearch::PublishOptions publish;
  publish.inverted = true;
  publish.inverted_cache = true;
  const char* library[] = {
      "madonna like a prayer.mp3", "madonna vogue.mp3",
      "pink floyd dark side of the moon.mp3",
      "miles davis kind of blue.mp3", "rare zanzibar basement tape.mp3",
  };
  uint32_t address = 1000;
  for (const char* name : library) {
    publisher.PublishFile(name, 4 << 20, address++, 6346, publish);
  }
  simulator.Run();
  std::printf("published %llu tuples (%llu app bytes) for %llu files\n",
              (unsigned long long)publisher.stats().tuples_published,
              (unsigned long long)publisher.stats().tuple_bytes,
              (unsigned long long)publisher.stats().files_published);

  // 4. Search from a different node with the distributed-join plan ...
  piersearch::SearchEngine engine(piers[17].get());
  auto run_search = [&](const char* query, piersearch::SearchStrategy strat) {
    piersearch::SearchOptions options;
    options.strategy = strat;
    const char* label =
        strat == piersearch::SearchStrategy::kDistributedJoin
            ? "distributed-join"
            : "inverted-cache";
    engine.Search(query, options,
                  [&, query, label](Status s,
                                    std::vector<piersearch::SearchHit> hits) {
                    std::printf("\n[%s] \"%s\" -> %zu hit(s) (%s)\n", label,
                                query, hits.size(), s.ToString().c_str());
                    for (const auto& h : hits) {
                      std::printf("  %-45s %8llu bytes  host %u:%u\n",
                                  h.filename.c_str(),
                                  (unsigned long long)h.size_bytes, h.address,
                                  h.port);
                    }
                  });
    simulator.Run();
  };
  run_search("madonna", piersearch::SearchStrategy::kDistributedJoin);
  run_search("madonna prayer", piersearch::SearchStrategy::kDistributedJoin);
  // ... and the single-site InvertedCache plan.
  run_search("dark moon", piersearch::SearchStrategy::kInvertedCache);
  run_search("zanzibar", piersearch::SearchStrategy::kInvertedCache);

  std::printf("\nDHT routing: %.2f mean hops over %llu routed messages\n",
              dht.metrics().MeanHops(),
              (unsigned long long)dht.metrics().routes_delivered);
  return 0;
}
