// Hybrid search walkthrough: why flooding fails for rare items and how the
// PIERSearch fallback repairs it (paper Sections 5 and 7).
//
//   ./build/examples/hybrid_search_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "dht/builder.h"
#include "gnutella/topology.h"
#include "hybrid/hybrid_ultrapeer.h"

using namespace pierstack;

int main() {
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           25 * sim::kMillisecond),
                       11);

  // A sparse Gnutella mesh: TTL-2 floods cover only a neighborhood.
  gnutella::TopologyConfig tc;
  tc.num_ultrapeers = 100;
  tc.num_leaves = 400;
  tc.protocol.ultrapeer_degree = 3;
  tc.protocol.flood_ttl = 2;
  tc.seed = 8;
  gnutella::GnutellaNetwork gnet(&network, tc);

  // Every ultrapeer is hybrid: also a member of one Chord DHT.
  dht::DhtDeployment dht(&network, 100, dht::DhtOptions{}, 77);
  pier::PierMetrics pier_metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  std::vector<std::unique_ptr<hybrid::HybridUltrapeer>> hybrids;
  hybrid::HybridConfig hc;
  hc.gnutella_timeout = 5 * sim::kSecond;
  hc.search.strategy = piersearch::SearchStrategy::kInvertedCache;
  hc.publish.inverted_cache = true;
  for (size_t i = 0; i < 100; ++i) {
    piers.push_back(
        std::make_unique<pier::PierNode>(dht.node(i), &pier_metrics));
    hybrids.push_back(std::make_unique<hybrid::HybridUltrapeer>(
        gnet.ultrapeer(i), piers[i].get(), hc));
  }

  // Popular content everywhere; one rare file on the far side of the mesh.
  for (size_t i = 0; i < 100; ++i) {
    gnet.ultrapeer(i)->SetSharedFiles({"summer anthem radio edit.mp3"});
  }
  gnet.ultrapeer(99)->SetSharedFiles(
      {"summer anthem radio edit.mp3", "fieldrecording glacier hut 1997.mp3"});
  simulator.Run();

  // Each hybrid ultrapeer proactively publishes its rare local items —
  // here: everything that is NOT the popular anthem.
  for (auto& h : hybrids) {
    h->PublishLocalFiles([](const gnutella::KeywordIndex::Entry& e) {
      return e.filename.find("anthem") == std::string::npos;
    });
  }
  simulator.Run();

  auto query = [&](const char* text) {
    std::printf("\n== query \"%s\" from hybrid ultrapeer 0 ==\n", text);
    sim::SimTime start = simulator.now();
    size_t shown = 0;
    bool done = false;
    hybrids[0]->Query(
        text,
        [&](const hybrid::HybridHit& h) {
          if (shown < 3) {
            std::printf("  [%6.2fs] %-42s via %s (host %u)\n",
                        (h.arrival - start) / 1e6, h.filename.c_str(),
                        h.via_dht ? "PIERSearch" : "Gnutella", h.address);
          }
          ++shown;
        },
        [&]() { done = true; });
    simulator.Run();
    std::printf("  %zu result(s) total%s\n", shown,
                done ? "" : " (gnutella still streaming)");
  };

  query("summer anthem");          // popular: flooding answers instantly
  query("fieldrecording glacier"); // rare: falls back to the DHT
  query("no such file at all");    // miss everywhere: both come back empty

  const auto& stats = hybrids[0]->stats();
  std::printf("\nhybrid ultrapeer 0: %llu queries, %llu via gnutella, "
              "%llu reissued to DHT, %llu answered by DHT\n",
              (unsigned long long)stats.hybrid_queries,
              (unsigned long long)stats.gnutella_answered,
              (unsigned long long)stats.dht_reissued,
              (unsigned long long)stats.dht_answered);
  return 0;
}
