#!/usr/bin/env bash
# Runs the micro_core benchmark suite and records BENCH_core.json at the
# repo root: the raw google-benchmark results plus the batching speedup
# ratios the perf trajectory is tracked by (see bench/README.md).
#
#   scripts/run_bench.sh [--smoke] [--check] [build_dir]
#
# --smoke runs one short repetition (CI); default runs the full suite.
# --check fails (exit 1) when any speedup_vs_pre_refactor ratio in the
#         written BENCH_core.json is missing or below 2x, when a
#         transport_adaptive or routing ratio drops below its floor, or
#         when the plan-execution path costs more than ~1.1x the legacy
#         join's messages (plan_chain_message_parity < 0.9) or changes the
#         answer set, or when a churn scenario misses its robustness floor
#         (sustained-churn recall < 980 permille, or a flash-crowd /
#         mass-leave run that fails to restore surviving key ranges to
#         full replication), or when a partition-tolerance floor breaks
#         (split-brain recall < 980 permille, an oracle-dirty healed ring,
#         merge machinery that never engaged, or a durable restart that
#         fails to re-ship >= 5x fewer re-sync bytes than the amnesia
#         baseline at identical answers), or when a query-robustness floor breaks
#         (crash-failover recall < 950 permille or past deadline, hedged
#         fail-slow p99 improvement < 1.5x or changed answers, unbounded
#         or unlabeled overload shedding), or when a BM_ShardScale_* sharded run's
#         fingerprint diverges from serial (always) or misses its speedup
#         floor (>= 2x at 4 shards, >= 2.5x at 8 — only on machines with
#         that many cores) — the CI bench-regression gate.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

SMOKE=0
CHECK=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --check) CHECK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -x "$BUILD_DIR/micro_core" ]; then
  echo "building micro_core in $BUILD_DIR..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target micro_core -j >/dev/null
fi

MIN_TIME=0.5
if [ "$SMOKE" = "1" ]; then MIN_TIME=0.01; fi

RAW=$(mktemp)
"$BUILD_DIR/micro_core" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json \
  --benchmark_out="$RAW" \
  --benchmark_out_format=json >/dev/null

python3 - "$RAW" "$REPO_ROOT/BENCH_core.json" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

by_name = {}
for b in raw.get("benchmarks", []):
    by_name[b["name"]] = b

def items_per_sec(name):
    b = by_name.get(name)
    return b.get("items_per_second") if b else None

def counter(name, key):
    b = by_name.get(name)
    return b.get(key) if b else None

def ratio(new, old):
    a, b = items_per_sec(new), items_per_sec(old)
    return round(a / b, 2) if a and b else None

def section(per, new, keys):
    out = {}
    for mode, name in (("per_tuple", per), ("batched", new)):
        b = by_name.get(name)
        if b:
            out[mode] = {k: b.get(k) for k in keys}
    if "per_tuple" in out and "batched" in out and \
            out["batched"].get("net_messages"):
        out["message_reduction"] = round(
            out["per_tuple"]["net_messages"] /
            out["batched"]["net_messages"], 2)
    return out

chain = section("BM_JoinChain_PerTuplePublish", "BM_JoinChain_BatchedPublish",
                ("net_messages", "net_bytes", "results"))
fetch = section("BM_FetchItems_PerResult", "BM_FetchItems_OwnerCoalesced",
                ("net_messages", "net_bytes", "fetched"))
publish = section("BM_PublishPath_PerTupleCalls",
                  "BM_PublishPath_StandingQueues",
                  ("net_messages", "net_bytes", "stored"))

def counter_ratio(baseline, adaptive, key):
    a, b = counter(baseline, key), counter(adaptive, key)
    return round(a / b, 2) if a and b else None

# Load-adaptive transport (PR 3): deterministic ratios between the fixed
# policies and their pressure-driven replacements, at identical result
# sets (checked by the gate below).
transport = {
    # Fewer routed hops answering the same replicated key set.
    "replica_fetch_hops": counter_ratio(
        "BM_ReplicaFetch_KOwnerBaseline", "BM_ReplicaFetch_ReplicaAware",
        "routed_hops"),
    "replica_fetch_identical_results": (
        counter("BM_ReplicaFetch_KOwnerBaseline", "fetched") ==
        counter("BM_ReplicaFetch_ReplicaAware", "fetched")),
    # Lower publish->ack latency when destinations are idle.
    "adaptive_flush_latency": counter_ratio(
        "BM_AdaptiveFlush_FixedBounds", "BM_AdaptiveFlush_PressureDriven",
        "mean_ack_latency_ms"),
    # Bounded peak in-flight bytes at a slow stage owner.
    "credit_backpressure_bytes": counter_ratio(
        "BM_CreditJoin_Unpaced", "BM_CreditJoin_Credited",
        "peak_inflight_bytes"),
    "credit_join_identical_results": (
        counter("BM_CreditJoin_Unpaced", "results") ==
        counter("BM_CreditJoin_Credited", "results")),
}

# Declarative plan execution (PR 4): the compiled-plan search path must
# match the legacy hardwired ExecuteJoin chain — identical answers, message
# count within 10% (ratio = legacy / plan, gated at >= 0.9).
def plan_parity():
    legacy = counter("BM_PlanExec_LegacyJoin", "net_messages")
    plan = counter("BM_PlanExec_PlanCompiled", "net_messages")
    return round(legacy / plan, 2) if legacy and plan else None

plan_exec = {
    "plan_chain_message_parity": plan_parity(),
    "plan_chain_identical_results": (
        counter("BM_PlanExec_LegacyJoin", "results") ==
        counter("BM_PlanExec_PlanCompiled", "results")),
    "legacy": {k: counter("BM_PlanExec_LegacyJoin", k)
               for k in ("net_messages", "net_bytes", "results")},
    "plan": {k: counter("BM_PlanExec_PlanCompiled", k)
             for k in ("net_messages", "net_bytes", "results")},
}

# Load-balanced routing layer (PR 5): the owner location cache must
# collapse steady-state fetch/publish ring walks to ~one hop per routed
# message (counted "dht.route" messages, identical answer sets), and the
# congestion-aware finger choice must route a get burst around a buried
# node with a measurable latency win at identical answers.
routing = {
    "steady_state_hops": counter_ratio(
        "BM_Routing_SteadyStateClassic", "BM_Routing_SteadyStateCached",
        "routed_hops"),
    "steady_state_identical_results": (
        counter("BM_Routing_SteadyStateClassic", "fetched") ==
        counter("BM_Routing_SteadyStateCached", "fetched")),
    "steady_state_cache_hits": counter(
        "BM_Routing_SteadyStateCached", "route_cache_hits"),
    "hot_spot_latency": counter_ratio(
        "BM_Routing_HotSpotClassic", "BM_Routing_HotSpotDetour",
        "mean_get_latency_ms"),
    "hot_spot_detours": counter(
        "BM_Routing_HotSpotDetour", "congestion_detours"),
    "hot_spot_identical_results": (
        counter("BM_Routing_HotSpotClassic", "answered") ==
        counter("BM_Routing_HotSpotDetour", "answered")),
}

# Churn scenarios (PR 6): seed-deterministic recall and replication-floor
# restoration under scripted membership churn (sustained 1%/min, flash-crowd
# join, correlated mass-leave) — counted quantities, gated below.
churn = {
    "sustained_recall_permille": counter(
        "BM_Churn_SustainedRecall", "recall_permille"),
    "sustained_churn_events": (
        (counter("BM_Churn_SustainedRecall", "churn_crashes") or 0) +
        (counter("BM_Churn_SustainedRecall", "churn_joins") or 0)),
    "flash_crowd_full_replication": counter(
        "BM_Churn_FlashCrowdRepair", "full_replication"),
    "flash_crowd_resync_rounds": counter(
        "BM_Churn_FlashCrowdRepair", "resync_rounds"),
    "mass_leave_restored_permille": counter(
        "BM_Churn_MassLeaveRepair", "restored_permille"),
    "mass_leave_surviving_keys": counter(
        "BM_Churn_MassLeaveRepair", "surviving_keys"),
    "mass_leave_lost_keys": counter(
        "BM_Churn_MassLeaveRepair", "lost_keys"),
}

# Partition tolerance (PR 10): split-brain heal recall and oracle verdict,
# plus the durable-vs-amnesia restart byte ratio — counted quantities under
# fixed seeds, gated below.
def restart_ratio():
    durable = counter("BM_Partition_RestartRecovery", "resync_bytes")
    amnesia = counter("BM_Partition_AmnesiaBaseline", "resync_bytes")
    if amnesia is None or durable is None:
        return None
    if durable == 0:
        return float("inf") if amnesia > 0 else None
    return round(amnesia / durable, 2)

partition = {
    "split_brain_recall_permille": counter(
        "BM_Partition_SplitBrainHeal", "recall_permille"),
    "split_brain_oracle_clean": counter(
        "BM_Partition_SplitBrainHeal", "oracle_clean"),
    "split_brain_merge_probes": counter(
        "BM_Partition_SplitBrainHeal", "merge_probes"),
    "split_brain_merge_rounds": counter(
        "BM_Partition_SplitBrainHeal", "merge_rounds"),
    "split_brain_partition_heals": counter(
        "BM_Partition_SplitBrainHeal", "partition_heals"),
    "restart_resync_byte_ratio": restart_ratio(),
    "restart_durable_resync_bytes": counter(
        "BM_Partition_RestartRecovery", "resync_bytes"),
    "restart_amnesia_resync_bytes": counter(
        "BM_Partition_AmnesiaBaseline", "resync_bytes"),
    "restart_identical_answers": (
        counter("BM_Partition_RestartRecovery", "recall_permille") ==
        counter("BM_Partition_AmnesiaBaseline", "recall_permille")),
    "restart_recall_permille": counter(
        "BM_Partition_RestartRecovery", "recall_permille"),
}

# Fault-tolerant query plane (PR 8): counted/sim-clock robustness of the
# query path itself — crash-failover recall within the deadline, hedged
# fetch tail latency under a fail-slow owner at identical answers, and
# bounded labeled shedding with exact partial accounting. Gated below.
robustness = {
    "crash_recall_permille": counter(
        "BM_Robust_CrashFailoverRecall", "recall_permille"),
    "crash_failovers": counter("BM_Robust_CrashFailoverRecall", "failovers"),
    "crash_deadline_met": counter(
        "BM_Robust_CrashFailoverRecall", "deadline_met"),
    "hedge_p99_latency": counter_ratio(
        "BM_Robust_FetchFailSlowUnhedged", "BM_Robust_FetchFailSlowHedged",
        "p99_fetch_ms"),
    "hedge_identical_results": (
        counter("BM_Robust_FetchFailSlowUnhedged", "fetched") ==
        counter("BM_Robust_FetchFailSlowHedged", "fetched")),
    "hedges_won": counter("BM_Robust_FetchFailSlowHedged", "hedges_won"),
    "admission_idle_admitted": counter(
        "BM_Robust_AdmissionOverload", "idle_admitted"),
    "admission_shed_labeled": counter(
        "BM_Robust_AdmissionOverload", "shed_labeled"),
    "admission_shed_bounded": counter(
        "BM_Robust_AdmissionOverload", "shed_bounded"),
    "admission_partials_match": counter(
        "BM_Robust_AdmissionOverload", "partials_match"),
}

# Shard-parallel runtime (PR 7): wall-clock scaling of the sharded event
# loop over a big static deployment. The fingerprint (events, clock,
# messages, bytes, delivered routes, hops — folded to 50 bits so it rides
# a json double exactly) must be identical across backends: the sharded
# loop may only be faster than serial, never different.
def shard_scale_section():
    out = {}
    for b in raw.get("benchmarks", []):
        name = b["name"]
        if not name.startswith("BM_ShardScale_Serial/"):
            continue
        size = name.split("/", 1)[1]
        serial = b
        entry = {"serial_ms": round(serial.get("real_time") or 0.0, 1)}
        for label in ("shards4", "shards8"):
            sb = by_name.get("BM_ShardScale_Shards%s/%s" %
                             (label[-1], size))
            if not sb:
                continue
            entry[label + "_ms"] = round(sb.get("real_time") or 0.0, 1)
            if sb.get("real_time"):
                entry["speedup_" + label] = round(
                    serial["real_time"] / sb["real_time"], 2)
            entry[label + "_fingerprint_identical"] = (
                sb.get("fingerprint") == serial.get("fingerprint") and
                sb.get("events") == serial.get("events"))
        out[size] = entry
    return out

shard_scale = shard_scale_section()

ratios = {
    "shj_insert_with_matches": ratio(
        "BM_ShjInsertWithMatches_SharedPayload/4096",
        "BM_ShjInsertWithMatches_Legacy/4096"),
    "tuple_deserialize_batch": ratio(
        "BM_TupleDeserialize_Batch/512",
        "BM_TupleDeserialize_PerTuple/512"),
    "tuple_serialize_batch": ratio(
        "BM_TupleSerialize_Batch/512",
        "BM_TupleSerialize_PerTuple/512"),
    # Message-reduction ratios, single-sourced from the sections above
    # (deterministic: counted, not timed).
    "fetch_coalescing_messages": fetch.get("message_reduction"),
    "rehash_queue_messages": publish.get("message_reduction"),
}

out = {
    "context": raw.get("context", {}),
    "speedup_vs_pre_refactor": ratios,
    "transport_adaptive": transport,
    "routing": routing,
    "plan_exec": plan_exec,
    "churn": churn,
    "partition_tolerance": partition,
    "query_robustness": robustness,
    "shard_scale": shard_scale,
    "join_chain": chain,
    "fetch_coalescing": fetch,
    "rehash_queues": publish,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)

print("BENCH_core.json written:")
print("  speedups vs pre-refactor per-tuple path:", ratios)
print("  adaptive-transport ratios:", transport)
print("  routing ratios:", routing)
print("  plan-exec parity:", {k: plan_exec[k] for k in
                              ("plan_chain_message_parity",
                               "plan_chain_identical_results")})
print("  churn scenarios:", churn)
print("  partition tolerance:", partition)
print("  query robustness:", robustness)
print("  shard scale:", shard_scale)
for label, s in (("join chain", chain), ("fetch coalescing", fetch),
                 ("rehash queues", publish)):
    if "message_reduction" in s:
        print("  %s message reduction: %sx" % (label,
                                               s["message_reduction"]))
EOF

rm -f "$RAW"

if [ "$CHECK" = "1" ]; then
  python3 - "$REPO_ROOT/BENCH_core.json" <<'EOF'
import json, sys

# Bench-regression gate: every tracked speedup ratio must exist and stay
# at or above 2x the pre-refactor path, and the adaptive-transport ratios
# must hold their own floors at identical result sets.
with open(sys.argv[1]) as f:
    bench = json.load(f)

failed = []
for name, value in sorted(bench.get("speedup_vs_pre_refactor", {}).items()):
    if value is None:
        failed.append("%s: missing (bench did not run?)" % name)
    elif value < 2.0:
        failed.append("%s: %.2fx < 2x" % (name, value))

# Per-ratio floors for the load-adaptive transport (counted / sim-clock
# quantities, deterministic under the fixed seeds; floors carry margin
# under the observed values: hops 1.79x, latency 2.56x, bytes ~22x).
transport = bench.get("transport_adaptive", {})
transport_floors = {
    "replica_fetch_hops": 1.3,
    "adaptive_flush_latency": 1.8,
    "credit_backpressure_bytes": 4.0,
}
for name, floor in sorted(transport_floors.items()):
    value = transport.get(name)
    if value is None:
        failed.append("%s: missing (bench did not run?)" % name)
    elif value < floor:
        failed.append("%s: %.2fx < %sx" % (name, value, floor))
for name in ("replica_fetch_identical_results",
             "credit_join_identical_results"):
    if transport.get(name) is not True:
        failed.append("%s: adaptive variant changed the answer set" % name)

# Routing-layer floors (counted hops / sim-clock latency, deterministic
# under the fixed seeds; floors carry margin under the observed values:
# steady-state hops ~2.8x, hot-spot latency ~2.6x).
routing = bench.get("routing", {})
routing_floors = {
    "steady_state_hops": 2.0,
    "hot_spot_latency": 1.5,
}
for name, floor in sorted(routing_floors.items()):
    value = routing.get(name)
    if value is None:
        failed.append("%s: missing (bench did not run?)" % name)
    elif value < floor:
        failed.append("%s: %.2fx < %sx" % (name, value, floor))
if not routing.get("hot_spot_detours"):
    failed.append("hot_spot_detours: congestion-aware run took no detours")
for name in ("steady_state_identical_results",
             "hot_spot_identical_results"):
    if routing.get(name) is not True:
        failed.append("%s: routing variant changed the answer set" % name)

# Plan-execution parity gate: the declarative path may not regress the
# join chain's message cost past 10%, and must answer identically.
plan_exec = bench.get("plan_exec", {})
parity = plan_exec.get("plan_chain_message_parity")
if parity is None:
    failed.append("plan_chain_message_parity: missing (bench did not run?)")
elif parity < 0.9:
    failed.append("plan_chain_message_parity: %.2fx < 0.9x" % parity)
if plan_exec.get("plan_chain_identical_results") is not True:
    failed.append("plan_chain_identical_results: plan path changed the "
                  "answer set")

# Churn-robustness gates: sustained 1%/min churn at replication 3 keeps
# recall within epsilon (>= 980 permille); a 10% flash-crowd join and a
# correlated mass-leave both restore every surviving key range to the
# replication floor within the bounded repair window. All quantities are
# counted under fixed seeds, so these are exact, not statistical.
churn = bench.get("churn", {})

recall = churn.get("sustained_recall_permille")
if recall is None:
    failed.append("sustained_recall_permille: missing (bench did not run?)")
elif recall < 980:
    failed.append("sustained_recall_permille: %d < 980" % recall)

if churn.get("flash_crowd_full_replication") != 1:
    failed.append("flash_crowd_full_replication: a key range stayed below "
                  "the replication floor after the join wave")
rounds = churn.get("flash_crowd_resync_rounds")
if not rounds:
    failed.append("flash_crowd_resync_rounds: no re-sync rounds ran")

restored = churn.get("mass_leave_restored_permille")
if restored is None:
    failed.append("mass_leave_restored_permille: missing (bench did not "
                  "run?)")
elif restored != 1000:
    failed.append("mass_leave_restored_permille: %d != 1000 (surviving "
                  "ranges not restored to full replication)" % restored)
if not churn.get("mass_leave_surviving_keys"):
    failed.append("mass_leave_surviving_keys: correlated crash wiped every "
                  "key (scenario invalid)")

# Partition-tolerance gates: a healed split brain must answer >= 98% of
# the pre-split key set from the minority side AND leave a RingOracle-clean
# ring with the merge machinery demonstrably engaged (probes, rounds,
# heals all nonzero); a durable restart must re-ship >= 5x fewer re-sync
# bytes than the amnesia baseline of the identical scenario, at identical
# final answers. Counted quantities under fixed seeds.
partition = bench.get("partition_tolerance", {})

recall = partition.get("split_brain_recall_permille")
if recall is None:
    failed.append("split_brain_recall_permille: missing (bench did not "
                  "run?)")
elif recall < 980:
    failed.append("split_brain_recall_permille: %d < 980" % recall)
if partition.get("split_brain_oracle_clean") != 1:
    failed.append("split_brain_oracle_clean: the healed ring violated a "
                  "RingOracle invariant")
for name in ("split_brain_merge_probes", "split_brain_merge_rounds",
             "split_brain_partition_heals"):
    if not partition.get(name):
        failed.append("%s: the ring merge machinery never engaged" % name)

ratio = partition.get("restart_resync_byte_ratio")
if ratio is None:
    failed.append("restart_resync_byte_ratio: missing (bench did not run?)")
elif ratio < 5.0:
    failed.append("restart_resync_byte_ratio: %.2fx < 5x (durable restart "
                  "re-shipped too many bytes)" % ratio)
if partition.get("restart_identical_answers") is not True:
    failed.append("restart_identical_answers: durable and amnesia restarts "
                  "answered differently")
recall = partition.get("restart_recall_permille")
if recall is None or recall < 1000:
    failed.append("restart_recall_permille: %s < 1000 (restart lost data)"
                  % recall)

# Query-robustness gates (fault-tolerant query plane): crash-failover
# recall >= 95% within the deadline with at least one failover exercised;
# hedging must cut the fail-slow p99 by >= 1.5x at identical answers; and
# overload shedding must be bounded, labeled, and counted exactly once in
# pier.partial_results. Counted / sim-clock quantities under fixed seeds
# (observed: recall 1000 permille, hedge ratio ~4.6x).
robust = bench.get("query_robustness", {})

recall = robust.get("crash_recall_permille")
if recall is None:
    failed.append("crash_recall_permille: missing (bench did not run?)")
elif recall < 950:
    failed.append("crash_recall_permille: %d < 950" % recall)
if not robust.get("crash_failovers"):
    failed.append("crash_failovers: no stage failover exercised")
if robust.get("crash_deadline_met") != 1:
    failed.append("crash_deadline_met: a crash-failover query missed its "
                  "deadline")

hedge = robust.get("hedge_p99_latency")
if hedge is None:
    failed.append("hedge_p99_latency: missing (bench did not run?)")
elif hedge < 1.5:
    failed.append("hedge_p99_latency: %.2fx < 1.5x" % hedge)
if robust.get("hedge_identical_results") is not True:
    failed.append("hedge_identical_results: hedging changed the answer set")
if not robust.get("hedges_won"):
    failed.append("hedges_won: no hedge beat the fail-slow primary")

for name in ("admission_idle_admitted", "admission_shed_labeled",
             "admission_shed_bounded", "admission_partials_match"):
    if robust.get(name) != 1:
        failed.append("%s: admission-control contract violated" % name)

# Shard-parallel scaling gates: fingerprint identity is unconditional —
# a sharded backend may only be FASTER than serial, never different. The
# wall-clock floors (>= 2x at 4 shards, >= 2.5x at 8) only apply when the
# machine has the cores to parallelize on (context.num_cpus); a 1-core CI
# runner still proves determinism, just not scaling.
shard_scale = bench.get("shard_scale", {})
num_cpus = bench.get("context", {}).get("num_cpus") or 0
if not shard_scale:
    failed.append("shard_scale: missing (bench did not run?)")
for size, entry in sorted(shard_scale.items()):
    for label, shards, floor in (("shards4", 4, 2.0), ("shards8", 8, 2.5)):
        identical = entry.get(label + "_fingerprint_identical")
        if identical is None:
            failed.append("shard_scale[%s].%s: missing (bench did not "
                          "run?)" % (size, label))
        elif identical is not True:
            failed.append("shard_scale[%s].%s: fingerprint diverged from "
                          "the serial backend" % (size, label))
        if num_cpus < shards:
            continue
        speedup = entry.get("speedup_" + label)
        if speedup is None:
            failed.append("shard_scale[%s].speedup_%s: missing" %
                          (size, label))
        elif speedup < floor:
            failed.append("shard_scale[%s].speedup_%s: %.2fx < %sx" %
                          (size, label, speedup, floor))

if failed:
    print("bench-regression gate FAILED:")
    for line in failed:
        print("  " + line)
    sys.exit(1)
print("bench-regression gate passed: speedups >= 2x, transport and "
      "routing ratios at floor, plan-exec parity >= 0.9x, identical "
      "answer sets, churn recall/repair floors held, partition-tolerance "
      "floors held (split-brain recall + oracle-clean merge, durable "
      "restart >= 5x fewer resync bytes), query-robustness "
      "floors held (crash recall, hedge p99, bounded labeled shedding), "
      "shard-scale fingerprints identical%s" %
      ("" if num_cpus >= 4 else " (speedup floors skipped: %d cpus)"
       % num_cpus))
EOF
fi
