#!/usr/bin/env bash
# Runs the micro_core benchmark suite and records BENCH_core.json at the
# repo root: the raw google-benchmark results plus the batching speedup
# ratios the perf trajectory is tracked by (see bench/README.md).
#
#   scripts/run_bench.sh [--smoke] [build_dir]
#
# --smoke runs one short repetition (CI); default runs the full suite.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

SMOKE=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -x "$BUILD_DIR/micro_core" ]; then
  echo "building micro_core in $BUILD_DIR..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target micro_core -j >/dev/null
fi

MIN_TIME=0.5
if [ "$SMOKE" = "1" ]; then MIN_TIME=0.01; fi

RAW=$(mktemp)
"$BUILD_DIR/micro_core" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json \
  --benchmark_out="$RAW" \
  --benchmark_out_format=json >/dev/null

python3 - "$RAW" "$REPO_ROOT/BENCH_core.json" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

by_name = {}
for b in raw.get("benchmarks", []):
    by_name[b["name"]] = b

def items_per_sec(name):
    b = by_name.get(name)
    return b.get("items_per_second") if b else None

def ratio(new, old):
    a, b = items_per_sec(new), items_per_sec(old)
    return round(a / b, 2) if a and b else None

ratios = {
    "shj_insert_with_matches": ratio(
        "BM_ShjInsertWithMatches_SharedPayload/4096",
        "BM_ShjInsertWithMatches_Legacy/4096"),
    "tuple_deserialize_batch": ratio(
        "BM_TupleDeserialize_Batch/512",
        "BM_TupleDeserialize_PerTuple/512"),
    "tuple_serialize_batch": ratio(
        "BM_TupleSerialize_Batch/512",
        "BM_TupleSerialize_PerTuple/512"),
}

chain = {}
for mode, name in (("per_tuple", "BM_JoinChain_PerTuplePublish"),
                   ("batched", "BM_JoinChain_BatchedPublish")):
    b = by_name.get(name)
    if b:
        chain[mode] = {
            "net_messages": b.get("net_messages"),
            "net_bytes": b.get("net_bytes"),
            "results": b.get("results"),
        }
if "per_tuple" in chain and "batched" in chain and \
        chain["batched"].get("net_messages"):
    chain["message_reduction"] = round(
        chain["per_tuple"]["net_messages"] /
        chain["batched"]["net_messages"], 2)

out = {
    "context": raw.get("context", {}),
    "speedup_vs_pre_refactor": ratios,
    "join_chain": chain,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)

print("BENCH_core.json written:")
print("  speedups vs pre-refactor per-tuple path:", ratios)
if chain:
    print("  join chain:", {k: v for k, v in chain.items()
                            if k == "message_reduction"})
EOF

rm -f "$RAW"
