#!/usr/bin/env bash
# Runs the micro_core benchmark suite and records BENCH_core.json at the
# repo root: the raw google-benchmark results plus the batching speedup
# ratios the perf trajectory is tracked by (see bench/README.md).
#
#   scripts/run_bench.sh [--smoke] [--check] [build_dir]
#
# --smoke runs one short repetition (CI); default runs the full suite.
# --check fails (exit 1) when any speedup_vs_pre_refactor ratio in the
#         written BENCH_core.json is missing or below 2x — the CI
#         bench-regression gate.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

SMOKE=0
CHECK=0
BUILD_DIR=build
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --check) CHECK=1 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

if [ ! -x "$BUILD_DIR/micro_core" ]; then
  echo "building micro_core in $BUILD_DIR..."
  cmake -B "$BUILD_DIR" -S . >/dev/null
  cmake --build "$BUILD_DIR" --target micro_core -j >/dev/null
fi

MIN_TIME=0.5
if [ "$SMOKE" = "1" ]; then MIN_TIME=0.01; fi

RAW=$(mktemp)
"$BUILD_DIR/micro_core" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=json \
  --benchmark_out="$RAW" \
  --benchmark_out_format=json >/dev/null

python3 - "$RAW" "$REPO_ROOT/BENCH_core.json" <<'EOF'
import json, sys

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

by_name = {}
for b in raw.get("benchmarks", []):
    by_name[b["name"]] = b

def items_per_sec(name):
    b = by_name.get(name)
    return b.get("items_per_second") if b else None

def counter(name, key):
    b = by_name.get(name)
    return b.get(key) if b else None

def ratio(new, old):
    a, b = items_per_sec(new), items_per_sec(old)
    return round(a / b, 2) if a and b else None

def section(per, new, keys):
    out = {}
    for mode, name in (("per_tuple", per), ("batched", new)):
        b = by_name.get(name)
        if b:
            out[mode] = {k: b.get(k) for k in keys}
    if "per_tuple" in out and "batched" in out and \
            out["batched"].get("net_messages"):
        out["message_reduction"] = round(
            out["per_tuple"]["net_messages"] /
            out["batched"]["net_messages"], 2)
    return out

chain = section("BM_JoinChain_PerTuplePublish", "BM_JoinChain_BatchedPublish",
                ("net_messages", "net_bytes", "results"))
fetch = section("BM_FetchItems_PerResult", "BM_FetchItems_OwnerCoalesced",
                ("net_messages", "net_bytes", "fetched"))
publish = section("BM_PublishPath_PerTupleCalls",
                  "BM_PublishPath_StandingQueues",
                  ("net_messages", "net_bytes", "stored"))

ratios = {
    "shj_insert_with_matches": ratio(
        "BM_ShjInsertWithMatches_SharedPayload/4096",
        "BM_ShjInsertWithMatches_Legacy/4096"),
    "tuple_deserialize_batch": ratio(
        "BM_TupleDeserialize_Batch/512",
        "BM_TupleDeserialize_PerTuple/512"),
    "tuple_serialize_batch": ratio(
        "BM_TupleSerialize_Batch/512",
        "BM_TupleSerialize_PerTuple/512"),
    # Message-reduction ratios, single-sourced from the sections above
    # (deterministic: counted, not timed).
    "fetch_coalescing_messages": fetch.get("message_reduction"),
    "rehash_queue_messages": publish.get("message_reduction"),
}

out = {
    "context": raw.get("context", {}),
    "speedup_vs_pre_refactor": ratios,
    "join_chain": chain,
    "fetch_coalescing": fetch,
    "rehash_queues": publish,
    "benchmarks": raw.get("benchmarks", []),
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2)

print("BENCH_core.json written:")
print("  speedups vs pre-refactor per-tuple path:", ratios)
for label, s in (("join chain", chain), ("fetch coalescing", fetch),
                 ("rehash queues", publish)):
    if "message_reduction" in s:
        print("  %s message reduction: %sx" % (label,
                                               s["message_reduction"]))
EOF

rm -f "$RAW"

if [ "$CHECK" = "1" ]; then
  python3 - "$REPO_ROOT/BENCH_core.json" <<'EOF'
import json, sys

# Bench-regression gate: every tracked speedup ratio must exist and stay
# at or above 2x the pre-refactor path.
with open(sys.argv[1]) as f:
    bench = json.load(f)

failed = []
for name, value in sorted(bench.get("speedup_vs_pre_refactor", {}).items()):
    if value is None:
        failed.append("%s: missing (bench did not run?)" % name)
    elif value < 2.0:
        failed.append("%s: %.2fx < 2x" % (name, value))

if failed:
    print("bench-regression gate FAILED:")
    for line in failed:
        print("  " + line)
    sys.exit(1)
print("bench-regression gate passed: all speedup ratios >= 2x")
EOF
fi
