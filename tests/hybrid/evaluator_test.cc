#include "hybrid/evaluator.h"

#include <gtest/gtest.h>

#include "hybrid/schemes.h"
#include "model/equations.h"

namespace pierstack::hybrid {
namespace {

workload::Trace TestTrace() {
  workload::WorkloadConfig c;
  c.num_nodes = 4000;
  c.num_distinct_files = 5000;
  c.vocab_size = 3500;
  c.num_queries = 400;
  c.seed = 13;
  return workload::GenerateTrace(c);
}

TEST(SampleFoundReplicasTest, Bounds) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    uint32_t f = SampleFoundReplicas(&rng, 1000, 10, 100);
    EXPECT_LE(f, 10u);
  }
  EXPECT_EQ(SampleFoundReplicas(&rng, 1000, 0, 100), 0u);
  EXPECT_EQ(SampleFoundReplicas(&rng, 1000, 10, 0), 0u);
  EXPECT_EQ(SampleFoundReplicas(&rng, 1000, 10, 1000), 10u);
}

TEST(SampleFoundReplicasTest, MeanMatchesHypergeometric) {
  Rng rng(2);
  // E[found] = R * H / N.
  const int kTrials = 20000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    sum += SampleFoundReplicas(&rng, 1000, 20, 100);
  }
  EXPECT_NEAR(sum / kTrials, 2.0, 0.05);
}

TEST(SampleFoundReplicasTest, LargeReplicaApproximationMean) {
  Rng rng(3);
  const int kTrials = 3000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) {
    sum += SampleFoundReplicas(&rng, 100000, 5000, 10000);
  }
  EXPECT_NEAR(sum / kTrials, 500.0, 10.0);
}

TEST(EvaluatorTest, NoPublishingRecallEqualsHorizon) {
  // Figure 11 anchor: "when no items are published ... the average query
  // recall is equal to the percentage of nodes in the search horizon".
  auto t = TestTrace();
  std::vector<bool> none(t.files.size(), false);
  for (double h : {0.05, 0.15, 0.30}) {
    EvalConfig cfg;
    cfg.horizon_fraction = h;
    cfg.trials_per_query = 5;
    auto r = EvaluateHybrid(t, none, cfg);
    EXPECT_NEAR(r.avg_query_recall, h, 0.02) << h;
    EXPECT_DOUBLE_EQ(r.published_copies_fraction, 0.0);
  }
}

TEST(EvaluatorTest, FullPublishingLiftsQdrNearOne) {
  auto t = TestTrace();
  std::vector<bool> all(t.files.size(), true);
  EvalConfig cfg;
  cfg.horizon_fraction = 0.15;
  auto r = EvaluateHybrid(t, all, cfg);
  // Every query either finds something in Gnutella or falls back to a
  // fully published DHT: nothing comes back empty.
  EXPECT_DOUBLE_EQ(r.empty_fraction_hybrid, 0.0);
  EXPECT_GT(r.avg_query_distinct_recall, 0.5);
}

TEST(EvaluatorTest, RecallMonotoneInThreshold) {
  // Figures 11/12: QR and QDR rise with the replica threshold, with
  // diminishing returns.
  auto t = TestTrace();
  auto scores = PerfectScheme().Scores(t);
  EvalConfig cfg;
  cfg.horizon_fraction = 0.15;
  cfg.trials_per_query = 5;
  double prev_qr = -1, prev_qdr = -1;
  for (double thr : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    auto pub = SelectByThreshold(scores, thr);
    auto r = EvaluateHybrid(t, pub, cfg);
    EXPECT_GT(r.avg_query_recall, prev_qr - 0.02);
    EXPECT_GT(r.avg_query_distinct_recall, prev_qdr - 0.02);
    prev_qr = r.avg_query_recall;
    prev_qdr = r.avg_query_distinct_recall;
  }
  // Threshold 10 publishes most rare files; the residual QDR gap comes
  // from horizon misses of mid-popularity (R in 11..30) files.
  EXPECT_GT(prev_qdr, 0.65);
}

TEST(EvaluatorTest, QdrExceedsQr) {
  // Replicas of found distinct files are partially missed by QR but fully
  // credited by QDR, so QDR >= QR on average.
  auto t = TestTrace();
  auto pub = SelectByThreshold(PerfectScheme().Scores(t), 2.0);
  EvalConfig cfg;
  cfg.horizon_fraction = 0.15;
  auto r = EvaluateHybrid(t, pub, cfg);
  EXPECT_GE(r.avg_query_distinct_recall, r.avg_query_recall);
}

TEST(EvaluatorTest, EmptyQueriesReducedByPublishing) {
  // The paper's headline: hybrid publishing cuts no-result queries.
  auto t = TestTrace();
  EvalConfig cfg;
  cfg.horizon_fraction = 0.05;
  cfg.trials_per_query = 5;
  std::vector<bool> none(t.files.size(), false);
  auto base = EvaluateHybrid(t, none, cfg);
  auto pub = SelectByThreshold(PerfectScheme().Scores(t), 2.0);
  auto hybrid = EvaluateHybrid(t, pub, cfg);
  EXPECT_GT(base.empty_fraction_gnutella, 0.0);
  EXPECT_LT(hybrid.empty_fraction_hybrid,
            base.empty_fraction_gnutella * 0.6);
}

TEST(EvaluatorTest, SchemeOrderingPerfectBeatsRandom) {
  // Figure 13's vertical ordering at a fixed budget.
  auto t = TestTrace();
  EvalConfig cfg;
  cfg.horizon_fraction = 0.05;
  cfg.trials_per_query = 4;
  double budget = 0.3;
  auto perfect = EvaluateHybrid(
      t, SelectByBudget(t, PerfectScheme().Scores(t), budget), cfg);
  auto sam = EvaluateHybrid(
      t, SelectByBudget(t, SamplingScheme(0.15, 3).Scores(t), budget), cfg);
  auto random = EvaluateHybrid(
      t, SelectByBudget(t, RandomScheme(3).Scores(t), budget), cfg);
  EXPECT_GT(perfect.avg_query_recall, random.avg_query_recall);
  EXPECT_GE(perfect.avg_query_recall + 0.02, sam.avg_query_recall);
  EXPECT_GT(sam.avg_query_recall, random.avg_query_recall);
}

TEST(EvaluatorTest, MonteCarloQdrMatchesAnalyticEquationOne) {
  // Section 6.2: "average QDR is exactly PF_i,hybrid as computed by
  // Equation (1)" — the Monte-Carlo evaluator must converge to the
  // analytic expectation.
  auto t = TestTrace();
  auto pub = SelectByThreshold(PerfectScheme().Scores(t), 2.0);
  EvalConfig cfg;
  cfg.horizon_fraction = 0.15;
  cfg.trials_per_query = 12;
  auto mc = EvaluateHybrid(t, pub, cfg);

  model::SystemParams params;
  params.num_nodes = static_cast<double>(t.config.num_nodes);
  params.horizon_nodes = params.num_nodes * cfg.horizon_fraction;
  double qdr_sum = 0;
  size_t queries = 0;
  for (const auto& q : t.queries) {
    if (q.matches.empty()) continue;
    ++queries;
    double found = 0;
    for (uint32_t m : q.matches) {
      found += model::PFHybrid(t.files[m].replicas, pub[m], params);
    }
    qdr_sum += found / static_cast<double>(q.matches.size());
  }
  double analytic = qdr_sum / static_cast<double>(queries);
  EXPECT_NEAR(mc.avg_query_distinct_recall, analytic, 0.01);
}

TEST(EvaluatorTest, DeterministicGivenSeed) {
  auto t = TestTrace();
  auto pub = SelectByThreshold(PerfectScheme().Scores(t), 1.0);
  EvalConfig cfg;
  cfg.horizon_fraction = 0.15;
  auto a = EvaluateHybrid(t, pub, cfg);
  auto b = EvaluateHybrid(t, pub, cfg);
  EXPECT_DOUBLE_EQ(a.avg_query_recall, b.avg_query_recall);
  EXPECT_DOUBLE_EQ(a.avg_query_distinct_recall, b.avg_query_distinct_recall);
}

}  // namespace
}  // namespace pierstack::hybrid
