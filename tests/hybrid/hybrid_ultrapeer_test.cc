// HybridUltrapeer integration: Gnutella + DHT + PIERSearch on one stack.
#include "hybrid/hybrid_ultrapeer.h"

#include <gtest/gtest.h>

#include <memory>

#include "dht/builder.h"
#include "gnutella/topology.h"

namespace pierstack::hybrid {
namespace {

/// A small world: 20 ultrapeers (all hybrid) in both a Gnutella mesh and a
/// DHT, with a sparse topology so rare content is out of flooding reach.
struct World {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<gnutella::GnutellaNetwork> gnutella;
  std::unique_ptr<dht::DhtDeployment> dht;
  pier::PierMetrics pier_metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  std::vector<std::unique_ptr<HybridUltrapeer>> hybrids;

  explicit World(HybridConfig hc = HybridConfig{}) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(20 * sim::kMillisecond), 41);
    gnutella::TopologyConfig tc;
    tc.num_ultrapeers = 20;
    tc.num_leaves = 60;
    tc.protocol.ultrapeer_degree = 2;  // sparse: floods stay local
    tc.protocol.flood_ttl = 1;
    tc.protocol.query_mode = gnutella::QueryMode::kFlood;
    tc.seed = 3;
    gnutella = std::make_unique<gnutella::GnutellaNetwork>(network.get(), tc);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), 20,
                                               dht::DhtOptions{}, 555);
    hc.gnutella_timeout = 2 * sim::kSecond;
    for (size_t i = 0; i < 20; ++i) {
      piers.push_back(
          std::make_unique<pier::PierNode>(dht->node(i), &pier_metrics));
      hybrids.push_back(std::make_unique<HybridUltrapeer>(
          gnutella->ultrapeer(i), piers[i].get(), hc));
    }
    simulator.Run();
  }
};

TEST(HybridUltrapeerTest, FallbackFindsRareItemGnutellaMisses) {
  World w;
  // A rare file lives on ultrapeer 19; the sparse TTL-1 flood from UP 0
  // cannot reach it.
  w.gnutella->ultrapeer(19)->SetSharedFiles({"obscure vinyl rip.mp3"});
  // Proactive publishing (full-deployment style): UP 19 indexes its rare
  // local file into the DHT.
  size_t published = w.hybrids[19]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry&) { return true; });
  EXPECT_EQ(published, 1u);
  w.simulator.Run();

  std::vector<HybridHit> hits;
  bool done = false;
  w.hybrids[0]->Query("obscure vinyl",
                      [&](const HybridHit& h) { hits.push_back(h); },
                      [&]() { done = true; });
  w.simulator.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(hits[0].via_dht);
  EXPECT_EQ(hits[0].filename, "obscure vinyl rip.mp3");
  EXPECT_EQ(w.hybrids[0]->stats().dht_reissued, 1u);
  EXPECT_EQ(w.hybrids[0]->stats().dht_answered, 1u);
}

TEST(HybridUltrapeerTest, GnutellaAnswersPopularWithoutFallback) {
  World w;
  // Every ultrapeer shares the popular file: the local match alone answers.
  for (size_t i = 0; i < 20; ++i) {
    w.gnutella->ultrapeer(i)->SetSharedFiles({"big radio hit.mp3"});
  }
  std::vector<HybridHit> hits;
  bool done = false;
  w.hybrids[0]->Query("radio hit",
                      [&](const HybridHit& h) { hits.push_back(h); },
                      [&]() { done = true; });
  w.simulator.Run();
  ASSERT_TRUE(done);
  EXPECT_GE(hits.size(), 1u);
  for (const auto& h : hits) EXPECT_FALSE(h.via_dht);
  EXPECT_EQ(w.hybrids[0]->stats().gnutella_answered, 1u);
  EXPECT_EQ(w.hybrids[0]->stats().dht_reissued, 0u);
}

TEST(HybridUltrapeerTest, FallbackLatencyIsTimeoutPlusDht) {
  World w;
  w.gnutella->ultrapeer(19)->SetSharedFiles({"hidden gem track.mp3"});
  w.hybrids[19]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry&) { return true; });
  w.simulator.Run();
  sim::SimTime start = w.simulator.now();
  sim::SimTime first = 0;
  w.hybrids[0]->Query("hidden gem", [&](const HybridHit& h) {
    if (first == 0) first = h.arrival;
  });
  w.simulator.Run();
  ASSERT_GT(first, 0u);
  sim::SimTime latency = first - start;
  // Latency = 2s Gnutella timeout + a few DHT round trips; well under the
  // pure-Gnutella "never" and above the timeout floor.
  EXPECT_GE(latency, 2 * sim::kSecond);
  EXPECT_LE(latency, 4 * sim::kSecond);
}

TEST(HybridUltrapeerTest, QrsSnoopingPublishesRareResults) {
  HybridConfig hc;
  hc.qrs_threshold = 20;
  World w(hc);
  // UP 1 shares a rare file; UP 0 is its direct neighbor, so a flood from
  // UP 0 finds it and the result batch passes through UP 0's proxy.
  sim::HostId up0 = w.gnutella->ultrapeer(0)->host();
  gnutella::GnutellaNode* neighbor = nullptr;
  size_t neighbor_idx = 0;
  for (size_t i = 1; i < 20; ++i) {
    auto& ns = w.gnutella->ultrapeer(i)->ultrapeer_neighbors();
    if (std::find(ns.begin(), ns.end(), up0) != ns.end()) {
      neighbor = w.gnutella->ultrapeer(i);
      neighbor_idx = i;
      break;
    }
  }
  ASSERT_NE(neighbor, nullptr) << "topology seed must give UP0 a neighbor";
  (void)neighbor_idx;
  neighbor->SetSharedFiles({"snooped rarity bootleg.mp3"});

  std::vector<HybridHit> hits;
  w.hybrids[0]->Query("snooped rarity",
                      [&](const HybridHit& h) { hits.push_back(h); });
  w.simulator.Run();
  ASSERT_GE(hits.size(), 1u);
  EXPECT_FALSE(hits[0].via_dht);
  // The proxy saw a result belonging to a small result set → published it.
  EXPECT_GE(w.hybrids[0]->stats().rare_results_published, 1u);

  // Now ANY hybrid ultrapeer can find it via the DHT even where flooding
  // fails (e.g. UP 10, far away in the sparse mesh).
  std::vector<HybridHit> far_hits;
  w.hybrids[10]->Query("snooped rarity",
                       [&](const HybridHit& h) { far_hits.push_back(h); });
  w.simulator.Run();
  if (!far_hits.empty()) {
    EXPECT_EQ(far_hits[0].filename, "snooped rarity bootleg.mp3");
  }
}

TEST(HybridUltrapeerTest, PublishLocalFilesRespectsPredicate) {
  World w;
  w.gnutella->ultrapeer(5)->SetSharedFiles(
      {"keep this rarity.mp3", "skip that hit.mp3"});
  size_t n = w.hybrids[5]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry& e) {
        return e.filename.find("rarity") != std::string::npos;
      });
  EXPECT_EQ(n, 1u);
  // Republishing the same file is deduplicated.
  size_t again = w.hybrids[5]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry&) { return true; });
  EXPECT_EQ(again, 1u);  // only the previously skipped file
}

TEST(HybridUltrapeerTest, StatsCountQueries) {
  World w;
  w.hybrids[2]->Query("no such thing anywhere", [](const HybridHit&) {});
  w.simulator.Run();
  EXPECT_EQ(w.hybrids[2]->stats().hybrid_queries, 1u);
  EXPECT_EQ(w.hybrids[2]->stats().dht_reissued, 1u);
  EXPECT_EQ(w.hybrids[2]->stats().dht_answered, 0u);
}

TEST(HybridUltrapeerTest, PlanRewriteHookShapesReissuedQueries) {
  // The deployment hook: every DHT fallback's compiled plan passes through
  // HybridConfig::plan_rewrite before execution. Here it caps the reissue
  // to a single answer; two rare matching files exist, one hit comes back.
  HybridConfig hc;
  size_t rewrites = 0;
  hc.plan_rewrite = [&rewrites](pier::QueryPlan* plan) {
    ++rewrites;
    pier::PlanNode limit;
    limit.kind = pier::PlanNode::Kind::kLimit;
    limit.n = 1;
    limit.children.push_back(plan->root);
    plan->nodes.push_back(std::move(limit));
    plan->root = static_cast<uint32_t>(plan->nodes.size() - 1);
  };
  World w(hc);
  w.gnutella->ultrapeer(19)->SetSharedFiles(
      {"twin bootleg unicorn alpha.mp3", "twin bootleg unicorn beta.mp3"});
  size_t published = w.hybrids[19]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry&) { return true; });
  EXPECT_EQ(published, 2u);
  w.simulator.Run();

  std::vector<HybridHit> hits;
  bool done = false;
  w.hybrids[0]->Query("bootleg unicorn",
                      [&](const HybridHit& h) { hits.push_back(h); },
                      [&]() { done = true; });
  w.simulator.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(rewrites, 1u);
  EXPECT_EQ(hits.size(), 1u);  // hook-capped; two matches exist in the DHT
  EXPECT_TRUE(hits[0].via_dht);
}

}  // namespace
}  // namespace pierstack::hybrid
