#include "hybrid/schemes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

namespace pierstack::hybrid {
namespace {

workload::Trace TestTrace() {
  workload::WorkloadConfig c;
  c.num_nodes = 3000;
  c.num_distinct_files = 4000;
  c.vocab_size = 3000;
  c.num_queries = 400;
  c.seed = 77;
  return workload::GenerateTrace(c);
}

TEST(SchemesTest, PerfectScoresAreReplicaCounts) {
  auto t = TestTrace();
  auto scores = PerfectScheme().Scores(t);
  ASSERT_EQ(scores.size(), t.files.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], t.files[i].replicas);
  }
}

TEST(SchemesTest, RandomScoresUniform) {
  auto t = TestTrace();
  auto scores = RandomScheme(5).Scores(t);
  double mean = 0;
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
    mean += s;
  }
  EXPECT_NEAR(mean / scores.size(), 0.5, 0.05);
}

TEST(SchemesTest, QrsScoresOnlyQueriedFiles) {
  auto t = TestTrace();
  auto scores = QrsScheme().Scores(t);
  auto universe = t.QueriedFileUniverse();
  std::vector<bool> queried(t.files.size(), false);
  for (uint32_t f : universe) queried[f] = true;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (queried[i]) {
      EXPECT_TRUE(std::isfinite(scores[i]));
    } else {
      EXPECT_TRUE(std::isinf(scores[i]));
    }
  }
}

TEST(SchemesTest, QrsScoreIsSmallestResultSet) {
  auto t = TestTrace();
  auto scores = QrsScheme().Scores(t);
  for (const auto& q : t.queries) {
    for (uint32_t m : q.matches) {
      EXPECT_LE(scores[m], static_cast<double>(q.total_results));
    }
  }
}

TEST(SchemesTest, TfScoreIsMinTermFrequency) {
  auto t = TestTrace();
  auto scores = TermFrequencyScheme().Scores(t);
  // A file's TF score is at least its own replica count (its terms appear
  // at least in itself).
  for (size_t i = 0; i < t.files.size(); ++i) {
    EXPECT_GE(scores[i], static_cast<double>(t.files[i].replicas));
  }
}

TEST(SchemesTest, TpfMoreSelectiveThanTf) {
  // Pair frequencies are no larger than either member term's frequency.
  auto t = TestTrace();
  auto tf = TermFrequencyScheme().Scores(t);
  auto tpf = TermPairFrequencyScheme().Scores(t);
  size_t le = 0;
  for (size_t i = 0; i < t.files.size(); ++i) {
    if (tpf[i] <= tf[i] + 1e-9) ++le;
  }
  // Nearly all files (all with >= 2 keywords).
  EXPECT_GT(static_cast<double>(le) / t.files.size(), 0.95);
}

TEST(SchemesTest, SamFullSampleEqualsPerfect) {
  auto t = TestTrace();
  auto sam = SamplingScheme(1.0, 9).Scores(t);
  auto perfect = PerfectScheme().Scores(t);
  for (size_t i = 0; i < sam.size(); ++i) {
    EXPECT_DOUBLE_EQ(sam[i], perfect[i]);
  }
}

TEST(SchemesTest, SamIsLowerBoundEstimate) {
  auto t = TestTrace();
  auto sam = SamplingScheme(0.15, 9).Scores(t);
  auto perfect = PerfectScheme().Scores(t);
  for (size_t i = 0; i < sam.size(); ++i) {
    EXPECT_LE(sam[i], perfect[i]);
    EXPECT_GE(sam[i], 0.0);
  }
}

TEST(SchemesTest, SamNames) {
  EXPECT_EQ(SamplingScheme(0.15, 1).name(), "SAM(15%)");
  EXPECT_EQ(SamplingScheme(1.0, 1).name(), "SAM(100%)");
}

TEST(SchemesTest, SelectByBudgetHitsTarget) {
  auto t = TestTrace();
  auto scores = PerfectScheme().Scores(t);
  for (double budget : {0.0, 0.1, 0.3, 0.5, 0.9}) {
    auto pub = SelectByBudget(t, scores, budget);
    double got = PublishedCopiesFraction(t, pub);
    EXPECT_LE(got, budget + 1e-9);
    // Within one max-file granule of the target (the knapsack is greedy).
    if (budget > 0.05) {
      EXPECT_GT(got, budget - 0.1);
    }
  }
}

TEST(SchemesTest, SelectByBudgetPublishesRarestFirstForPerfect) {
  auto t = TestTrace();
  auto scores = PerfectScheme().Scores(t);
  auto pub = SelectByBudget(t, scores, 0.3);
  uint32_t max_pub = 0, min_unpub = UINT32_MAX;
  auto universe = t.QueriedFileUniverse();
  for (uint32_t f : universe) {
    if (pub[f]) {
      max_pub = std::max(max_pub, t.files[f].replicas);
    } else {
      min_unpub = std::min(min_unpub, t.files[f].replicas);
    }
  }
  // Greedy by score: published replica counts stay below (or touch) the
  // first unpublished one.
  EXPECT_LE(max_pub, min_unpub + 1);
}

TEST(SchemesTest, SelectByThreshold) {
  std::vector<double> scores{1, 5, 2, 9};
  auto pub = SelectByThreshold(scores, 4.0);
  EXPECT_EQ(pub, (std::vector<bool>{true, false, true, false}));
}

TEST(SchemesTest, BudgetZeroPublishesNothing) {
  auto t = TestTrace();
  auto pub = SelectByBudget(t, PerfectScheme().Scores(t), 0.0);
  for (bool b : pub) EXPECT_FALSE(b);
}

}  // namespace
}  // namespace pierstack::hybrid
