#include "dht/local_store.h"

#include <gtest/gtest.h>

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(LocalStoreTest, PutGetRoundTrip) {
  LocalStore store;
  EXPECT_TRUE(store.Put("items", 42, Bytes("hello")));
  auto got = store.Get("items", 42, 0);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0]->value, Bytes("hello"));
  EXPECT_EQ(got[0]->key, 42u);
}

TEST(LocalStoreTest, MultipleValuesPerKey) {
  LocalStore store;
  store.Put("inv", 7, Bytes("a"));
  store.Put("inv", 7, Bytes("b"));
  EXPECT_EQ(store.Get("inv", 7, 0).size(), 2u);
}

TEST(LocalStoreTest, DuplicatePayloadDeduped) {
  LocalStore store;
  EXPECT_TRUE(store.Put("inv", 7, Bytes("a")));
  EXPECT_FALSE(store.Put("inv", 7, Bytes("a")));
  EXPECT_EQ(store.Get("inv", 7, 0).size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 1u);
}

TEST(LocalStoreTest, RepublishRefreshesExpiry) {
  LocalStore store;
  store.Put("inv", 7, Bytes("a"), /*expiry=*/100);
  store.Put("inv", 7, Bytes("a"), /*expiry=*/500);
  EXPECT_EQ(store.Get("inv", 7, 200).size(), 1u);  // still alive at 200
}

TEST(LocalStoreTest, NamespacesAreIsolated) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"));
  store.Put("b", 1, Bytes("y"));
  EXPECT_EQ(store.Get("a", 1, 0).size(), 1u);
  EXPECT_EQ(store.Get("a", 1, 0)[0]->value, Bytes("x"));
  EXPECT_EQ(store.Get("b", 1, 0)[0]->value, Bytes("y"));
  EXPECT_TRUE(store.Get("c", 1, 0).empty());
}

TEST(LocalStoreTest, ExpiryHidesValues) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"), /*expiry=*/100);
  EXPECT_EQ(store.Get("a", 1, 50).size(), 1u);
  EXPECT_EQ(store.Get("a", 1, 99).size(), 1u);
  EXPECT_TRUE(store.Get("a", 1, 100).empty());  // expiry is exclusive
  EXPECT_TRUE(store.Get("a", 1, 500).empty());
}

TEST(LocalStoreTest, ZeroExpiryNeverExpires) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"), 0);
  EXPECT_EQ(store.Get("a", 1, UINT64_MAX).size(), 1u);
}

TEST(LocalStoreTest, ScanReturnsAllLiveInNamespace) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"));
  store.Put("a", 2, Bytes("y"));
  store.Put("a", 3, Bytes("z"), /*expiry=*/10);
  EXPECT_EQ(store.Scan("a", 5).size(), 3u);
  EXPECT_EQ(store.Scan("a", 20).size(), 2u);
}

TEST(LocalStoreTest, EraseRemovesAllUnderKey) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"));
  store.Put("a", 1, Bytes("y"));
  store.Put("a", 2, Bytes("z"));
  EXPECT_EQ(store.Erase("a", 1), 2u);
  EXPECT_TRUE(store.Get("a", 1, 0).empty());
  EXPECT_EQ(store.Get("a", 2, 0).size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 1u);
}

TEST(LocalStoreTest, PurgeExpiredDropsAndCounts) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"), 10);
  store.Put("a", 2, Bytes("y"), 20);
  store.Put("b", 3, Bytes("z"));
  EXPECT_EQ(store.PurgeExpired(15), 1u);
  EXPECT_EQ(store.TotalEntries(0), 2u);
}

TEST(LocalStoreTest, ExtractRangeMovesOwnership) {
  LocalStore store;
  store.Put("a", 10, Bytes("ten"));
  store.Put("a", 20, Bytes("twenty"));
  store.Put("a", 30, Bytes("thirty"));
  // Range (15, 30]: keys 20 and 30.
  auto moved = store.ExtractRange("a", 15, 30);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(store.TotalEntries(0), 1u);
  EXPECT_EQ(store.Get("a", 10, 0).size(), 1u);
  EXPECT_TRUE(store.Get("a", 20, 0).empty());
}

TEST(LocalStoreTest, ExtractRangeWrapsRing) {
  LocalStore store;
  store.Put("a", 5, Bytes("five"));
  store.Put("a", UINT64_MAX - 5, Bytes("high"));
  store.Put("a", 1000, Bytes("mid"));
  // (MAX-10, 10] wraps: should take MAX-5 and 5 but not 1000.
  auto moved = store.ExtractRange("a", UINT64_MAX - 10, 10);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(store.Get("a", 1000, 0).size(), 1u);
}

TEST(LocalStoreTest, ExtractAllEmptiesNamespace) {
  LocalStore store;
  store.Put("a", 1, Bytes("x"));
  store.Put("a", 2, Bytes("y"));
  store.Put("b", 3, Bytes("z"));
  auto all = store.ExtractAll("a");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(store.Get("a", 1, 0).empty());
  EXPECT_EQ(store.Get("b", 3, 0).size(), 1u);
  EXPECT_EQ(store.TotalBytes(), 1u);
}

TEST(LocalStoreTest, TotalBytesTracksPayloadSizes) {
  LocalStore store;
  store.Put("a", 1, Bytes("xxxx"));
  store.Put("a", 2, Bytes("yy"));
  EXPECT_EQ(store.TotalBytes(), 6u);
  store.Erase("a", 1);
  EXPECT_EQ(store.TotalBytes(), 2u);
}

TEST(LocalStoreTest, NamespacesList) {
  LocalStore store;
  store.Put("items", 1, Bytes("x"));
  store.Put("inverted", 2, Bytes("y"));
  auto ns = store.Namespaces();
  EXPECT_EQ(ns.size(), 2u);
}

// --- GetBatch image cache ---------------------------------------------------

TEST(LocalStoreImageCacheTest, RepeatedProbesShareOneImage) {
  LocalStore store;
  store.Put("inv", 7, Bytes("aa"));
  store.Put("inv", 7, Bytes("bb"));
  BatchImage first = store.GetBatch("inv", 7, 0);
  BatchImage second = store.GetBatch("inv", 7, 0);
  // Cache hit: literally the same allocation, no re-assembly.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(store.image_cache_stats().misses, 1u);
  EXPECT_EQ(store.image_cache_stats().hits, 1u);
}

TEST(LocalStoreImageCacheTest, PutInvalidates) {
  LocalStore store;
  store.Put("inv", 7, Bytes("aa"));
  BatchImage before = store.GetBatch("inv", 7, 0);
  store.Put("inv", 7, Bytes("bb"));
  BatchImage after = store.GetBatch("inv", 7, 0);
  EXPECT_NE(before.get(), after.get());
  EXPECT_GT(after->size(), before->size());  // new value baked in
  EXPECT_GE(store.image_cache_stats().invalidations, 1u);
  // Other keys keep their cached images.
  store.Put("inv", 8, Bytes("cc"));
  BatchImage other = store.GetBatch("inv", 8, 0);
  BatchImage again = store.GetBatch("inv", 7, 0);
  EXPECT_EQ(after.get(), again.get());
  (void)other;
}

TEST(LocalStoreImageCacheTest, RepublishRefreshInvalidates) {
  LocalStore store;
  store.Put("inv", 7, Bytes("aa"), /*expiry=*/100);
  BatchImage before = store.GetBatch("inv", 7, 50);
  // Refreshing the same payload's expiry must rebuild (valid_until moves).
  store.Put("inv", 7, Bytes("aa"), /*expiry=*/500);
  BatchImage after = store.GetBatch("inv", 7, 200);
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(*before, *after);  // same live set, same bytes
}

TEST(LocalStoreImageCacheTest, ExpiryOfContainedEntrySelfInvalidates) {
  LocalStore store;
  store.Put("inv", 7, Bytes("forever"));
  store.Put("inv", 7, Bytes("soft"), /*expiry=*/100);
  BatchImage live = store.GetBatch("inv", 7, 10);
  // Before the soft entry dies the image is served from cache.
  EXPECT_EQ(store.GetBatch("inv", 7, 99).get(), live.get());
  // At its expiry the image is stale and must be rebuilt without it.
  BatchImage rebuilt = store.GetBatch("inv", 7, 100);
  EXPECT_NE(rebuilt.get(), live.get());
  EXPECT_LT(rebuilt->size(), live->size());
  EXPECT_EQ((*rebuilt)[0], 1u);  // count prefix: one live entry left
}

TEST(LocalStoreImageCacheTest, EraseAndExtractInvalidate) {
  LocalStore store;
  store.Put("inv", 7, Bytes("aa"));
  BatchImage before = store.GetBatch("inv", 7, 0);
  store.Erase("inv", 7);
  BatchImage gone = store.GetBatch("inv", 7, 0);
  EXPECT_EQ((*gone)[0], 0u);  // empty batch

  store.Put("inv", 9, Bytes("bb"));
  BatchImage nine = store.GetBatch("inv", 9, 0);
  store.ExtractAll("inv");
  EXPECT_EQ((*store.GetBatch("inv", 9, 0))[0], 0u);
  (void)before;
  (void)nine;
}

TEST(LocalStoreImageCacheTest, MissServesSharedEmptyImage) {
  LocalStore store;
  BatchImage a = store.GetBatch("nothing", 1, 0);
  BatchImage b = store.GetBatch("nothing", 2, 0);
  ASSERT_EQ(a->size(), 1u);
  EXPECT_EQ((*a)[0], 0u);
  EXPECT_EQ(a.get(), b.get());  // canonical empty image, no allocations
}

// --- Image-cache memory accounting ------------------------------------------

TEST(LocalStoreImageCacheTest, CachedImageBytesChargedIntoTotalBytes) {
  LocalStore store;
  store.Put("inv", 7, Bytes("aaaa"));
  store.Put("inv", 7, Bytes("bb"));
  size_t payload_bytes = store.TotalBytes();
  EXPECT_EQ(payload_bytes, 6u);
  BatchImage image = store.GetBatch("inv", 7, 0);
  // The cached image (count prefix + both frames) now counts as held
  // memory alongside the payloads it duplicates.
  EXPECT_EQ(store.ImageCacheBytes(), image->size());
  EXPECT_EQ(store.TotalBytes(), payload_bytes + image->size());
  // Invalidation releases the charge.
  store.Put("inv", 7, Bytes("c"));
  EXPECT_EQ(store.ImageCacheBytes(), 0u);
  EXPECT_EQ(store.TotalBytes(), 7u);
}

TEST(LocalStoreImageCacheTest, EvictsOldestImagesWhenOverByteBudget) {
  LocalStore store;
  store.set_max_image_cache_bytes_per_ns(64);
  // Three posting lists of ~30 bytes each: caching the third must push the
  // first (oldest) image out to stay under the 64-byte budget.
  for (Key k = 1; k <= 3; ++k) {
    store.Put("inv", k, std::vector<uint8_t>(29, uint8_t(k)));
    store.GetBatch("inv", k, 0);
  }
  EXPECT_EQ(store.image_cache_stats().size_evictions, 1u);
  EXPECT_LE(store.ImageCacheBytes(), 64u);
  // Keys 2 and 3 still hit; key 1 was the eviction victim.
  uint64_t hits_before = store.image_cache_stats().hits;
  store.GetBatch("inv", 2, 0);
  store.GetBatch("inv", 3, 0);
  EXPECT_EQ(store.image_cache_stats().hits, hits_before + 2);
  uint64_t misses_before = store.image_cache_stats().misses;
  store.GetBatch("inv", 1, 0);
  EXPECT_EQ(store.image_cache_stats().misses, misses_before + 1);
}

TEST(LocalStoreImageCacheTest, OversizedImageServedButNotCached) {
  LocalStore store;
  store.set_max_image_cache_bytes_per_ns(16);
  store.Put("inv", 7, std::vector<uint8_t>(64, 0x7));
  BatchImage image = store.GetBatch("inv", 7, 0);
  EXPECT_EQ(image->size(), 65u);  // count prefix + frame
  // A list bigger than the whole budget must not thrash the cache.
  EXPECT_EQ(store.ImageCacheBytes(), 0u);
  EXPECT_EQ(store.TotalBytes(), 64u);
  // Serving it again re-assembles (miss), still without caching.
  store.GetBatch("inv", 7, 0);
  EXPECT_EQ(store.image_cache_stats().hits, 0u);
  EXPECT_EQ(store.image_cache_stats().misses, 2u);
}

TEST(LocalStoreImageCacheTest, NamespaceDropReleasesImageBytes) {
  LocalStore store;
  store.Put("inv", 1, Bytes("abc"));
  store.Put("inv", 2, Bytes("defg"));
  store.GetBatch("inv", 1, 0);
  store.GetBatch("inv", 2, 0);
  EXPECT_GT(store.ImageCacheBytes(), 0u);
  store.ExtractAll("inv");  // namespace-wide invalidation
  EXPECT_EQ(store.ImageCacheBytes(), 0u);
  EXPECT_EQ(store.TotalBytes(), 0u);
}

}  // namespace
}  // namespace pierstack::dht
