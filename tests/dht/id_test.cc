#include "dht/id.h"

#include <gtest/gtest.h>

namespace pierstack::dht {
namespace {

TEST(IdTest, ClockwiseDistanceWraps) {
  EXPECT_EQ(ClockwiseDistance(10, 15), 5u);
  EXPECT_EQ(ClockwiseDistance(15, 10), UINT64_MAX - 4);
  EXPECT_EQ(ClockwiseDistance(7, 7), 0u);
}

TEST(IdTest, RingDistanceSymmetric) {
  EXPECT_EQ(RingDistance(10, 15), 5u);
  EXPECT_EQ(RingDistance(15, 10), 5u);
  EXPECT_EQ(RingDistance(0, UINT64_MAX), 1u);  // adjacent across the wrap
}

TEST(IdTest, InOpenClosedBasic) {
  EXPECT_TRUE(InOpenClosed(10, 20, 15));
  EXPECT_TRUE(InOpenClosed(10, 20, 20));  // closed at b
  EXPECT_FALSE(InOpenClosed(10, 20, 10)); // open at a
  EXPECT_FALSE(InOpenClosed(10, 20, 25));
  EXPECT_FALSE(InOpenClosed(10, 20, 5));
}

TEST(IdTest, InOpenClosedWrapsAroundZero) {
  EXPECT_TRUE(InOpenClosed(UINT64_MAX - 5, 5, 0));
  EXPECT_TRUE(InOpenClosed(UINT64_MAX - 5, 5, UINT64_MAX));
  EXPECT_TRUE(InOpenClosed(UINT64_MAX - 5, 5, 5));
  EXPECT_FALSE(InOpenClosed(UINT64_MAX - 5, 5, 6));
  EXPECT_FALSE(InOpenClosed(UINT64_MAX - 5, 5, UINT64_MAX - 5));
}

TEST(IdTest, DegenerateIntervalIsFullRing) {
  // (a, a] covers everything by convention: a singleton owns all keys.
  EXPECT_TRUE(InOpenClosed(42, 42, 0));
  EXPECT_TRUE(InOpenClosed(42, 42, 42));
  EXPECT_TRUE(InOpenClosed(42, 42, UINT64_MAX));
}

TEST(IdTest, InOpenOpenExcludesBothEnds) {
  EXPECT_TRUE(InOpenOpen(10, 20, 15));
  EXPECT_FALSE(InOpenOpen(10, 20, 10));
  EXPECT_FALSE(InOpenOpen(10, 20, 20));
}

TEST(IdTest, InOpenOpenDegenerate) {
  EXPECT_TRUE(InOpenOpen(42, 42, 7));
  EXPECT_FALSE(InOpenOpen(42, 42, 42));
}

TEST(IdTest, ExactlyOneOfComplementaryIntervals) {
  // For a != b, every x is in exactly one of (a,b] and (b,a].
  Key a = 1000, b = 5000;
  const std::vector<Key> probes{0, 1000, 3000, 5000, 60000, UINT64_MAX};
  for (Key x : probes) {
    EXPECT_NE(InOpenClosed(a, b, x), InOpenClosed(b, a, x)) << x;
  }
}

TEST(IdTest, KeyForStringDeterministic) {
  EXPECT_EQ(KeyForString("madonna"), KeyForString("madonna"));
  EXPECT_NE(KeyForString("madonna"), KeyForString("prayer"));
}

TEST(IdTest, NamespacedKeysSeparateNamespaces) {
  EXPECT_NE(KeyForNamespaced("item", "x"), KeyForNamespaced("inverted", "x"));
}

TEST(IdTest, NodeInfoValidity) {
  NodeInfo n;
  EXPECT_FALSE(n.valid());
  n.host = 3;
  EXPECT_TRUE(n.valid());
}

}  // namespace
}  // namespace pierstack::dht
