// Pluggable next-hop policy: congestion-biased finger choice, the
// greedy-fallback termination guarantee, identical answer sets across
// policies, and routing under churn (cache invalidation convergence plus
// fixed-seed determinism).
#include "dht/routing.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "dht/builder.h"
#include "dht/chord.h"
#include "dht/node.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, DhtOptions opts = {}, uint64_t seed = 808) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), seed);
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }
};

// --- Policy unit behavior --------------------------------------------------

TEST(NextHopPolicyTest, UnloadedNetworkMatchesClassicChoice) {
  // With zero pressure everywhere, the congestion-aware policy must pick
  // exactly what the classic greedy policy picks, for both overlays.
  for (OverlayKind kind : {OverlayKind::kChord, OverlayKind::kBamboo}) {
    DhtOptions opts;
    opts.overlay = kind;
    Deployment d(64, opts);
    auto classic = MakeNextHopPolicy(RoutingPolicyKind::kClassicChord);
    auto aware = MakeNextHopPolicy(RoutingPolicyKind::kCongestionAware);
    LoadProbe probe = [](sim::HostId) { return sim::DestinationLoad{}; };
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
      Key target = rng.Next();
      RoutingTable& table = d.dht->node(i % 64)->routing();
      NextHopChoice c = classic->Choose(table, target, probe);
      NextHopChoice a = aware->Choose(table, target, probe);
      EXPECT_EQ(a.next.host, c.next.host)
          << "overlay=" << static_cast<int>(kind) << " i=" << i;
      EXPECT_FALSE(a.detour);
    }
  }
}

TEST(NextHopPolicyTest, BackedUpClassicHopIsDetouredAround) {
  Deployment d(64);
  auto aware = MakeNextHopPolicy(RoutingPolicyKind::kCongestionAware);
  // Find a (node, target) pair with at least two progress candidates, then
  // pile synthetic pressure onto the classic pick.
  Rng rng(7);
  bool exercised = false;
  for (int i = 0; i < 500 && !exercised; ++i) {
    Key target = rng.Next();
    RoutingTable& table = d.dht->node(i % 64)->routing();
    if (table.IsOwner(target)) continue;
    NodeInfo classic = table.NextHop(target);
    if (classic.host == table.self().host) continue;
    std::vector<NodeInfo> cands;
    table.AppendProgressCandidates(target, &cands);
    bool has_alternative = false;
    for (const NodeInfo& c : cands) {
      if (c.host != classic.host) has_alternative = true;
    }
    if (!has_alternative) continue;
    exercised = true;

    LoadProbe congested = [&](sim::HostId h) {
      sim::DestinationLoad l;
      if (h == classic.host) l.in_flight_messages = 200;  // buried
      return l;
    };
    NextHopChoice choice = aware->Choose(table, target, congested);
    EXPECT_TRUE(choice.detour);
    EXPECT_NE(choice.next.host, classic.host);
    // The detour still makes strict ring progress (termination).
    EXPECT_LT(table.RouteDistance(choice.next.id, target),
              table.RouteDistance(table.self().id, target));

    // ... but when EVERY candidate is equally buried, the greedy fallback
    // keeps the classic pick (never "no route").
    LoadProbe all_congested = [&](sim::HostId) {
      sim::DestinationLoad l;
      l.in_flight_messages = 200;
      return l;
    };
    NextHopChoice fallback = aware->Choose(table, target, all_congested);
    EXPECT_TRUE(fallback.next.valid());
    EXPECT_EQ(fallback.next.host, classic.host);
  }
  EXPECT_TRUE(exercised);
}

// --- End-to-end detours ----------------------------------------------------

/// A hot-spot workload: a slow host on many routes' greedy path. Returns
/// (answers, detours, drops) so policy variants can be compared.
std::tuple<size_t, uint64_t, uint64_t> HotSpotRun(RoutingPolicyKind policy) {
  DhtOptions opts;
  opts.routing_policy = policy;
  opts.owner_location_cache = false;  // isolate the finger-choice effect
  Deployment d(32, opts);
  // Publish under many keys so routes cross the whole ring.
  std::vector<Key> keys;
  for (int i = 0; i < 60; ++i) {
    Key k = KeyForString("hotspot-key-" + std::to_string(i));
    keys.push_back(k);
    d.dht->node(0)->Put("inv", k, Bytes("v"));
  }
  d.simulator.RunFor(10 * sim::kSecond);
  // Slow one node hard: its inbound queue backs up under fan-in, and its
  // latency EWMA grows — both congestion signals.
  sim::HostId slow = d.dht->node(13)->host();
  d.network->SetProcessingDelay(slow, 50 * sim::kMillisecond);
  size_t answers = 0;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      d.dht->node((i * 7 + 1) % 32)->Get(
          "inv", keys[i], [&](Status s, auto values) {
            if (s.ok() && values.size() == 1) ++answers;
          });
    }
    d.simulator.RunFor(10 * sim::kSecond);
  }
  return {answers, d.dht->metrics().congestion_detours,
          d.dht->metrics().routes_dropped};
}

TEST(CongestionRoutingTest, HotSpotDetoursWithIdenticalAnswers) {
  auto [classic_answers, classic_detours, classic_drops] =
      HotSpotRun(RoutingPolicyKind::kClassicChord);
  auto [aware_answers, aware_detours, aware_drops] =
      HotSpotRun(RoutingPolicyKind::kCongestionAware);
  // Identical answer sets — the policy changes paths, never results.
  EXPECT_EQ(aware_answers, classic_answers);
  EXPECT_EQ(classic_detours, 0u);
  EXPECT_GT(aware_detours, 0u);
  // Detoured routing still terminates everywhere (no hop-limit drops).
  EXPECT_EQ(classic_drops, 0u);
  EXPECT_EQ(aware_drops, 0u);
}

// --- Churn -----------------------------------------------------------------

TEST(ChurnRoutingTest, CacheInvalidatesOnCrashAndFallsBackToRing) {
  DhtOptions opts;
  opts.replication = 3;
  opts.maintenance = true;
  // This test IS about the cache: pin the policy regardless of the env
  // default (the classic CI leg turns the cache off deployment-wide).
  opts.routing_policy = RoutingPolicyKind::kCongestionAware;
  // Replica peels answer without teaching; force owner-authoritative
  // answers so the warming get deterministically caches the owner.
  opts.replica_aware_reads = false;
  Deployment d(24, opts);
  Key k = KeyForString("churn-key");
  d.dht->node(0)->Put("inv", k, Bytes("v"));
  d.simulator.RunFor(10 * sim::kSecond);

  // Warm the reader's cache onto the current owner.
  DhtNode* owner = d.dht->ExpectedOwner(k);
  DhtNode* reader = nullptr;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    if (d.dht->node(i) != owner &&
        d.dht->node(i)->store().Get("inv", k, 0).empty()) {
      reader = d.dht->node(i);
      break;
    }
  }
  ASSERT_NE(reader, nullptr);
  bool ok = false;
  reader->Get("inv", k, [&](Status s, auto v) { ok = s.ok() && !v.empty(); });
  d.simulator.RunFor(10 * sim::kSecond);
  ASSERT_TRUE(ok);
  ASSERT_TRUE(reader->route_cache().Lookup(k).valid());

  // Kill the cached owner mid-workload. The fast path's direct send is
  // REFUSED (failure detector), the entry is dropped, and the request
  // re-routes over the repaired ring to a replica-backed answer — a dead
  // address never swallows a request.
  owner->Crash();
  d.simulator.RunFor(60 * sim::kSecond);  // let stabilization repair
  uint64_t stale_before = d.dht->metrics().route_cache_stale;
  Status status = Status::Internal("callback not called");
  std::vector<std::vector<uint8_t>> got;
  reader->Get("inv", k, [&](Status s, auto values) {
    status = s;
    got = std::move(values);
  });
  d.simulator.RunFor(10 * sim::kSecond);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes("v"));
  EXPECT_EQ(d.dht->metrics().route_cache_stale, stale_before + 1);
  // The dead address is purged: no later send can target it silently.
  EXPECT_FALSE(reader->route_cache().Lookup(k).valid() &&
               reader->route_cache().Lookup(k).host == owner->host());

  // The workload keeps converging: the next get still answers, and the
  // reader's cache never resurrects the dead host.
  ok = false;
  reader->Get("inv", k, [&](Status s, auto v) { ok = s.ok() && !v.empty(); });
  d.simulator.RunFor(10 * sim::kSecond);
  EXPECT_TRUE(ok);
  NodeInfo relearned = reader->route_cache().Lookup(k);
  EXPECT_TRUE(!relearned.valid() || relearned.host != owner->host());
}

/// One full churn workload; returns a counter fingerprint for the
/// determinism check.
std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t> ChurnRun() {
  DhtOptions opts;
  opts.replication = 3;
  opts.maintenance = true;
  opts.routing_policy = RoutingPolicyKind::kCongestionAware;
  Deployment d(20, opts);
  std::vector<Key> keys;
  for (int i = 0; i < 40; ++i) {
    Key k = KeyForString("det-key-" + std::to_string(i));
    keys.push_back(k);
    d.dht->node(0)->Put("inv", k, Bytes("v" + std::to_string(i)));
  }
  d.simulator.RunFor(10 * sim::kSecond);
  size_t answers = 0;
  auto workload = [&](size_t reader) {
    for (Key k : keys) {
      d.dht->node(reader)->Get("inv", k, [&](Status s, auto values) {
        if (s.ok() && !values.empty()) ++answers;
      });
    }
    d.simulator.RunFor(5 * sim::kSecond);
  };
  workload(1);
  d.dht->node(7)->Crash();
  d.simulator.RunFor(30 * sim::kSecond);
  workload(2);
  d.dht->node(11)->LeaveGracefully();
  d.simulator.RunFor(30 * sim::kSecond);
  workload(3);
  d.simulator.RunFor(10 * sim::kSecond);
  const DhtMetrics& m = d.dht->metrics();
  return {answers, m.total_hops, m.route_cache_hits, m.route_cache_stale,
          m.routes_dropped + d.network->metrics().dropped_messages};
}

TEST(ChurnRoutingTest, FixedSeedChurnWorkloadIsDeterministic) {
  // ctest must stay reproducible under churn: two identical runs produce
  // identical transport counters, cache behavior included.
  auto first = ChurnRun();
  auto second = ChurnRun();
  EXPECT_EQ(first, second);
  // And the workload actually answered things.
  EXPECT_GT(std::get<0>(first), 100u);
}

}  // namespace
}  // namespace pierstack::dht
