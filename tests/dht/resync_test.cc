// Replica re-sync: after an ownership transfer (crash repair or join), the
// anti-entropy rounds must restore every surviving key range to full
// replication — no range stays below DhtOptions::replication longer than a
// bounded number of repair rounds.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dht/builder.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pierstack::dht {
namespace {

constexpr char kNs[] = "resync";

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  Deployment(size_t n, size_t replication) {
    network = std::make_unique<sim::Network>(
        &simulator, std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond),
        42);
    DhtOptions opts;
    opts.overlay = OverlayKind::kChord;
    opts.replication = replication;
    opts.maintenance = true;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }

  void Settle(sim::SimTime duration) { simulator.RunFor(duration); }

  DhtNode* NodeByHost(sim::HostId host) {
    for (size_t i = 0; i < dht->size(); ++i) {
      if (dht->node(i)->host() == host) return dht->node(i);
    }
    return nullptr;
  }

  /// Number of live holders of (kNs, key) among the key's current owner and
  /// its replica targets — the replication level repair must restore.
  size_t LiveCopies(Key key, size_t replication) {
    DhtNode* owner = dht->ExpectedOwner(key);
    if (owner == nullptr) return 0;
    size_t copies =
        owner->store().Has(kNs, key, simulator.now()) ? 1 : 0;
    for (const NodeInfo& r : owner->routing().ReplicaTargets(replication - 1)) {
      DhtNode* holder = NodeByHost(r.host);
      if (holder != nullptr && holder->joined() &&
          holder->store().Has(kNs, key, simulator.now())) {
        ++copies;
      }
    }
    return copies;
  }
};

std::vector<Key> TestKeys(size_t n) {
  std::vector<Key> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back((i + 1) * 0x9E3779B97F4A7C15ull);
  }
  return keys;
}

void PublishAll(Deployment* d, const std::vector<Key>& keys) {
  for (Key k : keys) {
    d->dht->node(0)->Put(kNs, k, {uint8_t(k & 0xFF), 7, 9}, 0, nullptr);
  }
  d->Settle(10 * sim::kSecond);
}

TEST(ResyncTest, CrashRestoresFullReplicationWithinBoundedRounds) {
  constexpr size_t kReplication = 3;
  Deployment d(12, kReplication);
  std::vector<Key> keys = TestKeys(40);
  PublishAll(&d, keys);

  // Baseline: every key fully replicated before the failure.
  for (Key k : keys) {
    ASSERT_EQ(d.LiveCopies(k, kReplication), kReplication) << "key " << k;
  }

  // Crash two non-bootstrap nodes. Every key they held drops below the
  // replication floor until repair + re-sync run.
  d.dht->node(3)->Crash();
  d.dht->node(7)->Crash();

  // Stabilize repairs the ring, the membership listeners mark the changed
  // owners dirty, and the periodic re-sync rounds (1s cadence) ship the
  // missing entries. 30s is many times the bound; the assertion below is
  // the floor restoration itself.
  d.Settle(30 * sim::kSecond);

  for (Key k : keys) {
    EXPECT_EQ(d.LiveCopies(k, kReplication), kReplication) << "key " << k << " " << [&] {
      std::string desc;
      DhtNode* owner = d.dht->ExpectedOwner(k);
      desc += "owner host " + std::to_string(owner->host()) +
              " has=" + std::to_string(owner->store().Has(kNs, k, d.simulator.now()));
      for (const NodeInfo& r : owner->routing().ReplicaTargets(2)) {
        DhtNode* h = d.NodeByHost(r.host);
        desc += " | replica host " + std::to_string(r.host) +
                " joined=" + std::to_string(h && h->joined()) +
                " has=" + std::to_string(h && h->store().Has(kNs, k, d.simulator.now()));
      }
      return desc;
    }();
  }
  EXPECT_GT(d.dht->metrics().resync_rounds, 0u);
  EXPECT_GT(d.dht->metrics().resync_entries, 0u);
  EXPECT_GT(d.dht->metrics().resync_bytes, 0u);
}

TEST(ResyncTest, MembershipChangeBumpsEpochAndFencesCaches) {
  Deployment d(12, 3);
  std::vector<Key> keys = TestKeys(10);
  PublishAll(&d, keys);

  uint64_t bumps_before = d.dht->metrics().epoch_bumps;
  // Record a surviving neighbor's epoch: the crash moves its ring
  // neighborhood, so its own counter must advance too.
  DhtNode* survivor = d.dht->node(2);
  uint64_t epoch_before = survivor->membership_epoch();

  d.dht->node(3)->Crash();
  d.Settle(15 * sim::kSecond);

  EXPECT_GT(d.dht->metrics().epoch_bumps, bumps_before);
  // At least one node observed an ownership change; the specific survivor
  // only advances if node 3 sat in its neighborhood, so assert the global
  // counter and allow the local one to be unchanged.
  EXPECT_GE(survivor->membership_epoch(), epoch_before);
}

TEST(ResyncTest, StableRingRunsNoResyncRounds) {
  Deployment d(12, 3);
  std::vector<Key> keys = TestKeys(10);
  PublishAll(&d, keys);

  uint64_t rounds_after_settle = d.dht->metrics().resync_rounds;
  d.Settle(20 * sim::kSecond);
  // The dirty flag only arms on membership change: a quiet ring must not
  // keep digesting its arcs forever.
  EXPECT_EQ(d.dht->metrics().resync_rounds, rounds_after_settle);
}

TEST(ResyncTest, ReplicationOneRunsNoResync) {
  Deployment d(8, 1);
  std::vector<Key> keys = TestKeys(10);
  PublishAll(&d, keys);
  d.dht->node(3)->Crash();
  d.Settle(15 * sim::kSecond);
  EXPECT_EQ(d.dht->metrics().resync_rounds, 0u);
  EXPECT_EQ(d.dht->metrics().resync_entries, 0u);
}

}  // namespace
}  // namespace pierstack::dht
