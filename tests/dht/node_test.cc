#include "dht/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dht/builder.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, OverlayKind kind = OverlayKind::kChord,
                      size_t replication = 1) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 99);
    DhtOptions opts;
    opts.overlay = kind;
    opts.replication = replication;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 1234);
  }
};

TEST(DhtNodeTest, PutThenGetFromAnyNode) {
  Deployment d(32);
  Key k = KeyForString("madonna");
  d.dht->node(3)->Put("inverted", k, Bytes("file1"));
  d.simulator.Run();

  std::vector<std::vector<uint8_t>> got;
  Status status = Status::Internal("callback not called");
  d.dht->node(17)->Get("inverted", k, [&](Status s, auto values) {
    status = s;
    got = std::move(values);
  });
  d.simulator.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes("file1"));
}

TEST(DhtNodeTest, ValueStoredAtExpectedOwner) {
  Deployment d(64);
  Key k = KeyForString("prayer");
  d.dht->node(0)->Put("inverted", k, Bytes("x"));
  d.simulator.Run();
  DhtNode* owner = d.dht->ExpectedOwner(k);
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->store().Get("inverted", k, 0).size(), 1u);
  // And nowhere else.
  for (size_t i = 0; i < d.dht->size(); ++i) {
    if (d.dht->node(i) == owner) continue;
    EXPECT_TRUE(d.dht->node(i)->store().Get("inverted", k, 0).empty());
  }
}

TEST(DhtNodeTest, MultipleValuesAccumulateUnderKey) {
  Deployment d(16);
  Key k = KeyForString("beatles");
  d.dht->node(1)->Put("inv", k, Bytes("a"));
  d.dht->node(2)->Put("inv", k, Bytes("b"));
  d.dht->node(3)->Put("inv", k, Bytes("c"));
  d.simulator.Run();
  std::vector<std::vector<uint8_t>> got;
  d.dht->node(9)->Get("inv", k, [&](Status s, auto values) {
    ASSERT_TRUE(s.ok());
    got = std::move(values);
  });
  d.simulator.Run();
  EXPECT_EQ(got.size(), 3u);
}

TEST(DhtNodeTest, GetMissingKeyReturnsEmpty) {
  Deployment d(16);
  bool called = false;
  d.dht->node(0)->Get("inv", KeyForString("nothing"), [&](Status s, auto v) {
    called = true;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(v.empty());
  });
  d.simulator.Run();
  EXPECT_TRUE(called);
}

TEST(DhtNodeTest, PutAckArrives) {
  Deployment d(16);
  bool acked = false;
  d.dht->node(5)->Put("inv", KeyForString("ack"), Bytes("v"), 0,
                      [&](Status s) {
                        acked = true;
                        EXPECT_TRUE(s.ok());
                      });
  d.simulator.Run();
  EXPECT_TRUE(acked);
}

TEST(DhtNodeTest, LookupFindsExpectedOwner) {
  Deployment d(48);
  Key k = KeyForString("lookup-key");
  NodeInfo found;
  d.dht->node(11)->Lookup(k, [&](Status s, NodeInfo owner, uint32_t hops) {
    ASSERT_TRUE(s.ok());
    found = owner;
    EXPECT_LE(hops, 48u);
  });
  d.simulator.Run();
  EXPECT_EQ(found.host, d.dht->ExpectedOwner(k)->host());
}

TEST(DhtNodeTest, RouteHopsAreLogarithmic) {
  Deployment d(256);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Key k = rng.Next();
    size_t start = static_cast<size_t>(rng.NextBelow(256));
    d.dht->node(start)->Lookup(k, [](Status, NodeInfo, uint32_t) {});
  }
  d.simulator.Run();
  // mean hops should be around 0.5*log2(256) = 4.
  EXPECT_GT(d.dht->metrics().MeanHops(), 1.0);
  EXPECT_LT(d.dht->metrics().MeanHops(), 8.0);
  EXPECT_EQ(d.dht->metrics().routes_dropped, 0u);
}

TEST(DhtNodeTest, UserUpcallFiresAtOwner) {
  Deployment d(24);
  constexpr int kMyApp = kAppUserBase + 7;
  Key k = KeyForString("upcall");
  DhtNode* owner = d.dht->ExpectedOwner(k);
  int fired = 0;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    d.dht->node(i)->SetUpcallHandler(kMyApp, [&, i](const RouteMsg& m) {
      ++fired;
      EXPECT_EQ(d.dht->node(i)->host(), owner->host());
      EXPECT_EQ(m.body<std::string>(), "hello");
      EXPECT_EQ(m.origin.host, d.dht->node(2)->host());
    });
  }
  d.dht->node(2)->Route(k, kMyApp, std::make_shared<const std::string>("hello"),
                        5);
  d.simulator.Run();
  EXPECT_EQ(fired, 1);
}

TEST(DhtNodeTest, DirectMessagesBypassRouting) {
  Deployment d(8);
  bool got = false;
  d.dht->node(6)->SetDirectHandler(
      [&](sim::HostId from, const sim::Message& msg) {
        got = true;
        EXPECT_EQ(from, d.dht->node(1)->host());
        EXPECT_EQ(msg.as<std::string>(), "direct");
      });
  d.dht->node(1)->SendDirect(
      d.dht->node(6)->host(),
      sim::Message::Make<std::string>(DhtNode::kDirectApp, "app.direct", 6,
                                      std::string("direct")));
  d.simulator.Run();
  EXPECT_TRUE(got);
  // Exactly one network message: no overlay hops.
  EXPECT_EQ(d.network->metrics().by_tag.at("app.direct").messages, 1u);
}

TEST(DhtNodeTest, ReplicationCopiesToSuccessors) {
  Deployment d(16, OverlayKind::kChord, /*replication=*/3);
  Key k = KeyForString("replicated");
  d.dht->node(0)->Put("inv", k, Bytes("v"));
  d.simulator.Run();
  int copies = 0;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    copies += !d.dht->node(i)->store().Get("inv", k, 0).empty();
  }
  EXPECT_EQ(copies, 3);
}

TEST(DhtNodeTest, ExpiredValuesNotReturned) {
  Deployment d(8);
  Key k = KeyForString("soft-state");
  d.dht->node(0)->Put("inv", k, Bytes("v"), /*expiry=*/sim::kSecond);
  d.simulator.Run();
  // Advance past expiry, then Get.
  d.simulator.RunUntil(2 * sim::kSecond);
  std::vector<std::vector<uint8_t>> got;
  d.dht->node(4)->Get("inv", k, [&](Status s, auto values) {
    ASSERT_TRUE(s.ok());
    got = std::move(values);
  });
  d.simulator.Run();
  EXPECT_TRUE(got.empty());
}

TEST(DhtNodeTest, BambooOverlayServesPutGet) {
  Deployment d(48, OverlayKind::kBamboo);
  Key k = KeyForString("bamboo-key");
  d.dht->node(7)->Put("inv", k, Bytes("v"));
  d.simulator.Run();
  DhtNode* owner = d.dht->ExpectedOwner(k);
  EXPECT_EQ(owner->store().Get("inv", k, 0).size(), 1u);
  bool got = false;
  d.dht->node(33)->Get("inv", k, [&](Status s, auto values) {
    ASSERT_TRUE(s.ok());
    got = values.size() == 1;
  });
  d.simulator.Run();
  EXPECT_TRUE(got);
}

TEST(DhtNodeTest, BambooRoutesLogarithmically) {
  Deployment d(256, OverlayKind::kBamboo);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    d.dht->node(static_cast<size_t>(rng.NextBelow(256)))
        ->Lookup(rng.Next(), [](Status, NodeInfo, uint32_t) {});
  }
  d.simulator.Run();
  EXPECT_LT(d.dht->metrics().MeanHops(), 4.0);  // ~log16(256) = 2
  EXPECT_EQ(d.dht->metrics().routes_dropped, 0u);
}

TEST(DhtNodeTest, MetricsCountOperations) {
  Deployment d(8);
  d.dht->node(0)->Put("inv", 1, Bytes("a"));
  d.dht->node(0)->Get("inv", 1, [](Status, auto) {});
  d.simulator.Run();
  EXPECT_EQ(d.dht->metrics().puts, 1u);
  EXPECT_EQ(d.dht->metrics().gets, 1u);
  EXPECT_GE(d.dht->metrics().routes_delivered, 2u);
}

// Put/Get agreement must hold across overlay kinds and sizes.
struct PutGetParam {
  OverlayKind kind;
  size_t n;
};

class PutGetSweep : public ::testing::TestWithParam<PutGetParam> {};

TEST_P(PutGetSweep, EveryNodeCanReachEveryKey) {
  Deployment d(GetParam().n, GetParam().kind);
  Rng rng(7);
  // Publish 20 keys from random nodes; read each from 3 other random nodes.
  std::vector<Key> keys;
  for (int i = 0; i < 20; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    size_t src = static_cast<size_t>(rng.NextBelow(GetParam().n));
    d.dht->node(src)->Put("sweep", k, Bytes(std::to_string(i)));
  }
  d.simulator.Run();
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    for (int r = 0; r < 3; ++r) {
      size_t reader = static_cast<size_t>(rng.NextBelow(GetParam().n));
      d.dht->node(reader)->Get("sweep", keys[static_cast<size_t>(i)],
                               [&, i](Status s, auto values) {
                                 ASSERT_TRUE(s.ok());
                                 ASSERT_EQ(values.size(), 1u);
                                 EXPECT_EQ(values[0],
                                           Bytes(std::to_string(i)));
                                 ++ok;
                               });
    }
  }
  d.simulator.Run();
  EXPECT_EQ(ok, 60);
}

INSTANTIATE_TEST_SUITE_P(
    Overlays, PutGetSweep,
    ::testing::Values(PutGetParam{OverlayKind::kChord, 4},
                      PutGetParam{OverlayKind::kChord, 33},
                      PutGetParam{OverlayKind::kChord, 100},
                      PutGetParam{OverlayKind::kBamboo, 4},
                      PutGetParam{OverlayKind::kBamboo, 33},
                      PutGetParam{OverlayKind::kBamboo, 100}));

}  // namespace
}  // namespace pierstack::dht
