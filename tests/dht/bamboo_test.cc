#include "dht/bamboo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace pierstack::dht {
namespace {

std::vector<NodeInfo> MakeRing(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back(NodeInfo{rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
  return members;
}

std::vector<std::unique_ptr<BambooRouting>> BuildAll(
    const std::vector<NodeInfo>& members) {
  std::vector<std::unique_ptr<BambooRouting>> tables;
  for (const auto& m : members) {
    auto t = std::make_unique<BambooRouting>(m);
    t->BuildStatic(members);
    tables.push_back(std::move(t));
  }
  return tables;
}

std::pair<sim::HostId, int> RouteOnTables(
    const std::vector<std::unique_ptr<BambooRouting>>& tables,
    const std::vector<NodeInfo>& members, size_t start, Key target) {
  size_t cur = start;
  for (int hops = 0; hops < 200; ++hops) {
    if (tables[cur]->IsOwner(target)) return {members[cur].host, hops};
    NodeInfo next = tables[cur]->NextHop(target);
    if (next.host == members[cur].host) return {members[cur].host, hops};
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i].host == next.host) {
        cur = i;
        break;
      }
    }
  }
  return {sim::kInvalidHost, 200};
}

TEST(BambooTest, DigitExtraction) {
  Key k = 0xA123456789ABCDEFull;
  EXPECT_EQ(BambooRouting::DigitAt(k, 0), 0xA);
  EXPECT_EQ(BambooRouting::DigitAt(k, 1), 0x1);
  EXPECT_EQ(BambooRouting::DigitAt(k, 15), 0xF);
}

TEST(BambooTest, SharedPrefixDigits) {
  EXPECT_EQ(BambooRouting::SharedPrefixDigits(0xAB00000000000000ull,
                                              0xAB00000000000000ull),
            16);
  EXPECT_EQ(BambooRouting::SharedPrefixDigits(0xAB00000000000000ull,
                                              0xAC00000000000000ull),
            1);
  EXPECT_EQ(BambooRouting::SharedPrefixDigits(0x1000000000000000ull,
                                              0xF000000000000000ull),
            0);
}

TEST(BambooTest, OwnershipPartitionsKeySpace) {
  auto members = MakeRing(32, 21);
  auto tables = BuildAll(members);
  Rng rng(22);
  for (int trial = 0; trial < 500; ++trial) {
    Key k = rng.Next();
    int owners = 0;
    for (const auto& t : tables) owners += t->IsOwner(k);
    EXPECT_EQ(owners, 1) << "key " << k;
  }
}

TEST(BambooTest, OwnerIsNumericallyClosestNode) {
  auto members = MakeRing(40, 23);
  auto tables = BuildAll(members);
  Rng rng(24);
  for (int trial = 0; trial < 200; ++trial) {
    Key k = rng.Next();
    // Ground truth: minimal RingDistance, clockwise tie break.
    NodeInfo expect = members[0];
    for (const auto& m : members) {
      Key dm = RingDistance(m.id, k);
      Key de = RingDistance(expect.id, k);
      if (dm < de || (dm == de && ClockwiseDistance(m.id, k) <
                                      ClockwiseDistance(expect.id, k))) {
        expect = m;
      }
    }
    for (size_t i = 0; i < members.size(); ++i) {
      if (tables[i]->IsOwner(k)) {
        EXPECT_EQ(members[i].host, expect.host);
      }
    }
  }
}

TEST(BambooTest, AllStartsRouteToSameOwner) {
  auto members = MakeRing(64, 25);
  auto tables = BuildAll(members);
  Rng rng(26);
  for (int trial = 0; trial < 100; ++trial) {
    Key k = rng.Next();
    auto [owner0, hops0] = RouteOnTables(tables, members, 0, k);
    ASSERT_NE(owner0, sim::kInvalidHost);
    for (size_t start : {5ul, 31ul, 63ul}) {
      auto [owner, hops] = RouteOnTables(tables, members, start, k);
      EXPECT_EQ(owner, owner0);
    }
  }
}

TEST(BambooTest, PrefixRoutingIsLogarithmic) {
  for (size_t n : {64ul, 256ul, 1024ul}) {
    auto members = MakeRing(n, 27);
    auto tables = BuildAll(members);
    Rng rng(28);
    double total = 0;
    const int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
      Key k = rng.Next();
      size_t start = static_cast<size_t>(rng.NextBelow(n));
      auto [owner, hops] = RouteOnTables(tables, members, start, k);
      ASSERT_NE(owner, sim::kInvalidHost);
      total += hops;
    }
    double mean = total / kTrials;
    // Pastry bound: log_16 N hops plus small constant.
    double log16 = std::log2(static_cast<double>(n)) / 4.0;
    EXPECT_LE(mean, log16 + 2.0) << "n=" << n;
  }
}

TEST(BambooTest, SingletonOwnsEverything) {
  NodeInfo solo{77, 0};
  BambooRouting t(solo);
  t.BuildStatic({solo});
  EXPECT_TRUE(t.IsOwner(0));
  EXPECT_TRUE(t.IsOwner(UINT64_MAX));
  EXPECT_EQ(t.NextHop(12345).host, solo.host);
}

TEST(BambooTest, LeafSetsSurroundSelf) {
  auto members = MakeRing(20, 29);
  BambooRouting t(members[10], /*leaf_set_half=*/3);
  t.BuildStatic(members);
  ASSERT_EQ(t.leaves_cw().size(), 3u);
  ASSERT_EQ(t.leaves_ccw().size(), 3u);
  EXPECT_EQ(t.leaves_cw()[0].host, members[11].host);
  EXPECT_EQ(t.leaves_ccw()[0].host, members[9].host);
}

TEST(BambooTest, RemovePeerPurgesState) {
  auto members = MakeRing(20, 30);
  BambooRouting t(members[5]);
  t.BuildStatic(members);
  sim::HostId victim = members[6].host;
  t.RemovePeer(victim);
  for (const auto& p : t.KnownPeers()) EXPECT_NE(p.host, victim);
}

TEST(BambooTest, ReplicaTargetsAlternateSides) {
  auto members = MakeRing(20, 31);
  BambooRouting t(members[8]);
  t.BuildStatic(members);
  auto reps = t.ReplicaTargets(4);
  ASSERT_EQ(reps.size(), 4u);
  EXPECT_EQ(reps[0].host, members[9].host);   // nearest cw
  EXPECT_EQ(reps[1].host, members[7].host);   // nearest ccw
  EXPECT_EQ(reps[2].host, members[10].host);
  EXPECT_EQ(reps[3].host, members[6].host);
}

// Ownership consistency must hold for any ring size (property sweep).
class BambooSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BambooSizeSweep, ExactlyOneOwnerPerKey) {
  auto members = MakeRing(GetParam(), 32);
  auto tables = BuildAll(members);
  Rng rng(33);
  for (int trial = 0; trial < 100; ++trial) {
    Key k = rng.Next();
    int owners = 0;
    for (const auto& t : tables) owners += t->IsOwner(k);
    EXPECT_EQ(owners, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BambooSizeSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 33, 128));

}  // namespace
}  // namespace pierstack::dht
