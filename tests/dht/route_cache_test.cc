// Owner location cache: arc learning from routed replies, the one-hop
// fast path, staleness fallback, and the replica interaction rules.
#include "dht/route_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dht/builder.h"
#include "dht/node.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

OwnerHint Hint(Key arc_start, Key arc_end, NodeInfo owner) {
  OwnerHint h;
  h.owner = owner;
  h.arc_start = arc_start;
  h.arc_end = arc_end;
  h.valid = true;
  return h;
}

// --- RouteCache unit tests -------------------------------------------------

TEST(RouteCacheTest, LookupFindsCoveringArc) {
  RouteCache cache;
  NodeInfo a{100, 1}, b{200, 2};
  cache.Teach(Hint(50, 100, a));
  cache.Teach(Hint(100, 200, b));
  EXPECT_EQ(cache.Lookup(80).host, a.host);
  EXPECT_EQ(cache.Lookup(100).host, a.host);  // arc end inclusive
  EXPECT_EQ(cache.Lookup(101).host, b.host);
  EXPECT_EQ(cache.Lookup(150).host, b.host);
  EXPECT_FALSE(cache.Lookup(50).valid());   // arc start exclusive
  EXPECT_FALSE(cache.Lookup(300).valid());  // uncovered
}

TEST(RouteCacheTest, LookupWrapsAroundRingOrigin) {
  RouteCache cache;
  // The arc straddling key 0: (2^64 - 100, 50].
  NodeInfo wrap{50, 7};
  cache.Teach(Hint(static_cast<Key>(0) - 100, 50, wrap));
  EXPECT_EQ(cache.Lookup(0).host, wrap.host);
  EXPECT_EQ(cache.Lookup(static_cast<Key>(0) - 5).host, wrap.host);
  EXPECT_EQ(cache.Lookup(50).host, wrap.host);
  EXPECT_FALSE(cache.Lookup(51).valid());
}

TEST(RouteCacheTest, TeachReportsReplacedOwnerAsStale) {
  RouteCache cache;
  NodeInfo a{100, 1}, b{100, 2};
  EXPECT_FALSE(cache.Teach(Hint(50, 100, a)));
  EXPECT_FALSE(cache.Teach(Hint(50, 100, a)));  // refresh: same owner
  EXPECT_TRUE(cache.Teach(Hint(60, 100, b)));   // ownership moved
  EXPECT_EQ(cache.Lookup(90).host, b.host);
}

TEST(RouteCacheTest, ForgetHostDropsAllItsArcs) {
  RouteCache cache;
  NodeInfo a{100, 1}, b{200, 2};
  cache.Teach(Hint(50, 100, a));
  cache.Teach(Hint(100, 200, b));
  cache.ForgetHost(1);
  EXPECT_FALSE(cache.Lookup(80).valid());
  EXPECT_EQ(cache.Lookup(150).host, b.host);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RouteCacheTest, CapacityEvictsOldestTaughtArc) {
  RouteCache cache(/*capacity=*/4);
  for (Key i = 0; i < 6; ++i) {
    cache.Teach(Hint(i * 100, i * 100 + 50,
                     NodeInfo{i * 100 + 50, static_cast<sim::HostId>(i)}));
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_FALSE(cache.Lookup(25).valid());    // arc 0: evicted
  EXPECT_FALSE(cache.Lookup(125).valid());   // arc 1: evicted
  EXPECT_TRUE(cache.Lookup(525).valid());    // newest survives
}

TEST(RouteCacheTest, FenceEpochPurgesOldEntriesAndReportsCount) {
  RouteCache cache;
  NodeInfo a{100, 1}, b{200, 2};
  cache.Teach(Hint(50, 100, a));
  cache.Teach(Hint(100, 200, b));
  ASSERT_EQ(cache.size(), 2u);

  // The fence drops every arc taught under the old epoch and says how
  // many — the caller's dht.route_cache_stale increment.
  EXPECT_EQ(cache.FenceEpoch(), 2u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(80).valid());
  EXPECT_FALSE(cache.Lookup(150).valid());

  // An arc re-taught under the new epoch serves lookups again, and is in
  // turn purged (and counted) when the epoch moves once more.
  cache.Teach(Hint(50, 100, a));
  EXPECT_EQ(cache.Lookup(80).host, a.host);
  EXPECT_EQ(cache.FenceEpoch(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RouteCacheTest, StaleExactKeyEntryDoesNotMaskWiderArc) {
  RouteCache cache;
  NodeInfo owner{1000, 1}, stale{77, 9};
  cache.Teach(Hint(500, 1000, owner));
  // A stale degenerate hint sits inside the live arc.
  cache.Teach(Hint(699, 700, stale));
  // Keys past the exact entry still resolve through the wider arc.
  EXPECT_EQ(cache.Lookup(800).host, owner.host);
  EXPECT_EQ(cache.Lookup(700).host, stale.host);
  // The probe walks past the non-covering exact entry.
  EXPECT_EQ(cache.Lookup(650).host, owner.host);
}

// --- DhtNode integration ---------------------------------------------------

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, size_t replication = 1,
                      bool cache_on = true) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 99);
    DhtOptions opts;
    opts.replication = replication;
    opts.routing_policy = RoutingPolicyKind::kCongestionAware;
    opts.owner_location_cache = cache_on;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 4321);
  }
};

/// A node whose ring route toward `k` is at least two hops (its greedy
/// first hop is not the owner) — makes cold-vs-warm hop counts
/// deterministic instead of depending on finger luck. Nodes that already
/// routed toward `k` (e.g. the publisher, whose own put warmed its cache)
/// are excluded via `skip`.
DhtNode* MultiHopReader(DhtDeployment* dht, Key k, DhtNode* skip = nullptr) {
  DhtNode* owner = dht->ExpectedOwner(k);
  for (size_t i = 0; i < dht->size(); ++i) {
    DhtNode* n = dht->node(i);
    if (n == owner || n == skip) continue;
    if (n->routing().NextHop(k).host != owner->host()) return n;
  }
  return nullptr;
}

TEST(RouteCacheNodeTest, RepeatedGetsConvergeToOneHop) {
  Deployment d(48);
  Key k = KeyForString("hot-posting-list");
  d.dht->node(0)->Put("inv", k, Bytes("v"));
  d.simulator.Run();

  DhtNode* reader = MultiHopReader(d.dht.get(), k, d.dht->node(0));
  ASSERT_NE(reader, nullptr);
  auto get_once = [&]() {
    bool ok = false;
    reader->Get("inv", k, [&](Status s, auto values) {
      ok = s.ok() && values.size() == 1;
    });
    d.simulator.Run();
    EXPECT_TRUE(ok);
  };
  // Cold: the reply teaches the owner's arc.
  uint64_t hops_before = d.dht->metrics().total_hops;
  get_once();
  uint64_t cold_hops = d.dht->metrics().total_hops - hops_before;
  ASSERT_GT(cold_hops, 1u) << "test needs a multi-hop cold route";

  // Warm: the same reader reaches the owner in exactly one hop.
  hops_before = d.dht->metrics().total_hops;
  uint64_t hits_before = d.dht->metrics().route_cache_hits;
  get_once();
  EXPECT_EQ(d.dht->metrics().total_hops - hops_before, 1u);
  EXPECT_EQ(d.dht->metrics().route_cache_hits - hits_before, 1u);
  EXPECT_GT(d.dht->metrics().hops_saved, 0u);
}

TEST(RouteCacheNodeTest, ArcCoversSiblingKeysOfTheSameOwner) {
  Deployment d(16);
  // With 16 nodes the owner's arc spans many keys: learning it from ONE
  // reply must serve other keys of the same owner cache-hot.
  Key k1 = KeyForString("first");
  DhtNode* owner = d.dht->ExpectedOwner(k1);
  // Find a second key with the same owner.
  Key k2 = 0;
  for (uint64_t i = 1; i < 10000; ++i) {
    Key cand = Mix64(i);  // well-spread probes across the whole ring
    if (cand != k1 && d.dht->ExpectedOwner(cand) == owner) {
      k2 = cand;
      break;
    }
  }
  ASSERT_NE(k2, 0u) << "no sibling key found";
  d.dht->node(0)->Put("inv", k1, Bytes("a"));
  d.dht->node(0)->Put("inv", k2, Bytes("b"));
  d.simulator.Run();

  DhtNode* reader = d.dht->node(5) == owner ? d.dht->node(6) : d.dht->node(5);
  bool ok = false;
  reader->Get("inv", k1, [&](Status s, auto v) {
    ok = s.ok() && v.size() == 1;
  });
  d.simulator.Run();
  ASSERT_TRUE(ok);

  // k2 was never routed by this reader, yet the learned arc covers it.
  uint64_t hops_before = d.dht->metrics().total_hops;
  uint64_t hits_before = d.dht->metrics().route_cache_hits;
  ok = false;
  reader->Get("inv", k2, [&](Status s, auto v) {
    ok = s.ok() && v.size() == 1;
  });
  d.simulator.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(d.dht->metrics().route_cache_hits - hits_before, 1u);
  EXPECT_EQ(d.dht->metrics().total_hops - hops_before, 1u);
}

TEST(RouteCacheNodeTest, UnackedPutsTeachThroughStandaloneHints) {
  Deployment d(48);
  Key k = KeyForString("publish-destination");
  DhtNode* writer = MultiHopReader(d.dht.get(), k);
  ASSERT_NE(writer, nullptr);
  // No callback => no ack; the owner teaches with a standalone hint.
  writer->Put("inv", k, Bytes("v1"));
  d.simulator.Run();
  uint64_t hint_msgs = d.network->metrics().by_tag["dht.hint"].messages;
  // The cold put took >1 hop, so a hint must have been sent.
  EXPECT_GT(hint_msgs, 0u);
  // The second publish to the same key goes direct.
  uint64_t hops_before = d.dht->metrics().total_hops;
  writer->Put("inv", k, Bytes("v2"));
  d.simulator.Run();
  EXPECT_EQ(d.dht->metrics().total_hops - hops_before, 1u);
  EXPECT_GT(d.dht->metrics().route_cache_hits, 0u);
  // And teaches nothing new: hint chatter is warmup-only.
  EXPECT_EQ(d.network->metrics().by_tag["dht.hint"].messages, hint_msgs);
}

TEST(RouteCacheNodeTest, ClassicPolicyDisablesCacheAndHints) {
  DhtOptions classic;
  classic.routing_policy = RoutingPolicyKind::kClassicChord;
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           5 * sim::kMillisecond),
                       99);
  DhtDeployment dht(&network, 48, classic, 4321);
  Key k = KeyForString("hot-posting-list");
  dht.node(0)->Put("inv", k, Bytes("v"));
  simulator.Run();
  for (int i = 0; i < 3; ++i) {
    bool ok = false;
    dht.node(17)->Get("inv", k, [&](Status s, auto values) {
      ok = s.ok() && values.size() == 1;
    });
    simulator.Run();
    EXPECT_TRUE(ok);
  }
  EXPECT_EQ(dht.metrics().route_cache_hits, 0u);
  EXPECT_EQ(dht.metrics().route_cache_misses, 0u);
  EXPECT_EQ(dht.metrics().congestion_detours, 0u);
  EXPECT_EQ(network.metrics().by_tag.count("dht.hint"), 0u);
}

// --- Replica interaction (regression: the Has-gated peel rule survives
// --- the fast path) --------------------------------------------------------

TEST(RouteCacheNodeTest, StaleCacheEntryAtEmptyReplicaNeverShortCircuits) {
  Deployment d(24, /*replication=*/3);
  Key k = KeyForString("replicated-key");
  DhtNode* owner = d.dht->ExpectedOwner(k);

  // A replica of k's owner that holds NO data under (inv, k): ownership
  // moved, replication lagged, or the entry was manufactured stale — the
  // cache may legitimately point there.
  auto replicas = owner->routing().ReplicaTargets(2);
  ASSERT_FALSE(replicas.empty());
  DhtNode* empty_replica = nullptr;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    if (d.dht->node(i)->host() == replicas[0].host) {
      empty_replica = d.dht->node(i);
      break;
    }
  }
  ASSERT_NE(empty_replica, nullptr);

  // Store the value at the owner ONLY (bypass replication: direct store
  // write models replication lag at the replicas).
  owner->store().Put("inv", k, Bytes("authoritative"));
  ASSERT_TRUE(empty_replica->store().Get("inv", k, 0).empty());

  // Poison the reader's cache: the remembered "owner" of k's whole
  // neighborhood is the empty replica.
  DhtNode* reader = nullptr;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    DhtNode* n = d.dht->node(i);
    if (n != owner && n->host() != empty_replica->host()) {
      reader = n;
      break;
    }
  }
  ASSERT_NE(reader, nullptr);
  OwnerHint stale;
  stale.owner = empty_replica->info();
  stale.arc_start = k - 1;
  stale.arc_end = k;
  stale.valid = true;
  reader->route_cache().Teach(stale);

  // The Get fast-paths to the empty replica. It is NOT the owner and has
  // an EMPTY store, so the Has-gated peel rule must forward the request to
  // the authoritative owner instead of answering empty.
  Status status = Status::Internal("callback not called");
  std::vector<std::vector<uint8_t>> got;
  reader->Get("inv", k, [&](Status s, auto values) {
    status = s;
    got = std::move(values);
  });
  d.simulator.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes("authoritative"));
  EXPECT_GT(d.dht->metrics().route_cache_hits, 0u);
}

TEST(RouteCacheNodeTest, CachedReplicaHoldingDataMayPeel) {
  // The flip side: a fast path landing on a replica that DOES hold the
  // data answers in the owner's stead (the single-key peel), still a
  // correct, non-empty answer.
  Deployment d(24, /*replication=*/3);
  Key k = KeyForString("replicated-key");
  d.dht->node(0)->Put("inv", k, Bytes("v"));
  d.simulator.Run();

  DhtNode* owner = d.dht->ExpectedOwner(k);
  auto replicas = owner->routing().ReplicaTargets(2);
  ASSERT_FALSE(replicas.empty());

  DhtNode* reader = nullptr;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    DhtNode* n = d.dht->node(i);
    if (n != owner && n->host() != replicas[0].host &&
        n->store().Get("inv", k, 0).empty()) {
      reader = n;
      break;
    }
  }
  ASSERT_NE(reader, nullptr);
  OwnerHint stale;
  stale.owner = replicas[0];
  stale.arc_start = k - 1;
  stale.arc_end = k;
  stale.valid = true;
  reader->route_cache().Teach(stale);

  uint64_t peels_before = d.dht->metrics().replica_peels;
  std::vector<std::vector<uint8_t>> got;
  Status status = Status::Internal("callback not called");
  reader->Get("inv", k, [&](Status s, auto values) {
    status = s;
    got = std::move(values);
  });
  d.simulator.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Bytes("v"));
  EXPECT_EQ(d.dht->metrics().replica_peels, peels_before + 1);
}

TEST(RouteCacheNodeTest, StaticRebuildClearsLearnedArcs) {
  Deployment d(16);
  Key k = KeyForString("epoch-key");
  d.dht->node(0)->Put("inv", k, Bytes("v"));
  d.simulator.Run();
  bool ok = false;
  d.dht->node(5)->Get("inv", k, [&](Status s, auto v) {
    ok = s.ok() && v.size() == 1;
  });
  d.simulator.Run();
  ASSERT_TRUE(ok);
  EXPECT_GT(d.dht->node(5)->route_cache().size(), 0u);
  // Membership epoch change: every node's learned state restarts cold.
  d.dht->RebuildStaticTables();
  EXPECT_EQ(d.dht->node(5)->route_cache().size(), 0u);
}

}  // namespace
}  // namespace pierstack::dht
