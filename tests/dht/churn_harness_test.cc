// End-to-end churn harness: scripted FaultPlan timelines executed by
// ChurnDriver against a live deployment, with every layer's counters
// exported through the common CounterSet currency — and the whole run a
// pure function of its seeds (the fixed-seed fingerprint test locks in
// that Crash() cancels a node's pending events, so when a crash lands
// never changes what the surviving events observe).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/stats.h"
#include "dht/builder.h"
#include "dht/churn.h"
#include "dht/ring_oracle.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pierstack::dht {
namespace {

constexpr char kNs[] = "churn";

struct Harness {
  // Env-selected backend (sim/executor.h): serial by default, the sharded
  // event loop under PIERSTACK_SHARDS>1 (the CI shards-4 leg). 2ms is the
  // constant latency below, i.e. the sharded backend's lookahead.
  std::unique_ptr<sim::Executor> exec =
      sim::MakeEnvExecutor(2 * sim::kMillisecond);
  sim::Executor& simulator = *exec;
  std::unique_ptr<sim::Network> network;
  sim::FaultPlan plan;
  std::unique_ptr<DhtDeployment> dht;
  std::unique_ptr<ChurnDriver> driver;

  Harness(size_t n, size_t replication, uint64_t churn_seed)
      : plan(churn_seed ^ 0xF00Dull) {
    network = std::make_unique<sim::Network>(
        exec.get(), std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond),
        42);
    network->set_fault_plan(&plan);
    DhtOptions opts;
    opts.overlay = OverlayKind::kChord;
    opts.replication = replication;
    opts.maintenance = true;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
    driver = std::make_unique<ChurnDriver>(dht.get(), churn_seed, &plan);
  }

  void PublishKeys(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      dht->node(0)->Put(kNs, (i + 1) * 0x9E3779B97F4A7C15ull,
                        {uint8_t(i), 1, 2}, 0, nullptr);
    }
  }
};

/// Everything a run can deterministically disagree on, in one tuple.
using Fingerprint = std::tuple<uint64_t,  // events executed
                               uint64_t,  // sim clock
                               uint64_t, uint64_t,  // net messages, bytes
                               uint64_t, uint64_t,  // dropped, refused
                               uint64_t,            // injected faults
                               uint64_t, uint64_t,  // churn crashes, joins
                               uint64_t, uint64_t,  // churn restarts, skipped
                               uint64_t, uint64_t,  // epoch bumps, evictions
                               uint64_t, uint64_t,  // resync rounds, entries
                               uint64_t, uint64_t>; // merge probes, heals

Fingerprint RunScenario(uint64_t churn_seed) {
  Harness h(16, 3, churn_seed);
  h.PublishKeys(24);
  h.simulator.RunFor(5 * sim::kSecond);

  auto timeline = sim::FaultPlan::SustainedChurn(
      h.simulator.now(), sim::kMinute, 8.0, churn_seed + 1);
  h.driver->Schedule(timeline);
  // Crash-then-restart pair after the churn wave: the restart path (same
  // identity, durable store recovery) is part of the locked fingerprint.
  h.driver->Schedule(sim::FaultPlan::CrashRestart(
      80 * sim::kSecond, 95 * sim::kSecond, 2));
  // A scheduled split across half the initial hosts, healed mid-run: the
  // remembered-peer probes and ring-merge rounds must land identically on
  // every backend (window decisions key on send time alone).
  sim::FaultPlan::PartitionWindow w;
  for (size_t i = 8; i < 16; ++i) {
    w.groups[h.dht->node(i)->host()] = 1;
  }
  w.start = 20 * sim::kSecond;
  w.heal_time = 50 * sim::kSecond;
  h.plan.AddPartitionWindow(w);
  h.plan.set_message_loss(0.02);
  h.plan.set_latency_spike(0.05, 20 * sim::kMillisecond);
  h.simulator.RunFor(2 * sim::kMinute);

  const sim::NetworkMetrics& net = h.network->metrics();
  const sim::FaultCounters& f = h.plan.counters();
  const DhtMetrics& m = h.dht->metrics();
  const ChurnStats& churn = h.driver->stats();
  return Fingerprint{h.simulator.events_executed(),
                     h.simulator.now(),
                     net.total.messages,
                     net.total.bytes,
                     net.dropped_messages,
                     net.refused_sends,
                     f.Total(),
                     churn.crashes,
                     churn.joins,
                     churn.restarts,
                     churn.skipped,
                     m.epoch_bumps,
                     m.detector_evictions,
                     m.resync_rounds,
                     m.resync_entries,
                     m.merge_probes,
                     m.partition_heals};
}

TEST(ChurnHarnessTest, FixedSeedRunsAreFingerprintIdentical) {
  Fingerprint a = RunScenario(1001);
  Fingerprint b = RunScenario(1001);
  EXPECT_EQ(a, b);
  // The scenario is not vacuous: churn actually executed.
  EXPECT_GT(std::get<7>(a) + std::get<8>(a), 0u);
}

TEST(ChurnHarnessTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunScenario(1001), RunScenario(2002));
}

TEST(ChurnHarnessTest, QuiescedPostChurnRingSatisfiesOracle) {
  Harness h(16, 3, 4242);
  h.PublishKeys(24);
  h.simulator.RunFor(5 * sim::kSecond);

  auto timeline = sim::FaultPlan::SustainedChurn(
      h.simulator.now(), sim::kMinute, 6.0, 17);
  h.driver->Schedule(timeline);
  h.driver->Schedule(sim::FaultPlan::CrashRestart(
      75 * sim::kSecond, 90 * sim::kSecond, 1));
  h.simulator.RunFor(2 * sim::kMinute);
  // Churn over; give maintenance two quiet minutes to converge.
  h.simulator.RunFor(2 * sim::kMinute);

  RingOracle oracle(h.dht.get());
  for (size_t i = 0; i < 24; ++i) {
    oracle.TrackKey(kNs, (i + 1) * 0x9E3779B97F4A7C15ull);
  }
  RingOracleReport report = oracle.Check(h.simulator.now());
  EXPECT_TRUE(report.clean()) << report.detail;
}

TEST(ChurnHarnessTest, CrashCancelsPendingNodeEvents) {
  Harness h(10, 3, 9);
  h.simulator.RunFor(2 * sim::kSecond);
  // A live maintained node holds standing timers (stabilize, fix-finger,
  // detector, re-sync); Crash() must cancel them all so a dead node never
  // fires another event.
  size_t pending_before = h.simulator.pending();
  h.dht->node(5)->Crash();
  EXPECT_LT(h.simulator.pending(), pending_before);
}

TEST(ChurnHarnessTest, CountersFlowThroughCounterSetEndToEnd) {
  Harness h(16, 3, 77);
  h.PublishKeys(24);
  h.simulator.RunFor(5 * sim::kSecond);

  auto timeline = sim::FaultPlan::SustainedChurn(h.simulator.now(),
                                                 sim::kMinute, 10.0, 5);
  h.driver->Schedule(timeline);
  h.simulator.RunFor(90 * sim::kSecond);

  CounterSet out;
  sim::ExportNetworkCounters(*h.network, &out);
  ExportTransportCounters(h.dht->metrics(), &out);

  // Network layer live, including the churn the driver reported back.
  EXPECT_GT(out.Value("net.messages"), 0u);
  EXPECT_GT(out.Value("net.bytes"), 0u);
  EXPECT_EQ(out.Value("net.fault_churn_crashes"), h.driver->stats().crashes);
  EXPECT_EQ(out.Value("net.fault_churn_joins"), h.driver->stats().joins);
  EXPECT_GT(out.Value("net.fault_churn_joins"), 0u);
  // Crashed peers refuse sends until evicted; the refused slice never
  // exceeds the total drop counter it is part of.
  EXPECT_GT(out.Value("net.refused_sends"), 0u);
  EXPECT_GE(out.Value("net.dropped_messages"), out.Value("net.refused_sends"));

  // DHT robustness machinery live: ownership changes fenced caches and
  // armed re-sync.
  EXPECT_GT(out.Value("dht.epoch_bumps"), 0u);
  EXPECT_GT(out.Value("dht.resync_rounds"), 0u);
}

}  // namespace
}  // namespace pierstack::dht
