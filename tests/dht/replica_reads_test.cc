// Replica-aware single-key reads: with replication > 1, a Get/GetBatch
// routing through a node that already replicates the key stops there — the
// single-key analogue of the MultiGet peel — without ever changing the
// answer, and an empty replica store never short-circuits (replication lag
// must still resolve at the owner).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "dht/builder.h"

namespace pierstack::dht {
namespace {

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Cluster(size_t n, DhtOptions options) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 41);
    dht = std::make_unique<DhtDeployment>(network.get(), n, options, 909);
  }
};

DhtOptions Replicated(size_t replication, bool replica_reads) {
  DhtOptions o;
  o.replication = replication;
  o.replica_aware_reads = replica_reads;
  return o;
}

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

void PutAll(Cluster* c, size_t keys) {
  for (uint64_t k = 0; k < keys; ++k) {
    c->dht->node(0)->Put("t", Mix64(k), Bytes("v" + std::to_string(k)));
  }
  c->simulator.Run();
}

/// Issues one Get per key from a rotating set of nodes; returns how many
/// answered with the exact expected value.
size_t GetAll(Cluster* c, size_t keys) {
  size_t correct = 0;
  for (uint64_t k = 0; k < keys; ++k) {
    c->dht->node((k * 7 + 3) % c->dht->size())
        ->Get("t", Mix64(k), [&correct, k](Status s, auto values) {
          if (!s.ok() || values.size() != 1) return;
          if (values[0] == Bytes("v" + std::to_string(k))) ++correct;
        });
  }
  c->simulator.Run();
  return correct;
}

TEST(ReplicaReadsTest, ReadsPeelAtPathReplicasWithIdenticalAnswers) {
  const size_t kKeys = 60;
  Cluster aware(32, Replicated(3, true));
  Cluster baseline(32, Replicated(3, false));
  for (Cluster* c : {&aware, &baseline}) PutAll(c, kKeys);

  EXPECT_EQ(GetAll(&aware, kKeys), kKeys);
  EXPECT_EQ(GetAll(&baseline, kKeys), kKeys);

  // Some reads stopped at an in-path replica; the baseline walked every
  // route to the owner.
  EXPECT_GT(aware.dht->metrics().replica_peels, 0u);
  EXPECT_EQ(baseline.dht->metrics().replica_peels, 0u);
  // Shorter routes overall: strictly fewer forwarding hops for the same
  // answers.
  EXPECT_LT(aware.dht->metrics().total_hops,
            baseline.dht->metrics().total_hops);
}

TEST(ReplicaReadsTest, GetBatchPeelsToo) {
  const size_t kKeys = 60;
  Cluster c(32, Replicated(3, true));
  PutAll(&c, kKeys);
  size_t answered = 0;
  for (uint64_t k = 0; k < kKeys; ++k) {
    c.dht->node((k * 5 + 1) % c.dht->size())
        ->GetBatch("t", Mix64(k), [&answered](Status s, BatchImage batch) {
          if (s.ok() && batch && !batch->empty()) ++answered;
        });
  }
  c.simulator.Run();
  EXPECT_EQ(answered, kKeys);
  EXPECT_GT(c.dht->metrics().replica_peels, 0u);
}

TEST(ReplicaReadsTest, EmptyReplicaNeverShortCircuits) {
  // Reads for keys that were never stored must still resolve at the owner
  // as authoritative empties, not peel into wrong-but-fast answers.
  Cluster c(32, Replicated(3, true));
  PutAll(&c, 10);
  size_t empties = 0;
  for (uint64_t k = 100; k < 130; ++k) {
    c.dht->node(k % c.dht->size())
        ->Get("t", Mix64(k), [&empties](Status s, auto values) {
          if (s.ok() && values.empty()) ++empties;
        });
  }
  c.simulator.Run();
  EXPECT_EQ(empties, 30u);
}

TEST(ReplicaReadsTest, ReplicationOneIsUnaffected) {
  Cluster c(24, Replicated(1, true));
  PutAll(&c, 40);
  EXPECT_EQ(GetAll(&c, 40), 40u);
  EXPECT_EQ(c.dht->metrics().replica_peels, 0u);
}

}  // namespace
}  // namespace pierstack::dht
