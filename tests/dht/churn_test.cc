// Dynamic membership: joins, graceful leaves, crashes and repair.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dht/builder.h"
#include "dht/chord.h"
#include "dht/node.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, size_t replication = 1) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond), 42);
    DhtOptions opts;
    opts.overlay = OverlayKind::kChord;
    opts.replication = replication;
    opts.maintenance = true;  // churn handling requires the timers
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }

  void Settle(sim::SimTime duration = 30 * sim::kSecond) {
    simulator.RunFor(duration);
  }
};

TEST(ChurnTest, DynamicJoinBecomesReachable) {
  Deployment d(16);
  DhtNode* fresh = d.dht->AddNodeDynamic(0xfeed);
  d.Settle();
  EXPECT_TRUE(fresh->joined());
  // The new node's id region is now owned by it: a put for its own id must
  // land in its store.
  d.dht->node(2)->Put("ns", fresh->id(), Bytes("mine"));
  d.Settle(5 * sim::kSecond);
  EXPECT_EQ(fresh->store().Get("ns", fresh->id(), 0).size(), 1u);
}

TEST(ChurnTest, JoinTransfersExistingKeys) {
  Deployment d(8);
  // Publish many keys, then add a node; keys in its range must move to it.
  Rng rng(1);
  std::vector<Key> keys;
  for (int i = 0; i < 200; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    d.dht->node(0)->Put("ns", k, Bytes(std::to_string(i)));
  }
  d.Settle(5 * sim::kSecond);
  DhtNode* fresh = d.dht->AddNodeDynamic(0xbeef);
  d.Settle();
  ASSERT_TRUE(fresh->joined());
  // Every key must still be readable, including those now owned by fresh.
  int ok = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    d.dht->node(3)->Get("ns", keys[i], [&](Status s, auto values) {
      if (s.ok() && values.size() == 1) ++ok;
    });
  }
  d.Settle(5 * sim::kSecond);
  EXPECT_EQ(ok, 200);
  // And the fresh node actually holds something (its range is non-empty
  // with high probability given 200 random keys over 9 nodes).
  EXPECT_GT(fresh->store().TotalEntries(0), 0u);
}

TEST(ChurnTest, SequentialJoinsConverge) {
  Deployment d(8);
  for (int j = 0; j < 4; ++j) {
    d.dht->AddNodeDynamic(0x1000 + static_cast<uint64_t>(j));
    d.Settle(20 * sim::kSecond);
  }
  for (size_t i = 8; i < d.dht->size(); ++i) {
    EXPECT_TRUE(d.dht->node(i)->joined()) << i;
  }
  // After convergence, put/get works across old and new nodes.
  Key k = KeyForString("after-joins");
  d.dht->node(9)->Put("ns", k, Bytes("v"));
  d.Settle(5 * sim::kSecond);
  bool got = false;
  d.dht->node(11)->Get("ns", k, [&](Status s, auto values) {
    got = s.ok() && values.size() == 1;
  });
  d.Settle(5 * sim::kSecond);
  EXPECT_TRUE(got);
}

TEST(ChurnTest, GracefulLeaveHandsOffKeys) {
  Deployment d(12);
  Rng rng(2);
  std::vector<Key> keys;
  for (int i = 0; i < 150; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    d.dht->node(1)->Put("ns", k, Bytes("v" + std::to_string(i)));
  }
  d.Settle(5 * sim::kSecond);
  // Pick a node that holds some keys and has it leave gracefully.
  DhtNode* leaver = d.dht->node(5);
  size_t held = leaver->store().TotalEntries(0);
  leaver->LeaveGracefully();
  d.Settle();
  (void)held;
  // All keys must still be readable from the remaining nodes.
  int ok = 0;
  for (const Key& k : keys) {
    d.dht->node(2)->Get("ns", k, [&](Status s, auto values) {
      if (s.ok() && !values.empty()) ++ok;
    });
  }
  d.Settle(10 * sim::kSecond);
  EXPECT_EQ(ok, 150);
}

TEST(ChurnTest, CrashWithReplicationPreservesData) {
  Deployment d(12, /*replication=*/3);
  Rng rng(3);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    d.dht->node(0)->Put("ns", k, Bytes("v"));
  }
  d.Settle(5 * sim::kSecond);
  // Crash one node; successors hold replicas, stabilization repairs the
  // ring, so gets keep working.
  d.dht->node(7)->Crash();
  d.Settle(60 * sim::kSecond);
  int ok = 0;
  for (const Key& k : keys) {
    d.dht->node(1)->Get("ns", k, [&](Status s, auto values) {
      if (s.ok() && !values.empty()) ++ok;
    });
  }
  d.Settle(30 * sim::kSecond);
  // All keys must survive a single crash with replication 3.
  EXPECT_EQ(ok, 100);
}

TEST(ChurnTest, RingRepairsAfterCrash) {
  Deployment d(16);
  d.Settle(10 * sim::kSecond);
  d.dht->node(4)->Crash();
  d.Settle(60 * sim::kSecond);
  // No live node should still list the crashed host as successor.
  sim::HostId dead = d.dht->node(4)->host();
  for (size_t i = 0; i < d.dht->size(); ++i) {
    if (i == 4) continue;
    auto& chord = static_cast<ChordRouting&>(d.dht->node(i)->routing());
    EXPECT_NE(chord.successor().host, dead) << "node " << i;
  }
  // Routing still works for keys formerly owned by the crashed node.
  bool done = false;
  d.dht->node(0)->Lookup(d.dht->node(4)->id(),
                         [&](Status s, NodeInfo owner, uint32_t) {
                           done = s.ok();
                           EXPECT_NE(owner.host, dead);
                         });
  d.Settle(10 * sim::kSecond);
  EXPECT_TRUE(done);
}

TEST(ChurnTest, StabilizationRunsContinuously) {
  Deployment d(8);
  d.Settle(20 * sim::kSecond);
  // A dynamically joined node keeps exchanging stabilize rounds with its
  // successor for as long as it is up.
  DhtNode* fresh = d.dht->AddNodeDynamic(0xabc);
  d.Settle(20 * sim::kSecond);
  EXPECT_GT(fresh->stabilize_rounds(), 5u);
}

}  // namespace
}  // namespace pierstack::dht
