// RingOracle: the invariants pass on healthy rings and — crucially — each
// known-bad ring trips EXACTLY the invariant that names its defect. The
// independence is what makes an oracle verdict diagnostic rather than a
// single opaque "unhealthy" bit.
#include "dht/ring_oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dht/chord.h"
#include "dht/node.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, size_t replication = 3,
                      bool maintenance = true) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond), 42);
    DhtOptions opts;
    opts.overlay = OverlayKind::kChord;
    opts.replication = replication;
    opts.maintenance = maintenance;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }

  void Settle(sim::SimTime duration = 10 * sim::kSecond) {
    simulator.RunFor(duration);
  }

  ChordRouting& chord_of(size_t i) {
    return static_cast<ChordRouting&>(dht->node(i)->routing());
  }

  /// Deployment indices sorted by ring id — the ring order the known-bad
  /// constructions slice.
  std::vector<size_t> RingOrder() {
    std::vector<size_t> idx(dht->size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
      return dht->node(a)->id() < dht->node(b)->id();
    });
    return idx;
  }
};

TEST(RingOracleTest, HealthyRingIsCleanWithTrackedKeys) {
  Deployment d(12);
  Rng rng(9);
  RingOracle oracle(d.dht.get());
  for (int i = 0; i < 50; ++i) {
    Key k = rng.Next();
    d.dht->node(0)->Put("ns", k, Bytes("v" + std::to_string(i)));
    oracle.TrackKey("ns", k);
  }
  d.Settle(30 * sim::kSecond);

  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_TRUE(report.clean()) << report.detail;
  EXPECT_EQ(report.violations(), 0);
  EXPECT_EQ(oracle.tracked_keys(), 50u);
}

TEST(RingOracleTest, SplitRingTripsOnlyConnectivity) {
  // Maintenance off: the known-bad state must stay exactly as constructed.
  Deployment d(12, /*replication=*/3, /*maintenance=*/false);
  // Rebuild each ring-order half against only its own members: two
  // internally consistent rings that never reference each other — the
  // steady state of an unhealed split brain.
  std::vector<size_t> order = d.RingOrder();
  std::vector<NodeInfo> half_a, half_b;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    NodeInfo info = d.dht->node(order[pos])->info();
    (pos < order.size() / 2 ? half_a : half_b).push_back(info);
  }
  for (size_t pos = 0; pos < order.size(); ++pos) {
    d.dht->node(order[pos])->BootstrapStatic(pos < order.size() / 2 ? half_a
                                                                    : half_b);
  }

  RingOracle oracle(d.dht.get());
  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_FALSE(report.connectivity);
  EXPECT_EQ(report.violations(), 1) << report.detail;
  // Each half is internally well-ordered and self-consistent: the split is
  // a connectivity defect, nothing else.
  EXPECT_TRUE(report.ordering);
  EXPECT_TRUE(report.predecessors_valid);
  EXPECT_TRUE(report.ownership_cover);
}

TEST(RingOracleTest, DanglingPredecessorTripsOnlyThatInvariant) {
  Deployment d(10, /*replication=*/3, /*maintenance=*/false);
  // Same ring id, dead host: the owned arc is unchanged (so ownership
  // stays covered) but the pointer names a host that no longer exists —
  // the exact garbage a missed eviction leaves behind.
  ChordRouting& c = d.chord_of(4);
  NodeInfo stale = c.predecessor();
  ASSERT_TRUE(stale.valid());
  stale.host = 9999;  // no such host in the deployment
  c.SetPredecessor(stale);

  RingOracle oracle(d.dht.get());
  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_FALSE(report.predecessors_valid);
  EXPECT_EQ(report.violations(), 1) << report.detail;
  EXPECT_TRUE(report.connectivity);
  EXPECT_TRUE(report.ordering);
}

TEST(RingOracleTest, UnderReplicatedKeyTripsOnlyTheFloor) {
  Deployment d(8, /*replication=*/3, /*maintenance=*/false);
  Key k = KeyForString("under-replicated");
  d.dht->node(0)->Put("ns", k, Bytes("v"));
  d.Settle(5 * sim::kSecond);

  RingOracle oracle(d.dht.get());
  oracle.TrackKey("ns", k);
  ASSERT_TRUE(oracle.Check(d.simulator.now()).clean());

  // Drop ONE replica's copy: below the floor of 3, but not orphaned.
  for (size_t i = 0; i < d.dht->size(); ++i) {
    if (d.dht->node(i)->store().Has("ns", k, d.simulator.now())) {
      d.dht->node(i)->store().Erase("ns", k);
      break;
    }
  }
  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_FALSE(report.replication_floor);
  EXPECT_EQ(report.violations(), 1) << report.detail;
  EXPECT_TRUE(report.no_orphans);
  EXPECT_TRUE(report.ownership_cover);
}

TEST(RingOracleTest, OrphanedKeyTripsBothDataInvariants) {
  Deployment d(8, /*replication=*/3, /*maintenance=*/false);
  Key k = KeyForString("orphaned");
  d.dht->node(0)->Put("ns", k, Bytes("v"));
  d.Settle(5 * sim::kSecond);

  RingOracle oracle(d.dht.get());
  oracle.TrackKey("ns", k);
  for (size_t i = 0; i < d.dht->size(); ++i) {
    d.dht->node(i)->store().Erase("ns", k);
  }
  RingOracleReport report = oracle.Check(d.simulator.now());
  // Total loss is partial loss too: the weaker floor and the alarm both
  // fire, which is exactly the distinction the two invariants encode.
  EXPECT_FALSE(report.no_orphans);
  EXPECT_FALSE(report.replication_floor);
  EXPECT_EQ(report.violations(), 2) << report.detail;
  EXPECT_TRUE(report.connectivity);
}

}  // namespace
}  // namespace pierstack::dht
