// Partition tolerance: split-brain ring merge through remembered-peer
// reconciliation, durable vs amnesia restart recovery, and the ChurnDriver's
// crash/restart bookkeeping.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "dht/builder.h"
#include "dht/chord.h"
#include "dht/churn.h"
#include "dht/node.h"
#include "dht/ring_oracle.h"
#include "sim/fault.h"

namespace pierstack::dht {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

struct Deployment {
  sim::Simulator simulator;
  sim::FaultPlan plan;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, uint64_t fault_seed = 0xF00D) : plan(fault_seed) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond), 42);
    network->set_fault_plan(&plan);
    DhtOptions opts;
    opts.overlay = OverlayKind::kChord;
    opts.replication = 3;
    opts.maintenance = true;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }

  void Settle(sim::SimTime duration) { simulator.RunFor(duration); }

  /// Recall over `keys` probed from `prober`: how many answered non-empty.
  size_t Recall(const std::vector<Key>& keys, size_t prober) {
    size_t ok = 0;
    for (Key k : keys) {
      dht->node(prober)->Get("ns", k, [&](Status s, auto values) {
        if (s.ok() && !values.empty()) ++ok;
      });
    }
    Settle(10 * sim::kSecond);
    return ok;
  }
};

TEST(PartitionTest, SplitBrainMergeRestoresOneRingAndRecall) {
  Deployment d(16);
  Rng rng(5);
  RingOracle oracle(d.dht.get());
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    d.dht->node(0)->Put("ns", k, Bytes("v" + std::to_string(i)));
    oracle.TrackKey("ns", k);
  }
  d.Settle(30 * sim::kSecond);
  ASSERT_TRUE(oracle.Check(d.simulator.now()).clean());
  ASSERT_EQ(d.Recall(keys, 3), keys.size());

  // Split the deployment down the middle for 60 seconds. The window is
  // scheduled on SEND time, so the split and heal need no driver events.
  sim::FaultPlan::PartitionWindow w;
  for (size_t i = 8; i < d.dht->size(); ++i) {
    w.groups[d.dht->node(i)->host()] = 1;
  }
  w.start = 40 * sim::kSecond;
  w.heal_time = 100 * sim::kSecond;
  d.plan.AddPartitionWindow(w);

  // Mid-split, both sides accept a write under the SAME key: the classic
  // split-brain divergence the merge must union, not clobber.
  Key divergent = KeyForString("divergent-key");
  d.simulator.ScheduleAt(70 * sim::kSecond, [&] {
    d.dht->node(2)->Put("ns2", divergent, Bytes("side-a"));
    d.dht->node(10)->Put("ns2", divergent, Bytes("side-b"));
  });

  // Run through the split and well past the heal: detector eviction, per-
  // side repair, remembered-peer reconciliation, ring merge, re-sync.
  d.Settle(300 * sim::kSecond);

  // One ring again, invariants clean, and the split cost no data.
  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_TRUE(report.clean()) << report.detail;
  size_t recall = d.Recall(keys, 12);
  EXPECT_GE(recall * 1000, keys.size() * 980);  // the ≥98% recall gate

  // The merge machinery actually drove the heal (not detector luck): peers
  // were remembered, probed, and re-contacted across the boundary.
  const DhtMetrics& m = d.dht->metrics();
  EXPECT_GT(m.merge_probes.value(), 0u);
  EXPECT_GT(m.merge_rounds.value(), 0u);
  EXPECT_GT(m.partition_heals.value(), 0u);
  EXPECT_GT(d.plan.counters().partition_drops, 0u);

  // Cross-partition OwnerHints were fenced AND purged by post-merge epoch
  // bumps — counted as stale, not left to capacity-starve fresh arcs.
  EXPECT_GT(m.route_cache_stale.value(), 0u);

  // Both divergent writes survive the merge, readable from either side.
  std::vector<std::vector<uint8_t>> merged;
  d.dht->node(5)->Get("ns2", divergent, [&](Status s, auto values) {
    if (s.ok()) {
      for (const auto& v : values) merged.push_back(v);
    }
  });
  d.Settle(10 * sim::kSecond);
  EXPECT_EQ(merged.size(), 2u);
}

TEST(PartitionTest, DurableRestartKeepsIdentityAndStore) {
  Deployment d(12);
  Rng rng(6);
  RingOracle oracle(d.dht.get());
  std::vector<Key> keys;
  for (int i = 0; i < 150; ++i) {
    Key k = rng.Next();
    keys.push_back(k);
    d.dht->node(1)->Put("ns", k, Bytes("v"));
    oracle.TrackKey("ns", k);
  }
  d.Settle(30 * sim::kSecond);

  DhtNode* victim = d.dht->node(5);
  sim::HostId host_before = victim->host();
  Key id_before = victim->id();
  ASSERT_GT(victim->store().TotalEntries(0), 0u);

  victim->Crash();
  EXPECT_TRUE(victim->crashed());
  EXPECT_FALSE(victim->joined());
  d.Settle(60 * sim::kSecond);  // ring repairs; replicas restore the floor

  victim->Restart(d.dht->node(0)->host(), /*durable=*/true);
  d.Settle(60 * sim::kSecond);

  // Same identity, recovered store, rejoined ring.
  EXPECT_TRUE(victim->joined());
  EXPECT_FALSE(victim->crashed());
  EXPECT_EQ(victim->host(), host_before);
  EXPECT_EQ(victim->id(), id_before);
  EXPECT_GT(victim->store().TotalEntries(0), 0u);

  RingOracleReport report = oracle.Check(d.simulator.now());
  EXPECT_TRUE(report.clean()) << report.detail;
  EXPECT_EQ(d.Recall(keys, 2), keys.size());
}

TEST(PartitionTest, DurableRestartReshipsFewerBytesThanAmnesia) {
  // Identical scenario, identical victim, only the disk differs. The
  // durable reboot re-syncs by digest diff; the amnesiac one re-pulls its
  // whole arc. Final answers must not differ — only the bytes moved.
  auto run = [](bool durable) {
    Deployment d(12);
    Rng rng(7);
    std::vector<Key> keys;
    for (int i = 0; i < 150; ++i) {
      Key k = rng.Next();
      keys.push_back(k);
      d.dht->node(1)->Put("ns", k, Bytes("payload-" + std::to_string(i)));
    }
    d.Settle(30 * sim::kSecond);
    d.dht->node(5)->Crash();
    d.Settle(60 * sim::kSecond);
    uint64_t bytes_before = d.dht->metrics().resync_bytes.value();
    d.dht->node(5)->Restart(d.dht->node(0)->host(), durable);
    d.Settle(90 * sim::kSecond);
    uint64_t resynced = d.dht->metrics().resync_bytes.value() - bytes_before;
    return std::make_pair(resynced, d.Recall(keys, 3));
  };

  auto [durable_bytes, durable_recall] = run(true);
  auto [amnesia_bytes, amnesia_recall] = run(false);
  EXPECT_EQ(durable_recall, 150u);
  EXPECT_EQ(amnesia_recall, 150u);  // identical answers either way
  EXPECT_LT(durable_bytes, amnesia_bytes);
}

TEST(PartitionTest, AmnesiaRestartComesBackEmptyButSameIdentity) {
  Deployment d(10);
  Rng rng(8);
  for (int i = 0; i < 80; ++i) {
    d.dht->node(1)->Put("ns", rng.Next(), Bytes("v"));
  }
  d.Settle(30 * sim::kSecond);
  DhtNode* victim = d.dht->node(4);
  sim::HostId host_before = victim->host();
  Key id_before = victim->id();
  ASSERT_GT(victim->store().TotalEntries(0), 0u);

  victim->Crash();
  d.Settle(30 * sim::kSecond);
  victim->Restart(d.dht->node(0)->host(), /*durable=*/false);
  // Amnesia: identity survives (it is the node's NAME, not its disk), the
  // store does not — it restarts empty at the instant of reboot.
  EXPECT_EQ(victim->host(), host_before);
  EXPECT_EQ(victim->id(), id_before);
  EXPECT_EQ(victim->store().TotalEntries(0), 0u);
  d.Settle(60 * sim::kSecond);
  EXPECT_TRUE(victim->joined());
}

TEST(PartitionTest, ChurnDriverRestartReusesOriginalIdentity) {
  Deployment d(12);
  ChurnDriver driver(d.dht.get(), /*seed=*/1234, &d.plan);

  std::vector<std::pair<sim::HostId, Key>> identity_before;
  for (size_t i = 0; i < d.dht->size(); ++i) {
    identity_before.push_back({d.dht->node(i)->host(), d.dht->node(i)->id()});
  }

  driver.Schedule(sim::FaultPlan::CrashRestart(
      20 * sim::kSecond, 60 * sim::kSecond, /*count=*/2));
  d.Settle(200 * sim::kSecond);

  EXPECT_EQ(driver.stats().crashes, 2u);
  EXPECT_EQ(driver.stats().restarts, 2u);
  EXPECT_EQ(driver.stats().skipped, 0u);
  EXPECT_EQ(d.plan.counters().churn_restarts, 2u);

  // No node was replaced: the restarts revived the SAME hosts under the
  // SAME ring keys, and everyone is back in the ring.
  ASSERT_EQ(d.dht->size(), identity_before.size());
  for (size_t i = 0; i < d.dht->size(); ++i) {
    EXPECT_EQ(d.dht->node(i)->host(), identity_before[i].first) << i;
    EXPECT_EQ(d.dht->node(i)->id(), identity_before[i].second) << i;
    EXPECT_TRUE(d.dht->node(i)->joined()) << i;
  }
}

TEST(PartitionTest, RestartBeforeCrashIsANoOp) {
  Deployment d(8);
  d.Settle(10 * sim::kSecond);
  DhtNode* n = d.dht->node(3);
  ASSERT_TRUE(n->joined());
  n->Restart(d.dht->node(0)->host());  // not crashed: nothing happens
  EXPECT_TRUE(n->joined());
  EXPECT_FALSE(n->crashed());
}

}  // namespace
}  // namespace pierstack::dht
