// Model-checking style test: random put/get sequences against an
// in-memory reference oracle, across overlays and network sizes — plus
// a structural RingOracle pass over the final ring, so the same run
// that proves data consistency also proves the overlay the data lives
// on satisfies every ring invariant.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "dht/builder.h"
#include "dht/ring_oracle.h"

namespace pierstack::dht {
namespace {

struct OracleParam {
  OverlayKind kind;
  size_t nodes;
  uint64_t seed;
};

class DhtOracleTest : public ::testing::TestWithParam<OracleParam> {};

TEST_P(DhtOracleTest, RandomOpsMatchReference) {
  const OracleParam param = GetParam();
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::UniformLatency>(
                           sim::kMillisecond, 40 * sim::kMillisecond),
                       param.seed);
  DhtOptions opts;
  opts.overlay = param.kind;
  DhtDeployment dht(&network, param.nodes, opts, param.seed + 1);

  Rng rng(param.seed + 2);
  // Reference: (ns, key) -> multiset of values.
  std::map<std::pair<std::string, Key>, std::multiset<std::string>> oracle;
  std::vector<std::pair<std::string, Key>> known_keys;

  const std::string namespaces[] = {"item", "inverted", "temp"};
  size_t checks = 0;
  for (int op = 0; op < 300; ++op) {
    size_t src = static_cast<size_t>(rng.NextBelow(param.nodes));
    double dice = rng.NextDouble();
    if (dice < 0.5 || known_keys.empty()) {
      // Put a fresh or existing key.
      const std::string& ns = namespaces[rng.NextBelow(3)];
      Key k = rng.NextBernoulli(0.3) && !known_keys.empty()
                  ? known_keys[rng.NextBelow(known_keys.size())].second
                  : rng.Next();
      std::string value = "v" + std::to_string(rng.Next() % 1000000);
      dht.node(src)->Put(ns, k, std::vector<uint8_t>(value.begin(),
                                                     value.end()));
      simulator.Run();
      oracle[{ns, k}].insert(value);
      known_keys.emplace_back(ns, k);
    } else {
      // Get a known key and compare with the oracle.
      auto [ns, k] = known_keys[rng.NextBelow(known_keys.size())];
      std::multiset<std::string> expected = oracle[{ns, k}];
      bool called = false;
      dht.node(src)->Get(
          ns, k, [&](Status s, std::vector<std::vector<uint8_t>> values) {
            called = true;
            ASSERT_TRUE(s.ok());
            std::multiset<std::string> got;
            for (const auto& v : values) got.emplace(v.begin(), v.end());
            EXPECT_EQ(got, expected);
          });
      simulator.Run();
      ASSERT_TRUE(called);
      ++checks;
    }
  }
  EXPECT_GT(checks, 50u);

  // The ring the workload ran on must itself be structurally sound, and
  // every key the reference oracle knows must live where the ring says.
  RingOracle ring_oracle(&dht);
  for (const auto& [ns, k] : known_keys) ring_oracle.TrackKey(ns, k);
  RingOracleReport report = ring_oracle.Check(simulator.now());
  EXPECT_TRUE(report.clean()) << report.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DhtOracleTest,
    ::testing::Values(OracleParam{OverlayKind::kChord, 5, 1},
                      OracleParam{OverlayKind::kChord, 40, 2},
                      OracleParam{OverlayKind::kChord, 150, 3},
                      OracleParam{OverlayKind::kBamboo, 5, 4},
                      OracleParam{OverlayKind::kBamboo, 40, 5},
                      OracleParam{OverlayKind::kBamboo, 150, 6}));

TEST(DeterminismTest, IdenticalRunsProduceIdenticalMetrics) {
  auto run = [](uint64_t seed) {
    sim::Simulator simulator;
    sim::Network network(&simulator,
                         std::make_unique<sim::UniformLatency>(
                             sim::kMillisecond, 30 * sim::kMillisecond),
                         seed);
    DhtDeployment dht(&network, 32, DhtOptions{}, seed);
    Rng rng(seed + 9);
    for (int i = 0; i < 100; ++i) {
      size_t src = static_cast<size_t>(rng.NextBelow(32));
      dht.node(src)->Put("ns", rng.Next(), {1, 2, 3});
    }
    simulator.Run();
    return std::make_tuple(network.metrics().total.messages,
                           network.metrics().total.bytes,
                           dht.metrics().total_hops,
                           simulator.events_executed());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

}  // namespace
}  // namespace pierstack::dht
