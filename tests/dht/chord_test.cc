#include "dht/chord.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace pierstack::dht {
namespace {

std::vector<NodeInfo> MakeRing(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back(NodeInfo{rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
  return members;
}

std::vector<std::unique_ptr<ChordRouting>> BuildAll(
    const std::vector<NodeInfo>& members) {
  std::vector<std::unique_ptr<ChordRouting>> tables;
  for (const auto& m : members) {
    auto t = std::make_unique<ChordRouting>(m);
    t->BuildStatic(members);
    tables.push_back(std::move(t));
  }
  return tables;
}

/// Walks NextHop pointers from `start` until an owner claims the key.
/// Returns {owner_host, hops}; hops capped to detect loops.
std::pair<sim::HostId, int> RouteOnTables(
    const std::vector<std::unique_ptr<ChordRouting>>& tables,
    const std::vector<NodeInfo>& members, size_t start, Key target) {
  size_t cur = start;
  for (int hops = 0; hops < 200; ++hops) {
    if (tables[cur]->IsOwner(target)) return {members[cur].host, hops};
    NodeInfo next = tables[cur]->NextHop(target);
    if (next.host == members[cur].host) return {members[cur].host, hops};
    // Find index of next in members.
    for (size_t i = 0; i < members.size(); ++i) {
      if (members[i].host == next.host) {
        cur = i;
        break;
      }
    }
  }
  return {sim::kInvalidHost, 200};
}

TEST(ChordTest, StaticBuildSetsRingPointers) {
  auto members = MakeRing(10, 1);
  auto tables = BuildAll(members);
  for (size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(tables[i]->successor().host,
              members[(i + 1) % members.size()].host);
    EXPECT_EQ(tables[i]->predecessor().host,
              members[(i + members.size() - 1) % members.size()].host);
  }
}

TEST(ChordTest, OwnershipPartitionsKeySpace) {
  auto members = MakeRing(32, 2);
  auto tables = BuildAll(members);
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    Key k = rng.Next();
    int owners = 0;
    for (const auto& t : tables) owners += t->IsOwner(k);
    EXPECT_EQ(owners, 1) << "key " << k << " has " << owners << " owners";
  }
}

TEST(ChordTest, AllStartsRouteToSameOwner) {
  auto members = MakeRing(64, 4);
  auto tables = BuildAll(members);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Key k = rng.Next();
    auto [owner0, hops0] = RouteOnTables(tables, members, 0, k);
    ASSERT_NE(owner0, sim::kInvalidHost);
    for (size_t start : {7ul, 23ul, 63ul}) {
      auto [owner, hops] = RouteOnTables(tables, members, start, k);
      EXPECT_EQ(owner, owner0);
    }
  }
}

TEST(ChordTest, RoutingReachesTrueSuccessorOfKey) {
  auto members = MakeRing(50, 6);
  auto tables = BuildAll(members);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Key k = rng.Next();
    // Ground truth: first member clockwise at or after k.
    NodeInfo expect = members.front();
    Key best = ClockwiseDistance(k, expect.id);
    for (const auto& m : members) {
      Key d = ClockwiseDistance(k, m.id);
      if (d < best) {
        best = d;
        expect = m;
      }
    }
    auto [owner, hops] = RouteOnTables(tables, members, trial % 50, k);
    EXPECT_EQ(owner, expect.host);
  }
}

TEST(ChordTest, HopsLogarithmic) {
  // Property from the paper's Section 2: "Most DHTs guarantee that routing
  // completes in O(log N) hops."
  for (size_t n : {16ul, 64ul, 256ul, 1024ul}) {
    auto members = MakeRing(n, 8);
    auto tables = BuildAll(members);
    Rng rng(9);
    double total_hops = 0;
    const int kTrials = 200;
    for (int t = 0; t < kTrials; ++t) {
      Key k = rng.Next();
      size_t start = static_cast<size_t>(rng.NextBelow(n));
      auto [owner, hops] = RouteOnTables(tables, members, start, k);
      ASSERT_NE(owner, sim::kInvalidHost);
      total_hops += hops;
    }
    double mean = total_hops / kTrials;
    double log2n = std::log2(static_cast<double>(n));
    EXPECT_LE(mean, log2n) << "n=" << n;   // classic bound: ~0.5 log2 N
    EXPECT_GE(mean, 0.25 * log2n) << "n=" << n;
  }
}

TEST(ChordTest, SingletonOwnsEverything) {
  NodeInfo solo{12345, 0};
  ChordRouting t(solo);
  t.BuildStatic({solo});
  EXPECT_TRUE(t.IsOwner(0));
  EXPECT_TRUE(t.IsOwner(UINT64_MAX));
  EXPECT_EQ(t.NextHop(999).host, solo.host);
  EXPECT_EQ(t.successor().host, solo.host);
}

TEST(ChordTest, TwoNodeRing) {
  std::vector<NodeInfo> members{{100, 0}, {200, 1}};
  auto tables = BuildAll(members);
  EXPECT_TRUE(tables[0]->IsOwner(50));    // (200, 100] wraps
  EXPECT_TRUE(tables[0]->IsOwner(100));
  EXPECT_FALSE(tables[0]->IsOwner(150));
  EXPECT_TRUE(tables[1]->IsOwner(150));
  EXPECT_TRUE(tables[1]->IsOwner(200));
  EXPECT_FALSE(tables[1]->IsOwner(250));
  EXPECT_TRUE(tables[0]->IsOwner(250));
}

TEST(ChordTest, OfferSuccessorAdoptsCloserNode) {
  std::vector<NodeInfo> members{{100, 0}, {300, 1}};
  ChordRouting t(members[0]);
  t.BuildStatic(members);
  EXPECT_EQ(t.successor().id, 300u);
  EXPECT_TRUE(t.OfferSuccessor(NodeInfo{200, 2}));
  EXPECT_EQ(t.successor().id, 200u);
  // Farther node is not adopted.
  EXPECT_FALSE(t.OfferSuccessor(NodeInfo{250, 3}));
  EXPECT_EQ(t.successor().id, 200u);
  // Self and invalid rejected.
  EXPECT_FALSE(t.OfferSuccessor(members[0]));
  EXPECT_FALSE(t.OfferSuccessor(NodeInfo{}));
}

TEST(ChordTest, RemovePeerPurgesAllState) {
  auto members = MakeRing(8, 10);
  ChordRouting t(members[3]);
  t.BuildStatic(members);
  sim::HostId victim = t.successor().host;
  t.RemovePeer(victim);
  for (const auto& p : t.KnownPeers()) EXPECT_NE(p.host, victim);
  // Successor fell back to the next list entry.
  EXPECT_NE(t.successor().host, victim);
}

TEST(ChordTest, DropPrimarySuccessorFallsBack) {
  auto members = MakeRing(8, 11);
  ChordRouting t(members[0]);
  t.BuildStatic(members);
  NodeInfo second = t.successor_list()[1];
  EXPECT_TRUE(t.DropPrimarySuccessor());
  EXPECT_EQ(t.successor().host, second.host);
}

TEST(ChordTest, SuccessorListExcludesSelfAndTruncates) {
  auto members = MakeRing(4, 12);
  ChordRouting t(members[0], /*successor_list_size=*/2);
  t.BuildStatic(members);
  EXPECT_EQ(t.successor_list().size(), 2u);
  std::vector<NodeInfo> list{members[1], members[0], members[2], members[3]};
  t.SetSuccessorList(list);
  EXPECT_EQ(t.successor_list().size(), 2u);
  for (const auto& s : t.successor_list()) {
    EXPECT_NE(s.host, members[0].host);
  }
}

TEST(ChordTest, FingerStartsDoubleInDistance) {
  ChordRouting t(NodeInfo{0, 0});
  EXPECT_EQ(t.FingerStart(0), 1u);
  EXPECT_EQ(t.FingerStart(10), 1024u);
  EXPECT_EQ(t.FingerStart(63), 1ull << 63);
}

TEST(ChordTest, ReplicaTargetsAreDistinctSuccessors) {
  auto members = MakeRing(10, 13);
  ChordRouting t(members[2]);
  t.BuildStatic(members);
  auto reps = t.ReplicaTargets(3);
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_EQ(reps[0].host, members[3].host);
  EXPECT_EQ(reps[1].host, members[4].host);
  EXPECT_EQ(reps[2].host, members[5].host);
}

}  // namespace
}  // namespace pierstack::dht
