// Proactive failure detector: liveness pings must discover dead or
// partitioned ring neighbors within a bounded number of ping rounds —
// independent of the stabilize cadence, and in particular under a network
// partition, where refused-send detection is blind (nothing is ever sent
// to the unreachable peer by the application, and pings to it are lost in
// flight rather than refused).
#include <gtest/gtest.h>

#include <memory>

#include "dht/builder.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace pierstack::dht {
namespace {

struct Deployment {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  explicit Deployment(size_t n, DhtOptions opts) {
    network = std::make_unique<sim::Network>(
        &simulator, std::make_unique<sim::ConstantLatency>(2 * sim::kMillisecond),
        42);
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 777);
  }

  void Settle(sim::SimTime duration) { simulator.RunFor(duration); }
};

DhtOptions DetectorOptions() {
  DhtOptions opts;
  opts.overlay = OverlayKind::kChord;
  opts.maintenance = true;
  opts.failure_detector = true;
  opts.ping_interval = 200 * sim::kMillisecond;
  opts.ping_miss_threshold = 2;
  // Slow stabilize so the detector, not the stabilize probe, is what
  // notices failures in these tests.
  opts.stabilize_interval = 5 * sim::kSecond;
  return opts;
}

TEST(FailureDetectorTest, PingsRunOnlyWhenEnabled) {
  DhtOptions on = DetectorOptions();
  Deployment d(8, on);
  d.Settle(2 * sim::kSecond);
  EXPECT_GT(d.dht->metrics().detector_pings, 0u);
  EXPECT_EQ(d.dht->metrics().detector_evictions, 0u);  // healthy ring

  DhtOptions off = DetectorOptions();
  off.failure_detector = false;
  Deployment quiet(8, off);
  quiet.Settle(2 * sim::kSecond);
  EXPECT_EQ(quiet.dht->metrics().detector_pings, 0u);
}

TEST(FailureDetectorTest, PartitionedPeerIsEvictedWithinBoundedRounds) {
  Deployment d(10, DetectorOptions());
  sim::FaultPlan plan(5);
  d.network->set_fault_plan(&plan);
  d.Settle(sim::kSecond);  // healthy steady state first

  // Cut one node off. Its host stays up, so every send to it is accepted
  // and lost in flight — the refused-send failure signal never fires.
  DhtNode* isolated = d.dht->node(4);
  plan.AssignPartition(isolated->host(), 1);

  uint64_t evictions_before = d.dht->metrics().detector_evictions;
  // Bound: suspicion needs ping_miss_threshold unanswered rounds plus the
  // round that acts on the threshold, each one ping_interval apart. Give
  // that twice over for scheduling stagger.
  d.Settle(2 * (3 + 1) * 200 * sim::kMillisecond);
  EXPECT_GT(d.dht->metrics().detector_evictions, evictions_before);
  EXPECT_GT(plan.counters().partition_drops, 0u);

  // The majority side keeps working across the cut: a put routed from the
  // majority completes once the isolated node is evicted.
  bool put_ok = false;
  d.dht->node(1)->Put("fd", 0x1234567890ABCDEFull, {1, 2, 3}, 0,
                      [&](Status s) { put_ok = s.ok(); });
  d.Settle(5 * sim::kSecond);
  EXPECT_TRUE(put_ok);
}

TEST(FailureDetectorTest, CrashedPeerIsEvictedByRefusedPing) {
  Deployment d(10, DetectorOptions());
  d.Settle(sim::kSecond);

  d.dht->node(6)->Crash();
  uint64_t evictions_before = d.dht->metrics().detector_evictions;
  // A refused ping (host down at send) evicts immediately at the next
  // detector round — no miss accumulation needed.
  d.Settle(2 * 200 * sim::kMillisecond);
  EXPECT_GT(d.dht->metrics().detector_evictions, evictions_before);
}

TEST(FailureDetectorTest, HealedPartitionStopsEvictions) {
  Deployment d(10, DetectorOptions());
  sim::FaultPlan plan(5);
  d.network->set_fault_plan(&plan);
  d.Settle(sim::kSecond);

  plan.AssignPartition(d.dht->node(4)->host(), 1);
  d.Settle(3 * sim::kSecond);
  plan.Heal();
  d.Settle(3 * sim::kSecond);

  uint64_t evictions_after_heal = d.dht->metrics().detector_evictions;
  d.Settle(5 * sim::kSecond);
  // Steady state after heal: no further suspicion.
  EXPECT_EQ(d.dht->metrics().detector_evictions, evictions_after_heal);
}

}  // namespace
}  // namespace pierstack::dht
