// Replica-aware MultiGet: with replication > 1 the chained scatter hands
// the remainder to replica holders (one hop peels several owners' key
// ranges), visiting fewer nodes and routing fewer hops than the K-owner
// baseline while returning the identical answer set.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/hashing.h"
#include "dht/builder.h"

namespace pierstack::dht {
namespace {

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<DhtDeployment> dht;

  Cluster(size_t n, size_t replication, bool replica_aware) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    DhtOptions opts;
    opts.replication = replication;
    opts.replica_aware_multiget = replica_aware;
    dht = std::make_unique<DhtDeployment>(network.get(), n, opts, 909);
  }

  /// Stores one value per key via the DHT (replicated) and returns keys.
  std::vector<Key> PublishKeys(size_t count) {
    std::vector<Key> keys;
    for (uint64_t i = 1; i <= count; ++i) {
      Key k = Mix64(i * 0x9e3779b97f4a7c15ULL);
      keys.push_back(k);
      std::string payload = "value-" + std::to_string(i);
      dht->node(0)->Put("items", k,
                        std::vector<uint8_t>(payload.begin(), payload.end()));
    }
    simulator.Run();
    return keys;
  }

  /// MultiGet from node 1; returns key -> first-byte-checked payloads.
  std::map<Key, size_t> Fetch(const std::vector<Key>& keys, Status* status) {
    std::map<Key, size_t> got;
    dht->node(1)->MultiGet(
        "items", keys,
        [&](Status s, std::vector<DhtNode::MultiGetItem> items) {
          *status = s;
          for (const auto& item : items) {
            got[item.key] = item.batch ? item.batch->size() : 0;
          }
        });
    simulator.Run();
    return got;
  }
};

TEST(ReplicaMultiGetTest, IdenticalAnswersWithFewerVisitsAndHops) {
  const size_t kNodes = 24, kKeys = 64;
  Cluster baseline(kNodes, 2, /*replica_aware=*/false);
  Cluster aware(kNodes, 2, /*replica_aware=*/true);
  auto keys_a = baseline.PublishKeys(kKeys);
  auto keys_b = aware.PublishKeys(kKeys);
  ASSERT_EQ(keys_a, keys_b);

  uint64_t route_msgs_before_a =
      baseline.network->metrics().by_tag["dht.route"].messages;
  uint64_t route_msgs_before_b =
      aware.network->metrics().by_tag["dht.route"].messages;

  Status sa = Status::Internal("unset"), sb = sa;
  auto got_a = baseline.Fetch(keys_a, &sa);
  auto got_b = aware.Fetch(keys_b, &sb);
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();

  // Identical result sets: same keys answered with same-size batches.
  EXPECT_EQ(got_a, got_b);
  EXPECT_EQ(got_b.size(), kKeys);
  for (const auto& [k, bytes] : got_b) {
    EXPECT_GT(bytes, 1u) << k;  // non-empty batch image for every key
  }

  // The replica-aware scatter visits fewer nodes (multi_gets counts one
  // routed message per visited node) and routes fewer hops overall.
  EXPECT_LT(aware.dht->metrics().multi_gets,
            baseline.dht->metrics().multi_gets);
  uint64_t hops_a = baseline.network->metrics().by_tag["dht.route"].messages -
                    route_msgs_before_a;
  uint64_t hops_b = aware.network->metrics().by_tag["dht.route"].messages -
                    route_msgs_before_b;
  EXPECT_LT(hops_b, hops_a);
  EXPECT_GT(aware.dht->metrics().replica_peels, 0u);
  EXPECT_GT(aware.dht->metrics().replica_skips, 0u);
  EXPECT_EQ(baseline.dht->metrics().replica_peels, 0u);
  EXPECT_EQ(baseline.dht->metrics().replica_skips, 0u);
}

TEST(ReplicaMultiGetTest, ReplicationOneNeverPeels) {
  Cluster c(16, 1, /*replica_aware=*/true);
  auto keys = c.PublishKeys(32);
  Status s = Status::Internal("unset");
  auto got = c.Fetch(keys, &s);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(got.size(), 32u);
  EXPECT_EQ(c.dht->metrics().replica_peels, 0u);
  EXPECT_EQ(c.dht->metrics().replica_skips, 0u);
}

TEST(ReplicaMultiGetTest, MissingKeysStillAnsweredEmptyByOwners) {
  Cluster c(16, 3, /*replica_aware=*/true);
  c.PublishKeys(16);
  // Keys never stored anywhere: a replica holding no data must NOT claim
  // them (an empty replica store could be replication lag), so each must
  // flow on to its owner and come back answered empty.
  std::vector<Key> missing;
  for (uint64_t i = 1; i <= 40; ++i) {
    missing.push_back(Mix64(i * 0xdeadbeefULL));
  }
  Status s = Status::Internal("unset");
  std::map<Key, size_t> got = c.Fetch(missing, &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got.size(), missing.size());
  for (const auto& [k, bytes] : got) {
    EXPECT_EQ(bytes, 1u) << k;  // the canonical empty batch image
  }
}

TEST(ReplicaMultiGetTest, EmptyReplicaNeverClaimsAKeyTheOwnerHolds) {
  // Replica copies travel one extra hop after the owner stores; an arc
  // handoff meeting a not-yet-copied key must pass it on to the owner
  // rather than answer empty. Modeled deterministically: the values exist
  // ONLY at their owners (written directly into the owner stores, as if
  // every replica copy were still in flight).
  Cluster c(24, 2, /*replica_aware=*/true);
  std::vector<Key> keys;
  for (uint64_t i = 1; i <= 48; ++i) {
    Key k = Mix64(i * 0x9e3779b97f4a7c15ULL);
    keys.push_back(k);
    std::string payload = "owner-only-" + std::to_string(i);
    c.dht->ExpectedOwner(k)->store().Put(
        "items", k, std::vector<uint8_t>(payload.begin(), payload.end()));
  }
  Status s = Status::Internal("unset");
  auto got = c.Fetch(keys, &s);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(got.size(), keys.size());
  for (const auto& [k, bytes] : got) {
    EXPECT_GT(bytes, 1u) << k;  // every owner-held value came back
  }
}

TEST(ReplicaMultiGetTest, HigherReplicationPeelsMore) {
  const size_t kNodes = 24, kKeys = 96;
  Cluster r2(kNodes, 2, true), r4(kNodes, 4, true);
  auto keys_a = r2.PublishKeys(kKeys);
  auto keys_b = r4.PublishKeys(kKeys);
  ASSERT_EQ(keys_a, keys_b);
  Status sa = Status::Internal("unset"), sb = sa;
  auto got_a = r2.Fetch(keys_a, &sa);
  auto got_b = r4.Fetch(keys_b, &sb);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(got_a, got_b);
  // A wider replica set lets each handoff cover more owners: fewer visits.
  EXPECT_LT(r4.dht->metrics().multi_gets, r2.dht->metrics().multi_gets);
}

}  // namespace
}  // namespace pierstack::dht
