#include "model/equations.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pierstack::model {
namespace {

SystemParams Params(double n, double h) {
  SystemParams p;
  p.num_nodes = n;
  p.horizon_nodes = h;
  return p;
}

TEST(EquationsTest, PFGnutellaBounds) {
  auto p = Params(1000, 50);
  for (double r : {0.0, 1.0, 5.0, 100.0, 1000.0}) {
    double pf = PFGnutella(r, p);
    EXPECT_GE(pf, 0.0);
    EXPECT_LE(pf, 1.0);
  }
  EXPECT_DOUBLE_EQ(PFGnutella(0, p), 0.0);
  EXPECT_DOUBLE_EQ(PFGnutella(1000, p), 1.0);
}

TEST(EquationsTest, PFGnutellaSingleReplicaEqualsHorizonFraction) {
  // One replica, horizon H of N: P(found) = H/N exactly.
  auto p = Params(10000, 500);
  EXPECT_NEAR(PFGnutella(1, p), 0.05, 1e-9);
}

TEST(EquationsTest, PFGnutellaMonotoneInReplicasAndHorizon) {
  for (double h : {10.0, 100.0, 1000.0}) {
    auto p = Params(10000, h);
    double prev = -1;
    for (double r = 0; r <= 64; r += 1) {
      double pf = PFGnutella(r, p);
      EXPECT_GE(pf, prev);
      prev = pf;
    }
  }
  for (double r : {1.0, 7.0, 50.0}) {
    double prev = -1;
    for (double h = 0; h <= 5000; h += 500) {
      double pf = PFGnutella(r, Params(10000, h));
      EXPECT_GE(pf, prev);
      prev = pf;
    }
  }
}

TEST(EquationsTest, PFGnutellaFullHorizonIsCertain) {
  EXPECT_DOUBLE_EQ(PFGnutella(1, Params(100, 100)), 1.0);
}

TEST(EquationsTest, PFGnutellaMatchesClosedFormForSmallCase) {
  // N=4, H=2, R=1: P(found) = 1 - (3/4)(2/3) = 1/2.
  EXPECT_NEAR(PFGnutella(1, Params(4, 2)), 0.5, 1e-12);
  // N=4, H=2, R=2: 1 - (2/4)(1/3) = 5/6.
  EXPECT_NEAR(PFGnutella(2, Params(4, 2)), 5.0 / 6.0, 1e-12);
}

TEST(EquationsTest, PFHybridEquationOne) {
  auto p = Params(10000, 500);
  double pf_g = PFGnutella(3, p);
  EXPECT_DOUBLE_EQ(PFHybrid(3, false, p), pf_g);
  EXPECT_DOUBLE_EQ(PFHybrid(3, true, p), 1.0);  // published → always found
}

TEST(EquationsTest, PFThresholdStartsAtHorizonFraction) {
  auto p = Params(75129, static_cast<double>(75129) * 0.05);
  EXPECT_NEAR(PFThreshold(0, p), 0.05, 1e-3);
}

TEST(EquationsTest, PFThresholdMonotoneWithDiminishingReturns) {
  // The Figure 9 shape: increasing, concave.
  auto p = Params(75129, 75129 * 0.15);
  double prev = 0, prev_gain = 1;
  for (uint32_t t = 0; t <= 20; ++t) {
    double pf = PFThreshold(t, p);
    EXPECT_GE(pf, prev);
    if (t >= 2) {
      double gain = pf - prev;
      EXPECT_LE(gain, prev_gain + 1e-12) << "t=" << t;
      prev_gain = gain;
    } else if (t == 1) {
      prev_gain = pf - prev;
    }
    prev = pf;
  }
  // At threshold 20 with 15% horizon, almost everything is found.
  EXPECT_GT(PFThreshold(20, p), 0.95);
}

TEST(EquationsTest, SearchCostBreakdown) {
  auto p = Params(1000, 100);
  ItemParams item;
  item.replicas = 1;
  item.query_freq = 2;
  CostParams costs;
  costs.cs_dht = 10;
  // Eq 3: Q * ((H-1) + PNF_g * CS_DHT).
  double pnf = 1.0 - PFGnutella(1, p);
  EXPECT_NEAR(SearchCost(item, p, costs), 2 * (99 + pnf * 10), 1e-9);
}

TEST(EquationsTest, TotalCostAddsAmortizedPublish) {
  auto p = Params(1000, 100);
  ItemParams item;
  item.replicas = 1;
  item.query_freq = 1;
  item.lifetime = 5;
  CostParams costs;
  costs.cs_dht = 10;
  costs.cp_dht = 50;
  double base = SearchCost(item, p, costs);
  EXPECT_DOUBLE_EQ(TotalItemCost(item, p, costs), base);  // unpublished
  item.published = true;
  EXPECT_DOUBLE_EQ(TotalItemCost(item, p, costs), base + 50.0 / 5.0);
}

TEST(EquationsTest, PublishCostIndicator) {
  CostParams costs;
  costs.cp_dht = 30;
  ItemParams item;
  EXPECT_DOUBLE_EQ(PublishCost(item, costs), 0.0);
  item.published = true;
  EXPECT_DOUBLE_EQ(PublishCost(item, costs), 30.0);
}

TEST(EquationsTest, DefaultDhtSearchCostIsLogN) {
  EXPECT_NEAR(DefaultDhtSearchCost(1024), 10.0, 1e-9);
  EXPECT_NEAR(DefaultDhtSearchCost(75129), std::log2(75129.0), 1e-9);
}

// Property sweep: hybrid recall dominates Gnutella-only recall for every
// replica count (Equation 1 with publishing can only help).
class HybridDominance : public ::testing::TestWithParam<double> {};

TEST_P(HybridDominance, PublishedNeverWorse) {
  auto p = Params(50000, 50000 * GetParam());
  for (double r = 1; r <= 128; r *= 2) {
    EXPECT_GE(PFHybrid(r, true, p), PFGnutella(r, p));
    EXPECT_DOUBLE_EQ(PFHybrid(r, false, p), PFGnutella(r, p));
  }
}

INSTANTIATE_TEST_SUITE_P(Horizons, HybridDominance,
                         ::testing::Values(0.01, 0.05, 0.15, 0.3, 0.5));

}  // namespace
}  // namespace pierstack::model
