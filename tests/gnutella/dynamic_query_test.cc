// Dynamic querying: pacing, widening, and the latency/popularity relation
// the paper measures in Figure 7.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "gnutella/topology.h"

namespace pierstack::gnutella {
namespace {

struct Net {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<GnutellaNetwork> gnutella;

  explicit Net(TopologyConfig config) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(20 * sim::kMillisecond), 6);
    gnutella = std::make_unique<GnutellaNetwork>(network.get(), config);
    simulator.Run();
  }
};

TopologyConfig DynConfig() {
  TopologyConfig c;
  c.num_ultrapeers = 60;
  c.num_leaves = 0;
  c.protocol.ultrapeer_degree = 8;
  c.protocol.query_mode = QueryMode::kDynamic;
  c.protocol.dynamic.desired_results = 10;
  c.protocol.dynamic.probe_wait = 1 * sim::kSecond;
  c.protocol.dynamic.per_neighbor_wait = 1 * sim::kSecond;
  c.seed = 21;
  return c;
}

TEST(DynamicQueryTest, PopularContentAnsweredByProbe) {
  auto config = DynConfig();
  Net net(config);
  // Every ultrapeer shares the popular file: the TTL-1 probe suffices.
  for (size_t i = 0; i < net.gnutella->num_ultrapeers(); ++i) {
    net.gnutella->ultrapeer(i)->SetSharedFiles({"ubiquitous popular hit.mp3"});
  }
  sim::SimTime first = 0;
  size_t results = 0;
  net.gnutella->ultrapeer(0)->StartQuery(
      "ubiquitous popular", [&](const std::vector<QueryResult>& rs) {
        if (results == 0) first = net.simulator.now();
        results += rs.size();
      });
  net.simulator.Run();
  EXPECT_GT(results, 0u);
  EXPECT_LT(first, 500 * sim::kMillisecond);  // one round trip
}

TEST(DynamicQueryTest, RareContentTakesManyRounds) {
  auto config = DynConfig();
  Net net(config);
  // Exactly one distant ultrapeer has the file.
  net.gnutella->ultrapeer(47)->SetSharedFiles({"obscure basement tape.mp3"});
  sim::SimTime first = 0;
  size_t results = 0;
  net.gnutella->ultrapeer(0)->StartQuery(
      "obscure basement", [&](const std::vector<QueryResult>& rs) {
        if (results == 0) first = net.simulator.now();
        results += rs.size();
      });
  net.simulator.Run();
  if (results > 0) {
    // Found only after per-neighbor widening: latency reflects the waits.
    EXPECT_GT(first, config.protocol.dynamic.probe_wait);
  }
  // Either way the query terminates (no infinite widening).
  EXPECT_FALSE(net.gnutella->ultrapeer(0)->QueryActive(1));
}

TEST(DynamicQueryTest, StopsWideningOnceSatisfied) {
  auto config = DynConfig();
  config.protocol.dynamic.desired_results = 1;
  Net net(config);
  for (size_t i = 0; i < net.gnutella->num_ultrapeers(); ++i) {
    net.gnutella->ultrapeer(i)->SetSharedFiles({"everywhere song.mp3"});
  }
  net.gnutella->metrics() = GnutellaMetrics{};
  net.gnutella->ultrapeer(0)->StartQuery("everywhere song",
                                         [](const auto&) {});
  net.simulator.Run();
  // Probe (3 neighbors) answers; at most one widening round should follow.
  EXPECT_LE(net.gnutella->metrics().query_messages, 8u);
}

TEST(DynamicQueryTest, ExhaustsNeighborsForMissingContent) {
  auto config = DynConfig();
  Net net(config);
  auto* root = net.gnutella->ultrapeer(0);
  size_t degree = root->ultrapeer_neighbors().size();
  net.gnutella->metrics() = GnutellaMetrics{};
  Guid guid = root->StartQuery("never matches anything zzz",
                               [](const auto&) {});
  net.simulator.Run();
  EXPECT_FALSE(root->QueryActive(guid));
  // Root contacted every neighbor exactly once (probe + widening).
  uint64_t root_sends = 0;
  (void)degree;
  // Indirect check: total runtime spans all per-neighbor waits.
  EXPECT_GE(net.simulator.now(),
            config.protocol.dynamic.probe_wait +
                (degree > 3 ? (degree - 3) : 0) *
                    config.protocol.dynamic.per_neighbor_wait);
  (void)root_sends;
}

TEST(DynamicQueryTest, EndQueryCancelsWidening) {
  auto config = DynConfig();
  Net net(config);
  auto* root = net.gnutella->ultrapeer(0);
  Guid guid = root->StartQuery("never matches either", [](const auto&) {});
  net.simulator.RunFor(100 * sim::kMillisecond);
  EXPECT_TRUE(root->QueryActive(guid));
  root->EndQuery(guid);
  EXPECT_FALSE(root->QueryActive(guid));
  uint64_t before = net.gnutella->metrics().query_messages;
  net.simulator.Run();
  // No further widening traffic from the root after EndQuery (allow the
  // in-flight probe forwards to finish).
  EXPECT_LE(net.gnutella->metrics().query_messages, before + 60);
}

TEST(DynamicQueryTest, LatencyOrderingRareVsPopular) {
  // The Figure 7 relation: first-result latency for a rare item exceeds a
  // popular item's by roughly the widening waits.
  auto config = DynConfig();
  Net net(config);
  for (size_t i = 0; i < 60; ++i) {
    net.gnutella->ultrapeer(i)->SetSharedFiles(
        {"megahit chart topper.mp3"});
  }
  // Place the rare file on an ultrapeer that is NOT a direct neighbor of
  // the query root, so the TTL-1 probe cannot reach it and the dynamic
  // query must pay at least one widening wait.
  auto* root = net.gnutella->ultrapeer(0);
  GnutellaNode* rare_holder = nullptr;
  for (size_t i = 1; i < 60; ++i) {
    auto* cand = net.gnutella->ultrapeer(i);
    const auto& ns = root->ultrapeer_neighbors();
    if (std::find(ns.begin(), ns.end(), cand->host()) == ns.end()) {
      rare_holder = cand;
      break;
    }
  }
  ASSERT_NE(rare_holder, nullptr);
  rare_holder->SetSharedFiles(
      {"megahit chart topper.mp3", "dusty attic demo.mp3"});

  sim::SimTime popular_first = 0, rare_first = 0;
  bool popular_seen = false, rare_seen = false;
  net.gnutella->ultrapeer(0)->StartQuery(
      "megahit chart", [&](const std::vector<QueryResult>&) {
        if (!popular_seen) {
          popular_first = net.simulator.now();
          popular_seen = true;
        }
      });
  net.gnutella->ultrapeer(0)->StartQuery(
      "dusty attic", [&](const std::vector<QueryResult>&) {
        if (!rare_seen) {
          rare_first = net.simulator.now();
          rare_seen = true;
        }
      });
  net.simulator.Run();
  ASSERT_TRUE(popular_seen);
  if (rare_seen) {
    EXPECT_GT(rare_first, popular_first);
  }
}

}  // namespace
}  // namespace pierstack::gnutella
