#include "gnutella/crawler.h"

#include <gtest/gtest.h>

#include <memory>

#include "gnutella/topology.h"

namespace pierstack::gnutella {
namespace {

struct Net {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<GnutellaNetwork> gnutella;

  explicit Net(size_t ups, size_t leaves, uint64_t seed = 31) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(15 * sim::kMillisecond), 8);
    TopologyConfig c;
    c.num_ultrapeers = ups;
    c.num_leaves = leaves;
    c.protocol.ultrapeer_degree = 5;
    c.seed = seed;
    gnutella = std::make_unique<GnutellaNetwork>(network.get(), c);
    simulator.Run();
  }
};

TEST(CrawlerTest, FullCrawlDiscoversAllUltrapeers) {
  Net net(50, 200);
  Crawler crawler(net.network.get(), /*parallelism=*/10);
  bool done = false;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph& g) {
                  done = true;
                  EXPECT_EQ(g.num_ultrapeers(), 50u);
                });
  net.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(crawler.finished());
}

TEST(CrawlerTest, EstimatedNetworkSizeIncludesLeaves) {
  Net net(40, 300);
  Crawler crawler(net.network.get(), 8);
  uint64_t estimate = 0;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph& g) {
                  estimate = g.EstimatedNetworkSize();
                });
  net.simulator.Run();
  // Each leaf attaches to up to 3 ultrapeers, so the leaf-slot count can
  // overcount; it must at least cover every node once.
  EXPECT_GE(estimate, 40u + 300u);
  EXPECT_LE(estimate, 40u + 3 * 300u);
}

TEST(CrawlerTest, ParallelismBoundsInFlight) {
  Net net(60, 0);
  Crawler crawler(net.network.get(), 2);
  bool done = false;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph&) { done = true; });
  net.simulator.Run();
  EXPECT_TRUE(done);  // low parallelism still completes
}

TEST(CrawlerTest, DeadSeedsAreSkipped) {
  Net net(30, 0);
  net.network->SetHostUp(net.gnutella->ultrapeer(0)->host(), false);
  Crawler crawler(net.network.get(), 4);
  bool done = false;
  crawler.Start({net.gnutella->ultrapeer(0)->host(),
                 net.gnutella->ultrapeer(1)->host()},
                [&](const CrawlGraph& g) {
                  done = true;
                  // Crawl proceeded from the live seed.
                  EXPECT_GE(g.num_ultrapeers(), 28u);
                });
  net.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(FloodExpansionTest, MonotoneAndDiminishing) {
  Net net(120, 0);
  Crawler crawler(net.network.get(), 16);
  CrawlGraph graph;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph& g) { graph = g; });
  net.simulator.Run();

  auto steps = FloodExpansion(graph, net.gnutella->ultrapeer(3)->host(), 6);
  ASSERT_EQ(steps.size(), 6u);
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GE(steps[i].ultrapeers_reached, steps[i - 1].ultrapeers_reached);
    EXPECT_GE(steps[i].messages, steps[i - 1].messages);
  }
  // Figure 8's diminishing returns: once the flood saturates the graph,
  // extra messages stop adding reach.
  const auto& last = steps.back();
  EXPECT_EQ(last.ultrapeers_reached, 120u);
  // Message cost exceeds node count (duplicate deliveries are paid for).
  EXPECT_GT(last.messages, last.ultrapeers_reached);
}

TEST(FloodExpansionTest, Ttl1IsJustTheNeighbors) {
  Net net(40, 0);
  Crawler crawler(net.network.get(), 8);
  CrawlGraph graph;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph& g) { graph = g; });
  net.simulator.Run();
  sim::HostId src = net.gnutella->ultrapeer(7)->host();
  auto steps = FloodExpansion(graph, src, 1);
  size_t degree = graph.adjacency.at(src).size();
  EXPECT_EQ(steps[0].messages, degree);
  EXPECT_EQ(steps[0].ultrapeers_reached, 1u + degree);
}

TEST(FloodExpansionTest, AveragedCurveIsSmoother) {
  Net net(80, 0);
  Crawler crawler(net.network.get(), 8);
  CrawlGraph graph;
  crawler.Start({net.gnutella->ultrapeer(0)->host()},
                [&](const CrawlGraph& g) { graph = g; });
  net.simulator.Run();
  std::vector<sim::HostId> sources;
  for (size_t i = 0; i < 10; ++i) {
    sources.push_back(net.gnutella->ultrapeer(i)->host());
  }
  auto avg = FloodExpansionAveraged(graph, sources, 4);
  ASSERT_EQ(avg.size(), 4u);
  EXPECT_GT(avg[0].messages, 0u);
  EXPECT_LE(avg.back().ultrapeers_reached, 80u);
}

}  // namespace
}  // namespace pierstack::gnutella
