// GnutellaNetwork topology construction invariants.
#include "gnutella/topology.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <set>

namespace pierstack::gnutella {
namespace {

struct Net {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<GnutellaNetwork> gnutella;

  explicit Net(TopologyConfig config) {
    network = std::make_unique<sim::Network>(&simulator, nullptr, 1);
    gnutella = std::make_unique<GnutellaNetwork>(network.get(), config);
    simulator.Run();
  }
};

TopologyConfig Config(size_t ups, size_t leaves, size_t degree,
                      uint64_t seed = 1) {
  TopologyConfig c;
  c.num_ultrapeers = ups;
  c.num_leaves = leaves;
  c.protocol.ultrapeer_degree = degree;
  c.seed = seed;
  return c;
}

TEST(TopologyTest, EdgesAreSymmetric) {
  Net net(Config(50, 0, 6));
  std::set<std::pair<sim::HostId, sim::HostId>> edges;
  for (size_t i = 0; i < 50; ++i) {
    auto* up = net.gnutella->ultrapeer(i);
    for (sim::HostId n : up->ultrapeer_neighbors()) {
      edges.insert({up->host(), n});
    }
  }
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(edges.count({b, a})) << a << "<->" << b;
  }
}

TEST(TopologyTest, NoSelfLoopsOrParallelEdges) {
  Net net(Config(40, 0, 8));
  for (size_t i = 0; i < 40; ++i) {
    auto* up = net.gnutella->ultrapeer(i);
    std::set<sim::HostId> distinct(up->ultrapeer_neighbors().begin(),
                                   up->ultrapeer_neighbors().end());
    EXPECT_EQ(distinct.size(), up->ultrapeer_neighbors().size());
    EXPECT_FALSE(distinct.count(up->host()));
  }
}

TEST(TopologyTest, UltrapeerMeshIsConnected) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    Net net(Config(100, 0, 4, seed));
    std::set<sim::HostId> visited;
    std::deque<GnutellaNode*> frontier{net.gnutella->ultrapeer(0)};
    visited.insert(net.gnutella->ultrapeer(0)->host());
    while (!frontier.empty()) {
      auto* up = frontier.front();
      frontier.pop_front();
      for (sim::HostId n : up->ultrapeer_neighbors()) {
        if (visited.insert(n).second) {
          frontier.push_back(net.gnutella->by_host(n));
        }
      }
    }
    EXPECT_EQ(visited.size(), 100u) << "seed " << seed;
  }
}

TEST(TopologyTest, LeafCapacityRespected) {
  auto config = Config(10, 400, 4);
  config.protocol.max_leaves_per_ultrapeer = 30;
  config.protocol.ultrapeers_per_leaf = 1;
  Net net(config);
  // 400 leaves over 10 UPs at slot budget 30*1: some leaves overflow via
  // the fallback, but no ultrapeer should be wildly over budget.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_LE(net.gnutella->ultrapeer(i)->leaves().size(), 70u);
  }
}

TEST(TopologyTest, LeafParentsAreDistinctUltrapeers) {
  Net net(Config(30, 300, 6));
  for (size_t i = 0; i < 300; ++i) {
    auto* leaf = net.gnutella->leaf(i);
    std::set<sim::HostId> parents(leaf->parent_ultrapeers().begin(),
                                  leaf->parent_ultrapeers().end());
    EXPECT_EQ(parents.size(), leaf->parent_ultrapeers().size());
    for (sim::HostId p : parents) {
      auto* up = net.gnutella->by_host(p);
      ASSERT_NE(up, nullptr);
      EXPECT_EQ(up->role(), Role::kUltrapeer);
    }
  }
}

TEST(TopologyTest, ByHostResolvesEveryNode) {
  Net net(Config(20, 80, 4));
  for (size_t i = 0; i < net.gnutella->size(); ++i) {
    auto* node = net.gnutella->node(i);
    EXPECT_EQ(net.gnutella->by_host(node->host()), node);
  }
  EXPECT_EQ(net.gnutella->by_host(sim::HostId{100000}), nullptr);
}

TEST(TopologyTest, DeterministicForSeed) {
  Net a(Config(30, 60, 5, 42));
  Net b(Config(30, 60, 5, 42));
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.gnutella->ultrapeer(i)->ultrapeer_neighbors(),
              b.gnutella->ultrapeer(i)->ultrapeer_neighbors());
  }
  for (size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(a.gnutella->leaf(i)->parent_ultrapeers(),
              b.gnutella->leaf(i)->parent_ultrapeers());
  }
}

TEST(TopologyTest, SingleUltrapeerNetworkWorks) {
  Net net(Config(1, 10, 8));
  EXPECT_EQ(net.gnutella->ultrapeer(0)->leaves().size(), 10u);
  // Query from a leaf still matches the ultrapeer-side index.
  net.gnutella->leaf(0)->SetSharedFiles({"solo network file.mp3"});
  net.gnutella->leaf(0)->RepublishTo(
      net.gnutella->leaf(0)->parent_ultrapeers()[0]);
  net.simulator.Run();
  size_t hits = 0;
  net.gnutella->leaf(5)->StartQuery(
      "solo network",
      [&](const std::vector<QueryResult>& rs) { hits += rs.size(); });
  net.simulator.Run();
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace pierstack::gnutella
