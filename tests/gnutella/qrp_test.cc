// QRP-style leaf publishing: Bloom filters instead of full file lists
// (paper footnote 2).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "gnutella/topology.h"

namespace pierstack::gnutella {
namespace {

struct Net {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<GnutellaNetwork> gnutella;

  explicit Net(LeafPublishMode mode, uint64_t seed = 44) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(10 * sim::kMillisecond), 5);
    TopologyConfig c;
    c.num_ultrapeers = 20;
    c.num_leaves = 80;
    c.protocol.ultrapeer_degree = 4;
    c.protocol.flood_ttl = 3;
    c.protocol.leaf_publish = mode;
    c.seed = seed;
    gnutella = std::make_unique<GnutellaNetwork>(network.get(), c);
    simulator.Run();
  }

  void ShareAndPublish(GnutellaNode* leaf, std::vector<std::string> names) {
    leaf->SetSharedFiles(std::move(names));
    for (sim::HostId up : leaf->parent_ultrapeers()) leaf->RepublishTo(up);
    simulator.Run();
  }
};

TEST(QrpTest, BloomModeDoesNotIndexLeafFilesAtUltrapeer) {
  Net net(LeafPublishMode::kBloomFilter);
  auto* leaf = net.gnutella->leaf(0);
  net.ShareAndPublish(leaf, {"qrp hidden catalog.mp3"});
  for (sim::HostId up_host : leaf->parent_ultrapeers()) {
    auto* up = net.gnutella->by_host(up_host);
    EXPECT_TRUE(up->index().MatchText("hidden catalog").empty());
  }
}

TEST(QrpTest, QueriesStillFindLeafContent) {
  Net net(LeafPublishMode::kBloomFilter);
  auto* sharer = net.gnutella->leaf(5);
  net.ShareAndPublish(sharer, {"zanzibar qrp treasure.mp3"});
  std::set<uint64_t> ids;
  auto* searcher = net.gnutella->leaf(60);
  searcher->StartQuery("zanzibar treasure",
                       [&](const std::vector<QueryResult>& rs) {
                         for (const auto& r : rs) {
                           EXPECT_EQ(r.owner, sharer->host());
                           ids.insert(r.file_id);
                         }
                       });
  net.simulator.Run();
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_GT(net.gnutella->metrics().qrp_leaf_forwards, 0u);
}

TEST(QrpTest, SearcherDoesNotReceiveItsOwnFilesBack) {
  Net net(LeafPublishMode::kBloomFilter);
  auto* leaf = net.gnutella->leaf(3);
  net.ShareAndPublish(leaf, {"own echo record.mp3"});
  size_t results = 0;
  leaf->StartQuery("own echo", [&](const std::vector<QueryResult>& rs) {
    results += rs.size();
  });
  net.simulator.Run();
  EXPECT_EQ(results, 0u);
}

TEST(QrpTest, FalsePositiveForwardsAreCounted) {
  Net net(LeafPublishMode::kBloomFilter);
  // Load a leaf with enough keywords that a saturated Bloom filter
  // produces occasional false positives for unrelated terms.
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) {
    names.push_back("library entry number" + std::to_string(i) + " fill" +
                    std::to_string(i * 7) + ".mp3");
  }
  auto* leaf = net.gnutella->leaf(2);
  net.ShareAndPublish(leaf, std::move(names));
  // Fire many queries for absent terms from a neighbor ultrapeer.
  auto* up = net.gnutella->by_host(leaf->parent_ultrapeers()[0]);
  for (int i = 0; i < 300; ++i) {
    up->StartQuery("absentterm" + std::to_string(i) + " nothing",
                   [](const auto&) {});
  }
  net.simulator.Run();
  // Any forward to the leaf for these queries is a false positive and must
  // be counted as such (there may legitimately be none if the filter is
  // sparse; assert consistency rather than a minimum).
  EXPECT_GE(net.gnutella->metrics().qrp_leaf_forwards,
            net.gnutella->metrics().qrp_false_positives);
}

TEST(QrpTest, PublishBytesSmallerThanFullList) {
  // The QRP rationale: publishing costs shrink.
  uint64_t full_bytes, bloom_bytes;
  {
    Net net(LeafPublishMode::kFullList);
    std::vector<std::string> names;
    for (int i = 0; i < 60; ++i) {
      names.push_back("some reasonably long filename number" +
                      std::to_string(i) + ".mp3");
    }
    uint64_t before = net.network->metrics().by_tag.at("gnutella.publish").bytes;
    net.ShareAndPublish(net.gnutella->leaf(1), names);
    full_bytes =
        net.network->metrics().by_tag.at("gnutella.publish").bytes - before;
  }
  {
    Net net(LeafPublishMode::kBloomFilter);
    std::vector<std::string> names;
    for (int i = 0; i < 60; ++i) {
      names.push_back("some reasonably long filename number" +
                      std::to_string(i) + ".mp3");
    }
    uint64_t before = net.network->metrics().by_tag.at("gnutella.publish").bytes;
    net.ShareAndPublish(net.gnutella->leaf(1), names);
    bloom_bytes =
        net.network->metrics().by_tag.at("gnutella.publish").bytes - before;
  }
  EXPECT_LT(bloom_bytes, full_bytes / 2);
}

TEST(QrpTest, FullListModeHasNoQrpTraffic) {
  Net net(LeafPublishMode::kFullList);
  auto* sharer = net.gnutella->leaf(5);
  net.ShareAndPublish(sharer, {"plain indexed file.mp3"});
  net.gnutella->ultrapeer(0)->StartQuery("plain indexed", [](const auto&) {});
  net.simulator.Run();
  EXPECT_EQ(net.gnutella->metrics().qrp_leaf_forwards, 0u);
}

TEST(QrpTest, RepublishReplacesBloom) {
  Net net(LeafPublishMode::kBloomFilter);
  auto* leaf = net.gnutella->leaf(7);
  net.ShareAndPublish(leaf, {"first generation content.mp3"});
  net.ShareAndPublish(leaf, {"second generation content.mp3"});
  // New library is findable.
  size_t hits = 0;
  net.gnutella->leaf(50)->StartQuery(
      "second generation",
      [&](const std::vector<QueryResult>& rs) { hits += rs.size(); });
  net.simulator.Run();
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace pierstack::gnutella
