#include "gnutella/index.h"

#include <gtest/gtest.h>

#include "common/tokenizer.h"

namespace pierstack::gnutella {
namespace {

SharedFile File(const std::string& name, uint64_t size = 1000) {
  SharedFile f;
  f.filename = name;
  f.size_bytes = size;
  f.file_id = MakeFileId(name, size, 1);
  return f;
}

TEST(KeywordIndexTest, SingleTermMatch) {
  KeywordIndex idx;
  idx.Add(File("madonna like a prayer.mp3"), 1);
  idx.Add(File("beatles help.mp3"), 2);
  auto m = idx.MatchText("madonna");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0]->owner, 1u);
}

TEST(KeywordIndexTest, ConjunctiveMatchRequiresAllTerms) {
  KeywordIndex idx;
  idx.Add(File("madonna like a prayer.mp3"), 1);
  idx.Add(File("madonna vogue.mp3"), 2);
  EXPECT_EQ(idx.MatchText("madonna prayer").size(), 1u);
  EXPECT_EQ(idx.MatchText("madonna").size(), 2u);
  EXPECT_TRUE(idx.MatchText("madonna help").empty());
}

TEST(KeywordIndexTest, StopWordsIgnoredInQueries) {
  KeywordIndex idx;
  idx.Add(File("the matrix.avi"), 1);
  // "the" and "avi" are stop words on both sides.
  EXPECT_EQ(idx.MatchText("the matrix").size(), 1u);
  EXPECT_EQ(idx.MatchText("matrix avi").size(), 1u);
}

TEST(KeywordIndexTest, AllStopWordQueryMatchesNothing) {
  KeywordIndex idx;
  idx.Add(File("the matrix.avi"), 1);
  EXPECT_TRUE(idx.MatchText("the mp3").empty());
  EXPECT_TRUE(idx.MatchText("").empty());
}

TEST(KeywordIndexTest, MultipleOwnersSameFilename) {
  KeywordIndex idx;
  idx.Add(File("dark side of the moon.mp3"), 1);
  idx.Add(File("dark side of the moon.mp3"), 2);
  EXPECT_EQ(idx.MatchText("moon dark").size(), 2u);
}

TEST(KeywordIndexTest, RemoveOwnerHidesEntries) {
  KeywordIndex idx;
  idx.Add(File("abba dancing queen.mp3"), 1);
  idx.Add(File("abba waterloo.mp3"), 2);
  EXPECT_EQ(idx.num_entries(), 2u);
  idx.RemoveOwner(1);
  EXPECT_EQ(idx.num_entries(), 1u);
  auto m = idx.MatchText("abba");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0]->owner, 2u);
}

TEST(KeywordIndexTest, PostingListSizes) {
  KeywordIndex idx;
  idx.Add(File("abba dancing queen.mp3"), 1);
  idx.Add(File("abba waterloo.mp3"), 1);
  EXPECT_EQ(idx.PostingListSize("abba"), 2u);
  EXPECT_EQ(idx.PostingListSize("waterloo"), 1u);
  EXPECT_EQ(idx.PostingListSize("nothing"), 0u);
}

TEST(KeywordIndexTest, MatchAgreesWithSubstringRuleOnTokenQueries) {
  // For whole-token queries over these names, the index's conjunctive
  // keyword match must agree with the Gnutella substring rule.
  std::vector<std::string> names{
      "silver hammer midnight.mp3", "silver moon.mp3",
      "hammer time club.mp3", "midnight silver hammer live.mp3"};
  KeywordIndex idx;
  for (size_t i = 0; i < names.size(); ++i) {
    idx.Add(File(names[i]), static_cast<sim::HostId>(i));
  }
  std::vector<std::vector<std::string>> queries{
      {"silver"}, {"silver", "hammer"}, {"hammer", "club"}, {"moon"},
      {"silver", "hammer", "midnight"}};
  for (const auto& q : queries) {
    auto matched = idx.Match(q);
    size_t expected = 0;
    for (const auto& n : names) {
      if (FilenameMatchesQuery(n, q)) ++expected;
    }
    EXPECT_EQ(matched.size(), expected);
  }
}

TEST(KeywordIndexTest, AllEntriesListsLiveOnly) {
  KeywordIndex idx;
  idx.Add(File("one.mp3x a"), 1);
  idx.Add(File("two.mp3x b"), 2);
  idx.RemoveOwner(1);
  EXPECT_EQ(idx.AllEntries().size(), 1u);
}

}  // namespace
}  // namespace pierstack::gnutella
