// Flooding, duplicate suppression, reverse-path hits, leaf publishing.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "gnutella/topology.h"

namespace pierstack::gnutella {
namespace {

struct Net {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<GnutellaNetwork> gnutella;

  explicit Net(TopologyConfig config) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(10 * sim::kMillisecond), 5);
    gnutella = std::make_unique<GnutellaNetwork>(network.get(), config);
    simulator.Run();  // settle leaf publishes
  }
};

TopologyConfig SmallConfig() {
  TopologyConfig c;
  c.num_ultrapeers = 30;
  c.num_leaves = 120;
  c.protocol.ultrapeer_degree = 4;
  c.protocol.flood_ttl = 2;
  c.protocol.query_mode = QueryMode::kFlood;
  c.seed = 11;
  return c;
}

TEST(FloodingTest, TopologyRespectsConfig) {
  Net net(SmallConfig());
  EXPECT_EQ(net.gnutella->num_ultrapeers(), 30u);
  EXPECT_EQ(net.gnutella->num_leaves(), 120u);
  for (size_t i = 0; i < 30; ++i) {
    auto* up = net.gnutella->ultrapeer(i);
    EXPECT_GE(up->ultrapeer_neighbors().size(), 1u);
    EXPECT_LE(up->ultrapeer_neighbors().size(), 7u);  // degree + overflow
  }
  for (size_t i = 0; i < 120; ++i) {
    auto* leaf = net.gnutella->leaf(i);
    EXPECT_GE(leaf->parent_ultrapeers().size(), 1u);
    EXPECT_LE(leaf->parent_ultrapeers().size(), 3u);
  }
}

TEST(FloodingTest, LeafFilesIndexedAtParents) {
  auto config = SmallConfig();
  Net net(config);
  auto* leaf = net.gnutella->leaf(0);
  leaf->SetSharedFiles({"unique zanzibar melody.mp3"});
  for (sim::HostId up : leaf->parent_ultrapeers()) {
    leaf->RepublishTo(up);
  }
  net.simulator.Run();
  for (sim::HostId up_host : leaf->parent_ultrapeers()) {
    auto* up = net.gnutella->by_host(up_host);
    ASSERT_NE(up, nullptr);
    auto m = up->index().MatchText("zanzibar");
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0]->owner, leaf->host());
  }
}

TEST(FloodingTest, QueryFindsFileWithinHorizon) {
  // TTL 3 over a degree-4 mesh of 30 ultrapeers covers the whole graph,
  // so the query deterministically reaches the sharer's ultrapeers.
  auto cfg = SmallConfig();
  cfg.protocol.flood_ttl = 3;
  Net net(cfg);
  // Give a file to a leaf, query from another leaf attached elsewhere.
  auto* sharer = net.gnutella->leaf(3);
  sharer->SetSharedFiles({"gorgonzola sunset boulevard.mp3"});
  for (sim::HostId up : sharer->parent_ultrapeers()) sharer->RepublishTo(up);
  net.simulator.Run();

  std::vector<QueryResult> got;
  auto* searcher = net.gnutella->leaf(50);
  searcher->StartQuery("gorgonzola sunset",
                       [&](const std::vector<QueryResult>& rs) {
                         got.insert(got.end(), rs.begin(), rs.end());
                       });
  net.simulator.Run();
  // Within a 30-UP network, TTL-2 flooding from any UP usually reaches the
  // sharer's ultrapeers; at minimum the result, if any, must be correct.
  for (const auto& r : got) {
    EXPECT_EQ(r.filename, "gorgonzola sunset boulevard.mp3");
    EXPECT_EQ(r.owner, sharer->host());
  }
  EXPECT_LE(got.size(), 3u);  // at most one per parent UP, deduped by id
  EXPECT_GE(got.size(), 1u);
}

TEST(FloodingTest, ResultsAreDedupedByFileId) {
  // The same leaf file indexed at 3 parent UPs must reach the searcher as
  // one result per distinct fileID (replica), not once per UP answering.
  Net net(SmallConfig());
  auto* sharer = net.gnutella->leaf(7);
  sharer->SetSharedFiles({"xylophone quartet rare.mp3"});
  for (sim::HostId up : sharer->parent_ultrapeers()) sharer->RepublishTo(up);
  net.simulator.Run();
  std::set<uint64_t> ids;
  size_t records = 0;
  auto* searcher = net.gnutella->leaf(80);
  searcher->StartQuery("xylophone quartet",
                       [&](const std::vector<QueryResult>& rs) {
                         for (const auto& r : rs) {
                           ids.insert(r.file_id);
                           ++records;
                         }
                       });
  net.simulator.Run();
  EXPECT_EQ(ids.size(), records);  // no duplicates delivered
  EXPECT_LE(ids.size(), 1u);
}

TEST(FloodingTest, DuplicateQueriesSuppressed) {
  Net net(SmallConfig());
  net.gnutella->metrics() = GnutellaMetrics{};
  auto* up = net.gnutella->ultrapeer(0);
  up->StartQuery("nonexistent terms here", [](const auto&) {});
  net.simulator.Run();
  // With degree ~4 and TTL 2 over 30 UPs there must be redundant paths.
  EXPECT_GT(net.gnutella->metrics().duplicate_queries, 0u);
  // And no query loops forever: message count is bounded well below
  // edges * TTL explosion.
  EXPECT_LT(net.gnutella->metrics().query_messages, 1000u);
}

TEST(FloodingTest, TtlBoundsPropagation) {
  auto config = SmallConfig();
  config.protocol.flood_ttl = 1;
  Net net(config);
  net.gnutella->metrics() = GnutellaMetrics{};
  auto* up = net.gnutella->ultrapeer(0);
  size_t degree = up->ultrapeer_neighbors().size();
  up->StartQuery("whatever terms", [](const auto&) {});
  net.simulator.Run();
  // TTL 1: exactly one message per neighbor, no forwarding.
  EXPECT_EQ(net.gnutella->metrics().query_messages, degree);
}

TEST(FloodingTest, UltrapeerAnswersForItsOwnFiles) {
  Net net(SmallConfig());
  auto* up = net.gnutella->ultrapeer(5);
  up->SetSharedFiles({"ultrapeer owned treasure.mp3"});
  std::vector<QueryResult> got;
  // Query from a neighboring ultrapeer.
  auto* other = net.gnutella->ultrapeer(6);
  other->StartQuery("treasure ultrapeer",
                    [&](const std::vector<QueryResult>& rs) {
                      got.insert(got.end(), rs.begin(), rs.end());
                    });
  net.simulator.Run();
  ASSERT_GE(got.size(), 1u);
  EXPECT_EQ(got[0].owner, up->host());
}

TEST(FloodingTest, BrowseHostReturnsSharedFiles) {
  Net net(SmallConfig());
  auto* leaf = net.gnutella->leaf(1);
  leaf->SetSharedFiles({"file one alpha.mp3", "file two beta.mp3"});
  std::vector<SharedFile> browsed;
  net.gnutella->ultrapeer(0)->BrowseHost(
      leaf->host(), [&](Status s, std::vector<SharedFile> files) {
        ASSERT_TRUE(s.ok());
        browsed = std::move(files);
      });
  net.simulator.Run();
  EXPECT_EQ(browsed.size(), 2u);
}

TEST(FloodingTest, BrowseHostToDeadHostFails) {
  Net net(SmallConfig());
  auto* leaf = net.gnutella->leaf(1);
  net.network->SetHostUp(leaf->host(), false);
  bool failed = false;
  net.gnutella->ultrapeer(0)->BrowseHost(
      leaf->host(), [&](Status s, std::vector<SharedFile>) {
        failed = s.IsUnavailable();
      });
  net.simulator.Run();
  EXPECT_TRUE(failed);
}

TEST(FloodingTest, MetricsCountQueriesAndResults) {
  Net net(SmallConfig());
  auto* sharer = net.gnutella->ultrapeer(2);
  sharer->SetSharedFiles({"countable result record.mp3"});
  net.gnutella->metrics() = GnutellaMetrics{};
  net.gnutella->ultrapeer(3)->StartQuery("countable record",
                                         [](const auto&) {});
  net.simulator.Run();
  EXPECT_EQ(net.gnutella->metrics().queries_started, 1u);
  EXPECT_GT(net.gnutella->metrics().query_messages, 0u);
  EXPECT_GE(net.gnutella->metrics().results_delivered, 1u);
}

}  // namespace
}  // namespace pierstack::gnutella
