// Executor seam backends: SerialExecutor's canonical (time, origin,
// origin_seq) ordering, ShardedExecutor's barrier-epoch equivalence to it,
// and MakeEnvExecutor's env-driven backend selection.
#include "sim/executor.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/shard.h"

namespace pierstack::sim {
namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

TEST(SerialExecutorTest, DriverScheduledEqualTimeRunsFifo) {
  SerialExecutor ex;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    ex.ScheduleAt(static_cast<HostId>(3 - i), 10 * kMillisecond,
                  [&order, i] { order.push_back(i); });
  }
  ex.Run();
  // All four share the driver origin, so the per-origin seq (= schedule
  // order) breaks the tie — not the owner host id.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ex.now(), 10 * kMillisecond);
  EXPECT_EQ(ex.events_executed(), 4u);
}

TEST(SerialExecutorTest, EqualTimeChildrenOrderByOrigin) {
  SerialExecutor ex;
  std::vector<HostId> order;
  // Host 2's handler runs before host 1's (driver FIFO at t=10ms), but
  // their equal-time children on host 0 must order by *origin*: 1 < 2.
  for (HostId h : {HostId{2}, HostId{1}}) {
    ex.ScheduleAt(h, 10 * kMillisecond, [&ex, &order, h] {
      ex.ScheduleAfter(0, 10 * kMillisecond, [&order, h] {
        order.push_back(h);
      });
    });
  }
  ex.Run();
  EXPECT_EQ(order, (std::vector<HostId>{1, 2}));
}

TEST(SerialExecutorTest, DriverOriginSortsAfterHostsAtEqualTime) {
  SerialExecutor ex;
  std::vector<std::string> order;
  // Driver-origin event at 10ms, scheduled first.
  ex.ScheduleAt(kDriverHost, 10 * kMillisecond,
                [&order] { order.push_back("driver"); });
  // Host 3 at 5ms schedules a child for the same 10ms instant.
  ex.ScheduleAt(3, 5 * kMillisecond, [&ex, &order] {
    ex.ScheduleAfter(3, 5 * kMillisecond,
                     [&order] { order.push_back("host"); });
  });
  ex.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"host", "driver"}));
}

TEST(SerialExecutorTest, CancelIsOneShotAndSkipsExecution) {
  SerialExecutor ex;
  bool ran = false;
  EventId id = ex.ScheduleAt(1, kMillisecond, [&ran] { ran = true; });
  EXPECT_EQ(ex.pending(), 1u);
  EXPECT_TRUE(ex.Cancel(id));
  EXPECT_FALSE(ex.Cancel(id));
  EXPECT_EQ(ex.pending(), 0u);
  EXPECT_EQ(ex.Run(), 0u);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(ex.Cancel(kInvalidEventId));
}

TEST(SerialExecutorTest, RunUntilExecutesDueAndSettlesClock) {
  SerialExecutor ex;
  int ran = 0;
  ex.ScheduleAt(0, 10 * kMillisecond, [&ran] { ++ran; });
  ex.ScheduleAt(0, 100 * kMillisecond, [&ran] { ++ran; });
  EXPECT_EQ(ex.RunUntil(50 * kMillisecond), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(ex.now(), 50 * kMillisecond);
  EXPECT_EQ(ex.pending(), 1u);
  ex.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(ex.now(), 100 * kMillisecond);
}

// A deterministic multi-host token workload: every host's digest folds in
// the times of its fires, and hops carry tokens across hosts (and thus
// shards) with delays >= the lookahead. Any backend honoring the canonical
// per-host event order must produce identical digests, fire counts, and
// mid-run driver snapshots.
struct TokenWorkload {
  static constexpr SimTime kLookahead = kMillisecond;
  static constexpr size_t kHosts = 12;
  static constexpr SimTime kEnd = 200 * kMillisecond;

  explicit TokenWorkload(Executor* e) : ex(e) {}

  Executor* ex;
  std::array<uint64_t, kHosts> digest{};
  std::array<uint64_t, kHosts> fires{};
  std::vector<std::pair<SimTime, uint64_t>> snapshots;

  void Fire(HostId h) {
    SimTime t = ex->now();
    digest[h] = Mix64(digest[h] ^ (t * 1315423911ull + h));
    ++fires[h];
    if (t >= kEnd) return;
    HostId next = static_cast<HostId>(Mix64(digest[h]) % kHosts);
    SimTime delay = kLookahead * (1 + Mix64(digest[h] ^ t) % 3);
    ex->ScheduleAfter(next, delay, [this, next] { Fire(next); });
  }

  void Run() {
    for (HostId h = 0; h < kHosts; ++h) {
      // Deliberately off the lookahead grid.
      ex->ScheduleAt(h, kLookahead + 137 * h, [this, h] { Fire(h); });
    }
    for (int i = 1; i <= 3; ++i) {
      ex->ScheduleAt(kDriverHost, i * 50 * kMillisecond, [this] {
        uint64_t acc = 0;
        for (size_t h = 0; h < kHosts; ++h) acc = Mix64(acc ^ digest[h]);
        snapshots.emplace_back(ex->now(), acc);
      });
    }
    ex->Run();
  }
};

TEST(ShardedExecutorTest, TokenWorkloadMatchesSerialBackend) {
  SerialExecutor serial;
  TokenWorkload reference(&serial);
  reference.Run();
  ASSERT_GT(serial.events_executed(), 100u);  // not vacuous

  for (uint32_t shards : {2u, 4u}) {
    ShardedExecutor ex({shards, TokenWorkload::kLookahead});
    TokenWorkload w(&ex);
    w.Run();
    EXPECT_EQ(w.digest, reference.digest) << shards << " shards";
    EXPECT_EQ(w.fires, reference.fires) << shards << " shards";
    EXPECT_EQ(w.snapshots, reference.snapshots) << shards << " shards";
    EXPECT_EQ(ex.events_executed(), serial.events_executed());
    EXPECT_EQ(ex.now(), serial.now());
  }
}

TEST(ShardedExecutorTest, EqualTimeChildrenOrderByOriginAcrossShards) {
  auto run = [](Executor& ex) {
    auto order = std::make_shared<std::vector<HostId>>();
    // Hosts 2 (shard 0) and 1 (shard 1) fire concurrently at 10ms; both
    // schedule a child on host 0 (shard 0) for the same later instant —
    // host 1's travels through the cross-shard mailbox, host 2's is a
    // local push. Canonical order: origin 1 before origin 2.
    for (HostId h : {HostId{2}, HostId{1}}) {
      ex.ScheduleAt(h, 10 * kMillisecond, [&ex, order, h] {
        ex.ScheduleAfter(0, 10 * kMillisecond, [order, h] {
          order->push_back(h);
        });
      });
    }
    ex.Run();
    return *order;
  };
  SerialExecutor serial;
  std::vector<HostId> want = run(serial);
  ASSERT_EQ(want, (std::vector<HostId>{1, 2}));
  ShardedExecutor sharded({2, kMillisecond});
  EXPECT_EQ(run(sharded), want);
}

TEST(ShardedExecutorTest, DriverContextCancelReachesAnyShard) {
  ShardedExecutor ex({2, kMillisecond});
  bool ran = false;
  EventId a = ex.ScheduleAt(3, 5 * kMillisecond, [&ran] { ran = true; });
  EventId b = ex.ScheduleAt(kDriverHost, 5 * kMillisecond,
                            [&ran] { ran = true; });
  EXPECT_EQ(ex.pending(), 2u);
  EXPECT_TRUE(ex.Cancel(a));
  EXPECT_TRUE(ex.Cancel(b));
  EXPECT_FALSE(ex.Cancel(a));
  EXPECT_EQ(ex.pending(), 0u);
  EXPECT_EQ(ex.Run(), 0u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(ex.events_executed(), 0u);
}

TEST(ShardedExecutorTest, OwnerShardCancelsItsOwnTimer) {
  ShardedExecutor ex({2, kMillisecond});
  bool fired = false;
  // The timeout pattern: a host arms a timer for itself, then cancels it
  // from a later event of its own — all on the owning shard.
  auto id = std::make_shared<EventId>(kInvalidEventId);
  ex.ScheduleAt(1, kMillisecond, [&ex, id, &fired] {
    *id = ex.ScheduleAfter(1, 10 * kMillisecond, [&fired] { fired = true; });
  });
  ex.ScheduleAt(1, 2 * kMillisecond,
                [&ex, id] { EXPECT_TRUE(ex.Cancel(*id)); });
  ex.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(ex.events_executed(), 2u);
}

TEST(ShardedExecutorTest, RunUntilAdvancesEveryClock) {
  ShardedExecutor ex({2, kMillisecond});
  int ran = 0;
  ex.ScheduleAt(0, kMillisecond, [&ran] { ++ran; });
  ex.ScheduleAt(1, 100 * kMillisecond, [&ran] { ++ran; });
  EXPECT_EQ(ex.RunUntil(50 * kMillisecond), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(ex.now(), 50 * kMillisecond);
  EXPECT_EQ(ex.pending(), 1u);
  ex.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(ex.now(), 100 * kMillisecond);
}

TEST(ShardedExecutorTest, ReportsShardCountAndDriverSlab) {
  ShardedExecutor ex({3, kMillisecond});
  EXPECT_EQ(ex.shard_count(), 3u);
  // Driver context gets the extra slab past the workers'.
  EXPECT_EQ(ex.CurrentSlab(), 3u);
  for (HostId h = 0; h < 6; ++h) EXPECT_LT(ex.ShardOf(h), 3u);
}

TEST(MakeEnvExecutorTest, SelectsBackendFromEnv) {
  const char* saved = std::getenv("PIERSTACK_SHARDS");
  std::string saved_value = saved ? saved : "";

  unsetenv("PIERSTACK_SHARDS");
  EXPECT_EQ(MakeEnvExecutor(kMillisecond)->shard_count(), 1u);
  setenv("PIERSTACK_SHARDS", "4", 1);
  EXPECT_EQ(MakeEnvExecutor(kMillisecond)->shard_count(), 4u);
  // No positive lookahead, no window bound: serial fallback.
  EXPECT_EQ(MakeEnvExecutor(0)->shard_count(), 1u);
  setenv("PIERSTACK_SHARDS", "1", 1);
  EXPECT_EQ(MakeEnvExecutor(kMillisecond)->shard_count(), 1u);

  if (saved) {
    setenv("PIERSTACK_SHARDS", saved_value.c_str(), 1);
  } else {
    unsetenv("PIERSTACK_SHARDS");
  }
}

}  // namespace
}  // namespace pierstack::sim
