#include "sim/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace pierstack::sim {
namespace {

struct Payload {
  std::string text;
};

/// Test host that records deliveries.
class Recorder : public Host {
 public:
  void HandleMessage(HostId from, const Message& msg) override {
    received.push_back({from, msg.as<Payload>().text});
  }
  std::vector<std::pair<HostId, std::string>> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(NetworkTest, DeliversWithConstantLatency) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "test", 100, Payload{"hi"}));
  EXPECT_TRUE(b.received.empty());
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ha);
  EXPECT_EQ(b.received[0].second, "hi");
  EXPECT_EQ(sim.now(), 10 * kMillisecond);
}

TEST_F(NetworkTest, SelfSendIsImmediateButAsync) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  Recorder a;
  HostId ha = net.AddHost(&a);
  net.Send(ha, ha, Message::Make<Payload>(1, "test", 10, Payload{"self"}));
  sim.Run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(sim.now(), 0u);
}

TEST_F(NetworkTest, MetricsCountMessagesAndBytes) {
  Network net(&sim, nullptr, 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "query", 100, Payload{"q"}));
  net.Send(ha, hb, Message::Make<Payload>(1, "query", 50, Payload{"q"}));
  net.Send(hb, ha, Message::Make<Payload>(1, "reply", 25, Payload{"r"}));
  sim.Run();
  EXPECT_EQ(net.metrics().total.messages, 3u);
  EXPECT_EQ(net.metrics().total.bytes, 175u);
  EXPECT_EQ(net.metrics().by_tag.at("query").messages, 2u);
  EXPECT_EQ(net.metrics().by_tag.at("query").bytes, 150u);
  EXPECT_EQ(net.metrics().by_tag.at("reply").bytes, 25u);
}

TEST_F(NetworkTest, MetricsReset) {
  Network net(&sim, nullptr, 1);
  Recorder a;
  HostId ha = net.AddHost(&a);
  net.Send(ha, ha, Message::Make<Payload>(1, "x", 10, Payload{}));
  sim.Run();
  net.metrics().Reset();
  EXPECT_EQ(net.metrics().total.messages, 0u);
  EXPECT_TRUE(net.metrics().by_tag.empty());
}

TEST_F(NetworkTest, DownHostDropsMessages) {
  Network net(&sim, nullptr, 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.SetHostUp(hb, false);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 10, Payload{"drop"}));
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.metrics().dropped_messages, 1u);
  net.SetHostUp(hb, true);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 10, Payload{"ok"}));
  sim.Run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetworkTest, HostGoingDownMidFlightDropsDelivery) {
  Network net(&sim, std::make_unique<ConstantLatency>(5 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 10, Payload{"late"}));
  sim.ScheduleAt(1 * kMillisecond, [&] { net.SetHostUp(hb, false); });
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.metrics().dropped_messages, 1u);
}

TEST_F(NetworkTest, RemovedHostNeverReceives) {
  Network net(&sim, nullptr, 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.RemoveHost(hb);
  EXPECT_FALSE(net.IsHostUp(hb));
  net.SetHostUp(hb, true);  // cannot resurrect a removed host
  EXPECT_FALSE(net.IsHostUp(hb));
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 10, Payload{}));
  sim.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST_F(NetworkTest, UniformLatencyWithinBounds) {
  auto model = std::make_unique<UniformLatency>(10, 20);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    SimTime d = model->Latency(0, 1, 0, &rng);
    EXPECT_GE(d, 10u);
    EXPECT_LE(d, 20u);
  }
}

TEST_F(NetworkTest, CoordinateLatencyDeterministicPerPair) {
  CoordinateLatency::Options opts;
  opts.jitter_mean = 0;
  opts.per_kb = 0;
  CoordinateLatency model(opts, 7);
  Rng rng(1);
  SimTime d1 = model.Latency(0, 1, 0, &rng);
  SimTime d2 = model.Latency(0, 1, 0, &rng);
  EXPECT_EQ(d1, d2);
  EXPECT_GE(d1, opts.base);
  EXPECT_LE(d1, opts.base + opts.max_distance);
}

TEST_F(NetworkTest, CoordinateLatencyChargesBytes) {
  CoordinateLatency::Options opts;
  opts.jitter_mean = 0;
  opts.max_distance = 0;
  opts.per_kb = kMillisecond;
  CoordinateLatency model(opts, 7);
  Rng rng(1);
  SimTime small = model.Latency(0, 1, 100, &rng);
  SimTime big = model.Latency(0, 1, 10 * 1024, &rng);
  EXPECT_EQ(big - small, 10 * kMillisecond);
}

TEST_F(NetworkTest, DestinationLoadTracksInFlightAndSettles) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 100, Payload{"1"}));
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 50, Payload{"2"}));
  DestinationLoad mid = net.LoadOf(hb);
  EXPECT_EQ(mid.in_flight_messages, 2u);
  EXPECT_EQ(mid.in_flight_bytes, 150u);
  EXPECT_EQ(mid.peak_in_flight_bytes, 150u);
  EXPECT_EQ(mid.smoothed_latency, 0u);  // nothing delivered yet
  sim.Run();
  DestinationLoad after = net.LoadOf(hb);
  EXPECT_EQ(after.in_flight_messages, 0u);
  EXPECT_EQ(after.in_flight_bytes, 0u);
  EXPECT_EQ(after.peak_in_flight_bytes, 150u);  // watermark survives
  EXPECT_EQ(after.smoothed_latency, 10 * kMillisecond);
  net.ResetLoadWatermarks();
  EXPECT_EQ(net.LoadOf(hb).peak_in_flight_bytes, 0u);
  // The sender's own load is untouched by its sends.
  EXPECT_EQ(net.LoadOf(ha).in_flight_messages, 0u);
}

TEST_F(NetworkTest, InFlightSettlesEvenWhenHostDiesMidFlight) {
  Network net(&sim, std::make_unique<ConstantLatency>(5 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 64, Payload{"doomed"}));
  sim.ScheduleAt(1 * kMillisecond, [&] { net.SetHostUp(hb, false); });
  sim.Run();
  EXPECT_EQ(net.LoadOf(hb).in_flight_messages, 0u);
  EXPECT_EQ(net.LoadOf(hb).in_flight_bytes, 0u);
}

TEST_F(NetworkTest, SmoothedLatencyIsAnEwma) {
  // Processing delay shifts per-message delivery delay; the EWMA follows
  // with 1/8 gain.
  Network net(&sim, std::make_unique<ConstantLatency>(8 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 8 * kMillisecond);
  net.SetProcessingDelay(hb, 8 * kMillisecond);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  // (7*8ms + 16ms) / 8 = 9ms.
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 9 * kMillisecond);
}

TEST_F(NetworkTest, SmoothedLatencyDecaysWhileIdle) {
  // One historical burst must not bias adaptive policies forever: the
  // latency EWMA halves per configured half-life of idleness and reads as
  // "unmeasured" (0) once fully decayed.
  Network net(&sim, std::make_unique<ConstantLatency>(8 * kMillisecond), 1);
  net.set_load_decay_half_life(1 * kSecond);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 8 * kMillisecond);
  // Within the first half-life the signal is untouched.
  sim.RunFor(999 * kMillisecond);
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 8 * kMillisecond);
  // One full half-life past the last update: halved.
  sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 4 * kMillisecond);
  sim.RunFor(1 * kSecond);
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 2 * kMillisecond);
  // Long idle: fully decayed to the unmeasured baseline.
  sim.RunFor(60 * kSecond);
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 0u);
}

TEST_F(NetworkTest, PostIdleObservationReseedsDecayedEwma) {
  // The stored EWMA is decayed to now BEFORE folding in a new observation,
  // so a fresh delivery after a long idle reseeds the signal instead of
  // being averaged against stale history.
  Network net(&sim, std::make_unique<ConstantLatency>(8 * kMillisecond), 1);
  net.set_load_decay_half_life(1 * kSecond);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.SetProcessingDelay(hb, 72 * kMillisecond);  // a slow burst: 80ms
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 80 * kMillisecond);
  // The burst ends and the host recovers; a minute later one fast message
  // measures the true current latency.
  net.SetProcessingDelay(hb, 0);
  sim.RunFor(60 * kSecond);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 8 * kMillisecond);
}

TEST_F(NetworkTest, ZeroHalfLifeDisablesDecay) {
  Network net(&sim, std::make_unique<ConstantLatency>(8 * kMillisecond), 1);
  net.set_load_decay_half_life(0);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{}));
  sim.Run();
  sim.RunFor(10 * kMinute);
  // The sticky pre-decay contract, for deployments that want it.
  EXPECT_EQ(net.LoadOf(hb).smoothed_latency, 8 * kMillisecond);
}

TEST_F(NetworkTest, ProcessingDelayPostponesDelivery) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.SetProcessingDelay(hb, 30 * kMillisecond);
  net.Send(ha, hb, Message::Make<Payload>(1, "x", 1, Payload{"slow"}));
  sim.RunUntil(39 * kMillisecond);
  EXPECT_TRUE(b.received.empty());
  sim.Run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.now(), 40 * kMillisecond);
  // The slow host's inbound queue held the message the whole time.
  EXPECT_EQ(net.LoadOf(hb).peak_in_flight_bytes, 1u);
}

TEST_F(NetworkTest, MessagesOrderedPerLinkWithEqualLatency) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  for (int i = 0; i < 5; ++i) {
    net.Send(ha, hb,
             Message::Make<Payload>(1, "x", 1, Payload{std::to_string(i)}));
  }
  sim.Run();
  ASSERT_EQ(b.received.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)].second, std::to_string(i));
  }
}

}  // namespace
}  // namespace pierstack::sim
