#include "sim/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sim/network.h"

namespace pierstack::sim {
namespace {

struct Payload {
  std::string text;
};

class Recorder : public Host {
 public:
  void HandleMessage(HostId from, const Message& msg) override {
    received.push_back({from, msg.as<Payload>().text});
  }
  std::vector<std::pair<HostId, std::string>> received;
};

Message Msg(const std::string& text) {
  return Message::Make<Payload>(1, "test", 64, Payload{text});
}

class FaultTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(FaultTest, CertainLossDropsInFlightSilently) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  plan.set_message_loss(1.0);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);

  // The sender sees success (a lost packet, not a refused connection)...
  EXPECT_TRUE(net.Send(ha, hb, Msg("lost")));
  sim.Run();

  // ...but the receiver sees nothing, and the loss is counted as a drop
  // without touching the refused-send slice.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(plan.counters().loss_drops, 1u);
  EXPECT_EQ(net.metrics().dropped_messages, 1u);
  EXPECT_EQ(net.metrics().refused_sends, 0u);
}

TEST_F(FaultTest, ZeroLossDeliversEverything) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  for (int i = 0; i < 20; ++i) net.Send(ha, hb, Msg("ok"));
  sim.Run();
  EXPECT_EQ(b.received.size(), 20u);
  EXPECT_EQ(plan.counters().Total(), 0u);
}

TEST_F(FaultTest, SelfSendsAreNeverFaulted) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  plan.set_message_loss(1.0);
  plan.set_latency_spike(1.0, kSecond);
  net.set_fault_plan(&plan);
  Recorder a;
  HostId ha = net.AddHost(&a);
  net.Send(ha, ha, Msg("self"));
  sim.Run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(sim.now(), 0u);  // no spike applied either
  EXPECT_EQ(plan.counters().Total(), 0u);
}

TEST_F(FaultTest, PartitionDropsCrossGroupTrafficUntilHeal) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b, c;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  HostId hc = net.AddHost(&c);
  plan.AssignPartition(hc, 1);  // a, b stay in group 0
  EXPECT_TRUE(plan.partitioned());

  net.Send(ha, hb, Msg("same-side"));
  net.Send(ha, hc, Msg("cross"));
  net.Send(hc, ha, Msg("cross-back"));
  sim.Run();

  EXPECT_EQ(b.received.size(), 1u);  // same group flows
  EXPECT_TRUE(c.received.empty());   // both directions blocked
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(plan.counters().partition_drops, 2u);

  plan.Heal();
  EXPECT_FALSE(plan.partitioned());
  net.Send(ha, hc, Msg("after-heal"));
  sim.Run();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(FaultTest, LatencySpikeDelaysDelivery) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  FaultPlan plan(7);
  plan.set_latency_spike(1.0, 50 * kMillisecond);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.Send(ha, hb, Msg("slow"));
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(sim.now(), 60 * kMillisecond);  // model delay + spike
  EXPECT_EQ(plan.counters().latency_spikes, 1u);
}

TEST_F(FaultTest, FaultDecisionsAreDeterministicUnderSeed) {
  auto run = [this](uint64_t seed) {
    Simulator local;
    Network net(&local, std::make_unique<ConstantLatency>(kMillisecond), 1);
    FaultPlan plan(seed);
    plan.set_message_loss(0.3);
    plan.set_latency_spike(0.2, 5 * kMillisecond);
    net.set_fault_plan(&plan);
    Recorder a, b;
    HostId ha = net.AddHost(&a);
    HostId hb = net.AddHost(&b);
    for (int i = 0; i < 200; ++i) net.Send(ha, hb, Msg("x"));
    local.Run();
    return std::make_tuple(b.received.size(), plan.counters().loss_drops,
                           plan.counters().latency_spikes, local.now());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<1>(run(42)), 0u);  // the plan actually dropped some
}

TEST_F(FaultTest, FaultRandomnessDoesNotPerturbLatencyStream) {
  // Same network seed, jittery latency model: delivery times must be
  // identical with and without an (all-loss-disabled) plan attached,
  // because fault decisions draw from the plan's own Rng.
  auto deliveries = [](bool with_plan) {
    Simulator local;
    Network net(&local,
                std::make_unique<UniformLatency>(kMillisecond, 20 * kMillisecond),
                99);
    FaultPlan plan(1234);
    if (with_plan) net.set_fault_plan(&plan);
    Recorder a, b;
    HostId ha = net.AddHost(&a);
    HostId hb = net.AddHost(&b);
    std::vector<SimTime> times;
    for (int i = 0; i < 50; ++i) net.Send(ha, hb, Msg("x"));
    while (local.Step()) times.push_back(local.now());
    return times;
  };
  EXPECT_EQ(deliveries(false), deliveries(true));
}

TEST_F(FaultTest, FailSlowWindowDelaysOnlyInWindowSends) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  // b straggles for one second starting at t=100ms: +80ms per message.
  plan.AddFailSlow(hb, 100 * kMillisecond, kSecond, 80 * kMillisecond);

  std::vector<SimTime> arrivals;
  // Sent before the window opens: normal 10ms delivery.
  net.Send(ha, hb, Msg("early"));
  // Sent inside the window: slowed, even though it ARRIVES after the
  // window would close for sends (decision keys on send time only).
  sim.ScheduleAt(kSecond, [&] { net.Send(ha, hb, Msg("slowed")); });
  // Sent after the window: normal again.
  sim.ScheduleAt(2 * kSecond, [&] { net.Send(ha, hb, Msg("late")); });
  while (sim.Step()) {
    if (arrivals.size() < b.received.size()) arrivals.push_back(sim.now());
  }

  ASSERT_EQ(b.received.size(), 3u);
  EXPECT_EQ(arrivals[0], 10 * kMillisecond);
  EXPECT_EQ(arrivals[1], kSecond + 90 * kMillisecond);
  EXPECT_EQ(arrivals[2], 2 * kSecond + 10 * kMillisecond);
  EXPECT_EQ(plan.counters().slow_deliveries, 1u);

  CounterSet out;
  ExportNetworkCounters(net, &out);
  EXPECT_EQ(out.Value("net.fault_slow_deliveries"), 1u);
}

TEST_F(FaultTest, OverlappingFailSlowWindowsAreAdditive) {
  Network net(&sim, std::make_unique<ConstantLatency>(10 * kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  plan.AddFailSlow(hb, 0, kSecond, 30 * kMillisecond);
  plan.AddFailSlow(hb, 0, kSecond, 50 * kMillisecond);
  // Other hosts are untouched by b's windows.
  net.Send(ha, hb, Msg("doubly-slowed"));
  net.Send(hb, ha, Msg("reverse-unslowed"));
  sim.Run();
  ASSERT_EQ(b.received.size(), 1u);
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(sim.now(), 90 * kMillisecond);  // 10ms wire + 30 + 50
  // One slowed delivery counted per message, not per window.
  EXPECT_EQ(plan.counters().slow_deliveries, 1u);
}

TEST_F(FaultTest, FlashCrowdJoinSpacesEvenlyInsideWindow) {
  auto events = FaultPlan::FlashCrowdJoin(10 * kSecond, 6, kMinute);
  ASSERT_EQ(events.size(), 6u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, ChurnEvent::kJoin);
    EXPECT_GE(events[i].time, 10 * kSecond);
    EXPECT_LT(events[i].time, 10 * kSecond + kMinute);
    if (i > 0) {
      EXPECT_GT(events[i].time, events[i - 1].time);
    }
  }
  // Even spacing: constant gap between consecutive arrivals.
  SimTime gap = events[1].time - events[0].time;
  for (size_t i = 2; i < events.size(); ++i) {
    EXPECT_EQ(events[i].time - events[i - 1].time, gap);
  }
}

TEST_F(FaultTest, MassLeaveIsSimultaneous) {
  auto events = FaultPlan::MassLeave(5 * kSecond, 4);
  ASSERT_EQ(events.size(), 4u);
  for (const auto& e : events) {
    EXPECT_EQ(e.kind, ChurnEvent::kCrash);
    EXPECT_EQ(e.time, 5 * kSecond);
  }
}

TEST_F(FaultTest, SustainedChurnAlternatesAndStaysInRange) {
  auto events =
      FaultPlan::SustainedChurn(kSecond, 10 * kMinute, 6.0, 77);
  ASSERT_FALSE(events.empty());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, kSecond);
    EXPECT_LT(events[i].time, kSecond + 10 * kMinute);
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    // Population-preserving: joins and crashes alternate, join first.
    EXPECT_EQ(events[i].kind,
              i % 2 == 0 ? ChurnEvent::kJoin : ChurnEvent::kCrash);
  }
  // ~6 events/min over 10 min; exponential gaps, so allow slack.
  EXPECT_GT(events.size(), 20u);
  EXPECT_LT(events.size(), 180u);

  // Same seed reproduces the schedule event-for-event.
  auto again = FaultPlan::SustainedChurn(kSecond, 10 * kMinute, 6.0, 77);
  ASSERT_EQ(again.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(again[i].time, events[i].time);
    EXPECT_EQ(again[i].kind, events[i].kind);
  }
}

TEST_F(FaultTest, ExportNetworkCountersSurfacesFaultCounters) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);

  // Without a plan: traffic counters only, no fault names.
  net.Send(ha, hb, Msg("plain"));
  sim.Run();
  CounterSet bare;
  ExportNetworkCounters(net, &bare);
  EXPECT_EQ(bare.Value("net.messages"), 1u);
  EXPECT_FALSE(bare.Has("net.fault_injected_total"));

  FaultPlan plan(7);
  plan.set_message_loss(1.0);
  net.set_fault_plan(&plan);
  net.Send(ha, hb, Msg("dropped"));
  plan.CountChurn(ChurnEvent::kCrash);
  plan.CountChurn(ChurnEvent::kJoin);
  sim.Run();

  CounterSet out;
  ExportNetworkCounters(net, &out);
  EXPECT_EQ(out.Value("net.fault_loss_drops"), 1u);
  EXPECT_EQ(out.Value("net.fault_churn_crashes"), 1u);
  EXPECT_EQ(out.Value("net.fault_churn_joins"), 1u);
  EXPECT_EQ(out.Value("net.fault_injected_total"), 3u);
  EXPECT_EQ(out.Value("net.dropped_messages"), 1u);
  EXPECT_EQ(out.Value("net.refused_sends"), 0u);
}

TEST_F(FaultTest, PartitionWindowDropsOnlyInsideItsSchedule) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  FaultPlan::PartitionWindow w;
  w.groups[hb] = 1;  // a stays in group 0
  w.start = 100 * kMillisecond;
  w.heal_time = kSecond;
  plan.AddPartitionWindow(w);

  // Before the window opens, inside it, and at/after the heal time —
  // keyed purely on SEND time, so the schedule is backend-deterministic.
  net.Send(ha, hb, Msg("before"));
  sim.ScheduleAt(500 * kMillisecond, [&] { net.Send(ha, hb, Msg("split")); });
  sim.ScheduleAt(kSecond, [&] { net.Send(ha, hb, Msg("healed")); });
  sim.Run();

  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].second, "before");
  EXPECT_EQ(b.received[1].second, "healed");
  EXPECT_EQ(plan.counters().partition_drops, 1u);
  // Scheduled windows never flip the static partitioned() flag.
  EXPECT_FALSE(plan.partitioned());
}

TEST_F(FaultTest, PerGroupHealReleasesOnlyThatGroup) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b, c;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  HostId hc = net.AddHost(&c);
  plan.AssignPartition(hb, 1);
  plan.AssignPartition(hc, 2);

  plan.Heal(1);  // b rejoins the majority; c stays cut off
  EXPECT_TRUE(plan.partitioned());
  net.Send(ha, hb, Msg("rejoined"));
  net.Send(ha, hc, Msg("still-cut"));
  sim.Run();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());

  plan.Heal();  // heal-all still works
  EXPECT_FALSE(plan.partitioned());
  net.Send(ha, hc, Msg("all-healed"));
  sim.Run();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(FaultTest, OneWayPartitionWindowIsAsymmetric) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  FaultPlan::PartitionWindow w;
  w.groups[hb] = 1;
  w.start = 0;
  w.heal_time = kSecond;
  w.one_way.push_back({0, 1});  // group 0 → group 1 drops; reverse flows
  plan.AddPartitionWindow(w);

  net.Send(ha, hb, Msg("swallowed"));
  net.Send(hb, ha, Msg("heard"));
  sim.Run();
  EXPECT_TRUE(b.received.empty());
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(plan.counters().partition_drops, 1u);
}

TEST_F(FaultTest, CrashRestartBuilderPairsEventsAndCountsRestarts) {
  auto events = FaultPlan::CrashRestart(2 * kSecond, 10 * kSecond, 3);
  ASSERT_EQ(events.size(), 6u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].kind, ChurnEvent::kCrash);
    EXPECT_EQ(events[i].time, 2 * kSecond);
  }
  for (size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(events[i].kind, ChurnEvent::kRestart);
    EXPECT_EQ(events[i].time, 10 * kSecond);
  }

  FaultPlan plan(7);
  for (const auto& e : events) plan.CountChurn(e.kind);
  EXPECT_EQ(plan.counters().churn_crashes, 3u);
  EXPECT_EQ(plan.counters().churn_restarts, 3u);
  EXPECT_EQ(plan.counters().Total(), 6u);

  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  net.set_fault_plan(&plan);
  CounterSet out;
  ExportNetworkCounters(net, &out);
  EXPECT_EQ(out.Value("net.fault_churn_restarts"), 3u);
}

TEST_F(FaultTest, RefusedSendIsAnAdditiveSliceOfDrops) {
  Network net(&sim, std::make_unique<ConstantLatency>(kMillisecond), 1);
  FaultPlan plan(7);
  net.set_fault_plan(&plan);
  Recorder a, b;
  HostId ha = net.AddHost(&a);
  HostId hb = net.AddHost(&b);
  net.SetHostUp(hb, false);
  EXPECT_FALSE(net.Send(ha, hb, Msg("refused")));
  EXPECT_EQ(net.metrics().dropped_messages, 1u);
  EXPECT_EQ(net.metrics().refused_sends, 1u);
  // A refused send is a transport outcome, not an injected fault.
  EXPECT_EQ(plan.counters().Total(), 0u);
}

}  // namespace
}  // namespace pierstack::sim
