#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace pierstack::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(SimulatorTest, FifoTiebreakAtEqualTime) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, FifoTiebreakSurvivesInterleavedCancels) {
  // The tie-break rides a monotonic per-schedule sequence number, not the
  // cancellable id — cancelling events between schedules must not perturb
  // the FIFO order of the survivors.
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  EventId a = s.ScheduleAt(5, [&] { order.push_back(-1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.Cancel(a);
  EventId b = s.ScheduleAt(5, [&] { order.push_back(-2); });
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.Cancel(b);
  s.ScheduleAt(5, [&] { order.push_back(4); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimulatorTest, NestedEqualTimeSchedulesRunInScheduleOrder) {
  // Legacy global-FIFO semantics: an equal-time event scheduled from
  // inside a handler runs after everything scheduled before it —
  // distinct from SerialExecutor's canonical per-origin ordering.
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] {
    order.push_back(1);
    s.ScheduleAt(5, [&] { order.push_back(3); });
  });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  SimTime seen = 0;
  s.ScheduleAt(100, [&] {
    s.ScheduleAfter(50, [&] { seen = s.now(); });
  });
  s.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) s.ScheduleAfter(1, chain);
  };
  s.ScheduleAt(0, chain);
  s.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), 9u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  EventId id = s.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, CancelTwiceFails) {
  Simulator s;
  EventId id = s.ScheduleAt(10, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SimulatorTest, CancelAfterRunFails) {
  Simulator s;
  EventId id = s.ScheduleAt(10, [] {});
  s.Run();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(SimulatorTest, CancelInvalidIdFails) {
  Simulator s;
  EXPECT_FALSE(s.Cancel(kInvalidEventId));
  EXPECT_FALSE(s.Cancel(9999));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  std::vector<SimTime> fired;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    s.ScheduleAt(t, [&, t] { fired.push_back(t); });
  }
  s.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(s.now(), 25u);
  s.RunUntil(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(SimulatorTest, RunUntilIncludesBoundaryEvents) {
  Simulator s;
  bool ran = false;
  s.ScheduleAt(25, [&] { ran = true; });
  s.RunUntil(25);
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, RunForIsRelative) {
  Simulator s;
  s.ScheduleAt(5, [] {});
  s.RunUntil(10);
  int count = 0;
  s.ScheduleAfter(5, [&] { ++count; });
  s.ScheduleAfter(15, [&] { ++count; });
  s.RunFor(10);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 20u);
}

TEST(SimulatorTest, RunWithLimitStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.ScheduleAt(i, [&] { ++count; });
  EXPECT_EQ(s.Run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(SimulatorTest, ExecutedCounterAndPending) {
  Simulator s;
  s.ScheduleAt(1, [] {});
  s.ScheduleAt(2, [] {});
  EventId id = s.ScheduleAt(3, [] {});
  s.Cancel(id);
  EXPECT_EQ(s.pending(), 2u);
  s.Run();
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(SimulatorTest, CancelledEventDoesNotAdvanceClock) {
  Simulator s;
  EventId id = s.ScheduleAt(50, [] {});
  s.ScheduleAt(10, [] {});
  s.Cancel(id);
  s.Run();
  EXPECT_EQ(s.now(), 10u);
}

}  // namespace
}  // namespace pierstack::sim
