#include "workload/trace.h"

#include <gtest/gtest.h>

#include <set>

#include "common/tokenizer.h"

namespace pierstack::workload {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig c;
  c.num_nodes = 2000;
  c.num_distinct_files = 3000;
  c.vocab_size = 2500;
  c.num_queries = 300;
  c.seed = 99;
  return c;
}

TEST(VocabularyTest, GeneratesDistinctNonStopTerms) {
  Vocabulary v(500, 0.9, 1);
  EXPECT_EQ(v.size(), 500u);
  std::set<std::string> seen;
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_FALSE(DefaultStopWords().count(v.term(i)));
    EXPECT_GE(v.term(i).size(), 3u);
    seen.insert(v.term(i));
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(VocabularyTest, SamplingFollowsZipf) {
  Vocabulary v(1000, 1.0, 2);
  Rng rng(3);
  size_t rank0 = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) rank0 += (v.SampleRank(&rng) == 0);
  EXPECT_NEAR(rank0 / static_cast<double>(kDraws), v.Pmf(0), 0.01);
}

TEST(TraceTest, DeterministicForSeed) {
  auto a = GenerateTrace(SmallConfig());
  auto b = GenerateTrace(SmallConfig());
  ASSERT_EQ(a.files.size(), b.files.size());
  for (size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].filename, b.files[i].filename);
    EXPECT_EQ(a.files[i].replicas, b.files[i].replicas);
  }
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].text, b.queries[i].text);
  }
}

TEST(TraceTest, DifferentSeedsDiffer) {
  auto a = GenerateTrace(SmallConfig());
  auto cfg = SmallConfig();
  cfg.seed = 100;
  auto b = GenerateTrace(cfg);
  size_t same = 0;
  for (size_t i = 0; i < std::min(a.files.size(), b.files.size()); ++i) {
    same += a.files[i].filename == b.files[i].filename;
  }
  EXPECT_LT(same, a.files.size() / 10);
}

TEST(TraceTest, PlacementMatchesReplicaCounts) {
  auto t = GenerateTrace(SmallConfig());
  std::vector<uint32_t> counts(t.files.size(), 0);
  for (const auto& nf : t.node_files) {
    std::set<uint32_t> per_node(nf.begin(), nf.end());
    EXPECT_EQ(per_node.size(), nf.size());  // no duplicate copy on a node
    for (uint32_t f : nf) ++counts[f];
  }
  for (size_t i = 0; i < t.files.size(); ++i) {
    EXPECT_EQ(counts[i], t.files[i].replicas);
  }
  uint64_t copies = 0;
  for (const auto& f : t.files) copies += f.replicas;
  EXPECT_EQ(copies, t.total_copies);
}

TEST(TraceTest, FilenamesAreDistinctAndTokenizable) {
  auto t = GenerateTrace(SmallConfig());
  std::set<std::string> names;
  for (const auto& f : t.files) {
    names.insert(f.filename);
    EXPECT_GE(f.keywords.size(), 3u);
    EXPECT_LE(f.keywords.size(), 7u);
    EXPECT_EQ(f.keywords, ExtractUniqueKeywords(f.filename));
  }
  EXPECT_EQ(names.size(), t.files.size());
}

TEST(TraceTest, GroundTruthMatchesBruteForce) {
  auto cfg = SmallConfig();
  cfg.num_distinct_files = 500;
  cfg.num_queries = 60;
  auto t = GenerateTrace(cfg);
  for (const auto& q : t.queries) {
    std::set<uint32_t> expected;
    for (const auto& f : t.files) {
      bool all = true;
      for (const auto& term : q.terms) {
        if (std::find(f.keywords.begin(), f.keywords.end(), term) ==
            f.keywords.end()) {
          all = false;
          break;
        }
      }
      if (all) expected.insert(f.id);
    }
    std::set<uint32_t> got(q.matches.begin(), q.matches.end());
    EXPECT_EQ(got, expected) << q.text;
  }
}

TEST(TraceTest, TotalResultsAggregatesReplicas) {
  auto t = GenerateTrace(SmallConfig());
  for (const auto& q : t.queries) {
    uint64_t sum = 0;
    for (uint32_t m : q.matches) sum += t.files[m].replicas;
    EXPECT_EQ(sum, q.total_results);
  }
}

TEST(TraceTest, CalibrationLongTailedReplication) {
  // The paper's Figure 10 anchor: at replica threshold 1 about 23% of all
  // copies are published. Allow a generous band for the synthetic trace.
  WorkloadConfig c;  // full-size defaults
  c.num_nodes = 10000;
  c.num_distinct_files = 15000;
  auto t = GenerateTrace(c);
  double frac1 = t.CopiesFractionAtOrBelow(1);
  EXPECT_GT(frac1, 0.12);
  EXPECT_LT(frac1, 0.35);
  // And the distribution is long-tailed: most distinct files are rare but
  // most copies belong to popular files.
  size_t singletons = 0;
  for (const auto& f : t.files) singletons += f.replicas == 1;
  EXPECT_GT(singletons, t.files.size() / 2);
  EXPECT_LT(frac1, 0.5);
}

TEST(TraceTest, QueryMixSpansResultSizes) {
  auto cfg = SmallConfig();
  cfg.num_queries = 500;
  auto t = GenerateTrace(cfg);
  size_t zero = 0, small = 0, large = 0;
  for (const auto& q : t.queries) {
    if (q.total_results == 0) ++zero;
    if (q.total_results > 0 && q.total_results <= 10) ++small;
    if (q.total_results > 100) ++large;
  }
  // Ground-truth zero-result rate should sit near the paper's union-30
  // floor (6%), and the mix must include both rare and popular queries.
  EXPECT_GT(zero, 0u);
  EXPECT_LT(static_cast<double>(zero) / t.queries.size(), 0.20);
  EXPECT_GT(small, t.queries.size() / 10);
  EXPECT_GT(large, t.queries.size() / 20);
}

TEST(TraceTest, QueriedUniverseSubsetOfFiles) {
  auto t = GenerateTrace(SmallConfig());
  auto universe = t.QueriedFileUniverse();
  EXPECT_FALSE(universe.empty());
  EXPECT_LE(universe.size(), t.files.size());
  for (size_t i = 1; i < universe.size(); ++i) {
    EXPECT_LT(universe[i - 1], universe[i]);  // sorted, unique
  }
}

TEST(TraceTest, FilenamesOfNodeRoundTrips) {
  auto t = GenerateTrace(SmallConfig());
  auto names = t.FilenamesOfNode(5);
  EXPECT_EQ(names.size(), t.node_files[5].size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], t.files[t.node_files[5][i]].filename);
  }
}

TEST(TraceIndexTest, MatchEmptyAndUnknownTerms) {
  auto t = GenerateTrace(SmallConfig());
  TraceIndex idx(t.files);
  EXPECT_TRUE(idx.Match({}).empty());
  EXPECT_TRUE(idx.Match({"zzzznotaterm"}).empty());
  EXPECT_EQ(idx.PostingSize("zzzznotaterm"), 0u);
}

}  // namespace
}  // namespace pierstack::workload
