// PIERSearch end to end: publish a corpus into the DHT, search with both
// strategies, and check recall/precision against ground truth.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/builder.h"
#include "piersearch/publisher.h"
#include "piersearch/schemas.h"
#include "piersearch/search_engine.h"

namespace pierstack::piersearch {
namespace {

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 23);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 321);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(
          std::make_unique<pier::PierNode>(dht->node(i), &metrics));
    }
  }
  pier::PierNode* pier(size_t i) { return piers[i].get(); }
};

struct Corpus {
  std::vector<std::string> filenames{
      "madonna like a prayer.mp3",
      "madonna vogue.mp3",
      "beatles let it be.mp3",
      "beatles yesterday once more.mp3",
      "pink floyd dark side moon.mp3",
      "rare basement tape zanzibar.mp3",
  };
};

PublishOptions BothIndexes() {
  PublishOptions o;
  o.inverted = true;
  o.inverted_cache = true;
  return o;
}

/// Publishes the corpus from node 0, one owner address per file.
void PublishCorpus(Cluster* c, const Corpus& corpus,
                   const PublishOptions& opts) {
  Publisher pub(c->pier(0));
  for (size_t i = 0; i < corpus.filenames.size(); ++i) {
    pub.PublishFile(corpus.filenames[i], 1000 + i,
                    static_cast<uint32_t>(100 + i), 6346, opts);
  }
  c->simulator.Run();
}

std::set<std::string> SearchNames(Cluster* c, size_t from,
                                  const std::string& query,
                                  SearchOptions opts) {
  SearchEngine engine(c->pier(from));
  std::set<std::string> names;
  bool done = false;
  engine.Search(query, opts, [&](Status s, std::vector<SearchHit> hits) {
    done = true;
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (const auto& h : hits) names.insert(h.filename);
  });
  c->simulator.Run();
  EXPECT_TRUE(done);
  return names;
}

TEST(PierSearchTest, SingleTermFindsAllMatches) {
  Cluster c(32);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  auto names = SearchNames(&c, 7, "madonna", SearchOptions{});
  EXPECT_EQ(names, (std::set<std::string>{"madonna like a prayer.mp3",
                                          "madonna vogue.mp3"}));
}

TEST(PierSearchTest, MultiTermDistributedJoin) {
  Cluster c(32);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  auto names = SearchNames(&c, 3, "madonna prayer", SearchOptions{});
  EXPECT_EQ(names, (std::set<std::string>{"madonna like a prayer.mp3"}));
}

TEST(PierSearchTest, InvertedCacheMatchesDistributedJoin) {
  Cluster c(32);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  for (const std::string& q :
       {std::string("beatles"), std::string("dark moon"),
        std::string("madonna vogue"), std::string("zanzibar")}) {
    SearchOptions dj;
    dj.strategy = SearchStrategy::kDistributedJoin;
    SearchOptions ic;
    ic.strategy = SearchStrategy::kInvertedCache;
    EXPECT_EQ(SearchNames(&c, 5, q, dj), SearchNames(&c, 9, q, ic)) << q;
  }
}

TEST(PierSearchTest, NoMatchesYieldsEmpty) {
  Cluster c(16);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  EXPECT_TRUE(SearchNames(&c, 2, "nonexistent gibberish", SearchOptions{})
                  .empty());
  // Terms exist but never together.
  EXPECT_TRUE(SearchNames(&c, 2, "madonna beatles", SearchOptions{}).empty());
}

TEST(PierSearchTest, StopWordOnlyQueryFails) {
  Cluster c(8);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  SearchEngine engine(c.pier(1));
  Status status = Status::OK();
  engine.Search("the mp3", SearchOptions{},
                [&](Status s, auto) { status = s; });
  c.simulator.Run();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(PierSearchTest, ResultsCarryItemFields) {
  Cluster c(16);
  PublishCorpus(&c, Corpus{}, BothIndexes());
  SearchEngine engine(c.pier(4));
  std::vector<SearchHit> hits;
  engine.Search("zanzibar", SearchOptions{}, [&](Status s, auto h) {
    ASSERT_TRUE(s.ok());
    hits = std::move(h);
  });
  c.simulator.Run();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].filename, "rare basement tape zanzibar.mp3");
  EXPECT_EQ(hits[0].size_bytes, 1005u);
  EXPECT_EQ(hits[0].address, 105u);
  EXPECT_EQ(hits[0].port, 6346);
}

TEST(PierSearchTest, PerfectRecallOverPublishedCorpus) {
  // The paper's claim: "PIERSearch provides perfect recall in the absence
  // of network failures". Publish 100 files, query each by its rarest
  // pair of keywords, and expect every one found.
  Cluster c(48);
  Publisher pub(c.pier(0));
  std::vector<std::string> names;
  for (int i = 0; i < 100; ++i) {
    std::string name = "artist" + std::to_string(i) + " title" +
                       std::to_string(i) + " album" + std::to_string(i % 7) +
                       ".mp3";
    names.push_back(name);
    pub.PublishFile(name, 1000, static_cast<uint32_t>(i), 6346,
                    BothIndexes());
  }
  c.simulator.Run();
  size_t found = 0;
  for (int i = 0; i < 100; ++i) {
    std::string q = "artist" + std::to_string(i) + " title" +
                    std::to_string(i);
    auto got = SearchNames(&c, static_cast<size_t>(i % 48), q,
                           SearchOptions{});
    found += got.count(names[static_cast<size_t>(i)]);
    EXPECT_EQ(got.size(), 1u) << q;
  }
  EXPECT_EQ(found, 100u);
}

TEST(PierSearchTest, OrderByPostingSizeShipsFewerEntries) {
  // §5 / SHJ-order ablation: with one huge and one tiny posting list, the
  // optimizer must ship the tiny list, not the huge one.
  Cluster c(32);
  Publisher pub(c.pier(0));
  PublishOptions opts;  // inverted only
  for (int i = 0; i < 200; ++i) {
    pub.PublishFile("popular common track" + std::to_string(i) + ".mp3",
                    1000, static_cast<uint32_t>(i), 6346, opts);
  }
  pub.PublishFile("popular unique gemstone.mp3", 999, 7, 6346, opts);
  c.simulator.Run();

  auto run = [&](bool ordered) {
    c.metrics = pier::PierMetrics{};
    SearchOptions so;
    so.order_by_posting_size = ordered;
    so.fetch_items = false;
    // "gemstone popular": gemstone list has 1 entry, popular has 201.
    SearchEngine engine(c.pier(3));
    bool done = false;
    engine.Search("popular gemstone", so, [&](Status s, auto hits) {
      done = true;
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(hits.size(), 1u);
    });
    c.simulator.Run();
    EXPECT_TRUE(done);
    return c.metrics.posting_entries_shipped;
  };
  uint64_t unordered = run(false);  // ships "popular"'s 201 entries
  uint64_t ordered = run(true);     // ships "gemstone"'s 1 entry
  EXPECT_GT(unordered, 100u);
  EXPECT_LE(ordered, 2u);
}

TEST(PierSearchTest, MaxResultsCaps) {
  Cluster c(16);
  Publisher pub(c.pier(0));
  PublishOptions opts;
  for (int i = 0; i < 50; ++i) {
    pub.PublishFile("flood song take" + std::to_string(i) + ".mp3", 100,
                    static_cast<uint32_t>(i), 6346, opts);
  }
  c.simulator.Run();
  SearchOptions so;
  so.max_results = 5;
  SearchEngine engine(c.pier(2));
  size_t got = 0;
  engine.Search("flood song", so, [&](Status s, auto hits) {
    ASSERT_TRUE(s.ok());
    got = hits.size();
  });
  c.simulator.Run();
  EXPECT_EQ(got, 5u);
}

TEST(PierSearchTest, PublisherStatsTrackTuplesAndBytes) {
  Cluster c(8);
  Publisher pub(c.pier(0));
  PublishOptions opts;
  opts.inverted = true;
  opts.inverted_cache = false;
  pub.PublishFile("four keyword name here.mp3", 1000, 1, 6346, opts);
  // Item + 4 Inverted tuples.
  EXPECT_EQ(pub.stats().files_published, 1u);
  EXPECT_EQ(pub.stats().tuples_published, 5u);
  EXPECT_GT(pub.stats().tuple_bytes, 0u);

  Publisher pub2(c.pier(1));
  pub2.PublishFile("four keyword name here.mp3", 1000, 1, 6346,
                   BothIndexes());
  // Item + 4 Inverted + 4 InvertedCache: the cache option costs more.
  EXPECT_EQ(pub2.stats().tuples_published, 9u);
  EXPECT_GT(pub2.stats().tuple_bytes, pub.stats().tuple_bytes);
}

TEST(PierSearchTest, AnswerFetchCostsOneRoutedGetPerOwner) {
  // The owner-coalesced fetch contract, end to end: resolving an N-result
  // answer set whose Item tuples live on K distinct owners must issue
  // exactly K routed get messages.
  Cluster c(32);
  Publisher pub(c.pier(0));
  PublishOptions opts;  // inverted only
  std::vector<uint64_t> ids;
  for (int i = 0; i < 40; ++i) {
    ids.push_back(pub.PublishFile(
        "shared album track" + std::to_string(i) + ".mp3", 1000,
        static_cast<uint32_t>(i), 6346, opts));
  }
  c.simulator.Run();

  std::set<sim::HostId> owners;
  for (uint64_t id : ids) {
    dht::Key k = HashCombine(Fnv1a64(ItemSchema().table_name()),
                             pier::Value(id).Hash());
    owners.insert(c.dht->ExpectedOwner(k)->host());
  }
  ASSERT_GT(owners.size(), 1u);
  ASSERT_LT(owners.size(), ids.size());

  uint64_t before = c.dht->metrics().multi_gets;
  SearchEngine engine(c.pier(3));
  size_t got = 0;
  engine.Search("shared album", SearchOptions{}, [&](Status s, auto hits) {
    ASSERT_TRUE(s.ok());
    got = hits.size();
  });
  c.simulator.Run();
  EXPECT_EQ(got, ids.size());
  EXPECT_EQ(c.dht->metrics().multi_gets - before, owners.size());
}

TEST(PierSearchTest, FetchItemsDedupesBeforeTruncating) {
  Cluster c(16);
  // Two distinct items, fetched with duplicated join keys and a cap of 2:
  // without dedupe-first, {1, 1} would evict item 2 at the truncation.
  for (uint64_t id : {uint64_t{1}, uint64_t{2}}) {
    c.pier(0)->Publish(
        ItemSchema(),
        pier::Tuple({pier::Value(id),
                     pier::Value("file" + std::to_string(id) + ".mp3"),
                     pier::Value(uint64_t{100}), pier::Value(uint64_t{9}),
                     pier::Value(uint64_t{6346})}));
  }
  c.simulator.Run();
  SearchEngine engine(c.pier(2));
  SearchOptions opts;
  opts.max_results = 2;
  std::set<uint64_t> got;
  engine.FetchItems({1, 1, 1, 2}, opts, [&](Status s, auto hits) {
    ASSERT_TRUE(s.ok());
    for (const auto& h : hits) got.insert(h.file_id);
  });
  c.simulator.Run();
  EXPECT_EQ(got, (std::set<uint64_t>{1, 2}));
}

TEST(PierSearchTest, SoftStateExpires) {
  Cluster c(16);
  Publisher pub(c.pier(0));
  PublishOptions opts = BothIndexes();
  opts.expiry = 10 * sim::kSecond;
  pub.PublishFile("ephemeral soft state.mp3", 1, 1, 6346, opts);
  c.simulator.Run();
  EXPECT_FALSE(
      SearchNames(&c, 3, "ephemeral soft", SearchOptions{}).empty());
  c.simulator.RunUntil(20 * sim::kSecond);
  EXPECT_TRUE(SearchNames(&c, 3, "ephemeral soft", SearchOptions{}).empty());
}

}  // namespace
}  // namespace pierstack::piersearch
