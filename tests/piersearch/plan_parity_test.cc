// The strategy-to-plan compilation contract: kDistributedJoin and
// kInvertedCache searches now execute through PierNode::ExecutePlan, and
// must return exactly the legacy ExecuteJoin path's answers at message
// counts within 10% — plus the new SearchOptions::plan_rewrite hook and
// the FetchItems deadline fix.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/builder.h"
#include "piersearch/publisher.h"
#include "piersearch/schemas.h"
#include "piersearch/search_engine.h"

namespace pierstack::piersearch {
namespace {

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 23);
    // Message-parity suite: pin the classic routing path so the owner
    // location cache (warmed by whichever strategy runs first) cannot
    // skew the legacy-vs-plan message comparison.
    dht::DhtOptions dopts;
    dopts.routing_policy = dht::RoutingPolicyKind::kClassicChord;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, dopts, 321);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(
          std::make_unique<pier::PierNode>(dht->node(i), &metrics));
    }
  }
  pier::PierNode* pier(size_t i) { return piers[i].get(); }
};

void PublishCorpus(Cluster* c) {
  Publisher pub(c->pier(0));
  PublishOptions opts;
  opts.inverted = true;
  opts.inverted_cache = true;
  const char* names[] = {
      "madonna like a prayer.mp3",  "madonna vogue.mp3",
      "beatles let it be.mp3",      "beatles yesterday once more.mp3",
      "pink floyd dark side moon.mp3", "rare basement tape zanzibar.mp3",
  };
  uint64_t i = 0;
  for (const char* name : names) {
    pub.PublishFile(name, 1000 + i, static_cast<uint32_t>(100 + i), 6346,
                    opts);
    ++i;
  }
  c->simulator.Run();
}

/// The legacy hardwired path, reconstructed exactly as the pre-plan
/// SearchEngine built it: a DistributedJoin per strategy, ExecuteJoin, and
/// FetchItems for the surviving fileIDs.
std::set<uint64_t> LegacySearch(Cluster* c, size_t from,
                                const std::vector<std::string>& terms,
                                const SearchOptions& options) {
  pier::DistributedJoin join;
  join.limit = options.max_results;
  if (options.strategy == SearchStrategy::kInvertedCache) {
    pier::JoinStage stage;
    stage.ns = InvertedCacheSchema().table_name();
    stage.key = pier::Value(terms[0]);
    stage.key_col = kIcKeyword;
    stage.join_col = kIcFileId;
    stage.payload_cols = {kIcFileId, kIcFulltext};
    stage.filter_col = kIcFulltext;
    stage.substring_filter.assign(terms.begin() + 1, terms.end());
    join.stages.push_back(std::move(stage));
  } else {
    for (const auto& term : terms) {
      pier::JoinStage stage;
      stage.ns = InvertedSchema().table_name();
      stage.key = pier::Value(term);
      stage.key_col = kInvKeyword;
      stage.join_col = kInvFileId;
      join.stages.push_back(std::move(stage));
    }
  }
  std::set<uint64_t> ids;
  SearchEngine engine(c->pier(from));
  c->pier(from)->ExecuteJoin(
      std::move(join), [&](Status s, auto entries) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        if (!options.fetch_items) {
          for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
          return;
        }
        std::vector<uint64_t> file_ids;
        for (const auto& e : entries) {
          file_ids.push_back(e.join_key.AsUint64());
        }
        engine.FetchItems(file_ids, options, [&](Status fs, auto hits) {
          ASSERT_TRUE(fs.ok()) << fs.ToString();
          for (const auto& h : hits) ids.insert(h.file_id);
        });
      });
  c->simulator.Run();
  return ids;
}

std::set<uint64_t> PlanSearch(Cluster* c, size_t from,
                              const std::string& query,
                              const SearchOptions& options) {
  SearchEngine engine(c->pier(from));
  std::set<uint64_t> ids;
  bool done = false;
  engine.Search(query, options, [&](Status s, auto hits) {
    done = true;
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (const auto& h : hits) ids.insert(h.file_id);
  });
  c->simulator.Run();
  EXPECT_TRUE(done);
  return ids;
}

TEST(PlanParityTest, BothStrategiesMatchLegacyAnswersAndMessageCounts) {
  Cluster c(32);
  PublishCorpus(&c);
  struct Case {
    const char* query;
    std::vector<std::string> terms;
  };
  const Case cases[] = {
      {"madonna prayer", {"madonna", "prayer"}},
      {"beatles", {"beatles"}},
      {"dark side moon", {"dark", "side", "moon"}},
  };
  for (SearchStrategy strategy :
       {SearchStrategy::kDistributedJoin, SearchStrategy::kInvertedCache}) {
    for (bool fetch : {true, false}) {
      for (const Case& tc : cases) {
        SearchOptions options;
        options.strategy = strategy;
        options.fetch_items = fetch;

        uint64_t before = c.network->metrics().total.messages;
        std::set<uint64_t> legacy = LegacySearch(&c, 4, tc.terms, options);
        uint64_t legacy_msgs = c.network->metrics().total.messages - before;

        before = c.network->metrics().total.messages;
        std::set<uint64_t> via_plan = PlanSearch(&c, 4, tc.query, options);
        uint64_t plan_msgs = c.network->metrics().total.messages - before;

        EXPECT_EQ(via_plan, legacy)
            << tc.query << " strategy=" << static_cast<int>(strategy);
        EXPECT_FALSE(via_plan.empty()) << tc.query;
        // Message parity: the plan path rides the same staged transport —
        // within 10% of the hardwired path (it is equal in practice).
        EXPECT_LE(plan_msgs * 10, legacy_msgs * 11) << tc.query;
        EXPECT_LE(legacy_msgs * 10, plan_msgs * 11) << tc.query;
      }
    }
  }
  EXPECT_GT(c.metrics.plans_executed, 0u);
}

TEST(PlanParityTest, OrderByPostingSizeRunsAsPlanRewrite) {
  // The §5 SHJ-order contract survives the rewrite-pass implementation:
  // one huge and one tiny posting list; the optimized plan must ship the
  // tiny one.
  Cluster c(32);
  Publisher pub(c.pier(0));
  PublishOptions opts;  // inverted only
  for (int i = 0; i < 200; ++i) {
    pub.PublishFile("popular common track" + std::to_string(i) + ".mp3",
                    1000, static_cast<uint32_t>(i), 6346, opts);
  }
  pub.PublishFile("popular unique gemstone.mp3", 999, 7, 6346, opts);
  c.simulator.Run();
  auto run = [&](bool ordered) {
    c.metrics = pier::PierMetrics{};
    SearchOptions so;
    so.order_by_posting_size = ordered;
    so.fetch_items = false;
    SearchEngine engine(c.pier(3));
    engine.Search("popular gemstone", so, [&](Status s, auto hits) {
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(hits.size(), 1u);
    });
    c.simulator.Run();
    return c.metrics.posting_entries_shipped;
  };
  EXPECT_GT(run(false), 100u);  // ships "popular"'s 201 entries
  EXPECT_LE(run(true), 2u);     // rewrite visits "gemstone" first
}

TEST(PlanParityTest, PlanRewriteHookShapesTheQuery) {
  Cluster c(32);
  PublishCorpus(&c);
  SearchOptions options;
  options.fetch_items = false;
  size_t hook_calls = 0;
  options.plan_rewrite = [&hook_calls](pier::QueryPlan* plan) {
    ++hook_calls;
    // Graft a tighter cap onto whatever the engine compiled.
    pier::PlanNode limit;
    limit.kind = pier::PlanNode::Kind::kLimit;
    limit.n = 1;
    limit.children.push_back(plan->root);
    plan->nodes.push_back(std::move(limit));
    plan->root = static_cast<uint32_t>(plan->nodes.size() - 1);
  };
  auto ids = PlanSearch(&c, 6, "beatles", options);
  EXPECT_EQ(hook_calls, 1u);
  EXPECT_EQ(ids.size(), 1u);  // two beatles files, hook capped to one
}

TEST(PlanParityTest, FetchItemsHonorsQueryTimeout) {
  Cluster c(24);
  // One item whose owner answers 60 simulated seconds late: the fetch leg
  // must fail the query at its own deadline instead of riding the DHT's
  // 10-second progress watchdog past it.
  uint64_t id = 42;
  c.pier(0)->Publish(
      ItemSchema(),
      pier::Tuple({pier::Value(id), pier::Value("slow file.mp3"),
                   pier::Value(uint64_t{100}), pier::Value(uint64_t{9}),
                   pier::Value(uint64_t{6346})}));
  c.simulator.Run();
  dht::Key k = HashCombine(Fnv1a64(ItemSchema().table_name()),
                           pier::Value(id).Hash());
  sim::HostId owner = c.dht->ExpectedOwner(k)->host();
  c.network->SetProcessingDelay(owner, 60 * sim::kSecond);

  size_t from = 2;
  while (c.pier(from)->host() == owner) ++from;
  ASSERT_NE(c.pier(from)->host(), owner);
  SearchOptions options;
  options.timeout = 2 * sim::kSecond;
  SearchEngine engine(c.pier(from));
  Status status = Status::OK();
  bool done = false;
  sim::SimTime finished = 0;
  engine.FetchItems({id}, options, [&](Status s, auto hits) {
    done = true;
    status = s;
    finished = c.simulator.now();
    EXPECT_TRUE(hits.empty());
  });
  c.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(status.code(), StatusCode::kTimedOut);
  EXPECT_LE(finished, 3 * sim::kSecond);
}

}  // namespace
}  // namespace pierstack::piersearch
