#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace pierstack {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such key");
  EXPECT_EQ(s.ToString(), "NotFound: no such key");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_FALSE(Status::TimedOut("x").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_FALSE(Status::OK().IsTimedOut());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  PIERSTACK_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PIERSTACK_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(3).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace pierstack
