#include "common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

namespace pierstack {
namespace {

TEST(BytesTest, RoundTripPrimitives) {
  BytesWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutDouble(3.14159);
  w.PutString("hello");
  BytesReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 3.14159);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values{0,    1,    127,  128,   16383, 16384,
                               1u << 21, 1ull << 35, 1ull << 56,
                               std::numeric_limits<uint64_t>::max()};
  BytesWriter w;
  for (uint64_t v : values) w.PutVarint(v);
  BytesReader r(w.data());
  for (uint64_t v : values) EXPECT_EQ(r.GetVarint().value(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, VarintSizeMatchesEncoding) {
  const std::vector<uint64_t> cases{0, 127, 128, 300, uint64_t{1} << 40,
                                    std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    BytesWriter w;
    w.PutVarint(v);
    EXPECT_EQ(w.size(), VarintSize(v)) << v;
  }
}

TEST(BytesTest, UnderflowIsCorruption) {
  BytesWriter w;
  w.PutU8(1);
  BytesReader r(w.data());
  EXPECT_TRUE(r.GetU8().ok());
  EXPECT_EQ(r.GetU8().status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.GetU32().status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.GetU64().status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringIsCorruption) {
  BytesWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8('x');
  BytesReader r(w.data());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintIsCorruption) {
  std::vector<uint8_t> bad(11, 0x80);  // never terminates within 64 bits
  BytesReader r(bad.data(), bad.size());
  EXPECT_EQ(r.GetVarint().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, EmptyString) {
  BytesWriter w;
  w.PutString("");
  BytesReader r(w.data());
  EXPECT_EQ(r.GetString().value(), "");
}

TEST(BytesTest, BinaryStringWithNuls) {
  std::string s("a\0b\0c", 5);
  BytesWriter w;
  w.PutString(s);
  BytesReader r(w.data());
  EXPECT_EQ(r.GetString().value(), s);
}

TEST(BytesTest, TakeMovesBuffer) {
  BytesWriter w;
  w.PutU32(7);
  auto buf = w.Take();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(BytesTest, NegativeAndSpecialDoubles) {
  BytesWriter w;
  w.PutDouble(-0.0);
  w.PutDouble(std::numeric_limits<double>::infinity());
  w.PutDouble(1e-300);
  BytesReader r(w.data());
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), -0.0);
  EXPECT_DOUBLE_EQ(r.GetDouble().value(),
                   std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(r.GetDouble().value(), 1e-300);
}

}  // namespace
}  // namespace pierstack
