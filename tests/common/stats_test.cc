#include "common/stats.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pierstack {
namespace {

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(SummaryTest, EmptyMeanZero) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SummaryTest, PercentilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1e-9);
}

TEST(SummaryTest, AddAfterPercentileStillCorrect) {
  Summary s;
  s.Add(10);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Median(), 15.0);
  s.Add(0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
}

TEST(SummaryTest, AddN) {
  Summary s;
  s.AddN(4.0, 3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST(CdfTest, EmpiricalCdfMonotone) {
  auto cdf = EmpiricalCdf({3, 1, 2, 2, 5});
  ASSERT_EQ(cdf.size(), 4u);  // distinct values 1,2,3,5
  EXPECT_DOUBLE_EQ(cdf[0].x, 1);
  EXPECT_DOUBLE_EQ(cdf[0].cum_fraction, 0.2);
  EXPECT_DOUBLE_EQ(cdf[1].x, 2);
  EXPECT_DOUBLE_EQ(cdf[1].cum_fraction, 0.6);
  EXPECT_DOUBLE_EQ(cdf.back().x, 5);
  EXPECT_DOUBLE_EQ(cdf.back().cum_fraction, 1.0);
}

TEST(CdfTest, EmptyInput) { EXPECT_TRUE(EmpiricalCdf({}).empty()); }

TEST(CdfTest, FractionAtOrBelow) {
  std::vector<double> s{0, 0, 1, 5, 10};
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(s, 0), 0.4);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(s, 4), 0.6);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(s, 100), 1.0);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow({}, 1), 0.0);
}

TEST(LogHistogramTest, BucketsPowersOfTwo) {
  LogHistogram h(2.0);
  h.Add(0);  // [0]
  h.Add(1);  // [1]
  h.Add(2);  // (1,2]
  h.Add(3);  // (2,4]
  h.Add(4);  // (2,4]
  h.Add(5);  // (4,8]
  auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_DOUBLE_EQ(buckets[0].lo, 0);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[1].lo, 1);
  EXPECT_DOUBLE_EQ(buckets[1].hi, 1);
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].hi, 2);
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[3].lo, 2);
  EXPECT_DOUBLE_EQ(buckets[3].hi, 4);
  EXPECT_EQ(buckets[3].count, 2u);
  EXPECT_DOUBLE_EQ(buckets[4].hi, 8);
  EXPECT_EQ(buckets[4].count, 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(LogHistogramTest, LargeValues) {
  LogHistogram h(10.0);
  h.Add(999);
  h.Add(1000);
  h.Add(1001);
  auto buckets = h.buckets();
  // 999 and 1000 in (100, 1000]; 1001 in (1000, 10000].
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(MeanByGroupTest, GroupsAndAverages) {
  auto rows = MeanByGroup({{1, 10}, {1, 20}, {2, 5}, {3, 0}, {2, 15}});
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].first, 1);
  EXPECT_DOUBLE_EQ(rows[0].second, 15);
  EXPECT_DOUBLE_EQ(rows[1].first, 2);
  EXPECT_DOUBLE_EQ(rows[1].second, 10);
  EXPECT_DOUBLE_EQ(rows[2].first, 3);
  EXPECT_DOUBLE_EQ(rows[2].second, 0);
}

TEST(MeanByGroupTest, Empty) { EXPECT_TRUE(MeanByGroup({}).empty()); }

TEST(CounterSetTest, SetIncrementAndLookup) {
  CounterSet counters;
  EXPECT_FALSE(counters.Has("pier.adaptive_flushes"));
  EXPECT_EQ(counters.Value("pier.adaptive_flushes"), 0u);
  counters.Set("pier.adaptive_flushes", 7);
  counters.Increment("pier.adaptive_flushes", 3);
  counters.Increment("dht.replica_peels");
  EXPECT_TRUE(counters.Has("pier.adaptive_flushes"));
  EXPECT_EQ(counters.Value("pier.adaptive_flushes"), 10u);
  EXPECT_EQ(counters.Value("dht.replica_peels"), 1u);
  ASSERT_EQ(counters.entries().size(), 2u);
  // entries() is name-sorted: stable iteration for reports.
  EXPECT_EQ(counters.entries().begin()->first, "dht.replica_peels");
}

TEST(CounterSetTest, ConcurrentIncrementsAreExactAfterJoin) {
  CounterSet counters;
  counters.Set("seeded", 5);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&counters] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counters.Increment("shared");
        counters.Increment("seeded", 2);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counters.Value("shared"), kThreads * kPerThread);
  EXPECT_EQ(counters.Value("seeded"), 5 + 2 * kThreads * kPerThread);
  // entries() folds the slabs too.
  EXPECT_EQ(counters.entries().at("shared"), kThreads * kPerThread);
}

TEST(CounterSetTest, SlabsAreInstanceScoped) {
  // Two live sets incremented from the same thread must not share slabs.
  CounterSet a;
  CounterSet b;
  std::thread([&] {
    a.Increment("x", 1);
    b.Increment("x", 10);
  }).join();
  EXPECT_EQ(a.Value("x"), 1u);
  EXPECT_EQ(b.Value("x"), 10u);
}

TEST(RelaxedCounterTest, ConcurrentBumpsAndUintCompat) {
  RelaxedCounter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) ++c;
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), 40000u);
  c += 2;
  uint64_t as_int = c;  // implicit conversion keeps old readers working
  EXPECT_EQ(as_int, 40002u);
  RelaxedCounter copy = c;
  EXPECT_EQ(copy.value(), 40002u);
}

TEST(RelaxedMaxTest, ConcurrentUpdatesKeepMax) {
  RelaxedMax m;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&m, t] {
      for (uint64_t i = 0; i < 5000; ++i) m.Update(i * 4 + t);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(m.value(), 4999u * 4 + 3);
  m.Update(7);  // lower value never regresses the max
  EXPECT_EQ(m.value(), 4999u * 4 + 3);
}

}  // namespace
}  // namespace pierstack
