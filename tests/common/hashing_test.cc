#include "common/hashing.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace pierstack {
namespace {

TEST(HashingTest, Fnv1a64KnownVector) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashingTest, DifferentInputsDiffer) {
  EXPECT_NE(Fnv1a64("madonna"), Fnv1a64("madonn"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("acb"));
}

TEST(HashingTest, SeededChangesValue) {
  EXPECT_NE(Fnv1a64Seeded("abc", 1), Fnv1a64Seeded("abc", 2));
  EXPECT_EQ(Fnv1a64Seeded("abc", 7), Fnv1a64Seeded("abc", 7));
}

TEST(HashingTest, Mix64Avalanches) {
  // Single-bit input changes should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t a = Mix64(0x1234567890abcdefULL);
    uint64_t b = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashingTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashingTest, HexFormatting) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(HashToHex(UINT64_MAX), "ffffffffffffffff");
}

TEST(HashingTest, LowCollisionRateOnSequentialStrings) {
  std::unordered_set<uint64_t> seen;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    seen.insert(Fnv1a64("file_" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kN));
}

}  // namespace
}  // namespace pierstack
