#include "common/bloom.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace pierstack {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1024, 4);
  std::vector<std::string> items;
  for (int i = 0; i < 50; ++i) items.push_back("item" + std::to_string(i));
  for (const auto& it : items) bloom.Insert(it);
  for (const auto& it : items) EXPECT_TRUE(bloom.MayContain(it));
}

TEST(BloomTest, MostlyRejectsAbsent) {
  BloomFilter bloom = BloomFilter::ForItems(100, 0.01);
  for (int i = 0; i < 100; ++i) bloom.Insert("present" + std::to_string(i));
  int fp = 0;
  const int kProbes = 10000;
  for (int i = 0; i < kProbes; ++i) {
    fp += bloom.MayContain("absent" + std::to_string(i));
  }
  // Sized for 1%; allow up to 3%.
  EXPECT_LT(fp, kProbes * 3 / 100);
}

TEST(BloomTest, ForItemsRespectsTargetRate) {
  for (double rate : {0.1, 0.01}) {
    BloomFilter bloom = BloomFilter::ForItems(500, rate);
    for (int i = 0; i < 500; ++i) bloom.Insert("x" + std::to_string(i));
    int fp = 0;
    const int kProbes = 20000;
    for (int i = 0; i < kProbes; ++i) {
      fp += bloom.MayContain("y" + std::to_string(i));
    }
    double measured = fp / double(kProbes);
    EXPECT_LT(measured, rate * 3) << rate;
  }
}

TEST(BloomTest, MayContainAllConjunction) {
  BloomFilter bloom(2048, 5);
  bloom.Insert("dark");
  bloom.Insert("side");
  EXPECT_TRUE(bloom.MayContainAll({"dark", "side"}));
  EXPECT_FALSE(bloom.MayContainAll({"dark", "moon"}));
  EXPECT_TRUE(bloom.MayContainAll({}));
}

TEST(BloomTest, EmptyFilterContainsNothing) {
  BloomFilter bloom(256, 3);
  EXPECT_FALSE(bloom.MayContain("anything"));
  EXPECT_DOUBLE_EQ(bloom.FillRatio(), 0.0);
}

TEST(BloomTest, FillRatioGrowsWithInsertions) {
  BloomFilter bloom(512, 3);
  double prev = 0;
  for (int i = 0; i < 50; ++i) {
    bloom.Insert("k" + std::to_string(i));
    EXPECT_GE(bloom.FillRatio(), prev);
    prev = bloom.FillRatio();
  }
  EXPECT_GT(prev, 0.1);
  EXPECT_LT(prev, 1.0);
}

TEST(BloomTest, UnionContainsBothSides) {
  BloomFilter a(512, 3), b(512, 3);
  a.Insert("alpha");
  b.Insert("beta");
  a.UnionWith(b);
  EXPECT_TRUE(a.MayContain("alpha"));
  EXPECT_TRUE(a.MayContain("beta"));
}

TEST(BloomTest, ByteSizeSmallerThanFileList) {
  // The QRP rationale: a keyword Bloom of a 30-file library beats
  // shipping ~30 × 30-byte filenames.
  BloomFilter bloom = BloomFilter::ForItems(150, 0.02);  // ~150 keywords
  EXPECT_LT(bloom.ByteSize(), 30u * 30u / 2);
}

TEST(BloomTest, TinyFilterStillWorks) {
  BloomFilter bloom(1, 1);  // rounds up to one word
  bloom.Insert("x");
  EXPECT_TRUE(bloom.MayContain("x"));
  EXPECT_GE(bloom.bit_count(), 64u);
}

}  // namespace
}  // namespace pierstack
