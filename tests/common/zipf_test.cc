#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pierstack {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(1000, 1.0);
  double sum = 0;
  for (size_t k = 0; k < 1000; ++k) sum += z.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfSampler z(100, 1.2);
  for (size_t k = 1; k < 100; ++k) {
    EXPECT_LT(z.Pmf(k), z.Pmf(k - 1));
  }
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfSampler z(50, 0.0);
  for (size_t k = 0; k < 50; ++k) EXPECT_NEAR(z.Pmf(k), 1.0 / 50, 1e-9);
}

TEST(ZipfTest, SampleRespectsPmfHead) {
  ZipfSampler z(10000, 1.0);
  Rng rng(1);
  const int kDraws = 200000;
  int rank0 = 0;
  for (int i = 0; i < kDraws; ++i) rank0 += (z.Sample(&rng) == 0);
  EXPECT_NEAR(rank0 / static_cast<double>(kDraws), z.Pmf(0), 0.005);
}

TEST(ZipfTest, SampleInRange) {
  ZipfSampler z(7, 2.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(&rng), 7u);
}

TEST(ZipfTest, SingletonAlwaysZero) {
  ZipfSampler z(1, 1.5);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.Sample(&rng), 0u);
  EXPECT_NEAR(z.Pmf(0), 1.0, 1e-12);
}

TEST(PowerLawTest, PmfSumsToOne) {
  PowerLawSampler p(1, 500, 2.4);
  double sum = 0;
  for (uint64_t v = 1; v <= 500; ++v) sum += p.Pmf(v);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PowerLawTest, HeavySingletonMass) {
  // With alpha ~2.4 most distinct values should be 1 — the paper's "long
  // tail of rare files".
  PowerLawSampler p(1, 1000, 2.4);
  EXPECT_GT(p.Pmf(1), 0.7);
  EXPECT_LT(p.Pmf(10), 0.01);
}

TEST(PowerLawTest, MeanMatchesEmpirical) {
  PowerLawSampler p(1, 200, 2.0);
  Rng rng(4);
  double sum = 0;
  const int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(p.Sample(&rng));
  }
  EXPECT_NEAR(sum / kDraws, p.Mean(), p.Mean() * 0.03);
}

TEST(PowerLawTest, SampleWithinBounds) {
  PowerLawSampler p(3, 17, 1.5);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = p.Sample(&rng);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 17u);
  }
}

TEST(PowerLawTest, DegenerateRange) {
  PowerLawSampler p(5, 5, 2.0);
  Rng rng(6);
  EXPECT_EQ(p.Sample(&rng), 5u);
  EXPECT_NEAR(p.Mean(), 5.0, 1e-12);
}

// Parameterized property sweep: the empirical frequency of value 1 must
// track the analytic Pmf across exponents.
class PowerLawAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawAlphaSweep, EmpiricalMatchesPmfAtOne) {
  double alpha = GetParam();
  PowerLawSampler p(1, 300, alpha);
  Rng rng(static_cast<uint64_t>(alpha * 1000));
  const int kDraws = 100000;
  int ones = 0;
  for (int i = 0; i < kDraws; ++i) ones += (p.Sample(&rng) == 1);
  EXPECT_NEAR(ones / static_cast<double>(kDraws), p.Pmf(1), 0.01)
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, PowerLawAlphaSweep,
                         ::testing::Values(1.2, 1.6, 2.0, 2.4, 2.8, 3.2));

}  // namespace
}  // namespace pierstack
