#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace pierstack {
namespace {

std::string Render(const TablePrinter& t, bool csv = false) {
  char* buf = nullptr;
  size_t len = 0;
  std::FILE* mem = open_memstream(&buf, &len);
  if (csv) {
    t.PrintCsv(mem);
  } else {
    t.Print(mem);
  }
  std::fclose(mem);
  std::string out(buf, len);
  free(buf);
  return out;
}

TEST(TableTest, AlignedOutputContainsAllCells) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  std::string out = Render(t);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvFormat) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(Render(t, /*csv=*/true), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
  EXPECT_EQ(FormatF(2.0, 0), "2");
  EXPECT_EQ(FormatI(-42), "-42");
  EXPECT_EQ(FormatPct(0.421, 1), "42.1%");
  EXPECT_EQ(FormatPct(1.0, 0), "100%");
}

TEST(TableTest, EmptyTableJustHeader) {
  TablePrinter t({"only"});
  std::string out = Render(t);
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(t.row_count(), 0u);
}

}  // namespace
}  // namespace pierstack
