#include "common/tokenizer.h"

#include <gtest/gtest.h>

namespace pierstack {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  auto terms = SplitTerms("Madonna - Like_a.Prayer (Live)");
  EXPECT_EQ(terms, (std::vector<std::string>{"madonna", "like", "a",
                                             "prayer", "live"}));
}

TEST(TokenizerTest, SplitEmptyAndPunctOnly) {
  EXPECT_TRUE(SplitTerms("").empty());
  EXPECT_TRUE(SplitTerms("--- ...!!!").empty());
}

TEST(TokenizerTest, SplitKeepsDigits) {
  auto terms = SplitTerms("track01 part2");
  EXPECT_EQ(terms, (std::vector<std::string>{"track01", "part2"}));
}

TEST(TokenizerTest, KeywordsDropStopWordsAndShortTerms) {
  auto kw = ExtractKeywords("The Matrix.avi");
  EXPECT_EQ(kw, (std::vector<std::string>{"matrix"}));
}

TEST(TokenizerTest, KeywordsDropFileExtensions) {
  auto kw = ExtractKeywords("dark side of the moon.mp3");
  EXPECT_EQ(kw, (std::vector<std::string>{"dark", "side", "moon"}));
}

TEST(TokenizerTest, KeywordsPreserveDuplicates) {
  auto kw = ExtractKeywords("boom boom pow");
  EXPECT_EQ(kw, (std::vector<std::string>{"boom", "boom", "pow"}));
}

TEST(TokenizerTest, UniqueKeywordsDedupe) {
  auto kw = ExtractUniqueKeywords("boom boom pow");
  EXPECT_EQ(kw, (std::vector<std::string>{"boom", "pow"}));
}

TEST(TokenizerTest, MinLenConfigurable) {
  auto kw = ExtractKeywords("go up now", 1);
  // "go", "up", "now" all kept at min_len 1 (none are stop words).
  EXPECT_EQ(kw.size(), 3u);
  auto kw3 = ExtractKeywords("go up now", 3);
  EXPECT_EQ(kw3, (std::vector<std::string>{"now"}));
}

TEST(TokenizerTest, MatchRequiresAllTerms) {
  std::vector<std::string> q{"madonna", "prayer"};
  EXPECT_TRUE(FilenameMatchesQuery("Madonna - Like a Prayer.mp3", q));
  EXPECT_FALSE(FilenameMatchesQuery("Madonna - Vogue.mp3", q));
}

TEST(TokenizerTest, MatchIsSubstring) {
  // Gnutella matching is substring-based: "donna" matches "Madonna".
  EXPECT_TRUE(FilenameMatchesQuery("Madonna - Vogue.mp3", {"donna"}));
}

TEST(TokenizerTest, MatchCaseInsensitive) {
  EXPECT_TRUE(FilenameMatchesQuery("MADONNA.MP3", {"madonna"}));
}

TEST(TokenizerTest, EmptyQueryMatchesEverything) {
  EXPECT_TRUE(FilenameMatchesQuery("anything.bin", {}));
}

TEST(TokenizerTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-123"), "abc-123");
}

TEST(TokenizerTest, AdjacentTermPairs) {
  auto pairs = AdjacentTermPairs({"dark", "side", "moon"});
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], std::string("dark") + '\x1f' + "side");
  EXPECT_EQ(pairs[1], std::string("side") + '\x1f' + "moon");
}

TEST(TokenizerTest, AdjacentTermPairsShortInputs) {
  EXPECT_TRUE(AdjacentTermPairs({}).empty());
  EXPECT_TRUE(AdjacentTermPairs({"solo"}).empty());
}

TEST(TokenizerTest, StopWordSetContainsPaperExamples) {
  // Section 3.1: 'Stop-words such as "MP3" and "the" are usually not
  // considered.'
  EXPECT_TRUE(DefaultStopWords().count("mp3"));
  EXPECT_TRUE(DefaultStopWords().count("the"));
}

}  // namespace
}  // namespace pierstack
