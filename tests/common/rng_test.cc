#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pierstack {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(19);
  double sum = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0, ss = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    ss += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(ss / kDraws, 1.0, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleHandlesEmptyAndSingle) {
  Rng rng(31);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{7});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (size_t k : {0ul, 1ul, 10ul, 99ul, 100ul}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), k);
    for (size_t x : s) EXPECT_LT(x, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementUniform) {
  // Element 0 should appear in a k-of-n sample with probability k/n.
  Rng rng(41);
  const int kTrials = 20000;
  int contains0 = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto s = rng.SampleWithoutReplacement(20, 5);
    contains0 += std::count(s.begin(), s.end(), 0u) > 0 ? 1 : 0;
  }
  EXPECT_NEAR(contains0 / static_cast<double>(kTrials), 0.25, 0.02);
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // Parent stream continues identically too.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace pierstack
