// Backend equivalence: the same seeded scenario — the PR-6 churn harness
// and a warm owner-coalesced FetchMany workload — must produce
// fingerprint-identical counters and identical answer sets on the serial
// canonical backend and on sharded backends with 2 and 8 workers. This is
// the determinism contract the shard-parallel runtime is allowed to
// parallelize under (see sim/shard.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/hashing.h"
#include "dht/builder.h"
#include "dht/churn.h"
#include "dht/ring_oracle.h"
#include "pier/node.h"
#include "sim/executor.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/shard.h"

namespace pierstack {
namespace {

enum class Backend { kSerial, kSharded2, kSharded8 };

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kSerial: return "serial";
    case Backend::kSharded2: return "sharded-2";
    default: return "sharded-8";
  }
}

std::unique_ptr<sim::Executor> MakeBackend(Backend b, sim::SimTime lookahead) {
  switch (b) {
    case Backend::kSerial:
      return std::make_unique<sim::SerialExecutor>();
    case Backend::kSharded2:
      return std::make_unique<sim::ShardedExecutor>(
          sim::ShardedExecutor::Options{2, lookahead});
    default:
      return std::make_unique<sim::ShardedExecutor>(
          sim::ShardedExecutor::Options{8, lookahead});
  }
}

/// Everything the churn run can deterministically disagree on — the same
/// tuple the PR-6 fixed-seed fingerprint test locks in, now compared
/// *across backends* instead of across repeats.
using ChurnFingerprint =
    std::tuple<uint64_t,            // events executed
               uint64_t,            // sim clock
               uint64_t, uint64_t,  // net messages, bytes
               uint64_t, uint64_t,  // dropped, refused
               uint64_t,            // injected faults
               uint64_t, uint64_t, uint64_t,  // churn crashes/joins/skipped
               uint64_t, uint64_t,  // epoch bumps, detector evictions
               uint64_t, uint64_t>; // resync rounds, entries

ChurnFingerprint RunChurnScenario(Backend backend) {
  // ConstantLatency(2ms) bounds every cross-host delivery, so 2ms is the
  // sharded backend's lookahead; quantize load probes to the same grid on
  // EVERY backend so congestion reads observe identical snapshots.
  constexpr sim::SimTime kLatency = 2 * sim::kMillisecond;
  auto exec = MakeBackend(backend, kLatency);
  sim::FaultPlan plan(1001ull ^ 0xF00Dull);
  auto network = std::make_unique<sim::Network>(
      exec.get(), std::make_unique<sim::ConstantLatency>(kLatency), 42);
  network->set_load_probe_quantum(kLatency);
  network->set_fault_plan(&plan);
  dht::DhtOptions opts;
  opts.overlay = dht::OverlayKind::kChord;
  opts.replication = 3;
  opts.maintenance = true;
  auto deployment =
      std::make_unique<dht::DhtDeployment>(network.get(), 16, opts, 777);
  dht::ChurnDriver driver(deployment.get(), 1001, &plan);

  for (size_t i = 0; i < 24; ++i) {
    deployment->node(0)->Put("equiv", (i + 1) * 0x9E3779B97F4A7C15ull,
                             {uint8_t(i), 1, 2}, 0, nullptr);
  }
  exec->RunFor(5 * sim::kSecond);

  auto timeline =
      sim::FaultPlan::SustainedChurn(exec->now(), sim::kMinute, 8.0, 1002);
  driver.Schedule(timeline);
  plan.set_message_loss(0.02);
  plan.set_latency_spike(0.05, 20 * sim::kMillisecond);
  exec->RunFor(2 * sim::kMinute);

  const sim::NetworkMetrics& net = network->metrics();
  const sim::FaultCounters& f = plan.counters();
  const dht::DhtMetrics& m = deployment->metrics();
  const dht::ChurnStats& churn = driver.stats();
  return ChurnFingerprint{exec->events_executed(),
                          exec->now(),
                          net.total.messages,
                          net.total.bytes,
                          net.dropped_messages,
                          net.refused_sends,
                          f.Total(),
                          churn.crashes,
                          churn.joins,
                          churn.skipped,
                          m.epoch_bumps,
                          m.detector_evictions,
                          m.resync_rounds,
                          m.resync_entries};
}

TEST(ShardEquivalenceTest, ChurnScenarioFingerprintsMatchAcrossBackends) {
  ChurnFingerprint want = RunChurnScenario(Backend::kSerial);
  // The scenario is not vacuous: churn actually executed under faults.
  EXPECT_GT(std::get<7>(want) + std::get<8>(want), 0u);
  EXPECT_GT(std::get<4>(want), 0u);
  for (Backend b : {Backend::kSharded2, Backend::kSharded8}) {
    EXPECT_EQ(RunChurnScenario(b), want) << BackendName(b);
  }
}

// ---------------------------------------------------------------------------

/// The split-brain heal, compared across backends: a scheduled partition
/// window (keyed on send time, so it lands identically everywhere), the
/// remembered-peer merge that knits the rings back together, and the data
/// that survives. The RingOracle verdict is asserted INSIDE the scenario —
/// every backend must converge to an oracle-clean ring, and the counters
/// plus the answer set must match bit-for-bit.
using PartitionFingerprint =
    std::tuple<uint64_t, uint64_t,            // events executed, sim clock
               uint64_t, uint64_t,            // net messages, bytes
               uint64_t, uint64_t,            // merge probes, merge rounds
               uint64_t, uint64_t,            // partition heals, drops
               uint64_t,                      // epoch bumps
               std::vector<uint64_t>>;        // answered keys (sorted)

PartitionFingerprint RunPartitionHealScenario(Backend backend) {
  constexpr sim::SimTime kLatency = 2 * sim::kMillisecond;
  auto exec = MakeBackend(backend, kLatency);
  sim::FaultPlan plan(0xBEEF);
  auto network = std::make_unique<sim::Network>(
      exec.get(), std::make_unique<sim::ConstantLatency>(kLatency), 42);
  network->set_load_probe_quantum(kLatency);
  network->set_fault_plan(&plan);
  dht::DhtOptions opts;
  opts.overlay = dht::OverlayKind::kChord;
  opts.replication = 3;
  opts.maintenance = true;
  auto deployment =
      std::make_unique<dht::DhtDeployment>(network.get(), 16, opts, 777);

  dht::RingOracle oracle(deployment.get());
  std::vector<dht::Key> keys;
  for (size_t i = 0; i < 32; ++i) {
    dht::Key k = (i + 1) * 0x9E3779B97F4A7C15ull;
    keys.push_back(k);
    deployment->node(0)->Put("equiv", k, {uint8_t(i), 1, 2}, 0, nullptr);
    oracle.TrackKey("equiv", k);
  }
  exec->RunFor(20 * sim::kSecond);

  sim::FaultPlan::PartitionWindow w;
  for (size_t i = 8; i < 16; ++i) {
    w.groups[deployment->node(i)->host()] = 1;
  }
  w.start = 30 * sim::kSecond;
  w.heal_time = 80 * sim::kSecond;
  plan.AddPartitionWindow(w);
  exec->RunFor(180 * sim::kSecond);

  // The oracle-clean barrier: whatever the backend, the healed ring must
  // satisfy every invariant before answers are even compared.
  dht::RingOracleReport report = oracle.Check(exec->now());
  EXPECT_TRUE(report.clean()) << BackendName(backend) << ": "
                              << report.detail;

  std::vector<uint64_t> answered;
  for (size_t i = 0; i < keys.size(); ++i) {
    deployment->node(12)->Get("equiv", keys[i], [&answered, i](
                                                    Status s, auto values) {
      if (s.ok() && !values.empty()) answered.push_back(i);
    });
  }
  exec->RunFor(10 * sim::kSecond);
  std::sort(answered.begin(), answered.end());

  const sim::NetworkMetrics& net = network->metrics();
  const dht::DhtMetrics& m = deployment->metrics();
  return PartitionFingerprint{exec->events_executed(),
                              exec->now(),
                              net.total.messages,
                              net.total.bytes,
                              m.merge_probes,
                              m.merge_rounds,
                              m.partition_heals,
                              plan.counters().partition_drops,
                              m.epoch_bumps,
                              std::move(answered)};
}

TEST(ShardEquivalenceTest, PartitionHealFingerprintsMatchAcrossBackends) {
  PartitionFingerprint want = RunPartitionHealScenario(Backend::kSerial);
  // The scenario is not vacuous: the split really severed traffic and the
  // merge machinery really drove the heal.
  EXPECT_GT(std::get<7>(want), 0u);            // partition drops
  EXPECT_GT(std::get<4>(want), 0u);            // merge probes
  EXPECT_GT(std::get<6>(want), 0u);            // partition heals
  EXPECT_EQ(std::get<9>(want).size(), 32u);    // full recall post-heal
  for (Backend b : {Backend::kSharded2, Backend::kSharded8}) {
    EXPECT_EQ(RunPartitionHealScenario(b), want) << BackendName(b);
  }
}

// ---------------------------------------------------------------------------

const pier::Schema& ItemLikeSchema() {
  static const pier::Schema* s = new pier::Schema(
      "items",
      {{"fileID", pier::ValueType::kUint64},
       {"name", pier::ValueType::kString}},
      0);
  return *s;
}

using FetchFingerprint =
    std::tuple<uint64_t, uint64_t,            // events executed, sim clock
               uint64_t, uint64_t,            // net messages, bytes
               std::vector<uint64_t>,         // cold-round answers (sorted)
               std::vector<uint64_t>>;        // warm-round answers (sorted)

FetchFingerprint RunFetchScenario(Backend backend) {
  constexpr sim::SimTime kLatency = 5 * sim::kMillisecond;
  auto exec = MakeBackend(backend, kLatency);
  auto network = std::make_unique<sim::Network>(
      exec.get(), std::make_unique<sim::ConstantLatency>(kLatency), 17);
  network->set_load_probe_quantum(kLatency);
  auto dht = std::make_unique<dht::DhtDeployment>(network.get(), 16,
                                                  dht::DhtOptions{}, 555);
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  piers.reserve(16);
  for (size_t i = 0; i < 16; ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht->node(i), &metrics));
  }

  for (uint64_t id = 1; id <= 40; ++id) {
    piers[0]->Publish(
        ItemLikeSchema(),
        pier::Tuple({pier::Value(id),
                     pier::Value("item " + std::to_string(id))}));
  }
  exec->Run();

  auto fetch_round = [&] {
    std::vector<pier::Value> keys;
    for (uint64_t id = 1; id <= 40; ++id) keys.emplace_back(pier::Value(id));
    std::vector<uint64_t> got;
    bool done = false;
    piers[3]->FetchMany(ItemLikeSchema(), std::move(keys),
                        [&](Status s, std::vector<pier::Tuple> tuples) {
                          done = true;
                          EXPECT_TRUE(s.ok()) << s.ToString();
                          for (const pier::Tuple& t : tuples) {
                            got.push_back(t.at(0).AsUint64());
                          }
                        });
    exec->Run();
    EXPECT_TRUE(done);
    std::sort(got.begin(), got.end());
    return got;
  };
  std::vector<uint64_t> cold = fetch_round();
  // Second round runs warm: owner caches primed, one-hop fast paths live.
  std::vector<uint64_t> warm = fetch_round();

  const sim::NetworkMetrics& net = network->metrics();
  return FetchFingerprint{exec->events_executed(), exec->now(),
                          net.total.messages,     net.total.bytes,
                          std::move(cold),        std::move(warm)};
}

TEST(ShardEquivalenceTest, WarmFetchManyAnswersMatchAcrossBackends) {
  FetchFingerprint want = RunFetchScenario(Backend::kSerial);
  EXPECT_EQ(std::get<4>(want).size(), 40u);  // every key answered, cold
  EXPECT_EQ(std::get<5>(want).size(), 40u);  // ... and warm
  for (Backend b : {Backend::kSharded2, Backend::kSharded8}) {
    EXPECT_EQ(RunFetchScenario(b), want) << BackendName(b);
  }
}

// ---------------------------------------------------------------------------

const pier::Schema& PostingSchema() {
  static const pier::Schema* s = new pier::Schema(
      "inverted",
      {{"keyword", pier::ValueType::kString},
       {"fileID", pier::ValueType::kUint64}},
      0);
  return *s;
}

/// Everything the fault-tolerant query plane decides under faults: failover
/// re-dispatches, hedge arming and wins, partial accounting — plus the
/// answers themselves. A mid-query owner crash and a fail-slow straggler
/// must drive IDENTICAL decisions on the serial backend and on 4 shards.
using RobustFingerprint =
    std::tuple<uint64_t, uint64_t,            // events executed, sim clock
               uint64_t, uint64_t,            // net messages, bytes
               uint64_t, uint64_t,            // stage failovers, partials
               uint64_t, uint64_t, uint64_t,  // hedges sent/won, plans shed
               std::vector<uint64_t>,         // join answers (sorted)
               std::vector<uint64_t>>;        // hedged fetch answers (sorted)

RobustFingerprint RunRobustQueryScenario(size_t shards) {
  constexpr sim::SimTime kLatency = 2 * sim::kMillisecond;
  std::unique_ptr<sim::Executor> exec;
  if (shards <= 1) {
    exec = std::make_unique<sim::SerialExecutor>();
  } else {
    exec = std::make_unique<sim::ShardedExecutor>(sim::ShardedExecutor::Options{
        static_cast<uint32_t>(shards), kLatency});
  }
  sim::FaultPlan plan(4242);
  auto network = std::make_unique<sim::Network>(
      exec.get(), std::make_unique<sim::ConstantLatency>(kLatency), 42);
  network->set_load_probe_quantum(kLatency);
  network->set_fault_plan(&plan);
  dht::DhtOptions opts;
  opts.replication = 3;
  opts.maintenance = true;
  auto dht = std::make_unique<dht::DhtDeployment>(network.get(), 16, opts,
                                                  777);
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  piers.reserve(16);
  for (size_t i = 0; i < 16; ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht->node(i), &metrics));
  }

  std::vector<pier::Tuple> postings, items;
  for (uint64_t f = 0; f < 60; ++f) {
    postings.push_back(
        pier::Tuple({pier::Value("alpha"), pier::Value(f)}));
  }
  for (uint64_t f = 1; f <= 24; ++f) {
    items.push_back(pier::Tuple(
        {pier::Value(f), pier::Value("item " + std::to_string(f))}));
  }
  piers[0]->PublishBatch(PostingSchema(), std::move(postings));
  piers[0]->PublishBatch(ItemLikeSchema(), std::move(items));
  piers[0]->FlushPublishQueues();
  exec->RunFor(10 * sim::kSecond);

  // Fail-slow leg: the first item key's owner straggles mildly; one warm
  // fetch round teaches the latency EWMA, then the straggle hardens past
  // the hedge delay so the backup-replica race decides the second round.
  dht::Key item_key =
      HashCombine(Fnv1a64("items"), pier::Value(uint64_t{1}).Hash());
  sim::HostId slow = dht->ExpectedOwner(item_key)->host();
  size_t origin_idx = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (dht->node(i)->host() != slow) {
      origin_idx = i;
      break;
    }
  }
  auto fetch_round = [&](std::vector<uint64_t>* out) {
    std::vector<pier::Value> keys;
    for (uint64_t f = 1; f <= 24; ++f) keys.emplace_back(pier::Value(f));
    piers[origin_idx]->FetchMany(
        ItemLikeSchema(), std::move(keys),
        [out](Status, std::vector<pier::Tuple> tuples) {
          if (out == nullptr) return;
          for (const pier::Tuple& t : tuples) {
            out->push_back(t.at(0).AsUint64());
          }
        });
    exec->RunFor(15 * sim::kSecond);
  };
  plan.AddFailSlow(slow, exec->now(), 10 * sim::kMinute,
                   100 * sim::kMillisecond);
  fetch_round(nullptr);  // warm the EWMA toward the straggler
  plan.AddFailSlow(slow, exec->now(), 10 * sim::kMinute, 2 * sim::kSecond);
  std::vector<uint64_t> fetched;
  fetch_round(&fetched);
  std::sort(fetched.begin(), fetched.end());

  // Failover leg: crash the posting owner while the stage-0 message is on
  // the wire; the no-progress watchdog must re-dispatch onto the replica.
  dht::Key posting_key =
      HashCombine(Fnv1a64("inverted"), pier::Value("alpha").Hash());
  dht::DhtNode* owner = dht->ExpectedOwner(posting_key);
  size_t join_idx = 0;
  for (size_t i = 0; i < 16; ++i) {
    if (dht->node(i) != owner && dht->node(i)->host() != slow) {
      join_idx = i;
      break;
    }
  }
  pier::DistributedJoin join;
  pier::JoinStage stage;
  stage.ns = "inverted";
  stage.key = pier::Value("alpha");
  join.stages.push_back(std::move(stage));
  std::vector<uint64_t> answered;
  piers[join_idx]->ExecuteJoin(
      std::move(join),
      [&answered](Status, std::vector<pier::JoinResultEntry> entries) {
        for (const auto& e : entries) {
          answered.push_back(e.join_key.AsUint64());
        }
      },
      /*timeout=*/20 * sim::kSecond);
  exec->ScheduleAfter(owner->host(), sim::kMillisecond,
                      [owner]() { owner->Crash(); });
  exec->RunFor(30 * sim::kSecond);
  std::sort(answered.begin(), answered.end());

  const sim::NetworkMetrics& net = network->metrics();
  return RobustFingerprint{exec->events_executed(),
                           exec->now(),
                           net.total.messages,
                           net.total.bytes,
                           metrics.stage_failovers,
                           metrics.partial_results,
                           metrics.hedges_sent,
                           metrics.hedges_won,
                           metrics.plans_shed,
                           std::move(answered),
                           std::move(fetched)};
}

TEST(ShardEquivalenceTest, FailoverAndHedgeDecisionsMatchAcrossBackends) {
  RobustFingerprint want = RunRobustQueryScenario(1);
  // The scenario is not vacuous: the crash forced a failover, the
  // straggler forced a hedge, and both legs still answered in full.
  EXPECT_GE(std::get<4>(want), 1u);               // stage failovers
  EXPECT_GE(std::get<6>(want), 1u);               // hedges sent
  EXPECT_GE(std::get<7>(want), 1u);               // hedges won
  EXPECT_EQ(std::get<9>(want).size(), 60u);       // join answers
  EXPECT_EQ(std::get<10>(want).size(), 24u);      // fetch answers
  EXPECT_EQ(RunRobustQueryScenario(4), want) << "sharded-4";
}

}  // namespace
}  // namespace pierstack
