// Whole-system integration: a trace-loaded Gnutella network with hybrid
// ultrapeers on a DHT — the Section 7 deployment in miniature.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/hashing.h"
#include "common/stats.h"
#include "dht/builder.h"
#include "gnutella/topology.h"
#include "hybrid/hybrid_ultrapeer.h"
#include "hybrid/schemes.h"
#include "pier/node.h"
#include "workload/trace.h"

namespace pierstack {
namespace {

struct Deployment {
  // Env-selected backend: serial by default, sharded under
  // PIERSTACK_SHARDS>1 (lookahead = the 15ms constant latency below).
  std::unique_ptr<sim::Executor> exec =
      sim::MakeEnvExecutor(15 * sim::kMillisecond);
  sim::Executor& simulator = *exec;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<gnutella::GnutellaNetwork> gnutella;
  std::unique_ptr<dht::DhtDeployment> dht;
  pier::PierMetrics pier_metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  std::vector<std::unique_ptr<hybrid::HybridUltrapeer>> hybrids;
  workload::Trace trace;

  Deployment() {
    workload::WorkloadConfig wc;
    wc.num_nodes = 400;
    wc.num_distinct_files = 700;
    wc.vocab_size = 900;
    wc.num_queries = 120;
    wc.max_replicas = 60;
    wc.seed = 17;
    trace = workload::GenerateTrace(wc);

    network = std::make_unique<sim::Network>(
        exec.get(),
        std::make_unique<sim::ConstantLatency>(15 * sim::kMillisecond), 71);

    gnutella::TopologyConfig tc;
    tc.num_ultrapeers = 80;
    tc.num_leaves = 320;  // 400 nodes total, matching the trace
    tc.protocol.ultrapeer_degree = 3;
    tc.protocol.flood_ttl = 2;
    tc.seed = 5;
    gnutella = std::make_unique<gnutella::GnutellaNetwork>(network.get(), tc);

    // Load every node's library from the trace.
    for (size_t i = 0; i < 400; ++i) {
      auto* node = gnutella->node(i);
      node->SetSharedFiles(trace.FilenamesOfNode(i));
      if (node->role() == gnutella::Role::kLeaf) {
        for (sim::HostId up : node->parent_ultrapeers()) {
          node->RepublishTo(up);
        }
      }
    }

    // All 80 ultrapeers are hybrid and share one DHT.
    dht = std::make_unique<dht::DhtDeployment>(network.get(), 80,
                                               dht::DhtOptions{}, 999);
    hybrid::HybridConfig hc;
    hc.gnutella_timeout = 3 * sim::kSecond;
    for (size_t i = 0; i < 80; ++i) {
      piers.push_back(
          std::make_unique<pier::PierNode>(dht->node(i), &pier_metrics));
      hybrids.push_back(std::make_unique<hybrid::HybridUltrapeer>(
          gnutella->ultrapeer(i), piers[i].get(), hc));
    }
    simulator.Run();
  }
};

TEST(EndToEndTest, HybridImprovesRecallOverGnutellaAlone) {
  Deployment d;
  // Proactive selective publishing at every hybrid UP: TF scheme over the
  // trace decides which of its indexed files are rare.
  auto scores = hybrid::TermFrequencyScheme().Scores(d.trace);
  auto published = hybrid::SelectByBudget(d.trace, scores, 0.5);
  std::map<std::string, bool> publish_by_name;
  for (size_t i = 0; i < d.trace.files.size(); ++i) {
    publish_by_name[d.trace.files[i].filename] = published[i];
  }
  for (auto& h : d.hybrids) {
    h->PublishLocalFiles(
        [&](const gnutella::KeywordIndex::Entry& e) {
          auto it = publish_by_name.find(e.filename);
          return it != publish_by_name.end() && it->second;
        });
  }
  d.simulator.Run();
  EXPECT_GT(d.pier_metrics.tuples_published, 0u);

  // Replay rare-item queries (ground truth 1..5 results) from hybrid UPs.
  size_t replayed = 0, gnutella_found = 0, hybrid_found = 0;
  for (const auto& q : d.trace.queries) {
    if (q.total_results == 0 || q.total_results > 5) continue;
    if (replayed >= 25) break;
    size_t up = replayed % 80;
    ++replayed;
    auto got = std::make_shared<std::vector<hybrid::HybridHit>>();
    d.hybrids[up]->Query(q.text, [got](const hybrid::HybridHit& h) {
      got->push_back(h);
    });
    d.simulator.Run();
    bool via_g = false, any = false;
    for (const auto& h : *got) {
      any = true;
      if (!h.via_dht) via_g = true;
    }
    gnutella_found += via_g;
    hybrid_found += any;
  }
  ASSERT_GT(replayed, 10u);
  // The DHT fallback must answer strictly more rare queries than flooding
  // alone (the paper's headline deployment result).
  EXPECT_GT(hybrid_found, gnutella_found);
  // No stored tuple may be lost to deserialize failures anywhere in the
  // publish -> store -> scan/fetch pipeline.
  EXPECT_EQ(d.pier_metrics.tuples_dropped_deserialize, 0u);
}

TEST(EndToEndTest, HybridResultsAreCorrect) {
  Deployment d;
  for (auto& h : d.hybrids) {
    h->PublishLocalFiles(
        [](const gnutella::KeywordIndex::Entry&) { return true; });
  }
  d.simulator.Run();

  size_t checked = 0;
  for (const auto& q : d.trace.queries) {
    if (q.total_results == 0 || checked >= 15) continue;
    ++checked;
    std::set<std::string> valid;
    for (uint32_t m : q.matches) valid.insert(d.trace.files[m].filename);
    auto got = std::make_shared<std::vector<hybrid::HybridHit>>();
    d.hybrids[checked % 80]->Query(
        q.text,
        [got](const hybrid::HybridHit& h) { got->push_back(h); });
    d.simulator.Run();
    for (const auto& h : *got) {
      EXPECT_TRUE(valid.count(h.filename))
          << "query '" << q.text << "' returned non-matching '"
          << h.filename << "'";
    }
  }
  EXPECT_GT(checked, 5u);
  EXPECT_EQ(d.pier_metrics.tuples_dropped_deserialize, 0u);
}

TEST(EndToEndTest, PublishedBytesAccounted) {
  Deployment d;
  d.hybrids[0]->PublishLocalFiles(
      [](const gnutella::KeywordIndex::Entry&) { return true; });
  d.simulator.Run();
  const auto& stats = d.hybrids[0]->publisher().stats();
  EXPECT_GT(stats.files_published, 0u);
  EXPECT_GT(stats.tuple_bytes, 0u);
  // Network accounting saw the publish traffic.
  EXPECT_GT(d.network->metrics().by_tag.count("dht.route"), 0u);
}

// The load-adaptive transport in one deployment: adaptive rehash flushes
// while publishing, replica peels while fetching, credit stalls while a
// slow stage owner consumes a chunked join — all surfaced through one
// CounterSet (the common/stats reporting currency).
TEST(EndToEndTest, TransportCountersSurfaced) {
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           5 * sim::kMillisecond),
                       29);
  dht::DhtOptions dopts;
  dopts.replication = 2;
  // The routing-layer counters asserted below need the load-balanced
  // policy; pin it so the classic CI leg (env override) still runs this
  // test as written.
  dopts.routing_policy = dht::RoutingPolicyKind::kCongestionAware;
  dht::DhtDeployment dht(&network, 24, dopts, 4242);
  pier::PierMetrics pier_metrics;
  pier::BatchOptions bopts;
  bopts.max_stage_entries = 8;
  bopts.stage_credit_chunks = 2;
  // Pin the fixed credit window: this test asserts the stall/grant
  // contract at exactly this window; the service-rate-derived window has
  // its own coverage in pier_credit_flow_test.
  bopts.adaptive_credit = false;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  for (size_t i = 0; i < dht.size(); ++i) {
    piers.push_back(
        std::make_unique<pier::PierNode>(dht.node(i), &pier_metrics));
    piers.back()->set_batch_options(bopts);
  }

  const pier::Schema inv("inverted",
                         {{"keyword", pier::ValueType::kString},
                          {"fileID", pier::ValueType::kUint64}},
                         0);
  const pier::Schema items("items",
                           {{"fileID", pier::ValueType::kUint64},
                            {"name", pier::ValueType::kString}},
                           0);

  // Publish enough postings per keyword that the idle-path adaptive
  // threshold fires, plus item rows to fetch back.
  std::vector<pier::Value> item_keys;
  for (const char* kw : {"alpha", "beta"}) {
    std::vector<pier::Tuple> postings;
    for (uint64_t f = 0; f < 120; ++f) {
      postings.push_back(
          pier::Tuple({pier::Value(std::string(kw)), pier::Value(f)}));
    }
    piers[0]->PublishBatch(inv, std::move(postings));
  }
  std::vector<pier::Tuple> rows;
  for (uint64_t f = 0; f < 48; ++f) {
    item_keys.push_back(pier::Value(f));
    rows.push_back(pier::Tuple(
        {pier::Value(f), pier::Value("file " + std::to_string(f))}));
  }
  piers[0]->PublishBatch(items, std::move(rows));
  piers[0]->FlushPublishQueues();
  simulator.Run();

  // Owner-coalesced fetch over the replicated item table: the scatter must
  // peel at replicas.
  size_t fetched = 0;
  piers[2]->FetchMany(items, item_keys,
                      [&](Status s, std::vector<pier::Tuple> tuples) {
                        ASSERT_TRUE(s.ok()) << s.ToString();
                        fetched = tuples.size();
                      });
  simulator.Run();
  EXPECT_EQ(fetched, item_keys.size());

  // The same fetch again: the first round's replies taught the fetcher the
  // owners' arcs, so the warm scatter must hit the owner location cache.
  fetched = 0;
  piers[2]->FetchMany(items, item_keys,
                      [&](Status s, std::vector<pier::Tuple> tuples) {
                        ASSERT_TRUE(s.ok()) << s.ToString();
                        fetched = tuples.size();
                      });
  simulator.Run();
  EXPECT_EQ(fetched, item_keys.size());

  // Chunked join against a slowed stage owner: credit pacing must stall at
  // least once and still complete with the exact intersection.
  dht::Key beta_key =
      HashCombine(Fnv1a64("inverted"), pier::Value(std::string("beta")).Hash());
  network.SetProcessingDelay(dht.ExpectedOwner(beta_key)->host(),
                             20 * sim::kMillisecond);
  pier::DistributedJoin join;
  for (const char* kw : {"alpha", "beta"}) {
    pier::JoinStage stage;
    stage.ns = "inverted";
    stage.key = pier::Value(std::string(kw));
    join.stages.push_back(std::move(stage));
  }
  size_t results = 0;
  piers[5]->ExecuteJoin(std::move(join), [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    results = entries.size();
  });
  simulator.Run();
  EXPECT_EQ(results, 120u);

  // Hot-spot routing: bury one node under a processing delay, then fire a
  // burst of puts whose greedy first hop is that node while an alternative
  // finger makes progress too — the congestion-aware policy must detour.
  dht::DhtNode* hot_origin = dht.node(8);
  sim::HostId hot = dht.ExpectedOwner(beta_key)->host();
  network.SetProcessingDelay(hot, 80 * sim::kMillisecond);
  std::vector<dht::Key> hot_keys;
  for (uint64_t i = 1; i < 50000 && hot_keys.size() < 30; ++i) {
    dht::Key k = Mix64(i ^ 0x9e3779b97f4a7c15ull);
    auto& table = hot_origin->routing();
    if (table.IsOwner(k)) continue;
    if (table.NextHop(k).host != hot) continue;
    std::vector<dht::NodeInfo> cands;
    table.AppendProgressCandidates(k, &cands);
    bool has_alternative = false;
    for (const auto& c : cands) {
      if (c.host != hot) has_alternative = true;
    }
    if (has_alternative) hot_keys.push_back(k);
  }
  ASSERT_GT(hot_keys.size(), 5u);
  for (dht::Key k : hot_keys) {
    hot_origin->Put("hotspot", k, {1, 2, 3});
  }
  simulator.Run();

  CounterSet counters;
  pier::ExportTransportCounters(pier_metrics, &counters);
  dht::ExportTransportCounters(dht.metrics(), &counters);
  EXPECT_GT(counters.Value("pier.adaptive_flushes"), 0u);
  EXPECT_GT(counters.Value("pier.credits_stalled"), 0u);
  EXPECT_GT(counters.Value("dht.replica_peels"), 0u);
  EXPECT_GT(counters.Value("dht.replica_skips"), 0u);
  // The routing layer's own counters, all live in one deployment: the warm
  // fetch hit the owner location cache (saving ring hops) and the hot-spot
  // burst routed around the buried node.
  EXPECT_GT(counters.Value("dht.route_cache_hits"), 0u);
  EXPECT_GT(counters.Value("dht.hops_saved"), 0u);
  EXPECT_GT(counters.Value("dht.congestion_detours"), 0u);
  EXPECT_EQ(counters.Value("pier.credit_streams_expired"), 0u);
  EXPECT_EQ(pier_metrics.tuples_dropped_deserialize, 0u);
}

}  // namespace
}  // namespace pierstack
