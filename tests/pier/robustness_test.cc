// Fault-tolerant query plane: stage failover recovers a crashed stage
// owner's answers from its replica-holding successor, hedged fetches beat a
// fail-slow owner without changing the answer, admission control sheds
// over-budget plans as explicit labeled refusals, and every partial result
// carries a Completeness record matched one-for-one by the
// pier.partial_results counter — a partial answer is never silent.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "common/stats.h"
#include "dht/builder.h"
#include "pier/node.h"
#include "sim/fault.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

const Schema& ItemSchema() {
  static const Schema* s = new Schema("item",
                                      {{"fileID", ValueType::kUint64},
                                       {"name", ValueType::kString}},
                                      0);
  return *s;
}

/// Mirrors the engine's (ns, key value) → ring key mapping (pier/node.cc).
dht::Key RingKeyFor(const std::string& ns, const Value& key) {
  return HashCombine(Fnv1a64(ns), key.Hash());
}

struct Cluster {
  sim::Simulator simulator;
  sim::FaultPlan faults{99};
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  Cluster(size_t n, const BatchOptions& opts) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 31);
    network->set_fault_plan(&faults);
    dht::DhtOptions dopts;
    dopts.replication = 3;
    dopts.maintenance = true;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, dopts, 777);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
      piers.back()->set_batch_options(opts);
    }
  }

  void PublishPostings(const std::string& kw, uint64_t lo, uint64_t hi) {
    std::vector<Tuple> tuples;
    for (uint64_t f = lo; f < hi; ++f) {
      tuples.push_back(Tuple({Value(kw), Value(f)}));
    }
    piers[0]->PublishBatch(InvSchema(), std::move(tuples));
    piers[0]->FlushPublishQueues();
    simulator.RunFor(10 * sim::kSecond);
  }

  dht::DhtNode* OwnerOf(const std::string& ns, const Value& key) {
    return dht->ExpectedOwner(RingKeyFor(ns, key));
  }

  /// Index of a pier whose node is NOT `excluded` (to survive a crash).
  size_t SurvivorIndex(dht::DhtNode* excluded) {
    for (size_t i = 0; i < dht->size(); ++i) {
      if (dht->node(i) != excluded) return i;
    }
    ADD_FAILURE() << "no survivor candidate";
    return 0;
  }
};

DistributedJoin OneStage(const std::string& kw) {
  DistributedJoin join;
  JoinStage stage;
  stage.ns = "inverted";
  stage.key = Value(kw);
  join.stages.push_back(std::move(stage));
  return join;
}

/// One observed query resolution: everything the callback delivered.
struct Outcome {
  bool fired = false;
  Status status = Status::Internal("unset");
  std::set<uint64_t> ids;
  Completeness completeness;
  sim::SimTime fired_at = 0;
};

PierNode::JoinCallback JoinCallbackOf(Cluster* c, Outcome* out) {
  return [c, out](Status s, std::vector<JoinResultEntry> entries,
                  const Completeness& completeness) {
    out->fired = true;
    out->fired_at = c->simulator.now();
    out->status = std::move(s);
    out->completeness = completeness;
    for (const auto& e : entries) out->ids.insert(e.join_key.AsUint64());
  };
}

TEST(RobustnessTest, FailoverRecoversFullAnswerAfterStage0OwnerCrash) {
  BatchOptions opts;  // failover budget 2, everything else default
  Cluster c(16, opts);
  c.PublishPostings("alpha", 0, 80);

  dht::DhtNode* owner = c.OwnerOf("inverted", Value("alpha"));
  ASSERT_NE(owner, nullptr);
  size_t origin = c.SurvivorIndex(owner);

  Outcome got;
  c.piers[origin]->ExecuteJoin(OneStage("alpha"), JoinCallbackOf(&c, &got),
                               /*timeout=*/20 * sim::kSecond);
  // Crash the stage-0 owner while the stage message is on the wire: the
  // dispatched query loses its entire weight and only the no-progress
  // watchdog can bring it back.
  c.simulator.ScheduleAfter(2 * sim::kMillisecond, [&] { owner->Crash(); });
  c.simulator.RunFor(30 * sim::kSecond);

  ASSERT_TRUE(got.fired) << "join hung across the owner crash";
  // The re-dispatch re-resolved the ring and landed on the replica-holding
  // successor: the full answer, well inside the deadline.
  EXPECT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.ids.size(), 80u);
  EXPECT_GE(c.metrics.stage_failovers, 1u);
  EXPECT_TRUE(got.completeness.exact);
  EXPECT_GE(got.completeness.failovers, 1u);
  // Recovered in full — nothing partial to account for.
  EXPECT_EQ(c.metrics.partial_results, 0u);
}

TEST(RobustnessTest, FailoverDisabledTimesOutWithLabeledPartial) {
  BatchOptions opts;
  opts.stage_failover_budget = 0;  // the legacy sit-out-the-deadline path
  Cluster c(16, opts);
  c.PublishPostings("alpha", 0, 40);

  dht::DhtNode* owner = c.OwnerOf("inverted", Value("alpha"));
  ASSERT_NE(owner, nullptr);
  size_t origin = c.SurvivorIndex(owner);

  Outcome got;
  c.piers[origin]->ExecuteJoin(OneStage("alpha"), JoinCallbackOf(&c, &got),
                               /*timeout=*/6 * sim::kSecond);
  c.simulator.ScheduleAfter(2 * sim::kMillisecond, [&] { owner->Crash(); });
  c.simulator.RunFor(20 * sim::kSecond);

  ASSERT_TRUE(got.fired);
  EXPECT_FALSE(got.status.ok());
  EXPECT_TRUE(got.ids.empty());
  // The shortfall is labeled, not silent: non-exact, zero coverage, one
  // failed stage, and exactly one counted partial for one observed one.
  EXPECT_FALSE(got.completeness.exact);
  EXPECT_LT(got.completeness.coverage_fraction, 1.0);
  EXPECT_EQ(got.completeness.stages_failed, 1u);
  EXPECT_EQ(got.completeness.failovers, 0u);
  EXPECT_EQ(c.metrics.stage_failovers, 0u);
  EXPECT_EQ(c.metrics.partial_results, 1u);
}

TEST(RobustnessTest, HedgedFetchBeatsFailSlowOwnerWithIdenticalAnswers) {
  auto run = [](bool hedged, std::set<uint64_t>* ids, Completeness* comp,
                uint64_t* hedges_sent, uint64_t* hedges_won) {
    BatchOptions opts;
    opts.hedged_fetches = hedged;
    Cluster c(16, opts);
    std::vector<Tuple> items;
    for (uint64_t f = 1; f <= 120; ++f) {
      items.push_back(Tuple({Value(f), Value("file " + std::to_string(f))}));
    }
    c.piers[0]->PublishBatch(ItemSchema(), std::move(items));
    c.piers[0]->FlushPublishQueues();
    c.simulator.RunFor(10 * sim::kSecond);

    // Fetch ONLY keys the straggler owns: every ring route to them ends at
    // its predecessor, which is exactly where the hedge's backup diversion
    // runs — the primary must pay the straggle, the hedge never does. Make
    // the owner a mild straggler first and run one warm-up round so the
    // latency EWMA toward it reads the degradation.
    sim::HostId slow = c.OwnerOf("item", Value(uint64_t{1}))->host();
    std::vector<uint64_t> slow_keys;
    for (uint64_t f = 1; f <= 120; ++f) {
      if (c.OwnerOf("item", Value(f))->host() == slow) {
        slow_keys.push_back(f);
      }
    }
    EXPECT_GE(slow_keys.size(), 3u);
    c.network->SetProcessingDelay(slow, 100 * sim::kMillisecond);
    // Latency of one fetch round = callback time minus issue time (the
    // simulator keeps running maintenance past the answer).
    auto fetch = [&](std::set<uint64_t>* got, Completeness* cres) {
      std::vector<Value> keys;
      for (uint64_t f : slow_keys) keys.emplace_back(Value(f));
      bool done = false;
      sim::SimTime issued = c.simulator.now();
      sim::SimTime answered = issued;
      size_t idx = c.SurvivorIndex(c.dht->node(0));
      // Any pier not colocated with the slow host works as the origin.
      for (size_t i = 0; i < c.dht->size(); ++i) {
        if (c.dht->node(i)->host() != slow) {
          idx = i;
          break;
        }
      }
      c.piers[idx]->FetchMany(
          ItemSchema(), std::move(keys),
          PierNode::FetchCallback(
              [&](Status s, std::vector<Tuple> tuples,
                  const Completeness& cc) {
                done = true;
                answered = c.simulator.now();
                if (cres != nullptr) *cres = cc;
                (void)s;
                if (got != nullptr) {
                  for (const Tuple& t : tuples) {
                    got->insert(t.at(0).AsUint64());
                  }
                }
              }));
      c.simulator.RunFor(20 * sim::kSecond);
      EXPECT_TRUE(done);
      return answered - issued;
    };
    fetch(nullptr, nullptr);  // warm round: EWMA now reads ~105ms

    // The mild straggler becomes a hard one: +2s per delivery, far past
    // the hedge delay (3 × observed ≈ 315ms), so the backup answers first.
    c.faults.AddFailSlow(slow, c.simulator.now(), 5 * sim::kMinute,
                         2 * sim::kSecond);
    sim::SimTime latency = fetch(ids, comp);
    *hedges_sent = c.metrics.hedges_sent;
    *hedges_won = c.metrics.hedges_won;
    return latency;
  };

  std::set<uint64_t> base_ids, hedged_ids;
  Completeness base_comp, hedged_comp;
  uint64_t base_sent = 0, base_won = 0, sent = 0, won = 0;
  sim::SimTime base_t = run(false, &base_ids, &base_comp, &base_sent,
                            &base_won);
  sim::SimTime hedged_t = run(true, &hedged_ids, &hedged_comp, &sent, &won);

  // Identical answers, every key resolved, and the hedge actually raced.
  EXPECT_EQ(hedged_ids, base_ids);
  EXPECT_GE(hedged_ids.size(), 3u);
  EXPECT_EQ(base_sent, 0u);
  EXPECT_EQ(base_won, 0u);
  EXPECT_GE(sent, 1u);
  EXPECT_GE(won, 1u);
  EXPECT_GE(hedged_comp.hedges_won, 1u);
  EXPECT_TRUE(hedged_comp.exact);
  // The backup replica answered while the primary sat in the straggler's
  // queue: a decisive latency win, not a marginal one.
  EXPECT_LT(hedged_t * 2, base_t);
}

TEST(RobustnessTest, AdmissionControlShedsUnderPressureAndAdmitsWhenIdle) {
  BatchOptions opts;
  opts.admission_base_entries = 64;
  opts.admission_min_entries = 8;
  opts.admission_inflight_floor = 2;
  opts.admission_retry_after = 100 * sim::kMillisecond;
  Cluster c(16, opts);
  c.PublishPostings("alpha", 0, 100);

  dht::DhtNode* owner = c.OwnerOf("inverted", Value("alpha"));
  ASSERT_NE(owner, nullptr);
  size_t origin = c.SurvivorIndex(owner);

  // Idle: the posting list dwarfs the pressure budget, but an idle owner
  // admits everything.
  Outcome idle;
  c.piers[origin]->ExecuteJoin(OneStage("alpha"), JoinCallbackOf(&c, &idle),
                               /*timeout=*/20 * sim::kSecond);
  c.simulator.RunFor(25 * sim::kSecond);
  ASSERT_TRUE(idle.fired);
  EXPECT_TRUE(idle.status.ok()) << idle.status.ToString();
  EXPECT_EQ(idle.ids.size(), 100u);
  EXPECT_EQ(c.metrics.plans_shed, 0u);

  // Pressure: a slow owner with a standing message stream stacked against
  // it. Every admission probe now sees dozens of in-flight messages.
  c.network->SetProcessingDelay(owner->host(), 300 * sim::kMillisecond);
  dht::Key pressure_key = RingKeyFor("inverted", Value("alpha"));
  size_t feeder = c.SurvivorIndex(owner);
  for (size_t i = 0; i < 4000; ++i) {
    c.simulator.ScheduleAfter(i * 10 * sim::kMillisecond, [&c, feeder,
                                                           pressure_key] {
      c.dht->node(feeder)->Put("pressure", pressure_key, {0xA, 0xB}, 0,
                               nullptr);
    });
  }
  c.simulator.RunFor(2 * sim::kSecond);  // reach steady-state pressure

  Outcome shed;
  c.piers[origin]->ExecuteJoin(OneStage("alpha"), JoinCallbackOf(&c, &shed),
                               /*timeout=*/30 * sim::kSecond);
  c.simulator.RunFor(40 * sim::kSecond);

  ASSERT_TRUE(shed.fired);
  // Refused at the owner, deferred per the retry-after hint until the
  // defer budget ran out, then resolved as an explicit labeled shed.
  EXPECT_FALSE(shed.status.ok());
  EXPECT_TRUE(shed.ids.empty());
  EXPECT_TRUE(shed.completeness.shed);
  EXPECT_FALSE(shed.completeness.exact);
  EXPECT_GT(shed.completeness.retry_after, 0u);
  EXPECT_EQ(shed.completeness.deferrals, opts.admission_defer_budget);
  EXPECT_EQ(c.metrics.plans_shed, opts.admission_defer_budget + 1);
  EXPECT_EQ(c.metrics.plans_deferred, opts.admission_defer_budget);
  // A shed is a labeled partial: counted exactly once.
  EXPECT_EQ(c.metrics.partial_results, 1u);
  // The shed query never failed a stage — it never started one.
  EXPECT_EQ(shed.completeness.stages_failed, 0u);
}

TEST(RobustnessTest, PartialResultsCounterMatchesObservedPartials) {
  BatchOptions opts;
  opts.stage_failover_budget = 0;  // make the crash query resolve partial
  Cluster c(16, opts);

  dht::DhtNode* alpha_owner = c.OwnerOf("inverted", Value("alpha"));
  ASSERT_NE(alpha_owner, nullptr);
  // The scenario needs a healthy witness query: a keyword whose owner is a
  // different node than alpha's (which is about to crash).
  std::string witness;
  for (const char* kw : {"beta", "gamma", "delta", "epsilon", "zeta",
                         "theta", "kappa"}) {
    if (c.OwnerOf("inverted", Value(kw)) != alpha_owner) {
      witness = kw;
      break;
    }
  }
  ASSERT_FALSE(witness.empty()) << "no keyword with a distinct owner";
  c.PublishPostings("alpha", 0, 30);
  c.PublishPostings(witness, 0, 30);

  size_t origin = c.SurvivorIndex(alpha_owner);
  Outcome broken, healthy1, healthy2;
  c.piers[origin]->ExecuteJoin(OneStage("alpha"), JoinCallbackOf(&c, &broken),
                               /*timeout=*/5 * sim::kSecond);
  c.piers[origin]->ExecuteJoin(OneStage(witness),
                               JoinCallbackOf(&c, &healthy1),
                               /*timeout=*/5 * sim::kSecond);
  // Crash alpha's owner while the stage dispatch is on the wire: with the
  // failover budget at zero, that query can only time out partial. The
  // witness owner is untouched.
  c.simulator.ScheduleAfter(2 * sim::kMillisecond,
                            [&] { alpha_owner->Crash(); });
  c.simulator.RunFor(10 * sim::kSecond);
  c.piers[origin]->ExecuteJoin(OneStage(witness),
                               JoinCallbackOf(&c, &healthy2),
                               /*timeout=*/5 * sim::kSecond);
  c.simulator.RunFor(10 * sim::kSecond);

  ASSERT_TRUE(broken.fired);
  ASSERT_TRUE(healthy1.fired);
  ASSERT_TRUE(healthy2.fired);
  uint64_t observed = 0;
  for (const Outcome* o : {&broken, &healthy1, &healthy2}) {
    if (!o->completeness.exact) ++observed;
  }
  EXPECT_EQ(observed, 1u);  // only the crashed-owner query fell short
  EXPECT_TRUE(healthy1.completeness.exact);
  EXPECT_EQ(healthy1.ids.size(), 30u);
  EXPECT_EQ(c.metrics.partial_results, observed);

  // The robustness counters travel through the standard export surface.
  CounterSet out;
  ExportTransportCounters(c.metrics, &out);
  EXPECT_EQ(out.Value("pier.partial_results"), observed);
  EXPECT_EQ(out.Value("pier.stage_failovers"), 0u);
  EXPECT_EQ(out.Value("pier.plans_shed"), 0u);
  EXPECT_EQ(out.Value("pier.plans_deferred"), 0u);
  EXPECT_EQ(out.Value("pier.hedges_sent"), 0u);
  EXPECT_EQ(out.Value("pier.hedges_won"), 0u);
}

}  // namespace
}  // namespace pierstack::pier
