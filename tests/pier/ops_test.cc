#include "pier/ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace pierstack::pier {
namespace {

Tuple T2(uint64_t a, uint64_t b) {
  return Tuple({Value(a), Value(b)});
}

std::vector<Tuple> MakeRows(std::initializer_list<std::pair<uint64_t, uint64_t>> rows) {
  std::vector<Tuple> out;
  for (auto [a, b] : rows) out.push_back(T2(a, b));
  return out;
}

TEST(OpsTest, VectorScanYieldsAll) {
  VectorScan scan(MakeRows({{1, 2}, {3, 4}}));
  auto got = Collect(&scan);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], T2(1, 2));
}

TEST(OpsTest, SelectionFilters) {
  Selection sel(std::make_unique<VectorScan>(MakeRows({{1, 2}, {3, 4}, {5, 6}})),
                [](const Tuple& t) { return t.at(0).AsUint64() >= 3; });
  auto got = Collect(&sel);
  EXPECT_EQ(got.size(), 2u);
}

TEST(OpsTest, ProjectionReordersColumns) {
  Projection proj(std::make_unique<VectorScan>(MakeRows({{1, 2}})),
                  {1, 0, 1});
  auto got = Collect(&proj);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], Tuple({Value(uint64_t{2}), Value(uint64_t{1}),
                           Value(uint64_t{2})}));
}

TEST(OpsTest, LimitStopsEarly) {
  Limit lim(std::make_unique<VectorScan>(MakeRows({{1, 1}, {2, 2}, {3, 3}})),
            2);
  EXPECT_EQ(Collect(&lim).size(), 2u);
}

TEST(OpsTest, LimitZero) {
  Limit lim(std::make_unique<VectorScan>(MakeRows({{1, 1}})), 0);
  EXPECT_TRUE(Collect(&lim).empty());
}

TEST(OpsTest, HashJoinBasic) {
  // R(a,b) join S(c,d) on b = c.
  auto left = std::make_unique<VectorScan>(MakeRows({{1, 10}, {2, 20}, {3, 10}}));
  auto right = std::make_unique<VectorScan>(MakeRows({{10, 100}, {30, 300}}));
  HashJoin join(std::move(left), std::move(right), 1, 0);
  auto got = Collect(&join);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& t : got) {
    EXPECT_EQ(t.arity(), 4u);
    EXPECT_EQ(t.at(1), t.at(2));
  }
}

TEST(OpsTest, HashJoinEmptyInputs) {
  HashJoin join(std::make_unique<VectorScan>(std::vector<Tuple>{}),
                std::make_unique<VectorScan>(MakeRows({{1, 1}})), 0, 0);
  EXPECT_TRUE(Collect(&join).empty());
}

TEST(OpsTest, HashJoinDuplicatesMultiply) {
  auto left = std::make_unique<VectorScan>(MakeRows({{1, 5}, {2, 5}}));
  auto right = std::make_unique<VectorScan>(MakeRows({{5, 7}, {5, 8}}));
  HashJoin join(std::move(left), std::move(right), 1, 0);
  EXPECT_EQ(Collect(&join).size(), 4u);  // 2 x 2 cross on key 5
}

TEST(ShjTest, ProducesJoinsIncrementally) {
  SymmetricHashJoin shj(1, 0);
  EXPECT_TRUE(shj.InsertLeft(T2(1, 10)).empty());   // nothing on right yet
  auto out = shj.InsertRight(T2(10, 100));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arity(), 4u);
  // Another left match joins against the stored right tuple.
  auto out2 = shj.InsertLeft(T2(2, 10));
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].at(0).AsUint64(), 2u);
}

TEST(ShjTest, OutputOrderIsAlwaysLeftThenRight) {
  SymmetricHashJoin shj(0, 0);
  shj.InsertRight(Tuple({Value(std::string("k")), Value(std::string("R"))}));
  auto out =
      shj.InsertLeft(Tuple({Value(std::string("k")), Value(std::string("L"))}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at(1).AsString(), "L");
  EXPECT_EQ(out[0].at(3).AsString(), "R");
}

TEST(ShjTest, NoFalseMatchesOnHashCollisions) {
  // Different string keys never join even if the table is tiny.
  SymmetricHashJoin shj(0, 0);
  shj.InsertLeft(Tuple({Value(std::string("alpha"))}));
  EXPECT_TRUE(shj.InsertRight(Tuple({Value(std::string("beta"))})).empty());
}

TEST(ShjTest, No64BitHashCollisionFalseMatch) {
  // uint64 x and int64 y hash identically when x == y ^ 0x11 (the int64
  // hash mixes in 0x11), giving a genuine engineered 64-bit collision.
  // The join must bucket them together yet reject the value mismatch.
  Value left_key{uint64_t{0x12}};
  Value right_key{int64_t{3}};
  ASSERT_EQ(left_key.Hash(), right_key.Hash());
  ASSERT_FALSE(left_key == right_key);

  SymmetricHashJoin shj(0, 0);
  EXPECT_TRUE(shj.InsertLeft(Tuple({left_key, Value(uint64_t{1})})).empty());
  EXPECT_TRUE(
      shj.InsertRight(Tuple({right_key, Value(uint64_t{2})})).empty());
  // Equal keys on the colliding bucket still join.
  auto out = shj.InsertRight(Tuple({left_key, Value(uint64_t{3})}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].at(3).AsUint64(), 3u);
}

TEST(ShjTest, ReserveKeepsResultsIdentical) {
  SymmetricHashJoin plain(1, 0), reserved(1, 0);
  reserved.Reserve(64, 64);
  std::vector<Tuple> out_plain, out_reserved;
  for (uint64_t i = 0; i < 64; ++i) {
    auto a = plain.InsertLeft(T2(i, i % 8));
    auto b = reserved.InsertLeft(T2(i, i % 8));
    ASSERT_EQ(a.size(), b.size());
    auto c = plain.InsertRight(T2(i % 8, i));
    auto d = reserved.InsertRight(T2(i % 8, i));
    ASSERT_EQ(c.size(), d.size());
  }
  EXPECT_EQ(plain.left_size(), reserved.left_size());
}

TEST(JoinTableTest, DuplicateHashChainsSurviveGrowth) {
  // Many entries under one hash force probing chains across several slot
  // regrowths; every stored tuple must stay reachable.
  JoinTable table;
  const uint64_t kHash = 0xdeadbeefULL;
  for (uint64_t i = 0; i < 100; ++i) {
    table.Insert(kHash, T2(i, i));
    table.Insert(kHash + 1 + i, T2(900 + i, i));  // interleaved noise
  }
  size_t seen = 0;
  table.ForEachMatch(kHash, [&](const Tuple& t) {
    EXPECT_LT(t.at(0).AsUint64(), 100u);
    ++seen;
  });
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(table.CountHash(kHash), 100u);
  EXPECT_EQ(table.size(), 200u);
}

// Property: streaming SHJ over random insert orders produces exactly the
// same join result as the blocking HashJoin.
class ShjEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShjEquivalence, MatchesHashJoinOnRandomData) {
  Rng rng(GetParam());
  std::vector<Tuple> left, right;
  for (int i = 0; i < 60; ++i) {
    left.push_back(T2(rng.NextBelow(30), rng.NextBelow(10)));
    right.push_back(T2(rng.NextBelow(10), rng.NextBelow(30)));
  }
  // Reference: blocking hash join on left.1 == right.0.
  HashJoin ref(std::make_unique<VectorScan>(left),
               std::make_unique<VectorScan>(right), 1, 0);
  auto expected = Collect(&ref);

  // Streaming: interleave inserts in a random order.
  SymmetricHashJoin shj(1, 0);
  std::vector<Tuple> got;
  size_t li = 0, ri = 0;
  while (li < left.size() || ri < right.size()) {
    bool take_left = ri >= right.size() ||
                     (li < left.size() && rng.NextBernoulli(0.5));
    auto out = take_left ? shj.InsertLeft(left[li++])
                         : shj.InsertRight(right[ri++]);
    got.insert(got.end(), out.begin(), out.end());
  }
  ASSERT_EQ(got.size(), expected.size());
  auto key = [](const Tuple& t) { return t.ToString(); };
  std::multiset<std::string> a, b;
  for (const auto& t : expected) a.insert(key(t));
  for (const auto& t : got) b.insert(key(t));
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShjEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(OpsTest, ComposedPipeline) {
  // SELECT b FROM R JOIN S ON R.b = S.c WHERE S.d > 150 LIMIT 2
  auto left = std::make_unique<VectorScan>(
      MakeRows({{1, 10}, {2, 20}, {3, 30}, {4, 10}}));
  auto right = std::make_unique<VectorScan>(
      MakeRows({{10, 100}, {20, 200}, {30, 300}}));
  auto join = std::make_unique<HashJoin>(std::move(left), std::move(right),
                                         1, 0);
  auto sel = std::make_unique<Selection>(
      std::move(join),
      [](const Tuple& t) { return t.at(3).AsUint64() > 150; });
  auto proj = std::make_unique<Projection>(std::move(sel),
                                           std::vector<size_t>{1});
  Limit lim(std::move(proj), 2);
  auto got = Collect(&lim);
  EXPECT_EQ(got.size(), 2u);
  for (const auto& t : got) EXPECT_EQ(t.arity(), 1u);
}

}  // namespace
}  // namespace pierstack::pier
