// Standing rehash queues: per-destination send buffers must coalesce
// publishes ACROSS PublishBatch calls, flush on size immediately and on
// the flush interval otherwise, and aggregate acks correctly.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dht/builder.h"
#include "pier/node.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  size_t StoredUnder(const std::string& kw) {
    std::set<uint64_t> ids;
    for (auto& pier : piers) {
      for (const Tuple& t : pier->ScanLocal(InvSchema(), Value(kw))) {
        ids.insert(t.at(1).AsUint64());
      }
    }
    return ids.size();
  }
};

TEST(RehashQueueTest, CoalescesAcrossCalls) {
  Cluster c(16);
  // 30 calls of one tuple each, all to the same keyword — the QRS snoop
  // shape. The standing queue must merge them into ONE PutBatch message.
  for (uint64_t f = 0; f < 30; ++f) {
    c.piers[0]->PublishBatch(InvSchema(),
                             {Tuple({Value(std::string("snooped")),
                                     Value(f)})});
  }
  c.simulator.Run();
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  EXPECT_EQ(c.metrics.tuples_published, 30u);
  EXPECT_EQ(c.StoredUnder("snooped"), 30u);
  EXPECT_EQ(c.dht->metrics().batch_puts, 1u);
  EXPECT_EQ(c.dht->metrics().batch_put_values, 30u);
}

TEST(RehashQueueTest, SizeFlushShipsImmediatelyTimeFlushWaits) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 4;
  opts.flush_interval = 200 * sim::kMillisecond;
  c.piers[0]->set_batch_options(opts);

  // Queue "slow" gets 2 tuples (below the size bound): it may only ship on
  // the interval. Queue "fast" gets 4: it must ship at once.
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("slow")), Value(uint64_t{1})}),
                    Tuple({Value(std::string("slow")), Value(uint64_t{2})})});
  std::vector<Tuple> fast;
  for (uint64_t f = 0; f < 4; ++f) {
    fast.push_back(Tuple({Value(std::string("fast")), Value(f)}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(fast));

  // Well before the interval: only the size-triggered flush is visible.
  c.simulator.RunFor(50 * sim::kMillisecond);
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  EXPECT_EQ(c.StoredUnder("fast"), 4u);
  EXPECT_EQ(c.StoredUnder("slow"), 0u);

  // Past the interval: the time-based flush shipped the rest.
  c.simulator.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(c.metrics.publish_messages, 2u);
  EXPECT_EQ(c.StoredUnder("slow"), 2u);
}

TEST(RehashQueueTest, OversizedStreamSplitsByThreshold) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 4;
  c.piers[0]->set_batch_options(opts);
  // 10 tuples to one destination across several calls: 2 size flushes + 1
  // interval flush for the remainder.
  for (uint64_t f = 0; f < 10; ++f) {
    c.piers[0]->PublishBatch(InvSchema(),
                             {Tuple({Value(std::string("solo")), Value(f)})});
  }
  c.simulator.Run();
  EXPECT_EQ(c.metrics.publish_messages, 3u);
  EXPECT_EQ(c.StoredUnder("solo"), 10u);
}

TEST(RehashQueueTest, DifferingExpiryStartsFreshBatch) {
  Cluster c(8);
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("kw")), Value(uint64_t{1})})},
      /*expiry=*/0);
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("kw")), Value(uint64_t{2})})},
      /*expiry=*/10 * sim::kSecond);
  c.simulator.Run();
  // One batch per expiry class; both tuples stored.
  EXPECT_EQ(c.metrics.publish_messages, 2u);
  EXPECT_EQ(c.StoredUnder("kw"), 2u);
}

TEST(RehashQueueTest, AckSpansQueuesAndFiresOnce) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 2;
  c.piers[0]->set_batch_options(opts);
  // 5 tuples over 2 destinations: "a" flushes by size mid-call (2 + 1
  // pending), "b" stays pending — the ack must wait for the in-flight
  // batch AND both interval flushes.
  std::vector<Tuple> tuples;
  for (uint64_t f = 0; f < 3; ++f) {
    tuples.push_back(Tuple({Value(std::string("a")), Value(f)}));
  }
  for (uint64_t f = 0; f < 2; ++f) {
    tuples.push_back(Tuple({Value(std::string("b")), Value(f)}));
  }
  int acks = 0;
  Status last = Status::Internal("never fired");
  c.piers[0]->PublishBatch(InvSchema(), std::move(tuples), 0, [&](Status s) {
    ++acks;
    last = s;
  });
  c.simulator.Run();
  EXPECT_EQ(acks, 1);
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(c.StoredUnder("a"), 3u);
  EXPECT_EQ(c.StoredUnder("b"), 2u);
}

TEST(RehashQueueTest, DirectPublishFlushesQueuedDestinationFirst) {
  // A queued short-expiry publish must ship BEFORE a later direct Publish
  // of the same tuple — otherwise the stale queued expiry would roll back
  // the refresh when the queue flushed.
  Cluster c(8);
  Tuple t({Value(std::string("kw")), Value(uint64_t{1})});
  c.piers[0]->PublishBatch(InvSchema(), {t}, /*expiry=*/100 * sim::kMillisecond);
  c.piers[0]->Publish(InvSchema(), t, /*expiry=*/0);  // refresh: permanent
  c.simulator.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(c.StoredUnder("kw"), 1u);  // survived well past 100ms
}

TEST(RehashQueueTest, ExplicitFlushShipsPendingNow) {
  Cluster c(8);
  c.piers[0]->PublishBatch(InvSchema(),
                           {Tuple({Value(std::string("kw")),
                                   Value(uint64_t{1})})});
  EXPECT_EQ(c.metrics.publish_messages, 0u);  // still queued
  c.piers[0]->FlushPublishQueues();
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  c.simulator.Run();
  EXPECT_EQ(c.StoredUnder("kw"), 1u);
  // The cancelled interval timer must not double-flush.
  EXPECT_EQ(c.metrics.publish_messages, 1u);
}

}  // namespace
}  // namespace pierstack::pier
