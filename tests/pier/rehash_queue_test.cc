// Standing rehash queues: per-destination send buffers must coalesce
// publishes ACROSS PublishBatch calls, flush on size immediately and on
// the flush interval otherwise, and aggregate acks correctly.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "dht/builder.h"
#include "pier/node.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  size_t StoredUnder(const std::string& kw) {
    std::set<uint64_t> ids;
    for (auto& pier : piers) {
      for (const Tuple& t : pier->ScanLocal(InvSchema(), Value(kw))) {
        ids.insert(t.at(1).AsUint64());
      }
    }
    return ids.size();
  }
};

TEST(RehashQueueTest, CoalescesAcrossCalls) {
  Cluster c(16);
  // Fixed-bound policy: the adaptive threshold would ship an eager batch
  // mid-stream; this test pins the pure cross-call coalescing behavior.
  BatchOptions fixed;
  fixed.adaptive_flush = false;
  c.piers[0]->set_batch_options(fixed);
  // 30 calls of one tuple each, all to the same keyword — the QRS snoop
  // shape. The standing queue must merge them into ONE PutBatch message.
  for (uint64_t f = 0; f < 30; ++f) {
    c.piers[0]->PublishBatch(InvSchema(),
                             {Tuple({Value(std::string("snooped")),
                                     Value(f)})});
  }
  c.simulator.Run();
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  EXPECT_EQ(c.metrics.tuples_published, 30u);
  EXPECT_EQ(c.StoredUnder("snooped"), 30u);
  EXPECT_EQ(c.dht->metrics().batch_puts, 1u);
  EXPECT_EQ(c.dht->metrics().batch_put_values, 30u);
}

TEST(RehashQueueTest, SizeFlushShipsImmediatelyTimeFlushWaits) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 4;
  opts.flush_interval = 200 * sim::kMillisecond;
  c.piers[0]->set_batch_options(opts);

  // Queue "slow" gets 2 tuples (below the size bound): it may only ship on
  // the interval. Queue "fast" gets 4: it must ship at once.
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("slow")), Value(uint64_t{1})}),
                    Tuple({Value(std::string("slow")), Value(uint64_t{2})})});
  std::vector<Tuple> fast;
  for (uint64_t f = 0; f < 4; ++f) {
    fast.push_back(Tuple({Value(std::string("fast")), Value(f)}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(fast));

  // Well before the interval: only the size-triggered flush is visible.
  c.simulator.RunFor(50 * sim::kMillisecond);
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  EXPECT_EQ(c.StoredUnder("fast"), 4u);
  EXPECT_EQ(c.StoredUnder("slow"), 0u);

  // Past the interval: the time-based flush shipped the rest.
  c.simulator.RunFor(300 * sim::kMillisecond);
  EXPECT_EQ(c.metrics.publish_messages, 2u);
  EXPECT_EQ(c.StoredUnder("slow"), 2u);
}

TEST(RehashQueueTest, OversizedStreamSplitsByThreshold) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 4;
  c.piers[0]->set_batch_options(opts);
  // 10 tuples to one destination across several calls: 2 size flushes + 1
  // interval flush for the remainder.
  for (uint64_t f = 0; f < 10; ++f) {
    c.piers[0]->PublishBatch(InvSchema(),
                             {Tuple({Value(std::string("solo")), Value(f)})});
  }
  c.simulator.Run();
  EXPECT_EQ(c.metrics.publish_messages, 3u);
  EXPECT_EQ(c.StoredUnder("solo"), 10u);
}

TEST(RehashQueueTest, DifferingExpiryStartsFreshBatch) {
  Cluster c(8);
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("kw")), Value(uint64_t{1})})},
      /*expiry=*/0);
  c.piers[0]->PublishBatch(
      InvSchema(), {Tuple({Value(std::string("kw")), Value(uint64_t{2})})},
      /*expiry=*/10 * sim::kSecond);
  c.simulator.Run();
  // One batch per expiry class; both tuples stored.
  EXPECT_EQ(c.metrics.publish_messages, 2u);
  EXPECT_EQ(c.StoredUnder("kw"), 2u);
}

TEST(RehashQueueTest, AckSpansQueuesAndFiresOnce) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 2;
  c.piers[0]->set_batch_options(opts);
  // 5 tuples over 2 destinations: "a" flushes by size mid-call (2 + 1
  // pending), "b" stays pending — the ack must wait for the in-flight
  // batch AND both interval flushes.
  std::vector<Tuple> tuples;
  for (uint64_t f = 0; f < 3; ++f) {
    tuples.push_back(Tuple({Value(std::string("a")), Value(f)}));
  }
  for (uint64_t f = 0; f < 2; ++f) {
    tuples.push_back(Tuple({Value(std::string("b")), Value(f)}));
  }
  int acks = 0;
  Status last = Status::Internal("never fired");
  c.piers[0]->PublishBatch(InvSchema(), std::move(tuples), 0, [&](Status s) {
    ++acks;
    last = s;
  });
  c.simulator.Run();
  EXPECT_EQ(acks, 1);
  EXPECT_TRUE(last.ok());
  EXPECT_EQ(c.StoredUnder("a"), 3u);
  EXPECT_EQ(c.StoredUnder("b"), 2u);
}

TEST(RehashQueueTest, DirectPublishFlushesQueuedDestinationFirst) {
  // A queued short-expiry publish must ship BEFORE a later direct Publish
  // of the same tuple — otherwise the stale queued expiry would roll back
  // the refresh when the queue flushed.
  Cluster c(8);
  Tuple t({Value(std::string("kw")), Value(uint64_t{1})});
  c.piers[0]->PublishBatch(InvSchema(), {t}, /*expiry=*/100 * sim::kMillisecond);
  c.piers[0]->Publish(InvSchema(), t, /*expiry=*/0);  // refresh: permanent
  c.simulator.RunUntil(5 * sim::kSecond);
  EXPECT_EQ(c.StoredUnder("kw"), 1u);  // survived well past 100ms
}

// --- Load-adaptive flush policy ---------------------------------------------

TEST(AdaptiveFlushTest, IdleDestinationFlushesEagerly) {
  Cluster c(16);
  BatchOptions opts;
  opts.min_batch_tuples = 8;
  opts.flush_interval = 500 * sim::kMillisecond;
  c.piers[0]->set_batch_options(opts);
  // Nothing in flight toward the destination: the 8th tuple must ship
  // immediately instead of waiting for 256 tuples or the 500ms timer.
  for (uint64_t f = 0; f < 8; ++f) {
    c.piers[0]->PublishBatch(InvSchema(),
                             {Tuple({Value(std::string("eager")), Value(f)})});
  }
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  EXPECT_EQ(c.metrics.adaptive_flushes, 1u);
  c.simulator.Run();
  EXPECT_EQ(c.StoredUnder("eager"), 8u);
}

TEST(AdaptiveFlushTest, PressureGrowsBatchesTowardCeiling) {
  Cluster c(16);
  BatchOptions opts;
  opts.min_batch_tuples = 8;
  c.piers[0]->set_batch_options(opts);
  // 64 tuples to one destination in one burst. The first flush goes out at
  // 8 (idle path); each flush left in flight doubles the threshold, so the
  // burst ships as exponentially growing batches (8, 16, 32, ...) instead
  // of 8 fixed-size ones — slow-start-shaped adaptation.
  std::vector<Tuple> burst;
  for (uint64_t f = 0; f < 64; ++f) {
    burst.push_back(Tuple({Value(std::string("busy")), Value(f)}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(burst));
  // 8 + 16 + 32 = 56 shipped in 3 growing batches; 8 await the timer.
  EXPECT_EQ(c.metrics.publish_messages, 3u);
  c.simulator.Run();
  EXPECT_EQ(c.metrics.publish_messages, 4u);
  EXPECT_EQ(c.StoredUnder("busy"), 64u);
}

TEST(AdaptiveFlushTest, CeilingConstantsStillBound) {
  Cluster c(16);
  BatchOptions opts;
  opts.min_batch_tuples = 8;
  opts.max_batch_tuples = 16;  // ceiling below the adaptive ramp
  c.piers[0]->set_batch_options(opts);
  std::vector<Tuple> burst;
  for (uint64_t f = 0; f < 40; ++f) {
    burst.push_back(Tuple({Value(std::string("capped")), Value(f)}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(burst));
  c.simulator.Run();
  // 8, then capped at 16 per batch: 8 + 16 + 16 = 40 -> 3 messages, and
  // only the first was an adaptive (below-ceiling) flush.
  EXPECT_EQ(c.metrics.publish_messages, 3u);
  EXPECT_EQ(c.metrics.adaptive_flushes, 1u);
  EXPECT_EQ(c.StoredUnder("capped"), 40u);
}

TEST(AdaptiveFlushTest, AdaptiveAndFixedStoreIdenticalState) {
  Cluster adaptive(16), fixed(16);
  BatchOptions fopts;
  fopts.adaptive_flush = false;
  fixed.piers[0]->set_batch_options(fopts);
  for (Cluster* c : {&adaptive, &fixed}) {
    for (uint64_t f = 0; f < 120; ++f) {
      c->piers[0]->PublishBatch(
          InvSchema(),
          {Tuple({Value("kw" + std::to_string(f % 5)), Value(f)})});
    }
    c->simulator.Run();
  }
  for (int k = 0; k < 5; ++k) {
    std::string kw = "kw" + std::to_string(k);
    EXPECT_EQ(adaptive.StoredUnder(kw), fixed.StoredUnder(kw)) << kw;
    EXPECT_EQ(adaptive.StoredUnder(kw), 24u) << kw;
  }
  // The policy changes message pacing, never the stored tuples.
  EXPECT_EQ(adaptive.metrics.tuples_published,
            fixed.metrics.tuples_published);
  EXPECT_GT(adaptive.metrics.adaptive_flushes, 0u);
  EXPECT_EQ(fixed.metrics.adaptive_flushes, 0u);
}

TEST(RehashQueueTest, ExplicitFlushShipsPendingNow) {
  Cluster c(8);
  c.piers[0]->PublishBatch(InvSchema(),
                           {Tuple({Value(std::string("kw")),
                                   Value(uint64_t{1})})});
  EXPECT_EQ(c.metrics.publish_messages, 0u);  // still queued
  c.piers[0]->FlushPublishQueues();
  EXPECT_EQ(c.metrics.publish_messages, 1u);
  c.simulator.Run();
  EXPECT_EQ(c.StoredUnder("kw"), 1u);
  // The cancelled interval timer must not double-flush.
  EXPECT_EQ(c.metrics.publish_messages, 1u);
}

}  // namespace
}  // namespace pierstack::pier
