#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "pier/ops.h"

namespace pierstack::pier {
namespace {

std::vector<Tuple> Rows(
    std::initializer_list<std::pair<uint64_t, uint64_t>> rows) {
  std::vector<Tuple> out;
  for (auto [a, b] : rows) out.push_back(Tuple({Value(a), Value(b)}));
  return out;
}

std::vector<Tuple> RunGroupBy(std::vector<Tuple> input,
                              std::vector<size_t> group_cols,
                              std::vector<AggregateSpec> aggs) {
  GroupByAggregate op(std::make_unique<VectorScan>(std::move(input)),
                      std::move(group_cols), std::move(aggs));
  auto got = Collect(&op);
  std::sort(got.begin(), got.end(), [](const Tuple& a, const Tuple& b) {
    return a.at(0).ToString() < b.at(0).ToString();
  });
  return got;
}

TEST(GroupByTest, CountPerGroup) {
  auto got = RunGroupBy(Rows({{1, 10}, {1, 20}, {2, 30}}), {0},
                        {{AggregateSpec::kCount, 0}});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 1u);
  EXPECT_EQ(got[0].at(1).AsUint64(), 2u);
  EXPECT_EQ(got[1].at(0).AsUint64(), 2u);
  EXPECT_EQ(got[1].at(1).AsUint64(), 1u);
}

TEST(GroupByTest, SumMinMax) {
  auto got = RunGroupBy(Rows({{1, 10}, {1, 30}, {1, 20}}), {0},
                        {{AggregateSpec::kSum, 1},
                         {AggregateSpec::kMin, 1},
                         {AggregateSpec::kMax, 1}});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].at(1).AsDouble(), 60.0);
  EXPECT_DOUBLE_EQ(got[0].at(2).AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(got[0].at(3).AsDouble(), 30.0);
}

TEST(GroupByTest, Average) {
  auto got = RunGroupBy(Rows({{7, 10}, {7, 20}}), {0},
                        {{AggregateSpec::kAvg, 1}});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].at(1).AsDouble(), 15.0);
}

TEST(GroupByTest, EmptyInputNoGroups) {
  auto got = RunGroupBy({}, {0}, {{AggregateSpec::kCount, 0}});
  EXPECT_TRUE(got.empty());
}

TEST(GroupByTest, GlobalAggregateWithNoGroupCols) {
  GroupByAggregate op(
      std::make_unique<VectorScan>(Rows({{1, 5}, {2, 6}, {3, 7}})), {},
      {{AggregateSpec::kCount, 0}, {AggregateSpec::kSum, 1}});
  auto got = Collect(&op);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 3u);
  EXPECT_DOUBLE_EQ(got[0].at(1).AsDouble(), 18.0);
}

TEST(GroupByTest, StringGroupKeys) {
  std::vector<Tuple> input;
  for (const char* artist : {"abba", "abba", "beatles"}) {
    input.push_back(Tuple({Value(std::string(artist)), Value(uint64_t{1})}));
  }
  auto got = RunGroupBy(std::move(input), {0}, {{AggregateSpec::kCount, 0}});
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].at(0).AsString(), "abba");
  EXPECT_EQ(got[0].at(1).AsUint64(), 2u);
}

TEST(GroupByTest, MultiColumnKeys) {
  std::vector<Tuple> input{
      Tuple({Value(uint64_t{1}), Value(uint64_t{1}), Value(uint64_t{100})}),
      Tuple({Value(uint64_t{1}), Value(uint64_t{2}), Value(uint64_t{200})}),
      Tuple({Value(uint64_t{1}), Value(uint64_t{1}), Value(uint64_t{300})}),
  };
  GroupByAggregate op(std::make_unique<VectorScan>(std::move(input)), {0, 1},
                      {{AggregateSpec::kSum, 2}});
  auto got = Collect(&op);
  EXPECT_EQ(got.size(), 2u);
}

TEST(GroupByTest, ComposesWithSelectionAndLimit) {
  // COUNT(*) of values > 15, grouped by key, limit 1 group.
  auto scan = std::make_unique<VectorScan>(
      Rows({{1, 10}, {1, 20}, {2, 30}, {2, 5}}));
  auto sel = std::make_unique<Selection>(
      std::move(scan),
      [](const Tuple& t) { return t.at(1).AsUint64() > 15; });
  auto agg = std::make_unique<GroupByAggregate>(
      std::move(sel), std::vector<size_t>{0},
      std::vector<AggregateSpec>{{AggregateSpec::kCount, 0}});
  Limit lim(std::move(agg), 1);
  EXPECT_EQ(Collect(&lim).size(), 1u);
}

TEST(GroupByTest, ReopenRecomputes) {
  GroupByAggregate op(std::make_unique<VectorScan>(Rows({{1, 1}, {1, 2}})),
                      {0}, {{AggregateSpec::kCount, 0}});
  EXPECT_EQ(Collect(&op).size(), 1u);
  EXPECT_EQ(Collect(&op).size(), 1u);  // Collect reopens
}

}  // namespace
}  // namespace pierstack::pier
