#include "pier/value.h"

#include <gtest/gtest.h>

#include "pier/schema.h"

namespace pierstack::pier {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value(uint64_t{7}).type(), ValueType::kUint64);
  EXPECT_EQ(Value(int64_t{-7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value(std::string("x")).type(), ValueType::kString);
  EXPECT_EQ(Value(uint64_t{7}).AsUint64(), 7u);
  EXPECT_EQ(Value(int64_t{-7}).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value(std::string("x")).AsString(), "x");
  EXPECT_TRUE(Value(std::string("x")).is_string());
  EXPECT_FALSE(Value(uint64_t{1}).is_string());
}

TEST(ValueTest, EqualityIsTypeAware) {
  EXPECT_EQ(Value(uint64_t{1}), Value(uint64_t{1}));
  EXPECT_NE(Value(uint64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(std::string("1")), Value(uint64_t{1}));
}

TEST(ValueTest, HashStableAndDiscriminating) {
  EXPECT_EQ(Value(std::string("madonna")).Hash(),
            Value(std::string("madonna")).Hash());
  EXPECT_NE(Value(std::string("madonna")).Hash(),
            Value(std::string("prayer")).Hash());
  EXPECT_NE(Value(uint64_t{5}).Hash(), Value(uint64_t{6}).Hash());
}

TEST(ValueTest, SerializeRoundTrip) {
  std::vector<Value> values{Value(uint64_t{123456789}), Value(int64_t{-5}),
                            Value(3.25), Value(std::string("hello world"))};
  BytesWriter w;
  for (const auto& v : values) v.SerializeTo(&w);
  BytesReader r(w.data());
  for (const auto& v : values) {
    auto got = Value::Deserialize(&r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(ValueTest, WireSizeMatchesSerialization) {
  for (const Value& v :
       {Value(uint64_t{0}), Value(uint64_t{1} << 40),
        Value(std::string("abcdef")), Value(1.5), Value(int64_t{9})}) {
    BytesWriter w;
    v.SerializeTo(&w);
    EXPECT_EQ(w.size(), v.WireSize()) << v.ToString();
  }
}

TEST(TupleTest, SerializeRoundTrip) {
  Tuple t({Value(uint64_t{42}), Value(std::string("file.mp3")),
           Value(uint64_t{1024})});
  auto bytes = t.Serialize();
  EXPECT_EQ(bytes.size(), t.WireSize());
  auto back = Tuple::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), t);
}

TEST(TupleTest, DeserializeCorruptFails) {
  std::vector<uint8_t> junk{0x03, 0xff, 0xff};
  EXPECT_FALSE(Tuple::Deserialize(junk).ok());
}

TEST(SchemaTest, FieldLookupAndIndexValue) {
  Schema s("t", {{"a", ValueType::kUint64}, {"b", ValueType::kString}}, 1);
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.FieldIndex("a"), 0u);
  EXPECT_EQ(s.FieldIndex("b"), 1u);
  Tuple t({Value(uint64_t{1}), Value(std::string("key"))});
  EXPECT_EQ(t.IndexValue(s).AsString(), "key");
}

TEST(TupleTest, ToStringRendersFields) {
  Tuple t({Value(uint64_t{1}), Value(std::string("x"))});
  EXPECT_EQ(t.ToString(), "(1, x)");
}

}  // namespace
}  // namespace pierstack::pier
