// Tuple/Value::Materialize: a compacted copy must stop pinning the batch
// decode arena (columns and string blob) while staying value-equal.
#include <gtest/gtest.h>

#include "pier/tuple_batch.h"

namespace pierstack::pier {
namespace {

TupleBatch DecodedPostingBatch(size_t n) {
  TupleBatch batch;
  for (uint64_t i = 0; i < n; ++i) {
    batch.Add(Tuple({Value(std::string("keyword")), Value(i),
                     Value("some track " + std::to_string(i) + ".mp3")}));
  }
  auto image = batch.Serialize();
  auto decoded = TupleBatch::Deserialize(image);
  EXPECT_TRUE(decoded.ok());
  return std::move(decoded).value();
}

TEST(MaterializeTest, CopyLeavesSharedArena) {
  TupleBatch batch = DecodedPostingBatch(64);
  const Tuple& slice = batch[10];
  Tuple compact = slice.Materialize();

  // Value equality holds...
  EXPECT_EQ(compact, slice);
  ASSERT_EQ(compact.arity(), 3u);
  EXPECT_EQ(compact.at(0).AsString(), "keyword");
  EXPECT_EQ(compact.at(1).AsUint64(), 10u);

  // ...but the compacted row owns fresh storage: neither the column arena
  // nor the batch string blob is referenced anymore.
  EXPECT_NE(compact.payload(), slice.payload());
  EXPECT_NE(compact.at(0).string_owner(), slice.at(0).string_owner());
  EXPECT_NE(compact.at(2).string_owner(), slice.at(2).string_owner());
}

TEST(MaterializeTest, ArenaReleasedWhenSlicesDropped) {
  Tuple kept;
  std::weak_ptr<const std::vector<Value>> arena;
  {
    TupleBatch batch = DecodedPostingBatch(64);
    arena = batch[0].payload();
    kept = batch[5].Materialize();
  }
  // All slices are gone; only the materialized copy survives — the shared
  // decode arena must have been freed.
  EXPECT_TRUE(arena.expired());
  EXPECT_EQ(kept.at(1).AsUint64(), 5u);
}

TEST(MaterializeTest, NonStringValuesPassThrough) {
  Value v(uint64_t{42});
  EXPECT_EQ(v.Materialize(), v);
  Value d(3.5);
  EXPECT_EQ(d.Materialize(), d);
  EXPECT_EQ(Tuple().Materialize().arity(), 0u);
}

TEST(MaterializeTest, SubTupleSharesThenMaterializeDetaches) {
  TupleBatch batch = DecodedPostingBatch(8);
  Tuple payload = batch[3].SubTuple(1);
  ASSERT_EQ(payload.arity(), 2u);
  EXPECT_EQ(payload.at(0).AsUint64(), 3u);
  EXPECT_EQ(payload.payload(), batch[3].payload());  // shares the arena
  Tuple detached = payload.Materialize();
  EXPECT_EQ(detached, payload);
  EXPECT_NE(detached.payload(), payload.payload());
}

}  // namespace
}  // namespace pierstack::pier
