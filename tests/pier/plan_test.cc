// QueryPlan / Expr wire round-trips and plan-level passes: randomized
// plans (including Expr trees) must survive serialize→deserialize with
// structural equality, truncated images must fail cleanly, and the
// builder / cost stub / posting-size rewrite must behave on the shapes
// the search engine compiles.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pier/plan.h"
#include "pier/plan_exec.h"

namespace pierstack::pier {
namespace {

Value RandomValue(Rng* rng) {
  switch (rng->NextBelow(4)) {
    case 0:
      return Value(rng->Next());
    case 1:
      return Value(static_cast<int64_t>(rng->Next()) >> 3);
    case 2:
      return Value(rng->NextDouble() * 1e6);
    default: {
      std::string s;
      size_t len = rng->NextBelow(12);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->NextBelow(26)));
      }
      return Value(std::move(s));
    }
  }
}

Expr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBelow(3) == 0) {
    switch (rng->NextBelow(3)) {
      case 0:
        return Expr::Column(rng->NextBelow(6));
      case 1:
        return Expr::Literal(RandomValue(rng));
      default:
        return Expr::True();
    }
  }
  switch (rng->NextBelow(6)) {
    case 0:
      return Expr::Compare(
          static_cast<Expr::Kind>(
              static_cast<int>(Expr::Kind::kEq) + rng->NextBelow(6)),
          RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 1: {
      std::vector<Expr> kids;
      size_t n = 2 + rng->NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        kids.push_back(RandomExpr(rng, depth - 1));
      }
      return Expr::And(std::move(kids));
    }
    case 2: {
      std::vector<Expr> kids;
      size_t n = 2 + rng->NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        kids.push_back(RandomExpr(rng, depth - 1));
      }
      return Expr::Or(std::move(kids));
    }
    case 3:
      return Expr::Not(RandomExpr(rng, depth - 1));
    default:
      return Expr::Contains(RandomExpr(rng, depth - 1),
                            "needle" + std::to_string(rng->NextBelow(100)));
  }
}

QueryPlan RandomPlan(Rng* rng) {
  PlanBuilder b;
  b.IndexScan("ns" + std::to_string(rng->NextBelow(4)), RandomValue(rng),
              rng->NextBelow(3), rng->NextBelow(3));
  if (rng->NextBernoulli(0.5)) b.Filter(RandomExpr(rng, 3));
  if (rng->NextBernoulli(0.4)) {
    b.Project({static_cast<uint32_t>(rng->NextBelow(4)),
               static_cast<uint32_t>(rng->NextBelow(4))});
  }
  size_t joins = rng->NextBelow(3);
  for (size_t i = 0; i < joins; ++i) {
    b.RehashJoin("inv", RandomValue(rng), 0, 1 + rng->NextBelow(2));
  }
  if (rng->NextBernoulli(0.3)) {
    b.GroupAggregate(
        {0}, {AggregateSpec{AggregateSpec::kCount, 0},
              AggregateSpec{static_cast<AggregateSpec::Kind>(
                                rng->NextBelow(5)),
                            rng->NextBelow(3)}});
  }
  if (rng->NextBernoulli(0.4)) b.FetchJoin("item", rng->NextBelow(2));
  if (rng->NextBernoulli(0.5)) {
    b.TopK(rng->NextBelow(4), 1 + rng->NextBelow(20),
           rng->NextBernoulli(0.5));
  }
  if (rng->NextBernoulli(0.7)) b.Limit(1 + rng->NextBelow(500));
  return b.Build();
}

TEST(PlanWireTest, RandomizedPlansRoundTripStructurally) {
  Rng rng(20260729);
  for (int i = 0; i < 500; ++i) {
    QueryPlan plan = RandomPlan(&rng);
    std::vector<uint8_t> image = plan.Serialize();
    EXPECT_EQ(image.size(), plan.WireSize());
    auto back = QueryPlan::Deserialize(image);
    ASSERT_TRUE(back.ok()) << back.status().ToString() << " at iter " << i;
    EXPECT_EQ(plan, back.value()) << "iter " << i;
    // Round-tripping the round-trip is a fixed point.
    EXPECT_EQ(back.value().Serialize(), image);
  }
}

TEST(PlanWireTest, RandomizedExprsRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    Expr e = RandomExpr(&rng, 4);
    BytesWriter w;
    e.SerializeTo(&w);
    EXPECT_EQ(w.size(), e.WireSize());
    std::vector<uint8_t> image = w.Take();
    BytesReader r(image);
    auto back = Expr::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(e, back.value()) << e.ToString();
  }
}

TEST(PlanWireTest, TruncatedImagesFailCleanly) {
  Rng rng(5);
  QueryPlan plan = RandomPlan(&rng);
  std::vector<uint8_t> image = plan.Serialize();
  for (size_t cut = 0; cut < image.size(); cut += 3) {
    std::vector<uint8_t> prefix(image.begin(),
                                image.begin() + static_cast<long>(cut));
    auto r = QueryPlan::Deserialize(prefix);
    // Must not crash; almost every prefix must fail. (A prefix that still
    // parses as a smaller plan is acceptable only if it differs.)
    if (r.ok()) {
      EXPECT_NE(r.value(), plan);
    }
  }
}

TEST(PlanWireTest, ExprEvalSemantics) {
  Tuple t({Value(uint64_t{42}), Value(std::string("Dark Side MOON.mp3")),
           Value(int64_t{-5})});
  EXPECT_TRUE(Expr::Eq(Expr::Column(0), Expr::Literal(Value(uint64_t{42})))
                  .Matches(t));
  EXPECT_TRUE(Expr::Contains(Expr::Column(1), "moon").Matches(t));
  EXPECT_FALSE(Expr::Contains(Expr::Column(1), "vogue").Matches(t));
  EXPECT_TRUE(Expr::Lt(Expr::Column(2), Expr::Literal(Value(uint64_t{0})))
                  .Matches(t));  // cross-type numeric compare widens
  EXPECT_TRUE(Expr::And({Expr::Contains(Expr::Column(1), "dark"),
                         Expr::Contains(Expr::Column(1), "side")})
                  .Matches(t));
  EXPECT_TRUE(Expr::Not(Expr::Contains(Expr::Column(1), "zanzibar"))
                  .Matches(t));
  // Out-of-range columns and type confusion filter, not crash.
  EXPECT_FALSE(Expr::Contains(Expr::Column(9), "x").Matches(t));
  EXPECT_FALSE(Expr::Eq(Expr::Column(0), Expr::Literal(Value("42")))
                   .Matches(t));
}

TEST(PlanCompileTest, SearchShapesCompile) {
  // The distributed-join shape: chain of scans, fetch, limit.
  QueryPlan dj = PlanBuilder()
                     .IndexScan("inverted", Value("madonna"))
                     .RehashJoin("inverted", Value("prayer"))
                     .FetchJoin("item")
                     .Limit(100)
                     .Build();
  auto cdj = CompilePlan(dj);
  ASSERT_TRUE(cdj.ok()) << cdj.status().ToString();
  EXPECT_EQ(cdj.value().staged.stages.size(), 2u);
  EXPECT_TRUE(cdj.value().fetch);
  EXPECT_EQ(cdj.value().fetch_ns, "item");
  EXPECT_EQ(cdj.value().limit, 100u);
  EXPECT_TRUE(cdj.value().staged.cap_results);

  // The inverted-cache shape: filter + projection push down to the site.
  QueryPlan ic = PlanBuilder()
                     .IndexScan("inverted_cache", Value("madonna"))
                     .Filter(Expr::Contains(Expr::Column(2), "prayer"))
                     .Project({1, 2})
                     .Limit(50)
                     .Build();
  auto cic = CompilePlan(ic);
  ASSERT_TRUE(cic.ok()) << cic.status().ToString();
  ASSERT_EQ(cic.value().staged.stages.size(), 1u);
  const ExecStage& stage = cic.value().staged.stages[0];
  EXPECT_FALSE(stage.filter.is_true());
  EXPECT_EQ(stage.payload_cols, (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(cic.value().entry_ops.empty());

  // A TopK above the fetch keeps the full surviving set flowing.
  QueryPlan topk = PlanBuilder()
                       .IndexScan("inverted", Value("madonna"))
                       .RehashJoin("inverted", Value("prayer"))
                       .FetchJoin("item")
                       .TopK(2, 10)
                       .Build();
  auto ctopk = CompilePlan(topk);
  ASSERT_TRUE(ctopk.ok()) << ctopk.status().ToString();
  EXPECT_FALSE(ctopk.value().staged.cap_results);
  EXPECT_EQ(ctopk.value().tuple_ops.size(), 1u);

  // Unsupported shape: a blocking operator feeding a distributed join.
  QueryPlan bad = PlanBuilder()
                      .IndexScan("inverted", Value("a"))
                      .TopK(0, 3)
                      .RehashJoin("inverted", Value("b"))
                      .Build();
  EXPECT_FALSE(CompilePlan(bad).ok());
  EXPECT_FALSE(CompilePlan(QueryPlan{}).ok());
}

TEST(PlanRewriteTest, ChainReordersSmallestFirst) {
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("huge"))
                       .RehashJoin("inverted", Value("tiny"))
                       .RehashJoin("inverted", Value("middling"))
                       .FetchJoin("item")
                       .Limit(10)
                       .Build();
  std::map<std::string, size_t> sizes{
      {"huge", 900}, {"tiny", 3}, {"middling", 40}};
  EXPECT_TRUE(ReorderByPostingSize(
      &plan, [&](const std::string&, const Value& key) {
        return sizes.at(std::string(key.AsString()));
      }));
  auto compiled = CompilePlan(plan);
  ASSERT_TRUE(compiled.ok());
  const auto& stages = compiled.value().staged.stages;
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].key.AsString(), "tiny");
  EXPECT_EQ(stages[1].key.AsString(), "middling");
  EXPECT_EQ(stages[2].key.AsString(), "huge");
  // Probe targets are exactly the chain keys.
  EXPECT_EQ(CollectProbeTargets(plan).size(), 3u);
}

TEST(PlanRewriteTest, SingleSiteRerootsAtCheapestTerm) {
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted_cache", Value("popular"))
                       .Filter(Expr::And(
                           {Expr::Contains(Expr::Column(2), "gemstone"),
                            Expr::Contains(Expr::Column(2), "vault")}))
                       .Project({1, 2})
                       .Build();
  std::map<std::string, size_t> sizes{
      {"popular", 500}, {"gemstone", 2}, {"vault", 60}};
  auto size_of = [&](const std::string&, const Value& key) {
    return sizes.at(std::string(key.AsString()));
  };
  EXPECT_EQ(CollectProbeTargets(plan).size(), 3u);
  EXPECT_TRUE(ReorderByPostingSize(&plan, size_of));
  auto compiled = CompilePlan(plan);
  ASSERT_TRUE(compiled.ok());
  const ExecStage& stage = compiled.value().staged.stages[0];
  EXPECT_EQ(stage.key.AsString(), "gemstone");
  // The displaced key became a Contains term: both remaining terms filter.
  Tuple hit({Value("gemstone"), Value(uint64_t{1}),
             Value("popular gemstone vault.mp3")});
  Tuple miss({Value("gemstone"), Value(uint64_t{2}),
              Value("gemstone vault only.mp3")});
  EXPECT_TRUE(stage.filter.Matches(hit));
  EXPECT_FALSE(stage.filter.Matches(miss));
  // Already-optimal plans are untouched.
  EXPECT_FALSE(ReorderByPostingSize(&plan, size_of));
}

TEST(PlanCompileTest, InnerLimitStaysPositional) {
  // Limit BELOW TopK cuts the rows TopK sees; only an outermost Limit is
  // hoisted into the staged answer cap.
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inv", Value("a"))
                       .Limit(10)
                       .TopK(0, 5)
                       .Build();
  auto compiled = CompilePlan(plan);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled.value().entry_ops.size(), 2u);
  EXPECT_EQ(compiled.value().entry_ops[0].kind, LocalOpSpec::Kind::kLimit);
  EXPECT_EQ(compiled.value().entry_ops[1].kind, LocalOpSpec::Kind::kTopK);
  EXPECT_EQ(compiled.value().limit, SIZE_MAX);
  EXPECT_FALSE(compiled.value().staged.cap_results);
  // Semantics through the operators: top-2 of the FIRST 3 rows.
  std::vector<Tuple> rows;
  for (uint64_t v : {5, 1, 4, 9, 8}) {
    rows.push_back(Tuple({Value(v)}));
  }
  LocalOpSpec limit3;
  limit3.kind = LocalOpSpec::Kind::kLimit;
  limit3.n = 3;
  LocalOpSpec top2;
  top2.kind = LocalOpSpec::Kind::kTopK;
  top2.sort_col = 0;
  top2.n = 2;
  std::vector<Tuple> out = ApplyLocalOps(rows, {limit3, top2});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].at(0).AsUint64(), 5u);
  EXPECT_EQ(out[1].at(0).AsUint64(), 4u);
}

TEST(PlanRewriteTest, HeterogeneousChainIsNotPermuted) {
  // Scans over different tables (or column layouts) must never trade
  // keys: a key moved onto another namespace would scan a table it was
  // never published to.
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("huge"))
                       .RehashJoin("other_table", Value("tiny"))
                       .Build();
  std::map<std::string, size_t> sizes{{"huge", 900}, {"tiny", 3}};
  EXPECT_FALSE(ReorderByPostingSize(
      &plan, [&](const std::string&, const Value& key) {
        return sizes.at(std::string(key.AsString()));
      }));
  auto compiled = CompilePlan(plan);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled.value().staged.stages[0].ns, "inverted");
  EXPECT_EQ(compiled.value().staged.stages[0].key.AsString(), "huge");
}

TEST(PlanWireTest, CyclicImagesAreRejected) {
  // Hand-encode two filter nodes pointing at each other: in-range children
  // but a cycle — the decoder must refuse rather than hand the compiler an
  // unterminating walk.
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inv", Value("a"))
                       .Filter(Expr::True())
                       .Filter(Expr::True())
                       .Build();
  plan.nodes[1].children = {2};  // 1 <-> 2
  std::vector<uint8_t> image = plan.Serialize();
  EXPECT_FALSE(QueryPlan::Deserialize(image).ok());
}

TEST(PlanCostTest, EstimateTracksChainOrder) {
  std::map<std::string, size_t> sizes{{"a", 1000}, {"b", 5}};
  auto size_of = [&](const std::string&, const Value& key) {
    return sizes.at(std::string(key.AsString()));
  };
  QueryPlan costly = PlanBuilder()
                         .IndexScan("inv", Value("a"))
                         .RehashJoin("inv", Value("b"))
                         .Build();
  QueryPlan cheap = PlanBuilder()
                        .IndexScan("inv", Value("b"))
                        .RehashJoin("inv", Value("a"))
                        .Build();
  PlanCostEstimate big = EstimatePlanCost(costly, size_of);
  PlanCostEstimate small = EstimatePlanCost(cheap, size_of);
  EXPECT_EQ(big.entries_shipped, 1000u);
  EXPECT_EQ(small.entries_shipped, 5u);
  EXPECT_EQ(big.stage_messages, 2u);
  EXPECT_GT(big.entries_shipped, small.entries_shipped);
}

}  // namespace
}  // namespace pierstack::pier
