// TupleBatch: the batched wire format and its one-shot arena decoder.
#include "pier/tuple_batch.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace pierstack::pier {
namespace {

Tuple PostingTuple(uint64_t i) {
  return Tuple({Value(std::string("madonna")), Value(i),
                Value("madonna track " + std::to_string(i) + ".mp3"),
                Value(uint64_t{4 << 20})});
}

TEST(TupleBatchTest, RoundTripAllValueTypes) {
  TupleBatch batch;
  batch.Add(Tuple({Value(uint64_t{0}), Value(UINT64_MAX)}));
  batch.Add(Tuple({Value(int64_t{-42}), Value(int64_t{7})}));
  batch.Add(Tuple({Value(3.25), Value(-0.0), Value(1e300)}));
  batch.Add(Tuple({Value(std::string("")), Value(std::string("keyword")),
                   Value(std::string(300, 'x'))}));
  batch.Add(Tuple());  // zero-arity row
  batch.Add(Tuple({Value(uint64_t{1}), Value(std::string("mixed")),
                   Value(2.5), Value(int64_t{-1})}));

  auto image = batch.Serialize();
  EXPECT_EQ(image.size(), batch.WireSize());
  auto back = TupleBatch::Deserialize(image);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(back.value()[i], batch[i]) << "tuple " << i;
  }
}

TEST(TupleBatchTest, EmptyBatch) {
  TupleBatch empty;
  auto image = empty.Serialize();
  EXPECT_EQ(image.size(), 1u);  // just the count varint
  auto back = TupleBatch::Deserialize(image);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TupleBatchTest, TruncatedBytesAreCorrupt) {
  TupleBatch batch;
  for (uint64_t i = 0; i < 4; ++i) batch.Add(PostingTuple(i));
  auto image = batch.Serialize();
  for (size_t cut = 0; cut < image.size(); ++cut) {
    auto r = TupleBatch::Deserialize(image.data(), cut);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(TupleBatchTest, TrailingBytesAreCorrupt) {
  TupleBatch batch;
  batch.Add(PostingTuple(1));
  auto image = batch.Serialize();
  image.push_back(0x00);
  auto r = TupleBatch::Deserialize(image);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(TupleBatchTest, LossyDecodeSalvagesPrefixAndCountsDrops) {
  TupleBatch batch;
  for (uint64_t i = 0; i < 10; ++i) batch.Add(PostingTuple(i));
  auto image = batch.Serialize();
  // Clean image: nothing dropped.
  size_t dropped = SIZE_MAX;
  auto clean = TupleBatch::DeserializeLossy(image, &dropped);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(clean.size(), 10u);
  // Truncated image: the decodable prefix survives, the tail is counted.
  size_t cut = image.size() / 2;
  auto salvaged =
      TupleBatch::DeserializeLossy(image.data(), cut, &dropped);
  EXPECT_GT(dropped, 0u);
  EXPECT_EQ(salvaged.size() + dropped, 10u);
  for (size_t i = 0; i < salvaged.size(); ++i) {
    EXPECT_EQ(salvaged[i], batch[i]);
  }
}

TEST(TupleBatchTest, DecodedStringsShareOneArena) {
  TupleBatch batch;
  for (uint64_t i = 0; i < 16; ++i) batch.Add(PostingTuple(i));
  auto back = TupleBatch::Deserialize(batch.Serialize());
  ASSERT_TRUE(back.ok());
  // Every string value of the batch references the same shared blob, and
  // the repeated keyword column reuses the same slice bytes.
  const auto& owner = back.value()[0].at(0).string_owner();
  for (const Tuple& t : back.value()) {
    EXPECT_EQ(t.at(0).string_owner(), owner);
    EXPECT_EQ(t.at(2).string_owner(), owner);
    EXPECT_EQ(t.at(0).AsString(), "madonna");
  }
}

TEST(TupleBatchTest, ImageIsCountPlusConcatenatedFrames) {
  // The contract LocalStore::GetBatch relies on: a batch image can be
  // assembled from individually serialized tuples.
  std::vector<Tuple> tuples;
  for (uint64_t i = 0; i < 5; ++i) tuples.push_back(PostingTuple(i));
  BytesWriter w;
  w.PutVarint(tuples.size());
  for (const auto& t : tuples) {
    auto frame = t.Serialize();
    w.PutBytes(frame.data(), frame.size());
  }
  auto back = TupleBatch::Deserialize(w.data());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ(back.value()[i], tuples[i]);
  }
}

TEST(TupleBatchTest, RandomBatchesRoundTrip) {
  Rng rng(0xbadcafe);
  for (int trial = 0; trial < 200; ++trial) {
    TupleBatch batch;
    size_t n = rng.NextBelow(20);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> vals;
      size_t arity = rng.NextBelow(5);
      for (size_t j = 0; j < arity; ++j) {
        switch (rng.NextBelow(4)) {
          case 0:
            vals.push_back(Value(rng.Next()));
            break;
          case 1:
            vals.push_back(Value(static_cast<int64_t>(rng.Next())));
            break;
          case 2:
            vals.push_back(Value(rng.NextDouble()));
            break;
          default: {
            std::string s;
            size_t len = rng.NextBelow(24);
            for (size_t k = 0; k < len; ++k) {
              s.push_back(static_cast<char>(rng.NextBelow(256)));
            }
            vals.push_back(Value(std::move(s)));
          }
        }
      }
      batch.Add(Tuple(std::move(vals)));
    }
    auto image = batch.Serialize();
    ASSERT_EQ(image.size(), batch.WireSize());
    auto back = TupleBatch::Deserialize(image);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back.value().size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(back.value()[i], batch[i]);
    }
  }
}

}  // namespace
}  // namespace pierstack::pier
