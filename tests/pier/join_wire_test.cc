// Join-stage wire format: entry lists travel as exact TupleBatch images,
// and large intermediate lists stream stage-to-stage in chunks with
// weight-throwing completion at the query node.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/builder.h"
#include "pier/node.h"
#include "pier/tuple_batch.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

std::vector<JoinResultEntry> SampleEntries() {
  std::vector<JoinResultEntry> entries;
  for (uint64_t i = 0; i < 5; ++i) {
    JoinResultEntry e;
    e.join_key = Value(i);
    e.payload = Tuple({Value(i), Value("payload file " + std::to_string(i) +
                                       ".mp3")});
    entries.push_back(std::move(e));
  }
  JoinResultEntry bare;  // key-only entry (no payload), the chain default
  bare.join_key = Value(std::string("stringkey"));
  entries.push_back(std::move(bare));
  return entries;
}

TEST(JoinWireTest, EncodeDecodeRoundTrips) {
  auto entries = SampleEntries();
  std::vector<uint8_t> image = EncodeJoinEntries(entries);
  size_t dropped = 0;
  auto back = DecodeJoinEntries(image, &dropped);
  EXPECT_EQ(dropped, 0u);
  ASSERT_EQ(back.size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].join_key, entries[i].join_key) << i;
    EXPECT_EQ(back[i].payload, entries[i].payload) << i;
  }
}

TEST(JoinWireTest, ImageSizeIsExactTupleBatchWireSize) {
  auto entries = SampleEntries();
  // The image must be byte-identical in size to a TupleBatch of
  // [join_key, payload...] rows — the charged bytes are the encoded bytes.
  TupleBatch reference;
  for (const auto& e : entries) {
    std::vector<Value> row;
    row.push_back(e.join_key);
    for (const Value& v : e.payload) row.push_back(v);
    reference.Add(Tuple(std::move(row)));
  }
  std::vector<uint8_t> image = EncodeJoinEntries(entries);
  EXPECT_EQ(image.size(), reference.WireSize());
  EXPECT_EQ(image, reference.Serialize());
}

TEST(JoinWireTest, EmptyListEncodesAsEmptyBatch) {
  std::vector<uint8_t> image = EncodeJoinEntries({});
  EXPECT_EQ(image, std::vector<uint8_t>{0});
  size_t dropped = 0;
  EXPECT_TRUE(DecodeJoinEntries(image, &dropped).empty());
  EXPECT_EQ(dropped, 0u);
}

TEST(JoinWireTest, CorruptTailCountsDropped) {
  auto entries = SampleEntries();
  std::vector<uint8_t> image = EncodeJoinEntries(entries);
  image.resize(image.size() / 2);  // truncate mid-frame
  size_t dropped = 0;
  auto back = DecodeJoinEntries(image, &dropped);
  EXPECT_LT(back.size(), entries.size());
  EXPECT_EQ(back.size() + dropped, entries.size());
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n, size_t max_stage_entries = 1024) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 555);
    BatchOptions opts;
    opts.max_stage_entries = max_stage_entries;
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
      piers.back()->set_batch_options(opts);
    }
  }

  void PublishPostings(const std::string& kw, uint64_t lo, uint64_t hi) {
    std::vector<Tuple> tuples;
    for (uint64_t f = lo; f < hi; ++f) {
      tuples.push_back(Tuple({Value(kw), Value(f)}));
    }
    piers[0]->PublishBatch(InvSchema(), std::move(tuples));
    piers[0]->FlushPublishQueues();
    simulator.Run();
  }

  DistributedJoin TwoStage(size_t limit = SIZE_MAX) {
    DistributedJoin join;
    for (const char* kw : {"alpha", "beta"}) {
      JoinStage stage;
      stage.ns = "inverted";
      stage.key = Value(std::string(kw));
      join.stages.push_back(std::move(stage));
    }
    join.limit = limit;
    return join;
  }
};

TEST(JoinWireTest, ChunkedStageStreamingReturnsCompleteAnswer) {
  // alpha {0..100}, beta {50..150} → intersection {50..100} (50 entries).
  // With a 8-entry stage flush threshold, stage 0's 100 surviving entries
  // stream to stage 1 as 13 chunks; every chunk's reply must be awaited.
  Cluster chunked(16, /*max_stage_entries=*/8);
  chunked.PublishPostings("alpha", 0, 100);
  chunked.PublishPostings("beta", 50, 150);
  std::set<uint64_t> ids;
  int completions = 0;
  chunked.piers[3]->ExecuteJoin(chunked.TwoStage(),
                                [&](Status s, auto entries) {
                                  ++completions;
                                  ASSERT_TRUE(s.ok());
                                  for (const auto& e : entries) {
                                    ids.insert(e.join_key.AsUint64());
                                  }
                                });
  chunked.simulator.Run();
  EXPECT_EQ(completions, 1);  // weight conservation: fires exactly once
  std::set<uint64_t> expect;
  for (uint64_t f = 50; f < 100; ++f) expect.insert(f);
  EXPECT_EQ(ids, expect);
  // 1 initial + ceil(100/8) = 13 forwarded chunks.
  EXPECT_EQ(chunked.metrics.join_stage_messages, 14u);
  EXPECT_EQ(chunked.metrics.posting_entries_shipped, 100u);
  EXPECT_EQ(chunked.metrics.tuples_dropped_deserialize, 0u);
}

TEST(JoinWireTest, ChunkedAndUnchunkedAnswersMatch) {
  Cluster chunked(16, 8), whole(16, 1024);
  for (Cluster* c : {&chunked, &whole}) {
    c->PublishPostings("alpha", 0, 60);
    c->PublishPostings("beta", 30, 90);
  }
  auto run = [](Cluster* c) {
    std::set<uint64_t> ids;
    c->piers[1]->ExecuteJoin(c->TwoStage(), [&](Status s, auto entries) {
      EXPECT_TRUE(s.ok());
      for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
    });
    c->simulator.Run();
    return ids;
  };
  auto a = run(&chunked), b = run(&whole);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 30u);
  EXPECT_GT(chunked.metrics.join_stage_messages,
            whole.metrics.join_stage_messages);
}

TEST(JoinWireTest, LimitHoldsAcrossChunks) {
  Cluster c(16, /*max_stage_entries=*/8);
  c.PublishPostings("alpha", 0, 80);
  c.PublishPostings("beta", 0, 80);
  size_t got = 0;
  c.piers[2]->ExecuteJoin(c.TwoStage(/*limit=*/10),
                          [&](Status s, auto entries) {
                            ASSERT_TRUE(s.ok());
                            got = entries.size();
                          });
  c.simulator.Run();
  EXPECT_EQ(got, 10u);
}

}  // namespace
}  // namespace pierstack::pier
