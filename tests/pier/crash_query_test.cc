// Mid-query owner crash: an in-flight MultiGet and an in-flight
// ExecutePlan must both resolve within their deadlines when the node
// answering them dies after the request was sent — the retry-with-backoff
// and replica paths turn an owner crash into latency, never into a hung
// callback. Parametrized over both routing policies so the guarantee holds
// on the legacy classic path and the congestion-aware default alike.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "dht/builder.h"
#include "pier/node.h"
#include "pier/plan.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

const Schema& ItemSchema() {
  static const Schema* s = new Schema("item",
                                      {{"fileID", ValueType::kUint64},
                                       {"name", ValueType::kString}},
                                      0);
  return *s;
}

/// Mirrors the engine's (ns, key value) → ring key mapping (pier/node.cc).
dht::Key RingKeyFor(const std::string& ns, const Value& key) {
  return HashCombine(Fnv1a64(ns), key.Hash());
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  Cluster(size_t n, dht::RoutingPolicyKind policy) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 31);
    dht::DhtOptions opts;
    opts.routing_policy = policy;
    opts.replication = 3;
    opts.maintenance = true;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, opts, 777);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  /// Index of a pier/dht node that is NOT `excluded` (to survive a crash).
  size_t SurvivorIndex(dht::DhtNode* excluded) {
    for (size_t i = 0; i < dht->size(); ++i) {
      if (dht->node(i) != excluded) return i;
    }
    ADD_FAILURE() << "no survivor candidate";
    return 0;
  }
};

class CrashQueryTest
    : public ::testing::TestWithParam<dht::RoutingPolicyKind> {};

TEST_P(CrashQueryTest, MultiGetResolvesAcrossMidFlightOwnerCrash) {
  Cluster c(16, GetParam());
  const std::string ns = "mg";
  std::vector<dht::Key> keys;
  for (size_t i = 0; i < 12; ++i) {
    keys.push_back((i + 1) * 0x9E3779B97F4A7C15ull);
    c.dht->node(0)->Put(ns, keys.back(), {uint8_t(i), 0xAB}, 0, nullptr);
  }
  c.simulator.RunFor(10 * sim::kSecond);

  // The chained scatter starts at the first key's owner: that is the node
  // whose crash strands the whole in-flight request.
  dht::DhtNode* first_owner = c.dht->ExpectedOwner(keys[0]);
  ASSERT_NE(first_owner, nullptr);
  dht::DhtNode* requester = c.dht->node(c.SurvivorIndex(first_owner));

  bool fired = false;
  Status status = Status::Internal("unset");
  size_t answered = 0;
  sim::SimTime issued_at = c.simulator.now();
  sim::SimTime fired_at = 0;
  requester->MultiGet(ns, keys,
                      [&](Status s, std::vector<dht::DhtNode::MultiGetItem> items) {
                        fired = true;
                        fired_at = c.simulator.now();
                        status = s;
                        answered = items.size();
                      });
  // Crash while the request is on the wire (latency is 5ms).
  c.simulator.ScheduleAfter(2 * sim::kMillisecond,
                            [&] { first_owner->Crash(); });

  sim::SimTime deadline = c.dht->options().get_timeout;
  c.simulator.RunFor(deadline + 5 * sim::kSecond);

  ASSERT_TRUE(fired) << "MultiGet hung across the owner crash";
  EXPECT_LE(fired_at - issued_at, deadline + sim::kSecond);
  // Replication 3 + attempt retries: the re-scattered request reaches the
  // surviving replicas and completes with every key answered.
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(answered, keys.size());
}

TEST_P(CrashQueryTest, ExecutePlanResolvesAcrossMidFlightOwnerCrash) {
  Cluster c(16, GetParam());
  std::vector<Tuple> inv, items;
  for (uint64_t f = 0; f < 60; ++f) {
    inv.push_back(Tuple({Value("madonna"), Value(f)}));
    items.push_back(Tuple({Value(f), Value("file " + std::to_string(f))}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(inv));
  c.piers[0]->PublishBatch(ItemSchema(), std::move(items));
  c.piers[0]->FlushPublishQueues();
  c.simulator.RunFor(10 * sim::kSecond);

  // The stage executes at the scan key's owner; kill exactly that node
  // after the stage message left the query node.
  dht::DhtNode* scan_owner =
      c.dht->ExpectedOwner(RingKeyFor("inverted", Value("madonna")));
  ASSERT_NE(scan_owner, nullptr);
  size_t query_idx = c.SurvivorIndex(scan_owner);

  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("madonna"))
                       .FetchJoin("item")
                       .Build();

  bool fired = false;
  sim::SimTime issued_at = c.simulator.now();
  sim::SimTime fired_at = 0;
  constexpr sim::SimTime kPlanTimeout = 10 * sim::kSecond;
  c.piers[query_idx]->ExecutePlan(
      std::move(plan),
      [&](Status, std::vector<Tuple>) {
        fired = true;
        fired_at = c.simulator.now();
      },
      kPlanTimeout);
  c.simulator.ScheduleAfter(2 * sim::kMillisecond,
                            [&] { scan_owner->Crash(); });

  c.simulator.RunFor(kPlanTimeout + 10 * sim::kSecond);

  // The guarantee under test is bounded completion: the callback fires by
  // the plan deadline (success via replicas/retries, or a clean timeout) —
  // never a hang, under either routing policy.
  ASSERT_TRUE(fired) << "ExecutePlan hung across the owner crash";
  EXPECT_LE(fired_at - issued_at, kPlanTimeout + sim::kSecond);
}

INSTANTIATE_TEST_SUITE_P(
    BothPolicies, CrashQueryTest,
    ::testing::Values(dht::RoutingPolicyKind::kClassicChord,
                      dht::RoutingPolicyKind::kCongestionAware),
    [](const ::testing::TestParamInfo<dht::RoutingPolicyKind>& info) {
      return info.param == dht::RoutingPolicyKind::kClassicChord
                 ? "ClassicChord"
                 : "CongestionAware";
    });

}  // namespace
}  // namespace pierstack::pier
