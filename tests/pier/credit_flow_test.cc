// Credit-based join flow control: a slow stage owner must backpressure the
// chunk producer (bounded in-flight bytes at the owner) without changing
// the final join answer, and weight conservation must survive pacing.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/builder.h"
#include "pier/node.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n, const BatchOptions& opts) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
      piers.back()->set_batch_options(opts);
    }
  }

  void PublishPostings(const std::string& kw, uint64_t lo, uint64_t hi) {
    std::vector<Tuple> tuples;
    for (uint64_t f = lo; f < hi; ++f) {
      tuples.push_back(Tuple({Value(kw), Value(f)}));
    }
    piers[0]->PublishBatch(InvSchema(), std::move(tuples));
    piers[0]->FlushPublishQueues();
    simulator.Run();
  }

  DistributedJoin TwoStage() {
    DistributedJoin join;
    for (const char* kw : {"alpha", "beta"}) {
      JoinStage stage;
      stage.ns = "inverted";
      stage.key = Value(std::string(kw));
      join.stages.push_back(std::move(stage));
    }
    return join;
  }

  sim::HostId OwnerOf(const std::string& kw) {
    dht::Key k = HashCombine(Fnv1a64("inverted"), Value(kw).Hash());
    return dht->ExpectedOwner(k)->host();
  }

  std::set<uint64_t> RunJoin(int* completions = nullptr) {
    std::set<uint64_t> ids;
    piers[3]->ExecuteJoin(TwoStage(), [&, completions](Status s,
                                                       auto entries) {
      if (completions) ++*completions;
      EXPECT_TRUE(s.ok()) << s.ToString();
      for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
    });
    simulator.Run();
    return ids;
  }
};

BatchOptions ChunkyOptions(size_t credit_window) {
  BatchOptions opts;
  opts.max_stage_entries = 8;  // 400 stage-0 survivors -> 50 chunks
  opts.stage_credit_chunks = credit_window;
  // These tests assert the fixed-window contract at exactly
  // `credit_window`; the service-rate-derived window is covered by the
  // AdaptiveCredit tests below.
  opts.adaptive_credit = false;
  return opts;
}

TEST(CreditFlowTest, SlowOwnerBoundsProducerInFlightBytes) {
  // alpha {0..400} all join beta {0..500}: stage 0 streams 50 chunks to
  // the (slow) beta owner. Unpaced, every chunk is on the wire at once;
  // with a 2-chunk credit window the producer may never have more than 2
  // chunks queued at the slow owner.
  Cluster unpaced(16, ChunkyOptions(0)), credited(16, ChunkyOptions(2));
  for (Cluster* c : {&unpaced, &credited}) {
    c->PublishPostings("alpha", 0, 400);
    c->PublishPostings("beta", 0, 500);
    c->network->SetProcessingDelay(c->OwnerOf("beta"),
                                   20 * sim::kMillisecond);
    c->network->ResetLoadWatermarks();
  }

  auto a = unpaced.RunJoin();
  auto b = credited.RunJoin();

  // Identical final answers despite pacing.
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 400u);

  size_t peak_unpaced =
      unpaced.network->LoadOf(unpaced.OwnerOf("beta")).peak_in_flight_bytes;
  size_t peak_credited =
      credited.network->LoadOf(credited.OwnerOf("beta"))
          .peak_in_flight_bytes;
  // Unpaced, the 50-chunk burst piles up at the slow owner; credited, at
  // most the window (plus replies in the opposite direction, which do not
  // land on this host). Demand a decisive separation, not a tuned one.
  EXPECT_GT(peak_unpaced, 4 * peak_credited);
  EXPECT_GT(credited.metrics.credits_stalled, 0u);
  EXPECT_GT(credited.metrics.credit_grants, 0u);
  EXPECT_EQ(unpaced.metrics.credits_stalled, 0u);
  EXPECT_EQ(credited.metrics.credit_streams_expired, 0u);
  EXPECT_EQ(credited.metrics.tuples_dropped_deserialize, 0u);
}

TEST(CreditFlowTest, WeightConservationFiresCallbackExactlyOnce) {
  Cluster c(16, ChunkyOptions(3));
  c.PublishPostings("alpha", 0, 200);
  c.PublishPostings("beta", 100, 300);
  c.network->SetProcessingDelay(c.OwnerOf("beta"), 15 * sim::kMillisecond);
  int completions = 0;
  auto ids = c.RunJoin(&completions);
  EXPECT_EQ(completions, 1);
  std::set<uint64_t> expect;
  for (uint64_t f = 100; f < 200; ++f) expect.insert(f);
  EXPECT_EQ(ids, expect);
}

TEST(CreditFlowTest, SmallStreamsSkipPacingEntirely) {
  // 3 chunks within a 4-chunk window: no stream state, no credit acks.
  Cluster c(16, ChunkyOptions(4));
  c.PublishPostings("alpha", 0, 24);
  c.PublishPostings("beta", 0, 24);
  auto ids = c.RunJoin();
  EXPECT_EQ(ids.size(), 24u);
  EXPECT_EQ(c.metrics.credits_stalled, 0u);
  EXPECT_EQ(c.metrics.credit_grants, 0u);
  EXPECT_EQ(c.network->metrics().by_tag.count("pier.credit"), 0u);
}

/// Two keywords owned by the two distinct nodes of a 2-node cluster, so
/// the stage-0 producer's next hop toward stage 1 IS the consuming owner
/// and the service-rate probe reads the consumer's true latency.
std::pair<std::string, std::string> DistinctOwnerKeywords(Cluster* c) {
  const char* candidates[] = {"alpha", "beta",  "gamma", "delta",
                              "epsilon", "zeta", "theta", "kappa"};
  for (const char* a : candidates) {
    for (const char* b : candidates) {
      if (a != b && c->OwnerOf(a) != c->OwnerOf(b)) return {a, b};
    }
  }
  ADD_FAILURE() << "no keyword pair with distinct owners";
  return {"alpha", "beta"};
}

std::set<uint64_t> RunTwoKeywordJoin(Cluster* c, const std::string& kw0,
                                     const std::string& kw1) {
  DistributedJoin join;
  for (const std::string* kw : {&kw0, &kw1}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(*kw);
    join.stages.push_back(std::move(stage));
  }
  std::set<uint64_t> ids;
  bool done = false;
  c->piers[0]->ExecuteJoin(std::move(join), [&](Status s, auto entries) {
    done = true;
    EXPECT_TRUE(s.ok()) << s.ToString();
    for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
  });
  c->simulator.Run();
  EXPECT_TRUE(done);
  return ids;
}

TEST(CreditFlowTest, AdaptiveWindowDeepensPipelineTowardFastOwner) {
  // Same chunky join, same fast (5ms) network: the fixed window stalls on
  // every chunk past it, while the service-rate-derived window reads the
  // low smoothed latency toward the consumer (warmed by the publish
  // traffic) and opens a deeper pipeline — measurably fewer stall
  // episodes, identical answers.
  BatchOptions fixed = ChunkyOptions(2);
  BatchOptions adaptive = ChunkyOptions(2);
  adaptive.adaptive_credit = true;
  adaptive.max_stage_credit_chunks = 16;
  Cluster base(2, fixed), derived(2, adaptive);
  std::set<uint64_t> answers[2];
  size_t i = 0;
  for (Cluster* c : {&base, &derived}) {
    auto [kw0, kw1] = DistinctOwnerKeywords(c);
    c->PublishPostings(kw0, 0, 400);
    c->PublishPostings(kw1, 0, 500);
    answers[i++] = RunTwoKeywordJoin(c, kw0, kw1);
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[1].size(), 400u);
  EXPECT_GT(derived.metrics.credit_window_boosts, 0u);
  EXPECT_EQ(base.metrics.credit_window_boosts, 0u);
  EXPECT_LT(derived.metrics.credits_stalled, base.metrics.credits_stalled);
}

TEST(CreditFlowTest, AdaptiveWindowHoldsFloorTowardSlowOwner) {
  // A consumer whose observed service latency sits above the reference
  // must NOT earn a deeper window: the constant stays the floor and the
  // backpressure contract (stalls at the base window) is preserved.
  BatchOptions adaptive = ChunkyOptions(2);
  adaptive.adaptive_credit = true;
  adaptive.credit_latency_ref = 40 * sim::kMillisecond;
  Cluster c(2, adaptive);
  auto [kw0, kw1] = DistinctOwnerKeywords(&c);
  // Slow the consumer BEFORE any traffic so the warmed EWMA reflects its
  // true service rate (5ms wire + 30ms processing > ref/2).
  c.network->SetProcessingDelay(c.OwnerOf(kw1), 30 * sim::kMillisecond);
  c.PublishPostings(kw0, 0, 200);
  c.PublishPostings(kw1, 0, 200);
  auto ids = RunTwoKeywordJoin(&c, kw0, kw1);
  EXPECT_EQ(ids.size(), 200u);
  EXPECT_EQ(c.metrics.credit_window_boosts, 0u);
  EXPECT_GT(c.metrics.credits_stalled, 0u);
}

TEST(CreditFlowTest, StarvedStreamExpiresAndJoinTimesOutWithPartial) {
  BatchOptions opts = ChunkyOptions(2);
  opts.credit_stall_timeout = 2 * sim::kSecond;
  // Pin the single-dispatch contract: with failover on, the no-progress
  // watchdog re-dispatches stage 0 and each retry expires its own stream.
  opts.stage_failover_budget = 0;
  Cluster c(16, opts);
  c.PublishPostings("alpha", 0, 200);
  c.PublishPostings("beta", 0, 200);
  // An effectively wedged stage owner: deliveries (and thus credit acks)
  // are postponed past both the stall timeout and the query timeout. The
  // producer's stream must expire instead of leaking, and the query must
  // time out with the partial-result contract intact.
  c.network->SetProcessingDelay(c.OwnerOf("beta"), 60 * sim::kSecond);
  bool done = false;
  c.piers[3]->ExecuteJoin(
      c.TwoStage(),
      [&](Status s, auto entries) {
        done = true;
        EXPECT_FALSE(s.ok());  // timed out, not completed
        (void)entries;         // whatever chunks made it — none here
      },
      /*timeout=*/20 * sim::kSecond);
  c.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.metrics.credit_streams_expired, 1u);
  EXPECT_GT(c.metrics.credits_stalled, 0u);
}

}  // namespace
}  // namespace pierstack::pier
