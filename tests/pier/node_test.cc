// PierNode: DHT-backed storage and the distributed join chain.
#include "pier/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "dht/builder.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n,
                   dht::OverlayKind kind = dht::OverlayKind::kChord) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht::DhtOptions opts;
    opts.overlay = kind;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, opts, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  PierNode* pier(size_t i) { return piers[i].get(); }

  void PublishPosting(size_t from, const std::string& kw, uint64_t file_id) {
    pier(from)->Publish(InvSchema(),
                        Tuple({Value(kw), Value(file_id)}));
  }
};

TEST(PierNodeTest, PublishLandsAtKeywordOwner) {
  Cluster c(32);
  c.PublishPosting(0, "madonna", 111);
  c.simulator.Run();
  dht::DhtNode* owner = c.dht->ExpectedOwner(
      HashCombine(Fnv1a64("inverted"), Value(std::string("madonna")).Hash()));
  // Owner-side local scan sees the tuple; everyone else sees nothing.
  int holders = 0;
  for (size_t i = 0; i < c.piers.size(); ++i) {
    auto local = c.pier(i)->ScanLocal(InvSchema(), Value(std::string("madonna")));
    if (!local.empty()) {
      ++holders;
      EXPECT_EQ(c.dht->node(i)->host(), owner->host());
      EXPECT_EQ(local[0].at(1).AsUint64(), 111u);
    }
  }
  EXPECT_EQ(holders, 1);
}

TEST(PierNodeTest, FetchReturnsAllTuplesForKey) {
  Cluster c(16);
  c.PublishPosting(1, "beatles", 1);
  c.PublishPosting(2, "beatles", 2);
  c.PublishPosting(3, "beatles", 3);
  c.simulator.Run();
  std::vector<Tuple> got;
  c.pier(9)->Fetch(InvSchema(), Value(std::string("beatles")),
                   [&](Status s, std::vector<Tuple> tuples) {
                     ASSERT_TRUE(s.ok());
                     got = std::move(tuples);
                   });
  c.simulator.Run();
  EXPECT_EQ(got.size(), 3u);
}

TEST(PierNodeTest, SingleStageJoinReturnsPostingList) {
  Cluster c(16);
  for (uint64_t f : {10u, 20u, 30u}) c.PublishPosting(0, "solo", f);
  c.simulator.Run();
  DistributedJoin join;
  JoinStage stage;
  stage.ns = "inverted";
  stage.key = Value(std::string("solo"));
  join.stages.push_back(stage);
  std::set<uint64_t> ids;
  c.pier(5)->ExecuteJoin(join, [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok());
    for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
  });
  c.simulator.Run();
  EXPECT_EQ(ids, (std::set<uint64_t>{10, 20, 30}));
}

TEST(PierNodeTest, TwoStageChainIntersects) {
  Cluster c(24);
  // "alpha" posting: {1,2,3}; "beta": {2,3,4} → intersection {2,3}.
  for (uint64_t f : {1u, 2u, 3u}) c.PublishPosting(0, "alpha", f);
  for (uint64_t f : {2u, 3u, 4u}) c.PublishPosting(1, "beta", f);
  c.simulator.Run();
  DistributedJoin join;
  for (const char* kw : {"alpha", "beta"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(stage);
  }
  std::set<uint64_t> ids;
  bool done = false;
  c.pier(7)->ExecuteJoin(join, [&](Status s, auto entries) {
    done = true;
    ASSERT_TRUE(s.ok());
    for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
  });
  c.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(ids, (std::set<uint64_t>{2, 3}));
}

TEST(PierNodeTest, ThreeStageChain) {
  Cluster c(24);
  for (uint64_t f : {1u, 2u, 3u, 4u}) c.PublishPosting(0, "a", f);
  for (uint64_t f : {2u, 3u, 4u, 5u}) c.PublishPosting(0, "b", f);
  for (uint64_t f : {3u, 4u, 6u}) c.PublishPosting(0, "c", f);
  c.simulator.Run();
  DistributedJoin join;
  for (const char* kw : {"a", "b", "c"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(stage);
  }
  std::set<uint64_t> ids;
  c.pier(3)->ExecuteJoin(join, [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok());
    for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
  });
  c.simulator.Run();
  EXPECT_EQ(ids, (std::set<uint64_t>{3, 4}));
}

TEST(PierNodeTest, EmptyIntersectionShortCircuits) {
  Cluster c(16);
  c.PublishPosting(0, "left", 1);
  c.PublishPosting(0, "right", 2);
  c.PublishPosting(0, "tail", 3);
  c.simulator.Run();
  c.metrics = PierMetrics{};
  DistributedJoin join;
  for (const char* kw : {"left", "right", "tail"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(stage);
  }
  bool done = false;
  c.pier(2)->ExecuteJoin(join, [&](Status s, auto entries) {
    done = true;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(entries.empty());
  });
  c.simulator.Run();
  EXPECT_TRUE(done);
  // The chain stopped after stage 2 (empty after intersecting "right"):
  // only the initial route plus one forward happened.
  EXPECT_LE(c.metrics.join_stage_messages, 2u);
}

TEST(PierNodeTest, MissingKeywordYieldsEmpty) {
  Cluster c(16);
  c.PublishPosting(0, "exists", 1);
  c.simulator.Run();
  DistributedJoin join;
  for (const char* kw : {"exists", "missing"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(stage);
  }
  bool done = false;
  c.pier(1)->ExecuteJoin(join, [&](Status s, auto entries) {
    done = true;
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE(entries.empty());
  });
  c.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(PierNodeTest, LimitCapsResults) {
  Cluster c(16);
  for (uint64_t f = 0; f < 50; ++f) c.PublishPosting(0, "many", f);
  c.simulator.Run();
  DistributedJoin join;
  JoinStage stage;
  stage.ns = "inverted";
  stage.key = Value(std::string("many"));
  join.stages.push_back(stage);
  join.limit = 10;
  size_t got = 0;
  c.pier(1)->ExecuteJoin(join, [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok());
    got = entries.size();
  });
  c.simulator.Run();
  EXPECT_EQ(got, 10u);
}

TEST(PierNodeTest, SubstringFilterStage) {
  Cluster c(16);
  const Schema ic("invcache",
                  {{"keyword", ValueType::kString},
                   {"fileID", ValueType::kUint64},
                   {"fulltext", ValueType::kString}},
                  0);
  c.pier(0)->Publish(ic, Tuple({Value(std::string("moon")), Value(uint64_t{1}),
                                Value(std::string("dark side moon.mp3"))}));
  c.pier(0)->Publish(ic, Tuple({Value(std::string("moon")), Value(uint64_t{2}),
                                Value(std::string("blue moon swing.mp3"))}));
  c.simulator.Run();
  DistributedJoin join;
  JoinStage stage;
  stage.ns = "invcache";
  stage.key = Value(std::string("moon"));
  stage.key_col = 0;
  stage.join_col = 1;
  stage.payload_cols = {1, 2};
  stage.filter_col = 2;
  stage.substring_filter = {"dark"};
  join.stages.push_back(stage);
  std::vector<JoinResultEntry> got;
  c.pier(4)->ExecuteJoin(join, [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok());
    got = std::move(entries);
  });
  c.simulator.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].join_key.AsUint64(), 1u);
  EXPECT_EQ(got[0].payload.at(1).AsString(), "dark side moon.mp3");
}

TEST(PierNodeTest, ProbePostingSize) {
  Cluster c(16);
  for (uint64_t f = 0; f < 7; ++f) c.PublishPosting(0, "sized", f);
  c.simulator.Run();
  size_t size = SIZE_MAX;
  c.pier(3)->ProbePostingSize("inverted", Value(std::string("sized")),
                              [&](Status s, size_t n) {
                                ASSERT_TRUE(s.ok());
                                size = n;
                              });
  c.simulator.Run();
  EXPECT_EQ(size, 7u);
  size_t zero = SIZE_MAX;
  c.pier(3)->ProbePostingSize("inverted", Value(std::string("unknown")),
                              [&](Status s, size_t n) {
                                ASSERT_TRUE(s.ok());
                                zero = n;
                              });
  c.simulator.Run();
  EXPECT_EQ(zero, 0u);
}

TEST(PierNodeTest, ShippedEntriesCounted) {
  Cluster c(16);
  for (uint64_t f = 0; f < 20; ++f) c.PublishPosting(0, "first", f);
  for (uint64_t f = 0; f < 20; f += 2) c.PublishPosting(0, "second", f);
  c.simulator.Run();
  c.metrics = PierMetrics{};
  DistributedJoin join;
  for (const char* kw : {"first", "second"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(stage);
  }
  c.pier(1)->ExecuteJoin(join, [](Status, auto) {});
  c.simulator.Run();
  // Stage 0 ships its 20 postings to stage 1.
  EXPECT_EQ(c.metrics.posting_entries_shipped, 20u);
}

TEST(PierNodeTest, WorksOnBambooOverlay) {
  Cluster c(32, dht::OverlayKind::kBamboo);
  for (uint64_t f : {1u, 2u}) c.PublishPosting(0, "bamboo", f);
  c.simulator.Run();
  DistributedJoin join;
  JoinStage stage;
  stage.ns = "inverted";
  stage.key = Value(std::string("bamboo"));
  join.stages.push_back(stage);
  std::set<uint64_t> ids;
  c.pier(9)->ExecuteJoin(join, [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok());
    for (const auto& e : entries) ids.insert(e.join_key.AsUint64());
  });
  c.simulator.Run();
  EXPECT_EQ(ids, (std::set<uint64_t>{1, 2}));
}

}  // namespace
}  // namespace pierstack::pier
