// Owner-coalesced multi-key fetch: FetchMany must return the same tuples
// as a per-key Fetch loop while issuing exactly one routed get message per
// distinct owner.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "dht/builder.h"
#include "pier/node.h"

namespace pierstack::pier {
namespace {

const Schema& ItemLikeSchema() {
  static const Schema* s = new Schema(
      "items",
      {{"fileID", ValueType::kUint64}, {"name", ValueType::kString}}, 0);
  return *s;
}

dht::Key ItemKey(uint64_t id) {
  return HashCombine(Fnv1a64("items"), Value(id).Hash());
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n,
                                               dht::DhtOptions{}, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  /// Publishes `count` item tuples and returns their ids.
  std::vector<uint64_t> PublishItems(size_t count) {
    std::vector<uint64_t> ids;
    for (uint64_t id = 1; id <= count; ++id) {
      ids.push_back(id);
      piers[0]->Publish(ItemLikeSchema(),
                        Tuple({Value(id),
                               Value("item " + std::to_string(id))}));
    }
    simulator.Run();
    return ids;
  }

  /// Distinct owner hosts across the item keys of `ids`.
  size_t DistinctOwners(const std::vector<uint64_t>& ids) {
    std::set<sim::HostId> owners;
    for (uint64_t id : ids) {
      owners.insert(dht->ExpectedOwner(ItemKey(id))->host());
    }
    return owners.size();
  }
};

TEST(FetchManyTest, ReturnsAllRequestedTuples) {
  Cluster c(16);
  auto ids = c.PublishItems(40);
  std::set<uint64_t> got;
  bool done = false;
  std::vector<Value> keys;
  for (uint64_t id : ids) keys.emplace_back(Value(id));
  c.piers[3]->FetchMany(ItemLikeSchema(), keys,
                        [&](Status s, std::vector<Tuple> tuples) {
                          done = true;
                          ASSERT_TRUE(s.ok()) << s.ToString();
                          for (const Tuple& t : tuples) {
                            got.insert(t.at(0).AsUint64());
                          }
                        });
  c.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, std::set<uint64_t>(ids.begin(), ids.end()));
  EXPECT_EQ(c.metrics.tuples_dropped_deserialize, 0u);
}

TEST(FetchManyTest, ExactlyOneRoutedGetPerOwner) {
  Cluster c(24);
  auto ids = c.PublishItems(60);
  size_t k = c.DistinctOwners(ids);
  ASSERT_GT(k, 1u);  // the workload must actually span owners
  ASSERT_LT(k, ids.size());

  uint64_t before = c.dht->metrics().multi_gets;
  std::vector<Value> keys;
  for (uint64_t id : ids) keys.emplace_back(Value(id));
  size_t fetched = 0;
  c.piers[5]->FetchMany(ItemLikeSchema(), keys,
                        [&](Status s, std::vector<Tuple> tuples) {
                          ASSERT_TRUE(s.ok());
                          fetched = tuples.size();
                        });
  c.simulator.Run();
  EXPECT_EQ(fetched, ids.size());
  // N results over K owners: exactly K routed get messages.
  EXPECT_EQ(c.dht->metrics().multi_gets - before, k);
}

TEST(FetchManyTest, HalvesMessagesVersusPerKeyFetch) {
  Cluster per_key(16), coalesced(16);
  auto ids_a = per_key.PublishItems(48);
  auto ids_b = coalesced.PublishItems(48);
  ASSERT_EQ(ids_a, ids_b);

  uint64_t base_a = per_key.network->metrics().total.messages;
  size_t remaining = ids_a.size(), got_a = 0;
  for (uint64_t id : ids_a) {
    per_key.piers[2]->Fetch(ItemLikeSchema(), Value(id),
                            [&](Status s, std::vector<Tuple> tuples) {
                              ASSERT_TRUE(s.ok());
                              got_a += tuples.size();
                              --remaining;
                            });
  }
  per_key.simulator.Run();
  ASSERT_EQ(remaining, 0u);
  uint64_t msgs_per_key = per_key.network->metrics().total.messages - base_a;

  uint64_t base_b = coalesced.network->metrics().total.messages;
  std::vector<Value> keys;
  for (uint64_t id : ids_b) keys.emplace_back(Value(id));
  size_t got_b = 0;
  coalesced.piers[2]->FetchMany(ItemLikeSchema(), keys,
                                [&](Status s, std::vector<Tuple> tuples) {
                                  ASSERT_TRUE(s.ok());
                                  got_b = tuples.size();
                                });
  coalesced.simulator.Run();
  uint64_t msgs_coalesced =
      coalesced.network->metrics().total.messages - base_b;

  // Identical answer set at under half the messages.
  EXPECT_EQ(got_a, got_b);
  EXPECT_EQ(got_b, ids_b.size());
  EXPECT_LT(msgs_coalesced * 2, msgs_per_key);
}

TEST(FetchManyTest, DuplicateKeysCollapse) {
  Cluster c(8);
  c.PublishItems(4);
  uint64_t before = c.dht->metrics().multi_get_keys;
  std::vector<Value> keys{Value(uint64_t{1}), Value(uint64_t{1}),
                          Value(uint64_t{2}), Value(uint64_t{2})};
  std::multiset<uint64_t> got;
  c.piers[1]->FetchMany(ItemLikeSchema(), keys,
                        [&](Status s, std::vector<Tuple> tuples) {
                          ASSERT_TRUE(s.ok());
                          for (const Tuple& t : tuples) {
                            got.insert(t.at(0).AsUint64());
                          }
                        });
  c.simulator.Run();
  // Each stored tuple returned once despite duplicated request keys.
  EXPECT_EQ(got, (std::multiset<uint64_t>{1, 2}));
  EXPECT_EQ(c.dht->metrics().multi_get_keys - before, 2u);
}

TEST(FetchManyTest, OnlyRequestedIdsReturned) {
  Cluster c(8);
  c.PublishItems(10);
  std::set<uint64_t> got;
  c.piers[4]->FetchMany(ItemLikeSchema(),
                        {Value(uint64_t{3}), Value(uint64_t{7})},
                        [&](Status s, std::vector<Tuple> tuples) {
                          ASSERT_TRUE(s.ok());
                          for (const Tuple& t : tuples) {
                            got.insert(t.at(0).AsUint64());
                          }
                        });
  c.simulator.Run();
  EXPECT_EQ(got, (std::set<uint64_t>{3, 7}));
}

TEST(FetchManyTest, EmptyKeySetCompletesImmediately) {
  Cluster c(4);
  bool done = false;
  c.piers[0]->FetchMany(ItemLikeSchema(), {},
                        [&](Status s, std::vector<Tuple> tuples) {
                          done = true;
                          EXPECT_TRUE(s.ok());
                          EXPECT_TRUE(tuples.empty());
                        });
  EXPECT_TRUE(done);
  EXPECT_EQ(c.network->metrics().total.messages, 0u);
}

TEST(FetchManyTest, MissingKeysStillComplete) {
  Cluster c(8);
  c.PublishItems(2);
  std::set<uint64_t> got;
  bool done = false;
  c.piers[1]->FetchMany(
      ItemLikeSchema(),
      {Value(uint64_t{1}), Value(uint64_t{999}), Value(uint64_t{1000})},
      [&](Status s, std::vector<Tuple> tuples) {
        done = true;
        ASSERT_TRUE(s.ok());
        for (const Tuple& t : tuples) got.insert(t.at(0).AsUint64());
      });
  c.simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(got, (std::set<uint64_t>{1}));
}

}  // namespace
}  // namespace pierstack::pier
