#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/rng.h"
#include "pier/ops.h"

namespace pierstack::pier {
namespace {

std::vector<Tuple> Rows(std::initializer_list<uint64_t> keys) {
  std::vector<Tuple> out;
  for (uint64_t k : keys) out.push_back(Tuple({Value(k)}));
  return out;
}

TEST(DistinctTest, RemovesExactDuplicates) {
  Distinct d(std::make_unique<VectorScan>(Rows({1, 2, 1, 3, 2, 1})));
  auto got = Collect(&d);
  EXPECT_EQ(got.size(), 3u);
}

TEST(DistinctTest, KeepsFirstOccurrenceOrder) {
  Distinct d(std::make_unique<VectorScan>(Rows({5, 3, 5, 9})));
  auto got = Collect(&d);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 5u);
  EXPECT_EQ(got[1].at(0).AsUint64(), 3u);
  EXPECT_EQ(got[2].at(0).AsUint64(), 9u);
}

TEST(DistinctTest, MultiColumnTuplesComparedFully) {
  std::vector<Tuple> rows{
      Tuple({Value(uint64_t{1}), Value(std::string("a"))}),
      Tuple({Value(uint64_t{1}), Value(std::string("b"))}),
      Tuple({Value(uint64_t{1}), Value(std::string("a"))}),
  };
  Distinct d(std::make_unique<VectorScan>(std::move(rows)));
  EXPECT_EQ(Collect(&d).size(), 2u);
}

TEST(DistinctTest, EmptyInput) {
  Distinct d(std::make_unique<VectorScan>(std::vector<Tuple>{}));
  EXPECT_TRUE(Collect(&d).empty());
}

TEST(TopKTest, DescendingTakesLargest) {
  TopK top(std::make_unique<VectorScan>(Rows({5, 1, 9, 3, 7})), 0, 3,
           /*descending=*/true);
  auto got = Collect(&top);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 9u);
  EXPECT_EQ(got[1].at(0).AsUint64(), 7u);
  EXPECT_EQ(got[2].at(0).AsUint64(), 5u);
}

TEST(TopKTest, AscendingTakesSmallest) {
  TopK top(std::make_unique<VectorScan>(Rows({5, 1, 9, 3, 7})), 0, 2,
           /*descending=*/false);
  auto got = Collect(&top);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 1u);
  EXPECT_EQ(got[1].at(0).AsUint64(), 3u);
}

TEST(TopKTest, KLargerThanInput) {
  TopK top(std::make_unique<VectorScan>(Rows({2, 1})), 0, 10, true);
  auto got = Collect(&top);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 2u);
}

TEST(TopKTest, KZeroEmpty) {
  TopK top(std::make_unique<VectorScan>(Rows({1, 2, 3})), 0, 0, true);
  EXPECT_TRUE(Collect(&top).empty());
}

// Property: TopK over random data equals sort-then-truncate.
class TopKProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKProperty, MatchesSortTruncate) {
  Rng rng(GetParam());
  std::vector<Tuple> rows;
  size_t n = 50 + rng.NextBelow(100);
  for (size_t i = 0; i < n; ++i) {
    rows.push_back(Tuple({Value(rng.NextBelow(1000))}));
  }
  size_t k = 1 + rng.NextBelow(20);
  std::vector<uint64_t> expect;
  for (const auto& t : rows) expect.push_back(t.at(0).AsUint64());
  std::sort(expect.rbegin(), expect.rend());
  expect.resize(std::min(k, expect.size()));

  TopK top(std::make_unique<VectorScan>(std::move(rows)), 0, k, true);
  auto got = Collect(&top);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].at(0).AsUint64(), expect[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(TopKTest, ComposesWithDistinct) {
  // Distinct result sizes, best three: mirrors "top results" UI plans.
  auto distinct =
      std::make_unique<Distinct>(std::make_unique<VectorScan>(
          Rows({4, 4, 9, 1, 9, 6})));
  TopK top(std::move(distinct), 0, 3, true);
  auto got = Collect(&top);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].at(0).AsUint64(), 9u);
  EXPECT_EQ(got[1].at(0).AsUint64(), 6u);
  EXPECT_EQ(got[2].at(0).AsUint64(), 4u);
}

}  // namespace
}  // namespace pierstack::pier
