// Per-destination publish coalescing: PublishBatch must cut network
// message count while leaving stored state and query results identical to
// per-tuple Publish.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "dht/builder.h"
#include "pier/node.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n, size_t replication = 1) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 17);
    dht::DhtOptions opts;
    opts.replication = replication;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, opts, 555);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }
};

std::vector<Tuple> WorkloadTuples() {
  std::vector<Tuple> tuples;
  // 12 keywords x 25 postings: plenty of same-destination coalescing.
  for (uint64_t f = 0; f < 300; ++f) {
    tuples.push_back(Tuple({Value("keyword" + std::to_string(f % 12)),
                            Value(f)}));
  }
  return tuples;
}

/// All (keyword -> fileID set) state visible via ScanLocal anywhere.
std::map<std::string, std::set<uint64_t>> VisibleState(Cluster* c) {
  std::map<std::string, std::set<uint64_t>> out;
  for (int k = 0; k < 12; ++k) {
    std::string kw = "keyword" + std::to_string(k);
    for (auto& pier : c->piers) {
      for (const Tuple& t : pier->ScanLocal(InvSchema(), Value(kw))) {
        out[kw].insert(t.at(1).AsUint64());
      }
    }
  }
  return out;
}

TEST(BatchPublishTest, CoalescingCutsMessagesKeepsResultsIdentical) {
  Cluster per_tuple(16), batched(16);

  for (Tuple& t : WorkloadTuples()) {
    per_tuple.piers[0]->Publish(InvSchema(), std::move(t));
  }
  per_tuple.simulator.Run();

  batched.piers[0]->PublishBatch(InvSchema(), WorkloadTuples());
  batched.simulator.Run();

  // Identical visible state...
  auto state_a = VisibleState(&per_tuple);
  auto state_b = VisibleState(&batched);
  EXPECT_EQ(state_a, state_b);
  ASSERT_EQ(state_b.size(), 12u);
  for (const auto& [kw, ids] : state_b) EXPECT_EQ(ids.size(), 25u) << kw;

  // ...at a fraction of the messages and bytes.
  uint64_t msgs_a = per_tuple.network->metrics().total.messages;
  uint64_t msgs_b = batched.network->metrics().total.messages;
  EXPECT_LT(msgs_b * 2, msgs_a);
  EXPECT_LT(batched.network->metrics().total.bytes,
            per_tuple.network->metrics().total.bytes);
  EXPECT_LT(batched.metrics.publish_messages,
            per_tuple.metrics.publish_messages);
  EXPECT_EQ(batched.metrics.tuples_published,
            per_tuple.metrics.tuples_published);
  EXPECT_EQ(batched.metrics.tuples_dropped_deserialize, 0u);
}

TEST(BatchPublishTest, FlushThresholdSplitsOversizedGroups) {
  Cluster c(8);
  BatchOptions opts;
  opts.max_batch_tuples = 4;
  c.piers[0]->set_batch_options(opts);
  std::vector<Tuple> tuples;
  for (uint64_t f = 0; f < 10; ++f) {
    tuples.push_back(Tuple({Value(std::string("solo")), Value(f)}));
  }
  c.piers[0]->PublishBatch(InvSchema(), std::move(tuples));
  c.simulator.Run();
  // One destination, 10 tuples, flush threshold 4 -> 3 messages.
  EXPECT_EQ(c.metrics.publish_messages, 3u);
  std::set<uint64_t> ids;
  for (auto& pier : c.piers) {
    for (const Tuple& t :
         pier->ScanLocal(InvSchema(), Value(std::string("solo")))) {
      ids.insert(t.at(1).AsUint64());
    }
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(BatchPublishTest, BatchedAckFiresOnceAfterAllGroups) {
  Cluster c(8);
  int acks = 0;
  Status last = Status::Internal("never fired");
  c.piers[0]->PublishBatch(InvSchema(), WorkloadTuples(), /*expiry=*/0,
                           [&](Status s) {
                             ++acks;
                             last = s;
                           });
  c.simulator.Run();
  EXPECT_EQ(acks, 1);
  EXPECT_TRUE(last.ok());
}

TEST(BatchPublishTest, ReplicationCarriesWholeBatch) {
  Cluster c(8, /*replication=*/2);
  c.piers[0]->PublishBatch(InvSchema(), WorkloadTuples());
  c.simulator.Run();
  sim::SimTime now = c.simulator.now();
  size_t total = 0;
  for (size_t i = 0; i < c.piers.size(); ++i) {
    total += c.dht->node(i)->store().TotalEntries(now);
  }
  // Owner copy + one replica for each of the 300 tuples.
  EXPECT_EQ(total, 600u);
}

TEST(BatchPublishTest, EmptyBatchIsANoOp) {
  Cluster c(4);
  bool fired = false;
  c.piers[0]->PublishBatch(InvSchema(), {}, 0, [&](Status s) {
    fired = true;
    EXPECT_TRUE(s.ok());
  });
  c.simulator.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(c.metrics.publish_messages, 0u);
  EXPECT_EQ(c.network->metrics().total.messages, 0u);
}

}  // namespace
}  // namespace pierstack::pier
