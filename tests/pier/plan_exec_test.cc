// ExecutePlan end to end over a real DHT topology: compiled plan chains
// must return the exact answer set (and message cost) of the legacy
// ExecuteJoin path, and plan shapes the old API could not express —
// filter-pushdown keyword joins, TopK over fetched columns, aggregates —
// must run to the right answers.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "dht/builder.h"
#include "pier/node.h"
#include "pier/plan.h"

namespace pierstack::pier {
namespace {

const Schema& InvSchema() {
  static const Schema* s = new Schema(
      "inverted",
      {{"keyword", ValueType::kString}, {"fileID", ValueType::kUint64}}, 0);
  return *s;
}

const Schema& CacheSchema() {
  static const Schema* s = new Schema("inverted_cache",
                                      {{"keyword", ValueType::kString},
                                       {"fileID", ValueType::kUint64},
                                       {"fulltext", ValueType::kString}},
                                      0);
  return *s;
}

const Schema& ItemSchema() {
  static const Schema* s = new Schema("item",
                                      {{"fileID", ValueType::kUint64},
                                       {"name", ValueType::kString},
                                       {"size", ValueType::kUint64}},
                                      0);
  return *s;
}

struct Cluster {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  PierMetrics metrics;
  std::vector<std::unique_ptr<PierNode>> piers;

  explicit Cluster(size_t n) {
    network = std::make_unique<sim::Network>(
        &simulator,
        std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond), 31);
    // This suite asserts exact message parity between two back-to-back
    // engine runs; pin the classic routing path so the owner location
    // cache (warmed by the first run) cannot skew the second.
    dht::DhtOptions dopts;
    dopts.routing_policy = dht::RoutingPolicyKind::kClassicChord;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, dopts, 777);
    for (size_t i = 0; i < n; ++i) {
      piers.push_back(std::make_unique<PierNode>(dht->node(i), &metrics));
    }
  }

  std::vector<Tuple> RunPlan(QueryPlan plan, Status* status = nullptr) {
    std::vector<Tuple> out;
    bool done = false;
    piers[2]->ExecutePlan(std::move(plan), [&](Status s,
                                               std::vector<Tuple> rows) {
      done = true;
      if (status) *status = s;
      else EXPECT_TRUE(s.ok()) << s.ToString();
      out = std::move(rows);
    });
    simulator.Run();
    EXPECT_TRUE(done);
    return out;
  }
};

/// madonna ∩ prayer = {0..50}, plus items with sizes 1000+id.
void PublishCorpus(Cluster* c) {
  std::vector<Tuple> inv, cache, items;
  for (uint64_t f = 0; f < 120; ++f) {
    inv.push_back(Tuple({Value("madonna"), Value(f)}));
    cache.push_back(Tuple({Value("madonna"), Value(f),
                           Value("madonna track " + std::to_string(f) +
                                 (f % 2 == 0 ? " live.mp3" : " studio.mp3"))}));
  }
  for (uint64_t f = 0; f < 50; ++f) {
    inv.push_back(Tuple({Value("prayer"), Value(f)}));
  }
  for (uint64_t f = 0; f < 120; ++f) {
    items.push_back(Tuple({Value(f), Value("file " + std::to_string(f)),
                           Value(uint64_t{1000 + f})}));
  }
  c->piers[0]->PublishBatch(InvSchema(), std::move(inv));
  c->piers[0]->PublishBatch(CacheSchema(), std::move(cache));
  c->piers[0]->PublishBatch(ItemSchema(), std::move(items));
  c->piers[0]->FlushPublishQueues();
  c->simulator.Run();
}

DistributedJoin LegacyTwoStage() {
  DistributedJoin join;
  for (const char* kw : {"madonna", "prayer"}) {
    JoinStage stage;
    stage.ns = "inverted";
    stage.key = Value(std::string(kw));
    join.stages.push_back(std::move(stage));
  }
  return join;
}

TEST(PlanExecTest, PlanChainMatchesExecuteJoinAnswersAndMessages) {
  Cluster c(24);
  PublishCorpus(&c);

  uint64_t msgs_before = c.network->metrics().total.messages;
  uint64_t stage_before = c.metrics.join_stage_messages;
  std::set<uint64_t> legacy;
  c.piers[2]->ExecuteJoin(LegacyTwoStage(), [&](Status s, auto entries) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (const auto& e : entries) legacy.insert(e.join_key.AsUint64());
  });
  c.simulator.Run();
  uint64_t legacy_msgs = c.network->metrics().total.messages - msgs_before;
  uint64_t legacy_stages = c.metrics.join_stage_messages - stage_before;

  msgs_before = c.network->metrics().total.messages;
  stage_before = c.metrics.join_stage_messages;
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("madonna"))
                       .RehashJoin("inverted", Value("prayer"))
                       .Build();
  std::set<uint64_t> via_plan;
  for (const Tuple& t : c.RunPlan(std::move(plan))) {
    ASSERT_GE(t.arity(), 1u);
    via_plan.insert(t.at(0).AsUint64());
  }
  uint64_t plan_msgs = c.network->metrics().total.messages - msgs_before;
  uint64_t plan_stages = c.metrics.join_stage_messages - stage_before;

  EXPECT_EQ(via_plan, legacy);
  EXPECT_EQ(via_plan.size(), 50u);
  // Identical transport: same staged engine underneath.
  EXPECT_EQ(plan_stages, legacy_stages);
  EXPECT_EQ(plan_msgs, legacy_msgs);
  EXPECT_EQ(c.metrics.plans_executed, 1u);
  EXPECT_EQ(c.metrics.tuples_dropped_deserialize, 0u);
}

TEST(PlanExecTest, FilterPushdownJoinWithTopKOverFetchedColumn) {
  // The new expressiveness: keep only "live" tracks (substring filter
  // pushed down to the cache owner), join with "prayer", resolve Item
  // tuples and return the 5 largest by file size. Inexpressible through
  // ExecuteJoin + SearchEngine (no TopK, no post-fetch predicates).
  Cluster c(24);
  PublishCorpus(&c);
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted_cache", Value("madonna"),
                                  /*key_col=*/0, /*join_col=*/1)
                       .Filter(Expr::Contains(Expr::Column(2), "live"))
                       .RehashJoin("inverted", Value("prayer"))
                       .FetchJoin("item")
                       .TopK(/*col=*/2, /*k=*/5)
                       .Build();
  std::vector<Tuple> rows = c.RunPlan(std::move(plan));
  // Survivors: even ids in 0..50 ("live" ∩ prayer); top 5 by size are the
  // 5 largest even ids: 48, 46, 44, 42, 40.
  ASSERT_EQ(rows.size(), 5u);
  std::set<uint64_t> got;
  for (const Tuple& t : rows) {
    ASSERT_EQ(t.arity(), 3u);
    got.insert(t.at(0).AsUint64());
  }
  EXPECT_EQ(got, (std::set<uint64_t>{40, 42, 44, 46, 48}));
  EXPECT_EQ(rows[0].at(2).AsUint64(), 1048u);  // ordered: largest first
}

TEST(PlanExecTest, NumericFilterAfterFetchJoin) {
  // Post-fetch predicate on a numeric Item column — possible only because
  // Expr crosses the wire where std::function could not.
  Cluster c(16);
  PublishCorpus(&c);
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("prayer"))
                       .FetchJoin("item")
                       .Filter(Expr::Ge(Expr::Column(2),
                                        Expr::Literal(Value(uint64_t{1045}))))
                       .Build();
  std::vector<Tuple> rows = c.RunPlan(std::move(plan));
  std::set<uint64_t> got;
  for (const Tuple& t : rows) got.insert(t.at(0).AsUint64());
  EXPECT_EQ(got, (std::set<uint64_t>{45, 46, 47, 48, 49}));
}

TEST(PlanExecTest, GroupAggregateFinisher) {
  Cluster c(16);
  PublishCorpus(&c);
  // Count the madonna posting list and take its max fileID, grouped by
  // nothing — one summary row computed at the query node.
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("madonna"))
                       .GroupAggregate({},
                                       {AggregateSpec{AggregateSpec::kCount, 0},
                                        AggregateSpec{AggregateSpec::kMax, 0}})
                       .Build();
  std::vector<Tuple> rows = c.RunPlan(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].arity(), 2u);
  EXPECT_EQ(rows[0].at(0).AsUint64(), 120u);
  EXPECT_DOUBLE_EQ(rows[0].at(1).AsDouble(), 119.0);  // min/max emit doubles
}

TEST(PlanExecTest, LimitCapsPlanAnswers) {
  Cluster c(16);
  PublishCorpus(&c);
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted", Value("madonna"))
                       .RehashJoin("inverted", Value("prayer"))
                       .Limit(7)
                       .Build();
  EXPECT_EQ(c.RunPlan(std::move(plan)).size(), 7u);
}

TEST(PlanExecTest, UncompilablePlanFailsFast) {
  Cluster c(8);
  PublishCorpus(&c);
  QueryPlan bad = PlanBuilder()
                      .IndexScan("inverted", Value("madonna"))
                      .TopK(0, 3)
                      .RehashJoin("inverted", Value("prayer"))
                      .Build();
  Status status = Status::OK();
  c.RunPlan(std::move(bad), &status);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(PlanExecTest, PlanSurvivesWireRoundTripBeforeExecution) {
  // A plan built here, serialized, decoded elsewhere, and executed must
  // answer exactly like the original object — the end-to-end proof that
  // plans (with their Expr trees) really are wire-portable.
  Cluster c(16);
  PublishCorpus(&c);
  QueryPlan plan = PlanBuilder()
                       .IndexScan("inverted_cache", Value("madonna"))
                       .Filter(Expr::Contains(Expr::Column(2), "studio"))
                       .Project({1})
                       .Build();
  auto decoded = QueryPlan::Deserialize(plan.Serialize());
  ASSERT_TRUE(decoded.ok());
  std::set<uint64_t> a, b;
  for (const Tuple& t : c.RunPlan(plan)) a.insert(t.at(0).AsUint64());
  for (const Tuple& t : c.RunPlan(decoded.value())) {
    b.insert(t.at(0).AsUint64());
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 60u);  // the odd "studio" half of 120
}

}  // namespace
}  // namespace pierstack::pier
