// Robustness: the wire decoders must fail cleanly (never crash, never
// accept garbage silently) on malformed input.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "pier/schema.h"

namespace pierstack::pier {
namespace {

TEST(FuzzTest, TupleDeserializeRandomBytesNeverCrashes) {
  Rng rng(0xf00d);
  size_t ok = 0, corrupt = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    size_t len = rng.NextBelow(64);
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    auto result = Tuple::Deserialize(junk);
    if (result.ok()) {
      ++ok;
      // Anything accepted must re-serialize to a valid tuple again.
      auto round = Tuple::Deserialize(result.value().Serialize());
      ASSERT_TRUE(round.ok());
      EXPECT_EQ(round.value(), result.value());
    } else {
      ++corrupt;
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
  // Both outcomes occur over 5000 random buffers.
  EXPECT_GT(corrupt, 0u);
  EXPECT_GT(ok, 0u);  // e.g. the empty-tuple encoding [0x00]
}

TEST(FuzzTest, TruncatedValidTuplesAreCorrupt) {
  Tuple t({Value(uint64_t{123456}), Value(std::string("filename.mp3")),
           Value(2.5)});
  auto bytes = t.Serialize();
  for (size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    auto r = Tuple::Deserialize(prefix);
    if (r.ok()) {
      // A shorter valid tuple is possible only if the prefix happens to
      // be self-delimiting; it must then be internally consistent.
      EXPECT_LE(r.value().WireSize(), cut);
    }
  }
}

TEST(FuzzTest, RandomTuplesRoundTrip) {
  Rng rng(0xcafe);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<Value> vals;
    size_t arity = rng.NextBelow(6);
    for (size_t i = 0; i < arity; ++i) {
      switch (rng.NextBelow(4)) {
        case 0:
          vals.push_back(Value(rng.Next()));
          break;
        case 1:
          vals.push_back(Value(static_cast<int64_t>(rng.Next())));
          break;
        case 2:
          vals.push_back(Value(rng.NextDouble() * 1e9));
          break;
        default: {
          std::string s;
          size_t len = rng.NextBelow(20);
          for (size_t j = 0; j < len; ++j) {
            s.push_back(static_cast<char>(rng.NextBelow(256)));
          }
          vals.push_back(Value(std::move(s)));
        }
      }
    }
    Tuple t(std::move(vals));
    auto bytes = t.Serialize();
    ASSERT_EQ(bytes.size(), t.WireSize());
    auto back = Tuple::Deserialize(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), t);
  }
}

TEST(FuzzTest, ReaderNeverReadsPastEnd) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.NextBelow(32);
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<uint8_t>(rng.NextBelow(256));
    BytesReader r(junk);
    // Issue a random sequence of reads; remaining() must stay consistent.
    for (int op = 0; op < 8; ++op) {
      size_t before = r.remaining();
      switch (rng.NextBelow(5)) {
        case 0:
          (void)r.GetU8();
          break;
        case 1:
          (void)r.GetU32();
          break;
        case 2:
          (void)r.GetU64();
          break;
        case 3:
          (void)r.GetVarint();
          break;
        default:
          (void)r.GetString();
          break;
      }
      EXPECT_LE(r.remaining(), before);
    }
  }
}

}  // namespace
}  // namespace pierstack::pier
