// The paper's second stated future work (Section 7): "we plan to study
// the tradeoffs between the timeout and query workload" — decreasing the
// Gnutella timeout improves aggregate latency but increases the likelihood
// of issuing queries in PIER.
//
// Sweeps the hybrid timeout and reports average time-to-first-result and
// the share of queries re-issued into the DHT (the PIER query load).
//
//   ./build/bench/ablation_timeout [scale]
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "dht/builder.h"
#include "gnutella/topology.h"
#include "hybrid/hybrid_ultrapeer.h"
#include "workload/trace.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  TablePrinter table({"timeout (s)", "avg 1st result (s)",
                      "queries -> DHT", "DHT answered", "unanswered"});
  for (double timeout_s : {5.0, 10.0, 20.0, 30.0, 45.0}) {
    workload::WorkloadConfig wc;
    wc.num_nodes = static_cast<size_t>(1000 * scale);
    wc.num_distinct_files = static_cast<size_t>(1500 * scale);
    wc.num_queries = 300;
    wc.max_replicas = wc.num_nodes / 8;
    wc.seed = 2004;
    auto trace = workload::GenerateTrace(wc);

    sim::Simulator simulator;
    sim::Network network(&simulator,
                         std::make_unique<sim::UniformLatency>(
                             15 * sim::kMillisecond, 150 * sim::kMillisecond),
                         13);
    size_t num_ups = wc.num_nodes / 5;
    gnutella::TopologyConfig tc;
    tc.num_ultrapeers = num_ups;
    tc.num_leaves = wc.num_nodes - num_ups;
    tc.protocol.ultrapeer_degree = 16;
    tc.protocol.query_mode = gnutella::QueryMode::kDynamic;
    tc.protocol.dynamic.max_ttl = 2;
    tc.seed = 6;
    gnutella::GnutellaNetwork gnet(&network, tc);
    for (size_t i = 0; i < wc.num_nodes; ++i) {
      auto* node = gnet.node(i);
      node->SetSharedFiles(trace.FilenamesOfNode(i));
      if (node->role() == gnutella::Role::kLeaf) {
        for (sim::HostId up : node->parent_ultrapeers()) {
          node->RepublishTo(up);
        }
      }
    }
    dht::DhtDeployment dht(&network, 50, dht::DhtOptions{}, 314);
    pier::PierMetrics pm;
    hybrid::HybridConfig hc;
    hc.gnutella_timeout =
        static_cast<sim::SimTime>(timeout_s * sim::kSecond);
    std::vector<std::unique_ptr<pier::PierNode>> piers;
    std::vector<std::unique_ptr<hybrid::HybridUltrapeer>> hybrids;
    for (size_t i = 0; i < 50; ++i) {
      piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &pm));
      hybrids.push_back(std::make_unique<hybrid::HybridUltrapeer>(
          gnet.ultrapeer(i), piers[i].get(), hc));
    }
    simulator.Run();
    // Every ultrapeer proactively publishes rare local items so the DHT
    // can actually answer the fallbacks (full-deployment publishing).
    for (auto& h : hybrids) {
      h->PublishLocalFiles([&](const gnutella::KeywordIndex::Entry&) {
        return true;  // budget-unconstrained for this sweep
      });
    }
    simulator.Run();

    Summary first_result;
    size_t answered = 0, tested = 0;
    for (size_t q = 0; q < trace.queries.size() && tested < 100; ++q) {
      if (trace.queries[q].total_results == 0 ||
          trace.queries[q].total_results > 30) {
        continue;
      }
      ++tested;
      sim::SimTime start = simulator.now();
      auto first = std::make_shared<sim::SimTime>(0);
      hybrids[tested % 50]->Query(trace.queries[q].text,
                                  [first](const hybrid::HybridHit& h) {
                                    if (*first == 0) *first = h.arrival;
                                  });
      simulator.Run();
      if (*first > 0) {
        ++answered;
        first_result.Add(double(*first - start) / sim::kSecond);
      }
    }
    uint64_t reissued = 0, dht_answered = 0;
    for (auto& h : hybrids) {
      reissued += h->stats().dht_reissued;
      dht_answered += h->stats().dht_answered;
    }
    table.AddRow({FormatF(timeout_s, 0),
                  first_result.empty() ? "-" : FormatF(first_result.mean(), 1),
                  FormatI((long long)reissued),
                  FormatI((long long)dht_answered),
                  FormatI((long long)(tested - answered))});
  }
  table.Print();
  std::printf(
      "\nreading: shrinking the timeout cuts rare-item latency toward\n"
      "timeout + DHT-lookup, but sends more queries into PIER — the exact\n"
      "tradeoff the paper deferred to future work (Section 7).\n");
  return 0;
}
