// Figure 10: publishing overhead (% of items published) vs the replica
// threshold, over the trace's replica distribution.
//
// Paper anchor: at replica threshold 1, 23% of items are published; the
// increase flattens as the threshold grows.
//
//   ./build/bench/fig10_publishing_overhead [scale]
#include <cstdio>

#include "common/table.h"
#include "hybrid/schemes.h"
#include "workload/trace.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  std::printf("fig10: %zu nodes, %zu distinct files, %llu copies\n",
              wc.num_nodes, trace.files.size(),
              (unsigned long long)trace.total_copies);

  // Queried-universe view (the paper's population is derived from query
  // results) and the whole-trace view, side by side.
  auto universe = trace.QueriedFileUniverse();
  uint64_t uni_total = 0;
  for (uint32_t f : universe) uni_total += trace.files[f].replicas;

  TablePrinter table({"replica threshold", "% items published (queried)",
                      "% items published (all files)"});
  for (uint32_t thr = 0; thr <= 20; ++thr) {
    uint64_t uni_pub = 0;
    for (uint32_t f : universe) {
      if (trace.files[f].replicas <= thr) uni_pub += trace.files[f].replicas;
    }
    table.AddRow(
        {FormatI(thr),
         FormatPct(uni_total ? double(uni_pub) / double(uni_total) : 0),
         FormatPct(trace.CopiesFractionAtOrBelow(thr))});
  }
  table.Print();
  std::printf("\nanchor (paper -> measured, threshold 1): 23%% -> %s\n",
              FormatPct(trace.CopiesFractionAtOrBelow(1)).c_str());
  return 0;
}
