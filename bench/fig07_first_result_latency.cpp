// Figure 7: first-result latency vs result-set size under dynamic
// querying.
//
// Paper anchors: queries returning a single result wait 73 s on average
// for their first result; <= 10 results wait ~50 s; > 150 results get the
// first result in ~6 s. The mechanism is dynamic querying's per-neighbor
// pacing: rare items need many widening rounds.
//
//   ./build/bench/fig07_first_result_latency [scale]
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  ReplayConfig config;
  // Paper-like ultrapeer fan-out: 32 neighbors, ~2.4 s pacing, and a
  // network large enough that one widening round (TTL 2 through a single
  // neighbor ≈ 32 ultrapeers) covers ~1% of the ultrapeers — so a rare
  // item waits through many rounds, matching the paper's 73 s scale.
  config.num_ultrapeers = 3300;
  config.num_leaves = 16700;
  config.ultrapeer_degree = 32;
  config.query_mode = gnutella::QueryMode::kDynamic;
  config.dynamic.desired_results = 150;
  config.dynamic.max_ttl = 2;
  config.num_queries = 250;
  config.Scale(ParseScaleArg(argc, argv));
  std::printf("fig07: %zu ultrapeers (degree 32), %zu leaves, %zu queries, "
              "dynamic querying\n",
              config.num_ultrapeers, config.num_leaves, config.num_queries);
  auto setup = BuildReplaySetup(config);
  auto observations = RunLatencyReplay(setup.get(), config.num_queries, 99);

  struct Bucket {
    const char* label;
    size_t lo, hi;
  };
  const Bucket buckets[] = {
      {"1", 1, 1},          {"2-3", 2, 3},      {"4-10", 4, 10},
      {"11-30", 11, 30},    {"31-100", 31, 100},
      {"101-150", 101, 150}, {">150", 151, SIZE_MAX},
  };
  TablePrinter table({"results", "avg first-result latency (s)", "queries"});
  Summary overall_rare, overall_single;
  size_t no_result = 0;
  for (const auto& b : buckets) {
    Summary lat;
    for (const auto& o : observations) {
      if (o.first_result_sec < 0) continue;
      if (o.results >= b.lo && o.results <= b.hi) {
        lat.Add(o.first_result_sec);
        if (o.results <= 10) overall_rare.Add(o.first_result_sec);
        if (o.results == 1) overall_single.Add(o.first_result_sec);
      }
    }
    table.AddRow({b.label, lat.empty() ? "-" : FormatF(lat.mean(), 1),
                  FormatI(static_cast<long long>(lat.count()))});
  }
  for (const auto& o : observations) no_result += o.first_result_sec < 0;
  table.Print();

  std::printf("\nanchors (paper -> measured):\n");
  std::printf("  first result, 1-result queries : 73 s -> %s s\n",
              overall_single.empty() ? "-"
                                     : FormatF(overall_single.mean(), 1).c_str());
  std::printf("  first result, <=10 results     : 50 s -> %s s\n",
              overall_rare.empty() ? "-"
                                   : FormatF(overall_rare.mean(), 1).c_str());
  std::printf("  queries with no result at all  : %zu of %zu\n", no_result,
              observations.size());
  std::printf(
      "shape: latency falls monotonically as result sets grow; the\n"
      "absolute popular-item latency is lower here than the paper's 6 s\n"
      "(no real-world peer queueing), but the rare/popular gap holds.\n");
  return 0;
}
