// Figure 11: average query recall (QR) vs the replica threshold, for
// search horizons of 5%, 15% and 30% (Perfect publishing, trace-driven).
//
// Paper anchors: at threshold 0 recall equals the horizon fraction; at
// threshold 1 QR reaches 47% / 52% / 61%; at threshold 2 it exceeds 64%.
//
//   ./build/bench/fig11_query_recall [scale]
#include <cstdio>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  auto scores = hybrid::PerfectScheme().Scores(trace);
  std::printf("fig11: %zu nodes, %zu queries evaluated\n", wc.num_nodes,
              trace.queries.size());

  const double horizons[] = {0.05, 0.15, 0.30};
  TablePrinter table({"replica threshold", "QR h=5%", "QR h=15%",
                      "QR h=30%"});
  double qr_at1[3] = {0, 0, 0}, qr_at2[3] = {0, 0, 0};
  for (uint32_t thr = 0; thr <= 10; ++thr) {
    auto pub = hybrid::SelectByThreshold(scores, thr);
    std::vector<std::string> row{FormatI(thr)};
    for (size_t h = 0; h < 3; ++h) {
      hybrid::EvalConfig cfg;
      cfg.horizon_fraction = horizons[h];
      cfg.trials_per_query = 3;
      auto r = hybrid::EvaluateHybrid(trace, pub, cfg);
      row.push_back(FormatPct(r.avg_query_recall));
      if (thr == 1) qr_at1[h] = r.avg_query_recall;
      if (thr == 2) qr_at2[h] = r.avg_query_recall;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nanchors (paper -> measured):\n");
  std::printf("  threshold 1: 47%%/52%%/61%% -> %s/%s/%s\n",
              FormatPct(qr_at1[0]).c_str(), FormatPct(qr_at1[1]).c_str(),
              FormatPct(qr_at1[2]).c_str());
  std::printf("  threshold 2 exceeds 64%%    -> %s/%s/%s\n",
              FormatPct(qr_at2[0]).c_str(), FormatPct(qr_at2[1]).c_str(),
              FormatPct(qr_at2[2]).c_str());
  return 0;
}
