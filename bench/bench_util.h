// Shared infrastructure for the figure-reproduction benches.
//
// The measurement benches (Figures 4–7) all follow the paper's method:
// load a synthetic trace into a simulated Gnutella network, replay the
// trace's queries from a set of monitor ultrapeers (the paper's 30
// PlanetLab vantage points), and union the per-monitor result sets.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "gnutella/topology.h"
#include "workload/trace.h"

namespace pierstack::bench {

/// One simulated measurement deployment.
struct ReplaySetup {
  sim::Simulator simulator;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<gnutella::GnutellaNetwork> gnutella;
  workload::Trace trace;
};

struct ReplayConfig {
  size_t num_ultrapeers = 3300;
  size_t num_leaves = 16700;
  size_t ultrapeer_degree = 24;
  uint8_t flood_ttl = 2;
  gnutella::QueryMode query_mode = gnutella::QueryMode::kFlood;
  gnutella::DynamicQueryConfig dynamic;
  size_t files_per_node_x10 = 42;  ///< distinct files ≈ nodes * 4.2 / E[R].
  size_t num_queries = 400;
  uint64_t seed = 2004;

  /// Applies a global size multiplier (command-line scaling).
  void Scale(double f);
};

/// Parses an optional leading scale argument ("0.25") from main(); returns
/// 1.0 when absent.
double ParseScaleArg(int argc, char** argv);

/// Builds the network, loads every node's library from the trace, and
/// settles leaf publishing. Node i of the network holds trace node i's
/// files (ultrapeers first, then leaves).
std::unique_ptr<ReplaySetup> BuildReplaySetup(const ReplayConfig& config);

/// Per-query statistics from a monitor replay.
struct QueryReplayStats {
  /// Result records seen by each monitor (deduplicated per monitor).
  std::vector<size_t> monitor_counts;
  /// |union of the first k monitors' result sets| for each requested k.
  std::vector<size_t> union_counts;
  /// Average replication factor over distinct filenames in the union of
  /// all monitors (the paper's Figure 4 x-axis).
  double avg_replication = 0.0;
  /// Ground-truth result count from the trace.
  uint64_t ground_truth = 0;
};

/// Replays the first `num_queries` trace queries from `monitors` ultrapeer
/// vantage points (flood mode — the paper's measurement setup).
std::vector<QueryReplayStats> RunMonitorReplay(
    ReplaySetup* setup, size_t monitors, size_t num_queries,
    const std::vector<size_t>& union_ks);

/// First-result latency observation (dynamic-querying mode, Figure 7).
struct LatencyObservation {
  size_t results = 0;              ///< Total results the query received.
  double first_result_sec = -1.0;  ///< -1 when no result ever arrived.
};

/// Replays queries from random leaves under dynamic querying, recording
/// each query's first-result latency and final result count.
std::vector<LatencyObservation> RunLatencyReplay(ReplaySetup* setup,
                                                 size_t num_queries,
                                                 uint64_t seed);

}  // namespace pierstack::bench
