// Ablation: Chord vs Bamboo under the same PIER workload.
//
// The paper runs on Bamboo but only relies on O(log N) routing; this
// ablation verifies the choice of overlay does not change PIERSearch's
// behavior, only its constant factors (hops per lookup, maintenance shape).
//
//   ./build/bench/ablation_overlay [scale]
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "dht/builder.h"

using namespace pierstack;

namespace {

struct OverlayStats {
  double mean_hops;
  uint32_t max_hops;
  double route_bytes_per_put;
  double get_roundtrip_ms;
};

OverlayStats Measure(dht::OverlayKind kind, size_t n) {
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           25 * sim::kMillisecond),
                       19);
  dht::DhtOptions opts;
  opts.overlay = kind;
  dht::DhtDeployment dht(&network, n, opts, 2718);

  Rng rng(1);
  const size_t kOps = 500;
  std::vector<dht::Key> keys;
  for (size_t i = 0; i < kOps; ++i) {
    dht::Key k = rng.Next();
    keys.push_back(k);
    size_t src = static_cast<size_t>(rng.NextBelow(n));
    dht.node(src)->Put("bench", k, {1, 2, 3, 4, 5, 6, 7, 8});
  }
  simulator.Run();
  uint64_t route_bytes = network.metrics().by_tag.at("dht.route").bytes;

  Summary get_latency;
  for (size_t i = 0; i < kOps; ++i) {
    size_t src = static_cast<size_t>(rng.NextBelow(n));
    sim::SimTime start = simulator.now();
    bool* done = new bool(false);
    dht.node(src)->Get("bench", keys[i],
                       [&, start, done](Status s, auto values) {
                         if (s.ok() && !values.empty()) {
                           get_latency.Add(
                               double(simulator.now() - start) /
                               sim::kMillisecond);
                         }
                         *done = true;
                       });
    simulator.Run();
    delete done;
  }

  OverlayStats out;
  out.mean_hops = dht.metrics().MeanHops();
  out.max_hops = dht.metrics().max_hops;
  out.route_bytes_per_put = double(route_bytes) / kOps;
  out.get_roundtrip_ms = get_latency.empty() ? 0 : get_latency.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  TablePrinter table({"overlay", "nodes", "mean hops", "max hops",
                      "route bytes/put", "get RTT (ms, 25ms links)"});
  for (size_t n : {64, 256, 1024}) {
    size_t nodes = static_cast<size_t>(n * scale);
    if (nodes < 8) nodes = 8;
    auto chord = Measure(dht::OverlayKind::kChord, nodes);
    auto bamboo = Measure(dht::OverlayKind::kBamboo, nodes);
    table.AddRow({"Chord", FormatI((long long)nodes),
                  FormatF(chord.mean_hops, 2), FormatI(chord.max_hops),
                  FormatF(chord.route_bytes_per_put, 0),
                  FormatF(chord.get_roundtrip_ms, 0)});
    table.AddRow({"Bamboo", FormatI((long long)nodes),
                  FormatF(bamboo.mean_hops, 2), FormatI(bamboo.max_hops),
                  FormatF(bamboo.route_bytes_per_put, 0),
                  FormatF(bamboo.get_roundtrip_ms, 0)});
  }
  table.Print();
  std::printf(
      "\nexpectation: Bamboo's base-16 prefix routing takes ~1/4 the hops\n"
      "of Chord's binary fingers (log16 vs 0.5*log2); both are O(log N),\n"
      "which is all PIER assumes (paper Section 2).\n");
  return 0;
}
