// Figure 14: rare-item scheme comparison — average query DISTINCT recall
// vs publishing budget, horizon 5%.
//
// Paper findings: same ordering as Figure 13; SAM(15%) tracks Perfect for
// budgets above 50%; TPF beats TF at large budgets and trails it at small
// ones.
//
//   ./build/bench/fig14_schemes_qdr [scale]
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  std::printf("fig14: %zu nodes, horizon 5%%\n", wc.num_nodes);

  std::vector<std::unique_ptr<hybrid::RareItemScheme>> schemes;
  schemes.push_back(std::make_unique<hybrid::PerfectScheme>());
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.15, 1));
  schemes.push_back(std::make_unique<hybrid::TermPairFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::TermFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::RandomScheme>(3));

  std::vector<std::vector<double>> scores;
  std::vector<std::string> headers{"budget (% items)"};
  for (auto& s : schemes) {
    scores.push_back(s->Scores(trace));
    headers.push_back(s->name());
  }

  hybrid::EvalConfig cfg;
  cfg.horizon_fraction = 0.05;
  cfg.trials_per_query = 3;

  TablePrinter table(headers);
  double perfect70 = 0, sam70 = 0;
  for (int budget = 10; budget <= 90; budget += 10) {
    std::vector<std::string> row{FormatI(budget)};
    for (size_t s = 0; s < schemes.size(); ++s) {
      auto pub = hybrid::SelectByBudget(trace, scores[s], budget / 100.0);
      auto r = hybrid::EvaluateHybrid(trace, pub, cfg);
      row.push_back(FormatPct(r.avg_query_distinct_recall));
      if (budget == 70 && s == 0) perfect70 = r.avg_query_distinct_recall;
      if (budget == 70 && s == 1) sam70 = r.avg_query_distinct_recall;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nanchor (paper -> measured): SAM(15%%) ~= Perfect above 50%% "
      "budget: %s vs %s at 70%%\n",
      FormatPct(sam70).c_str(), FormatPct(perfect70).c_str());
  return 0;
}
