// Ablation: leaf publishing mode — full file lists vs QRP-style keyword
// Bloom filters (paper footnote 2: Bloom filters "reduce publishing and
// searching costs in Gnutella").
//
// Measures publishing bytes, query-path messages (including UP→leaf
// forwards and Bloom false positives) and recall on the same workload.
//
//   ./build/bench/ablation_qrp [scale]
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/table.h"

using namespace pierstack;
using namespace pierstack::bench;

namespace {

struct ModeResult {
  uint64_t publish_bytes = 0;
  uint64_t query_messages = 0;
  uint64_t hit_messages = 0;
  uint64_t leaf_forwards = 0;
  uint64_t false_positives = 0;
  uint64_t results = 0;
  size_t queries = 0;
};

ModeResult RunModeFresh(gnutella::LeafPublishMode mode, double scale) {
  size_t ups = static_cast<size_t>(300 * scale);
  size_t leaves = static_cast<size_t>(1500 * scale);
  size_t queries = static_cast<size_t>(200 * scale);
  workload::WorkloadConfig wc;
  wc.num_nodes = ups + leaves;
  wc.num_distinct_files = (ups + leaves) * 3 / 2;
  wc.num_queries = queries;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);

  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           20 * sim::kMillisecond),
                       2);
  gnutella::TopologyConfig tc;
  tc.num_ultrapeers = ups;
  tc.num_leaves = leaves;
  tc.protocol.ultrapeer_degree = 8;
  tc.protocol.flood_ttl = 2;
  tc.protocol.leaf_publish = mode;
  tc.seed = 7;
  gnutella::GnutellaNetwork gnet(&network, tc);
  for (size_t i = 0; i < wc.num_nodes; ++i) {
    auto* node = gnet.node(i);
    node->SetSharedFiles(trace.FilenamesOfNode(i));
    if (node->role() == gnutella::Role::kLeaf) {
      for (sim::HostId up : node->parent_ultrapeers()) node->RepublishTo(up);
    }
  }
  simulator.Run();

  ModeResult out;
  out.publish_bytes = network.metrics().by_tag.count("gnutella.publish")
                          ? network.metrics().by_tag.at("gnutella.publish").bytes
                          : 0;
  gnet.metrics() = gnutella::GnutellaMetrics{};
  uint64_t results = 0;
  for (size_t q = 0; q < trace.queries.size(); ++q) {
    gnet.ultrapeer(q % ups)->StartQuery(
        trace.queries[q].text,
        [&results](const std::vector<gnutella::QueryResult>& rs) {
          results += rs.size();
        });
  }
  simulator.Run();
  out.query_messages = gnet.metrics().query_messages;
  out.hit_messages = gnet.metrics().query_hit_messages;
  out.leaf_forwards = gnet.metrics().qrp_leaf_forwards;
  out.false_positives = gnet.metrics().qrp_false_positives;
  out.results = results;
  out.queries = trace.queries.size();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ParseScaleArg(argc, argv);
  auto full = RunModeFresh(gnutella::LeafPublishMode::kFullList, scale);
  auto qrp = RunModeFresh(gnutella::LeafPublishMode::kBloomFilter, scale);

  TablePrinter table({"metric", "full file lists", "QRP Bloom filters"});
  table.AddRow({"leaf publish bytes", FormatI((long long)full.publish_bytes),
                FormatI((long long)qrp.publish_bytes)});
  table.AddRow({"query messages (UP mesh)",
                FormatI((long long)full.query_messages),
                FormatI((long long)qrp.query_messages)});
  table.AddRow({"UP->leaf forwards", FormatI((long long)full.leaf_forwards),
                FormatI((long long)qrp.leaf_forwards)});
  table.AddRow({"  of which false positives",
                FormatI((long long)full.false_positives),
                FormatI((long long)qrp.false_positives)});
  table.AddRow({"hit messages", FormatI((long long)full.hit_messages),
                FormatI((long long)qrp.hit_messages)});
  table.AddRow({"results delivered", FormatI((long long)full.results),
                FormatI((long long)qrp.results)});
  table.Print();
  std::printf(
      "\nexpectation: QRP cuts publish bytes by %.1fx at equal recall, at\n"
      "the price of per-query leaf forwards (plus Bloom false positives).\n",
      qrp.publish_bytes ? double(full.publish_bytes) / qrp.publish_bytes : 0.0);
  return 0;
}
