// Figure 13: rare-item scheme comparison — average query recall vs
// publishing budget (% of items published), horizon 5%.
//
// Paper findings: all schemes lie between Perfect (top) and Random
// (bottom); SAM(15%) nearly matches Perfect above 50% budget; TF/TPF give
// a ~40% improvement over Random at 50% budget.
//
//   ./build/bench/fig13_schemes_qr [scale]
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  std::printf("fig13: %zu nodes, horizon 5%%\n", wc.num_nodes);

  std::vector<std::unique_ptr<hybrid::RareItemScheme>> schemes;
  schemes.push_back(std::make_unique<hybrid::PerfectScheme>());
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.15, 1));
  schemes.push_back(std::make_unique<hybrid::TermPairFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::TermFrequencyScheme>());
  schemes.push_back(std::make_unique<hybrid::RandomScheme>(3));

  std::vector<std::vector<double>> scores;
  std::vector<std::string> headers{"budget (% items)"};
  for (auto& s : schemes) {
    scores.push_back(s->Scores(trace));
    headers.push_back(s->name());
  }

  hybrid::EvalConfig cfg;
  cfg.horizon_fraction = 0.05;
  cfg.trials_per_query = 3;

  TablePrinter table(headers);
  double perfect50 = 0, random50 = 0, tf50 = 0;
  for (int budget = 10; budget <= 90; budget += 10) {
    std::vector<std::string> row{FormatI(budget)};
    for (size_t s = 0; s < schemes.size(); ++s) {
      auto pub = hybrid::SelectByBudget(trace, scores[s], budget / 100.0);
      auto r = hybrid::EvaluateHybrid(trace, pub, cfg);
      row.push_back(FormatPct(r.avg_query_recall));
      if (budget == 50 && s == 0) perfect50 = r.avg_query_recall;
      if (budget == 50 && s == 3) tf50 = r.avg_query_recall;
      if (budget == 50 && s == 4) random50 = r.avg_query_recall;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\nanchors at 50%% budget (paper -> measured):\n");
  std::printf("  ordering Perfect > TF > Random : %s > %s > %s\n",
              FormatPct(perfect50).c_str(), FormatPct(tf50).c_str(),
              FormatPct(random50).c_str());
  std::printf("  TF improvement over Random     : ~40%% -> %s\n",
              FormatPct(random50 > 0 ? tf50 / random50 - 1.0 : 0).c_str());
  return 0;
}
