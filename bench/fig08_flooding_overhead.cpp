// Figure 8: Gnutella flooding overhead — ultrapeers visited vs query
// messages sent, from a crawl of the ultrapeer topology.
//
// Paper anchors (100k-node network, mixed 6/32-degree ultrapeers): 48K
// messages reach ~9,000 ultrapeers; the next 9,000 cost an extra ~94K —
// diminishing returns from duplicate deliveries over redundant paths.
//
//   ./build/bench/fig08_flooding_overhead [scale]
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/table.h"
#include "gnutella/crawler.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  double scale = ParseScaleArg(argc, argv);
  size_t num_ups = static_cast<size_t>(20000 * scale);
  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::UniformLatency>(
                           10 * sim::kMillisecond, 100 * sim::kMillisecond),
                       4);
  gnutella::TopologyConfig tc;
  tc.num_ultrapeers = num_ups;
  tc.num_leaves = 0;  // topology analysis needs the ultrapeer mesh only
  tc.protocol.ultrapeer_degree = 32;  // modern LimeWire ultrapeers
  tc.seed = 2004;
  gnutella::GnutellaNetwork net(&network, tc);
  simulator.Run();
  std::printf("fig08: crawling %zu ultrapeers (degree 32)...\n", num_ups);

  gnutella::Crawler crawler(&network, /*parallelism=*/200);
  gnutella::CrawlGraph graph;
  std::vector<sim::HostId> seeds;
  for (size_t i = 0; i < 30 && i < num_ups; ++i) {
    seeds.push_back(net.ultrapeer(i)->host());
  }
  crawler.Start(seeds, [&](const gnutella::CrawlGraph& g) { graph = g; });
  simulator.Run();
  std::printf("crawl complete: %zu ultrapeers, %llu crawl messages\n\n",
              graph.num_ultrapeers(),
              (unsigned long long)graph.crawl_messages);

  std::vector<sim::HostId> sources(seeds.begin(),
                                   seeds.begin() + std::min<size_t>(10, seeds.size()));
  auto steps = gnutella::FloodExpansionAveraged(graph, sources, 6);

  TablePrinter table({"TTL", "ultrapeers visited", "messages (K)",
                      "marginal msgs per new ultrapeer"});
  uint64_t prev_reached = 1, prev_msgs = 0;
  for (const auto& s : steps) {
    double marginal =
        s.ultrapeers_reached > prev_reached
            ? double(s.messages - prev_msgs) /
                  double(s.ultrapeers_reached - prev_reached)
            : 0.0;
    table.AddRow({FormatI(s.ttl), FormatI((long long)s.ultrapeers_reached),
                  FormatF(s.messages / 1000.0, 1), FormatF(marginal, 2)});
    prev_reached = s.ultrapeers_reached;
    prev_msgs = s.messages;
  }
  table.Print();
  std::printf(
      "\npaper shape: the marginal message cost per newly visited\n"
      "ultrapeer grows with the horizon (48K msgs -> 9K UPs, then +94K\n"
      "-> +9K in the paper's 100k-node crawl).\n");
  return 0;
}
