// Figure 4: correlating query result-set size with the average replication
// factor of the items in the result set.
//
// Paper finding: queries with small result sets return mostly rare items;
// large result sets are dominated by popular items. Both axes rise
// together on a log-log plot.
//
//   ./build/bench/fig04_results_vs_replication [scale]
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  ReplayConfig config;
  config.Scale(ParseScaleArg(argc, argv));
  std::printf("fig04: %zu ultrapeers, %zu leaves, %zu queries x 30 monitors\n",
              config.num_ultrapeers, config.num_leaves, config.num_queries);
  auto setup = BuildReplaySetup(config);
  auto stats = RunMonitorReplay(setup.get(), 30, config.num_queries, {30});

  // Group per-monitor observations by result-set size (log buckets) and
  // average the replication factor of the query's union result set.
  LogHistogram buckets(3.0);
  std::map<int, std::pair<double, size_t>> by_bucket;  // bucket -> (sum, n)
  auto bucket_of = [](size_t n) {
    int b = 0;
    size_t edge = 1;
    while (n > edge) {
      edge *= 3;
      ++b;
    }
    return b;
  };
  for (const auto& s : stats) {
    if (s.avg_replication <= 0) continue;
    for (size_t m = 0; m < s.monitor_counts.size(); ++m) {
      size_t n = s.monitor_counts[m];
      if (n == 0) continue;
      auto& [sum, cnt] = by_bucket[bucket_of(n)];
      sum += s.avg_replication;
      ++cnt;
    }
  }

  TablePrinter table({"result-set size (bucket)", "avg replication factor",
                      "observations"});
  size_t lo = 1;
  for (const auto& [b, acc] : by_bucket) {
    size_t hi = 1;
    for (int i = 0; i < b; ++i) hi *= 3;
    lo = b == 0 ? 1 : hi / 3 + 1;
    char label[48];
    if (lo == hi) {
      std::snprintf(label, sizeof(label), "%zu", hi);
    } else {
      std::snprintf(label, sizeof(label), "%zu-%zu", lo, hi);
    }
    table.AddRow({label, FormatF(acc.first / acc.second, 2),
                  FormatI(static_cast<long long>(acc.second))});
  }
  table.Print();
  std::printf(
      "\npaper shape: replication factor grows with result-set size\n"
      "(log-log positive correlation, Figure 4).\n");
  return 0;
}
