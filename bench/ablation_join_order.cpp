// Ablation: the SHJ chain's "smaller posting lists first" ordering.
//
// DESIGN.md calls this decision out: the paper replays queries "optimized
// to compute smaller posting lists first". This bench quantifies what the
// probe-then-order optimizer saves in shipped posting entries and what it
// costs in extra probe messages.
//
//   ./build/bench/ablation_join_order [scale]
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "common/table.h"
#include "dht/builder.h"
#include "piersearch/publisher.h"
#include "piersearch/search_engine.h"
#include "workload/trace.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(3000 * scale);
  wc.num_distinct_files = static_cast<size_t>(4500 * scale);
  wc.num_queries = 400;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);

  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           20 * sim::kMillisecond),
                       23);
  dht::DhtDeployment dht(&network, 64, dht::DhtOptions{}, 27);
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  for (size_t i = 0; i < dht.size(); ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &metrics));
  }
  piersearch::Publisher publisher(piers[0].get());
  for (size_t node = 0; node < trace.node_files.size(); ++node) {
    for (uint32_t f : trace.node_files[node]) {
      publisher.PublishFile(trace.files[f].filename, 1 << 20,
                            static_cast<uint32_t>(node), 6346,
                            piersearch::PublishOptions{});
    }
  }
  simulator.Run();

  auto run = [&](bool ordered, Summary* shipped, Summary* msgs,
                 Summary* latency) {
    size_t replayed = 0;
    for (const auto& q : trace.queries) {
      if (q.terms.size() < 2 || q.matches.empty()) continue;
      if (replayed >= 150) break;
      piersearch::SearchEngine engine(piers[replayed % 64].get());
      piersearch::SearchOptions so;
      so.order_by_posting_size = ordered;
      so.fetch_items = false;
      so.max_results = SIZE_MAX;
      uint64_t ship_before = metrics.posting_entries_shipped;
      uint64_t msgs_before = metrics.join_stage_messages +
                             metrics.probe_messages;
      sim::SimTime start = simulator.now();
      bool ok = false;
      engine.Search(q.text, so, [&](Status s, auto) { ok = s.ok(); });
      simulator.Run();
      if (!ok) continue;
      shipped->Add(double(metrics.posting_entries_shipped - ship_before));
      msgs->Add(double(metrics.join_stage_messages + metrics.probe_messages -
                       msgs_before));
      latency->Add(double(simulator.now() - start) / sim::kMillisecond);
      ++replayed;
    }
  };

  Summary ship_no, msg_no, lat_no, ship_yes, msg_yes, lat_yes;
  run(false, &ship_no, &msg_no, &lat_no);
  run(true, &ship_yes, &msg_yes, &lat_yes);

  TablePrinter table({"plan order", "avg entries shipped", "avg msgs",
                      "avg latency (ms)"});
  table.AddRow({"as given (T1..Tk)", FormatF(ship_no.mean(), 1),
                FormatF(msg_no.mean(), 1), FormatF(lat_no.mean(), 0)});
  table.AddRow({"smallest first (probed)", FormatF(ship_yes.mean(), 1),
                FormatF(msg_yes.mean(), 1), FormatF(lat_yes.mean(), 0)});
  table.Print();
  std::printf(
      "\ntrade-off: probing adds one round of size lookups but cuts the\n"
      "shipped posting entries by %.1fx on this workload.\n",
      ship_yes.mean() > 0 ? ship_no.mean() / ship_yes.mean() : 0.0);
  return 0;
}
