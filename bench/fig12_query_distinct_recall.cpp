// Figure 12: average query distinct recall (QDR) vs the replica threshold.
//
// Paper anchors: publishing items with one or two replicas raises average
// QDR to ~93% at a 15% horizon; QDR is uniformly above QR because replicas
// of a found file stop mattering.
//
//   ./build/bench/fig12_query_distinct_recall [scale]
#include <cstdio>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  auto scores = hybrid::PerfectScheme().Scores(trace);
  std::printf("fig12: %zu nodes, %zu queries evaluated\n", wc.num_nodes,
              trace.queries.size());

  const double horizons[] = {0.05, 0.15, 0.30};
  TablePrinter table({"replica threshold", "QDR h=5%", "QDR h=15%",
                      "QDR h=30%"});
  double qdr2_h15 = 0;
  for (uint32_t thr = 0; thr <= 10; ++thr) {
    auto pub = hybrid::SelectByThreshold(scores, thr);
    std::vector<std::string> row{FormatI(thr)};
    for (size_t h = 0; h < 3; ++h) {
      hybrid::EvalConfig cfg;
      cfg.horizon_fraction = horizons[h];
      cfg.trials_per_query = 3;
      auto r = hybrid::EvaluateHybrid(trace, pub, cfg);
      row.push_back(FormatPct(r.avg_query_distinct_recall));
      if (thr == 2 && h == 1) qdr2_h15 = r.avg_query_distinct_recall;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nanchor (paper -> measured): QDR at threshold 2, 15%% horizon: "
      "93%% -> %s\n",
      FormatPct(qdr2_h15).c_str());
  return 0;
}
