// Figure 9: PF_threshold (the lower bound on the probability any item is
// found in the hybrid system) vs the replica threshold, from the Section 6
// analytical model at the paper's scale (N = 75,129 nodes).
//
//   ./build/bench/fig09_pf_threshold
#include <cstdio>

#include "common/table.h"
#include "model/equations.h"

using namespace pierstack;

int main() {
  const double kN = 75129;  // nodes holding the trace's 315,546 files
  const double horizons[] = {0.05, 0.15, 0.30};

  TablePrinter table({"replica threshold", "horizon 5%", "horizon 15%",
                      "horizon 30%"});
  for (uint32_t thr = 0; thr <= 20; ++thr) {
    std::vector<std::string> row{FormatI(thr)};
    for (double h : horizons) {
      model::SystemParams p;
      p.num_nodes = kN;
      p.horizon_nodes = kN * h;
      row.push_back(FormatF(model::PFThreshold(thr, p), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\npaper shape: PF_threshold starts at the horizon fraction at\n"
      "threshold 0 and rises with diminishing returns (Figure 9).\n");
  return 0;
}
