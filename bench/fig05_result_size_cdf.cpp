// Figure 5: CDF of query result-set sizes — single vantage point vs the
// union of 30 monitors (the paper's approximation of network ground truth).
//
// Paper anchors: 18% of single-node queries return nothing and 41% return
// <= 10 results, vs 6% and 27% for the union of 30.
//
//   ./build/bench/fig05_result_size_cdf [scale]
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  ReplayConfig config;
  config.Scale(ParseScaleArg(argc, argv));
  std::printf("fig05: %zu ultrapeers, %zu leaves, %zu queries x 30 monitors\n",
              config.num_ultrapeers, config.num_leaves, config.num_queries);
  auto setup = BuildReplaySetup(config);
  auto stats = RunMonitorReplay(setup.get(), 30, config.num_queries, {30});

  std::vector<double> single, union30;
  for (const auto& s : stats) {
    for (size_t n : s.monitor_counts) single.push_back(double(n));
    union30.push_back(double(s.union_counts[0]));
  }

  TablePrinter table({"x (results)", "% queries <= x (1 node)",
                      "% queries <= x (union-of-30)"});
  for (double x : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                   500.0, 1000.0}) {
    table.AddRow({FormatI((long long)x),
                  FormatPct(FractionAtOrBelow(single, x)),
                  FormatPct(FractionAtOrBelow(union30, x))});
  }
  table.Print();

  std::printf("\nanchors (paper -> measured):\n");
  std::printf("  single node, 0 results : 18%%  -> %s\n",
              FormatPct(FractionAtOrBelow(single, 0)).c_str());
  std::printf("  single node, <=10      : 41%%  -> %s\n",
              FormatPct(FractionAtOrBelow(single, 10)).c_str());
  std::printf("  union-of-30, 0 results : 6%%   -> %s\n",
              FormatPct(FractionAtOrBelow(union30, 0)).c_str());
  std::printf("  union-of-30, <=10      : 27%%  -> %s\n",
              FormatPct(FractionAtOrBelow(union30, 10)).c_str());
  return 0;
}
