// Figure 6: result-size CDF restricted to queries with <= 20 results, for
// unions of 1/5/15/25/30 monitors.
//
// Paper finding: beyond ~15 monitors the union stops growing — evidence
// that the union of 30 approximates the network's true content.
//
//   ./build/bench/fig06_union_cdf [scale]
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  ReplayConfig config;
  config.Scale(ParseScaleArg(argc, argv));
  std::printf("fig06: %zu ultrapeers, %zu leaves, %zu queries x 30 monitors\n",
              config.num_ultrapeers, config.num_leaves, config.num_queries);
  auto setup = BuildReplaySetup(config);
  const std::vector<size_t> ks{1, 5, 15, 25, 30};
  auto stats = RunMonitorReplay(setup.get(), 30, config.num_queries, ks);

  std::vector<std::vector<double>> per_k(ks.size());
  std::vector<double> single;
  for (const auto& s : stats) {
    for (size_t n : s.monitor_counts) single.push_back(double(n));
    for (size_t i = 0; i < ks.size(); ++i) {
      per_k[i].push_back(double(s.union_counts[i]));
    }
  }

  std::vector<std::string> headers{"x (results)", "1 node"};
  for (size_t i = 1; i < ks.size(); ++i) {
    headers.push_back("union-" + std::to_string(ks[i]));
  }
  TablePrinter table(headers);
  for (double x = 0; x <= 20; x += 2) {
    std::vector<std::string> row{FormatI((long long)x),
                                 FormatPct(FractionAtOrBelow(single, x))};
    for (size_t i = 1; i < ks.size(); ++i) {
      row.push_back(FormatPct(FractionAtOrBelow(per_k[i], x)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Saturation check: union-25 ≈ union-30 (paper: "little increase beyond
  // 15 ultrapeers").
  double u25 = FractionAtOrBelow(per_k[3], 10);
  double u30 = FractionAtOrBelow(per_k[4], 10);
  std::printf("\nsaturation at <=10 results: union-25 %s vs union-30 %s "
              "(paper: curves overlap beyond 15 monitors)\n",
              FormatPct(u25).c_str(), FormatPct(u30).c_str());
  return 0;
}
