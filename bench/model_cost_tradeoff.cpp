// Section 6's stated purpose: "study the trade-off between query recall
// and system overhead of the hybrid system" — Equations 1–5 evaluated
// analytically over the trace.
//
// For each replica threshold: expected QDR (Equation 1 averaged over
// queries), total publishing cost CP_all (Equation 5, CP per item =
// (1 + keywords) tuples × log N routing messages), and the per-time-unit
// search cost (Equation 3).
//
//   ./build/bench/model_cost_tradeoff [scale]
#include <cstdio>

#include "common/table.h"
#include "model/equations.h"
#include "workload/trace.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);

  model::SystemParams params;
  params.num_nodes = static_cast<double>(wc.num_nodes);
  params.horizon_nodes = params.num_nodes * 0.05;
  model::CostParams costs;
  costs.cs_dht = model::DefaultDhtSearchCost(params.num_nodes);

  std::printf("model: N=%zu, horizon 5%%, CS_DHT=log2(N)=%.1f msgs\n",
              wc.num_nodes, costs.cs_dht);
  TablePrinter table({"replica threshold", "expected QDR",
                      "publish msgs (CP_all, K)", "search msgs/query (CS)",
                      "publish msgs per QDR point"});
  double prev_qdr = 0, prev_publish = 0;
  for (uint32_t thr = 0; thr <= 10; ++thr) {
    // Expected QDR: Equation 1 averaged over each query's matched items.
    double qdr_sum = 0;
    size_t queries = 0;
    for (const auto& q : trace.queries) {
      if (q.matches.empty()) continue;
      ++queries;
      double found = 0;
      for (uint32_t m : q.matches) {
        bool published = trace.files[m].replicas <= thr;
        found += model::PFHybrid(trace.files[m].replicas, published, params);
      }
      qdr_sum += found / static_cast<double>(q.matches.size());
    }
    double qdr = queries ? qdr_sum / queries : 0;

    // Equation 5: CP_all over the queried universe; publishing one item
    // costs (1 Item + k Inverted tuples) × log N hops each.
    double publish_msgs = 0;
    for (uint32_t f : trace.QueriedFileUniverse()) {
      const auto& file = trace.files[f];
      if (file.replicas > thr) continue;
      model::ItemParams item;
      item.published = true;
      model::CostParams cp = costs;
      cp.cp_dht = (1.0 + static_cast<double>(file.keywords.size())) *
                  costs.cs_dht * file.replicas;
      publish_msgs += model::PublishCost(item, cp);
    }

    // Equation 3 averaged over queries (Qi = 1): flooding dominates; the
    // DHT term only pays when Gnutella misses.
    double search_sum = 0;
    for (const auto& q : trace.queries) {
      if (q.matches.empty()) continue;
      double r_avg = static_cast<double>(q.total_results) /
                     static_cast<double>(q.matches.size());
      model::ItemParams item;
      item.replicas = r_avg;
      item.query_freq = 1;
      search_sum += model::SearchCost(item, params, costs);
    }
    double search_avg = queries ? search_sum / queries : 0;

    double marginal = (qdr - prev_qdr) > 1e-9
                          ? (publish_msgs - prev_publish) /
                                ((qdr - prev_qdr) * 100)
                          : 0;
    table.AddRow({FormatI(thr), FormatPct(qdr),
                  FormatF(publish_msgs / 1000.0, 1),
                  FormatF(search_avg, 0),
                  thr == 0 ? "-" : FormatF(marginal / 1000.0, 1) + "K"});
    prev_qdr = qdr;
    prev_publish = publish_msgs;
  }
  table.Print();
  std::printf(
      "\nreading: recall gains concentrate at thresholds 1-2 while the\n"
      "publishing bill keeps growing — the paper's 'little benefit in\n"
      "publishing items that are already popular' (Section 6.2).\n");
  return 0;
}
