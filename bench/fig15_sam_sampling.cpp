// Figure 15: SAM sample-rate sweep — average query recall vs publishing
// budget for SAM(100%) (= Perfect), SAM(15%), SAM(5%) and SAM(0%)
// (= Random), horizon 5%.
//
// Paper finding: "SAM performs only marginally worse when reducing the
// percentage of nodes sampled from 15% to 5%."
//
//   ./build/bench/fig15_sam_sampling [scale]
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "hybrid/evaluator.h"
#include "hybrid/schemes.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(20000 * scale);
  wc.num_distinct_files = static_cast<size_t>(30000 * scale);
  wc.num_queries = 700;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);
  std::printf("fig15: %zu nodes, horizon 5%%\n", wc.num_nodes);

  std::vector<std::unique_ptr<hybrid::RareItemScheme>> schemes;
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(1.0, 1));
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.15, 1));
  schemes.push_back(std::make_unique<hybrid::SamplingScheme>(0.05, 1));
  schemes.push_back(std::make_unique<hybrid::RandomScheme>(3));

  std::vector<std::vector<double>> scores;
  TablePrinter table({"budget (% items)", "Perfect / SAM(100%)", "SAM(15%)",
                      "SAM(5%)", "Random / SAM(0%)"});
  for (auto& s : schemes) scores.push_back(s->Scores(trace));

  hybrid::EvalConfig cfg;
  cfg.horizon_fraction = 0.05;
  cfg.trials_per_query = 3;

  double sam15_50 = 0, sam5_50 = 0;
  for (int budget = 10; budget <= 90; budget += 10) {
    std::vector<std::string> row{FormatI(budget)};
    for (size_t s = 0; s < schemes.size(); ++s) {
      auto pub = hybrid::SelectByBudget(trace, scores[s], budget / 100.0);
      auto r = hybrid::EvaluateHybrid(trace, pub, cfg);
      row.push_back(FormatPct(r.avg_query_recall));
      if (budget == 50 && s == 1) sam15_50 = r.avg_query_recall;
      if (budget == 50 && s == 2) sam5_50 = r.avg_query_recall;
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nanchor (paper -> measured): SAM(5%%) only marginally below "
      "SAM(15%%): %s vs %s at 50%% budget\n",
      FormatPct(sam5_50).c_str(), FormatPct(sam15_50).c_str());
  return 0;
}
