// Section 5 claim: "queries that return 10 or fewer results require
// shipping 7 times fewer posting list entries compared to the average
// across all queries" (SHJ optimized smallest-posting-list-first).
//
// Replays trace queries through the real distributed join over a DHT and
// reports shipped posting entries per query, bucketed by ground truth.
//
//   ./build/bench/sec5_posting_list_cost [scale]
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "common/stats.h"
#include "dht/builder.h"
#include "piersearch/publisher.h"
#include "piersearch/search_engine.h"
#include "workload/trace.h"

using namespace pierstack;

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(4000 * scale);
  wc.num_distinct_files = static_cast<size_t>(6000 * scale);
  wc.num_queries = 400;
  wc.seed = 2004;
  // Live-query mix (popularity-skewed, like the replayed 70k queries).
  wc.query_file_bias = 1.3;
  wc.query_popular_terms = 0.17;
  wc.query_from_file = 0.80;
  wc.popular_query_min_terms = 2;
  auto trace = workload::GenerateTrace(wc);

  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::ConstantLatency>(
                           20 * sim::kMillisecond),
                       9);
  dht::DhtDeployment dht(&network, 64, dht::DhtOptions{}, 31);
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  for (size_t i = 0; i < dht.size(); ++i) {
    piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &metrics));
  }

  // Publish an Inverted entry per file copy (posting lists sized by
  // replication, like the paper's 700k-file sample). Each node's library
  // goes through the coalesced batch pipeline: same-keyword tuples share
  // one PutBatch message per destination.
  piersearch::Publisher publisher(piers[0].get());
  piersearch::PublishOptions popts;  // inverted only
  uint64_t copies = 0;
  for (size_t node = 0; node < trace.node_files.size(); ++node) {
    std::vector<piersearch::FileToPublish> files;
    files.reserve(trace.node_files[node].size());
    for (uint32_t f : trace.node_files[node]) {
      files.push_back(piersearch::FileToPublish{
          trace.files[f].filename, 1 << 20, static_cast<uint32_t>(node),
          6346});
    }
    publisher.PublishFiles(files, popts);
    copies += files.size();
  }
  simulator.Run();
  std::printf("sec5: published %llu copies (%llu tuples, %llu put messages) "
              "into a 64-node DHT\n",
              (unsigned long long)copies,
              (unsigned long long)publisher.stats().tuples_published,
              (unsigned long long)metrics.publish_messages);

  // Replay queries through the SHJ chain, smallest posting list first.
  Summary rare_shipped, all_shipped;
  size_t replayed = 0;
  for (const auto& q : trace.queries) {
    if (q.terms.size() < 2) continue;  // single-term queries ship nothing
    if (replayed >= 250) break;
    piersearch::SearchEngine engine(piers[replayed % 64].get());
    piersearch::SearchOptions so;
    so.order_by_posting_size = true;
    so.fetch_items = false;
    so.max_results = SIZE_MAX;
    uint64_t before = metrics.posting_entries_shipped;
    bool ok = false;
    engine.Search(q.text, so, [&](Status s, auto) { ok = s.ok(); });
    simulator.Run();
    if (!ok) continue;
    double shipped = double(metrics.posting_entries_shipped - before);
    all_shipped.Add(shipped);
    if (q.total_results <= 10) rare_shipped.Add(shipped);
    ++replayed;
  }

  TablePrinter table({"query class", "queries", "avg posting entries shipped"});
  table.AddRow({"<= 10 results", FormatI((long long)rare_shipped.count()),
                FormatF(rare_shipped.mean(), 1)});
  table.AddRow({"all multi-term", FormatI((long long)all_shipped.count()),
                FormatF(all_shipped.mean(), 1)});
  table.Print();
  double ratio = rare_shipped.mean() > 0
                     ? all_shipped.mean() / rare_shipped.mean()
                     : 0;
  std::printf("\nanchor (paper -> measured): rare queries ship ~7x fewer "
              "entries -> %.1fx\n", ratio);
  return 0;
}
