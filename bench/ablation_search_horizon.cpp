// The paper's stated future work (Section 4.3): "quantify the impact of
// increasing the search horizon on the overall system load."
//
// Sweeps the flood TTL and reports, per query: messages spent, recall
// achieved, and the share of queries left empty — the load/recall frontier
// that motivates the hybrid design (deep flooding buys recall at an
// accelerating message cost; the DHT fallback buys the same tail recall
// for O(log N)).
//
//   ./build/bench/ablation_search_horizon [scale]
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "model/equations.h"

using namespace pierstack;
using namespace pierstack::bench;

int main(int argc, char** argv) {
  double scale = ParseScaleArg(argc, argv);
  TablePrinter table({"flood TTL", "msgs/query", "avg recall",
                      "% queries empty", "msgs per recall point"});
  double dht_cost = 0;
  for (uint8_t ttl = 1; ttl <= 4; ++ttl) {
    ReplayConfig config;
    config.num_ultrapeers = 800;
    config.num_leaves = 4000;
    config.ultrapeer_degree = 8;
    config.flood_ttl = ttl;
    config.num_queries = 150;
    config.Scale(scale);
    auto setup = BuildReplaySetup(config);
    dht_cost = model::DefaultDhtSearchCost(
        static_cast<double>(config.num_ultrapeers));
    setup->gnutella->metrics() = gnutella::GnutellaMetrics{};

    struct PerQuery {
      size_t found = 0;
    };
    std::vector<PerQuery> per_query(setup->trace.queries.size());
    size_t launched = 0;
    for (size_t q = 0; q < setup->trace.queries.size(); ++q) {
      if (setup->trace.queries[q].total_results == 0) continue;
      auto* counter = &per_query[q];
      setup->gnutella->ultrapeer(q % config.num_ultrapeers)
          ->StartQuery(setup->trace.queries[q].text,
                       [counter](const std::vector<gnutella::QueryResult>& rs) {
                         counter->found += rs.size();
                       });
      ++launched;
    }
    setup->simulator.Run();

    Summary recall;
    size_t empty = 0;
    for (size_t q = 0; q < setup->trace.queries.size(); ++q) {
      uint64_t truth = setup->trace.queries[q].total_results;
      if (truth == 0) continue;
      recall.Add(double(per_query[q].found) / double(truth));
      empty += per_query[q].found == 0;
    }
    double msgs_per_query =
        double(setup->gnutella->metrics().query_messages) / double(launched);
    double marginal =
        recall.mean() > 0 ? msgs_per_query / (recall.mean() * 100) : 0;
    table.AddRow({FormatI(ttl), FormatF(msgs_per_query, 1),
                  FormatPct(recall.mean()),
                  FormatPct(double(empty) / double(launched)),
                  FormatF(marginal, 2)});
  }
  table.Print();
  std::printf(
      "\nreading: each TTL step multiplies the per-query message cost but\n"
      "adds less and less recall (Section 4.3's diminishing returns); a\n"
      "DHT lookup costs ~log2(N) = %.0f messages regardless of rarity,\n"
      "which is why the hybrid indexes the tail instead of flooding "
      "deeper.\n",
      dht_cost);
  return 0;
}
