#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/hashing.h"

namespace pierstack::bench {

void ReplayConfig::Scale(double f) {
  auto scale = [&](size_t v) {
    return static_cast<size_t>(std::max(1.0, v * f));
  };
  num_ultrapeers = scale(num_ultrapeers);
  num_leaves = scale(num_leaves);
  num_queries = scale(num_queries);
}

double ParseScaleArg(int argc, char** argv) {
  if (argc >= 2) {
    double f = std::atof(argv[1]);
    if (f > 0) return f;
  }
  return 1.0;
}

std::unique_ptr<ReplaySetup> BuildReplaySetup(const ReplayConfig& config) {
  auto setup = std::make_unique<ReplaySetup>();

  size_t total_nodes = config.num_ultrapeers + config.num_leaves;
  workload::WorkloadConfig wc;
  wc.num_nodes = total_nodes;
  wc.num_distinct_files =
      std::max<size_t>(100, total_nodes * config.files_per_node_x10 / 31);
  wc.vocab_size = std::max<size_t>(600, wc.num_distinct_files / 3);
  wc.num_queries = config.num_queries;
  wc.seed = config.seed;
  // The measurement workload (live user queries the monitors replayed)
  // skews toward popular content more than the uniform trace defaults.
  // Single hot terms stay allowed: two-popular-term conjunctions often
  // have no co-occurring file, which inflates the zero-result floor well
  // past the paper's 6%.
  wc.query_file_bias = 1.3;
  wc.query_popular_terms = 0.17;
  wc.query_from_file = 0.80;
  setup->trace = workload::GenerateTrace(wc);

  setup->network = std::make_unique<sim::Network>(
      &setup->simulator,
      std::make_unique<sim::UniformLatency>(15 * sim::kMillisecond,
                                            150 * sim::kMillisecond),
      config.seed);

  gnutella::TopologyConfig tc;
  tc.num_ultrapeers = config.num_ultrapeers;
  tc.num_leaves = config.num_leaves;
  tc.protocol.ultrapeer_degree = config.ultrapeer_degree;
  tc.protocol.flood_ttl = config.flood_ttl;
  tc.protocol.query_mode = config.query_mode;
  tc.protocol.dynamic = config.dynamic;
  tc.seed = config.seed + 1;
  setup->gnutella = std::make_unique<gnutella::GnutellaNetwork>(
      setup->network.get(), tc);

  for (size_t i = 0; i < total_nodes; ++i) {
    auto* node = setup->gnutella->node(i);
    node->SetSharedFiles(setup->trace.FilenamesOfNode(i));
    if (node->role() == gnutella::Role::kLeaf) {
      for (sim::HostId up : node->parent_ultrapeers()) {
        node->RepublishTo(up);
      }
    }
  }
  setup->simulator.Run();
  return setup;
}

std::vector<QueryReplayStats> RunMonitorReplay(
    ReplaySetup* setup, size_t monitors, size_t num_queries,
    const std::vector<size_t>& union_ks) {
  num_queries = std::min(num_queries, setup->trace.queries.size());
  monitors = std::min(monitors, setup->gnutella->num_ultrapeers());

  // Compact result record: the copy id plus the filename hash (replication
  // factors group copies by filename).
  struct Record {
    uint64_t file_id;
    uint64_t name_hash;
  };
  std::vector<std::vector<std::vector<Record>>> seen(num_queries);
  for (auto& per_monitor : seen) per_monitor.resize(monitors);

  for (size_t q = 0; q < num_queries; ++q) {
    const auto& query = setup->trace.queries[q];
    for (size_t m = 0; m < monitors; ++m) {
      auto* records = &seen[q][m];
      setup->gnutella->ultrapeer(m)->StartQuery(
          query.text, [records](const std::vector<gnutella::QueryResult>& rs) {
            for (const auto& r : rs) {
              records->push_back(Record{r.file_id, Fnv1a64(r.filename)});
            }
          });
    }
  }
  setup->simulator.Run();

  std::vector<QueryReplayStats> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    QueryReplayStats& stats = out[q];
    stats.ground_truth = setup->trace.queries[q].total_results;
    stats.monitor_counts.resize(monitors);
    std::unordered_set<uint64_t> union_ids;
    std::unordered_map<uint64_t, size_t> copies_per_name;
    size_t next_k = 0;
    stats.union_counts.resize(union_ks.size(), 0);
    for (size_t m = 0; m < monitors; ++m) {
      stats.monitor_counts[m] = seen[q][m].size();
      for (const auto& rec : seen[q][m]) {
        if (union_ids.insert(rec.file_id).second) {
          ++copies_per_name[rec.name_hash];
        }
      }
      while (next_k < union_ks.size() && union_ks[next_k] == m + 1) {
        stats.union_counts[next_k] = union_ids.size();
        ++next_k;
      }
    }
    while (next_k < union_ks.size()) {
      stats.union_counts[next_k] = union_ids.size();
      ++next_k;
    }
    if (!copies_per_name.empty()) {
      double total = 0;
      for (const auto& [h, c] : copies_per_name) {
        total += static_cast<double>(c);
      }
      stats.avg_replication = total / copies_per_name.size();
    }
  }
  return out;
}

std::vector<LatencyObservation> RunLatencyReplay(ReplaySetup* setup,
                                                 size_t num_queries,
                                                 uint64_t seed) {
  num_queries = std::min(num_queries, setup->trace.queries.size());
  Rng rng(seed);
  struct QueryState {
    sim::SimTime started = 0;
    sim::SimTime first = 0;
    size_t results = 0;
  };
  auto states = std::make_shared<std::vector<QueryState>>(num_queries);

  // Stagger starts so the dynamic-query timers don't synchronize.
  sim::SimTime at = setup->simulator.now();
  for (size_t q = 0; q < num_queries; ++q) {
    at += 200 * sim::kMillisecond;
    size_t leaf_idx = static_cast<size_t>(
        rng.NextBelow(setup->gnutella->num_leaves()));
    const std::string& text = setup->trace.queries[q].text;
    setup->simulator.ScheduleAt(at, [setup, states, q, leaf_idx, text]() {
      auto* leaf = setup->gnutella->leaf(leaf_idx);
      (*states)[q].started = setup->simulator.now();
      leaf->StartQuery(
          text, [setup, states, q](const std::vector<gnutella::QueryResult>& rs) {
            QueryState& st = (*states)[q];
            if (st.results == 0) st.first = setup->simulator.now();
            st.results += rs.size();
          });
    });
  }
  setup->simulator.Run();

  std::vector<LatencyObservation> out(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const QueryState& st = (*states)[q];
    out[q].results = st.results;
    out[q].first_result_sec =
        st.results > 0
            ? static_cast<double>(st.first - st.started) / sim::kSecond
            : -1.0;
  }
  return out;
}

}  // namespace pierstack::bench
