// Section 7: the live hybrid deployment — 50 hybrid ultrapeers (QRS
// publishing, 30 s Gnutella timeout) inside a larger Gnutella network,
// run once with the distributed-join strategy and once with InvertedCache.
//
// Paper anchors:
//  * publishing: ~3.5 KB/file (4 KB with InvertedCache) — dominated by
//    Java serialization, which this engine replaces with a compact binary
//    format, so absolute bytes are smaller at the same tuple counts;
//  * first result via PIERSearch 10 s (IC) / 12 s (SHJ) vs 65 s Gnutella
//    average for rare items; the hybrid ends up ~25 s faster;
//  * query bandwidth ~850 B (IC) vs ~20 KB (distributed join);
//  * >= 18% fewer queries with no results.
//
//   ./build/bench/sec7_deployment [scale]
#include <cstdio>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "common/table.h"
#include "dht/builder.h"
#include "gnutella/topology.h"
#include "hybrid/hybrid_ultrapeer.h"
#include "workload/trace.h"

using namespace pierstack;

namespace {

struct RunResult {
  double publish_app_bytes_per_file = 0;
  double publish_net_bytes_per_file = 0;
  double tuples_per_file = 0;
  double dht_query_bytes = 0;
  double dht_first_result_sec = 0;   // total (timeout + PIER)
  double pier_exec_sec = 0;          // excluding the Gnutella timeout
  double gnutella_rare_first_sec = 0;
  double empty_gnutella = 0;
  double empty_hybrid = 0;
  size_t test_queries = 0;
  uint64_t rare_published = 0;
};

RunResult RunDeployment(bool inverted_cache, double scale) {
  RunResult out;
  workload::WorkloadConfig wc;
  wc.num_nodes = static_cast<size_t>(1000 * scale);
  wc.num_distinct_files = static_cast<size_t>(1500 * scale);
  wc.num_queries = 500;
  wc.max_replicas = wc.num_nodes / 8;
  wc.seed = 2004;
  auto trace = workload::GenerateTrace(wc);

  sim::Simulator simulator;
  sim::Network network(&simulator,
                       std::make_unique<sim::UniformLatency>(
                           15 * sim::kMillisecond, 150 * sim::kMillisecond),
                       13);

  size_t num_ups = wc.num_nodes / 5;
  gnutella::TopologyConfig tc;
  tc.num_ultrapeers = num_ups;
  tc.num_leaves = wc.num_nodes - num_ups;
  tc.protocol.ultrapeer_degree = 16;
  tc.protocol.query_mode = gnutella::QueryMode::kDynamic;
  tc.protocol.dynamic.desired_results = 150;
  // Each widening round covers ~16 of the ultrapeers: rare items are
  // frequently out of reach, as in the real network (Section 4).
  tc.protocol.dynamic.max_ttl = 2;
  tc.seed = 6;
  gnutella::GnutellaNetwork gnet(&network, tc);
  for (size_t i = 0; i < wc.num_nodes; ++i) {
    auto* node = gnet.node(i);
    node->SetSharedFiles(trace.FilenamesOfNode(i));
    if (node->role() == gnutella::Role::kLeaf) {
      for (sim::HostId up : node->parent_ultrapeers()) node->RepublishTo(up);
    }
  }

  // 50 hybrid ultrapeers share a Bamboo-style DHT (the paper used Bamboo).
  size_t num_hybrid = std::min<size_t>(50, num_ups);
  dht::DhtOptions dopt;
  dopt.overlay = dht::OverlayKind::kBamboo;
  dht::DhtDeployment dht(&network, num_hybrid, dopt, 314);
  pier::PierMetrics pier_metrics;
  hybrid::HybridConfig hc;
  hc.gnutella_timeout = 30 * sim::kSecond;
  hc.qrs_threshold = 20;
  hc.publish.inverted = !inverted_cache;
  hc.publish.inverted_cache = inverted_cache;
  hc.search.strategy = inverted_cache
                           ? piersearch::SearchStrategy::kInvertedCache
                           : piersearch::SearchStrategy::kDistributedJoin;
  hc.search.order_by_posting_size = !inverted_cache;
  std::vector<std::unique_ptr<pier::PierNode>> piers;
  std::vector<std::unique_ptr<hybrid::HybridUltrapeer>> hybrids;
  for (size_t i = 0; i < num_hybrid; ++i) {
    piers.push_back(
        std::make_unique<pier::PierNode>(dht.node(i), &pier_metrics));
    hybrids.push_back(std::make_unique<hybrid::HybridUltrapeer>(
        gnet.ultrapeer(i), piers[i].get(), hc));
  }
  simulator.Run();

  // --- Controlled publish measurement (per-file bandwidth) ----------------
  {
    uint64_t bytes_before = network.metrics().total.bytes;
    uint64_t app_before = hybrids[0]->publisher().stats().tuple_bytes;
    uint64_t tuples_before = hybrids[0]->publisher().stats().tuples_published;
    size_t published = 0;
    for (uint32_t f = 0; f < trace.files.size() && published < 100; ++f) {
      hybrids[0]->publisher().PublishFile(trace.files[f].filename, 1 << 22,
                                          static_cast<uint32_t>(f), 6346,
                                          hc.publish);
      ++published;
    }
    simulator.Run();
    out.publish_net_bytes_per_file =
        double(network.metrics().total.bytes - bytes_before) / published;
    out.publish_app_bytes_per_file =
        double(hybrids[0]->publisher().stats().tuple_bytes - app_before) /
        published;
    out.tuples_per_file =
        double(hybrids[0]->publisher().stats().tuples_published -
               tuples_before) /
        published;
  }

  // --- Warm phase: regular Gnutella traffic flows past the hybrid
  // ultrapeers; their proxies snoop the query results and QRS-publish the
  // rare ones. Queries originate at random leaves all over the network
  // (the deployment's "responses to queries forwarded by the ultrapeer").
  size_t warm = std::min<size_t>(450, trace.queries.size());
  Rng warm_rng(99);
  for (size_t q = 0; q < warm; ++q) {
    size_t leaf = static_cast<size_t>(warm_rng.NextBelow(tc.num_leaves));
    simulator.ScheduleAfter(q * sim::kSecond, [&, q, leaf]() {
      gnet.leaf(leaf)->StartQuery(trace.queries[q].text,
                                  [](const auto&) {});
    });
  }
  simulator.Run();
  for (auto& h : hybrids) out.rare_published += h->stats().rare_results_published;

  // --- Test phase: users re-issue previously seen (rare) queries from the
  // hybrid ultrapeers' own leaves — the 1739 leaf queries of Section 7.
  Summary dht_total_latency, pier_exec, gnutella_rare_latency, dht_bytes;
  size_t gnutella_empty = 0, hybrid_empty = 0, tested = 0;
  for (size_t q = 0; q < warm && tested < 120; ++q) {
    const auto& query = trace.queries[q];
    if (query.total_results > 30) continue;  // rare-item focus, like §7
    ++tested;
    auto& hybrid_up = hybrids[tested % num_hybrid];
    uint64_t pier_bytes_before =
        network.metrics().by_tag.count("dht.route")
            ? network.metrics().by_tag.at("dht.route").bytes
            : 0;
    if (network.metrics().by_tag.count("pier.answer")) {
      pier_bytes_before += network.metrics().by_tag.at("pier.answer").bytes;
    }
    sim::SimTime start = simulator.now();
    struct Obs {
      bool g_any = false, d_any = false;
      sim::SimTime g_first = 0, d_first = 0;
    };
    auto obs = std::make_shared<Obs>();
    bool done = false;
    hybrid_up->Query(
        query.text,
        [obs](const hybrid::HybridHit& h) {
          if (h.via_dht && !obs->d_any) {
            obs->d_any = true;
            obs->d_first = h.arrival;
          }
          if (!h.via_dht && !obs->g_any) {
            obs->g_any = true;
            obs->g_first = h.arrival;
          }
        },
        [&done]() { done = true; });
    simulator.Run();
    uint64_t pier_bytes_after =
        network.metrics().by_tag.count("dht.route")
            ? network.metrics().by_tag.at("dht.route").bytes
            : 0;
    if (network.metrics().by_tag.count("pier.answer")) {
      pier_bytes_after += network.metrics().by_tag.at("pier.answer").bytes;
    }
    if (!obs->g_any) {
      ++gnutella_empty;
      if (!obs->d_any) {
        ++hybrid_empty;
      } else {
        dht_total_latency.Add(double(obs->d_first - start) / sim::kSecond);
        pier_exec.Add(double(obs->d_first - start) / sim::kSecond -
                      double(hc.gnutella_timeout) / sim::kSecond);
        dht_bytes.Add(double(pier_bytes_after - pier_bytes_before));
      }
    } else if (query.total_results <= 10) {
      gnutella_rare_latency.Add(double(obs->g_first - start) / sim::kSecond);
    }
  }
  out.test_queries = tested;
  out.empty_gnutella = double(gnutella_empty);
  out.empty_hybrid = double(hybrid_empty);
  out.dht_first_result_sec =
      dht_total_latency.empty() ? 0 : dht_total_latency.mean();
  out.pier_exec_sec = pier_exec.empty() ? 0 : pier_exec.mean();
  out.gnutella_rare_first_sec =
      gnutella_rare_latency.empty() ? 0 : gnutella_rare_latency.mean();
  out.dht_query_bytes = dht_bytes.empty() ? 0 : dht_bytes.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc >= 2 && atof(argv[1]) > 0 ? atof(argv[1]) : 1.0;
  std::printf("sec7: 50 hybrid ultrapeers, QRS publishing, 30 s timeout\n");
  std::printf("running distributed-join deployment...\n");
  RunResult shj = RunDeployment(/*inverted_cache=*/false, scale);
  std::printf("running InvertedCache deployment...\n\n");
  RunResult ic = RunDeployment(/*inverted_cache=*/true, scale);

  TablePrinter table({"metric", "paper", "distributed join",
                      "InvertedCache"});
  table.AddRow({"publish: tuples per file", "1 Item + k Inverted",
                FormatF(shj.tuples_per_file, 1), FormatF(ic.tuples_per_file, 1)});
  table.AddRow({"publish: app bytes per file", "3500 (4000 IC)",
                FormatF(shj.publish_app_bytes_per_file, 0),
                FormatF(ic.publish_app_bytes_per_file, 0)});
  table.AddRow({"publish: network bytes per file", "-",
                FormatF(shj.publish_net_bytes_per_file, 0),
                FormatF(ic.publish_net_bytes_per_file, 0)});
  table.AddRow({"QRS rare records published", "1 per 2-3 s per node",
                FormatI((long long)shj.rare_published),
                FormatI((long long)ic.rare_published)});
  table.AddRow({"rare query: Gnutella 1st result (s)", "65",
                FormatF(shj.gnutella_rare_first_sec, 1),
                FormatF(ic.gnutella_rare_first_sec, 1)});
  table.AddRow({"fallback: 1st result (s, incl 30 s timeout)", "42 (40 IC)",
                FormatF(shj.dht_first_result_sec, 1),
                FormatF(ic.dht_first_result_sec, 1)});
  table.AddRow({"fallback: PIER execution only (s)", "12 (10 IC)",
                FormatF(shj.pier_exec_sec, 2), FormatF(ic.pier_exec_sec, 2)});
  table.AddRow({"DHT bytes per fallback query", "20000 (850 IC)",
                FormatF(shj.dht_query_bytes, 0),
                FormatF(ic.dht_query_bytes, 0)});
  table.AddRow({"queries empty in Gnutella", "-",
                FormatI((long long)shj.empty_gnutella),
                FormatI((long long)ic.empty_gnutella)});
  table.AddRow({"still empty after hybrid", ">=18% reduction",
                FormatI((long long)shj.empty_hybrid),
                FormatI((long long)ic.empty_hybrid)});
  table.Print();

  auto reduction = [](const RunResult& r) {
    return r.empty_gnutella > 0
               ? 1.0 - r.empty_hybrid / r.empty_gnutella
               : 0.0;
  };
  std::printf("\nempty-query reduction (paper >= 18%%): SHJ %s, IC %s\n",
              FormatPct(reduction(shj)).c_str(),
              FormatPct(reduction(ic)).c_str());
  std::printf(
      "notes: PIER execution is sub-second here because the compact binary\n"
      "serializer replaces PIER's Java serialization and the simulated\n"
      "overlay has no queueing; the IC-vs-SHJ bandwidth ordering and the\n"
      "latency structure (timeout + DHT lookup << Gnutella rare-item\n"
      "latency) match the paper.\n");
  return 0;
}
