// Microbenchmarks (google-benchmark) for the hot primitives: hashing,
// RNG, Zipf sampling, tuple serialization, the symmetric hash join and
// next-hop selection in both overlays.
//
//   ./build/bench/micro_core
#include <benchmark/benchmark.h>

#include <vector>

#include "common/hashing.h"
#include "common/rng.h"
#include "common/tokenizer.h"
#include "common/zipf.h"
#include "dht/bamboo.h"
#include "dht/chord.h"
#include "gnutella/index.h"
#include "pier/ops.h"

using namespace pierstack;

static void BM_Fnv1a64(benchmark::State& state) {
  std::string s(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(s));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(8)->Arg(32)->Arg(256);

static void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

static void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

static void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<size_t>(state.range(0)), 1.0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

static void BM_TokenizeFilename(benchmark::State& state) {
  std::string name = "pink floyd dark side of the moon live 1973.mp3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractUniqueKeywords(name));
  }
}
BENCHMARK(BM_TokenizeFilename);

static void BM_TupleSerialize(benchmark::State& state) {
  pier::Tuple t({pier::Value(uint64_t{0xdeadbeef}),
                 pier::Value(std::string("madonna like a prayer.mp3")),
                 pier::Value(uint64_t{4 << 20}),
                 pier::Value(uint64_t{12345}), pier::Value(uint64_t{6346})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Serialize());
  }
}
BENCHMARK(BM_TupleSerialize);

static void BM_TupleDeserialize(benchmark::State& state) {
  pier::Tuple t({pier::Value(uint64_t{0xdeadbeef}),
                 pier::Value(std::string("madonna like a prayer.mp3")),
                 pier::Value(uint64_t{4 << 20})});
  auto bytes = t.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pier::Tuple::Deserialize(bytes));
  }
}
BENCHMARK(BM_TupleDeserialize);

static void BM_ShjInsertProbe(benchmark::State& state) {
  // Steady-state SHJ throughput with a `range`-sized resident side.
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    pier::SymmetricHashJoin shj(0, 0);
    for (size_t i = 0; i < n; ++i) {
      shj.InsertRight(pier::Tuple({pier::Value(uint64_t{i})}));
    }
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          shj.InsertLeft(pier::Tuple({pier::Value(rng.NextBelow(n))})));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ShjInsertProbe)->Arg(1000)->Arg(10000);

static void BM_ChordNextHop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<dht::NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back({rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](auto& a, auto& b) { return a.id < b.id; });
  dht::ChordRouting table(members[n / 2]);
  table.BuildStatic(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.NextHop(rng.Next()));
  }
}
BENCHMARK(BM_ChordNextHop)->Arg(1024)->Arg(16384);

static void BM_BambooNextHop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<dht::NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back({rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](auto& a, auto& b) { return a.id < b.id; });
  dht::BambooRouting table(members[n / 2]);
  table.BuildStatic(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.NextHop(rng.Next()));
  }
}
BENCHMARK(BM_BambooNextHop)->Arg(1024)->Arg(16384);

static void BM_KeywordIndexMatch(benchmark::State& state) {
  gnutella::KeywordIndex index;
  Rng rng(6);
  for (size_t i = 0; i < 20000; ++i) {
    gnutella::SharedFile f;
    f.filename = "artist" + std::to_string(rng.NextBelow(500)) + " title" +
                 std::to_string(i) + " common.mp3";
    f.size_bytes = 1;
    f.file_id = i;
    index.Add(f, static_cast<sim::HostId>(i % 100));
  }
  std::vector<std::string> query{"artist42", "common"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Match(query));
  }
}
BENCHMARK(BM_KeywordIndexMatch);

BENCHMARK_MAIN();
