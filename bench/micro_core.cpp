// Microbenchmarks (google-benchmark) for the hot primitives: hashing,
// RNG, Zipf sampling, tuple serialization, the symmetric hash join and
// next-hop selection in both overlays.
//
// The *_Legacy / *_PerTuple benches replicate the pre-batching tuple
// pipeline (deep-copied std::string values, one Deserialize call and one
// buffer per tuple, one routed message per published tuple) so every run
// reports the batching speedup against the path it replaced. See
// bench/README.md; scripts/run_bench.sh records the ratios in
// BENCH_core.json.
//
//   ./build/micro_core
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/hashing.h"
#include "common/rng.h"
#include "common/tokenizer.h"
#include "common/zipf.h"
#include "dht/bamboo.h"
#include "dht/builder.h"
#include "dht/chord.h"
#include "dht/churn.h"
#include "dht/ring_oracle.h"
#include "gnutella/index.h"
#include "pier/node.h"
#include "pier/ops.h"
#include "pier/tuple_batch.h"
#include "piersearch/publisher.h"
#include "piersearch/schemas.h"
#include "piersearch/search_engine.h"
#include "sim/shard.h"

using namespace pierstack;

static void BM_Fnv1a64(benchmark::State& state) {
  std::string s(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(s));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(8)->Arg(32)->Arg(256);

static void BM_Mix64(benchmark::State& state) {
  uint64_t x = 0x12345;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

static void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

static void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<size_t>(state.range(0)), 1.0);
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(&rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

static void BM_TokenizeFilename(benchmark::State& state) {
  std::string name = "pink floyd dark side of the moon live 1973.mp3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExtractUniqueKeywords(name));
  }
}
BENCHMARK(BM_TokenizeFilename);

static void BM_TupleSerialize(benchmark::State& state) {
  pier::Tuple t({pier::Value(uint64_t{0xdeadbeef}),
                 pier::Value(std::string("madonna like a prayer.mp3")),
                 pier::Value(uint64_t{4 << 20}),
                 pier::Value(uint64_t{12345}), pier::Value(uint64_t{6346})});
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.Serialize());
  }
}
BENCHMARK(BM_TupleSerialize);

static void BM_TupleDeserialize(benchmark::State& state) {
  pier::Tuple t({pier::Value(uint64_t{0xdeadbeef}),
                 pier::Value(std::string("madonna like a prayer.mp3")),
                 pier::Value(uint64_t{4 << 20})});
  auto bytes = t.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pier::Tuple::Deserialize(bytes));
  }
}
BENCHMARK(BM_TupleDeserialize);

static void BM_ShjInsertProbe(benchmark::State& state) {
  // Steady-state SHJ throughput with a `range`-sized resident side.
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    pier::SymmetricHashJoin shj(0, 0);
    for (size_t i = 0; i < n; ++i) {
      shj.InsertRight(pier::Tuple({pier::Value(uint64_t{i})}));
    }
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          shj.InsertLeft(pier::Tuple({pier::Value(rng.NextBelow(n))})));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_ShjInsertProbe)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Batched-pipeline benches. `legacy` replicates the seed's tuple
// representation and per-tuple codec: values deep-copy their strings, every
// stored/output tuple copies the whole row, every decode gets its own
// buffer and reader.
// ---------------------------------------------------------------------------
namespace legacy {

using LValue = std::variant<uint64_t, int64_t, double, std::string>;
using LTuple = std::vector<LValue>;

uint64_t HashOf(const LValue& v) {
  switch (v.index()) {
    case 0:
      return Mix64(std::get<uint64_t>(v));
    case 1:
      return Mix64(static_cast<uint64_t>(std::get<int64_t>(v)) ^ 0x11);
    case 3:
      return Fnv1a64(std::get<std::string>(v));
    default:
      return 0;
  }
}

/// The seed's SymmetricHashJoin: stored sides and join outputs are full
/// deep copies of the value vectors (strings included).
struct Shj {
  size_t left_col, right_col;
  std::unordered_multimap<uint64_t, LTuple> left_table, right_table;

  Shj(size_t l, size_t r) : left_col(l), right_col(r) {}

  static LTuple Concat(const LTuple& l, const LTuple& r) {
    LTuple vals = l;
    for (const auto& v : r) vals.push_back(v);
    return vals;
  }

  std::vector<LTuple> InsertLeft(LTuple t) {
    std::vector<LTuple> out;
    uint64_t h = HashOf(t[left_col]);
    auto [lo, hi] = right_table.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second[right_col] == t[left_col]) {
        out.push_back(Concat(t, it->second));
      }
    }
    left_table.emplace(h, std::move(t));
    return out;
  }

  std::vector<LTuple> InsertRight(LTuple t) {
    std::vector<LTuple> out;
    uint64_t h = HashOf(t[right_col]);
    auto [lo, hi] = left_table.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      if (it->second[left_col] == t[right_col]) {
        out.push_back(Concat(it->second, t));
      }
    }
    right_table.emplace(h, std::move(t));
    return out;
  }
};

/// The seed's per-tuple decoder: std::string values, no interning.
Result<LTuple> Deserialize(const std::vector<uint8_t>& data) {
  BytesReader r(data);
  auto arity = r.GetVarint();
  if (!arity.ok()) return arity.status();
  LTuple values;
  values.reserve(static_cast<size_t>(arity.value()));
  for (uint64_t i = 0; i < arity.value(); ++i) {
    auto tag = r.GetU8();
    if (!tag.ok()) return tag.status();
    switch (static_cast<pier::ValueType>(tag.value())) {
      case pier::ValueType::kUint64: {
        auto v = r.GetVarint();
        if (!v.ok()) return v.status();
        values.emplace_back(v.value());
        break;
      }
      case pier::ValueType::kInt64: {
        auto v = r.GetVarint();
        if (!v.ok()) return v.status();
        values.emplace_back(static_cast<int64_t>(v.value()));
        break;
      }
      case pier::ValueType::kDouble: {
        auto v = r.GetDouble();
        if (!v.ok()) return v.status();
        values.emplace_back(v.value());
        break;
      }
      case pier::ValueType::kString: {
        auto v = r.GetString();
        if (!v.ok()) return v.status();
        values.emplace_back(std::move(v).value());
        break;
      }
      default:
        return Status::Corruption("unknown value type tag");
    }
  }
  return values;
}

}  // namespace legacy

// The SHJ workload of the keyword chain: the posting list of keyword A
// (fileID + filename payload) intersecting the posting list of keyword B,
// joined on fileID. Each side holds distinct fileIDs and roughly half the
// probes find their match — the shape of a two-term query intersection.
// Both tuple streams are materialized once up front (the engine decodes
// tuples once and then feeds them to the join), so the bench isolates the
// per-insert cost: a full row deep-copy (seed) vs a handle copy plus
// exact table reservation (batched pipeline — batch decode knows the
// cardinalities).
struct ShjWorkload {
  std::vector<std::pair<std::string, uint64_t>> lefts;   // (keyword, id)
  std::vector<std::pair<uint64_t, std::string>> rights;  // (id, filename)

  explicit ShjWorkload(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      rights.emplace_back(uint64_t{2 * i},  // even ids
                          "artist" + std::to_string(i % 97) +
                              " some longish track title " +
                              std::to_string(i) + ".mp3");
      // Probe ids cover evens and odds: ~50% of probes match.
      lefts.emplace_back("keyword" + std::to_string(i % 16), uint64_t{i});
    }
  }
};

static void BM_ShjInsertWithMatches_Legacy(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  ShjWorkload w(n);
  std::vector<legacy::LTuple> rights, lefts;
  for (auto& [id, name] : w.rights) rights.push_back(legacy::LTuple{id, name});
  for (auto& [kw, id] : w.lefts) lefts.push_back(legacy::LTuple{kw, id});
  for (auto _ : state) {
    legacy::Shj shj(1, 0);
    for (const auto& t : rights) {
      benchmark::DoNotOptimize(shj.InsertRight(t));  // deep copy in
    }
    for (const auto& t : lefts) {
      benchmark::DoNotOptimize(shj.InsertLeft(t));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n));
}
BENCHMARK(BM_ShjInsertWithMatches_Legacy)->Arg(4096);

static void BM_ShjInsertWithMatches_SharedPayload(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  ShjWorkload w(n);
  std::vector<pier::Tuple> rights, lefts;
  for (auto& [id, name] : w.rights) {
    rights.push_back(pier::Tuple({pier::Value(id), pier::Value(name)}));
  }
  for (auto& [kw, id] : w.lefts) {
    lefts.push_back(pier::Tuple({pier::Value(kw), pier::Value(id)}));
  }
  for (auto _ : state) {
    pier::SymmetricHashJoin shj(1, 0);
    shj.Reserve(lefts.size(), rights.size());
    for (const auto& t : rights) {
      benchmark::DoNotOptimize(shj.InsertRight(t));  // refcount bump in
    }
    for (const auto& t : lefts) {
      benchmark::DoNotOptimize(shj.InsertLeft(t));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(2 * n));
}
BENCHMARK(BM_ShjInsertWithMatches_SharedPayload)->Arg(4096);

/// A posting list the way the store holds it: one Item-shaped frame per
/// entry, every entry repeating the keyword column.
struct EncodedPostings {
  std::vector<std::vector<uint8_t>> frames;
  std::vector<uint8_t> image;  ///< TupleBatch image of the same frames.

  explicit EncodedPostings(size_t n) {
    pier::TupleBatch batch;
    for (size_t i = 0; i < n; ++i) {
      pier::Tuple t({pier::Value(std::string("madonna")),
                     pier::Value(uint64_t{i}),
                     pier::Value("madonna track " + std::to_string(i) +
                                 ".mp3"),
                     pier::Value(uint64_t{4 << 20})});
      frames.push_back(t.Serialize());
      batch.Add(std::move(t));
    }
    image = batch.Serialize();
  }
};

// Both deserialize benches model the Fetch receiver: the DHT reply body is
// copied into the callback (vector-of-frames before, one image now), then
// decoded. That is the per-call overhead the batch path collapses.
static void BM_TupleDeserialize_PerTuple(benchmark::State& state) {
  EncodedPostings p(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::vector<uint8_t>> values = p.frames;  // reply copy
    for (const auto& frame : values) {
      benchmark::DoNotOptimize(legacy::Deserialize(frame));
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TupleDeserialize_PerTuple)->Arg(512);

static void BM_TupleDeserialize_Batch(benchmark::State& state) {
  EncodedPostings p(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<uint8_t> image = p.image;  // reply copy
    benchmark::DoNotOptimize(pier::TupleBatch::Deserialize(image));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TupleDeserialize_Batch)->Arg(512);

static void BM_TupleSerialize_PerTuple(benchmark::State& state) {
  EncodedPostings p(static_cast<size_t>(state.range(0)));
  size_t dropped = 0;
  pier::TupleBatch batch =
      pier::TupleBatch::DeserializeLossy(p.image, &dropped);
  for (auto _ : state) {
    for (const auto& t : batch) {
      benchmark::DoNotOptimize(t.Serialize());
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TupleSerialize_PerTuple)->Arg(512);

static void BM_TupleSerialize_Batch(benchmark::State& state) {
  EncodedPostings p(static_cast<size_t>(state.range(0)));
  size_t dropped = 0;
  pier::TupleBatch batch =
      pier::TupleBatch::DeserializeLossy(p.image, &dropped);
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch.Serialize());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TupleSerialize_Batch)->Arg(512);

/// Legacy-comparison benches measure message/hop contracts recorded before
/// the load-balanced routing layer; they pin the classic policy so the
/// owner location cache and congestion detours cannot skew their gated
/// ratios (the same pinning precedent as adaptive_credit=false). The
/// BM_Routing_* pair below measures the routing layer itself.
static dht::DhtOptions ClassicRoutingOpts(dht::DhtOptions dopts = {}) {
  dopts.routing_policy = dht::RoutingPolicyKind::kClassicChord;
  return dopts;
}

/// Shared scaffolding of the end-to-end network benches: a 10ms-latency
/// simulated network, a static DHT deployment, and one PierNode per DHT
/// node. All publish/fetch benches must measure the same topology.
struct BenchCluster {
  sim::Simulator simulator;
  sim::Network network;
  dht::DhtDeployment dht;
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;

  explicit BenchCluster(size_t nodes,
                        dht::DhtOptions dopts = ClassicRoutingOpts())
      : network(&simulator,
                std::make_unique<sim::ConstantLatency>(
                    10 * sim::kMillisecond),
                7),
        dht(&network, nodes, dopts, 11) {
    for (size_t i = 0; i < dht.size(); ++i) {
      piers.push_back(
          std::make_unique<pier::PierNode>(dht.node(i), &metrics));
    }
  }
};

/// Seed-style per-tuple publish of one file — one routed Put per tuple —
/// the baseline both network benches compare the coalesced pipeline
/// against (Publisher::PublishFile now rides the standing rehash queues,
/// so it cannot serve as the baseline itself).
static void PublishPerTuple(pier::PierNode* pier,
                            const piersearch::FileToPublish& f) {
  uint64_t file_id = FileId(f.filename, f.size_bytes, f.address);
  pier->Publish(piersearch::ItemSchema(),
                pier::Tuple({pier::Value(file_id), pier::Value(f.filename),
                             pier::Value(f.size_bytes),
                             pier::Value(uint64_t{f.address}),
                             pier::Value(uint64_t{f.port})}));
  for (const auto& kw : ExtractUniqueKeywords(f.filename)) {
    pier->Publish(piersearch::InvertedSchema(),
                  pier::Tuple({pier::Value(kw), pier::Value(file_id)}));
  }
}

// End-to-end join chain over a real DHT cluster: publish a library, run
// two-keyword searches, and report network cost alongside throughput. The
// PerTuple variant publishes with one routed message per tuple (the seed
// path); Batched uses the coalesced PublishFiles pipeline. Both run the
// same queries and are expected to return identical result counts.
static void JoinChainRun(benchmark::State& state, bool batched) {
  const size_t kFiles = 400, kNodes = 16, kQueries = 25;
  uint64_t net_messages = 0, net_bytes = 0, results = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    auto& simulator = c.simulator;
    auto& network = c.network;
    auto& piers = c.piers;
    piersearch::Publisher publisher(piers[0].get());
    piersearch::PublishOptions popts;
    std::vector<piersearch::FileToPublish> files;
    for (size_t i = 0; i < kFiles; ++i) {
      files.push_back(piersearch::FileToPublish{
          "artist" + std::to_string(i % 20) + " album" +
              std::to_string(i % 50) + " track" + std::to_string(i) + ".mp3",
          1 << 20, static_cast<uint32_t>(i % kNodes), 6346});
    }
    if (batched) {
      publisher.PublishFiles(files, popts);
      piers[0]->FlushPublishQueues();
    } else {
      for (const auto& f : files) PublishPerTuple(piers[0].get(), f);
    }
    simulator.Run();
    piersearch::SearchEngine engine(piers[1].get());
    piersearch::SearchOptions sopts;
    sopts.fetch_items = false;
    for (size_t q = 0; q < kQueries; ++q) {
      std::string query = "artist" + std::to_string(q % 20) + " album" +
                          std::to_string(q % 50);
      engine.Search(query, sopts, [&](Status s, auto hits) {
        if (s.ok()) results += hits.size();
      });
    }
    simulator.Run();
    net_messages += network.metrics().total.messages;
    net_bytes += network.metrics().total.bytes;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kQueries));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["net_messages"] = per_iter(net_messages);
  state.counters["net_bytes"] = per_iter(net_bytes);
  state.counters["results"] = per_iter(results);
}

static void BM_JoinChain_PerTuplePublish(benchmark::State& state) {
  JoinChainRun(state, /*batched=*/false);
}
BENCHMARK(BM_JoinChain_PerTuplePublish)->Unit(benchmark::kMillisecond);

static void BM_JoinChain_BatchedPublish(benchmark::State& state) {
  JoinChainRun(state, /*batched=*/true);
}
BENCHMARK(BM_JoinChain_BatchedPublish)->Unit(benchmark::kMillisecond);

// Answer-fetch path: resolve a published answer set's Item tuples. The
// PerResult variant issues one GetBatch round-trip per fileID (the seed
// path of SearchEngine::FetchItems); OwnerCoalesced groups the ids by
// resolved owner with one MultiGet scatter (FetchMany), costing one routed
// get per owner. Identical tuples fetched, a fraction of the messages.
static void FetchItemsRun(benchmark::State& state, bool coalesced) {
  const size_t kItems = 192, kNodes = 16;
  uint64_t net_messages = 0, net_bytes = 0, fetched = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    auto& simulator = c.simulator;
    auto& network = c.network;
    auto& piers = c.piers;
    piersearch::Publisher publisher(piers[0].get());
    piersearch::PublishOptions popts;
    popts.inverted = false;  // Item tuples only — this is the fetch bench
    std::vector<piersearch::FileToPublish> files;
    for (size_t i = 0; i < kItems; ++i) {
      files.push_back(piersearch::FileToPublish{
          "fetchable track number " + std::to_string(i) + ".mp3", 1 << 20,
          static_cast<uint32_t>(i % kNodes), 6346});
    }
    std::vector<uint64_t> ids = publisher.PublishFiles(files, popts);
    piers[0]->FlushPublishQueues();
    simulator.Run();
    uint64_t base_msgs = network.metrics().total.messages;
    uint64_t base_bytes = network.metrics().total.bytes;
    if (coalesced) {
      std::vector<pier::Value> keys;
      for (uint64_t id : ids) keys.emplace_back(pier::Value(id));
      piers[1]->FetchMany(piersearch::ItemSchema(), std::move(keys),
                          [&](Status s, std::vector<pier::Tuple> tuples) {
                            if (s.ok()) fetched += tuples.size();
                          });
    } else {
      for (uint64_t id : ids) {
        piers[1]->Fetch(piersearch::ItemSchema(), pier::Value(id),
                        [&](Status s, std::vector<pier::Tuple> tuples) {
                          if (s.ok()) fetched += tuples.size();
                        });
      }
    }
    simulator.Run();
    net_messages += network.metrics().total.messages - base_msgs;
    net_bytes += network.metrics().total.bytes - base_bytes;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kItems));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["net_messages"] = per_iter(net_messages);
  state.counters["net_bytes"] = per_iter(net_bytes);
  state.counters["fetched"] = per_iter(fetched);
}

static void BM_FetchItems_PerResult(benchmark::State& state) {
  FetchItemsRun(state, /*coalesced=*/false);
}
BENCHMARK(BM_FetchItems_PerResult)->Unit(benchmark::kMillisecond);

static void BM_FetchItems_OwnerCoalesced(benchmark::State& state) {
  FetchItemsRun(state, /*coalesced=*/true);
}
BENCHMARK(BM_FetchItems_OwnerCoalesced)->Unit(benchmark::kMillisecond);

// Publish path under call-at-a-time workloads (the QRS snoop shape: one
// file per upcall). PerTupleCalls replicates the seed path — every tuple
// its own routed Put. StandingQueues publishes the same files one call at
// a time through the rehash queues, which coalesce ACROSS calls into
// per-destination PutBatch messages.
static void PublishPathRun(benchmark::State& state, bool standing) {
  const size_t kFiles = 256, kNodes = 16;
  uint64_t net_messages = 0, net_bytes = 0, stored = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    auto& simulator = c.simulator;
    auto& network = c.network;
    auto& piers = c.piers;
    piersearch::Publisher publisher(piers[0].get());
    piersearch::PublishOptions popts;
    for (size_t i = 0; i < kFiles; ++i) {
      piersearch::FileToPublish f{
          "artist" + std::to_string(i % 20) + " snooped rare " +
              std::to_string(i) + ".mp3",
          1 << 20, static_cast<uint32_t>(i % kNodes), 6346};
      if (standing) {
        // One call per file; cross-call coalescing in the rehash queues.
        publisher.PublishFile(f.filename, f.size_bytes, f.address, f.port,
                              popts);
      } else {
        PublishPerTuple(piers[0].get(), f);
      }
    }
    if (standing) piers[0]->FlushPublishQueues();
    simulator.Run();
    net_messages += network.metrics().total.messages;
    net_bytes += network.metrics().total.bytes;
    for (size_t i = 0; i < c.dht.size(); ++i) {
      stored += c.dht.node(i)->store().TotalEntries(simulator.now());
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kFiles));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["net_messages"] = per_iter(net_messages);
  state.counters["net_bytes"] = per_iter(net_bytes);
  state.counters["stored"] = per_iter(stored);
}

static void BM_PublishPath_PerTupleCalls(benchmark::State& state) {
  PublishPathRun(state, /*standing=*/false);
}
BENCHMARK(BM_PublishPath_PerTupleCalls)->Unit(benchmark::kMillisecond);

static void BM_PublishPath_StandingQueues(benchmark::State& state) {
  PublishPathRun(state, /*standing=*/true);
}
BENCHMARK(BM_PublishPath_StandingQueues)->Unit(benchmark::kMillisecond);

// Answer fetch under replication: the same FetchMany over a replicated
// item table, with the chained owner scatter (KOwnerBaseline) vs replica
// peeling (ReplicaAware) — the remainder hops straight to the farthest
// in-arc replica, so one visit answers several owners' key ranges.
// Identical tuples fetched, fewer routed hops.
static void ReplicaFetchRun(benchmark::State& state, bool replica_aware) {
  const size_t kItems = 192, kNodes = 24;
  uint64_t routed_hops = 0, net_messages = 0, fetched = 0, peels = 0;
  for (auto _ : state) {
    dht::DhtOptions dopts;
    dopts.replication = 2;
    dopts.replica_aware_multiget = replica_aware;
    BenchCluster c(kNodes, ClassicRoutingOpts(dopts));
    auto& piers = c.piers;
    piersearch::Publisher publisher(piers[0].get());
    piersearch::PublishOptions popts;
    popts.inverted = false;
    std::vector<piersearch::FileToPublish> files;
    for (size_t i = 0; i < kItems; ++i) {
      files.push_back(piersearch::FileToPublish{
          "replicated track number " + std::to_string(i) + ".mp3", 1 << 20,
          static_cast<uint32_t>(i % kNodes), 6346});
    }
    std::vector<uint64_t> ids = publisher.PublishFiles(files, popts);
    piers[0]->FlushPublishQueues();
    c.simulator.Run();
    uint64_t base_hops = c.network.metrics().by_tag["dht.route"].messages;
    uint64_t base_msgs = c.network.metrics().total.messages;
    std::vector<pier::Value> keys;
    for (uint64_t id : ids) keys.emplace_back(pier::Value(id));
    piers[1]->FetchMany(piersearch::ItemSchema(), std::move(keys),
                        [&](Status s, std::vector<pier::Tuple> tuples) {
                          if (s.ok()) fetched += tuples.size();
                        });
    c.simulator.Run();
    routed_hops +=
        c.network.metrics().by_tag["dht.route"].messages - base_hops;
    net_messages += c.network.metrics().total.messages - base_msgs;
    peels += c.dht.metrics().replica_peels;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kItems));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["routed_hops"] = per_iter(routed_hops);
  state.counters["net_messages"] = per_iter(net_messages);
  state.counters["fetched"] = per_iter(fetched);
  state.counters["replica_peels"] = per_iter(peels);
}

static void BM_ReplicaFetch_KOwnerBaseline(benchmark::State& state) {
  ReplicaFetchRun(state, /*replica_aware=*/false);
}
BENCHMARK(BM_ReplicaFetch_KOwnerBaseline)->Unit(benchmark::kMillisecond);

static void BM_ReplicaFetch_ReplicaAware(benchmark::State& state) {
  ReplicaFetchRun(state, /*replica_aware=*/true);
}
BENCHMARK(BM_ReplicaFetch_ReplicaAware)->Unit(benchmark::kMillisecond);

// Publish-ack latency under the rehash flush policies. Bursts of
// call-at-a-time publishes (the QRS snoop shape) land on idle
// destinations; the fixed policy holds every sub-threshold queue for the
// full flush interval, the pressure-driven policy ships the moment the
// idle-path threshold fills. Deterministic: simulated clock, constant
// latency.
static void AdaptiveFlushRun(benchmark::State& state, bool adaptive) {
  const size_t kKeywords = 10, kPerKeyword = 16, kNodes = 16;
  double total_latency_ms = 0;
  uint64_t acked = 0, net_messages = 0, adaptive_flushes = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    pier::BatchOptions bopts;
    bopts.adaptive_flush = adaptive;
    for (auto& p : c.piers) p->set_batch_options(bopts);
    // One keyword burst every 100ms so each burst meets a drained path.
    for (size_t k = 0; k < kKeywords; ++k) {
      c.simulator.ScheduleAfter(k * 100 * sim::kMillisecond, [&, k]() {
        for (uint64_t f = 0; f < kPerKeyword; ++f) {
          sim::SimTime sent = c.simulator.now();
          c.piers[0]->PublishBatch(
              piersearch::InvertedSchema(),
              {pier::Tuple({pier::Value("burstkw" + std::to_string(k)),
                            pier::Value(f)})},
              /*expiry=*/0, [&, sent](Status s) {
                if (!s.ok()) return;
                total_latency_ms +=
                    static_cast<double>(c.simulator.now() - sent) /
                    static_cast<double>(sim::kMillisecond);
                ++acked;
              });
        }
      });
    }
    c.simulator.Run();
    net_messages += c.network.metrics().total.messages;
    adaptive_flushes += c.metrics.adaptive_flushes;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(kKeywords * kPerKeyword));
  state.counters["mean_ack_latency_ms"] =
      acked == 0 ? 0.0 : total_latency_ms / static_cast<double>(acked);
  state.counters["net_messages"] =
      static_cast<double>(net_messages) /
      static_cast<double>(state.iterations());
  state.counters["adaptive_flushes"] =
      static_cast<double>(adaptive_flushes) /
      static_cast<double>(state.iterations());
}

static void BM_AdaptiveFlush_FixedBounds(benchmark::State& state) {
  AdaptiveFlushRun(state, /*adaptive=*/false);
}
BENCHMARK(BM_AdaptiveFlush_FixedBounds)->Unit(benchmark::kMillisecond);

static void BM_AdaptiveFlush_PressureDriven(benchmark::State& state) {
  AdaptiveFlushRun(state, /*adaptive=*/true);
}
BENCHMARK(BM_AdaptiveFlush_PressureDriven)->Unit(benchmark::kMillisecond);

// Slow-owner backpressure: a 50-chunk join stream into a stage owner with
// a 20ms receive delay. Unpaced, the whole stream piles onto the owner's
// queue (peak in-flight bytes ~ the full entry list); credit-paced, the
// producer holds chunks until the owner acks, bounding the peak near the
// credit window. Same final join answer either way.
static void CreditJoinRun(benchmark::State& state, size_t credit_window) {
  const size_t kNodes = 16, kAlpha = 400, kBeta = 500;
  uint64_t peak_bytes = 0, results = 0, stalls = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    pier::BatchOptions bopts;
    bopts.max_stage_entries = 8;
    bopts.stage_credit_chunks = credit_window;
    // This pair measures the FIXED window contract; the service-rate
    // derived window would deepen it on the stale-fast EWMA.
    bopts.adaptive_credit = false;
    for (auto& p : c.piers) p->set_batch_options(bopts);
    auto publish = [&](const char* kw, uint64_t lo, uint64_t hi) {
      std::vector<pier::Tuple> tuples;
      for (uint64_t f = lo; f < hi; ++f) {
        tuples.push_back(pier::Tuple({pier::Value(std::string(kw)),
                                      pier::Value(f)}));
      }
      c.piers[0]->PublishBatch(piersearch::InvertedSchema(),
                               std::move(tuples));
      c.piers[0]->FlushPublishQueues();
      c.simulator.Run();
    };
    publish("alpha", 0, kAlpha);
    publish("beta", 0, kBeta);
    dht::Key beta_key = HashCombine(
        Fnv1a64("inverted"), pier::Value(std::string("beta")).Hash());
    sim::HostId slow = c.dht.ExpectedOwner(beta_key)->host();
    c.network.SetProcessingDelay(slow, 20 * sim::kMillisecond);
    c.network.ResetLoadWatermarks();
    pier::DistributedJoin join;
    for (const char* kw : {"alpha", "beta"}) {
      pier::JoinStage stage;
      stage.ns = "inverted";
      stage.key = pier::Value(std::string(kw));
      join.stages.push_back(std::move(stage));
    }
    c.piers[3]->ExecuteJoin(std::move(join), [&](Status s, auto entries) {
      if (s.ok()) results += entries.size();
    });
    c.simulator.Run();
    peak_bytes += c.network.LoadOf(slow).peak_in_flight_bytes;
    stalls += c.metrics.credits_stalled;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kAlpha));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["peak_inflight_bytes"] = per_iter(peak_bytes);
  state.counters["results"] = per_iter(results);
  state.counters["credits_stalled"] = per_iter(stalls);
}

static void BM_CreditJoin_Unpaced(benchmark::State& state) {
  CreditJoinRun(state, /*credit_window=*/0);
}
BENCHMARK(BM_CreditJoin_Unpaced)->Unit(benchmark::kMillisecond);

static void BM_CreditJoin_Credited(benchmark::State& state) {
  CreditJoinRun(state, /*credit_window=*/2);
}
BENCHMARK(BM_CreditJoin_Credited)->Unit(benchmark::kMillisecond);

// Declarative-plan execution vs the legacy hardwired join path: the same
// published library, the same 25 two-term searches — once through direct
// ExecuteJoin calls shaped exactly like the pre-plan SearchEngine, once
// compiled to QueryPlans and run through ExecutePlan (what SearchEngine
// does now). The plan path must return identical result counts at message
// parity: run_bench.sh gates plan_chain_message_parity >= 0.9x.
static void PlanExecRun(benchmark::State& state, bool plan_api) {
  const size_t kFiles = 400, kNodes = 16, kQueries = 25;
  uint64_t net_messages = 0, net_bytes = 0, results = 0;
  for (auto _ : state) {
    BenchCluster c(kNodes);
    piersearch::Publisher publisher(c.piers[0].get());
    piersearch::PublishOptions popts;
    std::vector<piersearch::FileToPublish> files;
    for (size_t i = 0; i < kFiles; ++i) {
      files.push_back(piersearch::FileToPublish{
          "artist" + std::to_string(i % 20) + " album" +
              std::to_string(i % 50) + " track" + std::to_string(i) + ".mp3",
          1 << 20, static_cast<uint32_t>(i % kNodes), 6346});
    }
    publisher.PublishFiles(files, popts);
    c.piers[0]->FlushPublishQueues();
    c.simulator.Run();
    uint64_t base_msgs = c.network.metrics().total.messages;
    uint64_t base_bytes = c.network.metrics().total.bytes;
    piersearch::SearchEngine engine(c.piers[1].get());
    piersearch::SearchOptions sopts;
    sopts.fetch_items = false;
    for (size_t q = 0; q < kQueries; ++q) {
      std::string a = "artist" + std::to_string(q % 20);
      std::string b = "album" + std::to_string(q % 50);
      if (plan_api) {
        engine.Search(a + " " + b, sopts, [&](Status s, auto hits) {
          if (s.ok()) results += hits.size();
        });
      } else {
        pier::DistributedJoin join;
        join.limit = sopts.max_results;
        for (const std::string& term : {a, b}) {
          pier::JoinStage stage;
          stage.ns = piersearch::InvertedSchema().table_name();
          stage.key = pier::Value(term);
          join.stages.push_back(std::move(stage));
        }
        c.piers[1]->ExecuteJoin(std::move(join),
                                [&](Status s, auto entries) {
                                  if (s.ok()) results += entries.size();
                                });
      }
    }
    c.simulator.Run();
    net_messages += c.network.metrics().total.messages - base_msgs;
    net_bytes += c.network.metrics().total.bytes - base_bytes;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kQueries));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["net_messages"] = per_iter(net_messages);
  state.counters["net_bytes"] = per_iter(net_bytes);
  state.counters["results"] = per_iter(results);
}

static void BM_PlanExec_LegacyJoin(benchmark::State& state) {
  PlanExecRun(state, /*plan_api=*/false);
}
BENCHMARK(BM_PlanExec_LegacyJoin)->Unit(benchmark::kMillisecond);

static void BM_PlanExec_PlanCompiled(benchmark::State& state) {
  PlanExecRun(state, /*plan_api=*/true);
}
BENCHMARK(BM_PlanExec_PlanCompiled)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Routing-layer benches (owner location cache + congestion-biased finger
// choice). SteadyState: the same fetch/publish workload repeated against
// warm destinations — with the location cache every routed message
// converges to ~one hop, so the "dht.route" message count (one per overlay
// hop) collapses vs the classic ring walk at identical answers. HotSpot:
// a burst of gets whose greedy first hop is a buried node — the
// congestion-aware policy detours around it, cutting delivery latency at
// identical answers. Both gated in scripts/run_bench.sh --check.
// ---------------------------------------------------------------------------
static void RoutingSteadyStateRun(benchmark::State& state, bool cached) {
  const size_t kItems = 64, kNodes = 64, kRounds = 3;
  uint64_t routed_hops = 0, fetched = 0, cache_hits = 0;
  for (auto _ : state) {
    dht::DhtOptions dopts;
    dopts.routing_policy = cached
                               ? dht::RoutingPolicyKind::kCongestionAware
                               : dht::RoutingPolicyKind::kClassicChord;
    BenchCluster c(kNodes, dopts);
    piersearch::Publisher publisher(c.piers[0].get());
    piersearch::PublishOptions popts;
    popts.inverted = false;
    std::vector<piersearch::FileToPublish> files;
    for (size_t i = 0; i < kItems; ++i) {
      files.push_back(piersearch::FileToPublish{
          "steady state track " + std::to_string(i) + ".mp3", 1 << 20,
          static_cast<uint32_t>(i % kNodes), 6346});
    }
    std::vector<uint64_t> ids = publisher.PublishFiles(files, popts);
    c.piers[0]->FlushPublishQueues();
    c.simulator.Run();
    std::vector<pier::Value> keys;
    for (uint64_t id : ids) keys.emplace_back(pier::Value(id));
    bool count_fetches = false;
    auto fetch_round = [&]() {
      std::vector<pier::Value> round_keys = keys;
      c.piers[1]->FetchMany(piersearch::ItemSchema(), std::move(round_keys),
                            [&](Status s, std::vector<pier::Tuple> tuples) {
                              if (s.ok() && count_fetches) {
                                fetched += tuples.size();
                              }
                            });
      c.simulator.Run();
    };
    auto publish_round = [&]() {
      // Soft-state refresh: the same items re-published (dedup at the
      // owner refreshes expiry) — the standing-rehash-queue steady state.
      publisher.PublishFiles(files, popts);
      c.piers[0]->FlushPublishQueues();
      c.simulator.Run();
    };
    // Warmup round (uncounted): replies and hints teach the fetcher's and
    // publisher's owner caches. The classic variant learns nothing.
    fetch_round();
    publish_round();
    uint64_t base = c.network.metrics().by_tag["dht.route"].messages;
    count_fetches = true;
    for (size_t r = 0; r < kRounds; ++r) {
      publish_round();
      fetch_round();
    }
    routed_hops += c.network.metrics().by_tag["dht.route"].messages - base;
    cache_hits += c.dht.metrics().route_cache_hits;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(kItems * kRounds));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["routed_hops"] = per_iter(routed_hops);
  state.counters["fetched"] = per_iter(fetched);
  state.counters["route_cache_hits"] = per_iter(cache_hits);
}

static void BM_Routing_SteadyStateClassic(benchmark::State& state) {
  RoutingSteadyStateRun(state, /*cached=*/false);
}
BENCHMARK(BM_Routing_SteadyStateClassic)->Unit(benchmark::kMillisecond);

static void BM_Routing_SteadyStateCached(benchmark::State& state) {
  RoutingSteadyStateRun(state, /*cached=*/true);
}
BENCHMARK(BM_Routing_SteadyStateCached)->Unit(benchmark::kMillisecond);

/// (origin index, key) pairs whose greedy route enters the hot node as a
/// genuinely bypassable INTERMEDIATE hop: the origin's classic first hop
/// is the hot node, another finger also makes ring progress, and several
/// ring members sit strictly between the hot node and the key so other
/// nodes' fingers can leap past it. (A key in the arc right after the hot
/// node is unroutable around — in Chord the owner's predecessor is on
/// every path.) The ring layout is seed-deterministic, so the scan runs
/// once on a scratch cluster and applies to every measured iteration.
static const std::vector<std::pair<size_t, dht::Key>>& HotSpotScenarios(
    size_t nodes, size_t hot_index, size_t want) {
  static std::vector<std::pair<size_t, dht::Key>> scenarios;
  static size_t memo_nodes = 0, memo_hot = 0, memo_want = 0;
  if (!scenarios.empty()) {
    // The memo is keyed on one topology; a second hot-spot bench with
    // different parameters must not silently reuse it. A live check, not
    // an assert — the measured binary is a Release (NDEBUG) build.
    if (nodes != memo_nodes || hot_index != memo_hot || want != memo_want) {
      fprintf(stderr,
              "HotSpotScenarios: memo reused with different parameters\n");
      std::abort();
    }
    return scenarios;
  }
  memo_nodes = nodes;
  memo_hot = hot_index;
  memo_want = want;
  BenchCluster c(nodes);
  dht::DhtNode* hot_node = c.dht.node(hot_index);
  sim::HostId hot = hot_node->host();
  for (uint64_t i = 1; scenarios.size() < want && i < 50000; ++i) {
    dht::Key k = Mix64(i);
    if (c.dht.ExpectedOwner(k)->host() == hot) continue;
    size_t between = 0;
    for (size_t n = 0; n < c.dht.size(); ++n) {
      if (dht::InOpenOpen(hot_node->id(), k, c.dht.node(n)->id())) ++between;
    }
    if (between < 3) continue;
    for (size_t oi = 0; oi < c.dht.size(); ++oi) {
      if (oi == hot_index) continue;
      auto& table = c.dht.node(oi)->routing();
      if (table.IsOwner(k)) continue;
      if (table.NextHop(k).host != hot) continue;
      std::vector<dht::NodeInfo> cands;
      table.AppendProgressCandidates(k, &cands);
      bool has_alternative = false;
      for (const auto& cand : cands) {
        if (cand.host != hot) has_alternative = true;
      }
      if (has_alternative) {
        scenarios.emplace_back(oi, k);
        break;
      }
    }
  }
  return scenarios;
}

static void RoutingHotSpotRun(benchmark::State& state, bool aware) {
  const size_t kNodes = 32, kHotIndex = 13, kKeys = 24;
  const auto& scenarios = HotSpotScenarios(kNodes, kHotIndex, kKeys);
  double total_latency_ms = 0;
  uint64_t answered = 0, detours = 0;
  for (auto _ : state) {
    dht::DhtOptions dopts;
    dopts.routing_policy = aware
                               ? dht::RoutingPolicyKind::kCongestionAware
                               : dht::RoutingPolicyKind::kClassicChord;
    dopts.owner_location_cache = false;  // isolate the finger-choice effect
    BenchCluster c(kNodes, dopts);
    sim::HostId hot = c.dht.node(kHotIndex)->host();
    for (const auto& [oi, k] : scenarios) c.dht.node(5)->Put("ns", k, {1});
    c.simulator.Run();
    // Bury the hot node (service time 20 wire-hops deep), then fire the
    // whole get burst at once: classic pays the hot node's service delay
    // on every route; aware routes around it on spare fingers.
    c.network.SetProcessingDelay(hot, 200 * sim::kMillisecond);
    for (const auto& [oi, k] : scenarios) {
      sim::SimTime sent = c.simulator.now();
      c.dht.node(oi)->Get("ns", k, [&, sent](Status s, auto values) {
        if (s.ok() && !values.empty()) {
          ++answered;
          total_latency_ms +=
              static_cast<double>(c.simulator.now() - sent) /
              static_cast<double>(sim::kMillisecond);
        }
      });
    }
    c.simulator.Run();
    detours += c.dht.metrics().congestion_detours;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kKeys));
  state.counters["mean_get_latency_ms"] =
      answered == 0 ? 0.0
                    : total_latency_ms / static_cast<double>(answered);
  state.counters["answered"] =
      static_cast<double>(answered) / static_cast<double>(state.iterations());
  state.counters["congestion_detours"] =
      static_cast<double>(detours) / static_cast<double>(state.iterations());
}

static void BM_Routing_HotSpotClassic(benchmark::State& state) {
  RoutingHotSpotRun(state, /*aware=*/false);
}
BENCHMARK(BM_Routing_HotSpotClassic)->Unit(benchmark::kMillisecond);

static void BM_Routing_HotSpotDetour(benchmark::State& state) {
  RoutingHotSpotRun(state, /*aware=*/true);
}
BENCHMARK(BM_Routing_HotSpotDetour)->Unit(benchmark::kMillisecond);

static void BM_ChordNextHop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(4);
  std::vector<dht::NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back({rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](auto& a, auto& b) { return a.id < b.id; });
  dht::ChordRouting table(members[n / 2]);
  table.BuildStatic(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.NextHop(rng.Next()));
  }
}
BENCHMARK(BM_ChordNextHop)->Arg(1024)->Arg(16384);

static void BM_BambooNextHop(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<dht::NodeInfo> members;
  for (size_t i = 0; i < n; ++i) {
    members.push_back({rng.Next(), static_cast<sim::HostId>(i)});
  }
  std::sort(members.begin(), members.end(),
            [](auto& a, auto& b) { return a.id < b.id; });
  dht::BambooRouting table(members[n / 2]);
  table.BuildStatic(members);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.NextHop(rng.Next()));
  }
}
BENCHMARK(BM_BambooNextHop)->Arg(1024)->Arg(16384);

// ---------------------------------------------------------------------------
// Churn scenarios (paper Section 7's recall-under-flux methodology): a
// maintained DHT at replication 3 is driven through scripted membership
// churn by a FaultPlan timeline, and the gates in run_bench.sh --check
// hold recall against the stable-ring answer set and the restoration of
// every surviving key range to full replication. All three scenarios are
// counted (not timed) and seed-deterministic.

/// Maintained cluster + fault plan + churn driver for the churn benches.
/// Declaration order matters: the plan must outlive the network that
/// consults it and the driver that counts into it.
struct ChurnBench {
  static constexpr size_t kReplication = 3;
  static constexpr char kNs[] = "churn";

  sim::Simulator simulator;
  sim::FaultPlan plan;
  sim::Network network;
  dht::DhtDeployment dht;
  dht::ChurnDriver driver;
  std::vector<dht::Key> keys;

  ChurnBench(size_t nodes, uint64_t churn_seed)
      : plan(churn_seed ^ 0xC0FFEEull),
        network(&simulator,
                std::make_unique<sim::ConstantLatency>(10 * sim::kMillisecond),
                7),
        dht(&network, nodes, ChurnOpts(), 11),
        driver(&dht, churn_seed, &plan) {
    network.set_fault_plan(&plan);
  }

  static dht::DhtOptions ChurnOpts() {
    dht::DhtOptions dopts;
    dopts.replication = kReplication;
    dopts.maintenance = true;
    return dopts;
  }

  /// Publishes `count` keys through the bootstrap node and settles.
  void Publish(size_t count) {
    for (size_t i = 0; i < count; ++i) {
      keys.push_back((i + 1) * 0x9E3779B97F4A7C15ull);
      dht.node(0)->Put(kNs, keys.back(), {uint8_t(i), uint8_t(i >> 8), 3}, 0,
                       nullptr);
    }
    simulator.RunFor(10 * sim::kSecond);
  }

  dht::DhtNode* NodeByHost(sim::HostId host) {
    for (size_t i = 0; i < dht.size(); ++i) {
      if (dht.node(i)->host() == host) return dht.node(i);
    }
    return nullptr;
  }

  /// Live holders of `k` among its current owner and replica targets.
  size_t LiveCopies(dht::Key k) {
    dht::DhtNode* owner = dht.ExpectedOwner(k);
    if (owner == nullptr) return 0;
    size_t copies = owner->store().Has(kNs, k, simulator.now()) ? 1 : 0;
    for (const auto& r : owner->routing().ReplicaTargets(kReplication - 1)) {
      dht::DhtNode* holder = NodeByHost(r.host);
      if (holder != nullptr && holder->joined() &&
          holder->store().Has(kNs, k, simulator.now())) {
        ++copies;
      }
    }
    return copies;
  }

  /// True when some live node still stores `k` — the key survived the
  /// failure even if the replication floor is temporarily broken.
  bool Survives(dht::Key k) {
    for (size_t i = 0; i < dht.size(); ++i) {
      dht::DhtNode* n = dht.node(i);
      if (n->joined() && n->store().Has(kNs, k, simulator.now())) return true;
    }
    return false;
  }
};

// Sustained churn at the paper-scale rate (1% of the ring per simulated
// minute, joins and crashes alternating) while a surviving node keeps
// querying the published key set. Gate: recall within epsilon of the
// stable-ring answer set (every key was acked before churn started).
static void BM_Churn_SustainedRecall(benchmark::State& state) {
  const size_t kNodes = 48, kKeys = 120, kPerTick = 5;
  const sim::SimTime kWindow = 6 * sim::kMinute;
  const double kEventsPerMinute = kNodes * 0.01;  // 1%/min
  uint64_t asked = 0, answered = 0, crashes = 0, joins = 0, retries = 0;
  for (auto _ : state) {
    ChurnBench c(kNodes, 606);
    c.Publish(kKeys);
    c.driver.Schedule(sim::FaultPlan::SustainedChurn(
        c.simulator.now(), kWindow, kEventsPerMinute, 909));
    // Every 2s, fetch a rotating window of keys from the bootstrap node
    // (which the driver never crashes).
    size_t tick = 0;
    for (sim::SimTime t = c.simulator.now() + 2 * sim::kSecond;
         t < c.simulator.now() + kWindow; t += 2 * sim::kSecond, ++tick) {
      c.simulator.ScheduleAt(t, [&c, &asked, &answered, tick] {
        for (size_t j = 0; j < kPerTick; ++j) {
          dht::Key k = c.keys[(tick * kPerTick + j) % c.keys.size()];
          ++asked;
          c.dht.node(0)->Get(ChurnBench::kNs, k,
                             [&answered](Status s, auto values) {
                               if (s.ok() && !values.empty()) ++answered;
                             });
        }
      });
    }
    // The window plus one full get deadline so every in-flight query
    // resolves before the harness is torn down.
    c.simulator.RunFor(kWindow + 15 * sim::kSecond);
    crashes += c.driver.stats().crashes;
    joins += c.driver.stats().joins;
    retries += c.dht.metrics().get_retries;
  }
  state.SetItemsProcessed(int64_t(asked));
  state.counters["recall_permille"] =
      asked == 0 ? 0.0 : 1000.0 * static_cast<double>(answered) /
                             static_cast<double>(asked);
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["churn_crashes"] = per_iter(crashes);
  state.counters["churn_joins"] = per_iter(joins);
  state.counters["get_retries"] = per_iter(retries);
}
BENCHMARK(BM_Churn_SustainedRecall)->Unit(benchmark::kMillisecond);

// Flash-crowd join: 10% of the ring arrives within one simulated minute.
// Every key range must return to full replication within the bounded
// repair window (stabilize adoption + periodic re-sync rounds).
static void BM_Churn_FlashCrowdRepair(benchmark::State& state) {
  const size_t kNodes = 40, kJoins = 4, kKeys = 100;
  uint64_t full_runs = 0, resync_rounds = 0, resync_entries = 0;
  for (auto _ : state) {
    ChurnBench c(kNodes, 1212);
    c.Publish(kKeys);
    c.driver.Schedule(sim::FaultPlan::FlashCrowdJoin(c.simulator.now(),
                                                     kJoins, sim::kMinute));
    // One minute of arrivals, then a fixed repair window (60 re-sync
    // cadences) — the bounded-rounds guarantee under test.
    c.simulator.RunFor(sim::kMinute + 60 * sim::kSecond);
    bool full = true;
    for (dht::Key k : c.keys) {
      if (c.LiveCopies(k) != ChurnBench::kReplication) full = false;
    }
    if (full) ++full_runs;
    resync_rounds += c.dht.metrics().resync_rounds;
    resync_entries += c.dht.metrics().resync_entries;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kKeys));
  state.counters["full_replication"] =
      full_runs == static_cast<uint64_t>(state.iterations()) ? 1.0 : 0.0;
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["resync_rounds"] = per_iter(resync_rounds);
  state.counters["resync_entries"] = per_iter(resync_entries);
}
BENCHMARK(BM_Churn_FlashCrowdRepair)->Unit(benchmark::kMillisecond);

// Correlated mass-leave: a quarter of the ring crashes at the same
// instant. Every SURVIVING key (at least one live copy the moment after
// the crash) must be restored to full replication within the bounded
// repair window; keys whose whole replica set died are reported, not
// gated (no protocol can restore them).
static void BM_Churn_MassLeaveRepair(benchmark::State& state) {
  const size_t kNodes = 40, kCrashes = 10, kKeys = 100;
  uint64_t surviving = 0, restored = 0, lost = 0;
  for (auto _ : state) {
    ChurnBench c(kNodes, 3434);
    c.Publish(kKeys);
    c.driver.Schedule(sim::FaultPlan::MassLeave(
        c.simulator.now() + sim::kSecond, kCrashes));
    // Just past the crash instant: snapshot which keys survived at all.
    c.simulator.RunFor(1100 * sim::kMillisecond);
    std::vector<dht::Key> survivors;
    for (dht::Key k : c.keys) {
      if (c.Survives(k)) survivors.push_back(k);
      else ++lost;
    }
    surviving += survivors.size();
    // Fixed repair window: ring repair around 25% dead plus re-sync.
    c.simulator.RunFor(60 * sim::kSecond);
    for (dht::Key k : survivors) {
      if (c.LiveCopies(k) == ChurnBench::kReplication) ++restored;
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kKeys));
  state.counters["surviving_keys"] =
      static_cast<double>(surviving) / static_cast<double>(state.iterations());
  state.counters["lost_keys"] =
      static_cast<double>(lost) / static_cast<double>(state.iterations());
  state.counters["restored_permille"] =
      surviving == 0 ? 0.0 : 1000.0 * static_cast<double>(restored) /
                                 static_cast<double>(surviving);
}
BENCHMARK(BM_Churn_MassLeaveRepair)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Partition tolerance (partition_tolerance gates in run_bench.sh --check):
// a scheduled split-brain window must heal back into ONE oracle-clean ring
// with >= 98% recall of the pre-split answer set, and a durable restart
// must re-ship at least 5x fewer re-sync bytes than an amnesiac restart of
// the SAME node in the SAME scenario at identical final answers. All
// quantities are counted under fixed seeds.

// Half the ring is unreachable from the other half for one simulated
// minute; both sides detect, evict, and repair into per-side rings. After
// the heal, remembered-peer reconciliation probes must knit the rings back
// together (merge rounds, epoch fencing, replica re-sync) with no data
// loss the gate can see.
static void BM_Partition_SplitBrainHeal(benchmark::State& state) {
  const size_t kNodes = 32, kKeys = 100;
  uint64_t asked = 0, answered = 0, clean_runs = 0;
  uint64_t probes = 0, rounds = 0, heals = 0, drops = 0, stale = 0;
  for (auto _ : state) {
    ChurnBench c(kNodes, 2468);
    c.Publish(kKeys);
    dht::RingOracle oracle(&c.dht);
    for (dht::Key k : c.keys) oracle.TrackKey(ChurnBench::kNs, k);

    sim::FaultPlan::PartitionWindow w;
    for (size_t i = kNodes / 2; i < kNodes; ++i) {
      w.groups[c.dht.node(i)->host()] = 1;
    }
    w.start = c.simulator.now() + 5 * sim::kSecond;
    w.heal_time = w.start + sim::kMinute;
    c.plan.AddPartitionWindow(w);

    // Through the split, past the heal, and enough quiet time for the
    // low-cadence reconcile probes plus re-sync to converge.
    c.simulator.RunFor(5 * sim::kMinute);

    if (oracle.Check(c.simulator.now()).clean()) ++clean_runs;
    for (dht::Key k : c.keys) {
      ++asked;
      // Probe from the minority side: its view is the one the merge had
      // to repair.
      c.dht.node(kNodes - 1)->Get(ChurnBench::kNs, k,
                                  [&answered](Status s, auto values) {
                                    if (s.ok() && !values.empty()) ++answered;
                                  });
    }
    c.simulator.RunFor(15 * sim::kSecond);

    probes += c.dht.metrics().merge_probes;
    rounds += c.dht.metrics().merge_rounds;
    heals += c.dht.metrics().partition_heals;
    stale += c.dht.metrics().route_cache_stale;
    drops += c.plan.counters().partition_drops;
  }
  state.SetItemsProcessed(int64_t(asked));
  state.counters["recall_permille"] =
      asked == 0 ? 0.0 : 1000.0 * static_cast<double>(answered) /
                             static_cast<double>(asked);
  state.counters["oracle_clean"] =
      clean_runs == static_cast<uint64_t>(state.iterations()) ? 1.0 : 0.0;
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["merge_probes"] = per_iter(probes);
  state.counters["merge_rounds"] = per_iter(rounds);
  state.counters["partition_heals"] = per_iter(heals);
  state.counters["partition_drops"] = per_iter(drops);
  state.counters["route_cache_stale"] = per_iter(stale);
}
BENCHMARK(BM_Partition_SplitBrainHeal)->Unit(benchmark::kMillisecond);

/// One crash-then-restart pass over a fixed scenario; the durable flag is
/// the ONLY difference between the recovery bench and its amnesia
/// baseline, so their byte counters are directly comparable.
struct RestartOutcome {
  uint64_t resync_bytes = 0;
  uint64_t answered = 0;
};

static RestartOutcome RunRestartScenario(bool durable) {
  const size_t kNodes = 24, kKeys = 150;
  ChurnBench c(kNodes, 1357);
  c.Publish(kKeys);
  c.simulator.RunFor(20 * sim::kSecond);

  dht::DhtNode* victim = c.dht.node(5);
  victim->Crash();
  c.simulator.RunFor(sim::kMinute);  // ring repairs; floor is restored

  uint64_t bytes_before = c.dht.metrics().resync_bytes;
  victim->Restart(c.dht.node(0)->host(), durable);
  c.simulator.RunFor(2 * sim::kMinute);

  RestartOutcome out;
  out.resync_bytes = c.dht.metrics().resync_bytes - bytes_before;
  for (dht::Key k : c.keys) {
    c.dht.node(1)->Get(ChurnBench::kNs, k,
                       [&out](Status s, auto values) {
                         if (s.ok() && !values.empty()) ++out.answered;
                       });
  }
  c.simulator.RunFor(15 * sim::kSecond);
  return out;
}

// Durable restart: the node reboots with its crash-time store, so the
// digest-driven handover finds almost nothing diverged and re-ships only
// the writes it missed while down.
static void BM_Partition_RestartRecovery(benchmark::State& state) {
  const size_t kKeys = 150;
  uint64_t bytes = 0, answered = 0;
  for (auto _ : state) {
    RestartOutcome out = RunRestartScenario(/*durable=*/true);
    bytes += out.resync_bytes;
    answered += out.answered;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kKeys));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["resync_bytes"] = per_iter(bytes);
  state.counters["recall_permille"] =
      1000.0 * per_iter(answered) / static_cast<double>(kKeys);
}
BENCHMARK(BM_Partition_RestartRecovery)->Unit(benchmark::kMillisecond);

// Amnesia baseline: same node, same crash, same rejoin — but the disk was
// lost, so the whole arc must be re-pulled. The --check gate holds the
// durable run to at least 5x fewer re-sync bytes at identical recall.
static void BM_Partition_AmnesiaBaseline(benchmark::State& state) {
  const size_t kKeys = 150;
  uint64_t bytes = 0, answered = 0;
  for (auto _ : state) {
    RestartOutcome out = RunRestartScenario(/*durable=*/false);
    bytes += out.resync_bytes;
    answered += out.answered;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kKeys));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["resync_bytes"] = per_iter(bytes);
  state.counters["recall_permille"] =
      1000.0 * per_iter(answered) / static_cast<double>(kKeys);
}
BENCHMARK(BM_Partition_AmnesiaBaseline)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Fault-tolerant query plane (query_robustness gates in run_bench.sh
// --check): stage failover must recover a crashed owner's answers within
// the deadline, hedged fetches must cut worst-round latency under a
// fail-slow owner at identical answers, and overload admission must shed
// as a bounded, labeled refusal with exact partial accounting. All
// quantities are counted or read off the sim clock under fixed seeds.

namespace robust {

constexpr size_t kNodes = 16;

/// Maintained replication-3 cluster with a fault plan — the query-plane
/// robustness features only engage against a ring that can fail over.
struct RobustCluster {
  sim::Simulator simulator;
  sim::FaultPlan faults{99};
  sim::Network network;
  dht::DhtDeployment dht;
  pier::PierMetrics metrics;
  std::vector<std::unique_ptr<pier::PierNode>> piers;

  explicit RobustCluster(const pier::BatchOptions& bopts)
      : network(&simulator,
                std::make_unique<sim::ConstantLatency>(5 * sim::kMillisecond),
                31),
        dht(&network, kNodes, Opts(), 777) {
    network.set_fault_plan(&faults);
    for (size_t i = 0; i < dht.size(); ++i) {
      piers.push_back(std::make_unique<pier::PierNode>(dht.node(i), &metrics));
      piers.back()->set_batch_options(bopts);
    }
  }

  static dht::DhtOptions Opts() {
    dht::DhtOptions dopts;
    dopts.replication = 3;
    dopts.maintenance = true;
    return dopts;
  }

  dht::DhtNode* OwnerOf(const std::string& ns, const pier::Value& key) {
    return dht.ExpectedOwner(HashCombine(Fnv1a64(ns), key.Hash()));
  }

  void PublishPostings(const std::string& kw, uint64_t count) {
    std::vector<pier::Tuple> tuples;
    for (uint64_t f = 0; f < count; ++f) {
      tuples.push_back(pier::Tuple({pier::Value(kw), pier::Value(f)}));
    }
    piers[0]->PublishBatch(piersearch::InvertedSchema(), std::move(tuples));
    piers[0]->FlushPublishQueues();
    simulator.RunFor(10 * sim::kSecond);
  }

  size_t SurvivorIndex(dht::DhtNode* excluded) {
    for (size_t i = 0; i < dht.size(); ++i) {
      if (dht.node(i) != excluded && dht.node(i)->joined()) return i;
    }
    return 0;
  }
};

}  // namespace robust

// Crash-failover recall: four keywords with pairwise-distinct stage-0
// owners, each owner crashed while its query's dispatch is on the wire.
// The no-progress watchdog must re-dispatch to the replica-holding
// successor and recover the answers within the per-query deadline.
// Gates: recall_permille >= 950, failovers >= 1, deadline_met == 1.
static void BM_Robust_CrashFailoverRecall(benchmark::State& state) {
  const uint64_t kPostings = 100;
  const sim::SimTime kDeadline = 20 * sim::kSecond;
  uint64_t asked = 0, answered = 0, failovers = 0, missed_deadline = 0;
  for (auto _ : state) {
    pier::BatchOptions bopts;  // default failover budget
    robust::RobustCluster c(bopts);
    // Keywords with pairwise-distinct owners so each round kills a fresh
    // node (candidates hashed against this ring's fixed seed).
    std::vector<std::string> kws;
    std::vector<dht::DhtNode*> owners;
    for (const char* kw : {"alpha", "beta", "gamma", "delta", "epsilon",
                           "zeta", "theta", "kappa"}) {
      dht::DhtNode* o = c.OwnerOf("inverted", pier::Value(kw));
      if (o == nullptr || o == c.dht.node(0)) continue;
      bool fresh = true;
      for (dht::DhtNode* seen : owners) fresh = fresh && seen != o;
      if (!fresh) continue;
      kws.push_back(kw);
      owners.push_back(o);
      if (kws.size() == 4) break;
    }
    for (const std::string& kw : kws) c.PublishPostings(kw, kPostings);
    for (const std::string& kw : kws) {
      // The ring has shifted under previous crashes: re-resolve the owner.
      dht::DhtNode* owner = c.OwnerOf("inverted", pier::Value(kw));
      if (owner == nullptr) continue;
      pier::DistributedJoin join;
      pier::JoinStage stage;
      stage.ns = "inverted";
      stage.key = pier::Value(kw);
      join.stages.push_back(std::move(stage));
      size_t got = 0;
      bool fired = false;
      asked += kPostings;
      c.piers[c.SurvivorIndex(owner)]->ExecuteJoin(
          std::move(join),
          [&](Status s, std::vector<pier::JoinResultEntry> entries,
              const pier::Completeness&) {
            (void)s;
            fired = true;
            got = entries.size();
          },
          kDeadline);
      c.simulator.ScheduleAfter(2 * sim::kMillisecond,
                                [owner] { owner->Crash(); });
      c.simulator.RunFor(kDeadline + 5 * sim::kSecond);
      answered += got;
      if (!fired) ++missed_deadline;
    }
    failovers += c.metrics.stage_failovers;
  }
  state.SetItemsProcessed(int64_t(asked));
  state.counters["recall_permille"] =
      asked == 0 ? 0.0 : 1000.0 * static_cast<double>(answered) /
                             static_cast<double>(asked);
  state.counters["failovers"] =
      static_cast<double>(failovers) / static_cast<double>(state.iterations());
  state.counters["deadline_met"] = missed_deadline == 0 ? 1.0 : 0.0;
}
BENCHMARK(BM_Robust_CrashFailoverRecall)->Unit(benchmark::kMillisecond);

// Hedged-fetch latency under a fail-slow owner: every fetched key lives on
// the straggler (+2s per delivery), so the unhedged primary eats the
// straggle each round while the hedge's backup MultiGet diverts to a
// replica at the ring predecessor. Worst-round latency stands in for p99
// (the sim is deterministic; the worst round IS the tail). Gated ratio:
// unhedged p99 >= 1.5x hedged, identical fetched counts.
static void RobustHedgeRun(benchmark::State& state, bool hedged) {
  const size_t kRounds = 8;
  uint64_t fetched = 0, hedges_won = 0;
  double worst_ms = 0.0;
  for (auto _ : state) {
    pier::BatchOptions bopts;
    bopts.hedged_fetches = hedged;
    robust::RobustCluster c(bopts);
    std::vector<pier::Tuple> items;
    for (uint64_t f = 1; f <= 120; ++f) {
      items.push_back(
          pier::Tuple({pier::Value(f), pier::Value("file " + std::to_string(f))}));
    }
    c.piers[0]->PublishBatch(piersearch::ItemSchema(), std::move(items));
    c.piers[0]->FlushPublishQueues();
    c.simulator.RunFor(10 * sim::kSecond);

    sim::HostId slow = c.OwnerOf("item", pier::Value(uint64_t{1}))->host();
    std::vector<uint64_t> slow_keys;
    for (uint64_t f = 1; f <= 120; ++f) {
      if (c.OwnerOf("item", pier::Value(f))->host() == slow) {
        slow_keys.push_back(f);
      }
    }
    size_t origin = 0;
    while (c.dht.node(origin)->host() == slow) ++origin;

    auto fetch = [&](bool measured) {
      std::vector<pier::Value> keys;
      for (uint64_t f : slow_keys) keys.emplace_back(pier::Value(f));
      sim::SimTime issued = c.simulator.now();
      sim::SimTime answered_at = issued;
      c.piers[origin]->FetchMany(
          piersearch::ItemSchema(), std::move(keys),
          pier::PierNode::FetchCallback(
              [&](Status s, std::vector<pier::Tuple> tuples,
                  const pier::Completeness&) {
                (void)s;
                answered_at = c.simulator.now();
                if (measured) fetched += tuples.size();
              }));
      c.simulator.RunFor(20 * sim::kSecond);
      return static_cast<double>(answered_at - issued) /
             static_cast<double>(sim::kMillisecond);
    };
    // Warm round: the latency EWMA toward the mild straggler must read the
    // degradation before the hedge policy can arm.
    c.network.SetProcessingDelay(slow, 100 * sim::kMillisecond);
    fetch(/*measured=*/false);
    c.faults.AddFailSlow(slow, c.simulator.now(), 30 * sim::kMinute,
                         2 * sim::kSecond);
    for (size_t r = 0; r < kRounds; ++r) {
      worst_ms = std::max(worst_ms, fetch(/*measured=*/true));
    }
    hedges_won += c.metrics.hedges_won;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(kRounds));
  state.counters["p99_fetch_ms"] = worst_ms;
  state.counters["fetched"] =
      static_cast<double>(fetched) / static_cast<double>(state.iterations());
  state.counters["hedges_won"] =
      static_cast<double>(hedges_won) / static_cast<double>(state.iterations());
}

static void BM_Robust_FetchFailSlowUnhedged(benchmark::State& state) {
  RobustHedgeRun(state, /*hedged=*/false);
}
BENCHMARK(BM_Robust_FetchFailSlowUnhedged)->Unit(benchmark::kMillisecond);

static void BM_Robust_FetchFailSlowHedged(benchmark::State& state) {
  RobustHedgeRun(state, /*hedged=*/true);
}
BENCHMARK(BM_Robust_FetchFailSlowHedged)->Unit(benchmark::kMillisecond);

// Overload admission: an idle stage-0 owner admits a plan whose posting
// list dwarfs the pressure budget; the same owner under a standing message
// storm refuses it, the origin defers per the retry-after hint until the
// defer budget runs out, and the final shed is a labeled partial counted
// exactly once. Gates: idle_admitted, shed_labeled, shed_bounded, and
// partials_match all == 1.
static void BM_Robust_AdmissionOverload(benchmark::State& state) {
  uint64_t shed_total = 0, deferred_total = 0;
  bool idle_admitted = true, shed_labeled = true, shed_bounded = true;
  bool partials_match = true;
  for (auto _ : state) {
    pier::BatchOptions bopts;
    bopts.admission_base_entries = 64;
    bopts.admission_min_entries = 8;
    bopts.admission_inflight_floor = 2;
    bopts.admission_retry_after = 100 * sim::kMillisecond;
    robust::RobustCluster c(bopts);
    c.PublishPostings("alpha", 100);
    dht::DhtNode* owner = c.OwnerOf("inverted", pier::Value("alpha"));
    size_t origin = c.SurvivorIndex(owner);
    auto one_stage = [] {
      pier::DistributedJoin join;
      pier::JoinStage stage;
      stage.ns = "inverted";
      stage.key = pier::Value("alpha");
      join.stages.push_back(std::move(stage));
      return join;
    };

    size_t idle_ids = 0;
    c.piers[origin]->ExecuteJoin(
        one_stage(),
        [&](Status s, std::vector<pier::JoinResultEntry> entries,
            const pier::Completeness&) {
          if (s.ok()) idle_ids = entries.size();
        },
        20 * sim::kSecond);
    c.simulator.RunFor(25 * sim::kSecond);
    idle_admitted = idle_admitted && idle_ids == 100 &&
                    c.metrics.plans_shed == 0;

    // Standing pressure: a put storm against a slowed owner so every
    // admission probe sees dozens of in-flight messages.
    c.network.SetProcessingDelay(owner->host(), 300 * sim::kMillisecond);
    dht::Key pressure_key =
        HashCombine(Fnv1a64("inverted"), pier::Value("alpha").Hash());
    for (size_t i = 0; i < 4000; ++i) {
      c.simulator.ScheduleAfter(
          i * 10 * sim::kMillisecond, [&c, origin, pressure_key] {
            c.dht.node(origin)->Put("pressure", pressure_key, {0xA, 0xB}, 0,
                                    nullptr);
          });
    }
    c.simulator.RunFor(2 * sim::kSecond);

    bool fired = false;
    pier::Completeness shed_comp;
    Status shed_status = Status::OK();
    c.piers[origin]->ExecuteJoin(
        one_stage(),
        [&](Status s, std::vector<pier::JoinResultEntry> entries,
            const pier::Completeness& comp) {
          (void)entries;
          fired = true;
          shed_status = std::move(s);
          shed_comp = comp;
        },
        30 * sim::kSecond);
    c.simulator.RunFor(40 * sim::kSecond);

    shed_labeled = shed_labeled && fired && !shed_status.ok() &&
                   shed_comp.shed && !shed_comp.exact &&
                   shed_comp.retry_after > 0;
    shed_bounded = shed_bounded &&
                   c.metrics.plans_shed == bopts.admission_defer_budget + 1 &&
                   c.metrics.plans_deferred == bopts.admission_defer_budget;
    // One observed partial (the shed), counted exactly once.
    partials_match = partials_match && c.metrics.partial_results == 1;
    shed_total += c.metrics.plans_shed;
    deferred_total += c.metrics.plans_deferred;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
  auto per_iter = [&](uint64_t v) {
    return static_cast<double>(v) / static_cast<double>(state.iterations());
  };
  state.counters["plans_shed"] = per_iter(shed_total);
  state.counters["plans_deferred"] = per_iter(deferred_total);
  state.counters["idle_admitted"] = idle_admitted ? 1.0 : 0.0;
  state.counters["shed_labeled"] = shed_labeled ? 1.0 : 0.0;
  state.counters["shed_bounded"] = shed_bounded ? 1.0 : 0.0;
  state.counters["partials_match"] = partials_match ? 1.0 : 0.0;
}
BENCHMARK(BM_Robust_AdmissionOverload)->Unit(benchmark::kMillisecond);

static void BM_KeywordIndexMatch(benchmark::State& state) {
  gnutella::KeywordIndex index;
  Rng rng(6);
  for (size_t i = 0; i < 20000; ++i) {
    gnutella::SharedFile f;
    f.filename = "artist" + std::to_string(rng.NextBelow(500)) + " title" +
                 std::to_string(i) + " common.mp3";
    f.size_bytes = 1;
    f.file_id = i;
    index.Add(f, static_cast<sim::HostId>(i % 100));
  }
  std::vector<std::string> query{"artist42", "common"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Match(query));
  }
}
BENCHMARK(BM_KeywordIndexMatch);

// --------------------------------------------------------------------------
// Shard-parallel event loop (sim/shard.h): wall-clock scaling of a big
// static deployment under steady query load, serial vs sharded backends.
// Every variant must land on the identical fingerprint — the sharded
// backends are only allowed to be *faster*, never different. The speedup
// floors in scripts/run_bench.sh apply when the machine actually has the
// cores (context.num_cpus); the fingerprint identity gate always applies.
namespace shard_scale {

/// One deployment under steady query load: each node Gets a derived key
/// and re-arms its own pump timer — all load is host-context work that
/// parallelizes across shards; no driver events after setup.
struct ScaleEnv {
  static constexpr sim::SimTime kLatency = 2 * sim::kMillisecond;

  std::unique_ptr<sim::Executor> exec;
  std::unique_ptr<sim::Network> network;
  std::unique_ptr<dht::DhtDeployment> dht;
  size_t n;

  ScaleEnv(size_t nodes, uint32_t shards) : n(nodes) {
    if (shards <= 1) {
      exec = std::make_unique<sim::SerialExecutor>();
    } else {
      exec = std::make_unique<sim::ShardedExecutor>(
          sim::ShardedExecutor::Options{shards, kLatency});
    }
    network = std::make_unique<sim::Network>(
        exec.get(), std::make_unique<sim::ConstantLatency>(kLatency), 42);
    network->set_load_probe_quantum(kLatency);
    dht::DhtOptions opts;
    opts.overlay = dht::OverlayKind::kChord;
    opts.replication = 3;
    dht = std::make_unique<dht::DhtDeployment>(network.get(), n, opts, 777);
    for (size_t i = 0; i < n; ++i) Arm(i, 10 * sim::kMillisecond + i % 97);
  }

  void Arm(size_t i, sim::SimTime delay) {
    exec->ScheduleAfter(dht->node(i)->host(), delay,
                        [this, i] { Pump(i); });
  }

  void Pump(size_t i) {
    uint64_t r = Mix64(0x5ca1eull ^ (i * 0x9E3779B97F4A7C15ull) ^
                       exec->now());
    dht->node(i)->Get("scale", static_cast<dht::Key>(r),
                      [](Status, auto) {});
    Arm(i, 150 * sim::kMillisecond + r % (100 * sim::kMillisecond));
  }

  /// Everything the run can deterministically disagree on, folded to 50
  /// bits (counters ride as doubles in the bench json).
  uint64_t Fingerprint() const {
    const sim::NetworkMetrics& net = network->metrics();
    uint64_t fp = Mix64(exec->events_executed());
    fp = Mix64(fp ^ exec->now());
    fp = Mix64(fp ^ net.total.messages);
    fp = Mix64(fp ^ net.total.bytes);
    fp = Mix64(fp ^ net.dropped_messages);
    fp = Mix64(fp ^ dht->metrics().routes_delivered);
    fp = Mix64(fp ^ dht->metrics().total_hops);
    return fp & ((1ull << 50) - 1);
  }
};

void Run(benchmark::State& state, uint32_t shards) {
  const size_t nodes = static_cast<size_t>(state.range(0));
  const sim::SimTime kHorizon = 2 * sim::kSecond;
  uint64_t fingerprint = 0;
  double events = 0, messages = 0;
  for (auto _ : state) {
    state.PauseTiming();  // deployment build + teardown are serial setup
    {
      ScaleEnv env(nodes, shards);
      state.ResumeTiming();
      env.exec->RunFor(kHorizon);
      state.PauseTiming();
      fingerprint = env.Fingerprint();
      events = static_cast<double>(env.exec->events_executed());
      messages = static_cast<double>(env.network->metrics().total.messages);
    }
    state.ResumeTiming();
  }
  state.counters["fingerprint"] = static_cast<double>(fingerprint);
  state.counters["events"] = events;
  state.counters["net_messages"] = messages;
  state.SetItemsProcessed(int64_t(events) * int64_t(state.iterations()));
}

void Args(benchmark::internal::Benchmark* b) {
  b->Arg(10000)->Unit(benchmark::kMillisecond);
  // The 100k-node point takes minutes per backend; opt in explicitly.
  if (std::getenv("PIERSTACK_BENCH_LARGE") != nullptr) b->Arg(100000);
}

}  // namespace shard_scale

static void BM_ShardScale_Serial(benchmark::State& state) {
  shard_scale::Run(state, 1);
}
BENCHMARK(BM_ShardScale_Serial)->Apply(shard_scale::Args);

static void BM_ShardScale_Shards4(benchmark::State& state) {
  shard_scale::Run(state, 4);
}
BENCHMARK(BM_ShardScale_Shards4)->Apply(shard_scale::Args);

static void BM_ShardScale_Shards8(benchmark::State& state) {
  shard_scale::Run(state, 8);
}
BENCHMARK(BM_ShardScale_Shards8)->Apply(shard_scale::Args);

BENCHMARK_MAIN();
