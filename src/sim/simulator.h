// Deterministic discrete-event simulation kernel.
//
// Every protocol in this repository (Gnutella flooding, DHT routing, PIER
// dataflow) runs as event handlers over this kernel, replacing the paper's
// PlanetLab deployment with a reproducible in-process network.
//
// Events with equal timestamps fire in scheduling order (FIFO tiebreak), so
// a run is a pure function of the seed and the event handlers.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace pierstack::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;

/// Identifies a scheduled event so it can be cancelled (e.g. timeouts).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Priority-queue driven event loop with cancellation.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellable id.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `delay` after now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed.
  bool Cancel(EventId id);

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue empties or `limit` events ran.
  /// Returns the number of events executed.
  size_t Run(size_t limit = SIZE_MAX);

  /// Runs all events with time <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t);

  /// RunUntil(now + duration).
  size_t RunFor(SimTime duration);

  /// Number of pending (non-cancelled) events.
  size_t pending() const { return pending_ids_.size(); }

  /// Total events executed since construction.
  uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;  // also the FIFO tiebreak (monotonically increasing)
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;  ///< Scheduled, not yet run/cancelled.
  std::unordered_set<EventId> cancelled_;    ///< Cancelled, still in the heap.
};

}  // namespace pierstack::sim
