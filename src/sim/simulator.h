// Deterministic discrete-event simulation kernel — the legacy
// single-threaded Executor backend (see sim/executor.h for the seam and
// the parallel backends).
//
// Every protocol in this repository (Gnutella flooding, DHT routing, PIER
// dataflow) runs as event handlers over this kernel, replacing the paper's
// PlanetLab deployment with a reproducible in-process network.
//
// Events with equal timestamps fire in scheduling order: each event
// carries a monotonic sequence number and the heap comparator breaks
// timestamp ties FIFO on it, so determinism is a property of the queue
// rather than an accident of heap layout. A run is a pure function of the
// seed and the event handlers. (This global-FIFO tie order is what all
// pre-seam tests were recorded against; the canonical per-origin order of
// SerialExecutor/ShardedExecutor exists for cross-backend equality.)
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/executor.h"

namespace pierstack::sim {

/// Priority-queue driven event loop with cancellation.
class Simulator : public Executor {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const override { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Returns a cancellable id.
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `delay` after now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Executor seam: the owner only matters to parallel backends; here
  /// every event runs on the one loop in global FIFO tie order.
  EventId ScheduleAt(HostId owner, SimTime t,
                     std::function<void()> fn) override {
    (void)owner;
    return ScheduleAt(t, std::move(fn));
  }
  using Executor::ScheduleAfter;

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed.
  bool Cancel(EventId id) override;

  /// Runs the earliest pending event. Returns false if the queue is empty.
  bool Step();

  /// Runs events until the queue empties or `limit` events ran.
  /// Returns the number of events executed.
  size_t Run(size_t limit = SIZE_MAX) override;

  /// Runs all events with time <= t, then advances the clock to exactly t.
  size_t RunUntil(SimTime t) override;

  /// Number of pending (non-cancelled) events.
  size_t pending() const override { return pending_ids_.size(); }

  /// Total events executed since construction.
  uint64_t events_executed() const override { return executed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  ///< Monotonic schedule order; the FIFO tiebreak.
    EventId id;    ///< Cancellation handle.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;  ///< Scheduled, not yet run/cancelled.
  std::unordered_set<EventId> cancelled_;    ///< Cancelled, still in the heap.
};

}  // namespace pierstack::sim
