// Scriptable fault injection for sim::Network — the churn harness.
//
// A FaultPlan attached to a Network perturbs the message layer the way a
// deployed overlay is perturbed (paper Section 7 runs PIER under PlanetLab
// flakiness; the churn benches reproduce that pressure deterministically):
//
//  * probabilistic message loss: each accepted send is dropped in flight
//    with probability `message_loss` (the sender sees success, the receiver
//    sees nothing — a lost packet, not a refused connection),
//  * latency spikes: with probability `spike_probability` a message is
//    delayed by an extra `spike_delay` on top of the latency model,
//  * partitions: hosts are assigned to groups; messages crossing a group
//    boundary are silently dropped until Heal() — a network split, during
//    which refused-send failure detection is blind and only proactive
//    liveness probing notices the missing peers. Partitions are scriptable
//    two ways: the imperative AssignPartition/Heal(group)/Heal() calls
//    (driver/barrier context), and declarative PartitionWindows — timed
//    splits that activate and heal purely by comparing each send's
//    timestamp against the window, so a scheduled split needs no driver
//    event at all and is identical on every Executor backend. A window may
//    also be asymmetric (one-way): only the listed (from-group, to-group)
//    directions drop, modeling a link that fails in one direction,
//  * scheduled crash/join/restart churn: deterministic event schedules
//    (flash-crowd join, correlated mass-leave, sustained events/min churn,
//    crash-then-restart) built here and executed by an overlay-level
//    driver (dht::ChurnDriver), which counts each executed event back into
//    the plan. A restart re-animates a previously crashed node under its
//    original identity (dht::DhtNode::Restart),
//  * fail-slow windows: a host's message processing degrades by a fixed
//    extra delay for a scheduled interval — the straggler that still
//    answers, just late (the gray failure crashes cannot model). Applied
//    to every message addressed to the slow host whose SEND falls inside
//    the window, so the decision depends only on the sender's own clock
//    and is identical on every Executor backend.
//
// All randomness derives from the plan's own seed, so fault decisions
// never perturb the network's latency stream: a run with a FaultPlan is a
// pure function of (network seed, plan seed, handlers). Each send's
// loss/spike decision is drawn from a stream keyed on (plan seed, sender,
// destination, the network's per-sender send sequence) — stateless, so the
// decision is the same on every Executor backend no matter how sends from
// different hosts interleave (see sim/network.h). Partition-window
// membership is keyed purely on the sender's clock, the same contract as
// fail-slow windows. Counters are exported via common/stats
// (ExportNetworkCounters in sim/network.h).
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/simulator.h"

namespace pierstack::sim {

/// One scheduled membership change. The sim layer only fixes WHEN and WHAT
/// KIND; the overlay driver picks the victim/joiner deterministically.
struct ChurnEvent {
  enum Kind {
    kCrash,
    kJoin,
    /// Re-animate a previously crashed node under its ORIGINAL identity
    /// (same HostId, same ring key) — the reboot the crash/join pair
    /// cannot model. The driver decides durable vs amnesia recovery.
    kRestart,
  };
  SimTime time = 0;
  Kind kind = kCrash;
};

/// Injected-fault counters (exported as net.fault_* via common/stats).
/// Relaxed atomics: the hooks run concurrently on shard workers; totals
/// are exact at barriers/export, which is the only place they are read.
struct FaultCounters {
  RelaxedCounter loss_drops;       ///< Messages lost to probabilistic loss.
  RelaxedCounter latency_spikes;   ///< Messages delayed by a spike.
  RelaxedCounter partition_drops;  ///< Messages dropped at a partition edge.
  RelaxedCounter churn_crashes;    ///< Executed scheduled crash events.
  RelaxedCounter churn_joins;      ///< Executed scheduled join events.
  RelaxedCounter churn_restarts;   ///< Executed scheduled restart events.
  RelaxedCounter slow_deliveries;  ///< Messages delayed by a fail-slow window.

  uint64_t Total() const {
    return loss_drops + latency_spikes + partition_drops + churn_crashes +
           churn_joins + churn_restarts + slow_deliveries;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : seed_(seed) {}

  /// Per-message in-flight loss probability in [0, 1].
  void set_message_loss(double p) { message_loss_ = p; }
  double message_loss() const { return message_loss_; }

  /// With probability `p`, a message is delayed by `extra` past the model.
  void set_latency_spike(double p, SimTime extra) {
    spike_probability_ = p;
    spike_delay_ = extra;
  }

  /// Puts `host` into partition `group` (unassigned hosts are group 0).
  /// Messages between different groups are silently dropped.
  void AssignPartition(HostId host, uint32_t group);

  /// Ends the partition: every host rejoins group 0.
  void Heal() { partition_.clear(); }

  /// Heals ONE side of a split: every host of `group` rejoins group 0,
  /// other groups stay partitioned. Heal(0) is a no-op (group 0 is the
  /// mainland).
  void Heal(uint32_t group);

  bool partitioned() const { return !partition_.empty(); }

  /// A scheduled network split: `groups` takes effect for sends whose
  /// timestamp falls in [start, heal_time) and heals by itself — no driver
  /// event needed, and the decision depends only on the sender's clock
  /// (backend-independent, like fail-slow windows). Hosts absent from
  /// `groups` are group 0. With `one_way` empty the split is symmetric
  /// (any group mismatch drops); otherwise ONLY the listed
  /// (from-group, to-group) directions drop — an asymmetric split where
  /// e.g. the island can still hear the mainland but not answer it.
  struct PartitionWindow {
    std::map<HostId, uint32_t> groups;
    SimTime start = 0;
    SimTime heal_time = 0;
    std::vector<std::pair<uint32_t, uint32_t>> one_way;
  };

  /// Schedules a partition window. Setup/driver context only (like
  /// AssignPartition): mutate before the run or at barriers.
  void AddPartitionWindow(PartitionWindow window);

  /// Schedules a fail-slow window: every message addressed to `host` that
  /// is SENT during [start, start + duration) is delayed by an extra
  /// `extra` past the latency model — a straggling receiver, not a dead
  /// one. Windows are additive when they overlap. Setup/driver context
  /// only (like AssignPartition): mutate before the run or at barriers.
  void AddFailSlow(HostId host, SimTime start, SimTime duration,
                   SimTime extra);

  // --- Hooks consumed by Network::Send (self-sends are never faulted) ----
  // `send_seq` is the network's per-sender sequence number for this send —
  // the stream key making each decision order-independent. `now` is the
  // SENDER's clock at the send, the key partition/fail-slow windows are
  // evaluated against.

  /// True when this send must be lost in flight (loss or partition edge).
  /// Counts the injected fault.
  bool ShouldDrop(HostId from, HostId to, uint64_t send_seq, SimTime now);

  /// Extra delivery delay for this send (0 when no spike fires). Counts.
  SimTime ExtraLatency(HostId from, HostId to, uint64_t send_seq);

  /// Extra processing delay for a message addressed to `to` sent at `now`
  /// (0 outside every fail-slow window). Deterministic — keyed purely on
  /// the send time, no RNG draw. Counts each slowed delivery.
  SimTime ProcessingPenalty(HostId to, SimTime now);

  /// The overlay churn driver reports each executed scheduled event.
  void CountChurn(ChurnEvent::Kind kind);

  const FaultCounters& counters() const { return counters_; }

  // --- Deterministic churn schedule builders -----------------------------

  /// `joins` nodes arriving within [start, start + window) at even spacing
  /// — the flash-crowd arrival burst.
  static std::vector<ChurnEvent> FlashCrowdJoin(SimTime start, size_t joins,
                                                SimTime window);

  /// `crashes` simultaneous failures at `at` — correlated mass-leave.
  static std::vector<ChurnEvent> MassLeave(SimTime at, size_t crashes);

  /// `count` simultaneous crashes at `crash_at`, each rebooted at
  /// `restart_at` — the correlated power-cycle (crash preserving durable
  /// state, restart under the original identity).
  static std::vector<ChurnEvent> CrashRestart(SimTime crash_at,
                                              SimTime restart_at,
                                              size_t count);

  /// Alternating join/crash events (population-preserving) at
  /// `events_per_minute`, exponentially spaced from `seed`, covering
  /// [start, start + duration).
  static std::vector<ChurnEvent> SustainedChurn(SimTime start,
                                                SimTime duration,
                                                double events_per_minute,
                                                uint64_t seed);

 private:
  /// Whether a send from group `from` to group `to` crosses this window's
  /// split (direction-aware for one-way windows).
  static bool CrossesSplit(const PartitionWindow& w, uint32_t from,
                           uint32_t to);

  const uint64_t seed_;  ///< Root of the per-send decision streams.
  double message_loss_ = 0.0;
  double spike_probability_ = 0.0;
  SimTime spike_delay_ = 0;
  std::map<HostId, uint32_t> partition_;  ///< host → group; absent = 0.
  std::vector<PartitionWindow> windows_;  ///< Scheduled timed splits.
  /// One scheduled degradation interval for a fail-slow host.
  struct FailSlowWindow {
    SimTime start = 0;
    SimTime end = 0;
    SimTime extra = 0;
  };
  std::map<HostId, std::vector<FailSlowWindow>> fail_slow_;
  FaultCounters counters_;
};

}  // namespace pierstack::sim
