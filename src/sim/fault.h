// Scriptable fault injection for sim::Network — the churn harness.
//
// A FaultPlan attached to a Network perturbs the message layer the way a
// deployed overlay is perturbed (paper Section 7 runs PIER under PlanetLab
// flakiness; the churn benches reproduce that pressure deterministically):
//
//  * probabilistic message loss: each accepted send is dropped in flight
//    with probability `message_loss` (the sender sees success, the receiver
//    sees nothing — a lost packet, not a refused connection),
//  * latency spikes: with probability `spike_probability` a message is
//    delayed by an extra `spike_delay` on top of the latency model,
//  * partitions: hosts are assigned to groups; messages crossing a group
//    boundary are silently dropped until Heal() — a network split, during
//    which refused-send failure detection is blind and only proactive
//    liveness probing notices the missing peers,
//  * scheduled crash/join churn: deterministic event schedules (flash-crowd
//    join, correlated mass-leave, sustained events/min churn) built here
//    and executed by an overlay-level driver (dht::ChurnDriver), which
//    counts each executed event back into the plan.
//
// All randomness comes from the plan's own seeded Rng, so fault decisions
// never perturb the network's latency stream: a run with a FaultPlan is a
// pure function of (network seed, plan seed, handlers). Counters are
// exported via common/stats (ExportNetworkCounters in sim/network.h).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace pierstack::sim {

using HostId = uint32_t;  // mirrors network.h (no circular include)

/// One scheduled membership change. The sim layer only fixes WHEN and WHAT
/// KIND; the overlay driver picks the victim/joiner deterministically.
struct ChurnEvent {
  enum Kind { kCrash, kJoin };
  SimTime time = 0;
  Kind kind = kCrash;
};

/// Injected-fault counters (exported as net.fault_* via common/stats).
struct FaultCounters {
  uint64_t loss_drops = 0;       ///< Messages lost to probabilistic loss.
  uint64_t latency_spikes = 0;   ///< Messages delayed by a spike.
  uint64_t partition_drops = 0;  ///< Messages dropped at a partition edge.
  uint64_t churn_crashes = 0;    ///< Executed scheduled crash events.
  uint64_t churn_joins = 0;      ///< Executed scheduled join events.

  uint64_t Total() const {
    return loss_drops + latency_spikes + partition_drops + churn_crashes +
           churn_joins;
  }
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : rng_(seed) {}

  /// Per-message in-flight loss probability in [0, 1].
  void set_message_loss(double p) { message_loss_ = p; }
  double message_loss() const { return message_loss_; }

  /// With probability `p`, a message is delayed by `extra` past the model.
  void set_latency_spike(double p, SimTime extra) {
    spike_probability_ = p;
    spike_delay_ = extra;
  }

  /// Puts `host` into partition `group` (unassigned hosts are group 0).
  /// Messages between different groups are silently dropped.
  void AssignPartition(HostId host, uint32_t group);

  /// Ends the partition: every host rejoins group 0.
  void Heal() { partition_.clear(); }
  bool partitioned() const { return !partition_.empty(); }

  // --- Hooks consumed by Network::Send (self-sends are never faulted) ----

  /// True when this send must be lost in flight (loss or partition edge).
  /// Counts the injected fault.
  bool ShouldDrop(HostId from, HostId to);

  /// Extra delivery delay for this send (0 when no spike fires). Counts.
  SimTime ExtraLatency(HostId from, HostId to);

  /// The overlay churn driver reports each executed scheduled event.
  void CountChurn(ChurnEvent::Kind kind);

  const FaultCounters& counters() const { return counters_; }

  // --- Deterministic churn schedule builders -----------------------------

  /// `joins` nodes arriving within [start, start + window) at even spacing
  /// — the flash-crowd arrival burst.
  static std::vector<ChurnEvent> FlashCrowdJoin(SimTime start, size_t joins,
                                                SimTime window);

  /// `crashes` simultaneous failures at `at` — correlated mass-leave.
  static std::vector<ChurnEvent> MassLeave(SimTime at, size_t crashes);

  /// Alternating join/crash events (population-preserving) at
  /// `events_per_minute`, exponentially spaced from `seed`, covering
  /// [start, start + duration).
  static std::vector<ChurnEvent> SustainedChurn(SimTime start,
                                                SimTime duration,
                                                double events_per_minute,
                                                uint64_t seed);

 private:
  Rng rng_;
  double message_loss_ = 0.0;
  double spike_probability_ = 0.0;
  SimTime spike_delay_ = 0;
  std::map<HostId, uint32_t> partition_;  ///< host → group; absent = 0.
  FaultCounters counters_;
};

}  // namespace pierstack::sim
