#include "sim/shard.h"

#include <cassert>

namespace pierstack::sim {

namespace {

// Worker-thread identity: which executor's shard this thread is, if any.
// Keyed by executor address; workers die with their executor, so a stale
// pointer can never be observed by a live executor's calls.
thread_local const void* tls_exec = nullptr;
thread_local uint32_t tls_shard_idx = 0;

constexpr uint32_t kDriverSlot = 0xFE;
constexpr uint32_t kSlotBits = 8;
constexpr uint32_t kSlotMask = 0xFF;

EventId MakeId(uint32_t slot, uint64_t counter) {
  return (counter << kSlotBits) | slot;
}

}  // namespace

ShardedExecutor::ShardedExecutor(Options opts)
    : nshards_(opts.shards), lookahead_(opts.lookahead) {
  assert(nshards_ >= 1 && nshards_ < kDriverSlot);
  assert(lookahead_ > 0);
  shards_.reserve(nshards_);
  for (uint32_t i = 0; i < nshards_; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->outbox.reserve(nshards_);
    for (uint32_t d = 0; d < nshards_; ++d) {
      shard->outbox.push_back(std::make_unique<Mailbox>());
    }
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->thread = std::thread(&ShardedExecutor::WorkerLoop, this,
                                shard.get());
  }
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    shutdown_ = true;
  }
  epoch_cv_.notify_all();
  for (auto& shard : shards_) shard->thread.join();
}

SimTime ShardedExecutor::now() const {
  if (tls_exec == this) return shards_[tls_shard_idx]->clock;
  if (in_driver_phase_) return driver_clock_;
  return horizon_;
}

uint32_t ShardedExecutor::CurrentSlab() const {
  return tls_exec == this ? tls_shard_idx : nshards_;
}

uint64_t ShardedExecutor::NextSeqFor(HostId origin) {
  if (origin == kDriverHost) return driver_seq_++;
  return shards_[ShardOf(origin)]->origin_seq[origin]++;
}

EventId ShardedExecutor::ScheduleAt(HostId owner, SimTime t,
                                    std::function<void()> fn) {
  detail::CanonicalEvent ev;
  ev.time = t;
  ev.owner = owner;
  ev.fn = std::move(fn);
  if (tls_exec == this) {
    // Worker context: keys come from the executing host on this shard.
    Shard* s = shards_[tls_shard_idx].get();
    assert(t >= s->clock);
    ev.origin = s->current_origin;
    ev.origin_seq = s->origin_seq[ev.origin]++;
    if (owner == kDriverHost) {
      std::lock_guard<std::mutex> lock(driver_inbox_.mu);
      driver_inbox_.events.push_back(std::move(ev));
      return kInvalidEventId;
    }
    uint32_t dst = ShardOf(owner);
    if (dst == s->index) {
      EventId id = MakeId(s->index, s->next_local_id++);
      ev.id = id;
      s->queue.Push(std::move(ev));
      return id;
    }
    // Cross-shard handoff: parked in the mailbox until the barrier. Not
    // cancellable — only fire-and-forget message deliveries take this
    // path (timers and timeouts are always owner-scheduled, same shard).
    Mailbox* mb = s->outbox[dst].get();
    std::lock_guard<std::mutex> lock(mb->mu);
    mb->events.push_back(std::move(ev));
    return kInvalidEventId;
  }
  // Driver context (between runs, or the coordinator's merged driver
  // loop): exclusive access to every queue, push directly.
  assert(t >= now());
  ev.origin = in_driver_phase_ ? coord_origin_ : kDriverHost;
  ev.origin_seq = NextSeqFor(ev.origin);
  if (owner == kDriverHost) {
    EventId id = MakeId(kDriverSlot, driver_next_id_++);
    ev.id = id;
    driver_queue_.Push(std::move(ev));
    return id;
  }
  Shard* s = shards_[ShardOf(owner)].get();
  EventId id = MakeId(s->index, s->next_local_id++);
  ev.id = id;
  s->queue.Push(std::move(ev));
  return id;
}

bool ShardedExecutor::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  uint32_t slot = static_cast<uint32_t>(id & kSlotMask);
  if (slot == kDriverSlot) {
    assert(tls_exec != this);  // driver events cancel from driver context
    return driver_queue_.Cancel(id);
  }
  assert(slot < nshards_);
  // Only the owning shard's thread, or exclusive driver context, may
  // touch that shard's queue.
  assert(tls_exec != this || tls_shard_idx == slot);
  return shards_[slot]->queue.Cancel(id);
}

void ShardedExecutor::WorkerLoop(Shard* shard) {
  tls_exec = this;
  tls_shard_idx = shard->index;
  uint64_t seen_gen = 0;
  std::unique_lock<std::mutex> lock(epoch_mu_);
  for (;;) {
    epoch_cv_.wait(lock,
                   [&] { return shutdown_ || epoch_gen_ != seen_gen; });
    if (shutdown_) return;
    seen_gen = epoch_gen_;
    SimTime bound = epoch_bound_;
    lock.unlock();
    RunShardEpoch(shard, bound);
    lock.lock();
    if (++workers_done_ == nshards_) done_cv_.notify_one();
  }
}

void ShardedExecutor::RunShardEpoch(Shard* shard, SimTime bound) {
  detail::CanonicalEvent ev;
  while (shard->queue.PopUpTo(bound, &ev)) {
    shard->clock = ev.time;
    shard->current_origin = ev.owner;
    ++shard->executed;
    ev.fn();
    ev.fn = nullptr;  // release captured state before the next pop
  }
  shard->current_origin = kDriverHost;
}

void ShardedExecutor::DrainMailboxes(SimTime window_end) {
  (void)window_end;
  for (auto& src : shards_) {
    for (uint32_t d = 0; d < nshards_; ++d) {
      Mailbox* mb = src->outbox[d].get();
      std::lock_guard<std::mutex> lock(mb->mu);
      for (auto& ev : mb->events) {
        // The conservative-lookahead contract: nothing sent inside a
        // window may land inside it. A failure here means the configured
        // lookahead exceeds some cross-host delay.
        assert(ev.time > window_end);
        shards_[d]->queue.Push(std::move(ev));
      }
      mb->events.clear();
    }
  }
  std::lock_guard<std::mutex> lock(driver_inbox_.mu);
  for (auto& ev : driver_inbox_.events) {
    driver_queue_.Push(std::move(ev));
  }
  driver_inbox_.events.clear();
}

size_t ShardedExecutor::RunEpoch(SimTime bound) {
  uint64_t before = driver_executed_;
  for (const auto& shard : shards_) before += shard->executed;

  // Parallel phase: every shard drains its queue up to the bound.
  {
    std::unique_lock<std::mutex> lock(epoch_mu_);
    epoch_bound_ = bound;
    workers_done_ = 0;
    ++epoch_gen_;
    epoch_cv_.notify_all();
    done_cv_.wait(lock, [&] { return workers_done_ == nshards_; });
  }
  DrainMailboxes(bound);

  // Merged driver loop: any driver events due in this window run now, with
  // the workers parked — plus whatever they spawn back inside the window
  // (zero-delay joins, crash cleanup), in global canonical order, exactly
  // as SerialExecutor interleaves them.
  in_driver_phase_ = true;
  for (;;) {
    detail::CanonicalQueue* best = nullptr;
    const detail::CanonicalEvent* best_ev = nullptr;
    auto consider = [&](detail::CanonicalQueue* q) {
      const detail::CanonicalEvent* e = q->Peek();
      if (e == nullptr || e->time > bound) return;
      if (best_ev == nullptr || detail::CanonicalLater{}(*best_ev, *e)) {
        best = q;
        best_ev = e;
      }
    };
    consider(&driver_queue_);
    for (auto& shard : shards_) consider(&shard->queue);
    if (best == nullptr) break;
    detail::CanonicalEvent ev = best->PopTop();
    driver_clock_ = ev.time;
    coord_origin_ = ev.owner;
    ++driver_executed_;
    ev.fn();
  }
  coord_origin_ = kDriverHost;
  in_driver_phase_ = false;

  uint64_t after = driver_executed_;
  for (const auto& shard : shards_) after += shard->executed;
  return static_cast<size_t>(after - before);
}

size_t ShardedExecutor::RunCore(SimTime t_limit, size_t limit) {
  size_t total = 0;
  while (total < limit) {
    // Between epochs every mailbox is drained, so the queues alone hold
    // the frontier.
    bool any = false;
    SimTime e_min = 0;
    auto update = [&](detail::CanonicalQueue& q) {
      SimTime t;
      if (q.PeekTime(&t) && (!any || t < e_min)) {
        e_min = t;
        any = true;
      }
    };
    update(driver_queue_);
    for (auto& shard : shards_) update(shard->queue);
    if (!any || e_min > t_limit) break;

    // Window end (inclusive): the lookahead-aligned boundary past e_min,
    // cut at the run limit and at the next driver event (which needs the
    // workers parked).
    SimTime bound = (e_min / lookahead_ + 1) * lookahead_ - 1;
    if (t_limit < bound) bound = t_limit;
    SimTime t_driver;
    if (driver_queue_.PeekTime(&t_driver) && t_driver < bound) {
      bound = t_driver;
    }
    total += RunEpoch(bound);
  }
  return total;
}

size_t ShardedExecutor::Run(size_t limit) {
  size_t n = RunCore(UINT64_MAX, limit);
  // Settle the global clock on the last executed event, like the serial
  // backends' run-to-quiescence.
  SimTime m = horizon_;
  for (const auto& shard : shards_) {
    if (shard->clock > m) m = shard->clock;
  }
  if (driver_clock_ > m) m = driver_clock_;
  horizon_ = m;
  return n;
}

size_t ShardedExecutor::RunUntil(SimTime t) {
  assert(t >= horizon_);
  size_t n = RunCore(t, SIZE_MAX);
  horizon_ = t;
  driver_clock_ = t;
  for (auto& shard : shards_) {
    if (shard->clock < t) shard->clock = t;
  }
  return n;
}

size_t ShardedExecutor::pending() const {
  size_t n = driver_queue_.pending();
  for (const auto& shard : shards_) n += shard->queue.pending();
  return n;
}

uint64_t ShardedExecutor::events_executed() const {
  uint64_t n = driver_executed_;
  for (const auto& shard : shards_) n += shard->executed;
  return n;
}

}  // namespace pierstack::sim
