// ShardedExecutor: a multi-threaded Executor backend partitioning hosts
// across N worker shards, each with its own canonical priority queue and
// per-shard clock.
//
// Determinism comes from conservative barrier epochs. The simulated
// timeline is cut into windows aligned to the `lookahead` L — a lower
// bound on every cross-host delivery delay (the minimum network latency).
// Within a window [kL, (k+1)L) every shard drains its own queue in
// canonical key order; any event it schedules for another shard is at
// least L in the future, i.e. strictly past the window, so it cannot be
// missed: cross-shard events ride per-(src,dst) mutex-guarded mailboxes
// that the coordinator batch-drains at the window barrier, before any
// shard's clock passes the global horizon. Equal-time events across
// shards touch disjoint hosts and may run in any wall-clock order; each
// individual host still observes its events in exactly the canonical
// (time, origin, origin_seq) order SerialExecutor uses, which is what
// makes a fixed seed produce fingerprint-identical counters and answers
// on both backends (asserted by tests/integration/shard_equivalence_test
// and the BM_ShardScale_* gate).
//
// Driver events (owner == kDriverHost: churn timelines, harness timers)
// may touch any host, so they are a barrier of their own: the window is
// cut at the next driver-event time and the coordinator runs a merged
// canonical loop — the due driver events plus everything they spawn inside
// the window — serially, with all workers parked. That reproduces the
// serial backend's ordering around topology mutations exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/executor.h"

namespace pierstack::sim {

class ShardedExecutor : public Executor {
 public:
  struct Options {
    uint32_t shards = 2;  ///< Worker thread count, in [1, 250].
    /// Lower bound on every cross-host scheduled delay (minimum network
    /// latency + any extra). Must be > 0; windows span exactly this much
    /// simulated time, so a too-small bound costs barriers, and a
    /// too-large one trips the drain-time assertion.
    SimTime lookahead = kMillisecond;
  };

  explicit ShardedExecutor(Options opts);
  ~ShardedExecutor() override;
  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  SimTime now() const override;
  EventId ScheduleAt(HostId owner, SimTime t,
                     std::function<void()> fn) override;
  bool Cancel(EventId id) override;
  size_t Run(size_t limit = SIZE_MAX) override;
  size_t RunUntil(SimTime t) override;
  /// Driver-side only (like Run/RunUntil): counts are exact between runs.
  size_t pending() const override;
  uint64_t events_executed() const override;
  uint32_t shard_count() const override { return nshards_; }
  uint32_t CurrentSlab() const override;

  /// Which shard executes a host's events.
  uint32_t ShardOf(HostId owner) const { return owner % nshards_; }
  SimTime lookahead() const { return lookahead_; }

 private:
  /// Cross-shard handoff buffer; one per (source shard, destination).
  struct Mailbox {
    std::mutex mu;
    std::vector<detail::CanonicalEvent> events;
  };

  struct Shard {
    uint32_t index = 0;
    detail::CanonicalQueue queue;
    SimTime clock = 0;  ///< Time of the last executed event on this shard.
    HostId current_origin = kDriverHost;
    std::unordered_map<HostId, uint64_t> origin_seq;
    uint64_t next_local_id = 1;
    uint64_t executed = 0;
    /// outbox[d]: events this shard scheduled for shard d (d != index).
    std::vector<std::unique_ptr<Mailbox>> outbox;
    std::thread thread;
  };

  void WorkerLoop(Shard* shard);
  void RunShardEpoch(Shard* shard, SimTime bound);
  /// Runs one barrier epoch ending at `bound` (inclusive): parallel shard
  /// phase, mailbox drain, then the merged driver loop. Returns events run.
  size_t RunEpoch(SimTime bound);
  /// The main loop shared by Run/RunUntil: epochs while events <= t_limit
  /// remain (and fewer than `limit` ran). Exclusive (driver) context.
  size_t RunCore(SimTime t_limit, size_t limit);
  void DrainMailboxes(SimTime window_end);
  uint64_t NextSeqFor(HostId origin);

  const uint32_t nshards_;
  const SimTime lookahead_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Driver-side state: touched only from driver/coordinator context or
  // under driver_inbox_.mu (worker-scheduled driver events).
  detail::CanonicalQueue driver_queue_;
  Mailbox driver_inbox_;
  uint64_t driver_next_id_ = 1;
  uint64_t driver_seq_ = 0;
  uint64_t driver_executed_ = 0;
  SimTime horizon_ = 0;       ///< Global clock between epochs.
  SimTime driver_clock_ = 0;  ///< Current event time inside the driver loop.
  bool in_driver_phase_ = false;
  HostId coord_origin_ = kDriverHost;  ///< Scheduling context, driver loop.

  // Epoch barrier (generation-counted; C++17 has no std::barrier).
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;   ///< Coordinator -> workers.
  std::condition_variable done_cv_;    ///< Workers -> coordinator.
  uint64_t epoch_gen_ = 0;
  SimTime epoch_bound_ = 0;
  uint32_t workers_done_ = 0;
  bool shutdown_ = false;
};

}  // namespace pierstack::sim
