#include "sim/fault.h"

#include <algorithm>

namespace pierstack::sim {

void FaultPlan::AssignPartition(HostId host, uint32_t group) {
  if (group == 0) {
    partition_.erase(host);
  } else {
    partition_[host] = group;
  }
}

bool FaultPlan::ShouldDrop(HostId from, HostId to) {
  if (from == to) return false;
  if (!partition_.empty()) {
    auto g = [&](HostId h) {
      auto it = partition_.find(h);
      return it == partition_.end() ? uint32_t{0} : it->second;
    };
    if (g(from) != g(to)) {
      ++counters_.partition_drops;
      return true;
    }
  }
  if (message_loss_ > 0.0 && rng_.NextBernoulli(message_loss_)) {
    ++counters_.loss_drops;
    return true;
  }
  return false;
}

SimTime FaultPlan::ExtraLatency(HostId from, HostId to) {
  if (from == to) return 0;
  if (spike_probability_ > 0.0 && spike_delay_ > 0 &&
      rng_.NextBernoulli(spike_probability_)) {
    ++counters_.latency_spikes;
    return spike_delay_;
  }
  return 0;
}

void FaultPlan::CountChurn(ChurnEvent::Kind kind) {
  if (kind == ChurnEvent::kCrash) {
    ++counters_.churn_crashes;
  } else {
    ++counters_.churn_joins;
  }
}

std::vector<ChurnEvent> FaultPlan::FlashCrowdJoin(SimTime start, size_t joins,
                                                  SimTime window) {
  std::vector<ChurnEvent> out;
  out.reserve(joins);
  if (joins == 0) return out;
  // Even spacing across the window keeps the burst shape independent of any
  // RNG stream — the same 10%-of-the-ring minute every run.
  SimTime step = window / joins;
  for (size_t i = 0; i < joins; ++i) {
    out.push_back(ChurnEvent{start + i * step, ChurnEvent::kJoin});
  }
  return out;
}

std::vector<ChurnEvent> FaultPlan::MassLeave(SimTime at, size_t crashes) {
  std::vector<ChurnEvent> out;
  out.reserve(crashes);
  for (size_t i = 0; i < crashes; ++i) {
    out.push_back(ChurnEvent{at, ChurnEvent::kCrash});
  }
  return out;
}

std::vector<ChurnEvent> FaultPlan::SustainedChurn(SimTime start,
                                                  SimTime duration,
                                                  double events_per_minute,
                                                  uint64_t seed) {
  std::vector<ChurnEvent> out;
  if (events_per_minute <= 0.0 || duration == 0) return out;
  Rng rng(seed);
  double mean_gap =
      static_cast<double>(kMinute) / events_per_minute;  // microseconds
  SimTime t = start;
  // Alternate join/crash so the population oscillates around its starting
  // size instead of draining — sustained N%/min churn, not decay.
  bool join_next = true;
  for (;;) {
    t += static_cast<SimTime>(std::max(1.0, rng.NextExponential(mean_gap)));
    if (t >= start + duration) break;
    out.push_back(
        ChurnEvent{t, join_next ? ChurnEvent::kJoin : ChurnEvent::kCrash});
    join_next = !join_next;
  }
  return out;
}

}  // namespace pierstack::sim
