#include "sim/fault.h"

#include <algorithm>

namespace pierstack::sim {

namespace {

// SplitMix64 step (mirrors sim/network.cc): derives the per-send decision
// streams. `salt` separates the drop draw from the spike draw so the two
// decisions stay independent.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t DecisionKey(uint64_t seed, HostId from, HostId to, uint64_t seq,
                     uint64_t salt) {
  return Mix(Mix(Mix(Mix(seed ^ salt) ^ from) ^ to) ^ seq);
}

constexpr uint64_t kDropSalt = 0x6c6f7373;   // "loss"
constexpr uint64_t kSpikeSalt = 0x7370696b;  // "spik"

}  // namespace

void FaultPlan::AssignPartition(HostId host, uint32_t group) {
  if (group == 0) {
    partition_.erase(host);
  } else {
    partition_[host] = group;
  }
}

void FaultPlan::Heal(uint32_t group) {
  if (group == 0) return;
  for (auto it = partition_.begin(); it != partition_.end();) {
    if (it->second == group) {
      it = partition_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultPlan::AddPartitionWindow(PartitionWindow window) {
  if (window.heal_time <= window.start || window.groups.empty()) return;
  windows_.push_back(std::move(window));
}

bool FaultPlan::CrossesSplit(const PartitionWindow& w, uint32_t from,
                             uint32_t to) {
  if (from == to) return false;
  if (w.one_way.empty()) return true;
  for (const auto& [src, dst] : w.one_way) {
    if (src == from && dst == to) return true;
  }
  return false;
}

bool FaultPlan::ShouldDrop(HostId from, HostId to, uint64_t send_seq,
                           SimTime now) {
  if (from == to) return false;
  if (!partition_.empty()) {
    auto g = [&](HostId h) {
      auto it = partition_.find(h);
      return it == partition_.end() ? uint32_t{0} : it->second;
    };
    if (g(from) != g(to)) {
      ++counters_.partition_drops;
      return true;
    }
  }
  // Timed splits: active purely by the sender's clock, so a window both
  // activates and heals without any driver event and the decision is
  // identical on every Executor backend.
  for (const PartitionWindow& w : windows_) {
    if (now < w.start || now >= w.heal_time) continue;
    auto g = [&](HostId h) {
      auto it = w.groups.find(h);
      return it == w.groups.end() ? uint32_t{0} : it->second;
    };
    if (CrossesSplit(w, g(from), g(to))) {
      ++counters_.partition_drops;
      return true;
    }
  }
  if (message_loss_ > 0.0) {
    Rng rng(DecisionKey(seed_, from, to, send_seq, kDropSalt));
    if (rng.NextBernoulli(message_loss_)) {
      ++counters_.loss_drops;
      return true;
    }
  }
  return false;
}

SimTime FaultPlan::ExtraLatency(HostId from, HostId to, uint64_t send_seq) {
  if (from == to) return 0;
  if (spike_probability_ > 0.0 && spike_delay_ > 0) {
    Rng rng(DecisionKey(seed_, from, to, send_seq, kSpikeSalt));
    if (rng.NextBernoulli(spike_probability_)) {
      ++counters_.latency_spikes;
      return spike_delay_;
    }
  }
  return 0;
}

void FaultPlan::AddFailSlow(HostId host, SimTime start, SimTime duration,
                            SimTime extra) {
  if (duration == 0 || extra == 0) return;
  fail_slow_[host].push_back(FailSlowWindow{start, start + duration, extra});
}

SimTime FaultPlan::ProcessingPenalty(HostId to, SimTime now) {
  if (fail_slow_.empty()) return 0;
  auto it = fail_slow_.find(to);
  if (it == fail_slow_.end()) return 0;
  SimTime penalty = 0;
  for (const FailSlowWindow& w : it->second) {
    if (now >= w.start && now < w.end) penalty += w.extra;
  }
  if (penalty > 0) ++counters_.slow_deliveries;
  return penalty;
}

void FaultPlan::CountChurn(ChurnEvent::Kind kind) {
  switch (kind) {
    case ChurnEvent::kCrash:
      ++counters_.churn_crashes;
      break;
    case ChurnEvent::kJoin:
      ++counters_.churn_joins;
      break;
    case ChurnEvent::kRestart:
      ++counters_.churn_restarts;
      break;
  }
}

std::vector<ChurnEvent> FaultPlan::FlashCrowdJoin(SimTime start, size_t joins,
                                                  SimTime window) {
  std::vector<ChurnEvent> out;
  out.reserve(joins);
  if (joins == 0) return out;
  // Even spacing across the window keeps the burst shape independent of any
  // RNG stream — the same 10%-of-the-ring minute every run.
  SimTime step = window / joins;
  for (size_t i = 0; i < joins; ++i) {
    out.push_back(ChurnEvent{start + i * step, ChurnEvent::kJoin});
  }
  return out;
}

std::vector<ChurnEvent> FaultPlan::MassLeave(SimTime at, size_t crashes) {
  std::vector<ChurnEvent> out;
  out.reserve(crashes);
  for (size_t i = 0; i < crashes; ++i) {
    out.push_back(ChurnEvent{at, ChurnEvent::kCrash});
  }
  return out;
}

std::vector<ChurnEvent> FaultPlan::CrashRestart(SimTime crash_at,
                                                SimTime restart_at,
                                                size_t count) {
  std::vector<ChurnEvent> out;
  out.reserve(2 * count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ChurnEvent{crash_at, ChurnEvent::kCrash});
  }
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ChurnEvent{restart_at, ChurnEvent::kRestart});
  }
  return out;
}

std::vector<ChurnEvent> FaultPlan::SustainedChurn(SimTime start,
                                                  SimTime duration,
                                                  double events_per_minute,
                                                  uint64_t seed) {
  std::vector<ChurnEvent> out;
  if (events_per_minute <= 0.0 || duration == 0) return out;
  Rng rng(seed);
  double mean_gap =
      static_cast<double>(kMinute) / events_per_minute;  // microseconds
  SimTime t = start;
  // Alternate join/crash so the population oscillates around its starting
  // size instead of draining — sustained N%/min churn, not decay.
  bool join_next = true;
  for (;;) {
    t += static_cast<SimTime>(std::max(1.0, rng.NextExponential(mean_gap)));
    if (t >= start + duration) break;
    out.push_back(
        ChurnEvent{t, join_next ? ChurnEvent::kJoin : ChurnEvent::kCrash});
    join_next = !join_next;
  }
  return out;
}

}  // namespace pierstack::sim
