// The Executor seam: the narrow interface every protocol layer schedules
// against, decoupling DhtNode/PierNode/Gnutella code from any particular
// event-loop backend.
//
// Three backends implement it:
//  * sim::Simulator (simulator.h) — the legacy single-threaded loop with
//    global-FIFO timestamp tie-break; the default for existing tests,
//    bit-compatible with pre-seam behavior.
//  * sim::SerialExecutor (below) — single-threaded, but orders equal-time
//    events by the *canonical key* (time, origin host, per-origin seq).
//    This is the reference ordering a parallel backend can reproduce, and
//    the baseline every sharded run is fingerprint-checked against.
//  * sim::ShardedExecutor (shard.h) — N worker threads, hosts partitioned
//    across per-shard queues, advancing in barrier epochs bounded by the
//    minimum network latency (the lookahead). Same canonical key, so a
//    fixed seed yields the same counters and answers as SerialExecutor.
//
// Why the canonical key works across backends: an event's key is assigned
// by its *scheduling context* (the host whose handler scheduled it, or the
// driver), and every host's events execute in strictly increasing key
// order on every backend. By induction each host observes the identical
// sequence of deliveries and timer fires, so it performs the identical
// schedules — same children, same keys — regardless of how events of
// *different* hosts interleave in wall-clock time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pierstack::sim {

/// Simulated time in microseconds since simulation start.
using SimTime = uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;

/// Identifies a scheduled event so it can be cancelled (e.g. timeouts).
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

/// Dense id of a host attached to the network (network.h / fault.h).
using HostId = uint32_t;

/// Pseudo-host owning driver-side events: churn timelines, test harness
/// timers — anything scheduled from outside a host's message handler. A
/// sharded backend runs these serialized at epoch barriers, where it may
/// safely touch any host. Sorts after every real host at equal time.
constexpr HostId kDriverHost = UINT32_MAX;

class Executor {
 public:
  virtual ~Executor() = default;

  /// Simulated clock of the calling context: the current event's time from
  /// inside a handler, the global horizon from driver code.
  virtual SimTime now() const = 0;

  /// Schedules `fn` at absolute time `t` (>= now) in `owner`'s execution
  /// domain — `fn` must only touch `owner`'s state (or, for kDriverHost,
  /// runs exclusively and may touch anything). Returns a cancellable id,
  /// or kInvalidEventId when the backend cannot make it cancellable (a
  /// cross-shard handoff; only fire-and-forget deliveries take that path).
  virtual EventId ScheduleAt(HostId owner, SimTime t,
                             std::function<void()> fn) = 0;

  /// Schedules `fn` `delay` after now, same contract as ScheduleAt.
  EventId ScheduleAfter(HostId owner, SimTime delay,
                        std::function<void()> fn) {
    return ScheduleAt(owner, now() + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already ran, was
  /// cancelled before, or never existed. Only legal from the owning
  /// shard's context or from driver code.
  virtual bool Cancel(EventId id) = 0;

  /// Driver-side: runs events until none remain or `limit` executed.
  /// Returns the number executed (epoch-granular for sharded backends).
  virtual size_t Run(size_t limit = SIZE_MAX) = 0;

  /// Driver-side: runs all events with time <= t, then advances every
  /// clock to exactly t. Returns the number executed.
  virtual size_t RunUntil(SimTime t) = 0;

  /// RunUntil(now + duration).
  size_t RunFor(SimTime duration) { return RunUntil(now() + duration); }

  /// Number of pending (non-cancelled) events.
  virtual size_t pending() const = 0;

  /// Total events executed since construction.
  virtual uint64_t events_executed() const = 0;

  /// Number of parallel shards (1 for serial backends).
  virtual uint32_t shard_count() const { return 1; }

  /// Slab index for the calling thread, in [0, shard_count()]: the worker
  /// shard index, or shard_count() for driver/coordinator context. Used by
  /// Network to pick shard-local metric slabs.
  virtual uint32_t CurrentSlab() const { return 0; }
};

namespace detail {

/// An event keyed for canonical cross-backend ordering.
struct CanonicalEvent {
  SimTime time = 0;
  HostId origin = kDriverHost;  ///< Host whose handler scheduled it.
  uint64_t origin_seq = 0;      ///< Monotonic per-origin at schedule time.
  HostId owner = kDriverHost;   ///< Host whose state the handler touches.
  EventId id = kInvalidEventId;  ///< 0 = not cancellable.
  std::function<void()> fn;
};

/// Min-heap order on the canonical key (time, origin, origin_seq).
struct CanonicalLater {
  bool operator()(const CanonicalEvent& a, const CanonicalEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.origin != b.origin) return a.origin > b.origin;
    return a.origin_seq > b.origin_seq;
  }
};

/// Priority queue over canonical keys with lazy cancellation, shared by
/// SerialExecutor (one queue) and ShardedExecutor (one per shard).
class CanonicalQueue {
 public:
  void Push(CanonicalEvent ev);
  /// Pops the minimum live event into `out` if its time <= bound.
  /// Returns false when the queue is empty or the minimum is later.
  bool PopUpTo(SimTime bound, CanonicalEvent* out);
  /// Earliest live event, or nullptr when empty. Valid until the next
  /// mutating call.
  const CanonicalEvent* Peek();
  /// Pops and returns the earliest live event (queue must be non-empty).
  CanonicalEvent PopTop();
  /// Time of the earliest live event; false when empty.
  bool PeekTime(SimTime* t);
  bool Cancel(EventId id);
  size_t pending() const { return live_; }

 private:
  void SkipCancelled();
  std::priority_queue<CanonicalEvent, std::vector<CanonicalEvent>,
                      CanonicalLater>
      heap_;
  std::unordered_set<EventId> cancelled_;
  size_t live_ = 0;
};

}  // namespace detail

/// Single-threaded Executor with canonical event ordering — the reference
/// backend sharded runs are fingerprint-checked against, and the serial
/// half of every backend-equivalence test.
class SerialExecutor : public Executor {
 public:
  SerialExecutor() = default;
  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  SimTime now() const override { return now_; }
  EventId ScheduleAt(HostId owner, SimTime t,
                     std::function<void()> fn) override;
  bool Cancel(EventId id) override;
  size_t Run(size_t limit = SIZE_MAX) override;
  size_t RunUntil(SimTime t) override;
  size_t pending() const override { return queue_.pending(); }
  uint64_t events_executed() const override { return executed_; }

 private:
  bool RunOne(SimTime bound);

  SimTime now_ = 0;
  HostId current_origin_ = kDriverHost;  ///< Context assigning child keys.
  detail::CanonicalQueue queue_;
  std::unordered_map<HostId, uint64_t> origin_seq_;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
};

/// Test/bench backend selection: returns a ShardedExecutor with
/// PIERSTACK_SHARDS workers when that env var is set above 1 AND the
/// workload has nonzero lookahead, else a SerialExecutor. `lookahead` must
/// be a lower bound on every cross-host delivery delay (the minimum
/// network latency; Network::MinSendLatency()). This is how the CI
/// PIERSTACK_SHARDS=4 leg reruns tier-1 on the sharded backend without
/// each test hard-coding one.
std::unique_ptr<Executor> MakeEnvExecutor(SimTime lookahead);

}  // namespace pierstack::sim
