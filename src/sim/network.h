// Simulated message-passing network with latency models, per-category
// traffic accounting, and per-destination pressure signals.
//
// All inter-node communication in the repository flows through
// Network::Send, so the bandwidth/overhead numbers the benches report
// (Figures 8, 10, 13–15; Section 7) are derived from one place — and so
// senders can probe a destination's queue occupancy (DestinationLoad) to
// adapt batching and pacing to observed load.
//
// The network schedules against the Executor seam (sim/executor.h), so the
// same Send path runs on the legacy serial Simulator and on the sharded
// multi-threaded backend. Determinism across backends is preserved by
// giving every send its own hash-derived RNG stream keyed on
// (seed, from, to, per-sender sequence) instead of one shared sequential
// generator: each sender's sends happen in canonical order on every
// backend, so the latency/fault draws are identical no matter how sends
// from *different* hosts interleave in wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace pierstack::sim {

/// Dense id of a host attached to the network (declared in sim/executor.h).
constexpr HostId kInvalidHost = UINT32_MAX;

/// An application-level message. The payload is an app-defined struct kept
/// by shared pointer (no serialization on the sim fast path); `wire_bytes`
/// is what the message would cost on a real wire and is charged to metrics.
struct Message {
  int type = 0;                       ///< App-defined discriminator.
  size_t wire_bytes = 0;              ///< Serialized size charged to metrics.
  const char* tag = "msg";            ///< Metrics category (static string).
  std::shared_ptr<const void> body;   ///< App payload.

  /// Typed payload accessor; the caller asserts the type via `type`.
  template <typename T>
  const T& as() const {
    return *static_cast<const T*>(body.get());
  }

  /// Builds a message owning a copy of `payload`.
  template <typename T>
  static Message Make(int type, const char* tag, size_t wire_bytes,
                      T payload) {
    Message m;
    m.type = type;
    m.tag = tag;
    m.wire_bytes = wire_bytes;
    m.body = std::make_shared<const T>(std::move(payload));
    return m;
  }
};

/// Receiver interface implemented by every simulated node.
class Host {
 public:
  virtual ~Host() = default;
  /// Called when a message addressed to this host is delivered.
  virtual void HandleMessage(HostId from, const Message& msg) = 0;
};

/// Latency model interface: delay for one message. `Latency` must be
/// callable concurrently (the per-send `rng` carries all draw state).
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime Latency(HostId from, HostId to, size_t bytes, Rng* rng) = 0;
  /// Lower bound on any cross-host latency — the sharded backend's
  /// lookahead (no cross-shard message can arrive sooner than this).
  virtual SimTime MinLatency() const = 0;
};

/// Fixed one-way delay.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime delay) : delay_(delay) {}
  SimTime Latency(HostId, HostId, size_t, Rng*) override { return delay_; }
  SimTime MinLatency() const override { return delay_; }

 private:
  SimTime delay_;
};

/// Uniform delay in [lo, hi]. Models a wide-area mix without topology.
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime Latency(HostId, HostId, size_t, Rng* rng) override;
  SimTime MinLatency() const override { return lo_; }

 private:
  SimTime lo_, hi_;
};

/// Internet-like model: each host gets a random 2-D coordinate; delay =
/// base + distance-proportional component + exponential jitter + a
/// bandwidth term per KB. Approximates the PlanetLab two-continent spread.
class CoordinateLatency : public LatencyModel {
 public:
  struct Options {
    SimTime base = 5 * kMillisecond;           ///< Per-hop fixed cost.
    SimTime max_distance = 80 * kMillisecond;  ///< Delay across the diagonal.
    SimTime jitter_mean = 5 * kMillisecond;    ///< Exponential jitter mean.
    SimTime per_kb = 2 * kMillisecond;         ///< Transfer time per KB.
  };
  CoordinateLatency(Options opts, uint64_t seed);
  SimTime Latency(HostId from, HostId to, size_t bytes, Rng* rng) override;
  SimTime MinLatency() const override { return opts_.base; }

 private:
  struct Coord {
    double x, y;
  };
  Coord CoordOf(HostId h);
  Options opts_;
  std::mutex coord_mu_;  ///< Guards the lazy fill (values stay index-determined).
  Rng coord_rng_;
  std::vector<Coord> coords_;
};

/// Traffic counters for one message category.
struct TrafficCounter {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Pressure signals for one destination host, maintained by Network::Send
/// and the delivery path. `in_flight_*` count messages accepted but not yet
/// handed to the receiver (the simulated send/receive queue occupancy);
/// `smoothed_latency` is an EWMA of observed delivery delays, including any
/// receiver processing delay. Senders probe this to adapt batch sizes and
/// pacing to observed load instead of compile-time constants.
///
/// The latency EWMA is time-decayed on read: while a destination sits idle
/// the signal halves every `Network` decay half-life, so one historical
/// burst cannot permanently bias adaptive flush, credit windows, or
/// congestion-aware routing. A value decayed all the way to 0 reads as
/// "unmeasured" again, which every consumer treats conservatively.
struct DestinationLoad {
  uint32_t in_flight_messages = 0;
  size_t in_flight_bytes = 0;
  /// High-water mark of in_flight_bytes since the last watermark reset —
  /// what an unpaced sender managed to pile onto this destination.
  size_t peak_in_flight_bytes = 0;
  sim::SimTime smoothed_latency = 0;  ///< EWMA; 0 until the first delivery.
  /// Time of the last EWMA update; the decay clock (internal to Network,
  /// but exposed so probes can be re-decayed by holders of a stale copy).
  sim::SimTime latency_updated_at = 0;
};

/// `latency` halved once per elapsed `half_life` (0 half-life = no decay).
SimTime DecayedLatency(SimTime latency, SimTime elapsed, SimTime half_life);

/// Aggregated network metrics, by category tag and in total.
struct NetworkMetrics {
  TrafficCounter total;
  std::map<std::string, TrafficCounter> by_tag;
  /// Every message that failed to reach its receiver: refused sends,
  /// in-flight losses (host died mid-flight) and injected faults.
  uint64_t dropped_messages = 0;
  /// The refused-send slice of dropped_messages: the destination was
  /// already down or detached at send time (TCP connect refused — the
  /// sender-visible failure signal).
  uint64_t refused_sends = 0;

  void Record(const char* tag, size_t bytes);
  void Reset();
  /// Adds `other` into this and zeroes it (the slab fold).
  void Absorb(NetworkMetrics* other);
};

/// The simulated network: host registry + latency + delivery + metrics.
///
/// Thread-safety contract for parallel backends (sim/shard.h): Send /
/// LoadOf / metric recording may be called concurrently from worker
/// shards; topology mutations (AddHost, RemoveHost, SetHostUp,
/// SetProcessingDelay) and metric exports (metrics(), Reset,
/// ResetLoadWatermarks) are exclusive-context only — setup code, driver
/// events at epoch barriers, or between runs.
class Network {
 public:
  /// `model` may be null, which means zero latency (pure dataflow tests —
  /// zero lookahead, so such networks only run on serial backends).
  Network(Executor* executor, std::unique_ptr<LatencyModel> model,
          uint64_t seed);

  /// Attaches a host; returns its id. The pointer must outlive the network
  /// or be detached first.
  HostId AddHost(Host* host);

  /// Detaches a host; later sends to it are counted as dropped.
  void RemoveHost(HostId id);

  /// Marks a host down (messages dropped) without forgetting it — models
  /// churn where the node returns later.
  void SetHostUp(HostId id, bool up);
  bool IsHostUp(HostId id) const;

  /// Adds a fixed per-message receive delay at `id` — models a slow host
  /// whose handler queue drains at bounded speed. Delivery of every message
  /// addressed to it is postponed by `delay` past the wire latency.
  void SetProcessingDelay(HostId id, SimTime delay);

  /// Cheap per-destination pressure probe (see DestinationLoad). Returns a
  /// zero-value load for unknown hosts. The smoothed-latency signal is
  /// returned time-decayed (see set_load_decay_half_life).
  DestinationLoad LoadOf(HostId id) const;

  /// Half-life of the idle decay applied to each destination's smoothed
  /// latency (0 disables decay — the sticky pre-decay behavior).
  void set_load_decay_half_life(SimTime half_life) {
    load_decay_half_life_ = half_life;
  }
  SimTime load_decay_half_life() const { return load_decay_half_life_; }

  /// Quantizes LoadOf: probes read a snapshot published when a
  /// destination's signal first crosses a `quantum` boundary, not the live
  /// value. 0 (the default) keeps probes exact/continuous — the serial
  /// behavior. Parallel backends REQUIRE a quantum that is a multiple of
  /// the executor's lookahead so the snapshot every prober sees is the
  /// deterministic end-of-previous-epoch state; serial runs being
  /// fingerprint-compared against sharded runs must set the same quantum.
  void set_load_probe_quantum(SimTime quantum) {
    load_probe_quantum_ = quantum;
  }
  SimTime load_probe_quantum() const { return load_probe_quantum_; }

  /// Resets every destination's peak_in_flight_bytes watermark to its
  /// current in-flight level (benches bracket a measured phase with this).
  void ResetLoadWatermarks();

  /// Sends `msg` from `from` to `to`; delivery is scheduled at
  /// now + latency. Self-sends are delivered with zero delay.
  ///
  /// Returns false — charging nothing to the byte counters — when the
  /// destination is already down or detached, which models a failed TCP
  /// connection attempt; senders use this as a failure detector. A host
  /// that goes down while the message is in flight still loses it, but
  /// silently (true is returned).
  bool Send(HostId from, HostId to, Message msg);

  /// Attaches a fault-injection plan (sim/fault.h); null detaches. The plan
  /// perturbs every subsequent Send (loss, spikes, partitions) and must
  /// outlive the network or be detached first.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* fault_plan() { return faults_; }
  const FaultPlan* fault_plan() const { return faults_; }

  /// The event-loop seam everything network-attached schedules against.
  Executor* executor() { return executor_; }
  const Executor* executor() const { return executor_; }

  /// Lower bound on any cross-host delivery delay — what a sharded
  /// backend's lookahead must not exceed. 0 when the model is null.
  SimTime MinSendLatency() const {
    return latency_ ? latency_->MinLatency() : 0;
  }

  /// Folds the per-shard metric slabs and returns the totals. Exclusive
  /// context only (driver events, barriers, or between runs).
  NetworkMetrics& metrics();
  const NetworkMetrics& metrics() const;
  size_t host_count() const { return hosts_.size(); }

 private:
  /// One destination's pressure state. `live` absorbs every charge/settle
  /// under `mu`; `published` is the snapshot probes read when quantized
  /// (the live value as of the last quantum boundary — deterministic on
  /// every backend because all earlier-epoch mutations are barrier-ordered
  /// before any later-epoch touch).
  struct LoadSlot {
    mutable std::mutex mu;
    uint64_t epoch = 0;
    DestinationLoad live;
    DestinationLoad published;
  };

  /// Publishes `slot` if `now` crossed into a new quantum. Caller holds mu.
  void TouchSlot(LoadSlot* slot, SimTime now) const;
  /// Charges an accepted message against the destination's pressure
  /// signals; the returned delivery path settles it.
  void ChargeInFlight(HostId to, size_t bytes);
  void SettleInFlight(HostId to, size_t bytes, SimTime observed_delay);
  NetworkMetrics& Slab();

  Executor* executor_;
  std::unique_ptr<LatencyModel> latency_;
  const uint64_t seed_;  ///< Root of the per-send latency streams.
  std::vector<Host*> hosts_;    // index = HostId; null = removed
  std::vector<bool> up_;
  std::vector<SimTime> processing_delay_;  // index = HostId
  std::vector<uint64_t> send_seq_;         // index = sender; its stream clock
  std::vector<std::unique_ptr<LoadSlot>> loads_;  // index = HostId
  SimTime load_decay_half_life_ = 5 * kSecond;
  SimTime load_probe_quantum_ = 0;
  /// One slab per worker shard plus one for driver context; folded into
  /// metrics_ on export.
  mutable std::vector<NetworkMetrics> metric_slabs_;
  mutable NetworkMetrics metrics_;
  FaultPlan* faults_ = nullptr;  ///< Non-owning; null = no fault injection.
};

/// Surfaces the network drop/traffic counters — and, when a FaultPlan is
/// attached, the injected-fault counters — into a CounterSet under "net."
/// names (the cross-layer reporting currency, see common/stats.h).
void ExportNetworkCounters(const Network& net, CounterSet* out);

}  // namespace pierstack::sim
