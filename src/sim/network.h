// Simulated message-passing network with latency models, per-category
// traffic accounting, and per-destination pressure signals.
//
// All inter-node communication in the repository flows through
// Network::Send, so the bandwidth/overhead numbers the benches report
// (Figures 8, 10, 13–15; Section 7) are derived from one place — and so
// senders can probe a destination's queue occupancy (DestinationLoad) to
// adapt batching and pacing to observed load.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace pierstack::sim {

/// Dense id of a host attached to the network (declared in sim/fault.h).
constexpr HostId kInvalidHost = UINT32_MAX;

/// An application-level message. The payload is an app-defined struct kept
/// by shared pointer (no serialization on the sim fast path); `wire_bytes`
/// is what the message would cost on a real wire and is charged to metrics.
struct Message {
  int type = 0;                       ///< App-defined discriminator.
  size_t wire_bytes = 0;              ///< Serialized size charged to metrics.
  const char* tag = "msg";            ///< Metrics category (static string).
  std::shared_ptr<const void> body;   ///< App payload.

  /// Typed payload accessor; the caller asserts the type via `type`.
  template <typename T>
  const T& as() const {
    return *static_cast<const T*>(body.get());
  }

  /// Builds a message owning a copy of `payload`.
  template <typename T>
  static Message Make(int type, const char* tag, size_t wire_bytes,
                      T payload) {
    Message m;
    m.type = type;
    m.tag = tag;
    m.wire_bytes = wire_bytes;
    m.body = std::make_shared<const T>(std::move(payload));
    return m;
  }
};

/// Receiver interface implemented by every simulated node.
class Host {
 public:
  virtual ~Host() = default;
  /// Called when a message addressed to this host is delivered.
  virtual void HandleMessage(HostId from, const Message& msg) = 0;
};

/// Latency model interface: delay for one message.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime Latency(HostId from, HostId to, size_t bytes, Rng* rng) = 0;
};

/// Fixed one-way delay.
class ConstantLatency : public LatencyModel {
 public:
  explicit ConstantLatency(SimTime delay) : delay_(delay) {}
  SimTime Latency(HostId, HostId, size_t, Rng*) override { return delay_; }

 private:
  SimTime delay_;
};

/// Uniform delay in [lo, hi]. Models a wide-area mix without topology.
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime Latency(HostId, HostId, size_t, Rng* rng) override;

 private:
  SimTime lo_, hi_;
};

/// Internet-like model: each host gets a random 2-D coordinate; delay =
/// base + distance-proportional component + exponential jitter + a
/// bandwidth term per KB. Approximates the PlanetLab two-continent spread.
class CoordinateLatency : public LatencyModel {
 public:
  struct Options {
    SimTime base = 5 * kMillisecond;           ///< Per-hop fixed cost.
    SimTime max_distance = 80 * kMillisecond;  ///< Delay across the diagonal.
    SimTime jitter_mean = 5 * kMillisecond;    ///< Exponential jitter mean.
    SimTime per_kb = 2 * kMillisecond;         ///< Transfer time per KB.
  };
  CoordinateLatency(Options opts, uint64_t seed);
  SimTime Latency(HostId from, HostId to, size_t bytes, Rng* rng) override;

 private:
  struct Coord {
    double x, y;
  };
  Coord CoordOf(HostId h);
  Options opts_;
  Rng coord_rng_;
  std::vector<Coord> coords_;
};

/// Traffic counters for one message category.
struct TrafficCounter {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

/// Pressure signals for one destination host, maintained by Network::Send
/// and the delivery path. `in_flight_*` count messages accepted but not yet
/// handed to the receiver (the simulated send/receive queue occupancy);
/// `smoothed_latency` is an EWMA of observed delivery delays, including any
/// receiver processing delay. Senders probe this to adapt batch sizes and
/// pacing to destination load instead of compile-time constants.
///
/// The latency EWMA is time-decayed on read: while a destination sits idle
/// the signal halves every `Network` decay half-life, so one historical
/// burst cannot permanently bias adaptive flush, credit windows, or
/// congestion-aware routing. A value decayed all the way to 0 reads as
/// "unmeasured" again, which every consumer treats conservatively.
struct DestinationLoad {
  uint32_t in_flight_messages = 0;
  size_t in_flight_bytes = 0;
  /// High-water mark of in_flight_bytes since the last watermark reset —
  /// what an unpaced sender managed to pile onto this destination.
  size_t peak_in_flight_bytes = 0;
  sim::SimTime smoothed_latency = 0;  ///< EWMA; 0 until the first delivery.
  /// Time of the last EWMA update; the decay clock (internal to Network,
  /// but exposed so probes can be re-decayed by holders of a stale copy).
  sim::SimTime latency_updated_at = 0;
};

/// `latency` halved once per elapsed `half_life` (0 half-life = no decay).
SimTime DecayedLatency(SimTime latency, SimTime elapsed, SimTime half_life);

/// Aggregated network metrics, by category tag and in total.
struct NetworkMetrics {
  TrafficCounter total;
  std::map<std::string, TrafficCounter> by_tag;
  /// Every message that failed to reach its receiver: refused sends,
  /// in-flight losses (host died mid-flight) and injected faults.
  uint64_t dropped_messages = 0;
  /// The refused-send slice of dropped_messages: the destination was
  /// already down or detached at send time (TCP connect refused — the
  /// sender-visible failure signal).
  uint64_t refused_sends = 0;

  void Record(const char* tag, size_t bytes);
  void Reset();
};

/// The simulated network: host registry + latency + delivery + metrics.
class Network {
 public:
  /// `model` may be null, which means zero latency (pure dataflow tests).
  Network(Simulator* simulator, std::unique_ptr<LatencyModel> model,
          uint64_t seed);

  /// Attaches a host; returns its id. The pointer must outlive the network
  /// or be detached first.
  HostId AddHost(Host* host);

  /// Detaches a host; later sends to it are counted as dropped.
  void RemoveHost(HostId id);

  /// Marks a host down (messages dropped) without forgetting it — models
  /// churn where the node returns later.
  void SetHostUp(HostId id, bool up);
  bool IsHostUp(HostId id) const;

  /// Adds a fixed per-message receive delay at `id` — models a slow host
  /// whose handler queue drains at bounded speed. Delivery of every message
  /// addressed to it is postponed by `delay` past the wire latency.
  void SetProcessingDelay(HostId id, SimTime delay);

  /// Cheap per-destination pressure probe (see DestinationLoad). Returns a
  /// zero-value load for unknown hosts. The smoothed-latency signal is
  /// returned time-decayed (see set_load_decay_half_life).
  DestinationLoad LoadOf(HostId id) const;

  /// Half-life of the idle decay applied to each destination's smoothed
  /// latency (0 disables decay — the sticky pre-decay behavior).
  void set_load_decay_half_life(SimTime half_life) {
    load_decay_half_life_ = half_life;
  }
  SimTime load_decay_half_life() const { return load_decay_half_life_; }

  /// Resets every destination's peak_in_flight_bytes watermark to its
  /// current in-flight level (benches bracket a measured phase with this).
  void ResetLoadWatermarks();

  /// Sends `msg` from `from` to `to`; delivery is scheduled at
  /// now + latency. Self-sends are delivered with zero delay.
  ///
  /// Returns false — charging nothing to the byte counters — when the
  /// destination is already down or detached, which models a failed TCP
  /// connection attempt; senders use this as a failure detector. A host
  /// that goes down while the message is in flight still loses it, but
  /// silently (true is returned).
  bool Send(HostId from, HostId to, Message msg);

  /// Attaches a fault-injection plan (sim/fault.h); null detaches. The plan
  /// perturbs every subsequent Send (loss, spikes, partitions) and must
  /// outlive the network or be detached first.
  void set_fault_plan(FaultPlan* plan) { faults_ = plan; }
  FaultPlan* fault_plan() { return faults_; }
  const FaultPlan* fault_plan() const { return faults_; }

  Simulator* simulator() { return simulator_; }
  NetworkMetrics& metrics() { return metrics_; }
  const NetworkMetrics& metrics() const { return metrics_; }
  size_t host_count() const { return hosts_.size(); }

 private:
  /// Charges an accepted message against the destination's pressure
  /// signals; the returned delivery path settles it.
  void ChargeInFlight(HostId to, size_t bytes);
  void SettleInFlight(HostId to, size_t bytes, SimTime observed_delay);

  Simulator* simulator_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::vector<Host*> hosts_;    // index = HostId; null = removed
  std::vector<bool> up_;
  std::vector<SimTime> processing_delay_;  // index = HostId
  std::vector<DestinationLoad> loads_;     // index = HostId
  SimTime load_decay_half_life_ = 5 * kSecond;
  NetworkMetrics metrics_;
  FaultPlan* faults_ = nullptr;  ///< Non-owning; null = no fault injection.
};

/// Surfaces the network drop/traffic counters — and, when a FaultPlan is
/// attached, the injected-fault counters — into a CounterSet under "net."
/// names (the cross-layer reporting currency, see common/stats.h).
void ExportNetworkCounters(const Network& net, CounterSet* out);

}  // namespace pierstack::sim
