#include "sim/simulator.h"

#include <cassert>

namespace pierstack::sim {

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  assert(t >= now_);
  EventId id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Simulator::Cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  // Lazy deletion: remember the id; skip it when popped.
  cancelled_.insert(id);
  return true;
}

bool Simulator::Step() {
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(ev.id);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

size_t Simulator::Run(size_t limit) {
  size_t n = 0;
  while (n < limit && Step()) ++n;
  return n;
}

size_t Simulator::RunUntil(SimTime t) {
  size_t n = 0;
  while (!heap_.empty()) {
    Event ev = heap_.top();
    if (cancelled_.count(ev.id)) {
      heap_.pop();
      cancelled_.erase(ev.id);
      continue;
    }
    if (ev.time > t) break;
    Step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace pierstack::sim
