#include "sim/executor.h"

#include <cassert>
#include <cstdlib>

#include "sim/shard.h"

namespace pierstack::sim {
namespace detail {

void CanonicalQueue::Push(CanonicalEvent ev) {
  heap_.push(std::move(ev));
  ++live_;
}

void CanonicalQueue::SkipCancelled() {
  while (!heap_.empty()) {
    EventId id = heap_.top().id;
    if (id == kInvalidEventId) return;
    auto it = cancelled_.find(id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool CanonicalQueue::PopUpTo(SimTime bound, CanonicalEvent* out) {
  SkipCancelled();
  if (heap_.empty() || heap_.top().time > bound) return false;
  *out = PopTop();
  return true;
}

const CanonicalEvent* CanonicalQueue::Peek() {
  SkipCancelled();
  return heap_.empty() ? nullptr : &heap_.top();
}

CanonicalEvent CanonicalQueue::PopTop() {
  // The container element is not actually const; moving the closure out
  // before pop avoids a per-event std::function copy. The comparator only
  // reads the trivially-copied key fields, which a move leaves intact.
  CanonicalEvent ev = std::move(const_cast<CanonicalEvent&>(heap_.top()));
  heap_.pop();
  --live_;
  return ev;
}

bool CanonicalQueue::PeekTime(SimTime* t) {
  SkipCancelled();
  if (heap_.empty()) return false;
  *t = heap_.top().time;
  return true;
}

bool CanonicalQueue::Cancel(EventId id) {
  if (id == kInvalidEventId) return false;
  // Lazy deletion, like Simulator: remember the id, skip it when popped.
  // An id is only handed out once per queue, so a successful insert means
  // the event is still in the heap.
  if (!cancelled_.insert(id).second) return false;
  --live_;
  return true;
}

}  // namespace detail

EventId SerialExecutor::ScheduleAt(HostId owner, SimTime t,
                                   std::function<void()> fn) {
  assert(t >= now_);
  EventId id = next_id_++;
  detail::CanonicalEvent ev;
  ev.time = t;
  ev.origin = current_origin_;
  ev.origin_seq = origin_seq_[current_origin_]++;
  ev.owner = owner;
  ev.id = id;
  ev.fn = std::move(fn);
  queue_.Push(std::move(ev));
  return id;
}

bool SerialExecutor::Cancel(EventId id) { return queue_.Cancel(id); }

bool SerialExecutor::RunOne(SimTime bound) {
  detail::CanonicalEvent ev;
  if (!queue_.PopUpTo(bound, &ev)) return false;
  now_ = ev.time;
  current_origin_ = ev.owner;
  ++executed_;
  ev.fn();
  current_origin_ = kDriverHost;
  return true;
}

size_t SerialExecutor::Run(size_t limit) {
  size_t n = 0;
  while (n < limit && RunOne(SIZE_MAX)) ++n;
  return n;
}

size_t SerialExecutor::RunUntil(SimTime t) {
  size_t n = 0;
  while (RunOne(t)) ++n;
  if (now_ < t) now_ = t;
  return n;
}

std::unique_ptr<Executor> MakeEnvExecutor(SimTime lookahead) {
  const char* env = std::getenv("PIERSTACK_SHARDS");
  long shards = env != nullptr ? std::strtol(env, nullptr, 10) : 0;
  if (shards > 1 && lookahead > 0) {
    ShardedExecutor::Options opts;
    opts.shards = static_cast<uint32_t>(shards);
    opts.lookahead = lookahead;
    return std::make_unique<ShardedExecutor>(opts);
  }
  return std::make_unique<SerialExecutor>();
}

}  // namespace pierstack::sim
