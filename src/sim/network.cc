#include "sim/network.h"

#include <cassert>
#include <cmath>

namespace pierstack::sim {

namespace {

// SplitMix64 step — the stream-derivation mixer. Chaining it over the
// (seed, from, to, seq) key gives every send an independent, well-mixed
// RNG stream that does not depend on how sends from other hosts interleave.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t SendStreamKey(uint64_t seed, HostId from, HostId to, uint64_t seq) {
  return Mix(Mix(Mix(seed ^ from) ^ to) ^ seq);
}

}  // namespace

SimTime UniformLatency::Latency(HostId, HostId, size_t, Rng* rng) {
  if (hi_ <= lo_) return lo_;
  return lo_ + rng->NextBelow(hi_ - lo_ + 1);
}

CoordinateLatency::CoordinateLatency(Options opts, uint64_t seed)
    : opts_(opts), coord_rng_(seed) {}

CoordinateLatency::Coord CoordinateLatency::CoordOf(HostId h) {
  // Coordinates are always drawn in index order from the model's own
  // stream, so a host's coordinate is the same no matter which send (or
  // which thread) first asks for it; the lock only serializes the fill.
  std::lock_guard<std::mutex> lock(coord_mu_);
  while (coords_.size() <= h) {
    coords_.push_back(
        Coord{coord_rng_.NextDouble(), coord_rng_.NextDouble()});
  }
  return coords_[h];
}

SimTime CoordinateLatency::Latency(HostId from, HostId to, size_t bytes,
                                   Rng* rng) {
  Coord a = CoordOf(from);
  Coord b = CoordOf(to);
  double dist = std::sqrt((a.x - b.x) * (a.x - b.x) +
                          (a.y - b.y) * (a.y - b.y)) /
                std::sqrt(2.0);  // normalized to [0,1]
  SimTime delay = opts_.base;
  delay += static_cast<SimTime>(dist * static_cast<double>(opts_.max_distance));
  if (opts_.jitter_mean > 0) {
    delay += static_cast<SimTime>(
        rng->NextExponential(static_cast<double>(opts_.jitter_mean)));
  }
  delay += opts_.per_kb * (bytes / 1024);
  return delay;
}

SimTime DecayedLatency(SimTime latency, SimTime elapsed, SimTime half_life) {
  if (latency == 0 || half_life == 0) return latency;
  SimTime halvings = elapsed / half_life;
  if (halvings >= 64) return 0;
  return latency >> halvings;
}

void NetworkMetrics::Record(const char* tag, size_t bytes) {
  total.messages += 1;
  total.bytes += bytes;
  auto& c = by_tag[tag];
  c.messages += 1;
  c.bytes += bytes;
}

void NetworkMetrics::Reset() {
  total = TrafficCounter{};
  by_tag.clear();
  dropped_messages = 0;
  refused_sends = 0;
}

void NetworkMetrics::Absorb(NetworkMetrics* other) {
  total.messages += other->total.messages;
  total.bytes += other->total.bytes;
  for (const auto& [tag, c] : other->by_tag) {
    auto& mine = by_tag[tag];
    mine.messages += c.messages;
    mine.bytes += c.bytes;
  }
  dropped_messages += other->dropped_messages;
  refused_sends += other->refused_sends;
  other->Reset();
}

Network::Network(Executor* executor, std::unique_ptr<LatencyModel> model,
                 uint64_t seed)
    : executor_(executor), latency_(std::move(model)), seed_(seed) {
  assert(executor != nullptr);
  metric_slabs_.resize(executor_->shard_count() + 1);
  // On a sharded backend, exact (quantum 0) load reads would observe
  // whatever a concurrent shard last charged — nondeterministic. Default
  // to epoch-published probes on the lookahead grid so any harness that
  // lands on a sharded executor is deterministic without opting in;
  // serial backends keep the exact legacy reads.
  if (executor_->shard_count() > 1) {
    load_probe_quantum_ = latency_->MinLatency();
  }
}

HostId Network::AddHost(Host* host) {
  assert(host != nullptr);
  hosts_.push_back(host);
  up_.push_back(true);
  processing_delay_.push_back(0);
  send_seq_.push_back(0);
  loads_.push_back(std::make_unique<LoadSlot>());
  return static_cast<HostId>(hosts_.size() - 1);
}

void Network::SetProcessingDelay(HostId id, SimTime delay) {
  assert(id < processing_delay_.size());
  processing_delay_[id] = delay;
}

void Network::TouchSlot(LoadSlot* slot, SimTime now) const {
  if (load_probe_quantum_ == 0) return;
  uint64_t epoch = now / load_probe_quantum_;
  if (epoch != slot->epoch) {
    // First touch past a quantum boundary: publish the live state as of
    // the boundary. Every pre-boundary mutation is barrier-ordered before
    // this touch and no post-boundary mutation has been applied yet (each
    // one publishes-then-applies under mu), so the snapshot is identical
    // on serial and sharded backends.
    slot->published = slot->live;
    slot->epoch = epoch;
  }
}

DestinationLoad Network::LoadOf(HostId id) const {
  if (id >= loads_.size()) return DestinationLoad{};
  LoadSlot* slot = loads_[id].get();
  SimTime now = executor_->now();
  DestinationLoad l;
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    TouchSlot(slot, now);
    l = load_probe_quantum_ == 0 ? slot->live : slot->published;
  }
  // Idle decay applied on read; the returned copy is stamped as-of-now so
  // a holder re-decaying it later cannot double-count the pre-read idle
  // interval.
  l.smoothed_latency = DecayedLatency(
      l.smoothed_latency, now - l.latency_updated_at, load_decay_half_life_);
  l.latency_updated_at = now;
  return l;
}

void Network::ResetLoadWatermarks() {
  for (auto& slot : loads_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->live.peak_in_flight_bytes = slot->live.in_flight_bytes;
    slot->published.peak_in_flight_bytes = slot->published.in_flight_bytes;
  }
}

void Network::ChargeInFlight(HostId to, size_t bytes) {
  LoadSlot* slot = loads_[to].get();
  std::lock_guard<std::mutex> lock(slot->mu);
  TouchSlot(slot, executor_->now());
  DestinationLoad& l = slot->live;
  l.in_flight_messages += 1;
  l.in_flight_bytes += bytes;
  if (l.in_flight_bytes > l.peak_in_flight_bytes) {
    l.peak_in_flight_bytes = l.in_flight_bytes;
  }
}

void Network::SettleInFlight(HostId to, size_t bytes,
                             SimTime observed_delay) {
  LoadSlot* slot = loads_[to].get();
  std::lock_guard<std::mutex> lock(slot->mu);
  SimTime now = executor_->now();
  TouchSlot(slot, now);
  DestinationLoad& l = slot->live;
  assert(l.in_flight_messages > 0 && l.in_flight_bytes >= bytes);
  l.in_flight_messages -= 1;
  l.in_flight_bytes -= bytes;
  // Decay the stored history to now first, then fold in the observation:
  // EWMA with 1/8 gain, seeded by the first (or post-idle) observation.
  SimTime history = DecayedLatency(l.smoothed_latency,
                                   now - l.latency_updated_at,
                                   load_decay_half_life_);
  l.smoothed_latency =
      history == 0 ? observed_delay : (7 * history + observed_delay) / 8;
  l.latency_updated_at = now;
}

void Network::RemoveHost(HostId id) {
  assert(id < hosts_.size());
  hosts_[id] = nullptr;
  up_[id] = false;
}

void Network::SetHostUp(HostId id, bool up) {
  assert(id < hosts_.size());
  up_[id] = up && hosts_[id] != nullptr;
}

bool Network::IsHostUp(HostId id) const {
  return id < hosts_.size() && hosts_[id] != nullptr && up_[id];
}

NetworkMetrics& Network::Slab() {
  return metric_slabs_[executor_->CurrentSlab()];
}

NetworkMetrics& Network::metrics() {
  for (NetworkMetrics& slab : metric_slabs_) metrics_.Absorb(&slab);
  return metrics_;
}

const NetworkMetrics& Network::metrics() const {
  for (NetworkMetrics& slab : metric_slabs_) metrics_.Absorb(&slab);
  return metrics_;
}

bool Network::Send(HostId from, HostId to, Message msg) {
  if (!IsHostUp(to)) {
    NetworkMetrics& m = Slab();
    ++m.dropped_messages;
    ++m.refused_sends;
    return false;
  }
  Slab().Record(msg.tag, msg.wire_bytes);
  // This send's private draw stream: the per-sender sequence number only
  // ever advances from the sender's own execution context, so the key —
  // hence every latency/fault draw — is backend-independent.
  assert(from < send_seq_.size());
  uint64_t seq = send_seq_[from]++;
  // Injected faults (sim/fault.h): the message left the sender (charged to
  // traffic above, success returned below), but a loss or a partition edge
  // silently discards it before the destination's queue ever sees it. The
  // plan derives its decisions from its own seed and this send's key, so
  // fault injection still never perturbs the latency stream.
  if (faults_ != nullptr &&
      faults_->ShouldDrop(from, to, seq, executor_->now())) {
    ++Slab().dropped_messages;
    return true;
  }
  SimTime delay = 0;
  if (latency_ && from != to) {
    Rng rng(SendStreamKey(seed_, from, to, seq));
    delay = latency_->Latency(from, to, msg.wire_bytes, &rng);
  }
  if (faults_ != nullptr) delay += faults_->ExtraLatency(from, to, seq);
  delay += processing_delay_[to];
  // Fail-slow windows (sim/fault.h): keyed on the send time — the sender's
  // own clock — so the penalty decision is backend-independent too.
  if (faults_ != nullptr) {
    delay += faults_->ProcessingPenalty(to, executor_->now());
  }
  ChargeInFlight(to, msg.wire_bytes);
  executor_->ScheduleAt(
      to, executor_->now() + delay,
      [this, from, to, delay, m = std::move(msg)]() {
        // The message leaves the destination's queue whether or not the
        // host survived to receive it.
        SettleInFlight(to, m.wire_bytes, delay);
        // Re-check liveness at delivery time: the host may have left while
        // the message was in flight.
        if (!IsHostUp(to)) {
          ++Slab().dropped_messages;
          return;
        }
        hosts_[to]->HandleMessage(from, m);
      });
  return true;
}

void ExportNetworkCounters(const Network& net, CounterSet* out) {
  const NetworkMetrics& m = net.metrics();
  out->Set("net.messages", m.total.messages);
  out->Set("net.bytes", m.total.bytes);
  out->Set("net.dropped_messages", m.dropped_messages);
  out->Set("net.refused_sends", m.refused_sends);
  if (const FaultPlan* plan = net.fault_plan()) {
    const FaultCounters& f = plan->counters();
    out->Set("net.fault_loss_drops", f.loss_drops);
    out->Set("net.fault_latency_spikes", f.latency_spikes);
    out->Set("net.fault_partition_drops", f.partition_drops);
    out->Set("net.fault_churn_crashes", f.churn_crashes);
    out->Set("net.fault_churn_joins", f.churn_joins);
    out->Set("net.fault_churn_restarts", f.churn_restarts);
    out->Set("net.fault_slow_deliveries", f.slow_deliveries);
    out->Set("net.fault_injected_total", f.Total());
  }
}

}  // namespace pierstack::sim
