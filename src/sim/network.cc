#include "sim/network.h"

#include <cassert>
#include <cmath>

namespace pierstack::sim {

SimTime UniformLatency::Latency(HostId, HostId, size_t, Rng* rng) {
  if (hi_ <= lo_) return lo_;
  return lo_ + rng->NextBelow(hi_ - lo_ + 1);
}

CoordinateLatency::CoordinateLatency(Options opts, uint64_t seed)
    : opts_(opts), coord_rng_(seed) {}

CoordinateLatency::Coord CoordinateLatency::CoordOf(HostId h) {
  while (coords_.size() <= h) {
    coords_.push_back(
        Coord{coord_rng_.NextDouble(), coord_rng_.NextDouble()});
  }
  return coords_[h];
}

SimTime CoordinateLatency::Latency(HostId from, HostId to, size_t bytes,
                                   Rng* rng) {
  Coord a = CoordOf(from);
  Coord b = CoordOf(to);
  double dist = std::sqrt((a.x - b.x) * (a.x - b.x) +
                          (a.y - b.y) * (a.y - b.y)) /
                std::sqrt(2.0);  // normalized to [0,1]
  SimTime delay = opts_.base;
  delay += static_cast<SimTime>(dist * static_cast<double>(opts_.max_distance));
  if (opts_.jitter_mean > 0) {
    delay += static_cast<SimTime>(
        rng->NextExponential(static_cast<double>(opts_.jitter_mean)));
  }
  delay += opts_.per_kb * (bytes / 1024);
  return delay;
}

SimTime DecayedLatency(SimTime latency, SimTime elapsed, SimTime half_life) {
  if (latency == 0 || half_life == 0) return latency;
  SimTime halvings = elapsed / half_life;
  if (halvings >= 64) return 0;
  return latency >> halvings;
}

void NetworkMetrics::Record(const char* tag, size_t bytes) {
  total.messages += 1;
  total.bytes += bytes;
  auto& c = by_tag[tag];
  c.messages += 1;
  c.bytes += bytes;
}

void NetworkMetrics::Reset() {
  total = TrafficCounter{};
  by_tag.clear();
  dropped_messages = 0;
  refused_sends = 0;
}

Network::Network(Simulator* simulator, std::unique_ptr<LatencyModel> model,
                 uint64_t seed)
    : simulator_(simulator), latency_(std::move(model)), rng_(seed) {
  assert(simulator != nullptr);
}

HostId Network::AddHost(Host* host) {
  assert(host != nullptr);
  hosts_.push_back(host);
  up_.push_back(true);
  processing_delay_.push_back(0);
  loads_.push_back(DestinationLoad{});
  return static_cast<HostId>(hosts_.size() - 1);
}

void Network::SetProcessingDelay(HostId id, SimTime delay) {
  assert(id < processing_delay_.size());
  processing_delay_[id] = delay;
}

DestinationLoad Network::LoadOf(HostId id) const {
  if (id >= loads_.size()) return DestinationLoad{};
  DestinationLoad l = loads_[id];
  // Idle decay applied on read; the returned copy is stamped as-of-now so
  // a holder re-decaying it later cannot double-count the pre-read idle
  // interval.
  sim::SimTime now = simulator_->now();
  l.smoothed_latency = DecayedLatency(
      l.smoothed_latency, now - l.latency_updated_at, load_decay_half_life_);
  l.latency_updated_at = now;
  return l;
}

void Network::ResetLoadWatermarks() {
  for (DestinationLoad& l : loads_) {
    l.peak_in_flight_bytes = l.in_flight_bytes;
  }
}

void Network::ChargeInFlight(HostId to, size_t bytes) {
  DestinationLoad& l = loads_[to];
  l.in_flight_messages += 1;
  l.in_flight_bytes += bytes;
  if (l.in_flight_bytes > l.peak_in_flight_bytes) {
    l.peak_in_flight_bytes = l.in_flight_bytes;
  }
}

void Network::SettleInFlight(HostId to, size_t bytes,
                             SimTime observed_delay) {
  DestinationLoad& l = loads_[to];
  assert(l.in_flight_messages > 0 && l.in_flight_bytes >= bytes);
  l.in_flight_messages -= 1;
  l.in_flight_bytes -= bytes;
  // Decay the stored history to now first, then fold in the observation:
  // EWMA with 1/8 gain, seeded by the first (or post-idle) observation.
  SimTime now = simulator_->now();
  SimTime history = DecayedLatency(l.smoothed_latency,
                                   now - l.latency_updated_at,
                                   load_decay_half_life_);
  l.smoothed_latency =
      history == 0 ? observed_delay : (7 * history + observed_delay) / 8;
  l.latency_updated_at = now;
}

void Network::RemoveHost(HostId id) {
  assert(id < hosts_.size());
  hosts_[id] = nullptr;
  up_[id] = false;
}

void Network::SetHostUp(HostId id, bool up) {
  assert(id < hosts_.size());
  up_[id] = up && hosts_[id] != nullptr;
}

bool Network::IsHostUp(HostId id) const {
  return id < hosts_.size() && hosts_[id] != nullptr && up_[id];
}

bool Network::Send(HostId from, HostId to, Message msg) {
  if (!IsHostUp(to)) {
    ++metrics_.dropped_messages;
    ++metrics_.refused_sends;
    return false;
  }
  metrics_.Record(msg.tag, msg.wire_bytes);
  // Injected faults (sim/fault.h): the message left the sender (charged to
  // traffic above, success returned below), but a loss or a partition edge
  // silently discards it before the destination's queue ever sees it.
  if (faults_ != nullptr && faults_->ShouldDrop(from, to)) {
    ++metrics_.dropped_messages;
    return true;
  }
  SimTime delay = 0;
  if (latency_ && from != to) {
    delay = latency_->Latency(from, to, msg.wire_bytes, &rng_);
  }
  if (faults_ != nullptr) delay += faults_->ExtraLatency(from, to);
  delay += processing_delay_[to];
  ChargeInFlight(to, msg.wire_bytes);
  simulator_->ScheduleAfter(
      delay, [this, from, to, delay, m = std::move(msg)]() {
        // The message leaves the destination's queue whether or not the
        // host survived to receive it.
        SettleInFlight(to, m.wire_bytes, delay);
        // Re-check liveness at delivery time: the host may have left while
        // the message was in flight.
        if (!IsHostUp(to)) {
          ++metrics_.dropped_messages;
          return;
        }
        hosts_[to]->HandleMessage(from, m);
      });
  return true;
}

void ExportNetworkCounters(const Network& net, CounterSet* out) {
  const NetworkMetrics& m = net.metrics();
  out->Set("net.messages", m.total.messages);
  out->Set("net.bytes", m.total.bytes);
  out->Set("net.dropped_messages", m.dropped_messages);
  out->Set("net.refused_sends", m.refused_sends);
  if (const FaultPlan* plan = net.fault_plan()) {
    const FaultCounters& f = plan->counters();
    out->Set("net.fault_loss_drops", f.loss_drops);
    out->Set("net.fault_latency_spikes", f.latency_spikes);
    out->Set("net.fault_partition_drops", f.partition_drops);
    out->Set("net.fault_churn_crashes", f.churn_crashes);
    out->Set("net.fault_churn_joins", f.churn_joins);
    out->Set("net.fault_injected_total", f.Total());
  }
}

}  // namespace pierstack::sim
