#include "piersearch/schemas.h"

namespace pierstack::piersearch {

using pier::Field;
using pier::Schema;
using pier::ValueType;

const Schema& ItemSchema() {
  static const Schema* kSchema = new Schema(
      "item",
      {Field{"fileID", ValueType::kUint64},
       Field{"filename", ValueType::kString},
       Field{"filesize", ValueType::kUint64},
       Field{"ipAddress", ValueType::kUint64},
       Field{"port", ValueType::kUint64}},
      kItemFileId);
  return *kSchema;
}

const Schema& InvertedSchema() {
  static const Schema* kSchema = new Schema(
      "inverted",
      {Field{"keyword", ValueType::kString},
       Field{"fileID", ValueType::kUint64}},
      kInvKeyword);
  return *kSchema;
}

const Schema& InvertedCacheSchema() {
  static const Schema* kSchema = new Schema(
      "invcache",
      {Field{"keyword", ValueType::kString},
       Field{"fileID", ValueType::kUint64},
       Field{"fulltext", ValueType::kString}},
      kIcKeyword);
  return *kSchema;
}

}  // namespace pierstack::piersearch
