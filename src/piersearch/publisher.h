// Publisher: builds and publishes the inverted-file tuples for shared
// files (paper Section 3.1 and Figure 1's Publisher component).
//
// For each file it emits one Item tuple keyed by fileID plus one Inverted
// tuple per unique keyword (or InvertedCache tuples, which redundantly
// carry the filename so searches resolve at a single site — Figure 3).
#pragma once

#include <string>
#include <vector>

#include "pier/node.h"

namespace pierstack::piersearch {

/// What index structures to publish for each file.
struct PublishOptions {
  bool inverted = true;        ///< Inverted(keyword, fileID) tuples.
  bool inverted_cache = false; ///< InvertedCache(keyword, fileID, fulltext).
  sim::SimTime expiry = 0;     ///< Soft-state lifetime (0 = permanent).
};

/// Per-publisher counters (the Section 7 per-file bandwidth analysis).
struct PublisherStats {
  uint64_t files_published = 0;
  uint64_t tuples_published = 0;
  uint64_t tuple_bytes = 0;  ///< Application-level bytes across all tuples.
};

/// One file handed to the batch publisher.
struct FileToPublish {
  std::string filename;
  uint64_t size_bytes = 0;
  uint32_t address = 0;  ///< Host actually sharing the file.
  uint16_t port = 6346;
};

class Publisher {
 public:
  explicit Publisher(pier::PierNode* pier) : pier_(pier) {}

  /// Publishes one file: the Item tuple plus its keyword index entries.
  /// `address`/`port` locate the host actually sharing the file (a leaf,
  /// in the hybrid deployment). Returns the fileID.
  uint64_t PublishFile(const std::string& filename, uint64_t size_bytes,
                       uint32_t address, uint16_t port,
                       const PublishOptions& options);

  /// Publishes a whole library at once with per-destination rehash
  /// coalescing: all Inverted tuples sharing a keyword travel in one
  /// PutBatch message (PierNode::PublishBatch) instead of one routed
  /// message each. Returns the fileIDs, index-aligned with `files`.
  std::vector<uint64_t> PublishFiles(const std::vector<FileToPublish>& files,
                                     const PublishOptions& options);

  const PublisherStats& stats() const { return stats_; }

 private:
  pier::PierNode* pier_;
  PublisherStats stats_;
};

}  // namespace pierstack::piersearch
