#include "piersearch/publisher.h"

#include "common/hashing.h"
#include "common/tokenizer.h"
#include "piersearch/schemas.h"

namespace pierstack::piersearch {

using pier::Tuple;
using pier::Value;

uint64_t Publisher::PublishFile(const std::string& filename,
                                uint64_t size_bytes, uint32_t address,
                                uint16_t port,
                                const PublishOptions& options) {
  return PublishFiles({FileToPublish{filename, size_bytes, address, port}},
                      options)[0];
}

std::vector<uint64_t> Publisher::PublishFiles(
    const std::vector<FileToPublish>& files, const PublishOptions& options) {
  std::vector<uint64_t> ids;
  ids.reserve(files.size());
  std::vector<Tuple> items, inverted, cached;
  items.reserve(files.size());

  for (const FileToPublish& f : files) {
    uint64_t file_id = FileId(f.filename, f.size_bytes, f.address);
    ids.push_back(file_id);
    ++stats_.files_published;
    // Share one filename payload across the Item tuple and every
    // InvertedCache tuple of this file.
    Value filename = Value(f.filename);
    items.push_back(Tuple({Value(file_id), filename, Value(f.size_bytes),
                           Value(uint64_t{f.address}),
                           Value(uint64_t{f.port})}));
    for (const auto& kw : ExtractUniqueKeywords(f.filename)) {
      if (options.inverted) {
        inverted.push_back(Tuple({Value(kw), Value(file_id)}));
      }
      if (options.inverted_cache) {
        cached.push_back(Tuple({Value(kw), Value(file_id), filename}));
      }
    }
  }

  auto publish = [&](const pier::Schema& schema, std::vector<Tuple> tuples) {
    if (tuples.empty()) return;
    for (const Tuple& t : tuples) stats_.tuple_bytes += t.WireSize();
    stats_.tuples_published += tuples.size();
    pier_->PublishBatch(schema, std::move(tuples), options.expiry);
  };
  publish(ItemSchema(), std::move(items));
  publish(InvertedSchema(), std::move(inverted));
  publish(InvertedCacheSchema(), std::move(cached));
  return ids;
}

}  // namespace pierstack::piersearch
