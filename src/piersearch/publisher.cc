#include "piersearch/publisher.h"

#include "common/hashing.h"
#include "common/tokenizer.h"
#include "piersearch/schemas.h"

namespace pierstack::piersearch {

using pier::Tuple;
using pier::Value;

uint64_t Publisher::PublishFile(const std::string& filename,
                                uint64_t size_bytes, uint32_t address,
                                uint16_t port,
                                const PublishOptions& options) {
  uint64_t file_id = FileId(filename, size_bytes, address);
  ++stats_.files_published;

  auto publish = [&](const pier::Schema& schema, Tuple t) {
    stats_.tuple_bytes += t.WireSize();
    ++stats_.tuples_published;
    pier_->Publish(schema, std::move(t), options.expiry);
  };

  publish(ItemSchema(),
          Tuple({Value(file_id), Value(filename), Value(size_bytes),
                 Value(uint64_t{address}), Value(uint64_t{port})}));

  for (const auto& kw : ExtractUniqueKeywords(filename)) {
    if (options.inverted) {
      publish(InvertedSchema(), Tuple({Value(kw), Value(file_id)}));
    }
    if (options.inverted_cache) {
      publish(InvertedCacheSchema(),
              Tuple({Value(kw), Value(file_id), Value(filename)}));
    }
  }
  return file_id;
}

}  // namespace pierstack::piersearch
