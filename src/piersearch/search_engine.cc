#include "piersearch/search_engine.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/tokenizer.h"
#include "piersearch/schemas.h"

namespace pierstack::piersearch {

using pier::Expr;
using pier::PlanBuilder;
using pier::QueryPlan;
using pier::Tuple;
using pier::Value;

QueryPlan BuildDistributedJoinPlan(const std::vector<std::string>& terms,
                                   const SearchOptions& options) {
  // Figure 2: one IndexScan per keyword chained with RehashJoins on the
  // fileID attribute, then the final Item join and the answer cap.
  PlanBuilder b;
  b.IndexScan(InvertedSchema().table_name(), Value(terms[0]), kInvKeyword,
              kInvFileId);
  for (size_t i = 1; i < terms.size(); ++i) {
    b.RehashJoin(InvertedSchema().table_name(), Value(terms[i]), kInvKeyword,
                 kInvFileId);
  }
  if (options.fetch_items) {
    b.FetchJoin(ItemSchema().table_name(), kItemFileId);
  }
  b.Limit(options.max_results);
  return b.Build();
}

QueryPlan BuildInvertedCachePlan(const std::vector<std::string>& terms,
                                 const SearchOptions& options) {
  // Figure 3: the whole query runs at a single node hosting one term; the
  // remaining terms push down as a substring filter over the cached
  // fulltext, and (fileID, fulltext) travel back as the entry payload.
  PlanBuilder b;
  b.IndexScan(InvertedCacheSchema().table_name(), Value(terms[0]),
              kIcKeyword, kIcFileId);
  if (terms.size() > 1) {
    std::vector<Expr> conjuncts;
    conjuncts.reserve(terms.size() - 1);
    for (size_t i = 1; i < terms.size(); ++i) {
      conjuncts.push_back(
          Expr::Contains(Expr::Column(kIcFulltext), terms[i]));
    }
    b.Filter(Expr::And(std::move(conjuncts)));
  }
  b.Project({kIcFileId, kIcFulltext});
  if (options.fetch_items) {
    b.FetchJoin(ItemSchema().table_name(), kItemFileId);
  }
  b.Limit(options.max_results);
  return b.Build();
}

QueryPlan BuildSearchPlan(const std::vector<std::string>& terms,
                          const SearchOptions& options) {
  return options.strategy == SearchStrategy::kInvertedCache
             ? BuildInvertedCachePlan(terms, options)
             : BuildDistributedJoinPlan(terms, options);
}

void SearchEngine::Search(const std::string& query_text,
                          const SearchOptions& options,
                          SearchCallback callback) {
  std::vector<std::string> terms = ExtractUniqueKeywords(query_text);
  if (terms.empty()) {
    callback(Status::InvalidArgument("no indexable terms in query"), {},
             pier::Completeness{});
    return;
  }
  ++searches_started_;
  QueryPlan plan = BuildSearchPlan(terms, options);
  if (!options.order_by_posting_size || terms.size() == 1) {
    RunPlan(std::move(plan), options, std::move(callback));
    return;
  }
  // Optimizer probes: learn each candidate key's posting size, then run
  // the "smaller posting lists first" rewrite pass over the plan (paper:
  // "optimized to compute smaller posting lists first").
  auto targets = pier::CollectProbeTargets(plan);
  if (targets.empty()) {
    RunPlan(std::move(plan), options, std::move(callback));
    return;
  }
  struct ProbeState {
    size_t remaining;
    QueryPlan plan;
    std::map<std::pair<std::string, Value>, size_t> sizes;
  };
  auto state = std::make_shared<ProbeState>();
  state->remaining = targets.size();
  state->plan = std::move(plan);
  for (const auto& [ns, key] : targets) {
    pier_->ProbePostingSize(
        ns, key,
        [this, state, ns = ns, key = key, options,
         callback](Status s, size_t size) mutable {
          // A failed probe sorts last, exactly like the pre-plan path.
          state->sizes[{ns, key}] = s.ok() ? size : SIZE_MAX;
          if (--state->remaining > 0) return;
          pier::ReorderByPostingSize(
              &state->plan,
              [&state](const std::string& pns, const Value& pkey) {
                auto it = state->sizes.find({pns, pkey});
                return it == state->sizes.end() ? SIZE_MAX : it->second;
              });
          RunPlan(std::move(state->plan), options, std::move(callback));
        });
  }
}

void SearchEngine::RunPlan(QueryPlan plan, const SearchOptions& options,
                           SearchCallback callback) {
  if (options.plan_rewrite) options.plan_rewrite(&plan);
  bool fetched = options.fetch_items;
  pier_->ExecutePlan(
      std::move(plan),
      [fetched, callback = std::move(callback)](
          Status s, std::vector<Tuple> rows,
          const pier::Completeness& completeness) mutable {
        // A timed-out or shed query still delivers whatever rows the plan
        // materialized — the completeness record labels the shortfall, so
        // no early-return that would zero out a partial answer.
        std::vector<SearchHit> hits;
        hits.reserve(rows.size());
        for (const Tuple& t : rows) {
          SearchHit h;
          if (fetched) {
            // Item tuples out of the plan's FetchJoin.
            if (t.arity() < 5) continue;
            h.file_id = t.at(kItemFileId).AsUint64();
            h.filename = std::string(t.at(kItemFilename).AsString());
            h.size_bytes = t.at(kItemFilesize).AsUint64();
            h.address = static_cast<uint32_t>(t.at(kItemAddress).AsUint64());
            h.port = static_cast<uint16_t>(t.at(kItemPort).AsUint64());
          } else {
            // Entry rows [fileID, payload...]; the InvertedCache payload
            // carries the fulltext (= filename) at column 2.
            if (t.arity() < 1 ||
                t.at(0).type() != pier::ValueType::kUint64) {
              continue;
            }
            h.file_id = t.at(0).AsUint64();
            if (t.arity() >= 3 && t.at(2).is_string()) {
              h.filename = std::string(t.at(2).AsString());
            }
          }
          hits.push_back(std::move(h));
        }
        callback(std::move(s), std::move(hits), completeness);
      },
      options.timeout);
}

void SearchEngine::FetchItems(std::vector<uint64_t> file_ids,
                              const SearchOptions& options,
                              SearchCallback callback) {
  // Dedupe before truncating: duplicate join keys must not push distinct
  // results past the max_results cut.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> unique;
  unique.reserve(file_ids.size());
  for (uint64_t id : file_ids) {
    if (seen.insert(id).second) unique.push_back(id);
  }
  if (unique.size() > options.max_results) {
    unique.resize(options.max_results);
  }
  if (unique.empty()) {
    callback(Status::OK(), {}, pier::Completeness{});
    return;
  }
  std::vector<Value> keys;
  keys.reserve(unique.size());
  for (uint64_t id : unique) keys.emplace_back(Value(id));
  // The fetch leg honors the query deadline: without this watchdog only
  // the join leg was timeout-bounded and a dead Item owner could hang the
  // query indefinitely.
  sim::Executor* simulator = pier_->dht()->network()->executor();
  auto done = std::make_shared<bool>(false);
  auto shared_cb =
      std::make_shared<SearchCallback>(std::move(callback));
  sim::EventId watchdog = simulator->ScheduleAfter(
      pier_->dht()->host(), options.timeout, [done, shared_cb]() {
        if (*done) return;
        *done = true;
        pier::Completeness c;
        c.exact = false;
        c.coverage_fraction = 0.0;
        (*shared_cb)(Status::TimedOut("item fetch"), {}, c);
      });
  pier_->FetchMany(
      ItemSchema(), std::move(keys),
      [simulator, done, shared_cb, watchdog](
          Status s, std::vector<Tuple> tuples,
          const pier::Completeness& completeness) {
        if (*done) return;  // the watchdog already failed the query
        *done = true;
        simulator->Cancel(watchdog);
        // Best-effort like the per-id loop this replaced: a slow or dead
        // owner must not zero out the hits the other owners delivered —
        // FetchMany hands over whatever arrived, and the completeness
        // record labels the shortfall.
        (void)s;
        std::vector<SearchHit> hits;
        hits.reserve(tuples.size());
        for (const auto& t : tuples) {
          if (t.arity() < 5) continue;
          SearchHit h;
          h.file_id = t.at(kItemFileId).AsUint64();
          h.filename = std::string(t.at(kItemFilename).AsString());
          h.size_bytes = t.at(kItemFilesize).AsUint64();
          h.address = static_cast<uint32_t>(t.at(kItemAddress).AsUint64());
          h.port = static_cast<uint16_t>(t.at(kItemPort).AsUint64());
          hits.push_back(std::move(h));
        }
        (*shared_cb)(Status::OK(), std::move(hits), completeness);
      });
}

}  // namespace pierstack::piersearch
