#include "piersearch/search_engine.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/tokenizer.h"
#include "piersearch/schemas.h"

namespace pierstack::piersearch {

using pier::DistributedJoin;
using pier::JoinResultEntry;
using pier::JoinStage;
using pier::Tuple;
using pier::Value;

void SearchEngine::Search(const std::string& query_text,
                          const SearchOptions& options,
                          SearchCallback callback) {
  std::vector<std::string> terms = ExtractUniqueKeywords(query_text);
  if (terms.empty()) {
    callback(Status::InvalidArgument("no indexable terms in query"), {});
    return;
  }
  ++searches_started_;
  if (!options.order_by_posting_size || terms.size() == 1) {
    RunPlan(std::move(terms), options, std::move(callback));
    return;
  }
  // Optimizer probe: learn each keyword's posting size, then order the
  // chain smallest-first (paper: "optimized to compute smaller posting
  // lists first").
  const std::string& ns = options.strategy == SearchStrategy::kInvertedCache
                              ? InvertedCacheSchema().table_name()
                              : InvertedSchema().table_name();
  struct ProbeState {
    size_t remaining;
    std::vector<std::pair<size_t, std::string>> sized;  // (size, term)
  };
  auto state = std::make_shared<ProbeState>();
  state->remaining = terms.size();
  for (const auto& term : terms) {
    pier_->ProbePostingSize(
        ns, Value(term),
        [this, state, term, options, callback](Status s, size_t size) mutable {
          state->sized.emplace_back(s.ok() ? size : SIZE_MAX, term);
          if (--state->remaining > 0) return;
          std::stable_sort(state->sized.begin(), state->sized.end(),
                           [](const auto& a, const auto& b) {
                             return a.first < b.first;
                           });
          std::vector<std::string> ordered;
          ordered.reserve(state->sized.size());
          for (auto& [sz, t] : state->sized) ordered.push_back(std::move(t));
          RunPlan(std::move(ordered), options, std::move(callback));
        });
  }
}

void SearchEngine::RunPlan(std::vector<std::string> terms,
                           const SearchOptions& options,
                           SearchCallback callback) {
  DistributedJoin join;
  join.limit = options.max_results;
  if (options.strategy == SearchStrategy::kInvertedCache) {
    // Single-site plan: all terms but the routing one become substring
    // selections over the cached fulltext.
    JoinStage stage;
    stage.ns = InvertedCacheSchema().table_name();
    stage.key = Value(terms[0]);
    stage.key_col = kIcKeyword;
    stage.join_col = kIcFileId;
    stage.payload_cols = {kIcFileId, kIcFulltext};
    stage.filter_col = kIcFulltext;
    stage.substring_filter.assign(terms.begin() + 1, terms.end());
    join.stages.push_back(std::move(stage));
  } else {
    for (const auto& term : terms) {
      JoinStage stage;
      stage.ns = InvertedSchema().table_name();
      stage.key = Value(term);
      stage.key_col = kInvKeyword;
      stage.join_col = kInvFileId;
      join.stages.push_back(std::move(stage));
    }
  }
  pier_->ExecuteJoin(
      std::move(join),
      [this, options, callback = std::move(callback)](
          Status s, std::vector<JoinResultEntry> entries) mutable {
        OnJoinDone(options, std::move(callback), s, std::move(entries));
      },
      options.timeout);
}

void SearchEngine::OnJoinDone(const SearchOptions& options,
                              SearchCallback callback, Status status,
                              std::vector<JoinResultEntry> entries) {
  if (!status.ok()) {
    callback(status, {});
    return;
  }
  if (!options.fetch_items) {
    std::vector<SearchHit> hits;
    hits.reserve(entries.size());
    for (const auto& e : entries) {
      SearchHit h;
      h.file_id = e.join_key.AsUint64();
      if (e.payload.arity() >= 2 && e.payload.at(1).is_string()) {
        h.filename = e.payload.at(1).AsString();
      }
      hits.push_back(std::move(h));
    }
    callback(Status::OK(), std::move(hits));
    return;
  }
  std::vector<uint64_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) ids.push_back(e.join_key.AsUint64());
  FetchItems(std::move(ids), options, std::move(callback));
}

void SearchEngine::FetchItems(std::vector<uint64_t> file_ids,
                              const SearchOptions& options,
                              SearchCallback callback) {
  // Dedupe before truncating: duplicate join keys must not push distinct
  // results past the max_results cut.
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> unique;
  unique.reserve(file_ids.size());
  for (uint64_t id : file_ids) {
    if (seen.insert(id).second) unique.push_back(id);
  }
  if (unique.size() > options.max_results) {
    unique.resize(options.max_results);
  }
  if (unique.empty()) {
    callback(Status::OK(), {});
    return;
  }
  std::vector<Value> keys;
  keys.reserve(unique.size());
  for (uint64_t id : unique) keys.emplace_back(Value(id));
  pier_->FetchMany(
      ItemSchema(), std::move(keys),
      [callback = std::move(callback)](Status s, std::vector<Tuple> tuples) {
        // Best-effort like the per-id loop this replaced: a slow or dead
        // owner must not zero out the hits the other owners delivered —
        // FetchMany hands over whatever arrived alongside the error.
        (void)s;
        std::vector<SearchHit> hits;
        hits.reserve(tuples.size());
        for (const auto& t : tuples) {
          if (t.arity() < 5) continue;
          SearchHit h;
          h.file_id = t.at(kItemFileId).AsUint64();
          h.filename = std::string(t.at(kItemFilename).AsString());
          h.size_bytes = t.at(kItemFilesize).AsUint64();
          h.address = static_cast<uint32_t>(t.at(kItemAddress).AsUint64());
          h.port = static_cast<uint16_t>(t.at(kItemPort).AsUint64());
          hits.push_back(std::move(h));
        }
        callback(Status::OK(), std::move(hits));
      });
}

}  // namespace pierstack::piersearch
