// PIERSearch table schemas (paper Section 3.1):
//
//   Item(fileID, filename, filesize, ipAddress, port)      — keyed by fileID
//   Inverted(keyword, fileID)                              — keyed by keyword
//   InvertedCache(keyword, fileID, fulltext)               — keyed by keyword
#pragma once

#include "pier/schema.h"

namespace pierstack::piersearch {

/// Column indices of the Item table.
enum ItemCol : size_t {
  kItemFileId = 0,
  kItemFilename = 1,
  kItemFilesize = 2,
  kItemAddress = 3,
  kItemPort = 4,
};

/// Column indices of the Inverted table.
enum InvertedCol : size_t {
  kInvKeyword = 0,
  kInvFileId = 1,
};

/// Column indices of the InvertedCache table.
enum InvertedCacheCol : size_t {
  kIcKeyword = 0,
  kIcFileId = 1,
  kIcFulltext = 2,
};

const pier::Schema& ItemSchema();
const pier::Schema& InvertedSchema();
const pier::Schema& InvertedCacheSchema();

}  // namespace pierstack::piersearch
