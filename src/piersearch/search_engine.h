// SearchEngine: PIERSearch's query side (Figure 1's Search Engine).
//
// Two strategies (paper Section 3.2):
//  * kDistributedJoin — the Figure 2 plan: ship posting lists along the
//    chain of keyword owners, symmetric-hash-joining at each hop, then
//    fetch Item tuples for the surviving fileIDs.
//  * kInvertedCache  — the Figure 3 plan: send the whole query to a single
//    node hosting one of the terms; remaining terms are applied there as
//    substring selections over the cached fulltext.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pier/node.h"

namespace pierstack::piersearch {

enum class SearchStrategy {
  kDistributedJoin,
  kInvertedCache,
};

/// One search answer (a decorated Item tuple).
struct SearchHit {
  uint64_t file_id = 0;
  std::string filename;
  uint64_t size_bytes = 0;
  uint32_t address = 0;  ///< Sharing host (sim::HostId in this build).
  uint16_t port = 0;
};

struct SearchOptions {
  SearchStrategy strategy = SearchStrategy::kDistributedJoin;
  /// Probe posting-list sizes first and visit keywords smallest-first (the
  /// paper's SHJ optimization; also picks the cheapest single site for the
  /// InvertedCache plan instead of the first term).
  bool order_by_posting_size = false;
  /// Fetch full Item tuples for matches (the plans' final join). Off, the
  /// engine returns fileIDs only (filename present only with
  /// InvertedCache's fulltext).
  bool fetch_items = true;
  size_t max_results = 200;
  sim::SimTime timeout = 30 * sim::kSecond;
};

class SearchEngine {
 public:
  using SearchCallback =
      std::function<void(Status, std::vector<SearchHit>)>;

  explicit SearchEngine(pier::PierNode* pier) : pier_(pier) {}

  /// Runs a keyword search for `query_text` (tokenized and stop-word
  /// filtered like the Publisher side). Fails fast with InvalidArgument if
  /// no indexable terms remain.
  void Search(const std::string& query_text, const SearchOptions& options,
              SearchCallback callback);

  uint64_t searches_started() const { return searches_started_; }

  /// Resolves fileIDs to full Item hits — the plans' final join. The ids
  /// are de-duplicated (duplicate join keys must not evict distinct
  /// results when truncating to max_results), capped, and fetched with one
  /// owner-coalesced FetchMany: K distinct Item owners cost K routed get
  /// messages instead of one round-trip per id.
  void FetchItems(std::vector<uint64_t> file_ids,
                  const SearchOptions& options, SearchCallback callback);

 private:
  void RunPlan(std::vector<std::string> terms, const SearchOptions& options,
               SearchCallback callback);
  void OnJoinDone(const SearchOptions& options, SearchCallback callback,
                  Status status,
                  std::vector<pier::JoinResultEntry> entries);

  pier::PierNode* pier_;
  uint64_t searches_started_ = 0;
};

}  // namespace pierstack::piersearch
