// SearchEngine: PIERSearch's query side (Figure 1's Search Engine).
//
// Both strategies (paper Section 3.2) are *compiled into declarative query
// plans* (pier/plan.h) and executed through PierNode::ExecutePlan:
//  * kDistributedJoin — the Figure 2 plan: an IndexScan/RehashJoin chain
//    along the keyword owners, symmetric-hash-joining at each hop, ending
//    in a FetchJoin that resolves Item tuples for the surviving fileIDs.
//  * kInvertedCache  — the Figure 3 plan: one IndexScan at a single node
//    hosting one of the terms, the remaining terms pushed down as a
//    serializable Contains filter over the cached fulltext.
// The paper's "smaller posting lists first" optimization runs as a plan
// rewrite (pier::ReorderByPostingSize) fed by posting-size probes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <vector>

#include "pier/node.h"
#include "pier/plan.h"

namespace pierstack::piersearch {

enum class SearchStrategy {
  kDistributedJoin,
  kInvertedCache,
};

/// One search answer (a decorated Item tuple).
struct SearchHit {
  uint64_t file_id = 0;
  std::string filename;
  uint64_t size_bytes = 0;
  uint32_t address = 0;  ///< Sharing host (sim::HostId in this build).
  uint16_t port = 0;
};

struct SearchOptions {
  SearchStrategy strategy = SearchStrategy::kDistributedJoin;
  /// Probe posting-list sizes first and rewrite the plan smallest-first
  /// (the paper's SHJ optimization; also picks the cheapest single site
  /// for the InvertedCache plan instead of the first term).
  bool order_by_posting_size = false;
  /// Fetch full Item tuples for matches (the plans' final FetchJoin). Off,
  /// the engine returns fileIDs only (filename present only with
  /// InvertedCache's fulltext).
  bool fetch_items = true;
  size_t max_results = 200;
  sim::SimTime timeout = 30 * sim::kSecond;
  /// Applied to the compiled plan right before execution (after any
  /// posting-size rewrite) — the hook deployments use to reshape queries
  /// without a new strategy enum (e.g. HybridConfig::plan_rewrite grafts
  /// TopK or tighter limits onto reissued queries).
  std::function<void(pier::QueryPlan*)> plan_rewrite;
};

/// Compiles `terms` into the strategy's query plan — the plan constructors
/// that replaced the hardwired ExecuteJoin call paths. Exposed for tests,
/// benches, and deployments that want to rewrite the plan before running
/// it through PierNode::ExecutePlan.
pier::QueryPlan BuildDistributedJoinPlan(
    const std::vector<std::string>& terms, const SearchOptions& options);
pier::QueryPlan BuildInvertedCachePlan(
    const std::vector<std::string>& terms, const SearchOptions& options);
pier::QueryPlan BuildSearchPlan(const std::vector<std::string>& terms,
                                const SearchOptions& options);

class SearchEngine {
 public:
  /// Search results carry the query's pier::Completeness record: a crash,
  /// straggler, or shed plan mid-query yields a PARTIAL hit list, and the
  /// record says so (and why) instead of the answer silently shrinking.
  /// Legacy two-argument callables keep compiling through the template
  /// adapters below.
  using SearchCallback = std::function<void(
      Status, std::vector<SearchHit>, const pier::Completeness&)>;

  explicit SearchEngine(pier::PierNode* pier) : pier_(pier) {}

  /// Runs a keyword search for `query_text` (tokenized and stop-word
  /// filtered like the Publisher side). Fails fast with InvalidArgument if
  /// no indexable terms remain.
  void Search(const std::string& query_text, const SearchOptions& options,
              SearchCallback callback);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<SearchHit>>,
                int> = 0>
  void Search(const std::string& query_text, const SearchOptions& options,
              F callback) {
    Search(query_text, options,
           SearchCallback([cb = std::move(callback)](
                              Status s, std::vector<SearchHit> hits,
                              const pier::Completeness&) mutable {
             cb(std::move(s), std::move(hits));
           }));
  }

  uint64_t searches_started() const { return searches_started_; }

  /// Runs an already-built plan with the engine's hit mapping — the
  /// escape hatch for plan shapes the strategy enum cannot express.
  void RunPlan(pier::QueryPlan plan, const SearchOptions& options,
               SearchCallback callback);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<SearchHit>>,
                int> = 0>
  void RunPlan(pier::QueryPlan plan, const SearchOptions& options,
               F callback) {
    RunPlan(std::move(plan), options,
            SearchCallback([cb = std::move(callback)](
                               Status s, std::vector<SearchHit> hits,
                               const pier::Completeness&) mutable {
              cb(std::move(s), std::move(hits));
            }));
  }

  /// Resolves fileIDs to full Item hits — the plans' final join. The ids
  /// are de-duplicated (duplicate join keys must not evict distinct
  /// results when truncating to max_results), capped, and fetched with one
  /// owner-coalesced FetchMany: K distinct Item owners cost K routed get
  /// messages instead of one round-trip per id. The fetch leg is bounded
  /// by `options.timeout` — a dead Item owner resolves the query with
  /// whatever hits arrived, labeled partial, instead of hanging it past
  /// its deadline.
  void FetchItems(std::vector<uint64_t> file_ids,
                  const SearchOptions& options, SearchCallback callback);

  template <typename F,
            std::enable_if_t<
                std::is_invocable_v<F&, Status, std::vector<SearchHit>>,
                int> = 0>
  void FetchItems(std::vector<uint64_t> file_ids,
                  const SearchOptions& options, F callback) {
    FetchItems(std::move(file_ids), options,
               SearchCallback([cb = std::move(callback)](
                                  Status s, std::vector<SearchHit> hits,
                                  const pier::Completeness&) mutable {
                 cb(std::move(s), std::move(hits));
               }));
  }

 private:
  pier::PierNode* pier_;
  uint64_t searches_started_ = 0;
};

}  // namespace pierstack::piersearch
