#include "common/hashing.h"

#include <array>

namespace pierstack {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Fnv1a64Seeded(std::string_view data, uint64_t seed) {
  uint64_t h = kFnvOffset ^ Mix64(seed);
  for (unsigned char c : data) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (Mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

uint64_t FileId(std::string_view filename, uint64_t size_bytes,
                uint32_t owner_address) {
  uint64_t h = Fnv1a64(filename);
  h = HashCombine(h, size_bytes);
  h = HashCombine(h, owner_address);
  return h;
}

std::string HashToHex(uint64_t h) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace pierstack
