#include "common/bytes.h"

#include <cstring>

namespace pierstack {

void BytesWriter::PutU8(uint8_t v) { buf_.push_back(v); }

void BytesWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void BytesWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back((v >> (8 * i)) & 0xff);
}

void BytesWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BytesWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BytesWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutBytes(s.data(), s.size());
}

void BytesWriter::PutBytes(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + len);
}

Result<uint8_t> BytesReader::GetU8() {
  if (pos_ + 1 > size_) return Status::Corruption("u8 underflow");
  return data_[pos_++];
}

Result<uint32_t> BytesReader::GetU32() {
  if (pos_ + 4 > size_) return Status::Corruption("u32 underflow");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> BytesReader::GetU64() {
  if (pos_ + 8 > size_) return Status::Corruption("u64 underflow");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> BytesReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("varint underflow");
    if (shift >= 64) return Status::Corruption("varint overlong");
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return v;
}

Result<double> BytesReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

Result<std::string> BytesReader::GetString() {
  auto v = GetStringView();
  if (!v.ok()) return v.status();
  return std::string(v.value());
}

Result<std::string_view> BytesReader::GetStringView() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  if (len.value() > size_ - pos_) {
    return Status::Corruption("string underflow");
  }
  std::string_view s(reinterpret_cast<const char*>(data_ + pos_),
                     static_cast<size_t>(len.value()));
  pos_ += static_cast<size_t>(len.value());
  return s;
}

size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace pierstack
