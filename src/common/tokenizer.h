// Filename tokenization for keyword indexing, as used by PIERSearch's
// Publisher and the Gnutella query matcher.
//
// Mirrors Section 3.1 of the paper: keywords are the terms of the filename;
// stop-words such as "mp3" and "the" are dropped.
#pragma once

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace pierstack {

/// Returns the default stop-word set (articles, filesharing noise terms and
/// common file extensions such as "mp3", "avi").
const std::unordered_set<std::string>& DefaultStopWords();

/// Splits `text` on non-alphanumeric characters and lower-cases the parts.
/// Empty tokens are dropped; no stop-word filtering.
std::vector<std::string> SplitTerms(std::string_view text);

/// Tokenizes a filename into index keywords: SplitTerms minus stop-words and
/// minus terms shorter than `min_len` characters. Duplicates are preserved
/// (callers that need a set dedupe themselves).
std::vector<std::string> ExtractKeywords(std::string_view filename,
                                         size_t min_len = 2);

/// Deduplicated ExtractKeywords, preserving first-occurrence order.
std::vector<std::string> ExtractUniqueKeywords(std::string_view filename,
                                               size_t min_len = 2);

/// True if every query term (tokenized with SplitTerms) occurs as a
/// substring of the lower-cased filename. This is Gnutella's match rule and
/// also the filter applied by the InvertedCache plan (Figure 3).
bool FilenameMatchesQuery(std::string_view filename,
                          const std::vector<std::string>& query_terms);

/// Lower-cases ASCII in place and returns the argument for chaining.
std::string ToLowerAscii(std::string_view s);

/// Adjacent ordered term pairs of a filename's keyword list, concatenated
/// with a '\x1f' separator — the unit the TPF rare-item scheme counts.
std::vector<std::string> AdjacentTermPairs(
    const std::vector<std::string>& terms);

}  // namespace pierstack
