// Skewed discrete distributions used by the workload generator:
//  * ZipfSampler      — rank-based Zipf over {0..n-1}, P(k) ∝ 1/(k+1)^alpha
//  * PowerLawSampler  — power-law values in [lo, hi], P(v) ∝ v^-alpha;
//                       models the long-tailed file replication counts the
//                       Gnutella study observed (many singletons, few hot
//                       items).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pierstack {

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^alpha.
///
/// Uses a precomputed inverse-CDF table: O(n) setup, O(log n) sampling.
/// Good for vocabularies and popularity ranks up to a few million entries.
class ZipfSampler {
 public:
  /// n >= 1, alpha >= 0 (alpha == 0 degenerates to uniform).
  ZipfSampler(size_t n, double alpha);

  /// Draws one rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of `rank`.
  double Pmf(size_t rank) const;

  size_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  size_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

/// Samples integer values v in [lo, hi] with P(v) ∝ v^-alpha.
///
/// With alpha ≈ 2.2–2.6 and lo = 1 this yields the "long tail" replica
/// distribution: a large fraction of distinct files have exactly one copy,
/// while a handful have thousands.
class PowerLawSampler {
 public:
  /// Requires 1 <= lo <= hi, alpha > 0.
  PowerLawSampler(uint64_t lo, uint64_t hi, double alpha);

  uint64_t Sample(Rng* rng) const;

  double Pmf(uint64_t value) const;

  /// Expected value of the distribution.
  double Mean() const;

 private:
  uint64_t lo_;
  uint64_t hi_;
  double alpha_;
  std::vector<double> cdf_;    // over values lo..hi
  double mean_ = 0.0;
};

}  // namespace pierstack
