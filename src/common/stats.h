// Descriptive statistics used by the measurement benches: running
// summaries, percentiles, empirical CDFs and log-scale histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pierstack {

/// Drop-in counter field safe for concurrent bumps from shard threads
/// (sim/shard.h). Increments are relaxed atomics: totals are exact once
/// the shards reach a barrier, and no ordering is implied between
/// counters. Implicit conversion keeps existing `uint64_t` readers and
/// arithmetic working unchanged; copies snapshot the current value, so
/// metrics structs made of RelaxedCounters stay copyable.
class RelaxedCounter {
 public:
  RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit by design
  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return value(); }  // NOLINT: implicit by design
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  uint64_t operator++(int) {
    return v_.fetch_add(1, std::memory_order_relaxed);
  }
  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator-=(uint64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> v_;
};

/// Running maximum safe for concurrent updates (CAS loop, relaxed).
class RelaxedMax {
 public:
  RelaxedMax(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit by design
  RelaxedMax(const RelaxedMax& o) : v_(o.value()) {}
  RelaxedMax& operator=(const RelaxedMax& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedMax& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  operator uint64_t() const { return value(); }  // NOLINT: implicit by design
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  void Update(uint64_t x) {
    uint64_t cur = v_.load(std::memory_order_relaxed);
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<uint64_t> v_;
};

/// Accumulates samples; computes mean/min/max/stddev/percentiles on demand.
class Summary {
 public:
  void Add(double x);
  void AddN(double x, size_t n);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// p in [0,100]; nearest-rank percentile. Requires at least one sample.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Point on an empirical CDF: P(X <= x) = cum_fraction.
struct CdfPoint {
  double x;
  double cum_fraction;  // in [0, 1]
};

/// Builds the empirical CDF of `samples` evaluated at each distinct value.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples);

/// Fraction of samples <= threshold.
double FractionAtOrBelow(const std::vector<double>& samples, double threshold);

/// Histogram over logarithmically spaced buckets, for long-tailed data
/// (result-set sizes, replica counts).
class LogHistogram {
 public:
  /// Buckets: [0], [1], (1, b], (b, b^2], ... with the given base > 1.
  explicit LogHistogram(double base = 2.0);

  void Add(double x);

  struct Bucket {
    double lo;  // inclusive
    double hi;  // inclusive upper edge of the bucket
    size_t count;
  };
  /// Non-empty buckets in increasing order of lo.
  std::vector<Bucket> buckets() const;

  size_t total() const { return total_; }

 private:
  double base_;
  std::map<int, size_t> counts_;  // bucket index -> count
  size_t total_ = 0;
};

/// Groups (x, y) pairs by x and reports the mean y per distinct x,
/// sorted by x. Used for "Y vs X" scatter summaries like Figures 4 and 7.
std::vector<std::pair<double, double>> MeanByGroup(
    const std::vector<std::pair<double, double>>& xy);

/// Flat named-counter bag: the common currency for surfacing subsystem
/// counters (transport, DHT, PIER) to tests and reports without each layer
/// exporting its own metrics struct. Names are dotted, e.g.
/// "pier.adaptive_flushes".
///
/// Safe for concurrent Increment from shard worker threads (sim/shard.h):
/// each thread accumulates into its own slab behind a per-slab lock that
/// only an overlapping export can contend — the hot increment path never
/// touches the CounterSet-wide mutex after a thread's first touch. Slabs
/// are folded into the base map by Set/Value/Has/entries (the export-side
/// readers); totals are exact whenever the counting threads are at a shard
/// barrier or done — the only places exports happen.
class CounterSet {
 public:
  CounterSet();
  ~CounterSet();
  CounterSet(const CounterSet&) = delete;
  CounterSet& operator=(const CounterSet&) = delete;

  /// Sets `name` to `value` (overwrites, absorbing any pending slab deltas).
  void Set(const std::string& name, uint64_t value);

  /// Adds `delta` to `name` (creating it at 0 first). Thread-safe; lands in
  /// the calling thread's slab.
  void Increment(const std::string& name, uint64_t delta = 1);

  /// Value of `name`, or 0 if it was never set.
  uint64_t Value(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// All counters, sorted by name. The returned map is stable until the
  /// next mutating or merging call.
  const std::map<std::string, uint64_t>& entries() const;

 private:
  struct Slab;
  Slab* ThreadSlab();
  /// Folds every slab's deltas into entries_ and clears them. mu_ held.
  void MergeLocked() const;

  const uint64_t instance_id_;  ///< Key for the thread-local slab lookup.
  mutable std::mutex mu_;
  mutable std::map<std::string, uint64_t> entries_;
  mutable std::vector<std::unique_ptr<Slab>> slabs_;
};

}  // namespace pierstack
