// Descriptive statistics used by the measurement benches: running
// summaries, percentiles, empirical CDFs and log-scale histograms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pierstack {

/// Accumulates samples; computes mean/min/max/stddev/percentiles on demand.
class Summary {
 public:
  void Add(double x);
  void AddN(double x, size_t n);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// p in [0,100]; nearest-rank percentile. Requires at least one sample.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Point on an empirical CDF: P(X <= x) = cum_fraction.
struct CdfPoint {
  double x;
  double cum_fraction;  // in [0, 1]
};

/// Builds the empirical CDF of `samples` evaluated at each distinct value.
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples);

/// Fraction of samples <= threshold.
double FractionAtOrBelow(const std::vector<double>& samples, double threshold);

/// Histogram over logarithmically spaced buckets, for long-tailed data
/// (result-set sizes, replica counts).
class LogHistogram {
 public:
  /// Buckets: [0], [1], (1, b], (b, b^2], ... with the given base > 1.
  explicit LogHistogram(double base = 2.0);

  void Add(double x);

  struct Bucket {
    double lo;  // inclusive
    double hi;  // inclusive upper edge of the bucket
    size_t count;
  };
  /// Non-empty buckets in increasing order of lo.
  std::vector<Bucket> buckets() const;

  size_t total() const { return total_; }

 private:
  double base_;
  std::map<int, size_t> counts_;  // bucket index -> count
  size_t total_ = 0;
};

/// Groups (x, y) pairs by x and reports the mean y per distinct x,
/// sorted by x. Used for "Y vs X" scatter summaries like Figures 4 and 7.
std::vector<std::pair<double, double>> MeanByGroup(
    const std::vector<std::pair<double, double>>& xy);

/// Flat named-counter bag: the common currency for surfacing subsystem
/// counters (transport, DHT, PIER) to tests and reports without each layer
/// exporting its own metrics struct. Names are dotted, e.g.
/// "pier.adaptive_flushes".
class CounterSet {
 public:
  /// Sets `name` to `value` (overwrites).
  void Set(const std::string& name, uint64_t value);

  /// Adds `delta` to `name` (creating it at 0 first).
  void Increment(const std::string& name, uint64_t delta = 1);

  /// Value of `name`, or 0 if it was never set.
  uint64_t Value(const std::string& name) const;

  bool Has(const std::string& name) const;

  /// All counters, sorted by name.
  const std::map<std::string, uint64_t>& entries() const { return entries_; }

 private:
  std::map<std::string, uint64_t> entries_;
};

}  // namespace pierstack
