// Result<T>: value-or-Status, the library's fallible return type.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace pierstack {

/// Holds either a T or a non-OK Status.
///
/// Accessors assert on misuse (calling value() on an error), matching the
/// no-exceptions convention used throughout the library.
template <typename T>
class Result {
 public:
  /// Implicit from value — lets functions `return x;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error Status — lets functions `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define PIERSTACK_ASSIGN_OR_RETURN(lhs, expr)          \
  auto PIERSTACK_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!PIERSTACK_CONCAT_(_res_, __LINE__).ok())        \
    return PIERSTACK_CONCAT_(_res_, __LINE__).status();\
  lhs = std::move(PIERSTACK_CONCAT_(_res_, __LINE__)).value()

#define PIERSTACK_CONCAT_INNER_(a, b) a##b
#define PIERSTACK_CONCAT_(a, b) PIERSTACK_CONCAT_INNER_(a, b)

}  // namespace pierstack
