// Bloom filter over strings.
//
// Used by the Gnutella layer's QRP-style leaf publishing (the paper's
// footnote 2: "leaf nodes publish Bloom filters of the keywords in their
// files to ultrapeers ... Bloom filters reduce publishing and searching
// costs in Gnutella, but preclude substring and wildcard searching") and
// available to the TF scheme for compact term statistics (the paper cites
// compressed Bloom filters for that purpose).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pierstack {

/// Fixed-size Bloom filter with k derived hash functions.
class BloomFilter {
 public:
  /// `bits` is rounded up to a multiple of 64; `num_hashes` >= 1.
  BloomFilter(size_t bits, size_t num_hashes);

  /// Sizes a filter for `expected_items` at roughly `fp_rate` false
  /// positives (standard m = -n ln p / ln^2 2, k = m/n ln 2).
  static BloomFilter ForItems(size_t expected_items, double fp_rate);

  void Insert(std::string_view item);

  /// True if the item may have been inserted; false means definitely not.
  bool MayContain(std::string_view item) const;

  /// True iff every item may be contained (conjunctive keyword check).
  bool MayContainAll(const std::vector<std::string>& items) const;

  /// Serialized/wire size in bytes (the leaf-publish cost).
  size_t ByteSize() const { return words_.size() * 8 + 4; }

  size_t bit_count() const { return words_.size() * 64; }
  size_t num_hashes() const { return num_hashes_; }

  /// Fraction of bits set (diagnostic; load factor).
  double FillRatio() const;

  /// Merges another filter of identical geometry (bitwise or).
  void UnionWith(const BloomFilter& other);

 private:
  std::pair<uint64_t, uint64_t> BaseHashes(std::string_view item) const;

  size_t num_hashes_;
  std::vector<uint64_t> words_;
};

}  // namespace pierstack
