#include "common/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace pierstack {

const std::unordered_set<std::string>& DefaultStopWords() {
  static const std::unordered_set<std::string>* kStopWords =
      new std::unordered_set<std::string>{
          // articles / glue
          "the", "a", "an", "of", "and", "or", "to", "in", "for", "on",
          "by", "with", "at", "de", "la", "el",
          // filesharing noise terms the paper calls out
          "mp3", "avi", "mpg", "mpeg", "wav", "wma", "ogg", "mov", "wmv",
          "jpg", "jpeg", "gif", "png", "zip", "rar", "exe", "iso", "txt",
          "pdf", "cd", "dvd", "vol", "disc", "track", "feat", "ft",
          "remix", "version", "full",
      };
  return *kStopWords;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> SplitTerms(std::string_view text) {
  std::vector<std::string> terms;
  std::string current;
  for (unsigned char c : text) {
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      terms.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) terms.push_back(std::move(current));
  return terms;
}

std::vector<std::string> ExtractKeywords(std::string_view filename,
                                         size_t min_len) {
  std::vector<std::string> out;
  const auto& stop = DefaultStopWords();
  for (auto& t : SplitTerms(filename)) {
    if (t.size() < min_len) continue;
    if (stop.count(t)) continue;
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::string> ExtractUniqueKeywords(std::string_view filename,
                                               size_t min_len) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (auto& t : ExtractKeywords(filename, min_len)) {
    if (seen.insert(t).second) out.push_back(std::move(t));
  }
  return out;
}

bool FilenameMatchesQuery(std::string_view filename,
                          const std::vector<std::string>& query_terms) {
  std::string lower = ToLowerAscii(filename);
  for (const auto& term : query_terms) {
    if (lower.find(term) == std::string::npos) return false;
  }
  return true;
}

std::vector<std::string> AdjacentTermPairs(
    const std::vector<std::string>& terms) {
  std::vector<std::string> pairs;
  if (terms.size() < 2) return pairs;
  pairs.reserve(terms.size() - 1);
  for (size_t i = 0; i + 1 < terms.size(); ++i) {
    std::string p = terms[i];
    p.push_back('\x1f');
    p += terms[i + 1];
    pairs.push_back(std::move(p));
  }
  return pairs;
}

}  // namespace pierstack
