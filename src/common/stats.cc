#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pierstack {

void Summary::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::AddN(double x, size_t n) {
  for (size_t i = 0; i < n; ++i) Add(x);
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Summary::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double ss = 0.0;
  for (double x : samples_) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (samples_.size() == 1) return samples_[0];
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<CdfPoint> EmpiricalCdf(std::vector<double> samples) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  size_t n = samples.size();
  for (size_t i = 0; i < n; ++i) {
    // Collapse runs of equal values to their final cumulative fraction.
    if (i + 1 < n && samples[i + 1] == samples[i]) continue;
    cdf.push_back({samples[i], static_cast<double>(i + 1) /
                                   static_cast<double>(n)});
  }
  return cdf;
}

double FractionAtOrBelow(const std::vector<double>& samples,
                         double threshold) {
  if (samples.empty()) return 0.0;
  size_t c = 0;
  for (double x : samples) {
    if (x <= threshold) ++c;
  }
  return static_cast<double>(c) / static_cast<double>(samples.size());
}

LogHistogram::LogHistogram(double base) : base_(base) {
  assert(base > 1.0);
}

void LogHistogram::Add(double x) {
  int idx;
  if (x <= 0.0) {
    idx = -2;
  } else if (x <= 1.0) {
    idx = -1;
  } else {
    idx = static_cast<int>(std::ceil(std::log(x) / std::log(base_) - 1e-12));
  }
  ++counts_[idx];
  ++total_;
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  for (const auto& [idx, count] : counts_) {
    Bucket b;
    if (idx == -2) {
      b.lo = 0.0;
      b.hi = 0.0;
    } else if (idx == -1) {
      b.lo = 1.0;
      b.hi = 1.0;
    } else {
      b.lo = std::pow(base_, idx - 1);
      b.hi = std::pow(base_, idx);
    }
    b.count = count;
    out.push_back(b);
  }
  return out;
}

std::vector<std::pair<double, double>> MeanByGroup(
    const std::vector<std::pair<double, double>>& xy) {
  std::map<double, std::pair<double, size_t>> groups;
  for (const auto& [x, y] : xy) {
    auto& [sum, n] = groups[x];
    sum += y;
    ++n;
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(groups.size());
  for (const auto& [x, acc] : groups) {
    out.emplace_back(x, acc.first / static_cast<double>(acc.second));
  }
  return out;
}

// One thread's private delta accumulator. The slab mutex is only ever
// contended when an export-side merge overlaps the owner's increments, so
// the hot path pays an uncontended lock, never the CounterSet-wide mu_.
struct CounterSet::Slab {
  std::mutex mu;
  std::map<std::string, uint64_t> deltas;
};

namespace {
// (instance id → slab) for the current thread. Keyed by a process-unique
// id rather than the CounterSet address so a recycled allocation can never
// alias a dead set's slab.
thread_local std::map<uint64_t, void*> tls_slabs;
std::atomic<uint64_t> next_counter_set_id{1};
}  // namespace

CounterSet::CounterSet()
    : instance_id_(
          next_counter_set_id.fetch_add(1, std::memory_order_relaxed)) {}

CounterSet::~CounterSet() = default;

CounterSet::Slab* CounterSet::ThreadSlab() {
  auto it = tls_slabs.find(instance_id_);
  if (it != tls_slabs.end()) return static_cast<Slab*>(it->second);
  auto slab = std::make_unique<Slab>();
  Slab* raw = slab.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    slabs_.push_back(std::move(slab));
  }
  tls_slabs[instance_id_] = raw;
  return raw;
}

void CounterSet::MergeLocked() const {
  for (const auto& slab : slabs_) {
    std::lock_guard<std::mutex> slab_lock(slab->mu);
    for (auto& [name, delta] : slab->deltas) {
      if (delta == 0) continue;
      entries_[name] += delta;
      delta = 0;
    }
  }
}

void CounterSet::Set(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked();
  entries_[name] = value;
}

void CounterSet::Increment(const std::string& name, uint64_t delta) {
  Slab* slab = ThreadSlab();
  std::lock_guard<std::mutex> lock(slab->mu);
  slab->deltas[name] += delta;
}

uint64_t CounterSet::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked();
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second;
}

bool CounterSet::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked();
  return entries_.count(name) > 0;
}

const std::map<std::string, uint64_t>& CounterSet::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  MergeLocked();
  return entries_;
}

}  // namespace pierstack
