// Compact binary serialization: BytesWriter / BytesReader.
//
// Used by PIER's tuple serializer and by the simulator to charge realistic
// wire sizes to every message. Integers are varint-encoded; strings are
// length-prefixed. The format is deterministic so byte counts are stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace pierstack {

/// Appends primitives to a growing byte buffer.
class BytesWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);   // fixed-width little endian
  void PutU64(uint64_t v);   // fixed-width little endian
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);  // varint length + bytes
  void PutBytes(const void* data, size_t len);

  /// Pre-grows the buffer for `n` further bytes of writes.
  void Reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  const std::vector<uint8_t>& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads primitives back; every getter returns Corruption on underflow.
class BytesReader {
 public:
  explicit BytesReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}
  BytesReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<uint64_t> GetVarint();
  Result<double> GetDouble();
  Result<std::string> GetString();
  /// Zero-copy string read: the view aliases the underlying buffer and is
  /// only valid for the buffer's lifetime.
  Result<std::string_view> GetStringView();

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Number of bytes PutVarint(v) would emit.
size_t VarintSize(uint64_t v);

}  // namespace pierstack
