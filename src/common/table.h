// Fixed-width text table printer for bench output.
//
// Every figure-reproduction bench prints its series through TablePrinter so
// EXPERIMENTS.md rows can be pasted directly from bench output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pierstack {

/// Collects rows of strings and renders an aligned table to a FILE*.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Renders to `out` (default stdout) with column alignment.
  void Print(std::FILE* out = stdout) const;

  /// Renders as CSV (no alignment, comma-separated, header first).
  void PrintCsv(std::FILE* out) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string FormatF(double v, int decimals = 2);
std::string FormatI(long long v);
std::string FormatPct(double fraction, int decimals = 1);  // 0.42 -> "42.0%"

}  // namespace pierstack
