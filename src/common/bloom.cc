#include "common/bloom.h"

#include <cassert>
#include <cmath>

#include "common/hashing.h"

namespace pierstack {

BloomFilter::BloomFilter(size_t bits, size_t num_hashes)
    : num_hashes_(num_hashes) {
  assert(num_hashes >= 1);
  size_t words = (bits + 63) / 64;
  if (words == 0) words = 1;
  words_.assign(words, 0);
}

BloomFilter BloomFilter::ForItems(size_t expected_items, double fp_rate) {
  assert(fp_rate > 0 && fp_rate < 1);
  if (expected_items == 0) expected_items = 1;
  double n = static_cast<double>(expected_items);
  double ln2 = std::log(2.0);
  double m = -n * std::log(fp_rate) / (ln2 * ln2);
  double k = std::max(1.0, std::round(m / n * ln2));
  return BloomFilter(static_cast<size_t>(m) + 1, static_cast<size_t>(k));
}

std::pair<uint64_t, uint64_t> BloomFilter::BaseHashes(
    std::string_view item) const {
  uint64_t h1 = Fnv1a64(item);
  uint64_t h2 = Mix64(h1) | 1;  // odd so double hashing cycles all slots
  return {h1, h2};
}

void BloomFilter::Insert(std::string_view item) {
  auto [h1, h2] = BaseHashes(item);
  size_t bits = words_.size() * 64;
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % bits;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MayContain(std::string_view item) const {
  auto [h1, h2] = BaseHashes(item);
  size_t bits = words_.size() * 64;
  for (size_t i = 0; i < num_hashes_; ++i) {
    uint64_t bit = (h1 + i * h2) % bits;
    if (!(words_[bit >> 6] & (uint64_t{1} << (bit & 63)))) return false;
  }
  return true;
}

bool BloomFilter::MayContainAll(const std::vector<std::string>& items) const {
  for (const auto& item : items) {
    if (!MayContain(item)) return false;
  }
  return true;
}

double BloomFilter::FillRatio() const {
  size_t set = 0;
  for (uint64_t w : words_) set += static_cast<size_t>(__builtin_popcountll(w));
  return static_cast<double>(set) / static_cast<double>(words_.size() * 64);
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  assert(words_.size() == other.words_.size());
  assert(num_hashes_ == other.num_hashes_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace pierstack
