#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <unordered_set>

#include "common/hashing.h"

namespace pierstack {

namespace {
inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 seeding, per the xoshiro authors' recommendation.
  uint64_t z = seed;
  for (auto& s : s_) {
    z += 0x9e3779b97f4a7c15ULL;
    s = Mix64(z);
  }
  // xoshiro must not be seeded with all zeros.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return cached_gauss_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_gauss_ = v * f;
  have_gauss_ = true;
  return u * f;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  std::vector<size_t> out;
  out.reserve(k);
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  // Floyd's algorithm.
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextBelow(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace pierstack
