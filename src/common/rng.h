// Seeded pseudo-random number generation (xoshiro256**).
//
// Deliberately not <random>'s engines: xoshiro is faster, and keeping the
// implementation in-tree guarantees bit-identical streams across platforms,
// which the reproducibility tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pierstack {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's method.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0).
  double NextExponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices uniformly from [0, n) (k <= n).
  /// Floyd's algorithm; O(k) expected time, output unsorted.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; stable given call order.
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace pierstack
