// Status: lightweight error propagation for fallible operations.
//
// Follows the RocksDB/Arrow convention: library code on fallible paths
// returns Status (or Result<T>, see result.h) instead of throwing.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace pierstack {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,   // transient: node down, route failed
  kTimedOut,
  kCorruption,    // malformed wire data
  kInternal,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A Status is either OK or carries an error code plus message.
///
/// Cheap to copy in the OK case; error construction allocates for the
/// message only.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK Status to the caller.
#define PIERSTACK_RETURN_IF_ERROR(expr)            \
  do {                                             \
    ::pierstack::Status _st = (expr);              \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace pierstack
