#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pierstack {

ZipfSampler::ZipfSampler(size_t n, double alpha) : n_(n), alpha_(alpha) {
  assert(n >= 1);
  assert(alpha >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against FP drift
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t rank) const {
  assert(rank < n_);
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

PowerLawSampler::PowerLawSampler(uint64_t lo, uint64_t hi, double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha) {
  assert(lo >= 1);
  assert(hi >= lo);
  assert(alpha > 0.0);
  size_t n = static_cast<size_t>(hi - lo + 1);
  cdf_.resize(n);
  double total = 0.0;
  double weighted = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double v = static_cast<double>(lo + i);
    double p = std::pow(v, -alpha);
    total += p;
    weighted += v * p;
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
  mean_ = weighted / total;
}

uint64_t PowerLawSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  size_t idx = (it == cdf_.end()) ? cdf_.size() - 1
                                  : static_cast<size_t>(it - cdf_.begin());
  return lo_ + idx;
}

double PowerLawSampler::Pmf(uint64_t value) const {
  assert(value >= lo_ && value <= hi_);
  size_t idx = static_cast<size_t>(value - lo_);
  if (idx == 0) return cdf_[0];
  return cdf_[idx] - cdf_[idx - 1];
}

double PowerLawSampler::Mean() const { return mean_; }

}  // namespace pierstack
