// Chord-style routing state: successor list, predecessor and finger table.
//
// Follows Stoica et al. (SIGCOMM'01): node n owns keys in (predecessor, n];
// finger[i] is the first node clockwise of n + 2^i; lookups forward to the
// closest preceding finger, giving O(log N) hops.
//
// The table exposes mutators (SetPredecessor, OfferSuccessor, SetFinger,
// RemovePeer) used by DhtNode's join/stabilization protocol.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "dht/routing.h"

namespace pierstack::dht {

class ChordRouting : public RoutingTable {
 public:
  static constexpr size_t kNumFingers = 64;
  static constexpr size_t kDefaultSuccessorListSize = 8;

  explicit ChordRouting(NodeInfo self,
                        size_t successor_list_size = kDefaultSuccessorListSize);

  NodeInfo self() const override { return self_; }
  void BuildStatic(const std::vector<NodeInfo>& sorted_members) override;
  bool IsOwner(Key target) const override;
  NodeInfo NextHop(Key target) const override;
  /// Fingers and successors strictly inside (self, target): every one of
  /// them strictly shrinks the clockwise distance to the target, so any
  /// choice among them terminates.
  void AppendProgressCandidates(Key target,
                                std::vector<NodeInfo>* out) const override;
  Key RouteDistance(Key peer_id, Key target) const override {
    return ClockwiseDistance(peer_id, target);
  }
  std::vector<NodeInfo> ReplicaTargets(size_t k) const override;
  void RemovePeer(sim::HostId host) override;
  std::vector<NodeInfo> KnownPeers() const override;

  /// Immediate successor (self if the ring is a singleton).
  NodeInfo successor() const;
  const std::vector<NodeInfo>& successor_list() const { return successors_; }
  NodeInfo predecessor() const { return predecessor_; }

  /// Fires after any mutation that actually CHANGED ownership-relevant
  /// state. `ownership_changed`: the predecessor or primary successor
  /// moved — this node's owned arc (or its view of the ring neighborhood)
  /// shifted, a membership epoch boundary. `replica_set_changed`: the
  /// watched successor prefix (set_replica_watch) changed membership —
  /// the replica set needs an anti-entropy round even when the arc and
  /// primary successor held still. Steady-state refreshes that rewrite
  /// identical state fire nothing.
  using MembershipListener =
      std::function<void(bool ownership_changed, bool replica_set_changed)>;
  void set_membership_listener(MembershipListener listener) {
    listener_ = std::move(listener);
  }
  /// How many leading successors the replica-set-change signal watches
  /// (replication - 1 in DhtNode; 0 disables the signal).
  void set_replica_watch(size_t k) { replica_watch_ = k; }

  /// Overwrites the predecessor pointer.
  void SetPredecessor(NodeInfo p);
  void ClearPredecessor() { SetPredecessor(NodeInfo{}); }

  /// Considers `candidate` as a new immediate successor; adopts it if it
  /// falls in (self, current successor). Returns true if adopted.
  bool OfferSuccessor(NodeInfo candidate);

  /// Replaces the successor list wholesale (from a stabilize reply:
  /// [successor] + successor's own list, truncated).
  void SetSuccessorList(std::vector<NodeInfo> list);

  /// Drops the current head of the successor list (failure suspected).
  /// Returns false if the list would become empty (singleton fallback).
  bool DropPrimarySuccessor();

  void SetFinger(size_t i, NodeInfo n);
  NodeInfo finger(size_t i) const { return fingers_[i]; }

  /// The finger table start key for slot i: self + 2^i.
  Key FingerStart(size_t i) const {
    return self_.id + (Key{1} << i);
  }

 private:
  /// The ownership-relevant state fingerprint taken around every mutation;
  /// comparing before/after drives the membership listener.
  struct MembershipSnapshot {
    sim::HostId predecessor = kInvalidHostSentinel;
    sim::HostId primary_successor = kInvalidHostSentinel;
    std::vector<sim::HostId> replica_prefix;
  };
  static constexpr sim::HostId kInvalidHostSentinel = UINT32_MAX;

  MembershipSnapshot TakeSnapshot() const;
  /// Compares the post-mutation state to `before` and fires the listener
  /// on a real change.
  void NotifyIfChanged(const MembershipSnapshot& before);

  NodeInfo self_;
  size_t successor_list_size_;
  NodeInfo predecessor_;
  std::vector<NodeInfo> successors_;           // ordered clockwise from self
  std::array<NodeInfo, kNumFingers> fingers_;  // may contain invalid entries
  MembershipListener listener_;
  size_t replica_watch_ = 0;
};

}  // namespace pierstack::dht
