#include "dht/chord.h"

#include <algorithm>
#include <cassert>

namespace pierstack::dht {

ChordRouting::ChordRouting(NodeInfo self, size_t successor_list_size)
    : self_(self), successor_list_size_(successor_list_size) {
  assert(successor_list_size >= 1);
}

ChordRouting::MembershipSnapshot ChordRouting::TakeSnapshot() const {
  MembershipSnapshot s;
  if (predecessor_.valid()) s.predecessor = predecessor_.host;
  if (!successors_.empty()) s.primary_successor = successors_.front().host;
  for (size_t i = 0; i < replica_watch_ && i < successors_.size(); ++i) {
    s.replica_prefix.push_back(successors_[i].host);
  }
  return s;
}

void ChordRouting::NotifyIfChanged(const MembershipSnapshot& before) {
  if (!listener_) return;
  MembershipSnapshot after = TakeSnapshot();
  bool ownership = after.predecessor != before.predecessor ||
                   after.primary_successor != before.primary_successor;
  bool replicas = after.replica_prefix != before.replica_prefix;
  if (ownership || replicas) listener_(ownership, replicas);
}

void ChordRouting::BuildStatic(const std::vector<NodeInfo>& sorted) {
  assert(!sorted.empty());
  MembershipSnapshot before = TakeSnapshot();
  // Locate self in the sorted ring.
  size_t n = sorted.size();
  size_t my_pos = n;
  for (size_t i = 0; i < n; ++i) {
    if (sorted[i].host == self_.host) {
      my_pos = i;
      break;
    }
  }
  assert(my_pos < n && "self must be a member");

  for (const auto& m : sorted) ForgetRememberedPeer(m.host);
  predecessor_ = sorted[(my_pos + n - 1) % n];
  successors_.clear();
  for (size_t i = 1; i <= successor_list_size_ && i < n + 1; ++i) {
    NodeInfo s = sorted[(my_pos + i) % n];
    if (s.host == self_.host) break;  // wrapped all the way around
    successors_.push_back(s);
  }

  // finger[i] = first node clockwise of self + 2^i.
  for (size_t i = 0; i < kNumFingers; ++i) {
    Key start = FingerStart(i);
    // Binary search over the sorted ring for the first id >= start,
    // wrapping to sorted[0].
    auto it = std::lower_bound(
        sorted.begin(), sorted.end(), start,
        [](const NodeInfo& a, Key k) { return a.id < k; });
    NodeInfo f = (it == sorted.end()) ? sorted.front() : *it;
    fingers_[i] = f;
  }
  NotifyIfChanged(before);
}

void ChordRouting::SetPredecessor(NodeInfo p) {
  MembershipSnapshot before = TakeSnapshot();
  if (p.valid()) ForgetRememberedPeer(p.host);
  predecessor_ = p;
  NotifyIfChanged(before);
}

bool ChordRouting::IsOwner(Key target) const {
  if (successors_.empty()) return true;  // singleton ring
  if (!predecessor_.valid()) {
    // Predecessor unknown (mid-join). Claim ownership only for keys in
    // (largest-known-peer, self] to stay conservative.
    return false;
  }
  return InOpenClosed(predecessor_.id, self_.id, target);
}

NodeInfo ChordRouting::successor() const {
  return successors_.empty() ? self_ : successors_.front();
}

NodeInfo ChordRouting::NextHop(Key target) const {
  if (successors_.empty()) return self_;
  if (IsOwner(target)) return self_;
  NodeInfo succ = successors_.front();
  // Key in (self, successor]: the successor owns it.
  if (InOpenClosed(self_.id, succ.id, target)) return succ;
  // Closest preceding node among fingers and successor list.
  NodeInfo best = succ;
  Key best_dist = ClockwiseDistance(best.id, target);
  auto consider = [&](const NodeInfo& cand) {
    if (!cand.valid() || cand.host == self_.host) return;
    if (!InOpenOpen(self_.id, target, cand.id)) return;
    Key d = ClockwiseDistance(cand.id, target);
    if (d < best_dist) {
      best = cand;
      best_dist = d;
    }
  };
  for (const auto& f : fingers_) consider(f);
  for (const auto& s : successors_) consider(s);
  return best;
}

void ChordRouting::AppendProgressCandidates(Key target,
                                            std::vector<NodeInfo>* out) const {
  auto consider = [&](const NodeInfo& cand) {
    if (!cand.valid() || cand.host == self_.host) return;
    if (!InOpenOpen(self_.id, target, cand.id)) return;
    out->push_back(cand);
  };
  for (const auto& f : fingers_) consider(f);
  for (const auto& s : successors_) consider(s);
}

std::vector<NodeInfo> ChordRouting::ReplicaTargets(size_t k) const {
  std::vector<NodeInfo> out;
  for (const auto& s : successors_) {
    if (out.size() >= k) break;
    if (s.host == self_.host) continue;
    out.push_back(s);
  }
  return out;
}

void ChordRouting::RemovePeer(sim::HostId host) {
  MembershipSnapshot before = TakeSnapshot();
  // Capture the evicted peer's identity before clearing it: it may be on
  // the far side of a partition, and the remembered set is the only thread
  // back to it once every table slot is gone.
  if (predecessor_.valid() && predecessor_.host == host) {
    Remember(predecessor_);
    predecessor_ = NodeInfo{};
  }
  for (const auto& s : successors_) {
    if (s.host == host) {
      Remember(s);
      break;
    }
  }
  for (const auto& f : fingers_) {
    if (f.valid() && f.host == host) {
      Remember(f);
      break;
    }
  }
  successors_.erase(
      std::remove_if(successors_.begin(), successors_.end(),
                     [&](const NodeInfo& n) { return n.host == host; }),
      successors_.end());
  for (auto& f : fingers_) {
    if (f.valid() && f.host == host) f = NodeInfo{};
  }
  NotifyIfChanged(before);
}

std::vector<NodeInfo> ChordRouting::KnownPeers() const {
  std::vector<NodeInfo> out;
  auto add = [&](const NodeInfo& n) {
    if (!n.valid() || n.host == self_.host) return;
    for (const auto& e : out) {
      if (e.host == n.host) return;
    }
    out.push_back(n);
  };
  if (predecessor_.valid()) add(predecessor_);
  for (const auto& s : successors_) add(s);
  for (const auto& f : fingers_) add(f);
  return out;
}

bool ChordRouting::OfferSuccessor(NodeInfo candidate) {
  if (!candidate.valid() || candidate.host == self_.host) return false;
  ForgetRememberedPeer(candidate.host);
  MembershipSnapshot before = TakeSnapshot();
  if (successors_.empty()) {
    successors_.push_back(candidate);
    NotifyIfChanged(before);
    return true;
  }
  NodeInfo cur = successors_.front();
  if (InOpenOpen(self_.id, cur.id, candidate.id)) {
    successors_.insert(successors_.begin(), candidate);
    if (successors_.size() > successor_list_size_) successors_.pop_back();
    NotifyIfChanged(before);
    return true;
  }
  return false;
}

void ChordRouting::SetSuccessorList(std::vector<NodeInfo> list) {
  // Drop self-references and truncate.
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const NodeInfo& n) {
                              return !n.valid() || n.host == self_.host;
                            }),
             list.end());
  if (list.size() > successor_list_size_) list.resize(successor_list_size_);
  if (list.empty()) return;
  for (const auto& n : list) ForgetRememberedPeer(n.host);
  MembershipSnapshot before = TakeSnapshot();
  successors_ = std::move(list);
  NotifyIfChanged(before);
}

bool ChordRouting::DropPrimarySuccessor() {
  if (successors_.empty()) return false;
  MembershipSnapshot before = TakeSnapshot();
  successors_.erase(successors_.begin());
  NotifyIfChanged(before);
  return !successors_.empty();
}

void ChordRouting::SetFinger(size_t i, NodeInfo n) {
  assert(i < kNumFingers);
  if (n.valid()) ForgetRememberedPeer(n.host);
  fingers_[i] = n;
}

}  // namespace pierstack::dht
