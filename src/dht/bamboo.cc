#include "dht/bamboo.h"

#include <algorithm>
#include <cassert>

namespace pierstack::dht {

BambooRouting::BambooRouting(NodeInfo self, size_t leaf_set_half)
    : self_(self), leaf_set_half_(leaf_set_half) {
  assert(leaf_set_half >= 1);
}

int BambooRouting::DigitAt(Key k, int row) {
  int shift = 64 - kBitsPerDigit * (row + 1);
  return static_cast<int>((k >> shift) & ((1u << kBitsPerDigit) - 1));
}

int BambooRouting::SharedPrefixDigits(Key a, Key b) {
  for (int row = 0; row < kNumRows; ++row) {
    if (DigitAt(a, row) != DigitAt(b, row)) return row;
  }
  return kNumRows;
}

void BambooRouting::BuildStatic(const std::vector<NodeInfo>& sorted) {
  assert(!sorted.empty());
  size_t n = sorted.size();
  size_t my_pos = n;
  for (size_t i = 0; i < n; ++i) {
    if (sorted[i].host == self_.host) {
      my_pos = i;
      break;
    }
  }
  assert(my_pos < n && "self must be a member");

  for (const auto& m : sorted) ForgetRememberedPeer(m.host);
  leaves_cw_.clear();
  leaves_ccw_.clear();
  for (size_t i = 1; i <= leaf_set_half_ && i < n; ++i) {
    NodeInfo cw = sorted[(my_pos + i) % n];
    NodeInfo ccw = sorted[(my_pos + n - i) % n];
    if (cw.host != self_.host) leaves_cw_.push_back(cw);
    if (ccw.host != self_.host) leaves_ccw_.push_back(ccw);
  }

  // Routing table: for each (row, col), pick the member sharing `row`
  // digits with self and having digit `col` at position row. Prefer the
  // numerically closest such member (a proximity-neighbor-selection stand-
  // in; real Bamboo uses network latency).
  table_.fill(NodeInfo{});
  for (const auto& m : sorted) {
    if (m.host == self_.host) continue;
    int row = SharedPrefixDigits(self_.id, m.id);
    if (row >= kNumRows) continue;
    int col = DigitAt(m.id, row);
    size_t idx = static_cast<size_t>(row * kNumCols + col);
    if (!table_[idx].valid() ||
        RingDistance(m.id, self_.id) <
            RingDistance(table_[idx].id, self_.id)) {
      table_[idx] = m;
    }
  }
}

bool BambooRouting::IsOwner(Key target) const {
  // Owner = numerically closest node; ties broken toward the clockwise
  // neighbor (so exactly one node owns each key).
  Key mine = RingDistance(self_.id, target);
  auto beats_me = [&](const NodeInfo& peer) {
    Key theirs = RingDistance(peer.id, target);
    if (theirs < mine) return true;
    if (theirs == mine &&
        ClockwiseDistance(peer.id, target) <
            ClockwiseDistance(self_.id, target)) {
      return true;
    }
    return false;
  };
  for (const auto& p : leaves_cw_) {
    if (beats_me(p)) return false;
  }
  for (const auto& p : leaves_ccw_) {
    if (beats_me(p)) return false;
  }
  return true;
}

NodeInfo BambooRouting::NextHop(Key target) const {
  if (IsOwner(target)) return self_;

  // 1. Leaf set: if any leaf is numerically closer than self, and the key
  //    lies within the leaf-set span, jump straight to the closest leaf.
  NodeInfo best = self_;
  Key best_dist = RingDistance(self_.id, target);
  auto consider = [&](const NodeInfo& cand) {
    if (!cand.valid() || cand.host == self_.host) return;
    Key d = RingDistance(cand.id, target);
    if (d < best_dist || (d == best_dist && ClockwiseDistance(cand.id, target) <
                                                ClockwiseDistance(best.id, target))) {
      best = cand;
      best_dist = d;
    }
  };

  // 2. Prefix routing: the table entry that extends the shared prefix.
  int row = SharedPrefixDigits(self_.id, target);
  if (row < kNumRows) {
    NodeInfo entry = TableEntry(row, DigitAt(target, row));
    if (entry.valid()) return entry;
  }

  // 3. Fallback: the numerically closest known node (leaves + table) that
  //    improves on self. Guarantees progress on sparse tables.
  for (const auto& p : leaves_cw_) consider(p);
  for (const auto& p : leaves_ccw_) consider(p);
  for (const auto& e : table_) consider(e);
  return best;
}

void BambooRouting::AppendProgressCandidates(
    Key target, std::vector<NodeInfo>* out) const {
  Key mine = RingDistance(self_.id, target);
  int my_prefix = SharedPrefixDigits(self_.id, target);
  auto consider = [&](const NodeInfo& cand) {
    if (!cand.valid() || cand.host == self_.host) return;
    if (RingDistance(cand.id, target) >= mine) return;
    if (SharedPrefixDigits(cand.id, target) < my_prefix) return;
    out->push_back(cand);
  };
  for (const auto& p : leaves_cw_) consider(p);
  for (const auto& p : leaves_ccw_) consider(p);
  for (const auto& e : table_) consider(e);
}

std::vector<NodeInfo> BambooRouting::ReplicaTargets(size_t k) const {
  // Alternate cw/ccw leaves, nearest first — Bamboo replicates onto the
  // leaf set.
  std::vector<NodeInfo> out;
  size_t i = 0;
  while (out.size() < k &&
         (i < leaves_cw_.size() || i < leaves_ccw_.size())) {
    if (i < leaves_cw_.size()) out.push_back(leaves_cw_[i]);
    if (out.size() < k && i < leaves_ccw_.size()) {
      out.push_back(leaves_ccw_[i]);
    }
    ++i;
  }
  return out;
}

void BambooRouting::RemovePeer(sim::HostId host) {
  // Capture the evicted peer before dropping it — it may be partitioned,
  // not dead, and the remembered set is the reconnection thread.
  auto capture = [&](const NodeInfo& n) {
    if (n.valid() && n.host == host) Remember(n);
  };
  for (const auto& p : leaves_cw_) capture(p);
  for (const auto& p : leaves_ccw_) capture(p);
  for (const auto& e : table_) capture(e);
  auto drop = [&](std::vector<NodeInfo>* v) {
    v->erase(std::remove_if(v->begin(), v->end(),
                            [&](const NodeInfo& n) { return n.host == host; }),
             v->end());
  };
  drop(&leaves_cw_);
  drop(&leaves_ccw_);
  for (auto& e : table_) {
    if (e.valid() && e.host == host) e = NodeInfo{};
  }
}

std::vector<NodeInfo> BambooRouting::KnownPeers() const {
  std::vector<NodeInfo> out;
  auto add = [&](const NodeInfo& n) {
    if (!n.valid() || n.host == self_.host) return;
    for (const auto& e : out) {
      if (e.host == n.host) return;
    }
    out.push_back(n);
  };
  for (const auto& p : leaves_cw_) add(p);
  for (const auto& p : leaves_ccw_) add(p);
  for (const auto& e : table_) add(e);
  return out;
}

}  // namespace pierstack::dht
