// Bamboo/Pastry-style routing state: prefix routing table plus leaf set.
//
// Follows Rowstron & Druschel (Pastry) / Rhea et al. (Bamboo): keys are
// strings of 4-bit digits; the routing table holds, for each (row, digit),
// a node sharing `row` leading digits with self; the leaf set holds the
// closest nodes on either side of self on the ring. A key is owned by the
// node numerically closest to it (ring distance, ties broken clockwise).
#pragma once

#include <array>
#include <vector>

#include "dht/routing.h"

namespace pierstack::dht {

class BambooRouting : public RoutingTable {
 public:
  static constexpr int kBitsPerDigit = 4;
  static constexpr int kNumRows = 64 / kBitsPerDigit;  // 16
  static constexpr int kNumCols = 1 << kBitsPerDigit;  // 16
  static constexpr size_t kDefaultLeafSetHalf = 4;

  explicit BambooRouting(NodeInfo self,
                         size_t leaf_set_half = kDefaultLeafSetHalf);

  NodeInfo self() const override { return self_; }
  void BuildStatic(const std::vector<NodeInfo>& sorted_members) override;
  bool IsOwner(Key target) const override;
  NodeInfo NextHop(Key target) const override;
  /// Leaves and table entries that are strictly numerically closer to the
  /// target than self AND share at least as many leading digits with it.
  /// The prefix constraint keeps the (prefix-length, distance) potential
  /// lexicographically decreasing even when a policy mixes these detours
  /// with classic prefix-extending hops — so biased routing never loops.
  void AppendProgressCandidates(Key target,
                                std::vector<NodeInfo>* out) const override;
  Key RouteDistance(Key peer_id, Key target) const override {
    return RingDistance(peer_id, target);
  }
  std::vector<NodeInfo> ReplicaTargets(size_t k) const override;
  void RemovePeer(sim::HostId host) override;
  std::vector<NodeInfo> KnownPeers() const override;

  /// Digit d (0..15) of `k` at row `row` (row 0 = most significant).
  static int DigitAt(Key k, int row);

  /// Number of leading digits `a` and `b` share (0..16).
  static int SharedPrefixDigits(Key a, Key b);

  const std::vector<NodeInfo>& leaves_cw() const { return leaves_cw_; }
  const std::vector<NodeInfo>& leaves_ccw() const { return leaves_ccw_; }

 private:
  NodeInfo TableEntry(int row, int col) const {
    return table_[static_cast<size_t>(row * kNumCols + col)];
  }

  NodeInfo self_;
  size_t leaf_set_half_;
  std::vector<NodeInfo> leaves_cw_;   // nearest clockwise, ascending distance
  std::vector<NodeInfo> leaves_ccw_;  // nearest counter-clockwise
  std::array<NodeInfo, static_cast<size_t>(kNumRows* kNumCols)> table_;
};

}  // namespace pierstack::dht
