// Owner location cache: learned (key-arc → owner address) routing state.
//
// Every routed reply/ack carries an OwnerHint teaching the sender which
// node answered authoritatively and for which arc of the ring; deliveries
// with no reply teach through a tiny standalone hint message. Subsequent
// sends into a cached arc try a direct one-hop fast path first and fall
// back to ring routing on a miss or a stale entry, so steady-state query
// workloads (standing rehash queues, FetchMany scatters, join-stage chunk
// streams) converge to ~1-hop messaging — the learned-routing-state idea
// super-peer systems exploit, applied per node.
//
// Correctness never depends on the cache: a fast-path message is a normal
// routed message without the final-hop marker, so a stale receiver simply
// forwards it along the ring. Entries are invalidated by failed sends and
// peer removal (churn), superseded by newer hints, and cleared wholesale
// on membership epoch changes (static table rebuilds).
#pragma once

#include <cstdint>
#include <map>

#include "dht/id.h"

namespace pierstack::dht {

/// What an authoritative answerer teaches the route origin: `owner` covers
/// every key in (arc_start, arc_end] — its owned arc when it knows its
/// predecessor (Chord), else the degenerate single-key arc of the routed
/// target. Invalid hints (replica peels, unknown ownership) teach nothing.
struct OwnerHint {
  NodeInfo owner;
  Key arc_start = 0;
  Key arc_end = 0;
  bool valid = false;
};

/// Per-node learned owner map, keyed by arc end on the ring.
class RouteCache {
 public:
  explicit RouteCache(size_t capacity = 256) : capacity_(capacity) {}

  /// The cached owner whose arc contains `target`, or an invalid NodeInfo.
  NodeInfo Lookup(Key target) const;

  /// Learns a hint (insert or refresh). Returns true when it REPLACED an
  /// entry naming a different owner — the staleness signal.
  bool Teach(const OwnerHint& hint);

  /// Drops every arc owned by `host` (failed send / peer removal).
  void ForgetHost(sim::HostId host);

  /// Drops everything (membership epoch change).
  void Clear() { arcs_.clear(); }

  /// Fences the cache behind a new membership epoch and PURGES every entry
  /// taught under an older one, returning how many were dropped. An
  /// ownership flip (detector eviction, ring merge after a partition heal)
  /// invalidates arcs wholesale — hints learned across a since-healed split
  /// must not linger as tombstones that capacity-starve fresh arcs; the
  /// caller counts the purge into dht.route_cache_stale. The fast path
  /// falls back to ring routing until replies re-teach arcs under the new
  /// epoch.
  size_t FenceEpoch();
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return arcs_.size(); }

 private:
  struct Entry {
    Key arc_start = 0;
    NodeInfo owner;
    uint64_t seq = 0;    ///< Insertion order; oldest evicted at capacity.
    uint64_t epoch = 0;  ///< Membership epoch the entry was taught under.
  };

  /// arc end → entry. Lookup probes the first few arc ends clockwise of
  /// the target, which finds the covering arc among disjoint (live) arcs
  /// and tolerates stale exact-key entries layered inside a wider arc.
  std::map<Key, Entry> arcs_;
  size_t capacity_;
  uint64_t seq_ = 0;
  uint64_t epoch_ = 0;  ///< Current membership epoch; older entries fenced.
};

}  // namespace pierstack::dht
