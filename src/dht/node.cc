#include "dht/node.h"

#include <algorithm>
#include <cassert>

#include "common/bytes.h"
#include "dht/bamboo.h"
#include "dht/chord.h"

namespace pierstack::dht {

namespace {

/// Wire-size estimate for a NodeInfo (id + address).
constexpr size_t kNodeInfoBytes = 12;

std::unique_ptr<RoutingTable> MakeRouting(OverlayKind kind, NodeInfo self) {
  switch (kind) {
    case OverlayKind::kChord:
      return std::make_unique<ChordRouting>(self);
    case OverlayKind::kBamboo:
      return std::make_unique<BambooRouting>(self);
  }
  return nullptr;
}

}  // namespace

/// Wire-size estimate of an OwnerHint riding a reply (owner + arc + flag).
constexpr size_t kOwnerHintBytes = 29;

struct AckBody {
  uint64_t req_id;
  OwnerHint hint;
};

struct NotifyBody {
  NodeInfo candidate;
};

struct GetPredecessorBody {
  uint64_t seq;
};

struct LeaveBody {
  NodeInfo departing;
  std::vector<NodeInfo> successor_list;
  NodeInfo predecessor;
  bool to_predecessor;
};

struct ResyncDigestBody {
  std::string ns;
  std::vector<std::pair<Key, LocalStore::KeyDigest>> digests;
  /// The digested arc (arc_start, arc_end]. When set, the receiver also
  /// pushes back its own diverged entries INSIDE the arc — keys the sender
  /// has never heard of (written on the other side of a partition) carry
  /// no digest to mismatch, so without the arc bounds they would never
  /// flow back.
  bool arc_valid = false;
  Key arc_start = 0;
  Key arc_end = 0;
};

struct ResyncPullBody {
  std::string ns;
  std::vector<Key> keys;
};

/// Ring-merge probe/reply payload: the sender's identity and successor
/// view. Each side offers the other's successors to its own list; loopy
/// stabilization does the rest.
struct MergeBody {
  NodeInfo sender;
  std::vector<NodeInfo> successors;
};

DhtNode::DhtNode(sim::Network* network, Key id, const DhtOptions& options,
                 DhtMetrics* metrics)
    : network_(network), options_(options), metrics_(metrics),
      route_cache_(options.route_cache_capacity) {
  assert(network != nullptr);
  assert(metrics != nullptr);
  sim::HostId host = network->AddHost(this);
  routing_ = MakeRouting(options.overlay, NodeInfo{id, host});
  policy_ = MakeNextHopPolicy(options.routing_policy, options.congestion);
  load_probe_ = [this](sim::HostId h) { return network_->LoadOf(h); };
  if (ChordRouting* c = chord()) {
    c->set_replica_watch(
        options_.replication > 1 ? options_.replication - 1 : 0);
    c->set_membership_listener([this](bool ownership, bool replicas) {
      OnMembershipChange(ownership, replicas);
    });
  }
}

DhtNode::~DhtNode() = default;

ChordRouting* DhtNode::chord() const {
  return options_.overlay == OverlayKind::kChord
             ? static_cast<ChordRouting*>(routing_.get())
             : nullptr;
}

void DhtNode::BootstrapStatic(const std::vector<NodeInfo>& sorted_members) {
  routing_->BuildStatic(sorted_members);
  // A static rebuild is a membership epoch change: every learned arc may
  // name a superseded owner, so the cache restarts cold.
  route_cache_.Clear();
  bool was_joined = joined_;
  joined_ = true;
  if (options_.maintenance && !was_joined) StartMaintenanceTimers();
}

void DhtNode::JoinViaBootstrap(sim::HostId bootstrap) {
  assert(chord() != nullptr && "dynamic join implemented for Chord");
  RouteMsg m;
  m.target = id();
  m.origin = info();
  m.app_type = kAppJoinLookup;
  m.app_bytes = kNodeInfoBytes;
  // The joiner is not yet in the ring, so it cannot route; hand the lookup
  // to the bootstrap node, which forwards it like any other routed message.
  ++metrics_->routes_initiated;
  network_->Send(host(), bootstrap,
                 sim::Message::Make<RouteMsg>(
                     kRouteStep, "dht.route",
                     RouteHeaderBytes() + m.app_bytes, std::move(m)));
}

void DhtNode::LeaveGracefully() {
  if (!joined_ || crashed_) return;
  ChordRouting* c = chord();
  NodeInfo succ = c ? c->successor() : NodeInfo{};
  NodeInfo pred = c ? c->predecessor() : NodeInfo{};
  if (c && succ.valid() && succ.host != host()) {
    // Hand all stored state to the successor.
    KeyTransferBody transfer;
    size_t bytes = 16;
    for (const auto& ns : store_.Namespaces()) {
      for (auto& v : store_.ExtractAll(ns)) {
        bytes += ns.size() + v.value.size() + 17;
        transfer.entries.push_back({ns, std::move(v)});
      }
    }
    if (!transfer.entries.empty()) {
      SendDirect(succ.host,
                 sim::Message::Make<KeyTransferBody>(
                     kKeyTransfer, "dht.transfer", bytes, std::move(transfer)));
    }
    LeaveBody to_succ{info(), {}, pred, /*to_predecessor=*/false};
    SendDirect(succ.host, sim::Message::Make<LeaveBody>(
                              kLeave, "dht.maint",
                              16 + 2 * kNodeInfoBytes, std::move(to_succ)));
  }
  if (c && pred.valid() && pred.host != host()) {
    LeaveBody to_pred{info(), c->successor_list(), NodeInfo{},
                      /*to_predecessor=*/true};
    SendDirect(pred.host,
               sim::Message::Make<LeaveBody>(
                   kLeave, "dht.maint",
                   16 + kNodeInfoBytes * (1 + to_pred.successor_list.size()),
                   std::move(to_pred)));
  }
  joined_ = false;
  CancelMaintenanceTimers();
  CancelPendingRequests();
  network_->SetHostUp(host(), false);
}

void DhtNode::Crash() {
  // Snapshot the durable image before going dark: the local store, plus
  // the peer list (known + remembered) — what a real node's disk carries
  // across a power cycle. Restart(durable=true) consumes it; an amnesia
  // restart ignores it.
  durable_image_.valid = true;
  durable_image_.store = store_;
  durable_image_.peers = routing_->KnownPeers();
  for (const NodeInfo& r : routing_->RememberedPeers()) {
    bool seen = false;
    for (const NodeInfo& p : durable_image_.peers) {
      if (p.host == r.host) {
        seen = true;
        break;
      }
    }
    if (!seen) durable_image_.peers.push_back(r);
  }
  crashed_ = true;
  joined_ = false;
  // A dead host must never fire another event: cancel every maintenance
  // timer, the stabilize timeout, and all pending request watchdogs.
  // Leaving them armed would be harmless for correctness (handlers check
  // crashed_) but would make the event count — and thus every later
  // tie-broken random draw — depend on WHEN the crash happened, breaking
  // fixed-seed determinism across otherwise identical runs.
  CancelMaintenanceTimers();
  CancelPendingRequests();
  network_->SetHostUp(host(), false);
}

void DhtNode::Restart(sim::HostId bootstrap, bool durable) {
  if (!crashed_) return;
  NodeInfo self = info();  // the ORIGINAL identity: same ring key, same host
  crashed_ = false;
  joined_ = false;
  // Routing state is rebuilt from scratch: pointers frozen at crash time
  // are stale-dangerous after arbitrary downtime, and the ring has long
  // since repaired around this node. Identity is what persists.
  routing_ = MakeRouting(options_.overlay, self);
  if (ChordRouting* c = chord()) {
    c->set_replica_watch(
        options_.replication > 1 ? options_.replication - 1 : 0);
    c->set_membership_listener([this](bool ownership, bool replicas) {
      OnMembershipChange(ownership, replicas);
    });
  }
  route_cache_.Clear();
  resync_dirty_ = false;
  next_finger_ = 0;
  detector_finger_ = 0;
  reconcile_cursor_ = 0;
  if (durable && durable_image_.valid) {
    // Recover the disk: the store comes back as of the crash, so post-join
    // anti-entropy digests mostly match and only diverged entries cross
    // the wire. The crash-time peer list seeds the remembered set — the
    // reconnection threads a rebooted node starts from.
    store_ = durable_image_.store;
    for (const NodeInfo& p : durable_image_.peers) {
      if (p.host != self.host) routing_->RememberPeer(p);
    }
  } else {
    store_ = LocalStore{};
  }
  network_->SetHostUp(self.host, true);
  JoinViaBootstrap(bootstrap);
}

void DhtNode::CancelMaintenanceTimers() {
  sim::Executor* s = network_->executor();
  s->Cancel(stabilize_timer_);
  stabilize_timer_ = sim::kInvalidEventId;
  s->Cancel(fix_finger_timer_);
  fix_finger_timer_ = sim::kInvalidEventId;
  s->Cancel(detector_timer_);
  detector_timer_ = sim::kInvalidEventId;
  s->Cancel(resync_timer_);
  resync_timer_ = sim::kInvalidEventId;
  s->Cancel(reconcile_timer_);
  reconcile_timer_ = sim::kInvalidEventId;
  s->Cancel(stabilize_timeout_);
  stabilize_timeout_ = sim::kInvalidEventId;
}

void DhtNode::CancelPendingRequests() {
  sim::Executor* s = network_->executor();
  for (auto& [id, p] : pending_gets_) s->Cancel(p.timeout);
  pending_gets_.clear();
  for (auto& [id, p] : pending_batch_gets_) s->Cancel(p.timeout);
  pending_batch_gets_.clear();
  for (auto& [id, p] : pending_multi_gets_) s->Cancel(p.timeout);
  pending_multi_gets_.clear();
  for (auto& [id, p] : pending_lookups_) s->Cancel(p.timeout);
  pending_lookups_.clear();
  pending_puts_.clear();
  ping_outstanding_.clear();
}

void DhtNode::Route(Key target, int app_type,
                    std::shared_ptr<const void> body, size_t body_bytes,
                    uint64_t req_id) {
  RouteAs(info(), target, app_type, std::move(body), body_bytes, req_id);
}

void DhtNode::RouteAs(const NodeInfo& origin, Key target, int app_type,
                      std::shared_ptr<const void> body, size_t body_bytes,
                      uint64_t req_id) {
  if (crashed_) return;
  ++metrics_->routes_initiated;
  RouteMsg m;
  m.target = target;
  m.origin = origin;
  m.app_type = app_type;
  m.req_id = req_id;
  m.app_bytes = body_bytes;
  m.app_body = std::move(body);
  ForwardOrDeliver(std::move(m));
}

void DhtNode::ForwardOrDeliver(RouteMsg msg) {
  if (crashed_) return;
  if (msg.final_hop) {
    // The key's predecessor decided we own this key; accept even if our own
    // predecessor pointer is stale.
    DeliverLocally(msg);
    return;
  }
  // Replica-aware single-key reads: a read routing through a node that
  // already replicates (ns, key) is answered here instead of spending the
  // remaining hops to the owner — the single-key analogue of the MultiGet
  // peel. Gated on actually holding data: an empty store might be
  // replication lag, so the request continues to the owner for the
  // authoritative (possibly empty) answer.
  if ((msg.app_type == kAppGet || msg.app_type == kAppGetBatch) &&
      options_.replication > 1 && options_.replica_aware_reads &&
      joined_ && !routing_->IsOwner(msg.target)) {
    const auto& get = msg.body<GetBody>();
    if (store_.Has(get.ns, get.key, network_->executor()->now())) {
      ++metrics_->replica_peels;
      DeliverLocally(msg);
      return;
    }
  }
  // A replica-preferring MultiGet must travel the ring so the target's
  // predecessor can divert it to the owner's successor — a cached one-hop
  // send would land it straight on the (presumed slow) owner it is trying
  // to avoid.
  bool hedge_routed =
      msg.app_type == kAppGetMulti &&
      msg.body<MultiGetBody>().prefer_replica;
  // Origin-side owner cache: a learned arc covering the target turns the
  // whole ring walk into one direct hop (ring routing stays the fallback
  // on miss, stale entry, or refused send). Maintenance lookups keep the
  // real ring path — they exist to exercise and repair it.
  if (msg.hops == 0 && !hedge_routed && !routing_->IsOwner(msg.target) &&
      msg.app_type != kAppJoinLookup && msg.app_type != kAppFingerLookup &&
      OwnerCacheEnabled() && joined_) {
    if (TryCacheFastPath(msg)) return;
  }
  // Send failures act as a failure detector (TCP connect refused): drop the
  // dead peer from the tables and retry with the repaired state.
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (routing_->IsOwner(msg.target)) {
      DeliverLocally(msg);
      return;
    }
    NodeInfo next;
    bool final_hop = false;
    if (ChordRouting* c = chord()) {
      NodeInfo succ = c->successor();
      if (succ.valid() && succ.host != host() &&
          InOpenClosed(id(), succ.id, msg.target)) {
        // This node is the target key's predecessor — the hop that decides
        // the final delivery. A replica-preferring MultiGet is diverted
        // here to the owner's successor (which replicates the owner's arc)
        // instead of the owner itself; normal owner delivery is the
        // fallback when no live backup qualifies.
        if (hedge_routed) {
          const auto& get = msg.body<MultiGetBody>();
          if (!get.arc_valid && DivertMultiGetToReplica(msg, get)) return;
        }
        next = succ;
        final_hop = true;
      }
    }
    if (!next.valid()) {
      // Pluggable next-hop choice (dht/routing.h): the classic policy is
      // the table's distance-only pick; the congestion-aware policy may
      // detour around a backed-up hop, always within the progress set.
      NextHopChoice choice = policy_->Choose(*routing_, msg.target,
                                             load_probe_);
      if (choice.detour) ++metrics_->congestion_detours;
      next = choice.next;
      if (!next.valid() || next.host == host()) {
        DeliverLocally(msg);
        return;
      }
    }
    if (msg.hops >= options_.max_route_hops) {
      ++metrics_->routes_dropped;
      return;
    }
    RouteMsg out = msg;
    out.hops += 1;
    out.final_hop = final_hop;
    size_t bytes = RouteHeaderBytes() + out.app_bytes;
    if (network_->Send(host(), next.host,
                       sim::Message::Make<RouteMsg>(kRouteStep, "dht.route",
                                                    bytes, std::move(out)))) {
      return;
    }
    DropPeer(next.host);
  }
  ++metrics_->routes_dropped;
}

bool DhtNode::TryCacheFastPath(const RouteMsg& msg) {
  NodeInfo cached = route_cache_.Lookup(msg.target);
  if (!cached.valid() || cached.host == host()) {
    ++metrics_->route_cache_misses;
    return false;
  }
  RouteMsg out = msg;
  out.hops += 1;
  out.via_cache = true;
  // The saving is only provable if the prediction holds, so it is CLAIMED
  // here and COUNTED by the receiver on a hop-1 delivery.
  out.cache_skipped_hop = routing_->NextHop(msg.target).host != cached.host;
  size_t bytes = RouteHeaderBytes() + out.app_bytes;
  // NOT marked final_hop: if the entry is stale the receiver's own
  // ownership check fails and it forwards the message along the ring —
  // the fast path can mis-predict, never mis-deliver.
  if (network_->Send(host(), cached.host,
                     sim::Message::Make<RouteMsg>(kRouteStep, "dht.route",
                                                  bytes, std::move(out)))) {
    ++metrics_->route_cache_hits;  // a fast path actually taken
    return true;
  }
  // Connection refused: the remembered owner is gone. Invalidate and let
  // the caller ring-route with the repaired tables — for accounting this
  // send is a (stale-detecting) miss, not a hit.
  ++metrics_->route_cache_misses;
  ++metrics_->route_cache_stale;
  DropPeer(cached.host);
  return false;
}

void DhtNode::DeliverLocally(const RouteMsg& msg) {
  ++metrics_->routes_delivered;
  metrics_->total_hops += msg.hops;
  metrics_->max_hops.Update(msg.hops);
  if (msg.via_cache) {
    if (msg.hops == 1) {
      // The prediction held; the claimed skipped hop is now proven.
      if (msg.cache_skipped_hop) ++metrics_->hops_saved;
    } else {
      // Fast path landed on a stale-but-alive owner and had to continue
      // along the ring — a misprediction (the reply/hint re-teaches the
      // origin).
      ++metrics_->route_cache_stale;
    }
  }
  switch (msg.app_type) {
    case kAppPut:
      HandlePutUpcall(msg);
      return;
    case kAppPutBatch:
      HandlePutBatchUpcall(msg);
      return;
    case kAppGet:
      HandleGetUpcall(msg);
      return;
    case kAppGetBatch:
      HandleGetBatchUpcall(msg);
      return;
    case kAppGetMulti:
      HandleGetMultiUpcall(msg);
      return;
    case kAppJoinLookup:
      HandleJoinLookupUpcall(msg);
      return;
    case kAppFingerLookup:
      HandleFingerLookupUpcall(msg);
      return;
    case kAppLookup:
      HandleLookupUpcall(msg);
      return;
    default: {
      // App upcalls (PIER join stages, size probes) reply outside the DHT,
      // so the owner teaches the origin with a standalone hint.
      MaybeSendOwnerHint(msg);
      auto it = upcalls_.find(msg.app_type);
      if (it != upcalls_.end()) it->second(msg);
      return;
    }
  }
}

OwnerHint DhtNode::OwnerHintFor(Key target) const {
  OwnerHint h;
  if (!OwnerCacheEnabled() || !joined_ || !routing_->IsOwner(target)) {
    // Replica peels and best-effort deliveries answer without owning; they
    // must not teach an arc they cannot speak for.
    return h;
  }
  h.owner = routing_->self();
  ChordRouting* c = chord();
  if (c != nullptr && c->predecessor().valid()) {
    // The whole owned arc: one learned reply covers every key this node is
    // responsible for.
    h.arc_start = c->predecessor().id;
    h.arc_end = id();
  } else {
    // Ownership span unknown (Bamboo's numeric-closeness, or a Chord node
    // mid-join): teach the single routed key only.
    h.arc_start = target - 1;
    h.arc_end = target;
  }
  h.valid = true;
  return h;
}

void DhtNode::LearnOwner(const OwnerHint& hint) {
  if (!OwnerCacheEnabled() || !hint.valid || hint.owner.host == host()) {
    return;
  }
  if (route_cache_.Teach(hint)) ++metrics_->route_cache_stale;
}

void DhtNode::MaybeSendOwnerHint(const RouteMsg& msg) {
  // One-hop deliveries have nothing to save (a correctly predicted fast
  // path always lands here with hops == 1, so it is covered too); a
  // MULTI-hop delivery is worth teaching even when it started as a cache
  // fast path — that is exactly the stale-but-alive misprediction the
  // hint heals. Self-sends are local.
  if (msg.hops <= 1) return;
  if (!msg.origin.valid() || msg.origin.host == host()) return;
  OwnerHint h = OwnerHintFor(msg.target);
  if (!h.valid) return;
  SendDirect(msg.origin.host,
             sim::Message::Make<OwnerHint>(kOwnerHint, "dht.hint",
                                           kOwnerHintBytes, h));
}

void DhtNode::DropPeer(sim::HostId host) {
  routing_->RemovePeer(host);
  route_cache_.ForgetHost(host);
}

sim::DestinationLoad DhtNode::NextHopLoad(Key target) const {
  if (OwnerCacheEnabled() && joined_ && !routing_->IsOwner(target)) {
    NodeInfo cached = route_cache_.Lookup(target);
    if (cached.valid() && cached.host != host()) {
      return network_->LoadOf(cached.host);
    }
  }
  return network_->LoadOf(routing_->NextHop(target).host);
}

void DhtNode::Put(const std::string& ns, Key key, std::vector<uint8_t> value,
                  sim::SimTime expiry, PutCallback callback) {
  ++metrics_->puts;
  uint64_t req_id = 0;
  bool want_ack = callback != nullptr;
  if (want_ack) {
    req_id = NextReqId();
    pending_puts_[req_id] = std::move(callback);
  }
  size_t bytes = ns.size() + value.size() + 18;
  auto body = std::make_shared<const PutBody>(
      PutBody{ns, key, std::move(value), expiry, want_ack});
  Route(key, kAppPut, body, bytes, req_id);
}

void DhtNode::PutBatch(const std::string& ns, Key key,
                       std::vector<uint8_t> frames, size_t value_count,
                       sim::SimTime expiry, PutCallback callback) {
  ++metrics_->batch_puts;
  metrics_->batch_put_values += value_count;
  uint64_t req_id = 0;
  bool want_ack = callback != nullptr;
  if (want_ack) {
    req_id = NextReqId();
    pending_puts_[req_id] = std::move(callback);
  }
  // One route header amortized across the whole batch; the frame buffer
  // already carries each value's length prefix.
  size_t bytes = ns.size() + 18 + VarintSize(value_count) + frames.size();
  auto body = std::make_shared<const PutBatchBody>(PutBatchBody{
      ns, key, std::move(frames), value_count, expiry, want_ack});
  Route(key, kAppPutBatch, body, bytes, req_id);
}

sim::SimTime DhtNode::AttemptTimeout(uint32_t attempt) const {
  // Geometric schedule T0, 2*T0, 4*T0, ... whose get_retries+1 attempts
  // sum to get_timeout: retries recover from a mid-flight owner crash
  // WITHOUT extending the caller-visible deadline. get_retries == 0
  // degenerates to the single full-deadline attempt.
  uint64_t slices = (uint64_t{1} << (options_.get_retries + 1)) - 1;
  sim::SimTime base = options_.get_timeout / slices;
  if (base == 0) base = 1;
  return base << attempt;
}

void DhtNode::Get(const std::string& ns, Key key, GetCallback callback) {
  assert(callback != nullptr);
  ++metrics_->gets;
  uint64_t req_id = NextReqId();
  size_t bytes = ns.size() + 10;
  auto body = std::make_shared<const GetBody>(GetBody{ns, key});
  PendingGet pending;
  pending.callback = std::move(callback);
  pending.body = body;
  pending.key = key;
  pending.bytes = bytes;
  pending.timeout = network_->executor()->ScheduleAfter(host(), 
      AttemptTimeout(0), [this, req_id]() { OnGetAttemptTimeout(req_id); });
  pending_gets_[req_id] = std::move(pending);
  Route(key, kAppGet, body, bytes, req_id);
}

void DhtNode::OnGetAttemptTimeout(uint64_t req_id) {
  auto it = pending_gets_.find(req_id);
  if (it == pending_gets_.end()) return;
  PendingGet& p = it->second;
  if (p.attempts < options_.get_retries) {
    // The attempt died in flight (owner crashed, reply lost): re-send.
    // Ownership re-resolves on the ring under the current membership; the
    // reply path keys on req_id, so a late answer from the first attempt
    // simply wins the race and the duplicate is ignored.
    ++p.attempts;
    ++metrics_->get_retries;
    p.timeout = network_->executor()->ScheduleAfter(host(), 
        AttemptTimeout(p.attempts),
        [this, req_id]() { OnGetAttemptTimeout(req_id); });
    Route(p.key, kAppGet, p.body, p.bytes, req_id);
    return;
  }
  GetCallback cb = std::move(p.callback);
  pending_gets_.erase(it);
  cb(Status::TimedOut("dht get"), {});
}

void DhtNode::GetBatch(const std::string& ns, Key key,
                       GetBatchCallback callback) {
  assert(callback != nullptr);
  ++metrics_->batch_gets;
  uint64_t req_id = NextReqId();
  size_t bytes = ns.size() + 10;
  auto body = std::make_shared<const GetBody>(GetBody{ns, key});
  PendingBatchGet pending;
  pending.callback = std::move(callback);
  pending.body = body;
  pending.key = key;
  pending.bytes = bytes;
  pending.timeout = network_->executor()->ScheduleAfter(host(), 
      AttemptTimeout(0),
      [this, req_id]() { OnBatchGetAttemptTimeout(req_id); });
  pending_batch_gets_[req_id] = std::move(pending);
  Route(key, kAppGetBatch, body, bytes, req_id);
}

void DhtNode::OnBatchGetAttemptTimeout(uint64_t req_id) {
  auto it = pending_batch_gets_.find(req_id);
  if (it == pending_batch_gets_.end()) return;
  PendingBatchGet& p = it->second;
  if (p.attempts < options_.get_retries) {
    ++p.attempts;
    ++metrics_->get_retries;
    p.timeout = network_->executor()->ScheduleAfter(host(), 
        AttemptTimeout(p.attempts),
        [this, req_id]() { OnBatchGetAttemptTimeout(req_id); });
    Route(p.key, kAppGetBatch, p.body, p.bytes, req_id);
    return;
  }
  GetBatchCallback cb = std::move(p.callback);
  pending_batch_gets_.erase(it);
  cb(Status::TimedOut("dht get batch"), {});
}

sim::EventId DhtNode::ArmMultiGetTimeout(uint64_t req_id, uint32_t attempt) {
  return network_->executor()->ScheduleAfter(host(), 
      AttemptTimeout(attempt),
      [this, req_id]() { OnMultiGetAttemptTimeout(req_id); });
}

void DhtNode::OnMultiGetAttemptTimeout(uint64_t req_id) {
  auto it = pending_multi_gets_.find(req_id);
  if (it == pending_multi_gets_.end()) return;
  PendingMultiGet& p = it->second;
  if (p.attempts < options_.get_retries && !p.unanswered.empty()) {
    // Re-scatter the unanswered remainder as one chained walk. The owner
    // cache is deliberately not consulted for the retry: if the first
    // attempt died because ownership moved, the ring is the only
    // authoritative path, and the fence already invalidated the arcs.
    ++p.attempts;
    ++metrics_->get_retries;
    p.timeout = ArmMultiGetTimeout(req_id, p.attempts);
    std::vector<Key> rest(p.unanswered.begin(), p.unanswered.end());
    ++metrics_->multi_gets;
    size_t bytes = p.ns.size() + 10 + 8 * rest.size();
    Key first = rest.front();
    auto body = std::make_shared<const MultiGetBody>(
        MultiGetBody{p.ns, std::move(rest)});
    Route(first, kAppGetMulti, body, bytes, req_id);
    return;
  }
  MultiGetCallback cb = std::move(p.callback);
  std::vector<MultiGetItem> items = std::move(p.items);
  pending_multi_gets_.erase(it);
  cb(Status::TimedOut("dht multi get"), std::move(items));
}

void DhtNode::MultiGet(const std::string& ns, std::vector<Key> keys,
                       MultiGetCallback callback) {
  MultiGet(ns, std::move(keys), std::move(callback), MultiGetOptions{});
}

void DhtNode::MultiGet(const std::string& ns, std::vector<Key> keys,
                       MultiGetCallback callback,
                       const MultiGetOptions& options) {
  assert(callback != nullptr);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  if (keys.empty()) {
    callback(Status::OK(), {});
    return;
  }
  metrics_->multi_get_keys += keys.size();
  uint64_t req_id = NextReqId();
  PendingMultiGet pending;
  pending.callback = std::move(callback);
  pending.ns = ns;
  pending.unanswered.insert(keys.begin(), keys.end());
  pending.timeout = ArmMultiGetTimeout(req_id, 0);
  pending_multi_gets_[req_id] = std::move(pending);

  // With a warm owner location cache, split the key set by remembered
  // owner: each group routes as its own scatter whose first hop is the
  // cached owner direct — K known owners cost K one-hop messages instead
  // of a K-segment ring walk. Keys in uncached arcs (and every key under
  // the classic policy) ride one chained scatter exactly as before; a
  // stale group simply forwards from the mispredicted node, shrinking
  // back to the chained walk. A replica-preferring scatter skips the
  // split entirely: it must travel the ring so the predecessors can
  // divert it away from the owners.
  std::map<sim::HostId, std::vector<Key>> by_owner;
  std::vector<Key> uncached;
  if (OwnerCacheEnabled() && joined_ && !options.prefer_replica) {
    for (Key k : keys) {
      NodeInfo owner = route_cache_.Lookup(k);
      if (owner.valid() && owner.host != host()) {
        by_owner[owner.host].push_back(k);
      } else {
        uncached.push_back(k);
      }
    }
  } else {
    uncached = std::move(keys);
  }
  auto send_scatter = [&](std::vector<Key> group) {
    ++metrics_->multi_gets;
    size_t bytes = ns.size() + 10 + 8 * group.size();
    Key first = group.front();
    auto body = std::make_shared<const MultiGetBody>(
        MultiGetBody{ns, std::move(group), /*arc_valid=*/false,
                     /*arc_start=*/0, options.prefer_replica});
    Route(first, kAppGetMulti, body, bytes, req_id);
  };
  for (auto& [owner_host, group] : by_owner) send_scatter(std::move(group));
  if (!uncached.empty()) send_scatter(std::move(uncached));
}

void DhtNode::Lookup(Key target, LookupCallback callback) {
  assert(callback != nullptr);
  uint64_t req_id = NextReqId();
  PendingLookup pending;
  pending.callback = std::move(callback);
  pending.timeout = network_->executor()->ScheduleAfter(host(), 
      options_.get_timeout, [this, req_id]() {
        auto it = pending_lookups_.find(req_id);
        if (it == pending_lookups_.end()) return;
        LookupCallback cb = std::move(it->second.callback);
        pending_lookups_.erase(it);
        cb(Status::TimedOut("dht lookup"), NodeInfo{}, 0);
      });
  pending_lookups_[req_id] = std::move(pending);
  Route(target, kAppLookup, nullptr, 0, req_id);
}

void DhtNode::SetUpcallHandler(int app_type, UpcallHandler handler) {
  upcalls_[app_type] = std::move(handler);
}

void DhtNode::SetDirectHandler(DirectHandler handler) {
  direct_handler_ = std::move(handler);
}

bool DhtNode::SendDirect(sim::HostId to, sim::Message msg) {
  if (crashed_) return false;
  return network_->Send(host(), to, std::move(msg));
}

void DhtNode::HandlePutUpcall(const RouteMsg& msg) {
  const auto& put = msg.body<PutBody>();
  store_.Put(put.ns, put.key, put.value, put.expiry);
  if (options_.replication > 1) {
    ReplicateEntry(put.ns, put.key, put.value, put.expiry);
  }
  if (put.want_ack) {
    OwnerHint hint = OwnerHintFor(msg.target);
    SendDirect(msg.origin.host,
               sim::Message::Make<AckBody>(
                   kPutAck, "dht.reply",
                   9 + (hint.valid ? kOwnerHintBytes : 0),
                   AckBody{msg.req_id, hint}));
  } else {
    MaybeSendOwnerHint(msg);
  }
}

void DhtNode::StoreBatchFrames(const PutBatchBody& put) {
  BytesReader r(put.frames);
  for (uint64_t i = 0; i < put.value_count; ++i) {
    auto v = r.GetStringView();
    if (!v.ok()) return;
    const auto* data = reinterpret_cast<const uint8_t*>(v.value().data());
    store_.Put(put.ns, put.key,
               std::vector<uint8_t>(data, data + v.value().size()),
               put.expiry);
  }
}

void DhtNode::HandlePutBatchUpcall(const RouteMsg& msg) {
  const auto& put = msg.body<PutBatchBody>();
  StoreBatchFrames(put);
  if (options_.replication > 1 && put.value_count > 0) {
    // One replica message per target carries the whole batch.
    auto targets = routing_->ReplicaTargets(options_.replication - 1);
    size_t bytes = put.ns.size() + 18 + VarintSize(put.value_count) +
                   put.frames.size();
    for (const auto& t : targets) {
      SendDirect(t.host, sim::Message::Make<PutBatchBody>(
                             kReplicaPutBatch, "dht.replica", bytes,
                             PutBatchBody{put.ns, put.key, put.frames,
                                          put.value_count, put.expiry,
                                          false}));
    }
  }
  if (put.want_ack) {
    OwnerHint hint = OwnerHintFor(msg.target);
    SendDirect(msg.origin.host,
               sim::Message::Make<AckBody>(
                   kPutAck, "dht.reply",
                   9 + (hint.valid ? kOwnerHintBytes : 0),
                   AckBody{msg.req_id, hint}));
  } else {
    MaybeSendOwnerHint(msg);
  }
}

void DhtNode::ReplicateEntry(const std::string& ns, Key key,
                             const std::vector<uint8_t>& value,
                             sim::SimTime expiry) {
  auto targets = routing_->ReplicaTargets(options_.replication - 1);
  size_t bytes = ns.size() + value.size() + 18;
  for (const auto& t : targets) {
    SendDirect(t.host, sim::Message::Make<PutBody>(
                           kReplicaPut, "dht.replica", bytes,
                           PutBody{ns, key, value, expiry, false}));
  }
}

void DhtNode::HandleGetUpcall(const RouteMsg& msg) {
  const auto& get = msg.body<GetBody>();
  GetReplyBody reply;
  reply.req_id = msg.req_id;
  reply.hint = OwnerHintFor(msg.target);
  size_t bytes = 16 + (reply.hint.valid ? kOwnerHintBytes : 0);
  for (const StoredValue* v :
       store_.Get(get.ns, get.key, network_->executor()->now())) {
    bytes += v->value.size() + 4;
    reply.values.push_back(v->value);
  }
  SendDirect(msg.origin.host,
             sim::Message::Make<GetReplyBody>(kGetReply, "dht.reply", bytes,
                                              std::move(reply)));
}

void DhtNode::HandleGetBatchUpcall(const RouteMsg& msg) {
  const auto& get = msg.body<GetBody>();
  GetBatchReplyBody reply;
  reply.req_id = msg.req_id;
  reply.hint = OwnerHintFor(msg.target);
  reply.batch =
      store_.GetBatch(get.ns, get.key, network_->executor()->now());
  size_t bytes =
      reply.batch->size() + 12 + (reply.hint.valid ? kOwnerHintBytes : 0);
  SendDirect(msg.origin.host,
             sim::Message::Make<GetBatchReplyBody>(kGetBatchReply,
                                                   "dht.reply", bytes,
                                                   std::move(reply)));
}

void DhtNode::HandleGetMultiUpcall(const RouteMsg& msg) {
  const auto& get = msg.body<MultiGetBody>();
  sim::SimTime now = network_->executor()->now();
  // Answer every key we own, plus — on a replica handoff — every arc key
  // (arc_start, self] this node holds replica data for. An arc key with
  // an EMPTY local store is NOT answered here: the gap may be replication
  // lag (the owner stores first, replica copies follow one hop later), so
  // it continues to its owner for the authoritative empty answer — the
  // replica-aware scatter never returns less than the owner walk. On a
  // normally routed message the target key is answered unconditionally:
  // routing decided we own it, and peeling it guarantees the forwarded
  // remainder shrinks even when our own view is stale.
  MultiGetReplyBody reply;
  reply.req_id = msg.req_id;
  // A normally routed visit answers as the target key's owner; the reply
  // teaches the requester this owner's arc (handoff receivers answer from
  // replica state and teach nothing).
  if (!get.arc_valid) reply.hint = OwnerHintFor(msg.target);
  std::vector<Key> rest;
  size_t reply_bytes = 12 + (reply.hint.valid ? kOwnerHintBytes : 0);
  for (Key k : get.keys) {
    bool is_owner = routing_->IsOwner(k);
    bool answer = is_owner || (k == msg.target && !get.arc_valid);
    if (!answer && get.arc_valid && InOpenClosed(get.arc_start, id(), k)) {
      answer = store_.Has(get.ns, k, now);
    }
    if (answer) {
      if (!is_owner) ++metrics_->replica_peels;
      BatchImage image = store_.GetBatch(get.ns, k, now);
      reply_bytes += 8 + image->size();
      reply.items.push_back(MultiGetItem{k, std::move(image)});
    } else {
      rest.push_back(k);
    }
  }
  // A handoff receiver holding none of the arc keys has nothing to say;
  // don't spend a reply message on an empty item list.
  if (!reply.items.empty() || rest.empty()) {
    SendDirect(msg.origin.host,
               sim::Message::Make<MultiGetReplyBody>(kMultiGetReply,
                                                     "dht.reply", reply_bytes,
                                                     std::move(reply)));
  }
  if (rest.empty()) return;
  if (ForwardMultiGetViaReplica(msg, get.ns, rest)) return;
  // Forward the unanswered keys as one message to the next key's owner,
  // preserving the original requester as the reply target (and the
  // replica-preferring steering, so every leg of a hedged scatter keeps
  // avoiding its primary owner).
  ++metrics_->multi_gets;
  size_t bytes = get.ns.size() + 10 + 8 * rest.size();
  Key next = rest.front();
  auto body = std::make_shared<const MultiGetBody>(
      MultiGetBody{get.ns, std::move(rest), /*arc_valid=*/false,
                   /*arc_start=*/0, get.prefer_replica});
  RouteAs(msg.origin, next, kAppGetMulti, body, bytes, msg.req_id);
}

bool DhtNode::ForwardMultiGetViaReplica(const RouteMsg& msg,
                                        const std::string& ns,
                                        const std::vector<Key>& rest) {
  if (options_.replication <= 1 || !options_.replica_aware_multiget) {
    return false;
  }
  ChordRouting* c = chord();
  if (c == nullptr) return false;
  // Every key in (self, succ_j] for j <= replication is owned by one of
  // succ_1..succ_j, and succ_j is within that owner's replica set (the
  // owner's replication-1 successors) — so succ_j answers the whole arc
  // authoritatively. Hand the remainder one hop to the farthest such
  // successor whose arc still covers the next key: one message peels up to
  // `replication` owners' key ranges instead of one.
  // Copied: a failed send below removes the peer from the live list.
  std::vector<NodeInfo> succs = c->successor_list();
  size_t max_j = std::min(succs.size(), options_.replication);
  Key next_key = rest.front();
  for (size_t j = max_j; j >= 1; --j) {
    const NodeInfo& target = succs[j - 1];
    if (!target.valid() || target.host == host()) continue;
    if (!InOpenClosed(id(), target.id, next_key)) {
      // A shorter arc cannot contain next_key either.
      return false;
    }
    RouteMsg handoff;
    handoff.target = next_key;
    handoff.origin = msg.origin;
    handoff.hops = msg.hops + 1;
    handoff.app_type = kAppGetMulti;
    handoff.req_id = msg.req_id;
    handoff.final_hop = true;  // the arc makes delivery authoritative
    handoff.app_bytes = ns.size() + 19 + 8 * rest.size();
    handoff.app_body = std::make_shared<const MultiGetBody>(
        MultiGetBody{ns, rest, /*arc_valid=*/true, /*arc_start=*/id(),
                     msg.body<MultiGetBody>().prefer_replica});
    size_t bytes = RouteHeaderBytes() + handoff.app_bytes;
    if (SendDirect(target.host,
                   sim::Message::Make<RouteMsg>(kRouteStep, "dht.route",
                                                bytes, std::move(handoff)))) {
      // Counted only on the send that actually left: a refused attempt
      // must not inflate the per-visit scatter cost the benches gate on.
      ++metrics_->multi_gets;
      ++metrics_->routes_initiated;
      ++metrics_->replica_skips;
      return true;
    }
    // Connection refused: the successor is down. Drop it and try the next
    // shorter arc with the repaired list.
    DropPeer(target.host);
  }
  return false;
}

bool DhtNode::DivertMultiGetToReplica(const RouteMsg& msg,
                                      const MultiGetBody& get) {
  if (options_.replication <= 1) return false;
  ChordRouting* c = chord();
  if (c == nullptr) return false;
  // This node is the target key's predecessor: succs[0] is the key's owner
  // (the hop the hedge wants to avoid) and succs[1..replication-1] hold the
  // owner's arc in their replica sets. Hand the request to the nearest live
  // backup as an authoritative arc handoff — the same (self, backup] arc
  // contract ForwardMultiGetViaReplica uses, so the backup answers every
  // key it holds (the target's included) and forwards the rest.
  std::vector<NodeInfo> succs = c->successor_list();
  size_t max_j = std::min(succs.size(), options_.replication);
  for (size_t j = 2; j <= max_j; ++j) {
    const NodeInfo& target = succs[j - 1];
    if (!target.valid() || target.host == host()) continue;
    if (!InOpenClosed(id(), target.id, msg.target)) continue;
    RouteMsg handoff;
    handoff.target = msg.target;
    handoff.origin = msg.origin;
    handoff.hops = msg.hops + 1;
    handoff.app_type = kAppGetMulti;
    handoff.req_id = msg.req_id;
    handoff.final_hop = true;  // the arc makes delivery authoritative
    handoff.app_bytes = get.ns.size() + 19 + 8 * get.keys.size();
    handoff.app_body = std::make_shared<const MultiGetBody>(
        MultiGetBody{get.ns, get.keys, /*arc_valid=*/true,
                     /*arc_start=*/id(), get.prefer_replica});
    size_t bytes = RouteHeaderBytes() + handoff.app_bytes;
    if (SendDirect(target.host,
                   sim::Message::Make<RouteMsg>(kRouteStep, "dht.route",
                                                bytes, std::move(handoff)))) {
      ++metrics_->hedge_redirects;
      return true;
    }
    // The backup is down; try the next one out.
    DropPeer(target.host);
  }
  return false;
}

void DhtNode::HandleJoinLookupUpcall(const RouteMsg& msg) {
  // The joiner's key falls in our range; we are its future successor.
  ChordRouting* c = chord();
  if (c == nullptr) return;
  JoinReplyBody reply{info(), c->successor_list()};
  SendDirect(msg.origin.host,
             sim::Message::Make<JoinReplyBody>(
                 kJoinReply, "dht.maint",
                 kNodeInfoBytes * (1 + reply.successor_list.size()),
                 std::move(reply)));
}

void DhtNode::HandleFingerLookupUpcall(const RouteMsg& msg) {
  const auto& body = msg.body<FingerLookupBody>();
  SendDirect(msg.origin.host,
             sim::Message::Make<FingerReplyBody>(
                 kFingerReply, "dht.maint", 8 + kNodeInfoBytes,
                 FingerReplyBody{body.index, info()}));
}

void DhtNode::HandleLookupUpcall(const RouteMsg& msg) {
  OwnerHint hint = OwnerHintFor(msg.target);
  SendDirect(msg.origin.host,
             sim::Message::Make<LookupReplyBody>(
                 kLookupReply, "dht.reply",
                 12 + kNodeInfoBytes + (hint.valid ? kOwnerHintBytes : 0),
                 LookupReplyBody{msg.req_id, info(), msg.hops, hint}));
}

void DhtNode::StartMaintenanceTimers() {
  // Stagger nodes deterministically so maintenance doesn't synchronize.
  sim::SimTime offset =
      (host() % 16) * (options_.stabilize_interval / 16);
  stabilize_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.stabilize_interval + offset, [this]() { DoStabilize(); });
  fix_finger_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.fix_finger_interval + offset, [this]() { DoFixFinger(); });
  if (options_.failure_detector) {
    detector_timer_ = network_->executor()->ScheduleAfter(host(), 
        options_.ping_interval + offset, [this]() { DoFailureDetector(); });
  }
  if (options_.replication > 1) {
    resync_timer_ = network_->executor()->ScheduleAfter(host(),
        options_.resync_interval + offset, [this]() { DoResync(); });
  }
  if (options_.reconcile_interval > 0) {
    reconcile_timer_ = network_->executor()->ScheduleAfter(host(),
        options_.reconcile_interval + offset, [this]() { DoReconcile(); });
  }
}

void DhtNode::DoStabilize() {
  if (crashed_ || !joined_) return;
  stabilize_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.stabilize_interval, [this]() { DoStabilize(); });
  ChordRouting* c = chord();
  if (c == nullptr) return;
  // Probe the predecessor's liveness; a refused connection clears the
  // pointer so a future Notify from the true predecessor can be adopted.
  NodeInfo pred = c->predecessor();
  if (pred.valid() && pred.host != host()) {
    if (!SendDirect(pred.host,
                    sim::Message::Make<uint8_t>(kPredecessorPing, "dht.maint",
                                                1, uint8_t{0}))) {
      c->ClearPredecessor();
    }
  }
  NodeInfo succ = c->successor();
  while (succ.valid() && succ.host != host()) {
    uint64_t seq = ++stabilize_seq_;
    if (SendDirect(succ.host, sim::Message::Make<GetPredecessorBody>(
                                  kGetPredecessor, "dht.maint", 9,
                                  GetPredecessorBody{seq}))) {
      stabilize_timeout_ = network_->executor()->ScheduleAfter(host(), 
          options_.rpc_timeout, [this, seq, suspect = succ.host]() {
            OnStabilizeTimeout(seq, suspect);
          });
      return;
    }
    // Connection refused: successor is down; fall back along the list.
    DropPeer(succ.host);
    succ = c->successor();
  }
}

void DhtNode::OnStabilizeTimeout(uint64_t seq, sim::HostId suspect) {
  if (crashed_ || !joined_) return;
  if (seq <= last_stabilize_reply_) return;  // that round was answered
  // The successor did not answer: declare it failed and fall back to the
  // next entry of the successor list.
  DropPeer(suspect);
}

void DhtNode::DoFixFinger() {
  if (crashed_ || !joined_) return;
  fix_finger_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.fix_finger_interval, [this]() { DoFixFinger(); });
  ChordRouting* c = chord();
  if (c == nullptr) return;
  size_t i = next_finger_;
  next_finger_ = (next_finger_ + 1) % ChordRouting::kNumFingers;
  auto body = std::make_shared<const FingerLookupBody>(FingerLookupBody{i});
  Route(c->FingerStart(i), kAppFingerLookup, body, 9);
}

void DhtNode::DoFailureDetector() {
  if (crashed_ || !joined_) return;
  detector_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.ping_interval, [this]() { DoFailureDetector(); });
  ChordRouting* c = chord();
  if (c == nullptr) return;
  // The probe set is the neighborhood routing correctness depends on —
  // predecessor and the leading successors — plus one rotating finger so
  // the whole table is eventually swept. Eviction latency is therefore
  // bounded by (miss_threshold + 1) ping intervals for ring neighbors,
  // independent of what stabilize happens to probe.
  std::vector<sim::HostId> targets;
  auto add = [&](const NodeInfo& n) {
    if (!n.valid() || n.host == host()) return;
    for (sim::HostId t : targets) {
      if (t == n.host) return;
    }
    targets.push_back(n.host);
  };
  add(c->predecessor());
  const auto& succs = c->successor_list();
  for (size_t i = 0; i < succs.size() && i < 3; ++i) add(succs[i]);
  for (size_t probe = 0; probe < ChordRouting::kNumFingers; ++probe) {
    size_t i = detector_finger_;
    detector_finger_ = (detector_finger_ + 1) % ChordRouting::kNumFingers;
    NodeInfo f = c->finger(i);
    if (f.valid() && f.host != host()) {
      add(f);
      break;
    }
  }
  for (sim::HostId t : targets) {
    uint32_t& misses = ping_outstanding_[t];
    if (misses >= options_.ping_miss_threshold) {
      // Suspicion confirmed: unanswered for `misses` consecutive rounds.
      ping_outstanding_.erase(t);
      ++metrics_->detector_evictions;
      DropPeer(t);
      continue;
    }
    ++metrics_->detector_pings;
    if (SendDirect(t, sim::Message::Make<uint8_t>(kLivenessPing, "dht.maint",
                                                  1, uint8_t{0}))) {
      ++misses;  // outstanding until the ack clears it
    } else {
      // Connection refused: no need to accumulate suspicion.
      ping_outstanding_.erase(t);
      ++metrics_->detector_evictions;
      DropPeer(t);
    }
  }
}

void DhtNode::DoResync() {
  if (crashed_ || !joined_) return;
  resync_timer_ = network_->executor()->ScheduleAfter(host(), 
      options_.resync_interval, [this]() { DoResync(); });
  if (!resync_dirty_ || options_.replication <= 1) return;
  ChordRouting* c = chord();
  if (c == nullptr) {
    resync_dirty_ = false;
    return;
  }
  NodeInfo pred = c->predecessor();
  // The owned arc is (pred, self]; without a predecessor the arc is
  // undefined — stay dirty and retry once stabilize re-establishes it.
  if (!pred.valid()) return;
  auto targets = routing_->ReplicaTargets(options_.replication - 1);
  resync_dirty_ = false;
  if (targets.empty()) return;  // singleton ring: nothing to repair
  ++metrics_->resync_rounds;
  for (const auto& t : targets) {
    SendArcDigests(t.host, pred.id, id());
  }
}

void DhtNode::SendArcDigests(sim::HostId to, Key arc_start, Key arc_end) {
  sim::SimTime now = network_->executor()->now();
  for (const auto& ns : store_.Namespaces()) {
    auto digests = store_.DigestRange(ns, arc_start, arc_end, now);
    if (digests.empty()) continue;
    ResyncDigestBody body;
    body.ns = ns;
    body.digests.assign(digests.begin(), digests.end());
    body.arc_valid = true;
    body.arc_start = arc_start;
    body.arc_end = arc_end;
    size_t bytes = ns.size() + 24 + 20 * body.digests.size();
    if (!SendDirect(to, sim::Message::Make<ResyncDigestBody>(
                            kResyncDigest, "dht.resync", bytes,
                            std::move(body)))) {
      DropPeer(to);
      return;
    }
  }
}

void DhtNode::HandleResyncDigest(sim::HostId from, const sim::Message& msg) {
  const auto& d = msg.as<ResyncDigestBody>();
  sim::SimTime now = network_->executor()->now();
  // Pull every key whose local digest diverges from the sender's — missing
  // keys and stale value sets alike (Put dedupes, so over-pulling is
  // bytes, never corruption).
  ResyncPullBody pull;
  pull.ns = d.ns;
  for (const auto& [key, digest] : d.digests) {
    if (store_.DigestKey(d.ns, key, now) != digest) pull.keys.push_back(key);
  }
  if (!pull.keys.empty()) {
    SendDirect(from, sim::Message::Make<ResyncPullBody>(
                         kResyncPull, "dht.resync",
                         d.ns.size() + 8 + 8 * pull.keys.size(),
                         std::move(pull)));
  }
  // Reverse push: ship back our own arc entries the sender's digest set
  // lacks or disagrees with. Entries written on THIS side of a since-healed
  // split exist here but carry no digest in `d` to mismatch — without this
  // push they would never reach the (re-established) owner. The receiving
  // side stores the union (Put dedupes) and its next re-sync round
  // propagates it onward, so both sides of a split-brain converge to the
  // same value sets.
  if (!d.arc_valid) return;
  std::map<Key, LocalStore::KeyDigest> theirs(d.digests.begin(),
                                              d.digests.end());
  KeyTransferBody back;
  size_t bytes = 16;
  for (const auto& [key, mine] :
       store_.DigestRange(d.ns, d.arc_start, d.arc_end, now)) {
    auto it = theirs.find(key);
    if (it != theirs.end() && it->second == mine) continue;
    for (const StoredValue* v : store_.Get(d.ns, key, now)) {
      bytes += d.ns.size() + v->value.size() + 17;
      ++metrics_->resync_entries;
      metrics_->resync_bytes += v->value.size();
      back.entries.push_back({d.ns, *v});
    }
  }
  if (back.entries.empty()) return;
  SendDirect(from, sim::Message::Make<KeyTransferBody>(
                       kResyncEntries, "dht.resync", bytes,
                       std::move(back)));
}

void DhtNode::HandleResyncPull(sim::HostId from, const sim::Message& msg) {
  const auto& pull = msg.as<ResyncPullBody>();
  sim::SimTime now = network_->executor()->now();
  KeyTransferBody transfer;
  size_t bytes = 16;
  for (Key k : pull.keys) {
    for (const StoredValue* v : store_.Get(pull.ns, k, now)) {
      bytes += pull.ns.size() + v->value.size() + 17;
      ++metrics_->resync_entries;
      metrics_->resync_bytes += v->value.size();
      transfer.entries.push_back({pull.ns, *v});
    }
  }
  if (transfer.entries.empty()) return;
  SendDirect(from, sim::Message::Make<KeyTransferBody>(
                       kResyncEntries, "dht.resync", bytes,
                       std::move(transfer)));
}

void DhtNode::DoReconcile() {
  if (crashed_ || !joined_) return;
  reconcile_timer_ = network_->executor()->ScheduleAfter(host(),
      options_.reconcile_interval, [this]() { DoReconcile(); });
  const auto& remembered = routing_->RememberedPeers();
  if (remembered.empty()) return;  // nobody evicted: the round is free
  reconcile_cursor_ %= remembered.size();
  NodeInfo peer = remembered[reconcile_cursor_];
  ++reconcile_cursor_;
  ++metrics_->merge_probes;
  MergeBody probe{info(), chord() ? chord()->successor_list()
                                  : std::vector<NodeInfo>{}};
  size_t bytes = kNodeInfoBytes * (1 + probe.successors.size());
  if (!SendDirect(peer.host,
                  sim::Message::Make<MergeBody>(kMergeProbe, "dht.maint",
                                                bytes, std::move(probe)))) {
    // Connection refused: the peer really is down (a partitioned peer's
    // messages are silently dropped, not refused). Confirmed dead — stop
    // probing it. If it ever restarts, its own rejoin re-announces it.
    routing_->ForgetRememberedPeer(peer.host);
  }
}

void DhtNode::HandleMergeProbe(sim::HostId from, const sim::Message& msg) {
  const auto& probe = msg.as<MergeBody>();
  // Contact from a host absent from our tables is cross-ring contact — the
  // prober healed around us (or we around it) during a split.
  bool known = false;
  for (const NodeInfo& p : routing_->KnownPeers()) {
    if (p.host == from) {
      known = true;
      break;
    }
  }
  if (!known) ++metrics_->merge_contacts;
  IntegrateForeignView(probe.sender, probe.successors);
  MergeBody reply{info(), chord() ? chord()->successor_list()
                                  : std::vector<NodeInfo>{}};
  size_t bytes = kNodeInfoBytes * (1 + reply.successors.size());
  SendDirect(from, sim::Message::Make<MergeBody>(kMergeReply, "dht.maint",
                                                 bytes, std::move(reply)));
}

void DhtNode::HandleMergeReply(sim::HostId, const sim::Message& msg) {
  const auto& reply = msg.as<MergeBody>();
  ++metrics_->merge_rounds;
  IntegrateForeignView(reply.sender, reply.successors);
}

void DhtNode::IntegrateForeignView(const NodeInfo& sender,
                                   const std::vector<NodeInfo>& successors) {
  if (!sender.valid() || sender.host == host()) return;
  // A remembered peer answering is a detected partition heal: it was never
  // dead, just unreachable. Count before the integration forgets it.
  for (const NodeInfo& r : routing_->RememberedPeers()) {
    if (r.host == sender.host) {
      ++metrics_->partition_heals;
      break;
    }
  }
  routing_->ForgetRememberedPeer(sender.host);
  ChordRouting* c = chord();
  if (c == nullptr) return;  // Bamboo deployments here are static-only
  // Adopt-better-successor: the sender and its successors enter our list
  // wherever they tighten it; stabilize/notify then walks the usual loopy
  // convergence until the two rings are knit into one. Ownership flips
  // along the way bump epochs and arm re-sync through the membership
  // listener — the same machinery as any other membership change.
  c->OfferSuccessor(sender);
  for (const NodeInfo& s : successors) {
    if (s.valid() && s.host != host()) c->OfferSuccessor(s);
  }
  ConsiderPredecessor(sender);
}

void DhtNode::ConsiderPredecessor(const NodeInfo& cand) {
  ChordRouting* c = chord();
  if (c == nullptr || !cand.valid() || cand.host == host()) return;
  NodeInfo old_pred = c->predecessor();
  bool adopt = !old_pred.valid() || InOpenOpen(old_pred.id, id(), cand.id);
  if (!adopt) return;
  c->SetPredecessor(cand);
  // Hand over the keys that now belong to the new predecessor: everything
  // outside (cand, self]. With replication > 1 the handover is DIGEST-
  // driven: we keep holding the range as replica state (we are the new
  // predecessor's first successor — extracting would strip the replica set
  // below the floor) and send per-key digests instead of the data; the
  // new owner pulls only what it lacks and pushes back what we lack. A
  // durable-restarted predecessor whose disk survived therefore re-ships
  // almost nothing, and divergent split-brain writes flow both ways.
  // Without replication the range is MOVED outright, as before.
  Key from_key = old_pred.valid() ? old_pred.id : id();
  if (ClockwiseDistance(from_key, cand.id) == 0) return;
  if (options_.replication > 1) {
    SendArcDigests(cand.host, from_key, cand.id);
    return;
  }
  KeyTransferBody transfer;
  size_t bytes = 16;
  for (const auto& ns : store_.Namespaces()) {
    for (auto& v : store_.ExtractRange(ns, from_key, cand.id)) {
      bytes += ns.size() + v.value.size() + 17;
      transfer.entries.push_back({ns, std::move(v)});
    }
  }
  if (!transfer.entries.empty()) {
    SendDirect(cand.host, sim::Message::Make<KeyTransferBody>(
                              kKeyTransfer, "dht.transfer", bytes,
                              std::move(transfer)));
  }
}

void DhtNode::OnMembershipChange(bool ownership_changed,
                                 bool replica_set_changed) {
  if (ownership_changed) BumpEpoch();
  if (options_.replication > 1 &&
      (ownership_changed || replica_set_changed)) {
    resync_dirty_ = true;
  }
}

void DhtNode::BumpEpoch() {
  ++membership_epoch_;
  ++metrics_->epoch_bumps;
  // Fence AND purge: arcs taught under the old epoch (possibly across a
  // since-healed partition) are counted as stale and dropped so they can't
  // capacity-starve fresh arcs; the fast path falls back to ring routing
  // until replies re-teach under the new epoch.
  metrics_->route_cache_stale += route_cache_.FenceEpoch();
  for (const auto& listener : epoch_listeners_) listener();
}

void DhtNode::HandleMessage(sim::HostId from, const sim::Message& msg) {
  if (crashed_) return;
  switch (msg.type) {
    case kRouteStep: {
      ForwardOrDeliver(msg.as<RouteMsg>());
      return;
    }
    case kOwnerHint: {
      LearnOwner(msg.as<OwnerHint>());
      return;
    }
    case kGetReply: {
      const auto& reply = msg.as<GetReplyBody>();
      LearnOwner(reply.hint);
      auto it = pending_gets_.find(reply.req_id);
      if (it == pending_gets_.end()) return;
      network_->executor()->Cancel(it->second.timeout);
      GetCallback cb = std::move(it->second.callback);
      pending_gets_.erase(it);
      cb(Status::OK(), reply.values);
      return;
    }
    case kGetBatchReply: {
      const auto& reply = msg.as<GetBatchReplyBody>();
      LearnOwner(reply.hint);
      auto it = pending_batch_gets_.find(reply.req_id);
      if (it == pending_batch_gets_.end()) return;
      network_->executor()->Cancel(it->second.timeout);
      GetBatchCallback cb = std::move(it->second.callback);
      pending_batch_gets_.erase(it);
      cb(Status::OK(), reply.batch);
      return;
    }
    case kMultiGetReply: {
      const auto& reply = msg.as<MultiGetReplyBody>();
      LearnOwner(reply.hint);
      auto it = pending_multi_gets_.find(reply.req_id);
      if (it == pending_multi_gets_.end()) return;
      PendingMultiGet& pending = it->second;
      bool progressed = false;
      for (const auto& item : reply.items) {
        // A retry race can answer the same key twice; only the first
        // answer counts, duplicates are dropped.
        if (pending.unanswered.erase(item.key) == 0) continue;
        pending.items.push_back(item);
        progressed = true;
      }
      if (!pending.unanswered.empty()) {
        if (progressed) {
          // The owner chain answers sequentially, so end-to-end latency
          // scales with the owner count; treat the timeout as a progress
          // watchdog and restart the attempt schedule on every partial
          // reply.
          network_->executor()->Cancel(pending.timeout);
          pending.attempts = 0;
          pending.timeout = ArmMultiGetTimeout(reply.req_id, 0);
        }
        return;
      }
      network_->executor()->Cancel(pending.timeout);
      MultiGetCallback cb = std::move(pending.callback);
      std::vector<MultiGetItem> items = std::move(pending.items);
      pending_multi_gets_.erase(it);
      cb(Status::OK(), std::move(items));
      return;
    }
    case kReplicaPutBatch: {
      StoreBatchFrames(msg.as<PutBatchBody>());
      return;
    }
    case kPutAck: {
      const auto& ack = msg.as<AckBody>();
      LearnOwner(ack.hint);
      auto it = pending_puts_.find(ack.req_id);
      if (it == pending_puts_.end()) return;
      PutCallback cb = std::move(it->second);
      pending_puts_.erase(it);
      cb(Status::OK());
      return;
    }
    case kLookupReply: {
      const auto& reply = msg.as<LookupReplyBody>();
      LearnOwner(reply.hint);
      auto it = pending_lookups_.find(reply.req_id);
      if (it == pending_lookups_.end()) return;
      network_->executor()->Cancel(it->second.timeout);
      LookupCallback cb = std::move(it->second.callback);
      pending_lookups_.erase(it);
      cb(Status::OK(), reply.owner, reply.hops);
      return;
    }
    case kJoinReply: {
      ChordRouting* c = chord();
      if (c == nullptr || joined_) return;
      const auto& reply = msg.as<JoinReplyBody>();
      std::vector<NodeInfo> list;
      list.push_back(reply.owner);
      for (const auto& s : reply.successor_list) list.push_back(s);
      c->SetSuccessorList(std::move(list));
      joined_ = true;
      SendDirect(reply.owner.host,
                 sim::Message::Make<NotifyBody>(kNotify, "dht.maint",
                                                kNodeInfoBytes,
                                                NotifyBody{info()}));
      StartMaintenanceTimers();
      return;
    }
    case kGetPredecessor: {
      ChordRouting* c = chord();
      if (c == nullptr) return;
      const auto& req = msg.as<GetPredecessorBody>();
      PredecessorReplyBody reply{req.seq, c->predecessor(),
                                 c->successor_list()};
      SendDirect(from, sim::Message::Make<PredecessorReplyBody>(
                           kPredecessorReply, "dht.maint",
                           9 + kNodeInfoBytes * (1 + reply.successor_list.size()),
                           std::move(reply)));
      return;
    }
    case kPredecessorReply: {
      ChordRouting* c = chord();
      if (c == nullptr) return;
      const auto& reply = msg.as<PredecessorReplyBody>();
      if (reply.seq > last_stabilize_reply_) {
        last_stabilize_reply_ = reply.seq;
      }
      if (reply.seq == stabilize_seq_) {
        network_->executor()->Cancel(stabilize_timeout_);
        stabilize_timeout_ = sim::kInvalidEventId;
      }
      ++stabilize_rounds_;
      if (reply.predecessor.valid()) {
        c->OfferSuccessor(reply.predecessor);
      }
      NodeInfo succ = c->successor();
      std::vector<NodeInfo> list;
      list.push_back(succ);
      for (const auto& s : reply.successor_list) list.push_back(s);
      c->SetSuccessorList(std::move(list));
      succ = c->successor();
      if (succ.valid() && succ.host != host()) {
        SendDirect(succ.host,
                   sim::Message::Make<NotifyBody>(kNotify, "dht.maint",
                                                  kNodeInfoBytes,
                                                  NotifyBody{info()}));
      }
      return;
    }
    case kNotify: {
      ChordRouting* c = chord();
      if (c == nullptr) return;
      const auto& notify = msg.as<NotifyBody>();
      NodeInfo cand = notify.candidate;
      if (!cand.valid() || cand.host == host()) return;
      c->OfferSuccessor(cand);  // first join on a singleton ring
      ConsiderPredecessor(cand);
      return;
    }
    case kFingerReply: {
      ChordRouting* c = chord();
      if (c == nullptr) return;
      const auto& reply = msg.as<FingerReplyBody>();
      if (reply.index < ChordRouting::kNumFingers) {
        c->SetFinger(reply.index, reply.owner);
      }
      return;
    }
    case kKeyTransfer:
    case kResyncEntries: {
      const auto& transfer = msg.as<KeyTransferBody>();
      bool created = false;
      for (const auto& e : transfer.entries) {
        created |= store_.Put(e.ns, e.value.key, e.value.value,
                              e.value.expiry);
      }
      // Fresh entries (split-brain divergence flowing back in) must ripple
      // onward to the rest of the replica set, not stop here — arm the next
      // resync round so the union propagates node-by-node until digests
      // match everywhere and the rounds quiesce.
      if (created && options_.replication > 1) resync_dirty_ = true;
      return;
    }
    case kMergeProbe: {
      HandleMergeProbe(from, msg);
      return;
    }
    case kMergeReply: {
      HandleMergeReply(from, msg);
      return;
    }
    case kResyncDigest: {
      HandleResyncDigest(from, msg);
      return;
    }
    case kResyncPull: {
      HandleResyncPull(from, msg);
      return;
    }
    case kLivenessPing: {
      SendDirect(from, sim::Message::Make<uint8_t>(kLivenessAck, "dht.maint",
                                                   1, uint8_t{0}));
      return;
    }
    case kLivenessAck: {
      ping_outstanding_.erase(from);
      return;
    }
    case kReplicaPut: {
      const auto& put = msg.as<PutBody>();
      store_.Put(put.ns, put.key, put.value, put.expiry);
      return;
    }
    case kLeave: {
      ChordRouting* c = chord();
      if (c == nullptr) return;
      const auto& leave = msg.as<LeaveBody>();
      DropPeer(leave.departing.host);
      if (leave.to_predecessor) {
        std::vector<NodeInfo> list = leave.successor_list;
        c->SetSuccessorList(std::move(list));
      } else if (leave.predecessor.valid() &&
                 leave.predecessor.host != host()) {
        c->SetPredecessor(leave.predecessor);
      }
      return;
    }
    case kPredecessorPing:
      // Liveness is proven by the connection itself; nothing to do.
      return;
    case kDirectApp: {
      if (direct_handler_) direct_handler_(from, msg);
      return;
    }
    default:
      // Unknown control message: drop (forward compatibility).
      return;
  }
}

void ExportTransportCounters(const DhtMetrics& m, CounterSet* out) {
  out->Set("dht.multi_gets", m.multi_gets);
  out->Set("dht.multi_get_keys", m.multi_get_keys);
  out->Set("dht.replica_peels", m.replica_peels);
  out->Set("dht.replica_skips", m.replica_skips);
  out->Set("dht.hedge_redirects", m.hedge_redirects);
  out->Set("dht.route_cache_hits", m.route_cache_hits);
  out->Set("dht.route_cache_misses", m.route_cache_misses);
  out->Set("dht.route_cache_stale", m.route_cache_stale);
  out->Set("dht.hops_saved", m.hops_saved);
  out->Set("dht.congestion_detours", m.congestion_detours);
  out->Set("dht.detector_pings", m.detector_pings);
  out->Set("dht.detector_evictions", m.detector_evictions);
  out->Set("dht.epoch_bumps", m.epoch_bumps);
  out->Set("dht.resync_rounds", m.resync_rounds);
  out->Set("dht.resync_entries", m.resync_entries);
  out->Set("dht.resync_bytes", m.resync_bytes);
  out->Set("dht.get_retries", m.get_retries);
  out->Set("dht.merge_probes", m.merge_probes);
  out->Set("dht.merge_contacts", m.merge_contacts);
  out->Set("dht.merge_rounds", m.merge_rounds);
  out->Set("dht.partition_heals", m.partition_heals);
}

}  // namespace pierstack::dht
