// RingOracle: a continuously-assertable ground-truth checker for a
// simulated DHT ring.
//
// Robustness scenarios (churn, partitions, restarts) end with "and the ring
// healed" — this oracle turns that claim into independent invariants a
// harness can assert at any quiesced point (between churn waves, at shard
// epoch barriers, after a heal window):
//
//   connectivity        the successor graph reaches every live node from
//                       any live node (one ring, not two).
//   ordering            the successor cycle is monotone clockwise — ids
//                       advance with exactly one wrap, so the cycle covers
//                       the ring exactly once. Each half of a split ring
//                       passes this (it is internally well-ordered); the
//                       split itself is connectivity's job to catch.
//   ownership_cover     the globally expected owner of every tracked key
//                       CLAIMS ownership (IsOwner). Cover, not exclusivity:
//                       during splits arcs only widen, so each side still
//                       answers for its keys — exclusivity would make the
//                       oracle unusable mid-scenario.
//   predecessors_valid  no live node's predecessor names a dead host (the
//                       dangling pointer a missed eviction leaves behind).
//   replication_floor   every tracked key has at least
//                       min(replication, live nodes) live copies.
//   no_orphans          every tracked key has at least one live copy —
//                       the data-loss alarm, separate from the weaker
//                       floor so partial and total loss are distinguished.
//
// The invariants are deliberately independent: known-bad rings trip exactly
// the one that names their defect (see tests/dht/ring_oracle_test.cc).
#pragma once

#include <string>
#include <vector>

#include "dht/builder.h"

namespace pierstack::dht {

/// One oracle pass: per-invariant verdicts plus the first violation seen.
struct RingOracleReport {
  bool connectivity = true;
  bool ordering = true;
  bool ownership_cover = true;
  bool predecessors_valid = true;
  bool replication_floor = true;
  bool no_orphans = true;
  /// Human-readable description of the FIRST violation (empty when clean).
  std::string detail;

  bool clean() const {
    return connectivity && ordering && ownership_cover &&
           predecessors_valid && replication_floor && no_orphans;
  }
  int violations() const {
    return static_cast<int>(!connectivity) + static_cast<int>(!ordering) +
           static_cast<int>(!ownership_cover) +
           static_cast<int>(!predecessors_valid) +
           static_cast<int>(!replication_floor) +
           static_cast<int>(!no_orphans);
  }
};

class RingOracle {
 public:
  /// The deployment must outlive the oracle. Structural invariants apply to
  /// Chord overlays; on Bamboo (static-only) they pass vacuously and the
  /// data invariants still bite.
  explicit RingOracle(DhtDeployment* deployment) : deployment_(deployment) {}

  /// Registers a key whose data invariants (ownership_cover,
  /// replication_floor, no_orphans) every Check() asserts. Track the keys
  /// the scenario published; untracked data is invisible to the oracle.
  void TrackKey(std::string ns, Key key) {
    tracked_.push_back(Tracked{std::move(ns), key});
  }

  size_t tracked_keys() const { return tracked_.size(); }

  /// Runs every invariant against current deployment state. `now` gates
  /// soft-state liveness (expired entries don't count as copies).
  RingOracleReport Check(sim::SimTime now) const;

 private:
  struct Tracked {
    std::string ns;
    Key key;
  };

  DhtDeployment* deployment_;
  std::vector<Tracked> tracked_;
};

}  // namespace pierstack::dht
