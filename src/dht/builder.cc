#include "dht/builder.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/rng.h"

namespace pierstack::dht {

DhtDeployment::DhtDeployment(sim::Network* network, size_t n,
                             const DhtOptions& options, uint64_t seed)
    : network_(network), options_(options) {
  assert(n >= 1);
  Rng rng(seed);
  std::unordered_set<Key> used;
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Key k;
    do {
      k = rng.Next();
    } while (!used.insert(k).second);
    nodes_.push_back(std::make_unique<DhtNode>(network, k, options, &metrics_));
  }
  RebuildStaticTables();
}

std::vector<NodeInfo> DhtDeployment::LiveMembersSorted() const {
  std::vector<NodeInfo> members;
  members.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (network_->IsHostUp(node->host())) members.push_back(node->info());
  }
  std::sort(members.begin(), members.end(),
            [](const NodeInfo& a, const NodeInfo& b) { return a.id < b.id; });
  return members;
}

void DhtDeployment::RebuildStaticTables() {
  auto members = LiveMembersSorted();
  for (auto& node : nodes_) {
    if (network_->IsHostUp(node->host())) node->BootstrapStatic(members);
  }
}

DhtNode* DhtDeployment::AddNodeDynamic(uint64_t key_seed) {
  Key k = Mix64(key_seed);
  nodes_.push_back(std::make_unique<DhtNode>(network_, k, options_, &metrics_));
  DhtNode* fresh = nodes_.back().get();
  fresh->JoinViaBootstrap(nodes_.front()->host());
  return fresh;
}

DhtNode* DhtDeployment::ExpectedOwner(Key k) {
  DhtNode* best = nullptr;
  if (options_.overlay == OverlayKind::kChord) {
    // Chord: owner = first live node clockwise at or after k.
    Key best_dist = 0;
    for (auto& node : nodes_) {
      if (!network_->IsHostUp(node->host())) continue;
      Key d = ClockwiseDistance(k, node->id());
      if (best == nullptr || d < best_dist) {
        best = node.get();
        best_dist = d;
      }
    }
  } else {
    // Bamboo/Pastry: owner = numerically closest live node (clockwise tie
    // break, matching BambooRouting::IsOwner).
    for (auto& node : nodes_) {
      if (!network_->IsHostUp(node->host())) continue;
      if (best == nullptr) {
        best = node.get();
        continue;
      }
      Key dn = RingDistance(node->id(), k);
      Key db = RingDistance(best->id(), k);
      if (dn < db || (dn == db && ClockwiseDistance(node->id(), k) <
                                      ClockwiseDistance(best->id(), k))) {
        best = node.get();
      }
    }
  }
  return best;
}

}  // namespace pierstack::dht
