#include "dht/local_store.h"

#include <algorithm>
#include <string_view>

#include "common/bytes.h"
#include "common/hashing.h"

namespace pierstack::dht {

namespace {

/// Emits a TupleBatch image (count prefix + concatenated frames) from the
/// live entries a range walk yields.
template <typename It>
std::vector<uint8_t> AssembleImage(It lo, It hi, sim::SimTime now,
                                   bool alive(const StoredValue&,
                                              sim::SimTime)) {
  size_t count = 0, bytes = 0;
  for (It it = lo; it != hi; ++it) {
    if (!alive(it->second, now)) continue;
    ++count;
    bytes += it->second.value.size();
  }
  BytesWriter w;
  w.Reserve(VarintSize(count) + bytes);
  w.PutVarint(count);
  for (It it = lo; it != hi; ++it) {
    if (!alive(it->second, now)) continue;
    w.PutBytes(it->second.value.data(), it->second.value.size());
  }
  return w.Take();
}

bool AliveFn(const StoredValue& v, sim::SimTime now) {
  return v.expiry == 0 || v.expiry > now;
}

/// The canonical empty batch image ({count = 0}), shared by every miss.
const BatchImage& EmptyImage() {
  static const BatchImage empty =
      std::make_shared<const std::vector<uint8_t>>(1, uint8_t{0});
  return empty;
}

}  // namespace

void LocalStore::InvalidateImage(const std::string& ns, Key key) {
  auto cit = image_cache_.find(ns);
  if (cit == image_cache_.end()) return;
  auto it = cit->second.images.find(key);
  if (it == cit->second.images.end()) return;
  size_t sz = it->second.image->size();
  cit->second.bytes -= sz;
  image_bytes_ -= sz;
  cit->second.images.erase(it);
  ++cache_stats_.invalidations;
}

void LocalStore::InvalidateNamespace(const std::string& ns) {
  auto cit = image_cache_.find(ns);
  if (cit == image_cache_.end()) return;
  cache_stats_.invalidations += cit->second.images.size();
  DropNamespaceCache(&cit->second);
  image_cache_.erase(cit);
}

void LocalStore::DropNamespaceCache(NamespaceCache* cache) {
  image_bytes_ -= cache->bytes;
  cache->bytes = 0;
  cache->images.clear();
}

void LocalStore::EvictImagesForSpace(NamespaceCache* cache, size_t needed) {
  while (!cache->images.empty() &&
         cache->bytes + needed > max_image_bytes_per_ns_) {
    auto victim = cache->images.begin();
    for (auto it = cache->images.begin(); it != cache->images.end(); ++it) {
      if (it->second.seq < victim->second.seq) victim = it;
    }
    size_t sz = victim->second.image->size();
    cache->bytes -= sz;
    image_bytes_ -= sz;
    cache->images.erase(victim);
    ++cache_stats_.size_evictions;
  }
}

bool LocalStore::Put(const std::string& ns, Key key,
                     std::vector<uint8_t> value, sim::SimTime expiry) {
  InvalidateImage(ns, key);
  auto& space = spaces_[ns];
  auto [lo, hi] = space.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second.value == value) {
      // Re-publish: refresh soft state.
      it->second.expiry = expiry;
      return false;
    }
  }
  total_bytes_ += value.size();
  space.emplace(key, StoredValue{key, std::move(value), expiry});
  return true;
}

std::vector<const StoredValue*> LocalStore::Get(const std::string& ns, Key key,
                                                sim::SimTime now) const {
  std::vector<const StoredValue*> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  auto [lo, hi] = sit->second.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (Alive(it->second, now)) out.push_back(&it->second);
  }
  return out;
}

bool LocalStore::Has(const std::string& ns, Key key, sim::SimTime now) const {
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return false;
  auto [lo, hi] = sit->second.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (Alive(it->second, now)) return true;
  }
  return false;
}

std::vector<const StoredValue*> LocalStore::Scan(const std::string& ns,
                                                 sim::SimTime now) const {
  std::vector<const StoredValue*> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  out.reserve(sit->second.size());
  for (const auto& [k, v] : sit->second) {
    if (Alive(v, now)) out.push_back(&v);
  }
  return out;
}

BatchImage LocalStore::GetBatch(const std::string& ns, Key key,
                                sim::SimTime now) {
  auto cit = image_cache_.find(ns);
  if (cit != image_cache_.end()) {
    auto hit = cit->second.images.find(key);
    if (hit != cit->second.images.end()) {
      if (hit->second.valid_until == 0 || now < hit->second.valid_until) {
        ++cache_stats_.hits;
        return hit->second.image;
      }
      // An entry baked into the image expired: rebuild below.
      size_t sz = hit->second.image->size();
      cit->second.bytes -= sz;
      image_bytes_ -= sz;
      cit->second.images.erase(hit);
      ++cache_stats_.invalidations;
    }
  }
  ++cache_stats_.misses;
  // Probes of never-stored namespaces must not grow the cache map.
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return EmptyImage();
  auto [lo, hi] = sit->second.equal_range(key);
  sim::SimTime valid_until = 0;
  for (auto it = lo; it != hi; ++it) {
    if (!Alive(it->second, now)) continue;
    if (it->second.expiry != 0 &&
        (valid_until == 0 || it->second.expiry < valid_until)) {
      valid_until = it->second.expiry;
    }
  }
  auto image = std::make_shared<const std::vector<uint8_t>>(
      AssembleImage(lo, hi, now, AliveFn));
  // An image over the whole byte budget is served but never cached — one
  // giant posting list must not monopolize (or thrash) the cache.
  if (image->size() > max_image_bytes_per_ns_) return image;
  auto& cache = image_cache_[ns];
  if (cache.images.size() >= kMaxCachedImagesPerNs) {
    cache_stats_.invalidations += cache.images.size();
    DropNamespaceCache(&cache);
  }
  EvictImagesForSpace(&cache, image->size());
  cache.bytes += image->size();
  image_bytes_ += image->size();
  cache.images.emplace(key, CachedImage{image, valid_until, ++image_seq_});
  return image;
}

std::vector<uint8_t> LocalStore::ScanBatch(const std::string& ns,
                                           sim::SimTime now) const {
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return {0};
  return AssembleImage(sit->second.begin(), sit->second.end(), now, AliveFn);
}

size_t LocalStore::Erase(const std::string& ns, Key key) {
  InvalidateImage(ns, key);
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return 0;
  auto [lo, hi] = sit->second.equal_range(key);
  size_t n = 0;
  for (auto it = lo; it != hi;) {
    total_bytes_ -= it->second.value.size();
    it = sit->second.erase(it);
    ++n;
  }
  return n;
}

std::vector<StoredValue> LocalStore::ExtractRange(const std::string& ns,
                                                  Key from, Key to) {
  InvalidateNamespace(ns);
  std::vector<StoredValue> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  auto& space = sit->second;
  for (auto it = space.begin(); it != space.end();) {
    if (InOpenClosed(from, to, it->first)) {
      total_bytes_ -= it->second.value.size();
      out.push_back(std::move(it->second));
      it = space.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<StoredValue> LocalStore::CollectRange(const std::string& ns,
                                                  Key from, Key to) const {
  std::vector<StoredValue> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  for (const auto& [k, v] : sit->second) {
    if (InOpenClosed(from, to, k)) out.push_back(v);
  }
  return out;
}

namespace {

/// Avalanched hash of one stored payload. The avalanche step matters: the
/// digest sums these, and summing raw FNV values of similar payloads would
/// collide far too easily.
uint64_t ValueHash(const StoredValue& v) {
  return Mix64(Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(v.value.data()), v.value.size())));
}

}  // namespace

LocalStore::KeyDigest LocalStore::DigestKey(const std::string& ns, Key key,
                                            sim::SimTime now) const {
  KeyDigest d;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return d;
  auto [lo, hi] = sit->second.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (!Alive(it->second, now)) continue;
    d.hash += ValueHash(it->second);
    ++d.count;
  }
  return d;
}

std::map<Key, LocalStore::KeyDigest> LocalStore::DigestRange(
    const std::string& ns, Key from, Key to, sim::SimTime now) const {
  std::map<Key, KeyDigest> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  // Full walk, like ExtractRange: the (from, to] arc may wrap the ring, so
  // the membership test does the work rather than iterator bounds.
  for (const auto& [k, v] : sit->second) {
    if (!InOpenClosed(from, to, k)) continue;
    if (!Alive(v, now)) continue;
    KeyDigest& d = out[k];
    d.hash += ValueHash(v);
    ++d.count;
  }
  return out;
}

std::vector<StoredValue> LocalStore::ExtractAll(const std::string& ns) {
  InvalidateNamespace(ns);
  std::vector<StoredValue> out;
  auto sit = spaces_.find(ns);
  if (sit == spaces_.end()) return out;
  out.reserve(sit->second.size());
  for (auto& [k, v] : sit->second) {
    total_bytes_ -= v.value.size();
    out.push_back(std::move(v));
  }
  sit->second.clear();
  return out;
}

std::vector<std::string> LocalStore::Namespaces() const {
  std::vector<std::string> out;
  out.reserve(spaces_.size());
  for (const auto& [ns, _] : spaces_) out.push_back(ns);
  return out;
}

size_t LocalStore::PurgeExpired(sim::SimTime now) {
  // Cached images never include entries dead at their build time, and
  // `valid_until` retires them before any baked-in entry dies, so the purge
  // itself does not change what GetBatch serves — no invalidation needed.
  size_t dropped = 0;
  for (auto& [ns, space] : spaces_) {
    for (auto it = space.begin(); it != space.end();) {
      if (!Alive(it->second, now)) {
        total_bytes_ -= it->second.value.size();
        it = space.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

size_t LocalStore::TotalEntries(sim::SimTime now) const {
  size_t n = 0;
  for (const auto& [ns, space] : spaces_) {
    for (const auto& [k, v] : space) {
      if (Alive(v, now)) ++n;
    }
  }
  return n;
}

}  // namespace pierstack::dht
