#include "dht/ring_oracle.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "dht/chord.h"

namespace pierstack::dht {

namespace {

std::string HostStr(sim::HostId h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "host %u", h);
  return std::string(buf);
}

}  // namespace

RingOracleReport RingOracle::Check(sim::SimTime now) const {
  RingOracleReport report;
  auto fail = [&](bool* flag, const std::string& what) {
    *flag = false;
    if (report.detail.empty()) report.detail = what;
  };

  // Live membership, ground truth: the deployment knows who is up.
  std::vector<DhtNode*> live;
  std::map<sim::HostId, DhtNode*> by_host;
  for (size_t i = 0; i < deployment_->size(); ++i) {
    DhtNode* n = deployment_->node(i);
    if (!n->joined()) continue;
    live.push_back(n);
    by_host[n->host()] = n;
  }
  if (live.empty()) return report;  // nothing to assert against

  // --- connectivity: successor-graph walk visits every live node.
  // --- ordering: the walked cycle wraps the id space exactly once.
  auto* first_chord = dynamic_cast<ChordRouting*>(&live[0]->routing());
  if (first_chord != nullptr && live.size() > 1) {
    std::set<sim::HostId> visited;
    DhtNode* cur = live[0];
    size_t wraps = 0;
    size_t steps = 0;
    bool walk_ok = true;
    while (steps <= live.size()) {
      visited.insert(cur->host());
      auto* c = dynamic_cast<ChordRouting*>(&cur->routing());
      NodeInfo succ = c->successor();
      if (!succ.valid()) {
        fail(&report.connectivity,
             HostStr(cur->host()) + " has no successor");
        walk_ok = false;
        break;
      }
      auto it = by_host.find(succ.host);
      if (it == by_host.end()) {
        fail(&report.connectivity, HostStr(cur->host()) +
                                       " successor names dead " +
                                       HostStr(succ.host));
        walk_ok = false;
        break;
      }
      if (succ.id < cur->id()) ++wraps;  // clockwise wrap past 0
      cur = it->second;
      ++steps;
      if (cur == live[0]) break;
    }
    if (walk_ok) {
      if (cur != live[0]) {
        fail(&report.connectivity, "successor walk never closed a cycle");
      } else if (visited.size() != live.size()) {
        fail(&report.connectivity,
             "successor cycle covers " + std::to_string(visited.size()) +
                 " of " + std::to_string(live.size()) + " live nodes");
      }
      // A well-ordered cycle of distinct ids passes 0 exactly once. More
      // wraps means the pointers double back — mis-ordered even when every
      // node was visited. (Self-loops broke out above via connectivity.)
      if (wraps != 1) {
        fail(&report.ordering,
             "successor cycle wraps the id space " + std::to_string(wraps) +
                 " times (want 1)");
      }
    }
  }

  // --- predecessors_valid: no live node points its predecessor at a dead
  // host. (A predecessor id mismatch alone is legal mid-stabilization; a
  // dead HOST is the dangling pointer eviction should have cleared.)
  for (DhtNode* n : live) {
    auto* c = dynamic_cast<ChordRouting*>(&n->routing());
    if (c == nullptr) continue;
    NodeInfo pred = c->predecessor();
    if (pred.valid() && by_host.find(pred.host) == by_host.end()) {
      fail(&report.predecessors_valid,
           HostStr(n->host()) + " predecessor names dead " +
               HostStr(pred.host));
    }
  }

  // --- data invariants over the tracked keys.
  size_t floor =
      std::min(static_cast<size_t>(deployment_->options().replication),
               live.size());
  for (const Tracked& t : tracked_) {
    DhtNode* owner = deployment_->ExpectedOwner(t.key);
    if (owner != nullptr && !owner->routing().IsOwner(t.key)) {
      fail(&report.ownership_cover,
           HostStr(owner->host()) + " disclaims tracked key it owns");
    }
    size_t copies = 0;
    for (DhtNode* n : live) {
      if (n->store().Has(t.ns, t.key, now)) ++copies;
    }
    if (copies == 0) {
      fail(&report.no_orphans, "tracked key in ns '" + t.ns +
                                   "' has no live copy anywhere");
    }
    if (copies < floor) {
      fail(&report.replication_floor,
           "tracked key in ns '" + t.ns + "' has " +
               std::to_string(copies) + " copies (floor " +
               std::to_string(floor) + ")");
    }
  }

  return report;
}

}  // namespace pierstack::dht
