// DhtDeployment: convenience owner of a whole simulated DHT.
//
// Static bring-up (the experiments' common case): N nodes with distinct
// random ring keys, routing tables built from global knowledge. Dynamic
// joins/leaves remain available on the returned nodes.
#pragma once

#include <memory>
#include <vector>

#include "dht/node.h"

namespace pierstack::dht {

/// Owns the nodes of one DHT overlay attached to an existing network.
class DhtDeployment {
 public:
  /// Creates `n` nodes with distinct pseudo-random keys (from `seed`) and
  /// installs static routing state on each.
  DhtDeployment(sim::Network* network, size_t n, const DhtOptions& options,
                uint64_t seed);

  /// Adds one more node with a random key via the dynamic join protocol,
  /// bootstrapped through node 0. Caller runs the simulator to let the join
  /// and stabilization complete. Chord only.
  DhtNode* AddNodeDynamic(uint64_t key_seed);

  size_t size() const { return nodes_.size(); }
  DhtNode* node(size_t i) { return nodes_[i].get(); }
  const std::vector<std::unique_ptr<DhtNode>>& nodes() const { return nodes_; }

  /// The node currently responsible for `k` according to global membership
  /// (live nodes only) — ground truth for tests.
  DhtNode* ExpectedOwner(Key k);

  DhtMetrics& metrics() { return metrics_; }
  const DhtOptions& options() const { return options_; }

  /// Rebuilds every live node's routing state from current global
  /// membership (e.g. after scripted crashes, to model converged repair).
  void RebuildStaticTables();

 private:
  std::vector<NodeInfo> LiveMembersSorted() const;

  sim::Network* network_;
  DhtOptions options_;
  DhtMetrics metrics_;
  std::vector<std::unique_ptr<DhtNode>> nodes_;
};

}  // namespace pierstack::dht
