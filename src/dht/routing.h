// Routing table abstraction shared by the two structured overlays.
//
// The paper's system runs on the Bamboo DHT but depends only on generic
// key-based routing (O(log N) hops) and key→owner agreement. We provide two
// interchangeable implementations — a Chord-style ring (chord.h) and a
// Bamboo/Pastry-style prefix router (bamboo.h) — so the overlay choice can
// be ablated.
#pragma once

#include <memory>
#include <vector>

#include "dht/id.h"

namespace pierstack::dht {

/// Which overlay implementation a node uses.
enum class OverlayKind {
  kChord,
  kBamboo,
};

/// Per-node routing state: next-hop selection plus ownership test.
class RoutingTable {
 public:
  virtual ~RoutingTable() = default;

  /// This node's identity.
  virtual NodeInfo self() const = 0;

  /// Rebuilds the table from a full, id-sorted membership list (static
  /// deployment — the common case in the experiments).
  virtual void BuildStatic(const std::vector<NodeInfo>& sorted_members) = 0;

  /// True iff this node is responsible for `target`.
  virtual bool IsOwner(Key target) const = 0;

  /// The neighbor to forward a message for `target` to; returns self() when
  /// the message should be delivered locally (owner, or no strictly closer
  /// node is known — best-effort delivery on stale tables).
  virtual NodeInfo NextHop(Key target) const = 0;

  /// Nodes that should hold replicas of this node's keys (closest k peers
  /// in the overlay's own metric), excluding self. May return fewer than k.
  virtual std::vector<NodeInfo> ReplicaTargets(size_t k) const = 0;

  /// Drops a failed peer from all routing state.
  virtual void RemovePeer(sim::HostId host) = 0;

  /// All distinct peers currently known (for diagnostics/tests).
  virtual std::vector<NodeInfo> KnownPeers() const = 0;
};

}  // namespace pierstack::dht
