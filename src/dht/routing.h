// Routing module shared by the two structured overlays: the per-node
// routing *table* abstraction plus the pluggable next-hop *policy* that
// picks among its candidates.
//
// The paper's system runs on the Bamboo DHT but depends only on generic
// key-based routing (O(log N) hops) and key→owner agreement. We provide two
// interchangeable table implementations — a Chord-style ring (chord.h) and
// a Bamboo/Pastry-style prefix router (bamboo.h) — so the overlay choice
// can be ablated, and two next-hop policies:
//
//  * kClassicChord — the table's own greedy pick, purely by ID distance
//    (the legacy behavior, bit-for-bit).
//  * kCongestionAware — Bamboo-style load-balanced routing: among the
//    peers that make strict ring progress toward the target, score each
//    candidate by remaining-distance (an expected-hops proxy) plus a
//    congestion penalty from the destination's sim::DestinationLoad
//    (queued messages/bytes + decayed latency EWMA), and route around
//    backed-up hops. Every candidate makes strict progress in the
//    overlay's own metric, so biased routing terminates and never loops;
//    with no live load signal it degrades to the classic greedy pick.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "dht/id.h"

namespace pierstack::dht {

/// Which overlay implementation a node uses.
enum class OverlayKind {
  kChord,
  kBamboo,
};

/// Which next-hop policy a node routes with.
enum class RoutingPolicyKind {
  /// The overlay table's own greedy, distance-only choice — the legacy
  /// routing path, preserved exactly (owner-location cache disabled too).
  kClassicChord,
  /// Congestion-biased choice over the progress-candidate set.
  kCongestionAware,
};

/// The deployment-wide default: kCongestionAware, unless the environment
/// variable PIERSTACK_ROUTING_POLICY is set to "classic" (the CI matrix leg
/// that proves the legacy routing path stays green runs tier-1 under it).
RoutingPolicyKind DefaultRoutingPolicyKind();

/// Per-node routing state: next-hop selection plus ownership test.
class RoutingTable {
 public:
  virtual ~RoutingTable() = default;

  /// This node's identity.
  virtual NodeInfo self() const = 0;

  /// Rebuilds the table from a full, id-sorted membership list (static
  /// deployment — the common case in the experiments).
  virtual void BuildStatic(const std::vector<NodeInfo>& sorted_members) = 0;

  /// True iff this node is responsible for `target`.
  virtual bool IsOwner(Key target) const = 0;

  /// The neighbor to forward a message for `target` to; returns self() when
  /// the message should be delivered locally (owner, or no strictly closer
  /// node is known — best-effort delivery on stale tables).
  virtual NodeInfo NextHop(Key target) const = 0;

  /// Appends every known peer a policy may forward a message for `target`
  /// to: each candidate makes STRICT progress toward the target in the
  /// overlay's own routing metric, so any choice among them terminates and
  /// never loops. NOTE: the classic NextHop pick is NOT guaranteed to be
  /// in this set — a Bamboo prefix hop can extend the shared prefix while
  /// being numerically farther than self — so policies must score the
  /// classic pick separately rather than expect it among the candidates.
  /// Candidates may repeat (fingers and successors overlap); policies
  /// dedupe by host.
  virtual void AppendProgressCandidates(Key target,
                                        std::vector<NodeInfo>* out) const = 0;

  /// The overlay's routing distance from a peer at `peer_id` to `target` —
  /// what greedy routing minimizes (clockwise distance on Chord, numeric
  /// ring distance on Bamboo). Smaller = fewer expected remaining hops.
  virtual Key RouteDistance(Key peer_id, Key target) const = 0;

  /// Nodes that should hold replicas of this node's keys (closest k peers
  /// in the overlay's own metric), excluding self. May return fewer than k.
  virtual std::vector<NodeInfo> ReplicaTargets(size_t k) const = 0;

  /// Drops a failed peer from all routing state. Implementations record the
  /// evicted peer in the remembered-peers set (see RememberedPeers) before
  /// forgetting it.
  virtual void RemovePeer(sim::HostId host) = 0;

  /// All distinct peers currently known (for diagnostics/tests).
  virtual std::vector<NodeInfo> KnownPeers() const = 0;

  /// Peers evicted from this table (detector timeouts, refused sends) that
  /// may merely be on the far side of a partition rather than dead. The
  /// ring-merge reconciliation timer (dht/node.cc) periodically probes one
  /// of these; contact with a live remembered peer is how two rings that
  /// healed around each other during a split find each other again. Bounded
  /// FIFO (oldest evicted first out), deduped by host, and an entry is
  /// dropped as soon as the peer is re-learned through any table mutation.
  const std::vector<NodeInfo>& RememberedPeers() const { return remembered_; }

  /// Seeds a remembered peer directly — used by durable node restart to
  /// carry the pre-crash peer list across the reboot.
  void RememberPeer(const NodeInfo& peer) { Remember(peer); }

  /// Drops `host` from the remembered set (peer re-learned or confirmed
  /// dead by a failed reconciliation probe).
  void ForgetRememberedPeer(sim::HostId host) {
    for (auto it = remembered_.begin(); it != remembered_.end(); ++it) {
      if (it->host == host) {
        remembered_.erase(it);
        return;
      }
    }
  }

 protected:
  /// Bound chosen to comfortably cover one side of a bisection of the
  /// deployments the harnesses run (tens of nodes) without letting a
  /// long-running churny node accumulate unbounded dead peers.
  static constexpr size_t kRememberedPeerLimit = 16;

  void Remember(const NodeInfo& peer) {
    if (!peer.valid()) return;
    ForgetRememberedPeer(peer.host);
    if (remembered_.size() >= kRememberedPeerLimit) {
      remembered_.erase(remembered_.begin());
    }
    remembered_.push_back(peer);
  }

 private:
  std::vector<NodeInfo> remembered_;
};

/// Pressure probe a policy scores candidates with; wired to
/// sim::Network::LoadOf by DhtNode.
using LoadProbe = std::function<sim::DestinationLoad(sim::HostId)>;

/// Tunables of the congestion-aware policy. All penalties are expressed in
/// "expected extra hops", the same currency as the remaining-distance
/// proxy, so a detour is taken exactly when the queueing it avoids is worth
/// more than the ring progress it gives up.
struct CongestionPolicyOptions {
  /// In-flight messages a destination may queue before it counts as backed
  /// up (plain request/reply pipelining is not congestion).
  uint32_t inflight_message_slack = 2;
  /// Each queued message past the slack costs one expected hop.
  double hops_per_inflight_message = 1.0;
  /// In-flight bytes tolerated before the byte penalty starts.
  size_t inflight_byte_slack = 32 * 1024;
  /// Each this-many queued bytes past the slack cost one expected hop.
  size_t inflight_bytes_per_hop = 16 * 1024;
  /// Smoothed delivery latency tolerated before the latency penalty starts
  /// (the network's ordinary base latency is not congestion).
  sim::SimTime latency_slack = 50 * sim::kMillisecond;
  /// Each this much smoothed delivery latency past the slack (the decayed
  /// EWMA — catches slow hosts whose queue happens to be empty right now)
  /// costs one expected hop.
  sim::SimTime latency_per_hop = 100 * sim::kMillisecond;
};

/// One next-hop decision.
struct NextHopChoice {
  NodeInfo next;        ///< self() means deliver locally (same as NextHop).
  bool detour = false;  ///< True when load bias overrode the classic pick.
};

/// Pluggable next-hop selection over a RoutingTable's candidates.
class NextHopPolicy {
 public:
  virtual ~NextHopPolicy() = default;
  virtual NextHopChoice Choose(const RoutingTable& table, Key target,
                               const LoadProbe& probe) const = 0;
};

/// Builds the policy for `kind`. `opts` applies to kCongestionAware.
std::unique_ptr<NextHopPolicy> MakeNextHopPolicy(
    RoutingPolicyKind kind, const CongestionPolicyOptions& opts = {});

}  // namespace pierstack::dht
