// ChurnDriver: executes a scripted churn timeline against a live
// DhtDeployment.
//
// A FaultPlan (sim/fault.h) describes WHEN membership changes happen
// (flash-crowd joins, correlated mass-leaves, restarts, sustained
// background churn); this driver binds those events to a deployment — each
// kCrash picks a random live non-bootstrap node and crashes it, each kJoin
// spins up a fresh node through the dynamic join protocol, and each
// kRestart revives a previously crashed node under its ORIGINAL identity
// (same HostId, same NodeId) through DhtNode::Restart. Selection is driven
// by the driver's own forked RNG, so a fixed seed reproduces the identical
// membership history event-for-event — including which node restarts —
// regardless of whether restarts run durable or amnesiac.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dht/builder.h"
#include "sim/fault.h"

namespace pierstack::dht {

/// What a scripted timeline actually did (counters for gates and tests).
struct ChurnStats {
  uint64_t crashes = 0;
  uint64_t joins = 0;
  uint64_t restarts = 0;
  /// Crash events skipped because no crashable node remained (everything
  /// but the bootstrap node already dead), plus restart events skipped
  /// because no crashed node was available to revive.
  uint64_t skipped = 0;
};

class ChurnDriver {
 public:
  /// `plan` is optional; when given, executed events are also counted into
  /// its churn counters so the network's exported fault counters include
  /// membership churn. Both pointers must outlive the driver.
  ChurnDriver(DhtDeployment* deployment, uint64_t seed,
              sim::FaultPlan* plan = nullptr);

  /// Schedules every event of `timeline` on the deployment's simulator.
  /// The caller then runs the simulator; events fire at their times.
  void Schedule(const std::vector<sim::ChurnEvent>& timeline);

  /// Whether kRestart events recover the durable image (store + identity +
  /// remembered peers) or come back amnesiac (identity only, empty store).
  /// Flip BEFORE running the simulator; defaults to durable.
  void set_restart_durable(bool durable) { restart_durable_ = durable; }

  const ChurnStats& stats() const { return stats_; }

 private:
  void Execute(sim::ChurnEvent::Kind kind);

  DhtDeployment* deployment_;
  Rng rng_;
  sim::FaultPlan* plan_;
  ChurnStats stats_;
  bool restart_durable_ = true;
  /// Deployment indices of nodes this driver crashed and has not yet
  /// restarted — the symmetric bookkeeping that lets kRestart revive a
  /// real victim instead of guessing. FIFO order is immaterial; the pick
  /// is RNG-driven for reproducibility.
  std::vector<size_t> crashed_;
};

}  // namespace pierstack::dht
