// DHT identifier space: a 64-bit circular key space.
//
// Both overlays (Chord-style and Bamboo-style) share this space. Keys are
// produced by hashing strings (keywords, fileIDs) with the deterministic
// FNV/SplitMix hashes in common/hashing.h.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hashing.h"
#include "sim/network.h"

namespace pierstack::dht {

/// A position on the identifier ring.
using Key = uint64_t;

/// A node's identity: ring position plus its simulated network address.
struct NodeInfo {
  Key id = 0;
  sim::HostId host = sim::kInvalidHost;

  bool valid() const { return host != sim::kInvalidHost; }
  friend bool operator==(const NodeInfo& a, const NodeInfo& b) {
    return a.id == b.id && a.host == b.host;
  }
};

/// Clockwise distance from `from` to `to` (wraps naturally in uint64).
inline Key ClockwiseDistance(Key from, Key to) { return to - from; }

/// Minimal ring distance (either direction); Pastry-style numerical
/// closeness.
inline Key RingDistance(Key a, Key b) {
  Key d = a - b;
  Key e = b - a;
  return d < e ? d : e;
}

/// True iff x ∈ (a, b] on the ring. By convention (a, a] is the full ring,
/// which makes a single-node ring own every key.
inline bool InOpenClosed(Key a, Key b, Key x) {
  if (a == b) return true;
  return ClockwiseDistance(a, x) != 0 &&
         ClockwiseDistance(a, x) <= ClockwiseDistance(a, b);
}

/// True iff x ∈ (a, b) on the ring; (a, a) is the full ring minus {a}.
inline bool InOpenOpen(Key a, Key b, Key x) {
  if (a == b) return x != a;
  return ClockwiseDistance(a, x) != 0 &&
         ClockwiseDistance(a, x) < ClockwiseDistance(a, b);
}

/// Hashes an arbitrary string to a ring key.
inline Key KeyForString(std::string_view s) { return Fnv1a64(s); }

/// Hashes a (namespace, key) pair, e.g. ("inverted", "madonna").
inline Key KeyForNamespaced(std::string_view ns, std::string_view s) {
  return HashCombine(Fnv1a64(ns), Fnv1a64(s));
}

/// Hex rendering for logs and tests.
inline std::string KeyToHex(Key k) { return HashToHex(k); }

}  // namespace pierstack::dht
