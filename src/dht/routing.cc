#include "dht/routing.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace pierstack::dht {

namespace {

/// Bit width of a ring distance — the expected-remaining-hops proxy
/// (halving the distance per hop is what greedy O(log N) routing does).
int DistanceBits(Key d) {
  int bits = 0;
  while (d != 0) {
    ++bits;
    d >>= 1;
  }
  return bits;
}

/// The classic policy: delegate to the table's own greedy pick.
class ClassicGreedyPolicy : public NextHopPolicy {
 public:
  NextHopChoice Choose(const RoutingTable& table, Key target,
                       const LoadProbe&) const override {
    return NextHopChoice{table.NextHop(target), false};
  }
};

class CongestionAwarePolicy : public NextHopPolicy {
 public:
  explicit CongestionAwarePolicy(const CongestionPolicyOptions& opts)
      : opts_(opts) {}

  NextHopChoice Choose(const RoutingTable& table, Key target,
                       const LoadProbe& probe) const override {
    NodeInfo classic = table.NextHop(target);
    if (classic.host == table.self().host) {
      // The table says deliver locally (owner, or best-effort on a stale
      // table); a policy never overrides delivery.
      return NextHopChoice{classic, false};
    }
    double classic_penalty = CongestionPenaltyHops(probe(classic.host));
    if (classic_penalty <= 0) {
      // The classic pick is not backed up: route exactly like classic
      // Chord/Bamboo. Detours exist to dodge congestion, not to second-
      // guess the overlay's own distance metric.
      return NextHopChoice{classic, false};
    }
    candidates_.clear();
    table.AppendProgressCandidates(target, &candidates_);
    double classic_score =
        static_cast<double>(
            DistanceBits(table.RouteDistance(classic.id, target))) +
        classic_penalty;
    NodeInfo best;
    double best_score = 0;
    Key best_dist = 0;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      const NodeInfo& cand = candidates_[i];
      if (!cand.valid() || cand.host == classic.host) continue;
      // Candidates may repeat (fingers, successors and leaves overlap);
      // probe each host once.
      bool seen = false;
      for (size_t j = 0; j < i && !seen; ++j) {
        seen = candidates_[j].host == cand.host;
      }
      if (seen) continue;
      Key dist = table.RouteDistance(cand.id, target);
      double score = static_cast<double>(DistanceBits(dist)) +
                     CongestionPenaltyHops(probe(cand.host));
      // Deterministic tie-break: smaller remaining distance, then id.
      if (!best.valid() || score < best_score ||
          (score == best_score &&
           (dist < best_dist || (dist == best_dist && cand.id < best.id)))) {
        best = cand;
        best_score = score;
        best_dist = dist;
      }
    }
    if (best.valid() && best_score < classic_score) {
      return NextHopChoice{best, true};
    }
    // All alternatives are at least as bad (or none exist): the greedy
    // fallback guarantee — never worse than classic routing.
    return NextHopChoice{classic, false};
  }

 private:
  double CongestionPenaltyHops(const sim::DestinationLoad& load) const {
    double hops = 0;
    if (load.in_flight_messages > opts_.inflight_message_slack) {
      hops += opts_.hops_per_inflight_message *
              static_cast<double>(load.in_flight_messages -
                                  opts_.inflight_message_slack);
    }
    if (load.in_flight_bytes > opts_.inflight_byte_slack &&
        opts_.inflight_bytes_per_hop > 0) {
      hops += static_cast<double>(load.in_flight_bytes -
                                  opts_.inflight_byte_slack) /
              static_cast<double>(opts_.inflight_bytes_per_hop);
    }
    if (opts_.latency_per_hop > 0 &&
        load.smoothed_latency > opts_.latency_slack) {
      hops += static_cast<double>(load.smoothed_latency -
                                  opts_.latency_slack) /
              static_cast<double>(opts_.latency_per_hop);
    }
    return hops;
  }

  CongestionPolicyOptions opts_;
  /// Scratch candidate buffer — Choose is on the per-message fast path and
  /// must not allocate once warmed. Policies are per-node, single-threaded.
  mutable std::vector<NodeInfo> candidates_;
};

}  // namespace

RoutingPolicyKind DefaultRoutingPolicyKind() {
  const char* env = std::getenv("PIERSTACK_ROUTING_POLICY");
  if (env != nullptr && std::string_view(env) == "classic") {
    return RoutingPolicyKind::kClassicChord;
  }
  return RoutingPolicyKind::kCongestionAware;
}

std::unique_ptr<NextHopPolicy> MakeNextHopPolicy(
    RoutingPolicyKind kind, const CongestionPolicyOptions& opts) {
  switch (kind) {
    case RoutingPolicyKind::kClassicChord:
      return std::make_unique<ClassicGreedyPolicy>();
    case RoutingPolicyKind::kCongestionAware:
      return std::make_unique<CongestionAwarePolicy>(opts);
  }
  return nullptr;
}

}  // namespace pierstack::dht
