#include "dht/churn.h"

#include <cstddef>

namespace pierstack::dht {

ChurnDriver::ChurnDriver(DhtDeployment* deployment, uint64_t seed,
                         sim::FaultPlan* plan)
    : deployment_(deployment), rng_(seed), plan_(plan) {}

void ChurnDriver::Schedule(const std::vector<sim::ChurnEvent>& timeline) {
  // Churn events mutate topology and may touch any node, so they are
  // driver events: a sharded backend runs them serialized at epoch
  // barriers with every worker parked (sim/shard.h).
  sim::Executor* s = deployment_->node(0)->network()->executor();
  for (const sim::ChurnEvent& e : timeline) {
    s->ScheduleAt(sim::kDriverHost, e.time,
                  [this, kind = e.kind]() { Execute(kind); });
  }
}

void ChurnDriver::Execute(sim::ChurnEvent::Kind kind) {
  if (kind == sim::ChurnEvent::kJoin) {
    deployment_->AddNodeDynamic(rng_.Next());
    ++stats_.joins;
    if (plan_ != nullptr) plan_->CountChurn(sim::ChurnEvent::kJoin);
    return;
  }
  if (kind == sim::ChurnEvent::kRestart) {
    // Revive a node this driver previously crashed, under its original
    // identity. The RNG pick mirrors the crash path so a fixed seed yields
    // the same victim sequence in durable and amnesia runs alike.
    if (crashed_.empty()) {
      ++stats_.skipped;
      return;
    }
    size_t slot = rng_.NextBelow(crashed_.size());
    size_t pick = crashed_[slot];
    crashed_.erase(crashed_.begin() + static_cast<ptrdiff_t>(slot));
    deployment_->node(pick)->Restart(deployment_->node(0)->host(),
                                     restart_durable_);
    ++stats_.restarts;
    if (plan_ != nullptr) plan_->CountChurn(sim::ChurnEvent::kRestart);
    return;
  }
  // Crash a random live node. Node 0 is spared: it is the join bootstrap,
  // and killing it would turn every later kJoin into a no-op rather than
  // modeling churn.
  std::vector<size_t> live;
  for (size_t i = 1; i < deployment_->size(); ++i) {
    if (deployment_->node(i)->joined()) live.push_back(i);
  }
  if (live.empty()) {
    ++stats_.skipped;
    return;
  }
  size_t pick = live[rng_.NextBelow(live.size())];
  deployment_->node(pick)->Crash();
  crashed_.push_back(pick);
  ++stats_.crashes;
  if (plan_ != nullptr) plan_->CountChurn(sim::ChurnEvent::kCrash);
}

}  // namespace pierstack::dht
