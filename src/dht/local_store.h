// Per-node DHT storage: a namespaced soft-state multimap.
//
// PIER stores every tuple in the DHT (Section 2 of the paper); this is the
// node-local slice of that storage. Values are opaque byte strings plus the
// ring key they were published under; entries may carry an expiry time
// (soft state) and are purged lazily.
//
// Batched reads hand out shared immutable TupleBatch images. Hot posting
// lists are probed far more often than they change, so the assembled image
// of each (ns, key) is cached and re-served by shared pointer until a Put,
// Erase, extraction, or the expiry of a contained entry invalidates it —
// repeated probes cost a hash lookup instead of a re-concatenation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dht/id.h"
#include "sim/simulator.h"

namespace pierstack::dht {

/// One stored value.
struct StoredValue {
  Key key = 0;                    ///< Ring key it was published under.
  std::vector<uint8_t> value;     ///< Opaque payload (serialized tuple).
  sim::SimTime expiry = 0;        ///< 0 = never expires.
};

/// A shared immutable TupleBatch image (count prefix + frames). Handing
/// these out by pointer lets the reply path and the cache alias one
/// allocation instead of copying posting-list bytes per probe.
using BatchImage = std::shared_ptr<const std::vector<uint8_t>>;

/// Image-cache counters (tests and diagnostics).
struct ImageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  uint64_t size_evictions = 0;  ///< Images evicted by the byte bound.
};

/// Node-local namespaced store.
///
/// Not thread-safe; the simulator is single-threaded by design.
class LocalStore {
 public:
  /// Inserts a value under (ns, key). Duplicate payloads under the same key
  /// are de-duplicated (a re-publish refreshes the expiry instead).
  /// Returns true if a new entry was created.
  bool Put(const std::string& ns, Key key, std::vector<uint8_t> value,
           sim::SimTime expiry = 0);

  /// All live values stored under (ns, key).
  std::vector<const StoredValue*> Get(const std::string& ns, Key key,
                                      sim::SimTime now) const;

  /// True iff at least one live value is stored under (ns, key) — the
  /// allocation-free presence probe.
  bool Has(const std::string& ns, Key key, sim::SimTime now) const;

  /// All live values in a namespace (local scan).
  std::vector<const StoredValue*> Scan(const std::string& ns,
                                       sim::SimTime now) const;

  /// Batched Get: one contiguous pier::TupleBatch image (varint live-entry
  /// count, then the stored frames back-to-back). Because each stored
  /// value is a standalone tuple frame, the image is assembled by
  /// concatenation alone and decoded by the caller in a single pass. The
  /// assembled image is cached per (ns, key): repeated probes of a hot
  /// posting list return the same shared image until a write or the expiry
  /// of a contained entry invalidates it.
  BatchImage GetBatch(const std::string& ns, Key key, sim::SimTime now);

  /// Batched Scan: the whole namespace as one TupleBatch image (uncached —
  /// namespace-wide scans are cold-path).
  std::vector<uint8_t> ScanBatch(const std::string& ns,
                                 sim::SimTime now) const;

  /// Removes every value under (ns, key); returns how many were removed.
  size_t Erase(const std::string& ns, Key key);

  /// Removes entries whose ring key falls in (from, to] — used when handing
  /// a key range to a joining node. Returns the removed entries.
  std::vector<StoredValue> ExtractRange(const std::string& ns, Key from,
                                        Key to);

  /// Copies (without removing) entries whose ring key falls in (from, to]
  /// — the replication-preserving handover: a node shipping a range to its
  /// new predecessor keeps its local copies as replica state.
  std::vector<StoredValue> CollectRange(const std::string& ns, Key from,
                                        Key to) const;

  /// Order-independent digest of the live values under one (ns, key):
  /// a commutative sum of per-value hashes plus the live count. Two
  /// replicas holding the same value multiset produce the same digest
  /// regardless of insertion order; the anti-entropy re-sync protocol
  /// compares these per key to find divergent entries cheaply.
  struct KeyDigest {
    uint64_t hash = 0;    ///< Sum of avalanched per-value hashes (mod 2^64).
    uint32_t count = 0;   ///< Live values under the key.
    bool operator==(const KeyDigest& o) const {
      return hash == o.hash && count == o.count;
    }
    bool operator!=(const KeyDigest& o) const { return !(*this == o); }
  };

  KeyDigest DigestKey(const std::string& ns, Key key, sim::SimTime now) const;

  /// Digests every key with at least one live value whose ring key falls in
  /// (from, to] (wrap-safe). The returned map is what an arc owner ships to
  /// its replicas in a re-sync round.
  std::map<Key, KeyDigest> DigestRange(const std::string& ns, Key from,
                                       Key to, sim::SimTime now) const;

  /// Removes and returns every entry in a namespace (graceful departure).
  std::vector<StoredValue> ExtractAll(const std::string& ns);

  /// Namespaces present (including ones holding only expired entries until
  /// the next purge).
  std::vector<std::string> Namespaces() const;

  /// Drops expired entries; returns how many were dropped.
  size_t PurgeExpired(sim::SimTime now);

  /// Number of live entries across all namespaces.
  size_t TotalEntries(sim::SimTime now) const;

  /// Total bytes currently held: stored payloads (including
  /// expired-but-unpurged) PLUS the cached batch images — on a node hosting
  /// huge posting lists the images roughly double the footprint, so memory
  /// accounting must see them.
  size_t TotalBytes() const { return total_bytes_ + image_bytes_; }

  /// Bytes held by cached batch images alone.
  size_t ImageCacheBytes() const { return image_bytes_; }

  /// Caps the cached-image bytes per namespace; images are evicted (oldest
  /// insertion first) until the new image fits. Images larger than the cap
  /// are served but not cached.
  void set_max_image_cache_bytes_per_ns(size_t bytes) {
    max_image_bytes_per_ns_ = bytes;
  }

  const ImageCacheStats& image_cache_stats() const { return cache_stats_; }

 private:
  /// One cached batch image. `valid_until` is the earliest expiry among the
  /// entries baked into the image (0 = none expire): past it the image
  /// would include dead entries, so it self-invalidates. `seq` orders
  /// insertions for size eviction (oldest first).
  struct CachedImage {
    BatchImage image;
    sim::SimTime valid_until = 0;
    uint64_t seq = 0;
  };

  /// Per-namespace image cache plus its byte accounting.
  struct NamespaceCache {
    std::unordered_map<Key, CachedImage> images;
    size_t bytes = 0;
  };

  /// Bound on cached images per namespace; crossing it drops the whole
  /// namespace cache (cheap, and refill is one concatenation per hot key).
  static constexpr size_t kMaxCachedImagesPerNs = 1024;
  /// Default byte bound per namespace cache (see set_max_image_cache_...).
  static constexpr size_t kDefaultMaxImageBytesPerNs = 4 << 20;

  void InvalidateImage(const std::string& ns, Key key);
  void InvalidateNamespace(const std::string& ns);
  void DropNamespaceCache(NamespaceCache* cache);
  /// Evicts oldest-inserted images from `cache` until at least `needed`
  /// bytes fit under the per-namespace cap.
  void EvictImagesForSpace(NamespaceCache* cache, size_t needed);

  // ns -> (key -> values). std::map on key so ExtractRange can walk ranges.
  std::map<std::string, std::multimap<Key, StoredValue>> spaces_;
  std::map<std::string, NamespaceCache> image_cache_;
  ImageCacheStats cache_stats_;
  size_t total_bytes_ = 0;
  size_t image_bytes_ = 0;
  size_t max_image_bytes_per_ns_ = kDefaultMaxImageBytesPerNs;
  uint64_t image_seq_ = 0;

  static bool Alive(const StoredValue& v, sim::SimTime now) {
    return v.expiry == 0 || v.expiry > now;
  }
};

}  // namespace pierstack::dht
