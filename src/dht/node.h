// DhtNode: one DHT participant — key-based routing with upcalls, put/get
// with replication, and ring maintenance (join / stabilize / failure
// repair, Chord-style).
//
// This is the messaging + storage substrate PIER runs on (paper Section 2:
// "With the exception of query answers, all messages are sent via the DHT
// routing layer. PIER also stores all temporary tuples ... in the DHT.").
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "dht/local_store.h"
#include "dht/route_cache.h"
#include "dht/routing.h"
#include "sim/network.h"

namespace pierstack::dht {

class ChordRouting;

/// A message being routed to the owner of `target`. Applications attach an
/// opaque payload and receive the whole RouteMsg in their upcall.
struct RouteMsg {
  Key target = 0;
  NodeInfo origin;   ///< The node that initiated the route.
  uint32_t hops = 0; ///< Overlay hops taken so far.
  int app_type = 0;  ///< Application discriminator (>= kAppUserBase for apps).
  uint64_t req_id = 0;
  size_t app_bytes = 0;  ///< Payload wire size (header added separately).
  /// Set on the last hop by the key's Chord predecessor ("the key lies in
  /// (me, successor]"), telling the receiver to deliver unconditionally.
  /// This keeps delivery correct while the receiver's own predecessor
  /// pointer is stale (mid-join or after a crash).
  bool final_hop = false;
  /// Set when the origin short-circuited the first hop through its owner
  /// location cache. NOT a delivery marker: a stale receiver forwards the
  /// message along the ring like any other. A delivery with via_cache and
  /// hops > 1 is a detected misprediction (counted stale; the owner's
  /// hint re-teaches the origin).
  bool via_cache = false;
  /// Set with via_cache when the origin's classic ring first hop was NOT
  /// the cached owner: if the prediction holds (delivered at hop 1), the
  /// fast path provably skipped at least one ring hop.
  bool cache_skipped_hop = false;
  std::shared_ptr<const void> app_body;

  template <typename T>
  const T& body() const {
    return *static_cast<const T*>(app_body.get());
  }
};

/// Built-in routed application types; user apps start at kAppUserBase.
enum RoutedApp : int {
  kAppPut = 1,
  kAppGet = 2,
  kAppJoinLookup = 3,
  kAppFingerLookup = 4,
  kAppLookup = 5,
  kAppPutBatch = 6,
  kAppGetBatch = 7,
  kAppGetMulti = 8,
  kAppUserBase = 100,
};

/// Aggregate counters shared by all nodes of one deployment.
struct DhtMetrics {
  RelaxedCounter routes_initiated;
  RelaxedCounter routes_delivered;
  RelaxedCounter routes_dropped;  ///< Hop-limit exceeded.
  RelaxedCounter total_hops;      ///< Over delivered routes.
  RelaxedMax max_hops;
  RelaxedCounter puts;
  RelaxedCounter gets;
  RelaxedCounter batch_puts;        ///< PutBatch messages (any value count).
  RelaxedCounter batch_put_values;  ///< Values carried by PutBatch messages.
  RelaxedCounter batch_gets;
  /// Routed MultiGet messages (initial sends + owner-to-owner forwards):
  /// one per distinct owner visited, the coalesced answer-fetch cost.
  RelaxedCounter multi_gets;
  RelaxedCounter multi_get_keys;    ///< Keys requested across MultiGet calls.
  /// MultiGet keys answered by a replica holder instead of the key's owner
  /// (replica-aware scatter shortcut; 0 when replication == 1).
  RelaxedCounter replica_peels;
  /// One-hop replica handoffs taken by the MultiGet scatter in place of an
  /// owner-by-owner walk.
  RelaxedCounter replica_skips;
  /// Replica-preferring MultiGets diverted from the primary owner to its
  /// successor at the final hop (the hedged-fetch backup path).
  RelaxedCounter hedge_redirects;
  /// Routes whose origin short-circuited the first hop to a cached owner
  /// (the one-hop fast path; ring routing remains the fallback).
  RelaxedCounter route_cache_hits;
  /// Routes that had to start on the ring because no cached arc covered
  /// the target.
  RelaxedCounter route_cache_misses;
  /// Cache entries proven wrong: refused fast-path sends, mispredicted
  /// fast paths delivered past hop 1 (stale-but-alive old owners), hints
  /// that replaced a different remembered owner for the same arc, and
  /// old-epoch arcs purged when a membership epoch bump fences the cache
  /// (e.g. OwnerHints learned across a since-healed partition).
  RelaxedCounter route_cache_stale;
  /// Ring hops provably avoided by cache hits. Conservative lower bound:
  /// counts 1 per CORRECTLY predicted fast path (delivered at hop 1)
  /// whose classic first hop was not already the owner (the true saving
  /// per hit is the full ring path minus one).
  RelaxedCounter hops_saved;
  /// Next-hop choices where congestion bias overrode the classic
  /// distance-only pick (the hop routed AROUND a backed-up peer).
  RelaxedCounter congestion_detours;
  /// Liveness pings sent by the proactive failure detector.
  RelaxedCounter detector_pings;
  /// Peers evicted by the detector (ping-miss threshold crossed) — churn
  /// discovered by probing, ahead of any refused application send.
  RelaxedCounter detector_evictions;
  /// Membership epoch bumps across all nodes: ownership-changing events
  /// (join adoption, predecessor/successor movement, crash repair) that
  /// fenced cached routing state.
  RelaxedCounter epoch_bumps;
  /// Anti-entropy rounds started by arc owners after a membership change.
  RelaxedCounter resync_rounds;
  /// Entries shipped to replicas by re-sync pulls.
  RelaxedCounter resync_entries;
  /// Payload bytes shipped by re-sync pulls.
  RelaxedCounter resync_bytes;
  /// Get/GetBatch/MultiGet attempt re-sends after an attempt timeout (the
  /// in-flight-owner-crash recovery path).
  RelaxedCounter get_retries;
  /// Reconciliation probes sent to remembered (evicted) peers by the
  /// low-cadence ring-merge timer.
  RelaxedCounter merge_probes;
  /// Merge probes received from a host absent from the receiver's routing
  /// table — contact across a ring boundary (foreign or healed ring).
  RelaxedCounter merge_contacts;
  /// Merge replies integrated by the probing side — one completed
  /// probe/reply reconciliation round.
  RelaxedCounter merge_rounds;
  /// Remembered (previously evicted) peers re-contacted alive — each one is
  /// a detected partition heal: the peer was never dead, just unreachable.
  RelaxedCounter partition_heals;

  double MeanHops() const {
    return routes_delivered == 0
               ? 0.0
               : static_cast<double>(total_hops) /
                     static_cast<double>(routes_delivered);
  }
};

/// Tunables for a DHT deployment.
struct DhtOptions {
  OverlayKind overlay = OverlayKind::kChord;
  size_t replication = 1;  ///< Copies per key (1 = owner only).
  /// With replication > 1, let the MultiGet scatter peel keys at replica
  /// holders: each visited node hands the remainder one hop to the farthest
  /// successor still inside every remaining arc key's replica set, which
  /// answers up to `replication` owners' key ranges at once. Off = always
  /// walk the primary owner chain (the K-owner baseline).
  bool replica_aware_multiget = true;
  /// With replication > 1, single-key Get/GetBatch requests stop at the
  /// first replica met on the routing path: an intermediate hop that holds
  /// data under (ns, key) answers in the owner's stead (the same
  /// Has-gated peel rule as the MultiGet arc answer — a hop with an EMPTY
  /// store never short-circuits, so replication lag still resolves at the
  /// owner authoritatively). Off = always route to the primary owner.
  bool replica_aware_reads = true;
  /// Next-hop policy (dht/routing.h): kCongestionAware scores ring-progress
  /// candidates by remaining distance plus destination pressure and routes
  /// around backed-up hops; kClassicChord is the legacy distance-only path
  /// bit-for-bit (and forces the owner location cache off). The default is
  /// env-overridable so a CI leg can run the whole suite on the legacy
  /// path (PIERSTACK_ROUTING_POLICY=classic).
  RoutingPolicyKind routing_policy = DefaultRoutingPolicyKind();
  /// Learn (key arc → owner address) from routed replies/acks and try a
  /// direct one-hop send before ring routing (see dht/route_cache.h).
  /// Ignored — forced off — under kClassicChord.
  bool owner_location_cache = true;
  size_t route_cache_capacity = 256;
  /// Congestion-penalty tuning for kCongestionAware.
  CongestionPolicyOptions congestion;
  uint32_t max_route_hops = 128;
  /// Run periodic ring maintenance (stabilize + fix-fingers) on statically
  /// bootstrapped nodes. Off by default so static simulations quiesce;
  /// dynamically joined nodes always run maintenance.
  bool maintenance = false;
  sim::SimTime stabilize_interval = 500 * sim::kMillisecond;
  sim::SimTime fix_finger_interval = 250 * sim::kMillisecond;
  sim::SimTime rpc_timeout = 2 * sim::kSecond;
  sim::SimTime get_timeout = 10 * sim::kSecond;
  /// Proactive failure detector: periodic liveness pings to the ring
  /// neighborhood (predecessor, leading successors, a rotating finger),
  /// with eviction after `ping_miss_threshold` unanswered rounds. Runs
  /// only where maintenance timers run; decoupled from the stabilize
  /// cadence so suspicion latency is bounded by the ping interval, not by
  /// whoever stabilize happens to probe. Matters most under partitions,
  /// where refused-send detection never triggers (the peer is reachable
  /// in neither direction, so nothing is ever sent to it to be refused).
  bool failure_detector = true;
  sim::SimTime ping_interval = 300 * sim::kMillisecond;
  uint32_t ping_miss_threshold = 2;
  /// Replica re-sync cadence: a node whose ownership or replica set
  /// changed anti-entropy-syncs its owned arc (digests out, missing
  /// entries pulled back) once per interval until clean.
  sim::SimTime resync_interval = 1 * sim::kSecond;
  /// Ring-merge reconciliation cadence: a node holding remembered
  /// (detector-evicted) peers probes one of them per interval. A live
  /// answer means the peer was partitioned, not dead — the probe/reply
  /// exchange cross-pollinates successor views and loopy stabilization
  /// knits the two rings back together (Bamboo-lineage reintegration;
  /// reactive-only recovery never re-merges a split brain). Low cadence on
  /// purpose: the steady-state cost is one tiny probe per interval per
  /// node that has evicted anyone, and zero otherwise. 0 disables.
  sim::SimTime reconcile_interval = 2 * sim::kSecond;
  /// Re-send attempts for Get/GetBatch/MultiGet after an attempt timeout.
  /// Attempt deadlines back off geometrically and sum to `get_timeout`,
  /// so the caller-visible total deadline is unchanged; 0 restores the
  /// single-attempt behavior bit-for-bit.
  uint32_t get_retries = 2;
};

/// One DHT node. Create via DhtBuilder (static deployments) or construct
/// directly and call JoinViaBootstrap (dynamic).
class DhtNode : public sim::Host {
 public:
  using GetCallback =
      std::function<void(Status, std::vector<std::vector<uint8_t>>)>;
  /// Batched get: the owner's values under (ns, key) as one contiguous
  /// pier::TupleBatch image (count prefix + concatenated frames), shared
  /// straight out of the owner's image cache (null on timeout).
  using GetBatchCallback = std::function<void(Status, BatchImage batch)>;
  /// One key's answer within a MultiGet reply.
  struct MultiGetItem {
    Key key = 0;
    BatchImage batch;
  };
  /// Fires once every requested key has been answered (or on timeout, with
  /// the items gathered so far).
  using MultiGetCallback =
      std::function<void(Status, std::vector<MultiGetItem>)>;
  using PutCallback = std::function<void(Status)>;
  using LookupCallback = std::function<void(Status, NodeInfo owner,
                                            uint32_t hops)>;
  using UpcallHandler = std::function<void(const RouteMsg&)>;
  using DirectHandler =
      std::function<void(sim::HostId from, const sim::Message&)>;

  /// The node registers itself with `network` and remembers its HostId.
  DhtNode(sim::Network* network, Key id, const DhtOptions& options,
          DhtMetrics* metrics);
  ~DhtNode() override;

  NodeInfo info() const { return routing_->self(); }
  Key id() const { return routing_->self().id; }
  sim::HostId host() const { return routing_->self().host; }
  sim::Network* network() { return network_; }
  LocalStore& store() { return store_; }
  const LocalStore& store() const { return store_; }
  RoutingTable& routing() { return *routing_; }

  // --- Overlay lifecycle -------------------------------------------------

  /// Static bring-up: install routing state from the full membership list
  /// and mark the node joined. Used by DhtBuilder.
  void BootstrapStatic(const std::vector<NodeInfo>& sorted_members);

  /// Dynamic join through any live node. Ring maintenance timers start on
  /// completion. Chord overlay only.
  void JoinViaBootstrap(sim::HostId bootstrap);

  /// Graceful departure: hands stored keys to the successor and detaches.
  void LeaveGracefully();

  /// Simulates a crash: the host goes silent; peers repair around it.
  /// Before going dark the node snapshots a DurableImage — its local store,
  /// ring id, and peer list — the state a real node's disk survives a power
  /// cycle with. Restart() consumes it.
  void Crash();

  /// Reboots a crashed node under its ORIGINAL identity (same HostId, same
  /// ring key) and rejoins through `bootstrap`. With `durable` (the normal
  /// reboot) the node recovers its store and remembered peers from the
  /// crash-time DurableImage, so post-join anti-entropy re-ships only the
  /// entries that diverged while it was down; with durable=false (amnesia —
  /// the disk was lost) it comes back empty and every entry must be
  /// re-shipped. No-op unless the node is currently crashed.
  void Restart(sim::HostId bootstrap, bool durable = true);

  bool joined() const { return joined_; }
  bool crashed() const { return crashed_; }

  // --- Core API (paper's put/get/route interface) ------------------------

  /// Routes an application payload to the owner of `target`; the owner's
  /// registered upcall for `app_type` fires with the RouteMsg.
  void Route(Key target, int app_type, std::shared_ptr<const void> body,
             size_t body_bytes, uint64_t req_id = 0);

  /// Stores value under (ns, key) at the key's owner (+ replicas).
  void Put(const std::string& ns, Key key, std::vector<uint8_t> value,
           sim::SimTime expiry = 0, PutCallback callback = nullptr);

  /// Stores many values under (ns, key) with ONE routed message — the
  /// coalesced-rehash primitive. `frames` is `value_count` length-prefixed
  /// values back-to-back (varint length + bytes each, i.e. BytesWriter
  /// PutString framing), built by the sender as one buffer. Charges one
  /// route header for the whole batch instead of one per value; the owner
  /// splits the frames and stores each as its own soft-state entry
  /// (dedup/refresh semantics identical to Put).
  void PutBatch(const std::string& ns, Key key, std::vector<uint8_t> frames,
                size_t value_count, sim::SimTime expiry = 0,
                PutCallback callback = nullptr);

  /// Fetches all values under (ns, key) from the key's owner.
  void Get(const std::string& ns, Key key, GetCallback callback);

  /// Batched Get: the reply is one TupleBatch image built by the owner's
  /// LocalStore::GetBatch — decoded once by the caller instead of one
  /// deserialize per value.
  void GetBatch(const std::string& ns, Key key, GetBatchCallback callback);

  /// Owner-coalesced multi-key Get: fetches the batch images of many keys
  /// with one routed message per distinct owner. The request routes to the
  /// first key's owner, which answers every requested key it owns in one
  /// reply and forwards the remainder as one re-routed message to the next
  /// key's owner — a chained scatter that visits each owner exactly once,
  /// so a K-owner key set costs exactly K routed get messages instead of
  /// one per key. Duplicate keys are collapsed before routing.
  void MultiGet(const std::string& ns, std::vector<Key> keys,
                MultiGetCallback callback);

  /// Caller knobs for one MultiGet call.
  struct MultiGetOptions {
    /// Steer the scatter AWAY from each key's primary owner: the key's
    /// predecessor hands the request to the owner's successor (which holds
    /// the keys in its replica set) instead of the owner itself, and the
    /// origin skips its owner cache so the request travels the ring. This
    /// is the hedged-fetch backup path — a second opinion that avoids the
    /// (presumed slow) primary. Falls back to normal owner delivery when
    /// no live successor qualifies.
    bool prefer_replica = false;
  };

  /// MultiGet with explicit options (the 3-argument form uses defaults).
  void MultiGet(const std::string& ns, std::vector<Key> keys,
                MultiGetCallback callback, const MultiGetOptions& options);

  /// Resolves the current owner of `target`.
  void Lookup(Key target, LookupCallback callback);

  /// Registers the handler invoked when a routed message for `app_type`
  /// arrives at this node (this node being the key's owner).
  void SetUpcallHandler(int app_type, UpcallHandler handler);

  /// Registers a handler for direct (non-routed) app messages; PIER uses
  /// this for query answers, which bypass the overlay per the paper.
  void SetDirectHandler(DirectHandler handler);

  /// Sends an app message straight to a known host (one network hop).
  /// Returns false when the destination is known-down (connection failed),
  /// which callers may use as a failure signal.
  bool SendDirect(sim::HostId to, sim::Message msg);

  /// Pressure probe of the next hop toward `target`'s owner — the best
  /// local estimate of the congestion a routed message to that key meets
  /// first. With a warm owner location cache the next hop IS the owner, so
  /// the probe reads the actual destination's pressure. Applications
  /// (PIER's adaptive rehash flush, credit windows) drive their batch
  /// policies from this instead of compile-time constants.
  sim::DestinationLoad NextHopLoad(Key target) const;

  /// The learned owner map (diagnostics; tests seed stale entries here).
  RouteCache& route_cache() { return route_cache_; }
  const RouteCache& route_cache() const { return route_cache_; }

  /// True when this node learns and uses owner locations (the cache option
  /// is on and the policy is not the legacy classic path).
  bool OwnerCacheEnabled() const {
    return options_.owner_location_cache &&
           options_.routing_policy != RoutingPolicyKind::kClassicChord;
  }

  // --- sim::Host ---------------------------------------------------------
  void HandleMessage(sim::HostId from, const sim::Message& msg) override;

  /// Ring-maintenance statistics for tests.
  uint64_t stabilize_rounds() const { return stabilize_rounds_; }

  /// This node's membership epoch: bumped whenever its owned arc (or ring
  /// neighborhood) changes — join adoption, predecessor/successor movement,
  /// crash repair, static rebuild. Each bump fences the owner location
  /// cache; upper layers (PIER) register listeners to fence their own
  /// standing state (rehash queues, credit streams).
  uint64_t membership_epoch() const { return membership_epoch_; }

  /// Registers a callback fired synchronously on every epoch bump.
  /// Listeners must not mutate routing state re-entrantly.
  void AddEpochListener(std::function<void()> listener) {
    epoch_listeners_.push_back(std::move(listener));
  }

  // Wire message discriminators (sim::Message::type). kDirectApp is public
  // contract: applications wrap their own direct messages in it (their own
  // discriminator goes in the payload) so DhtNode can dispatch them to the
  // registered DirectHandler.
  enum MsgType : int {
    kRouteStep = 1,
    kGetReply = 2,
    kPutAck = 3,
    kJoinReply = 4,
    kGetPredecessor = 5,
    kPredecessorReply = 6,
    kNotify = 7,
    kFingerReply = 8,
    kKeyTransfer = 9,
    kReplicaPut = 10,
    kLookupReply = 11,
    kDirectApp = 12,
    kLeave = 13,
    kPredecessorPing = 14,
    kGetBatchReply = 15,
    kReplicaPutBatch = 16,
    kMultiGetReply = 17,
    /// Standalone owner hint for routed deliveries that send no reply the
    /// hint could ride on (un-acked puts, app upcalls). One per multi-hop
    /// cold delivery; the taught origin goes direct afterwards.
    kOwnerHint = 18,
    kLivenessPing = 19,
    kLivenessAck = 20,
    /// Anti-entropy re-sync (owner → replica): per-key digests of the
    /// owner's arc.
    kResyncDigest = 21,
    /// Replica → owner: keys whose digest diverged; please ship entries.
    kResyncPull = 22,
    /// Owner → replica: the pulled entries (KeyTransferBody payload).
    kResyncEntries = 23,
    /// Ring-merge reconciliation probe to a remembered (evicted) peer:
    /// carries the prober's identity + successor view. A live receiver
    /// integrates it and answers with kMergeReply.
    kMergeProbe = 24,
    /// The receiver's identity + successor view back to the prober; both
    /// sides now hold cross-ring successors and stabilization knits the
    /// rings.
    kMergeReply = 25,
  };

 private:

  struct PutBody {
    std::string ns;
    Key key;
    std::vector<uint8_t> value;
    sim::SimTime expiry;
    bool want_ack;
  };
  struct GetBody {
    std::string ns;
    Key key;
  };
  struct PutBatchBody {
    std::string ns;
    Key key;
    std::vector<uint8_t> frames;  ///< Length-prefixed values, one buffer.
    uint64_t value_count;
    sim::SimTime expiry;
    bool want_ack;
  };
  struct JoinReplyBody {
    NodeInfo owner;
    std::vector<NodeInfo> successor_list;
  };
  struct PredecessorReplyBody {
    uint64_t seq;
    NodeInfo predecessor;
    std::vector<NodeInfo> successor_list;
  };
  struct FingerLookupBody {
    size_t index;
  };
  struct FingerReplyBody {
    size_t index;
    NodeInfo owner;
  };
  struct KeyTransferBody {
    // (ns, key, value, expiry) tuples being handed over.
    struct Entry {
      std::string ns;
      StoredValue value;
    };
    std::vector<Entry> entries;
  };
  struct GetReplyBody {
    uint64_t req_id;
    std::vector<std::vector<uint8_t>> values;
    OwnerHint hint;  ///< Teaches the requester the answering owner's arc.
  };
  struct GetBatchReplyBody {
    uint64_t req_id;
    BatchImage batch;  ///< TupleBatch image, shared with the owner's cache.
    OwnerHint hint;
  };
  struct MultiGetBody {
    std::string ns;
    std::vector<Key> keys;  ///< Keys still awaiting an owner.
    /// Set on a replica handoff: the receiver is owner-or-replica for every
    /// key in (arc_start, receiver.id] and must answer those keys
    /// authoritatively (empty included) even though it does not own them.
    bool arc_valid = false;
    Key arc_start = 0;
    /// Hedged-fetch steering (MultiGetOptions::prefer_replica): divert the
    /// final hop to the owner's successor instead of the owner. Cleared on
    /// the replica handoff itself (the diversion happens once per owner).
    bool prefer_replica = false;
  };
  struct MultiGetReplyBody {
    uint64_t req_id;
    std::vector<MultiGetItem> items;  ///< This owner's share of the keys.
    OwnerHint hint;
  };
  struct LookupReplyBody {
    uint64_t req_id;
    NodeInfo owner;
    uint32_t hops;
    OwnerHint hint;
  };

  ChordRouting* chord() const;

  void ForwardOrDeliver(RouteMsg msg);
  /// Origin-side owner-cache fast path: when a cached arc covers the
  /// target, sends the message straight to the remembered owner (one hop)
  /// and returns true. A refused send invalidates the entry and returns
  /// false — the caller ring-routes as if the cache had missed.
  bool TryCacheFastPath(const RouteMsg& msg);
  void DeliverLocally(const RouteMsg& msg);
  /// The hint this node may attach to replies for a delivery of `target`:
  /// valid only when this node answers as the key's owner (replica peels
  /// teach nothing), covering the owned arc when the predecessor is known
  /// and the single routed key otherwise.
  OwnerHint OwnerHintFor(Key target) const;
  /// Folds a received hint into the route cache (metrics-counted).
  void LearnOwner(const OwnerHint& hint);
  /// Teaches msg.origin via a standalone kOwnerHint when the delivery was
  /// multi-hop, not already cache-routed, and produces no hinted reply.
  void MaybeSendOwnerHint(const RouteMsg& msg);
  /// RemovePeer plus owner-cache invalidation — every failure-detector
  /// site must drop a dead host from BOTH routing structures.
  void DropPeer(sim::HostId host);
  void HandlePutUpcall(const RouteMsg& msg);
  void HandlePutBatchUpcall(const RouteMsg& msg);
  /// Splits a PutBatch frame buffer and stores each value. A malformed
  /// buffer stops at the first bad frame (the earlier frames stand — the
  /// same salvage rule as the tuple-batch decoder).
  void StoreBatchFrames(const PutBatchBody& put);
  void HandleGetUpcall(const RouteMsg& msg);
  void HandleGetBatchUpcall(const RouteMsg& msg);
  void HandleGetMultiUpcall(const RouteMsg& msg);
  /// Replica-aware scatter shortcut: hands the unanswered keys one hop to
  /// the farthest successor that can answer the next key from its replica
  /// set (plus everything between). Returns false when no successor
  /// qualifies (replication 1, option off, next key beyond the replica
  /// arc, or all candidates down) — the caller falls back to routing the
  /// remainder to the next key's owner.
  bool ForwardMultiGetViaReplica(const RouteMsg& msg, const std::string& ns,
                                 const std::vector<Key>& rest);
  /// Hedge diversion at the final hop: a replica-preferring MultiGet about
  /// to be delivered to the target key's owner is handed to the owner's
  /// successor instead (which answers the owner's arc from its replica
  /// set). Returns false when no live qualifying successor exists — the
  /// caller falls through to normal owner delivery.
  bool DivertMultiGetToReplica(const RouteMsg& msg, const MultiGetBody& get);
  void HandleJoinLookupUpcall(const RouteMsg& msg);
  void HandleFingerLookupUpcall(const RouteMsg& msg);
  void HandleLookupUpcall(const RouteMsg& msg);
  void ReplicateEntry(const std::string& ns, Key key,
                      const std::vector<uint8_t>& value, sim::SimTime expiry);

  void StartMaintenanceTimers();
  /// Cancels every maintenance timer plus the in-flight stabilize timeout
  /// — a crashed or departed node must never fire another event.
  void CancelMaintenanceTimers();
  /// Cancels pending request watchdogs and drops the callbacks silently
  /// (crash semantics: the host is gone, nobody is listening).
  void CancelPendingRequests();
  void DoStabilize();
  void DoFixFinger();
  void OnStabilizeTimeout(uint64_t seq, sim::HostId suspect);
  /// One proactive-liveness round: evict peers past the miss threshold,
  /// ping the ring neighborhood, rotate one finger probe.
  void DoFailureDetector();
  /// One anti-entropy round: if the membership-dirty flag is set, digest
  /// the owned arc and push digests to the replica set.
  void DoResync();
  void HandleResyncDigest(sim::HostId from, const sim::Message& msg);
  void HandleResyncPull(sim::HostId from, const sim::Message& msg);
  /// Sends per-key digests of `(arc_start, arc_end]` (every namespace) to
  /// `to` — the anti-entropy opener used by both the periodic re-sync round
  /// and the predecessor-adoption handover. The receiver pulls what it
  /// lacks and pushes back what the sender lacks, so only diverged entries
  /// cross the wire in either direction.
  void SendArcDigests(sim::HostId to, Key arc_start, Key arc_end);
  /// One ring-merge reconciliation round: probe the next remembered peer
  /// (if any), then re-arm the timer.
  void DoReconcile();
  void HandleMergeProbe(sim::HostId from, const sim::Message& msg);
  void HandleMergeReply(sim::HostId from, const sim::Message& msg);
  /// Folds a merge probe/reply's view into local routing state: offers the
  /// sender and its successors to our successor list, considers the sender
  /// as predecessor, and counts a partition heal when the sender was a
  /// remembered (presumed-dead) peer.
  void IntegrateForeignView(const NodeInfo& sender,
                            const std::vector<NodeInfo>& successors);
  /// The kNotify adopt rule factored out so merge integration shares it:
  /// adopts `cand` as predecessor when it tightens the arc, and hands the
  /// keys of the ceded range over (digest-driven with replication, moved
  /// outright without).
  void ConsiderPredecessor(const NodeInfo& cand);
  /// ChordRouting membership-listener sink: bumps the epoch on ownership
  /// change, marks the re-sync flag when replication needs repair.
  void OnMembershipChange(bool ownership_changed, bool replica_set_changed);
  void BumpEpoch();

  /// Deadline of retry attempt `attempt` (0-based): geometric backoff whose
  /// attempts sum to ~get_timeout, so the caller-visible total deadline is
  /// preserved regardless of the retry count.
  sim::SimTime AttemptTimeout(uint32_t attempt) const;
  void OnGetAttemptTimeout(uint64_t req_id);
  void OnBatchGetAttemptTimeout(uint64_t req_id);
  void OnMultiGetAttemptTimeout(uint64_t req_id);

  /// Route() with an explicit origin — MultiGet forwards keep the original
  /// requester as the reply target while re-routing the remaining keys.
  void RouteAs(const NodeInfo& origin, Key target, int app_type,
               std::shared_ptr<const void> body, size_t body_bytes,
               uint64_t req_id);

  /// (Re-)arms the progress watchdog of a pending MultiGet for retry
  /// attempt `attempt`: an expiry re-sends the unanswered keys (attempts
  /// remaining) or resolves with the items gathered so far.
  sim::EventId ArmMultiGetTimeout(uint64_t req_id, uint32_t attempt);

  uint64_t NextReqId() { return next_req_id_++; }
  size_t RouteHeaderBytes() const { return 40; }

  sim::Network* network_;
  DhtOptions options_;
  DhtMetrics* metrics_;
  std::unique_ptr<RoutingTable> routing_;
  std::unique_ptr<NextHopPolicy> policy_;
  RouteCache route_cache_;
  LoadProbe load_probe_;
  LocalStore store_;
  bool joined_ = false;
  bool crashed_ = false;

  std::map<int, UpcallHandler> upcalls_;
  DirectHandler direct_handler_;

  uint64_t next_req_id_ = 1;
  struct PendingGet {
    GetCallback callback;
    // Request identity kept for attempt re-sends.
    std::shared_ptr<const void> body;
    Key key = 0;
    size_t bytes = 0;
    uint32_t attempts = 0;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingGet> pending_gets_;
  struct PendingBatchGet {
    GetBatchCallback callback;
    std::shared_ptr<const void> body;
    Key key = 0;
    size_t bytes = 0;
    uint32_t attempts = 0;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingBatchGet> pending_batch_gets_;
  struct PendingMultiGet {
    MultiGetCallback callback;
    std::string ns;
    /// Keys not yet answered by any owner. A set (not a count) so the
    /// duplicate answers a retry race produces are deduplicated instead of
    /// double-counted.
    std::set<Key> unanswered;
    std::vector<MultiGetItem> items;
    uint32_t attempts = 0;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingMultiGet> pending_multi_gets_;
  std::map<uint64_t, PutCallback> pending_puts_;
  struct PendingLookup {
    LookupCallback callback;
    sim::EventId timeout = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingLookup> pending_lookups_;

  uint64_t stabilize_seq_ = 0;
  uint64_t last_stabilize_reply_ = 0;
  sim::EventId stabilize_timer_ = sim::kInvalidEventId;
  sim::EventId fix_finger_timer_ = sim::kInvalidEventId;
  sim::EventId stabilize_timeout_ = sim::kInvalidEventId;
  uint64_t stabilize_rounds_ = 0;
  size_t next_finger_ = 0;

  // Proactive failure detector.
  sim::EventId detector_timer_ = sim::kInvalidEventId;
  /// Unanswered ping rounds per probed host; threshold crossing evicts.
  std::map<sim::HostId, uint32_t> ping_outstanding_;
  size_t detector_finger_ = 0;  ///< Rotating finger-probe cursor.

  // Replica re-sync.
  sim::EventId resync_timer_ = sim::kInvalidEventId;
  /// Set by membership changes; cleared when a re-sync round runs with a
  /// known predecessor (the arc is well-defined).
  bool resync_dirty_ = false;

  // Ring-merge reconciliation.
  sim::EventId reconcile_timer_ = sim::kInvalidEventId;
  size_t reconcile_cursor_ = 0;  ///< Rotates over the remembered peers.

  /// What a real node's disk carries across a power cycle: taken by
  /// Crash(), consumed by Restart(durable=true), ignored by amnesia
  /// restarts.
  struct DurableImage {
    bool valid = false;
    LocalStore store;
    std::vector<NodeInfo> peers;  ///< Known + remembered peers at crash.
  };
  DurableImage durable_image_;

  // Membership epoch.
  uint64_t membership_epoch_ = 0;
  std::vector<std::function<void()>> epoch_listeners_;
};

/// Surfaces the DHT transport counters into a CounterSet under "dht."
/// names — the cross-layer reporting currency (see common/stats.h).
void ExportTransportCounters(const DhtMetrics& m, CounterSet* out);

}  // namespace pierstack::dht
