#include "dht/route_cache.h"

namespace pierstack::dht {

NodeInfo RouteCache::Lookup(Key target) const {
  if (arcs_.empty()) return NodeInfo{};
  // The covering arc (if any) has its end at or clockwise of the target;
  // probe a few successive arc ends so a stale exact-key entry sitting
  // inside a wider live arc doesn't mask it.
  constexpr int kProbes = 3;
  auto it = arcs_.lower_bound(target);
  for (int i = 0; i < kProbes; ++i) {
    if (it == arcs_.end()) it = arcs_.begin();
    // Stale-epoch entries are fenced, not returned: a fast path into a
    // pre-churn arc falls back to ring routing (the only path that is
    // correct while ownership is in motion).
    if (it->second.epoch == epoch_ &&
        InOpenClosed(it->second.arc_start, it->first, target)) {
      return it->second.owner;
    }
    ++it;
  }
  return NodeInfo{};
}

bool RouteCache::Teach(const OwnerHint& hint) {
  if (!hint.valid || !hint.owner.valid()) return false;
  auto it = arcs_.find(hint.arc_end);
  // A fenced entry being overwritten is expired knowledge, not a staleness
  // signal — only a same-epoch replacement naming a different owner is.
  bool replaced_other_owner = it != arcs_.end() &&
                              it->second.epoch == epoch_ &&
                              it->second.owner.host != hint.owner.host;
  arcs_[hint.arc_end] = Entry{hint.arc_start, hint.owner, seq_++, epoch_};
  if (arcs_.size() > capacity_) {
    // Evict the oldest-taught arc. Linear scan: the cache is small and
    // eviction only runs past capacity.
    auto oldest = arcs_.begin();
    for (auto e = arcs_.begin(); e != arcs_.end(); ++e) {
      if (e->second.seq < oldest->second.seq) oldest = e;
    }
    arcs_.erase(oldest);
  }
  return replaced_other_owner;
}

size_t RouteCache::FenceEpoch() {
  ++epoch_;
  size_t purged = 0;
  for (auto it = arcs_.begin(); it != arcs_.end();) {
    if (it->second.epoch != epoch_) {
      it = arcs_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

void RouteCache::ForgetHost(sim::HostId host) {
  for (auto it = arcs_.begin(); it != arcs_.end();) {
    if (it->second.owner.host == host) {
      it = arcs_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace pierstack::dht
